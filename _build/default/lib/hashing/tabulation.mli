(** Simple tabulation hashing (Thorup–Zhang [39]).

    The key is split into 8-bit characters, each indexing a table of
    random 64-bit words which are XORed together.  Simple tabulation is
    3-wise independent and behaves like full randomness for many
    streaming applications (Patrascu–Thorup); the paper cites
    tabulation-based hashing as one of the F2-heavy-hitter
    implementations [39].  We use it as a fast full-width mixer for KMV
    and HyperLogLog, where empirical uniformity matters more than proof
    obligations. *)

type t

val create : seed:Splitmix.t -> t
(** Fresh tables for 8 input characters (56-bit keys). *)

val hash64 : t -> int -> int64
(** Full-width 64-bit hash of a non-negative int key. *)

val hash : t -> int -> int -> int
(** [hash t x r] reduces {!hash64} to [\[0, r)]. *)

val to_unit_float : t -> int -> float
(** [to_unit_float t x] maps the hash to a float in [\[0, 1)] —
    convenient for order statistics (KMV). *)

val words : t -> int
