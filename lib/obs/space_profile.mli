(** Space-over-stream time series: periodic samples of a sink's
    retained words (and per-component breakdown) as the stream is
    consumed — the live view of the paper's Õ(m/α²) space claim.
    Collected by {!Mkc_stream.Sink.Observed} on a configurable edge
    cadence; the final sample is always taken at finalize, so the last
    point's totals equal the sink's [words_breakdown] exactly. *)

type point = {
  at_edges : int;  (** edges consumed when the sample was taken *)
  words : int;  (** total retained 64-bit words *)
  breakdown : (string * int) list;  (** canonical per-component split *)
}

type t

val create : cadence:int -> t
(** [cadence] is recorded for the export; sampling itself is driven by
    the caller. *)

val cadence : t -> int
val record : t -> at_edges:int -> words:int -> breakdown:(string * int) list -> unit
val points : t -> point list
(** Samples in recording order. *)

val final : t -> point option
(** The last sample, if any. *)

val peak_words : t -> int
(** Maximum sampled total (0 when empty). *)
