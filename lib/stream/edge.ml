type t = { set : int; elt : int; sign : int }

let check_ids set elt =
  if set < 0 || elt < 0 then invalid_arg "Edge.make: ids must be non-negative"

let make ~set ~elt =
  check_ids set elt;
  { set; elt; sign = 1 }

let signed ~sign ~set ~elt =
  check_ids set elt;
  if sign <> 1 && sign <> -1 then invalid_arg "Edge.signed: sign must be +1 or -1";
  { set; elt; sign }

let compare a b =
  let c = Int.compare a.set b.set in
  if c <> 0 then c
  else
    let c = Int.compare a.elt b.elt in
    if c <> 0 then c else Int.compare a.sign b.sign

let equal a b = compare a b = 0

let pp ppf { set; elt; sign } =
  if sign >= 0 then Format.fprintf ppf "(S%d, e%d)" set elt
  else Format.fprintf ppf "(S%d, e%d, -)" set elt
