(* Probe closures for the standard telemetry track set.  Each probe is
   [name, fun ~at_ns ~at_edges -> int]; the recorder evaluates all of
   them per cadence sample, so anything list-shaped (words_breakdown,
   stats_totals) is fetched once per distinct [at_edges] and shared
   across the tracks that read it. *)

type probe = Mkc_obs.Telemetry.Recorder.probe

let ppm ~num ~den = if den <= 0 then 0 else num * 1_000_000 / den

(* Memoize an expensive (string * int) list fetch on the sample
   timestamp, so one slot suffices.  The key must be [at_ns], not
   [at_edges]: the finalize-time sample repeats the last crossing's
   edge count but must observe finalize-only counters (heavy-hitter
   recoveries) fresh. *)
let cached fetch =
  let at = ref min_int and value = ref [] in
  let get ~at_ns =
    if !at <> at_ns then begin
      value := fetch ();
      at := at_ns
    end;
    !value
  in
  let assoc ~at_ns key = Option.value ~default:0 (List.assoc_opt key (get ~at_ns)) in
  (get, assoc)

(* Pool-executor tracks read the global registry, where the pipeline's
   coordinator publishes cumulative values once per chunk window; they
   hold 0 until the first parallel drive (single-domain runs never set
   them). *)
let reg_int name ~at_ns:(_ : int) ~at_edges:(_ : int) =
  match Mkc_obs.Registry.read Mkc_obs.Registry.global name with
  | Some (Mkc_obs.Registry.Counter n) -> n
  | Some (Mkc_obs.Registry.Gauge g) -> int_of_float g
  (* plan-build / queue-wait are histogram tracks now: the cumulative
     scalar the telemetry log carries is the histogram's sum *)
  | Some (Mkc_obs.Registry.Histogram h) -> h.Mkc_obs.Metric.Histogram.sum
  | None -> 0

let pool_tracks =
  List.map
    (fun name -> (name, reg_int name))
    [
      "pipeline.domain_busy_ns";
      "pipeline.pool.plan_build_ns";
      "pipeline.pool.plan_overlap_ns";
      "pipeline.pool.queue_wait_ns";
      "pipeline.pool.rebalances";
    ]

let common ~breakdown ~totals_of ~extra : probe array =
  let bd_all, bd = cached breakdown in
  let _, totals = cached totals_of in
  let throughput =
    (* Instantaneous rate between consecutive samples, anchored at
       build time so the first sample is meaningful too. *)
    let last_ns = ref (Mkc_obs.Clock.now_ns ()) and last_edges = ref 0 and last_rate = ref 0 in
    fun ~at_ns ~at_edges ->
      let dns = at_ns - !last_ns and de = at_edges - !last_edges in
      if dns > 0 then begin
        last_rate := int_of_float (float_of_int de *. 1e9 /. float_of_int dns);
        last_ns := at_ns;
        last_edges := at_edges
      end;
      !last_rate
  in
  let space_components =
    List.map
      (fun (key, _) ->
        ( "space." ^ key,
          fun ~at_ns ~at_edges:(_ : int) -> bd ~at_ns key ))
      (breakdown ())
  in
  let tot key ~at_ns = totals ~at_ns key in
  Array.of_list
    ([
       ("pipeline.edges", fun ~at_ns:(_ : int) ~at_edges -> at_edges);
       ("pipeline.edges_per_sec", throughput);
       (* Total words = sum of the (memoized) breakdown — the S
          contract makes these identical, and summing spares a second
          full-sketch walk per sample. *)
       ( "space.words",
         fun ~at_ns ~at_edges:(_ : int) ->
           List.fold_left (fun acc (_, w) -> acc + w) 0 (bd_all ~at_ns) );
     ]
    @ space_components
    @ [
        ( "gc.minor_words",
          fun ~at_ns:(_ : int) ~at_edges:(_ : int) ->
            int_of_float (Gc.quick_stat ()).Gc.minor_words );
        ( "gc.major_words",
          fun ~at_ns:(_ : int) ~at_edges:(_ : int) ->
            int_of_float (Gc.quick_stat ()).Gc.major_words );
        ( "gc.heap_words",
          fun ~at_ns:(_ : int) ~at_edges:(_ : int) -> (Gc.quick_stat ()).Gc.heap_words );
        ( "sketch.l0_occupancy",
          fun ~at_ns ~at_edges:(_ : int) -> tot "large_common.l0_occupancy" ~at_ns );
        ( "sketch.l0_prunes",
          fun ~at_ns ~at_edges:(_ : int) -> tot "large_common.l0_prunes" ~at_ns );
        ( "sketch.f2_tracked",
          fun ~at_ns ~at_edges:(_ : int) -> tot "large_set.f2_tracked" ~at_ns );
        ( "sketch.f2_prunes",
          fun ~at_ns ~at_edges:(_ : int) -> tot "large_set.f2_prunes" ~at_ns );
        ( "sketch.hh_recovery_ppm",
          fun ~at_ns ~at_edges:(_ : int) ->
            ppm
              ~num:(tot "large_set.hh_recoveries" ~at_ns)
              ~den:(tot "large_set.hh_candidates" ~at_ns) );
        ( "sketch.memo_hit_ppm",
          fun ~at_ns ~at_edges:(_ : int) ->
            let hits = tot "large_common.memo_hits" ~at_ns in
            ppm ~num:hits ~den:(hits + tot "large_common.sampler_evals" ~at_ns) );
      ]
    @ extra @ pool_tracks)

let build ~breakdown est : probe array =
  common ~breakdown ~totals_of:(fun () -> Estimate.stats_totals est) ~extra:[]

(* Windowed runs replace the in-flight estimator on every epoch roll,
   so the totals fetch must go through [Windowed.current] per sample;
   the window.* tracks read the registry counters the roll path bumps. *)
let build_windowed ~breakdown w : probe array =
  common ~breakdown
    ~totals_of:(fun () -> Windowed.stats_totals w)
    ~extra:
      (List.map
         (fun name -> (name, reg_int name))
         [ "window.epochs"; "window.rolled"; "window.swaps" ])
