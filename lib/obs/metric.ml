module Histogram = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    buckets : int array;
  }

  let num_buckets = 64

  let create () =
    { count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity; buckets = Array.make num_buckets 0 }

  let bucket_of v =
    if v < 1.0 then 0
    else min (num_buckets - 1) (int_of_float (Float.log2 v))

  let observe t v =
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1

  let observe_ns t ns = observe t (float_of_int ns)

  let merge_into ~dst src =
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    if src.vmin < dst.vmin then dst.vmin <- src.vmin;
    if src.vmax > dst.vmax then dst.vmax <- src.vmax;
    Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets

  let merge a b =
    let t = create () in
    merge_into ~dst:t a;
    merge_into ~dst:t b;
    t

  let nonzero_buckets t =
    let out = ref [] in
    for i = num_buckets - 1 downto 0 do
      if t.buckets.(i) > 0 then out := (i, t.buckets.(i)) :: !out
    done;
    !out

  let quantile t q =
    if t.count = 0 then 0.0
    else begin
      let target = Float.max 1.0 (Float.round (q *. float_of_int t.count)) in
      let seen = ref 0 and hit = ref (num_buckets - 1) and looking = ref true in
      for i = 0 to num_buckets - 1 do
        if !looking then begin
          seen := !seen + t.buckets.(i);
          if float_of_int !seen >= target then begin
            hit := i;
            looking := false
          end
        end
      done;
      Float.pow 2.0 (float_of_int (!hit + 1))
    end
end

let merge_counter = ( + )
let merge_gauge mode a b = match mode with `Sum -> a +. b | `Max -> Float.max a b
