test/test_workload.ml: Alcotest Array Float Hashtbl List Mkc_coverage Mkc_hashing Mkc_stream Mkc_workload Option
