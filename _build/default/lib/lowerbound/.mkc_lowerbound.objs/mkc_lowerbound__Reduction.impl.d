lib/lowerbound/reduction.ml: Array Disjointness Mkc_stream
