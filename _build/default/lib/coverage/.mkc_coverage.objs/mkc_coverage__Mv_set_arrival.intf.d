lib/coverage/mv_set_arrival.mli:
