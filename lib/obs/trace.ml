(* Chrome trace_event / Perfetto JSON timeline exporter.

   Recording is append-only into bounded per-domain rings of packed int
   triples (tag, time, payload), with span names interned to small ids:
   the owning domain is the only writer of its ring, so the hot path
   takes no lock and allocates nothing (a name already seen by the
   domain is resolved through a domain-local cache; only a first
   encounter touches the global intern table, under its mutex).  Rings
   are registered globally and read at quiescence (after the run), the
   same contract as {!Span.recent}. *)

let switch = ref false
let set_enabled b = switch := b
let enabled () = !switch

let ring_capacity = 4096

(* ---------- name interning ---------- *)

let names_lock = Mutex.create ()
let names = ref (Array.make 64 "")
let names_len = ref 0
let name_ids : (string, int) Hashtbl.t = Hashtbl.create 64

let intern_global name =
  Mutex.lock names_lock;
  let id =
    match Hashtbl.find_opt name_ids name with
    | Some id -> id
    | None ->
        let id = !names_len in
        if id = Array.length !names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit !names 0 bigger 0 id;
          names := bigger
        end;
        !names.(id) <- name;
        names_len := id + 1;
        Hashtbl.add name_ids name id;
        id
  in
  Mutex.unlock names_lock;
  id

let name_of_id id =
  Mutex.lock names_lock;
  let n = !names.(id) in
  Mutex.unlock names_lock;
  n

(* ---------- per-domain event rings ---------- *)

(* 3 ints per event: tag = (name_id lsl 1) lor kind, then two payload
   words — (start_ns, dur_ns) for a complete span (kind 0), (at_ns,
   value) for a counter sample (kind 1). *)
type ring = {
  tid : int;
  ids : (string, int) Hashtbl.t; (* domain-local intern cache *)
  buf : int array;
  mutable next : int; (* total events ever pushed *)
}

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let my_ring () =
  match Domain.DLS.get ring_key with
  | Some r -> r
  | None ->
      let r =
        {
          tid = (Domain.self () :> int);
          ids = Hashtbl.create 32;
          buf = Array.make (3 * ring_capacity) 0;
          next = 0;
        }
      in
      Mutex.lock rings_lock;
      rings := r :: !rings;
      Mutex.unlock rings_lock;
      Domain.DLS.set ring_key (Some r);
      r

let intern r name =
  match Hashtbl.find_opt r.ids name with
  | Some id -> id
  | None ->
      let id = intern_global name in
      Hashtbl.replace r.ids name id;
      id

let push kind name a b =
  let r = my_ring () in
  let id = intern r name in
  let slot = 3 * (r.next mod ring_capacity) in
  Array.unsafe_set r.buf slot ((id lsl 1) lor kind);
  Array.unsafe_set r.buf (slot + 1) a;
  Array.unsafe_set r.buf (slot + 2) b;
  r.next <- r.next + 1

let complete name ~start_ns ~dur_ns = if !switch then push 0 name start_ns dur_ns
let counter name ~at_ns value = if !switch then push 1 name at_ns value

(* ---------- reading (quiescent) ---------- *)

type event =
  | Complete of { name : string; start_ns : int; dur_ns : int; tid : int }
  | Counter of { name : string; at_ns : int; value : int; tid : int }

let event_time = function
  | Complete { start_ns; _ } -> start_ns
  | Counter { at_ns; _ } -> at_ns

let event_name = function Complete { name; _ } -> name | Counter { name; _ } -> name
let event_tid = function Complete { tid; _ } -> tid | Counter { tid; _ } -> tid

let events () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  let out = ref [] in
  List.iter
    (fun r ->
      let first = max 0 (r.next - ring_capacity) in
      for i = first to r.next - 1 do
        let slot = 3 * (i mod ring_capacity) in
        let tag = r.buf.(slot) and a = r.buf.(slot + 1) and b = r.buf.(slot + 2) in
        let name = name_of_id (tag lsr 1) in
        let e =
          if tag land 1 = 0 then Complete { name; start_ns = a; dur_ns = b; tid = r.tid }
          else Counter { name; at_ns = a; value = b; tid = r.tid }
        in
        out := e :: !out
      done)
    rs;
  List.sort
    (fun x y -> compare (event_time x, event_name x, event_tid x) (event_time y, event_name y, event_tid y))
    !out

let clear () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  List.iter (fun r -> r.next <- 0) rs

(* ---------- Chrome trace_event JSON emission ---------- *)

(* One fake process; tids are renumbered to a dense 0.. range in order
   of first (sorted) appearance, so the emitted JSON is stable across
   runs that spawn different OS-level domain ids.  Timestamps are
   microseconds relative to the earliest event, as the trace_event
   format prescribes. *)
let pid = 1

let ts_us ~origin t = Json.Float (float_of_int (t - origin) /. 1000.0)

let to_json ?events:evs () =
  let evs = match evs with Some e -> e | None -> events () in
  let origin = List.fold_left (fun acc e -> min acc (event_time e)) max_int evs in
  let origin = if origin = max_int then 0 else origin in
  let tid_map = Hashtbl.create 8 in
  let tids = ref [] in
  List.iter
    (fun e ->
      let t = event_tid e in
      if not (Hashtbl.mem tid_map t) then begin
        Hashtbl.add tid_map t (Hashtbl.length tid_map);
        tids := Hashtbl.find tid_map t :: !tids
      end)
    evs;
  let meta =
    Json.Object
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Object [ ("name", Json.String "mkc") ]);
      ]
    :: List.map
         (fun t ->
           Json.Object
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int pid);
               ("tid", Json.Int t);
               ("args", Json.Object [ ("name", Json.String (Printf.sprintf "domain %d" t)) ]);
             ])
         (List.sort compare !tids)
  in
  let body =
    List.map
      (fun e ->
        let tid = Hashtbl.find tid_map (event_tid e) in
        match e with
        | Complete { name; start_ns; dur_ns; _ } ->
            Json.Object
              [
                ("name", Json.String name);
                ("ph", Json.String "X");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("ts", ts_us ~origin start_ns);
                ("dur", Json.Float (float_of_int dur_ns /. 1000.0));
              ]
        | Counter { name; at_ns; value; _ } ->
            Json.Object
              [
                ("name", Json.String name);
                ("ph", Json.String "C");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("ts", ts_us ~origin at_ns);
                ("args", Json.Object [ ("value", Json.Int value) ]);
              ])
      evs
  in
  Json.Array (meta @ body)

let to_string ?events () = Json.to_string (to_json ?events ())

(* ---------- validation ---------- *)

let ( let* ) = Result.bind

let field ctx name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or mistyped field %S" ctx name)

let validate_event i j =
  let ctx = Printf.sprintf "trace event %d" i in
  let* name = field ctx "name" Json.to_string_opt j in
  let ctx = Printf.sprintf "trace event %d (%s)" i name in
  let* ph = field ctx "ph" Json.to_string_opt j in
  let* _pid = field ctx "pid" Json.to_int j in
  let* _tid = field ctx "tid" Json.to_int j in
  match ph with
  | "M" ->
      let* args = field ctx "args" Option.some j in
      let* _ = field ctx "name" Json.to_string_opt args in
      Ok ()
  | "X" ->
      let* ts = field ctx "ts" Json.to_float j in
      let* dur = field ctx "dur" Json.to_float j in
      if ts < 0.0 then Error (ctx ^ ": negative ts")
      else if dur < 0.0 then Error (ctx ^ ": negative dur")
      else Ok ()
  | "C" ->
      let* ts = field ctx "ts" Json.to_float j in
      let* args = field ctx "args" Option.some j in
      let* _ = field ctx "value" Json.to_float args in
      if ts < 0.0 then Error (ctx ^ ": negative ts") else Ok ()
  | ph -> Error (Printf.sprintf "%s: unsupported phase %S" ctx ph)

let validate s =
  let* j = Json.parse s in
  match j with
  | Json.Array items ->
      let rec go i = function
        | [] -> Ok i
        | x :: rest ->
            let* () = validate_event i x in
            go (i + 1) rest
      in
      go 0 items
  | _ -> Error "trace: expected a top-level JSON array of trace events"
