(** Single-pass edge streams.

    A stream is an abstract sequence of {!Edge.t} that can be consumed
    exactly once per [iter] — algorithms receive it only through
    {!iter}/{!fold}, mirroring the one-pass model.  Backing storage is
    an array (tests, benches) or a file (CLI). *)

type t

val of_array : Edge.t array -> t
val of_system : ?seed:int -> Set_system.t -> t
(** Edge stream of a set system, shuffled when [seed] is given. *)

val length : t -> int
val iter : (Edge.t -> unit) -> t -> unit
val fold : ('a -> Edge.t -> 'a) -> 'a -> t -> 'a

val chunks :
  ?chunk:int -> ?start:int -> (Edge.t array -> pos:int -> len:int -> unit) -> t -> unit
(** [chunks f t] hands the backing edge array to [f] one zero-copy
    sub-range [\[pos, pos+len)] at a time (default chunk 8192) — the
    ingestion primitive behind {!Pipeline}.  [f] must treat the array
    as read-only and must not retain it.  Every chunk has [len >= 1]:
    streams whose length is an exact multiple of [chunk] do not end
    with an empty chunk.  [start] (default 0) skips a prefix — the
    resume primitive; [start = length t] yields no chunks at all. *)

val windows : ?chunk:int -> ?start:int -> t -> (int * int) array
(** The [(pos, len)] grid that {!chunks} would walk, precomputed — the
    window table a pipelined driver indexes to build window W+1's plan
    while W is still being replayed.  Same guarantees as {!chunks}:
    every window has [len >= 1] and [start = length t] yields the empty
    array. *)

val backing : t -> Edge.t array
(** Zero-copy view of the backing edge array, for drivers that pair it
    with {!windows}.  Read-only: callers must not mutate or retain it
    past the stream's lifetime.  Unlike {!to_array}, no copy is made. *)

val partition : shards:int -> t -> t array
(** Edge-partition into [shards] contiguous sub-streams of near-equal
    size (sizes differ by at most one; concatenation in order is the
    original stream).  The shard-merge primitive behind
    {!Pipeline.run_sharded}. *)

val to_array : t -> Edge.t array
(** A copy, for re-shuffling or persistence. *)

val save : t -> string -> unit
(** Text format: a header line [n m] is NOT stored; each line is
    "set elt" for insertions and "set elt -1" for deletions, so
    insertion-only streams round-trip byte-identically to the
    historical two-column format. *)

val load : string -> t
(** Inverse of {!save}, tolerant of tabs, repeated spaces, and
    leading/trailing whitespace (fields are split on runs of
    whitespace).  An optional third column is the turnstile sign and
    must be exactly ["1"], ["+1"] or ["-1"].  Raises [Failure] on
    malformed lines, naming the file, the 1-based line number, and the
    offending token (or field count) so a single bad record in a large
    file is findable.  Single pass into a growable edge buffer — no
    intermediate list. *)

val max_ids : t -> int * int
(** [(max set id + 1, max element id + 1)] — a cheap (m, n) bound for
    loaded streams. *)

val save_binary : t -> n:int -> m:int -> string -> unit
(** Store in the binary columnar {!Edge_file} format with universe
    bounds [n] (elements) and [m] (sets); raises [Failure] on i/o
    errors, [Invalid_argument] if an id exceeds its bound. *)

val load_binary : string -> t * int * int
(** [(edges, n, m)] from a binary edge file; raises [Failure] with the
    named {!Edge_file.error} rendering on any rejection. *)

val load_auto : string -> t
(** Dispatch on the file's magic bytes: binary files take the
    columnar reader (no string parsing), anything else the text
    {!load}. *)

val load_auto_dims : string -> t * int * int
(** Like {!load_auto}, returning [(t, m, n)] universe bounds alongside
    — from the header for binary files (which may legitimately exceed
    the ids actually present), from {!max_ids} for text. *)
