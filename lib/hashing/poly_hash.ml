(* [mask] is [range - 1] when the range is a power of two, else -1: for
   a field value v >= 0, [v mod 2^j = v land (2^j - 1)], and most hot
   ranges here are powers of two (sign ranges, superset counts, nested
   sampler levels), so the reduction is a mask instead of an idiv. *)
type t = { coeffs : int array; range : int; mask : int; mutable xnorm : int array }

let create ~indep ~range ~seed =
  if indep < 1 then invalid_arg "Poly_hash.create: indep must be >= 1";
  if range < 1 then invalid_arg "Poly_hash.create: range must be >= 1";
  let coeffs =
    Array.init indep (fun _ -> Prime_field.normalize (Splitmix.next_int seed))
  in
  let mask = if range land (range - 1) = 0 then range - 1 else -1 in
  { coeffs; range; mask; xnorm = [||] }

(* Horner evaluation: c_{d-1} x^{d-1} + ... + c_0.  Top-level with
   every free variable a parameter: a local [let rec] capturing [c]
   and [x] compiles to a heap closure per call without flambda —
   measurably 6 words on every hash evaluation of the hot path. *)
let rec horner c x acc i =
  if i < 0 then acc
  else horner c x (Prime_field.add (Prime_field.mul acc x) (Array.unsafe_get c i)) (i - 1)

let field_value t x =
  let x = Prime_field.normalize x in
  let c = t.coeffs in
  horner c x 0 (Array.length c - 1)

let hash t x =
  let v = field_value t x in
  if t.mask >= 0 then v land t.mask else v mod t.range

let keep t x = hash t x = 0

(* Coefficient-major batched Horner: one pass over the coefficient
   vector with the whole input block as the inner loop, so the d field
   elements are loaded d times total instead of d times per input.  The
   per-element arithmetic (normalize, then fold c_i in Horner order,
   then mod range) is identical operation-for-operation to [hash], so
   outputs are bit-for-bit those of [hash] on each input. *)
let hash_batch t xs ~pos ~len out =
  if len < 0 || pos < 0 || pos + len > Array.length xs then
    invalid_arg "Poly_hash.hash_batch: bad slice";
  if Array.length out < len then invalid_arg "Poly_hash.hash_batch: out too short";
  if Array.length t.xnorm < len then
    t.xnorm <- Array.make (max len (2 * Array.length t.xnorm)) 0;
  let xn = t.xnorm in
  for j = 0 to len - 1 do
    Array.unsafe_set xn j (Prime_field.normalize (Array.unsafe_get xs (pos + j)));
    Array.unsafe_set out j 0
  done;
  let c = t.coeffs in
  for i = Array.length c - 1 downto 0 do
    let ci = Array.unsafe_get c i in
    for j = 0 to len - 1 do
      Array.unsafe_set out j
        (Prime_field.add (Prime_field.mul (Array.unsafe_get out j) (Array.unsafe_get xn j)) ci)
    done
  done;
  if t.mask >= 0 then begin
    let m = t.mask in
    for j = 0 to len - 1 do
      Array.unsafe_set out j (Array.unsafe_get out j land m)
    done
  end
  else begin
    let r = t.range in
    for j = 0 to len - 1 do
      Array.unsafe_set out j (Array.unsafe_get out j mod r)
    done
  end

let range t = t.range
let indep t = Array.length t.coeffs
let words t = Array.length t.coeffs + 1
