examples/blog_watch.mli:
