(* Mkc_obs.Health — the declarative rule engine behind [--health],
   generalizing the PR-4 space watchdog.

   Claims checked here:
   1. parse accepts the three rule syntaxes (threshold, ratio-drift,
      stall), a trailing '!' for escalation, and rule_to_string
      round-trips every accepted rule; malformed specs get named
      errors.
   2. Threshold rules fire per violating committed sample; check is
      idempotent between commits (no re-fire without a new row).
   3. Ratio rules compare num·1e6/den against the ppm limit and skip
      samples whose denominator is not positive.
   4. Stall rules baseline on their first observed sample, then fire
      once a track has been unchanged for [window] consecutive
      samples while commits keep landing.
   5. An escalating rule raises Violation (after counting), matching
      --budget-strict; violations reports per-rule totals in rule
      order regardless of the registry switch.
   6. Unknown tracks are rejected at engine build time, naming the
      track. *)

module Health = Mkc_obs.Health
module Series = Mkc_obs.Series

let parse_ok spec =
  match Health.parse spec with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" spec e

let parse_err spec =
  match Health.parse spec with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" spec
  | Error e -> e

let test_parse_round_trip () =
  List.iter
    (fun spec -> Alcotest.(check string) spec spec (Health.rule_to_string (parse_ok spec)))
    [
      "cap=space.words>100000";
      "floor=pipeline.edges_per_sec<500";
      "cap=space.words>100000!";
      "drift=gc.minor_words/pipeline.edges>2000000";
      "drift=gc.minor_words/pipeline.edges>2000000!";
      "wedge=stall:pipeline.edges:5";
      "wedge=stall:pipeline.edges:5!";
    ];
  let r = parse_ok "cap=space.words>100000!" in
  Alcotest.(check bool) "escalate parsed" true r.Health.escalate;
  Alcotest.(check string) "name parsed" "cap" r.Health.name;
  (match r.Health.kind with
  | Health.Threshold { track; cmp = Health.Gt; limit } ->
      Alcotest.(check string) "track" "space.words" track;
      Alcotest.(check int) "limit" 100000 limit
  | _ -> Alcotest.fail "wanted Threshold Gt");
  (match (parse_ok "drift=a/b>250000").Health.kind with
  | Health.Ratio_drift { num = "a"; den = "b"; max_ppm = 250000 } -> ()
  | _ -> Alcotest.fail "wanted Ratio_drift");
  match (parse_ok "wedge=stall:t:3").Health.kind with
  | Health.Stall { track = "t"; window = 3 } -> ()
  | _ -> Alcotest.fail "wanted Stall"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_parse_errors () =
  let expect spec fragment =
    let e = parse_err spec in
    if not (contains ~needle:fragment e) then
      Alcotest.failf "parse %S: error %S lacks %S" spec e fragment
  in
  expect "space.words>10" "expected name=spec";
  expect "bad name=x>1" "bad rule name";
  expect "a=track>" "not an integer";
  expect "a=track>ten" "not an integer";
  expect "a=stall:track:0" "stall window must be >= 1";
  expect "a=stall:track:x" "not an integer";
  expect "a=n/d<5" "ratio rules only support '>'"

(* A 1-track (or 2-track) series plus an engine over it, with events
   captured.  Metrics registry stays untouched: violations totals are
   claim-5 independent of the switch. *)
let rig tracks rules =
  let s = Series.create ~capacity:16 ~tracks in
  let events = ref [] in
  let eng =
    Health.create
      ~on_event:(fun ~name ~value -> events := (name, value) :: !events)
      s
      (List.map parse_ok rules)
  in
  (s, eng, events)

let feed s vals =
  List.iteri (fun i v -> Series.stage s i v) vals;
  Series.commit s ~at_ns:(Series.total s + 1) ~at_edges:((Series.total s + 1) * 100)

let test_threshold () =
  let s, eng, events = rig [| "v" |] [ "cap=v>10"; "floor=v<3" ] in
  List.iter
    (fun v ->
      feed s [ v ];
      Health.check eng)
    [ 5; 11; 2; 50; 7 ];
  Alcotest.(check (list (pair string int)))
    "per-rule totals in rule order"
    [ ("cap", 2); ("floor", 1) ]
    (Health.violations eng);
  let cap_events = List.filter (fun (n, _) -> n = "health.cap.violations") !events in
  Alcotest.(check int) "cap events" 2 (List.length cap_events);
  Alcotest.(check (list (pair string int)))
    "floor event payload"
    [ ("health.floor.violations", 1) ]
    (List.filter (fun (n, _) -> n = "health.floor.violations") !events)

let test_check_idempotent () =
  let s, eng, _ = rig [| "v" |] [ "cap=v>10" ] in
  feed s [ 99 ];
  Health.check eng;
  (* same committed row re-checked: must not double-count *)
  Health.check eng;
  Health.check eng;
  Alcotest.(check (list (pair string int))) "one firing" [ ("cap", 1) ] (Health.violations eng);
  feed s [ 99 ];
  Health.check eng;
  Alcotest.(check (list (pair string int))) "new row fires again" [ ("cap", 2) ]
    (Health.violations eng)

let test_ratio () =
  let s, eng, _ = rig [| "n"; "d" |] [ "drift=n/d>500000" ] in
  (* 1/4 = 250000 ppm: quiet.  3/4 = 750000 ppm: fires.  5/0: the
     denominator guard skips the sample entirely. *)
  List.iter
    (fun (n, d) ->
      feed s [ n; d ];
      Health.check eng)
    [ (1, 4); (3, 4); (5, 0); (2, 4) ];
  Alcotest.(check (list (pair string int))) "ratio firings" [ ("drift", 1) ]
    (Health.violations eng)

let test_stall () =
  let s, eng, _ = rig [| "v" |] [ "wedge=stall:v:2" ] in
  let step v =
    feed s [ v ];
    Health.check eng;
    List.assoc "wedge" (Health.violations eng)
  in
  (* First sample is the baseline, never a firing. *)
  Alcotest.(check int) "baseline" 0 (step 5);
  Alcotest.(check int) "1 unchanged < window" 0 (step 5);
  Alcotest.(check int) "2 unchanged = window fires" 1 (step 5);
  Alcotest.(check int) "still wedged keeps firing" 2 (step 5);
  Alcotest.(check int) "progress resets the run" 2 (step 6);
  Alcotest.(check int) "one stale again" 2 (step 6);
  Alcotest.(check int) "re-wedged fires" 3 (step 6)

let test_escalation () =
  let s, eng, events = rig [| "v" |] [ "cap=v>10!" ] in
  feed s [ 5 ];
  Health.check eng;
  feed s [ 42 ];
  (match Health.check eng with
  | () -> Alcotest.fail "escalating rule did not raise"
  | exception Health.Violation msg ->
      if not (contains ~needle:"cap" msg && contains ~needle:"42" msg) then
        Alcotest.failf "violation message %S lacks rule name/value" msg);
  (* The firing was counted and the event emitted before the raise. *)
  Alcotest.(check (list (pair string int))) "counted" [ ("cap", 1) ] (Health.violations eng);
  Alcotest.(check (list (pair string int)))
    "event emitted" [ ("health.cap.violations", 1) ] !events

let test_unknown_track () =
  let s = Series.create ~capacity:4 ~tracks:[| "v" |] in
  let expect_unknown rule =
    match Health.create s [ parse_ok rule ] with
    | _ -> Alcotest.failf "engine accepted unknown track in %S" rule
    | exception Invalid_argument msg ->
        if not (contains ~needle:"ghost" msg) then
          Alcotest.failf "error %S does not name the track" msg
  in
  expect_unknown "a=ghost>5";
  expect_unknown "a=v/ghost>5";
  expect_unknown "a=stall:ghost:2"

let suite =
  [
    Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "threshold rules" `Quick test_threshold;
    Alcotest.test_case "check idempotent between commits" `Quick test_check_idempotent;
    Alcotest.test_case "ratio drift" `Quick test_ratio;
    Alcotest.test_case "stall detection" `Quick test_stall;
    Alcotest.test_case "escalation raises after counting" `Quick test_escalation;
    Alcotest.test_case "unknown track rejected" `Quick test_unknown_track;
  ]
