(** Binary columnar edge files.

    Fixed-width column-major storage for edge streams: an 8-byte magic,
    a 48-byte header (version, n, m, edge count, FNV-1a checksum), then
    the set-id column and the element-id column as contiguous runs of
    little-endian int64 — mmap-able by construction, no string parsing
    on read.  The v2 (turnstile) record appends a one-byte-per-edge
    sign column (0 = insertion, 1 = deletion) under its own magic and
    version; {!write} emits v2 only when a deletion is present, so
    insertion-only streams keep producing byte-identical v1 files and
    v1 files written by older builds keep loading.  The [convert] CLI
    subcommand produces these from the text format;
    {!Stream_source.load_auto} dispatches on the magic. *)

type error =
  | Bad_magic of string
  | Bad_version of int
  | Truncated of string
  | Checksum_mismatch of { expected : string; got : string }
  | Malformed of string
  | Io_error of string

val error_to_string : error -> string

val magic : string
(** First 8 bytes of a v1 (insertion-only) edge file: ["MKCEDG1\n"]. *)

val magic_v2 : string
(** First 8 bytes of a v2 (signed, turnstile) edge file:
    ["MKCEDG2\n"]. *)

val version : int
val version_v2 : int

val write : string -> Edge.t array -> n:int -> m:int -> (int, error) result
(** [write path edges ~n ~m] stores the stream with universe bounds
    [n] (elements) and [m] (sets); returns the byte size written.
    @raise Invalid_argument if an id is outside its universe bound. *)

val read : string -> (Edge.t array * int * int, error) result
(** [read path] loads [(edges, n, m)], verifying magic, version, exact
    length, checksum and id ranges — every failure is a named
    {!error}, never a silent partial load. *)

val is_binary : string -> bool
(** Magic sniff; false on unreadable or short files. *)
