lib/coverage/sieve.mli: Greedy
