(* Allocation-regression tests for the flat sketch engine.

   The flat rewrites promise a hot feed path with (near-)zero words
   allocated per edge: every table lives on preallocated int arrays,
   prunes compact in place through preallocated scratch, and probe
   loops are tail calls.  These tests pin that property with the GC's
   own meter: feed 64k edges through each sketch and assert the
   [Gc.minor_words] delta stays below a small constant per edge.

   Budget: 2.0 words/edge — generous against the ideal of 0 (it
   absorbs the boxed-float results of [Gc.minor_words] itself and any
   rare non-hot-path residue) but far below one boxed int64 (3 words)
   or one [Some] cell per edge, so any reintroduction of per-edge
   boxing fails immediately. *)

module Sm = Mkc_hashing.Splitmix
module L0 = Mkc_sketch.L0_bjkst
module Cs = Mkc_sketch.Count_sketch
module Hh = Mkc_sketch.F2_heavy_hitter
module Ams = Mkc_sketch.F2_ams
module Fc = Mkc_sketch.F2_contributing
module Sampler = Mkc_sketch.Sampler

let edges = 65536
let budget = 2.0

(* A fixed pseudo-random id stream, wide enough (20 bits) to force L0
   prunes and tracker churn, shared by every test. *)
let ids =
  let s = Sm.create 424242 in
  Array.init edges (fun _ -> Sm.next_int s land 0xF_FFFF)

(* Words of minor allocation per edge across one full [feed] pass.  The
   first pass is a warm-up: it triggers any one-time work (first
   prunes, table fills) outside the measured window. *)
let words_per_edge feed =
  feed ();
  Gc.full_major ();
  let before = Gc.minor_words () in
  feed ();
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int edges

let check_budget name feed =
  let wpe = words_per_edge feed in
  if wpe > budget then
    Alcotest.failf "%s allocates %.3f words/edge (budget %.1f)" name wpe budget

let test_l0 () =
  let sk = L0.create ~seed:(Sm.create 1) () in
  check_budget "l0_bjkst.add" (fun () ->
      for i = 0 to edges - 1 do
        L0.add sk (Array.unsafe_get ids i)
      done)

let test_count_sketch () =
  let sk = Cs.create ~width:256 ~seed:(Sm.create 2) () in
  check_budget "count_sketch.add" (fun () ->
      for i = 0 to edges - 1 do
        Cs.add sk (Array.unsafe_get ids i) 1
      done)

let test_f2_heavy_hitter () =
  let sk = Hh.create ~phi:0.01 ~seed:(Sm.create 3) () in
  check_budget "f2_heavy_hitter.add" (fun () ->
      for i = 0 to edges - 1 do
        Hh.add sk (Array.unsafe_get ids i) 1
      done)

let test_f2_ams () =
  let sk = Ams.create ~seed:(Sm.create 4) () in
  check_budget "f2_ams.add" (fun () ->
      for i = 0 to edges - 1 do
        Ams.add sk (Array.unsafe_get ids i) 1
      done)

let test_f2_contributing () =
  let sk = Fc.create ~gamma:0.1 ~r:1024 ~indep:8 ~seed:(Sm.create 5) () in
  check_budget "f2_contributing.add" (fun () ->
      for i = 0 to edges - 1 do
        Fc.add sk (Array.unsafe_get ids i) 1
      done)

let test_memo () =
  let memo = Sampler.Memo.create ~slots:4096 in
  check_budget "sampler.memo find/store" (fun () ->
      for i = 0 to edges - 1 do
        let id = Array.unsafe_get ids i in
        let v = Sampler.Memo.find memo id in
        if v = Sampler.Memo.absent then Sampler.Memo.store memo id (id land 7)
      done)

let test_nested_sampler () =
  let ns =
    Sampler.Nested.create ~base_rate:0.001 ~levels:10 ~indep:8 ~seed:(Sm.create 6)
  in
  check_budget "sampler.nested min_keep_level_code" (fun () ->
      for i = 0 to edges - 1 do
        ignore (Sampler.Nested.min_keep_level_code ns (Array.unsafe_get ids i))
      done)

let suite =
  [
    Alcotest.test_case "l0_bjkst feed is allocation-free" `Quick test_l0;
    Alcotest.test_case "count_sketch feed is allocation-free" `Quick
      test_count_sketch;
    Alcotest.test_case "f2_heavy_hitter feed is allocation-free" `Quick
      test_f2_heavy_hitter;
    Alcotest.test_case "f2_ams feed is allocation-free" `Quick test_f2_ams;
    Alcotest.test_case "f2_contributing feed is allocation-free" `Quick
      test_f2_contributing;
    Alcotest.test_case "sampler memo is allocation-free" `Quick test_memo;
    Alcotest.test_case "nested sampler decide is allocation-free" `Quick
      test_nested_sampler;
  ]
