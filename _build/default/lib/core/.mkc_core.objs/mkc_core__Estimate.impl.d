lib/core/estimate.ml: Array Hashtbl List Mkc_hashing Option Oracle Params Solution Universe_reduction
