lib/hashing/poly_hash.mli: Splitmix
