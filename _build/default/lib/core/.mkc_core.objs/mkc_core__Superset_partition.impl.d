lib/core/superset_partition.ml: List Mkc_hashing Option
