type provenance =
  | Trivial
  | Large_common of { beta : int }
  | Large_set of { superset : int; repeat : int; via_l0_fallback : bool }
  | Small_set of { gamma_exp : int; repeat : int }

type outcome = { estimate : float; witness : unit -> int list; provenance : provenance }

let best outcomes =
  List.fold_left
    (fun acc o ->
      match (acc, o) with
      | None, o -> o
      | Some _, None -> acc
      | Some a, Some b -> if b.estimate > a.estimate then o else acc)
    None outcomes

let provenance_key = function
  | Trivial -> "trivial"
  | Large_common _ -> "large_common"
  | Large_set _ -> "large_set"
  | Small_set _ -> "small_set"

let pp_provenance ppf = function
  | Trivial -> Format.fprintf ppf "trivial"
  | Large_common { beta } -> Format.fprintf ppf "large-common(β=%d)" beta
  | Large_set { superset; repeat; via_l0_fallback } ->
      Format.fprintf ppf "large-set(D%d, rep %d%s)" superset repeat
        (if via_l0_fallback then ", l0-fallback" else "")
  | Small_set { gamma_exp; repeat } ->
      Format.fprintf ppf "small-set(γ=2^-%d, rep %d)" gamma_exp repeat

let pp ppf o =
  Format.fprintf ppf "estimate=%.1f via %a" o.estimate pp_provenance o.provenance
