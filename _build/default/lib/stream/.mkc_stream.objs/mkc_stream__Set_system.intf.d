lib/stream/set_system.mli: Edge Format
