(* Binary columnar edge files.

   Layout (all integers little-endian int64):

     offset  0   magic   "MKCEDG1\n" (v1) or "MKCEDG2\n" (v2, signed)
     offset  8   version (1 for v1 magic, 2 for v2 magic)
     offset 16   n       (element universe bound: every elt in [0, n))
     offset 24   m       (set universe bound: every set in [0, m))
     offset 32   count   (number of edges)
     offset 40   checksum — FNV-1a 64 over the column bytes
     offset 48   set column: count × int64
     then        elt column: count × int64
     then (v2)   sign column: count × 1 byte (0 = +1, 1 = −1)

   Column-major fixed-width records: the columns are contiguous runs
   of fixed-width values, so the format is mmap-able by construction
   (no variable-length rows, no string parsing on read), and loading
   is bulk reads plus integer extraction.

   v2 is the turnstile record: it appends a one-byte-per-edge sign
   column and bumps both magic and version, so a v1 reader rejects it
   by name instead of silently dropping deletions.  [write] emits v1
   whenever every sign is +1 — insertion-only streams keep producing
   byte-identical v1 files — and v2 only when a deletion is present.

   Error handling mirrors the checkpoint envelope's matrix: every
   rejection is a named variant — bad magic, version/magic mismatch,
   truncation, checksum mismatch, out-of-range ids or sign bytes —
   never a silent partial load. *)

type error =
  | Bad_magic of string
  | Bad_version of int
  | Truncated of string
  | Checksum_mismatch of { expected : string; got : string }
  | Malformed of string
  | Io_error of string

let magic = "MKCEDG1\n"
let magic_v2 = "MKCEDG2\n"

let error_to_string = function
  | Bad_magic s ->
      Printf.sprintf "not an edge file (magic %S, expected %S or %S)" s magic magic_v2
  | Bad_version v ->
      Printf.sprintf
        "unsupported edge file version %d (v1 magic takes version 1, v2 magic version \
         2)"
        v
  | Truncated msg -> Printf.sprintf "truncated edge file: %s" msg
  | Checksum_mismatch { expected; got } ->
      Printf.sprintf "checksum mismatch: header says %s, columns hash to %s" got expected
  | Malformed msg -> Printf.sprintf "malformed edge file: %s" msg
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg

let version = 1
let version_v2 = 2
let header_bytes = 48

(* Same FNV-1a 64 as the checkpoint envelope, over a bytes region. *)
let fnv1a64 b ~pos ~len =
  let h = ref 0xCBF29CE484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h 0x100000001B3L
  done;
  !h

let hex64 v = Printf.sprintf "%016Lx" v

let write path edges ~n ~m =
  if n < 0 || m < 0 then invalid_arg "Edge_file.write: negative universe bound";
  let count = Array.length edges in
  let signed = Array.exists (fun (e : Edge.t) -> e.sign < 0) edges in
  let body_len = if signed then 17 * count else 16 * count in
  let body = Bytes.create body_len in
  for i = 0 to count - 1 do
    let (e : Edge.t) = Array.unsafe_get edges i in
    if e.set >= m then
      invalid_arg
        (Printf.sprintf "Edge_file.write: set id %d out of range [0, %d)" e.set m);
    if e.elt >= n then
      invalid_arg
        (Printf.sprintf "Edge_file.write: element id %d out of range [0, %d)" e.elt n);
    Bytes.set_int64_le body (8 * i) (Int64.of_int e.set);
    Bytes.set_int64_le body (8 * (count + i)) (Int64.of_int e.elt);
    if signed then
      Bytes.set body ((16 * count) + i) (if e.sign >= 0 then '\000' else '\001')
  done;
  let header = Bytes.create header_bytes in
  Bytes.blit_string (if signed then magic_v2 else magic) 0 header 0 8;
  Bytes.set_int64_le header 8 (Int64.of_int (if signed then version_v2 else version));
  Bytes.set_int64_le header 16 (Int64.of_int n);
  Bytes.set_int64_le header 24 (Int64.of_int m);
  Bytes.set_int64_le header 32 (Int64.of_int count);
  Bytes.set_int64_le header 40 (fnv1a64 body ~pos:0 ~len:body_len);
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_bytes oc header;
        output_bytes oc body)
  with
  | () -> Ok (header_bytes + body_len)
  | exception Sys_error msg -> Error (Io_error msg)

(* Magic sniff for format dispatch: a short or unreadable file is
   simply "not binary" here — the text loader will report it. *)
let is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic 8 with
          | s -> String.equal s magic || String.equal s magic_v2
          | exception End_of_file -> false)

let ( let* ) = Result.bind

let checked_to_int name v =
  let i = Int64.to_int v in
  if Int64.of_int i <> v || i < 0 then
    Error (Malformed (Printf.sprintf "%s %Ld out of range" name v))
  else Ok i

let read path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let file_len = in_channel_length ic in
          let* header =
            if file_len < header_bytes then
              Error
                (Truncated
                   (Printf.sprintf "%d bytes, need %d for the header" file_len
                      header_bytes))
            else
              match really_input_string ic header_bytes with
              | s -> Ok (Bytes.of_string s)
              | exception End_of_file -> Error (Truncated "header read failed")
          in
          let got_magic = Bytes.sub_string header 0 8 in
          let* signed =
            if String.equal got_magic magic then Ok false
            else if String.equal got_magic magic_v2 then Ok true
            else Error (Bad_magic got_magic)
          in
          let* ver = checked_to_int "version" (Bytes.get_int64_le header 8) in
          (* The version must match the magic: a v1 magic carrying v2
             fields (or vice versa) is rejected by name, not read with
             the wrong column layout. *)
          let* () =
            if ver = if signed then version_v2 else version then Ok ()
            else Error (Bad_version ver)
          in
          let* n = checked_to_int "n" (Bytes.get_int64_le header 16) in
          let* m = checked_to_int "m" (Bytes.get_int64_le header 24) in
          let* count = checked_to_int "count" (Bytes.get_int64_le header 32) in
          let stored_crc = Bytes.get_int64_le header 40 in
          let body_len = if signed then 17 * count else 16 * count in
          let* () =
            if file_len <> header_bytes + body_len then
              Error
                (Truncated
                   (Printf.sprintf "%d bytes, header promises %d edges (%d bytes)"
                      file_len count (header_bytes + body_len)))
            else Ok ()
          in
          let body = Bytes.create body_len in
          let* () =
            match really_input ic body 0 body_len with
            | () -> Ok ()
            | exception End_of_file -> Error (Truncated "column read failed")
          in
          let crc = fnv1a64 body ~pos:0 ~len:body_len in
          let* () =
            if Int64.equal crc stored_crc then Ok ()
            else
              Error (Checksum_mismatch { expected = hex64 crc; got = hex64 stored_crc })
          in
          let* edges =
            let rec go i acc =
              if i < 0 then Ok acc
              else
                let* s = checked_to_int "set id" (Bytes.get_int64_le body (8 * i)) in
                let* e =
                  checked_to_int "element id" (Bytes.get_int64_le body (8 * (count + i)))
                in
                if s >= m then
                  Error
                    (Malformed (Printf.sprintf "set id %d out of range [0, %d)" s m))
                else if e >= n then
                  Error
                    (Malformed
                       (Printf.sprintf "element id %d out of range [0, %d)" e n))
                else
                  let* sign =
                    if not signed then Ok 1
                    else
                      match Bytes.get body ((16 * count) + i) with
                      | '\000' -> Ok 1
                      | '\001' -> Ok (-1)
                      | c ->
                          Error
                            (Malformed
                               (Printf.sprintf "sign byte %d out of range at edge %d"
                                  (Char.code c) i))
                  in
                  acc.(i) <- Edge.signed ~sign ~set:s ~elt:e;
                  go (i - 1) acc
            in
            if count = 0 then Ok [||]
            else go (count - 1) (Array.make count (Edge.make ~set:0 ~elt:0))
          in
          Ok (edges, n, m))
