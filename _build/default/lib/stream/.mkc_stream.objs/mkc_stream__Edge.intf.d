lib/stream/edge.mli: Format
