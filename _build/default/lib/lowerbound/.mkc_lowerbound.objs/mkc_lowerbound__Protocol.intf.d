lib/lowerbound/protocol.mli: Disjointness Mkc_core Mkc_stream
