lib/hashing/pairwise.mli: Splitmix
