module Bernoulli = struct
  type t = { hash : Mkc_hashing.Poly_hash.t }

  let create ~rate ~indep ~seed =
    let range = Mkc_hashing.Hash_family.sample_rate_range ~rate in
    { hash = Mkc_hashing.Poly_hash.create ~indep ~range ~seed }

  let keep t x = Mkc_hashing.Poly_hash.keep t.hash x
  let rate t = 1.0 /. float_of_int (Mkc_hashing.Poly_hash.range t.hash)
  let words t = Mkc_hashing.Poly_hash.words t.hash
end

module Nested = struct
  type t = { hash : Mkc_hashing.Poly_hash.t; base_range : int; levels : int }

  let create ~base_rate ~levels ~indep ~seed =
    if levels < 1 then invalid_arg "Nested.create: levels must be >= 1";
    if base_rate <= 0.0 then invalid_arg "Nested.create: base_rate must be positive";
    (* Round the base rate down to a reciprocal power of two so that
       level ranges nest exactly. *)
    let base_range =
      if base_rate >= 1.0 then 1
      else begin
        let r = ref 1 in
        while 1.0 /. float_of_int (!r * 2) >= base_rate do
          r := !r * 2
        done;
        !r
      end
    in
    { hash = Mkc_hashing.Poly_hash.create ~indep ~range:base_range ~seed; base_range; levels }

  let range_at t level =
    if level < 0 || level >= t.levels then invalid_arg "Nested: level out of range";
    max 1 (t.base_range lsr level)

  let keep t ~level x = Mkc_hashing.Poly_hash.hash t.hash x mod range_at t level = 0

  let min_keep_level t x =
    let h = Mkc_hashing.Poly_hash.hash t.hash x in
    let rec go level =
      if level >= t.levels then None
      else if h mod max 1 (t.base_range lsr level) = 0 then Some level
      else go (level + 1)
    in
    go 0
  let rate t ~level = 1.0 /. float_of_int (range_at t level)
  let levels t = t.levels
  let words t = Mkc_hashing.Poly_hash.words t.hash + 2
end

module Reservoir = struct
  type t = {
    cap : int;
    buf : int array;
    mutable count : int;
    rng : Mkc_hashing.Splitmix.t;
  }

  let create ~cap ~seed =
    if cap < 1 then invalid_arg "Reservoir.create: cap must be >= 1";
    { cap; buf = Array.make cap 0; count = 0; rng = seed }

  let add t x =
    if t.count < t.cap then t.buf.(t.count) <- x
    else begin
      let j = Mkc_hashing.Splitmix.below t.rng (t.count + 1) in
      if j < t.cap then t.buf.(j) <- x
    end;
    t.count <- t.count + 1

  let contents t = Array.sub t.buf 0 (min t.count t.cap)
  let seen t = t.count
  let words t = t.cap + 2
end
