examples/quickstart.ml: Array Format List Mkc_core Mkc_coverage Mkc_stream Mkc_workload
