(** Sieve-streaming baseline for SET-ARRIVAL streams (Badanidiyuru–
    Mirzasoleiman–Karbasi–Krause [9], specialized to coverage).

    Table 1's "Reporting / Set Arrival / 2 / Õ(n)" row: maintain
    O(log k / ε) parallel guesses [v] of OPT; under guess [v], admit an
    arriving set if its marginal coverage is at least
    [(v/2 − current) / (k − |sol|)].  Space is dominated by one covered-
    element bitmap per guess — Õ(n), which is exactly what edge-arrival
    algorithms cannot afford and why the paper's regime is different.

    This baseline consumes sets as unit objects; it CANNOT run on
    edge-arrival streams (the point of the comparison). *)

type t

val create : n:int -> k:int -> ?epsilon:float -> unit -> t
(** Default [epsilon] = 0.1. *)

val feed : t -> int -> int array -> unit
(** [feed t id members]: one set arrives. *)

val result : t -> Greedy.result
val words : t -> int

val improves : ?epsilon:float -> champion:float -> float -> bool
(** The sieve's (1+ε) swap comparator, factored out for reuse:
    [improves ~champion v] is true iff [v > (1+ε)·champion] — the same
    geometric-threshold test that spaces this module's guess ladder.
    Consumers that track a running champion (e.g. the windowed
    estimator's per-epoch best) use it to decide swaps, so champion
    churn is logarithmic in the value range rather than linear in the
    number of challengers.  Default [epsilon] = 0.1; raises
    [Invalid_argument] if [epsilon <= 0]. *)

val edge_sink : t -> Greedy.result Mkc_stream.Sink.Set_arrival.t
(** The sieve as an edge sink via the set-arrival adapter: drive it with
    [Mkc_stream.Sink.Set_arrival.sink ()] over a stream whose edges
    arrive grouped by set (e.g. the canonical set-major order).  On any
    other order the adapter re-feeds fragments of a set as separate
    arrivals — which is exactly the failure the paper's edge-arrival
    model exposes. *)
