examples/dsj_game.mli:
