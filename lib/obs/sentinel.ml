(* Noise-aware baseline-vs-candidate comparison over ledger records.
   See the .mli for the decision procedure.  Everything here is pure:
   two entries and the options in, a verdict and its evidence out —
   the verdict table in test_sentinel.ml leans on that. *)

type verdict =
  | Improved of string
  | Within_noise
  | Regressed of string
  | Incomparable of string

type opts = {
  noise_floor : float;
  p99_band : float;
  p99_abs_floor : int;
  quality_tol : float;
}

let default_opts = { noise_floor = 0.02; p99_band = 0.5; p99_abs_floor = 1000; quality_tol = 0.01 }

type report = { r_verdict : verdict; r_lines : string list }

let verdict_to_string = function
  | Improved why -> "improved: " ^ why
  | Within_noise -> "within noise"
  | Regressed why -> "regressed: " ^ why
  | Incomparable why -> "incomparable: " ^ why

let pct x = Printf.sprintf "%+.1f%%" (100.0 *. x)

(* The noise band is the baseline's own best-vs-median spread: k
   repeats of the same binary tell us how much this host jitters, and
   anything inside that spread is indistinguishable from re-running
   the baseline.  The floor keeps a suspiciously tight baseline (or
   repeats = 1, where the spread is 0) from flagging noise. *)
let noise_band opts (b : Ledger.mode_stat) =
  let spread = if b.ms_best_s > 0.0 then (b.ms_median_s -. b.ms_best_s) /. b.ms_best_s else 0.0 in
  Float.max opts.noise_floor spread

let diff_keys base cand =
  (* Both assoc lists arrive sorted (the ledger encoder sorts); a
     merge walk names every key that is missing or differs. *)
  let rec go acc base cand =
    match (base, cand) with
    | [], [] -> List.rev acc
    | (k, _) :: rest, [] -> go (k :: acc) rest []
    | [], (k, _) :: rest -> go (k :: acc) [] rest
    | (kb, vb) :: rb, (kc, vc) :: rc ->
        let c = String.compare kb kc in
        if c < 0 then go (kb :: acc) rb cand
        else if c > 0 then go (kc :: acc) base rc
        else go (if vb = vc then acc else kb :: acc) rb rc
  in
  go [] base cand

let compare_entries ?(opts = default_opts) ~(baseline : Ledger.entry)
    ~(candidate : Ledger.entry) () =
  if not (String.equal baseline.e_label candidate.e_label) then
    let why =
      Printf.sprintf "labels differ (baseline %S, candidate %S)" baseline.e_label
        candidate.e_label
    in
    { r_verdict = Incomparable why; r_lines = [ why ] }
  else
    match diff_keys baseline.e_params candidate.e_params with
    | _ :: _ as keys ->
        let why = "params differ: " ^ String.concat ", " keys in
        { r_verdict = Incomparable why; r_lines = [ why ] }
    | [] -> (
        let common_modes =
          List.filter_map
            (fun (b : Ledger.mode_stat) ->
              List.find_opt
                (fun (c : Ledger.mode_stat) -> String.equal c.ms_mode b.ms_mode)
                candidate.e_modes
              |> Option.map (fun c -> (b, c)))
            baseline.e_modes
        in
        if common_modes = [] && (baseline.e_modes <> [] || candidate.e_modes <> []) then
          let why = "no common pipeline modes between baseline and candidate" in
          { r_verdict = Incomparable why; r_lines = [ why ] }
        else begin
          let lines = ref [] and regressions = ref [] and improvements = ref [] in
          let note l = lines := l :: !lines in
          (* Throughput: best-of-k edges/s per mode against the
             baseline's own noise band. *)
          List.iter
            (fun ((b : Ledger.mode_stat), (c : Ledger.mode_stat)) ->
              let band = noise_band opts b in
              if b.ms_edges_per_sec > 0.0 then begin
                let rel = (c.ms_edges_per_sec -. b.ms_edges_per_sec) /. b.ms_edges_per_sec in
                note
                  (Printf.sprintf "mode %s: %s edges/s (noise band ±%.1f%%, %d vs %d repeats)"
                     b.ms_mode (pct rel) (100.0 *. band) b.ms_repeats c.ms_repeats);
                if rel < -.band then
                  regressions :=
                    Printf.sprintf "mode %s throughput %s (beyond noise band ±%.1f%%)" b.ms_mode
                      (pct rel) (100.0 *. band)
                    :: !regressions
                else if rel > band then
                  improvements :=
                    Printf.sprintf "mode %s throughput %s" b.ms_mode (pct rel) :: !improvements
              end)
            common_modes;
          (* Tail latency: a p99 that inflated beyond both the relative
             band and the absolute floor.  The floor keeps sub-µs
             digests (where one bucket is a large relative step) from
             tripping the check. *)
          List.iter
            (fun (name, (b : Histogram.digest)) ->
              match List.assoc_opt name candidate.e_digests with
              | Some (c : Histogram.digest) when b.d_count > 0 && c.d_count > 0 ->
                  let limit =
                    int_of_float (Float.of_int b.d_p99 *. (1.0 +. opts.p99_band))
                    + opts.p99_abs_floor
                  in
                  if c.d_p99 > limit then
                    regressions :=
                      Printf.sprintf "track %s p99 %d -> %d (limit %d)" name b.d_p99 c.d_p99
                        limit
                      :: !regressions
              | _ -> ())
            baseline.e_digests;
          (* Quality: the α-guarantee gauges must not drift.  Absolute
             tolerance — the gauges are ratios in [0, 1]. *)
          List.iter
            (fun (name, b) ->
              match List.assoc_opt name candidate.e_quality with
              | Some c when Float.abs (c -. b) > opts.quality_tol ->
                  regressions :=
                    Printf.sprintf "quality %s drifted %.6f -> %.6f (tolerance %.6f)" name b c
                      opts.quality_tol
                    :: !regressions
              | _ -> ())
            baseline.e_quality;
          let r_lines = List.rev !lines in
          match (List.rev !regressions, List.rev !improvements) with
          | (_ :: _ as regs), _ -> { r_verdict = Regressed (String.concat "; " regs); r_lines }
          | [], (_ :: _ as imps) -> { r_verdict = Improved (String.concat "; " imps); r_lines }
          | [], [] -> { r_verdict = Within_noise; r_lines }
        end)
