let chars = 8

(* Tables are stored as flat 32-bit halves in native-int arrays:
   entry [i*256 + c] of [lo] (resp. [hi]) is the low (resp. high) half
   of the 64-bit table word for character [c] of position [i].  XOR
   distributes over the halves, so folding the halves separately and
   recombining reproduces the original 64-bit hash bit-for-bit — but
   the fold itself runs entirely on immediate ints, so the per-key
   hot path ([hash_parts]) allocates nothing.  The boxed-[int64] view
   ([hash64]) survives for finalize-time consumers (KMV order
   statistics, tests). *)
type t = {
  lo : int array;
  hi : int array;
  mutable part_lo : int;
  mutable part_hi : int;
}

let create ~seed =
  let lo = Array.make (chars * 256) 0 in
  let hi = Array.make (chars * 256) 0 in
  (* Same Splitmix draw order as the historical int64 table layout
     (position-major, character-ascending), so seeds keep producing
     identical hash functions across checkpoint generations. *)
  for i = 0 to chars - 1 do
    for c = 0 to 255 do
      let v = Splitmix.next seed in
      let j = (i * 256) + c in
      lo.(j) <- Int64.to_int v land 0xFFFF_FFFF;
      hi.(j) <- Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFF_FFFF
    done
  done;
  { lo; hi; part_lo = 0; part_hi = 0 }

(* Fully unrolled: eight table loads per half, no loop counter, no
   refs, no boxing.  Results land in [part_lo]/[part_hi] so the caller
   reads two immediates instead of an allocated pair. *)
let[@inline] hash_parts t x =
  let lo = t.lo and hi = t.hi in
  let c0 = x land 0xFF in
  let c1 = 256 + ((x lsr 8) land 0xFF) in
  let c2 = 512 + ((x lsr 16) land 0xFF) in
  let c3 = 768 + ((x lsr 24) land 0xFF) in
  let c4 = 1024 + ((x lsr 32) land 0xFF) in
  let c5 = 1280 + ((x lsr 40) land 0xFF) in
  let c6 = 1536 + ((x lsr 48) land 0xFF) in
  let c7 = 1792 + ((x lsr 56) land 0xFF) in
  t.part_lo <-
    Array.unsafe_get lo c0
    lxor Array.unsafe_get lo c1
    lxor Array.unsafe_get lo c2
    lxor Array.unsafe_get lo c3
    lxor Array.unsafe_get lo c4
    lxor Array.unsafe_get lo c5
    lxor Array.unsafe_get lo c6
    lxor Array.unsafe_get lo c7;
  t.part_hi <-
    Array.unsafe_get hi c0
    lxor Array.unsafe_get hi c1
    lxor Array.unsafe_get hi c2
    lxor Array.unsafe_get hi c3
    lxor Array.unsafe_get hi c4
    lxor Array.unsafe_get hi c5
    lxor Array.unsafe_get hi c6
    lxor Array.unsafe_get hi c7

let part_lo t = t.part_lo
let part_hi t = t.part_hi

let hash64 t x =
  hash_parts t x;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.part_hi) 32)
    (Int64.of_int t.part_lo)

let hash t x r =
  if r < 1 then invalid_arg "Tabulation.hash: range must be >= 1";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (hash64 t x) 1) (Int64.of_int r))

let to_unit_float t x =
  let bits = Int64.shift_right_logical (hash64 t x) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(* Space accounting stays in logical 64-bit table words (chars · 256):
   the lo/hi split stores the same randomness in two native-int halves,
   an implementation detail, not extra sketch state. *)
let words _t = chars * 256
