type t = {
  system : Mkc_stream.Set_system.t;
  planted_sets : int list;
  planted_coverage : int;
}

let permutation rng m =
  let perm = Array.init m (fun i -> i) in
  for i = m - 1 downto 1 do
    let j = Mkc_hashing.Splitmix.below rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  perm

let planted ~n ~m ~num_planted ~coverage_fraction ~noise_size ?(noise_overlap = 0.5) ~seed () =
  if num_planted < 1 || num_planted > m then invalid_arg "Planted.planted: bad num_planted";
  if coverage_fraction <= 0.0 || coverage_fraction > 1.0 then
    invalid_arg "Planted.planted: coverage_fraction must be in (0, 1]";
  let rng = Mkc_hashing.Splitmix.create seed in
  let covered = max num_planted (int_of_float (coverage_fraction *. float_of_int n)) in
  let covered = min covered n in
  (* Planted sets: consecutive chunks of the covered region. *)
  let chunk i =
    let lo = covered * i / num_planted and hi = covered * (i + 1) / num_planted in
    Array.init (hi - lo) (fun j -> lo + j)
  in
  let noise () =
    Array.init noise_size (fun _ ->
        let from_covered =
          covered >= n
          || Mkc_hashing.Splitmix.below rng 1000 < int_of_float (noise_overlap *. 1000.0)
        in
        if from_covered then Mkc_hashing.Splitmix.below rng covered
        else covered + Mkc_hashing.Splitmix.below rng (n - covered))
  in
  (* Spread planted ids over [0, m) via a random permutation. *)
  let perm = permutation rng m in
  let sets = Array.make m [||] in
  for i = 0 to num_planted - 1 do
    sets.(perm.(i)) <- chunk i
  done;
  for i = num_planted to m - 1 do
    sets.(perm.(i)) <- noise ()
  done;
  let system = Mkc_stream.Set_system.create ~n ~m ~sets in
  let planted_sets = List.init num_planted (fun i -> perm.(i)) in
  { system; planted_sets; planted_coverage = covered }

let few_large ~n ~m ~k ~seed =
  planted ~n ~m ~num_planted:k ~coverage_fraction:0.5
    ~noise_size:(max 1 (n / (8 * max 1 k)))
    ~seed ()

let many_small ~n ~m ~k ~seed =
  let small = max 1 (n / (2 * max 1 k)) in
  planted ~n ~m ~num_planted:k ~coverage_fraction:0.5 ~noise_size:(max 1 (small / 2)) ~seed ()

let common_heavy ~n ~m ~k ~beta ~seed =
  if beta < 1 then invalid_arg "Planted.common_heavy: beta must be >= 1";
  let rng = Mkc_hashing.Splitmix.create seed in
  let num_common = max 1 (n / 4) in
  let freq = max 2 (m / (beta * k)) in
  let buckets = Array.make m [] in
  (* Common block: each of the first [num_common] elements lands in
     [freq] random sets — they are (βk)-common by construction. *)
  for e = 0 to num_common - 1 do
    for _ = 1 to freq do
      let s = Mkc_hashing.Splitmix.below rng m in
      buckets.(s) <- e :: buckets.(s)
    done
  done;
  (* Rare tail: each remaining element appears in exactly one set. *)
  for e = num_common to n - 1 do
    let s = Mkc_hashing.Splitmix.below rng m in
    buckets.(s) <- e :: buckets.(s)
  done;
  let system =
    Mkc_stream.Set_system.create ~n ~m ~sets:(Array.map Array.of_list buckets)
  in
  (* A certified k-cover: the k largest sets (a lower bound on OPT). *)
  let by_size =
    List.init m (fun i -> i)
    |> List.sort (fun a b ->
           compare (Mkc_stream.Set_system.set_size system b) (Mkc_stream.Set_system.set_size system a))
  in
  let planted_sets = List.filteri (fun i _ -> i < k) by_size in
  {
    system;
    planted_sets;
    planted_coverage = Mkc_stream.Set_system.coverage system planted_sets;
  }
