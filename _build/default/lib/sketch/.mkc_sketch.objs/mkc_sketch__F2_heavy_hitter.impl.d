lib/sketch/f2_heavy_hitter.ml: Count_sketch Float Hashtbl List Mkc_hashing Space
