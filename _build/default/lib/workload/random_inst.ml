let uniform ~n ~m ~set_size ~seed =
  let rng = Mkc_hashing.Splitmix.create seed in
  let sets =
    Array.init m (fun _ ->
        Array.init set_size (fun _ -> Mkc_hashing.Splitmix.below rng n))
  in
  Mkc_stream.Set_system.create ~n ~m ~sets

let zipf_sizes ~n ~m ~max_size ~skew ~seed =
  if max_size < 1 then invalid_arg "Random_inst.zipf_sizes: max_size must be >= 1";
  let rng = Mkc_hashing.Splitmix.create seed in
  let size_dist = Zipf.create ~n:max_size ~s:skew ~seed:(Mkc_hashing.Splitmix.fork rng 0) in
  let elt_dist = Zipf.create ~n ~s:skew ~seed:(Mkc_hashing.Splitmix.fork rng 1) in
  let sets =
    Array.init m (fun _ ->
        let size = 1 + Zipf.sample size_dist in
        Array.init size (fun _ -> Zipf.sample elt_dist))
  in
  Mkc_stream.Set_system.create ~n ~m ~sets
