(** Bounded candidate tracker for heavy-hitter identification.

    CountSketch alone cannot {e enumerate} heavy items; the standard fix
    (Charikar–Chen) is to keep a small set of candidate ids, updating a
    candidate's score whenever it reappears in the stream and evicting
    the lowest-scored candidate when over capacity.  Scores here are
    whatever estimate the caller supplies (typically the current
    CountSketch estimate). *)

type t

val create : cap:int -> t
val offer : t -> int -> float -> unit
(** [offer t id score]: insert or rescore [id]; may evict the current
    minimum if the tracker is full and [score] beats it. *)

val mem : t -> int -> bool
val to_list : t -> (int * float) list
(** Candidates with their last recorded scores, unordered. *)

val cardinal : t -> int
val words : t -> int
