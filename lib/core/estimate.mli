(** EstimateMaxCover (Figure 1, Theorems 3.1 and 3.6): the top-level
    single-pass α-approximate estimator of the optimal coverage size.

    - Trivial branch: when [kα ≥ m], return [n/α] — safe because any
      k-cover found by sampling k of m sets carries a ≥ k/m ≥ 1/α
      fraction of the total coverage in expectation.
    - Otherwise, for every guess [z ∈ {2^i}] of the optimal coverage
      size and [log(1/δ)] repeats, run an (α, δ, η)-oracle on the
      universe-reduced stream [(S, h_z(e))].  A guess is accepted when
      its best repeat's estimate reaches [z/(accept·α)]; the answer is
      the largest accepted estimate, which lies in
      [\[OPT/Õ(α), OPT\]] with probability ≥ 3/4 (Theorem 3.6).

    Space: Õ(1) instances of the oracle ⇒ Õ(m/α²) total.

    This module is also the reporting algorithm's engine: the winning
    oracle's witness ids (Theorem 3.2) are exposed through the outcome;
    {!Report} packages them. *)

type t

val create : Params.t -> t
val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed}: builds a
    private {!Mkc_stream.Chunk_plan} for the slice and delegates to
    {!feed_planned}. *)

val feed_planned :
  t -> Mkc_stream.Chunk_plan.t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunk-deduplicated ingestion (bit-for-bit ≡ {!feed}): instances are
    driven instance-outer over the shared plan; each instance hashes the
    chunk's distinct elements once (coefficient-major universe
    reduction), makes every sampler decision once per distinct set or
    element id, and replays the chunk in original edge order. *)

type result = {
  estimate : float;
  outcome : Solution.outcome option;
      (** the winning oracle outcome ([None] only on the trivial branch
          failure path — see {!finalize}) *)
  z_guess : int;  (** the accepted coverage guess (0 on the trivial branch) *)
}

val finalize : t -> result
(** Always returns a result: if no guess is accepted the estimate falls
    back to the largest (unaccepted) oracle estimate, and to 0.0 when
    every oracle reported infeasible. *)

val guesses : t -> int list
(** The z-guess ladder (diagnostics). *)

val words : t -> int

val words_breakdown : t -> (string * int) list
(** Words per component under canonical dot-namespaced keys
    ([universe_reduction], [oracle.large_common.l0], …; sorted,
    duplicates merged), summed over all parallel oracle instances. *)

val stats : t -> ((int * int) * (string * int) list) list
(** Per-(z-guess, repeat) oracle work counters
    ({!Oracle.stats}) — one entry per Figure 1 instance, in ladder
    order.  Empty on the trivial branch. *)

val stats_totals : t -> (string * int) list
(** {!stats} summed across all oracle instances, sorted by key — the
    sketch-health totals ({!Oracle.stats} keys like
    ["large_common.l0_occupancy"], ["large_set.f2_tracked"]) that
    {!record_metrics} turns into ratios and the telemetry probes
    sample mid-run.  Empty on the trivial branch. *)

val winners : t -> (string * int) list
(** Winner attribution, one vote per (z, rep) oracle instance: which
    subroutine ([large_common]/[large_set]/[small_set], or ["trivial"],
    or ["none"] when every subroutine reported infeasible) won that
    instance's oracle max (Figure 2).  Counts sum to the number of
    oracle instances (1 on the trivial branch); sorted by key; empty
    before {!finalize}. *)

val word_budget : Params.t -> int
(** The theoretical space budget in words — Theorems 3.1/3.3's
    [Õ(m/α²)] with explicit constants:
    [instances · log²(mn) · (c_mass · m/α² + c_floor)], where
    [instances] is the z-ladder × repeats fan-out ([4k] on the trivial
    branch).  Feed it to {!Mkc_sketch.Space.Budget} to watchdog a
    run. *)

val record_metrics : ?registry:Mkc_obs.Registry.t -> t -> unit
(** Publish {!stats} into a metric registry (default
    {!Mkc_obs.Registry.global}): each counter is added both to the
    aggregate [estimate.oracle.<stat>] and to the per-instance
    [estimate.z<z>.rep<r>.<stat>].  Also publishes winner-attribution
    counters ([estimate.winner.<subroutine>]), per-guess acceptance
    outcomes ([estimate.z<z>.accepted]/[.rejected] and the
    [estimate.guess.*] totals), and sketch-health ratio gauges
    ([estimate.quality.memo.hit_ratio],
    [estimate.quality.f2.hh_recovery_rate]).  A no-op while
    {!Mkc_obs.Registry.enabled} is off.  Call after {!finalize} so
    finalize-time counters (heavy-hitter recoveries, winners) are
    included. *)

val encode : t -> Mkc_obs.Json.t
(** The full mutable estimator state — every (z, rep) oracle instance's
    payload — plus the {!Params.encode} inputs that pin the instance. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) Stdlib.result
(** Overlay an {!encode} payload onto a freshly {!create}d estimator;
    rejects payloads whose embedded params describe a different
    instance ({!Params.same_instance}) or whose branch/shape differ. *)

val merge_into : dst:t -> t -> unit
(** Fold a shard's oracle states in, instance by instance; raises
    [Invalid_argument] on a shape mismatch. *)

val ckpt_kind : string
(** The {!Mkc_stream.Checkpoint} kind tag, ["estimate"]. *)

val codec : Params.t -> t Mkc_stream.Checkpoint.codec
(** Checkpoint codec (kind {!ckpt_kind}, seed [base_seed]) for
    {!Mkc_stream.Pipeline.run_resumable}. *)

val of_payload : Mkc_obs.Json.t -> (t, string) Stdlib.result
(** Rebuild an estimator from a bare {!encode} payload: decode the
    embedded params, {!create}, then {!restore}.  Checkpoint files are
    self-describing — the merge/validate CLI needs no instance flags. *)

val params : t -> Params.t

val sink : (t, result) Mkc_stream.Sink.sink
(** The whole estimator as a single {!Mkc_stream.Sink}, for the
    sequential {!Mkc_stream.Pipeline} drivers. *)

val shards : t -> Mkc_stream.Sink.any array
(** The z-ladder × repeats fan-out as a data-driven array of mutually
    independent sinks — one per (guess, repeat) oracle instance, each
    with a private scratch buffer.  Driving every shard over the full
    stream (in any interleaving, e.g.
    {!Mkc_stream.Pipeline.feed_all_parallel}) leaves this estimator in
    exactly the state of edge-by-edge {!feed}; then {!finalize} as
    usual.  Empty on the trivial branch, which ignores the stream. *)

val shard_costs : t -> float array
(** Static relative per-edge feed costs, index-aligned with {!shards}
    (universe reduction + the instance's {!Oracle.cost_hint}).  Seeds
    {!Mkc_stream.Pipeline.feed_all_parallel}'s cost-aware bin packing;
    empty on the trivial branch. *)
