(* Deferred tracked-half state for one (counter, level).  The tracked
   table prunes only when more than 2·cap distinct coordinates are ever
   inserted; while [ever] (distinct supersets ever covered at this
   level) stays within that bound, pruning provably never fires, so
   tracked updates are a pure per-superset sum — accumulated in [pend]
   and applied in bulk by {!flush_level}.  The first chunk that would
   cross the bound flushes and replays per edge; that chunk necessarily
   prunes, and a pruned level ([prunes > 0]) replays per edge forever
   after — so [seen]/[ever] only need to be exact while no prune has
   fired, which makes them reconstructible from the table itself on
   restore/merge (see {!rebuild_defer}). *)
type level_defer = {
  pend : int array; (* sid -> pending signed tracked delta; min_int = not listed *)
  touched : int array; (* sids with a pending sum, compact; reset on flush *)
  mutable ntouched : int;
  seen : bool array; (* sid ever covered at this level *)
  mutable ever : int; (* number of [seen] sids *)
  mutable dirty : bool;
}

type repeat_state = {
  elem_sampler : Mkc_sketch.Sampler.Bernoulli.t option; (* None: rate 1 *)
  partition : Superset_partition.t; (* F -> [q] supersets (Claim 4.9) *)
  cntr_small : Mkc_sketch.F2_contributing.t;
  cntr_large : Mkc_sketch.F2_contributing.t;
  fallback_sampler : Mkc_sketch.Sampler.Bernoulli.t;
  fallback : (int, Mkc_sketch.L0_bjkst.t) Hashtbl.t; (* sampled supersets M *)
  fallback_seed : Mkc_hashing.Splitmix.t;
  (* Planned-path accelerators.  All four caches memoise pure,
     seed-determined functions (superset assignment, F2C subsampling
     codes, fallback sampling, element sampling), so a hit returns
     exactly what a recomputation would: sketch state is unchanged by
     construction.  They are scratch — uncounted in [words_breakdown],
     absent from checkpoints (restored runs start cold), and left
     as-is by merges (the memoised functions only depend on seeds,
     which shards share). *)
  sp_memo : Mkc_sketch.Sampler.Memo.t; (* set id -> superset id *)
  code_small : int array; (* sid -> cntr_small keep code; min_int = unknown *)
  code_large : int array; (* sid -> cntr_large keep code; min_int = unknown *)
  keepf_tab : int array; (* sid -> 0/1 fallback-sampled; -1 = unknown *)
  elem_memo : Mkc_sketch.Sampler.Memo.t; (* reduced elt -> 0/1 in-sample *)
  (* Deferred CountSketch deltas: the CS halves of both counters are
     linear and commutative, so per-chunk per-superset multiplicities
     accumulate here and are applied once — via {!flush_pending} —
     before any read of counter state (finalize, checkpoint encode,
     merge).  Final counter values are bit-for-bit the eager ones. *)
  cs_pending : int array; (* sid -> pending signed delta; min_int = not listed *)
  cs_touched : int array; (* sids with a pending sum, compact *)
  mutable cs_ntouched : int;
  mutable cs_dirty : bool;
  defer_small : level_defer array; (* per cntr_small level *)
  defer_large : level_defer array; (* per cntr_large level *)
}

type t = {
  params : Params.t;
  w : int;
  q : int; (* number of supersets *)
  rho : float; (* element sampling rate *)
  thr1 : float;
  thr2 : float;
  repeats : repeat_state array;
  (* feed_planned scratch, reused across chunks and repeats (repeats are
     driven serially): per-distinct-element / per-distinct-set decision
     tables. *)
  mutable sc_ins : bool array; (* distinct elt -> in element sample *)
  mutable sc_sids : int array; (* distinct set -> superset id *)
  mutable sc_small : int array; (* distinct set -> Cntr_small keep code *)
  mutable sc_large : int array; (* distinct set -> Cntr_large keep code *)
  mutable sc_keepf : bool array; (* distinct set -> fallback-sampled *)
  sc_sid_cnt : int array; (* sid -> signed in-sample sum this chunk; min_int = inactive *)
  sc_active : int array; (* compact list of sids touched this chunk *)
  mutable st_elem_sampler_evals : int;
  mutable st_fallback_sampler_evals : int;
  mutable st_f2_updates : int;
  mutable st_l0_updates : int;
  mutable st_hh_recoveries : int; (* set at finalize *)
  mutable st_hh_candidates : int; (* set at finalize *)
}

let create (params : Params.t) ~w ~seed =
  if w < 1 then invalid_arg "Large_set.create: w must be >= 1";
  let p = params in
  let q = max 2 (Mkc_hashing.Hash_family.ceil_div p.Params.m w) in
  let sa = Params.s_alpha p in
  let rho = min 1.0 (p.t_elem *. sa *. p.eta /. float_of_int p.u) in
  let l_size = rho *. float_of_int p.u in
  let thr1 = l_size /. (18.0 *. p.eta *. sa) in
  let thr2 = l_size /. (6.0 *. p.eta *. p.alpha) in
  let r1 = max 2 (int_of_float (ceil (3.0 *. sa))) in
  let r2 = max 2 (q / 4) in
  let gamma1 = min 1.0 (p.alpha *. p.alpha /. float_of_int p.m) in
  let gamma2 = 1.0 /. (2.0 *. max 1.0 (Float.log2 p.alpha)) in
  (* Figure 6 samples ~ q·log(m)/r2 supersets for the oversized-class
     fallback; with r2 = q/4 that is a constant-size pool. *)
  let fallback_rate = min 1.0 (8.0 *. float_of_int (q / r2) /. float_of_int q) in
  let mk_defer cntr =
    Array.init (Mkc_sketch.F2_contributing.levels cntr) (fun _ ->
        {
          (* min_int = "not in [touched]": a signed sum may legitimately
             pass through 0, so the value itself cannot double as the
             membership test (a 0-sentinel would re-append the sid and
             overflow the q-sized compact list under cancellation). *)
          pend = Array.make q min_int;
          touched = Array.make q 0;
          ntouched = 0;
          seen = Array.make q false;
          ever = 0;
          dirty = false;
        })
  in
  let mk_repeat r =
    let sd = Mkc_hashing.Splitmix.fork seed r in
    let cntr_small =
      Mkc_sketch.F2_contributing.create ~gamma:gamma1 ~r:r1 ~indep:p.indep
        ~seed:(Mkc_hashing.Splitmix.fork sd 2) ()
    in
    let cntr_large =
      Mkc_sketch.F2_contributing.create ~gamma:gamma2 ~r:r2 ~indep:p.indep
        ~seed:(Mkc_hashing.Splitmix.fork sd 3) ()
    in
    {
      elem_sampler =
        (if rho >= 1.0 then None
         else
           Some
             (Mkc_sketch.Sampler.Bernoulli.create ~rate:rho ~indep:p.indep
                ~seed:(Mkc_hashing.Splitmix.fork sd 0)));
      partition =
        Superset_partition.create ~m:p.Params.m ~q ~indep:p.indep
          ~seed:(Mkc_hashing.Splitmix.fork sd 1);
      cntr_small;
      cntr_large;
      fallback_sampler =
        Mkc_sketch.Sampler.Bernoulli.create ~rate:fallback_rate ~indep:p.indep
          ~seed:(Mkc_hashing.Splitmix.fork sd 4);
      fallback = Hashtbl.create 16;
      fallback_seed = Mkc_hashing.Splitmix.fork sd 5;
      sp_memo = Mkc_sketch.Sampler.Memo.create ~slots:(min p.Params.m 65536);
      code_small = Array.make q min_int;
      code_large = Array.make q min_int;
      keepf_tab = Array.make q (-1);
      elem_memo = Mkc_sketch.Sampler.Memo.create ~slots:(min (max 16 p.Params.u) 65536);
      cs_pending = Array.make q min_int;
      cs_touched = Array.make q 0;
      cs_ntouched = 0;
      cs_dirty = false;
      defer_small = mk_defer cntr_small;
      defer_large = mk_defer cntr_large;
    }
  in
  (* With ρ = 1 the element sample is the whole universe, so the
     O(log n) repeats of Figure 7 (whose sole purpose is to dodge
     common elements in at least one sample, App. B Step 1) buy much
     less — halve them on the hot small-universe instances. *)
  let repeats = if rho >= 1.0 then max 1 (p.oracle_repeats / 2) else p.oracle_repeats in
  {
    params;
    w;
    q;
    rho;
    thr1;
    thr2;
    repeats = Array.init repeats mk_repeat;
    sc_ins = [||];
    sc_sids = [||];
    sc_small = [||];
    sc_large = [||];
    sc_keepf = [||];
    sc_sid_cnt = Array.make q min_int;
    sc_active = Array.make q 0;
    st_elem_sampler_evals = 0;
    st_fallback_sampler_evals = 0;
    st_f2_updates = 0;
    st_l0_updates = 0;
    st_hh_recoveries = 0;
    st_hh_candidates = 0;
  }

let in_sample t rs e =
  match rs.elem_sampler with
  | None -> true
  | Some s ->
      t.st_elem_sampler_evals <- t.st_elem_sampler_evals + 1;
      Mkc_sketch.Sampler.Bernoulli.keep s e

(* The fallback L0 sketch of a sampled superset, created on first
   touch.  Creation order (hence the table's internal layout) must
   follow stream order in every ingestion mode, so candidate iteration
   at finalize is identical across them. *)
let fallback_sketch rs sid =
  (* [find] + Not_found, not [find_opt]: the hit path is per-edge hot
     and must not allocate a [Some]. *)
  match Hashtbl.find rs.fallback sid with
  | sk -> sk
  | exception Not_found ->
      let sk =
        Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.fork rs.fallback_seed sid) ()
      in
      Hashtbl.replace rs.fallback sid sk;
      sk

let feed_repeat t rs (e : Mkc_stream.Edge.t) =
  if in_sample t rs e.elt then begin
    let sid = Superset_partition.superset_of rs.partition e.set in
    (* The F2 counters are pointwise-linear: a deletion is just a −1
       update, and the signed sums downstream (CS rows, tracked counts)
       land exactly where an insertion-free stream would have left
       them.  The fallback L0 is the set sketch — insertion-only — so
       deletions bypass it; its estimate over a churned superset is an
       upper bound on the live count (DESIGN.md, turnstile section). *)
    Mkc_sketch.F2_contributing.add rs.cntr_small sid e.sign;
    Mkc_sketch.F2_contributing.add rs.cntr_large sid e.sign;
    t.st_f2_updates <- t.st_f2_updates + 2;
    t.st_fallback_sampler_evals <- t.st_fallback_sampler_evals + 1;
    if Mkc_sketch.Sampler.Bernoulli.keep rs.fallback_sampler sid && e.sign > 0 then begin
      t.st_l0_updates <- t.st_l0_updates + 1;
      Mkc_sketch.L0_bjkst.add (fallback_sketch rs sid) e.elt
    end
  end

let feed t e = Array.iter (fun rs -> feed_repeat t rs e) t.repeats

let feed_batch t edges ~pos ~len =
  (* Repeat-outer: one repeat's samplers, partition, and counters stay
     hot across the chunk; per-repeat edge order is unchanged, so the
     state is exactly the edge-by-edge one. *)
  let stop = pos + len - 1 in
  Array.iter
    (fun rs ->
      for i = pos to stop do
        feed_repeat t rs (Array.unsafe_get edges i)
      done)
    t.repeats

let ensure_int a n = if Array.length a >= n then a else Array.make (max n (2 * Array.length a)) 0

let ensure_bool a n =
  if Array.length a >= n then a else Array.make (max n (2 * Array.length a)) false

(* Cached F2C subsampling codes, filled on first sighting of a superset
   id.  [decide] is a pure function of the counter's seed, so the cache
   never goes stale. *)
let code_small_of rs sid =
  let c = Array.unsafe_get rs.code_small sid in
  if c <> min_int then c
  else begin
    let c = Mkc_sketch.F2_contributing.decide rs.cntr_small sid in
    Array.unsafe_set rs.code_small sid c;
    c
  end

let code_large_of rs sid =
  let c = Array.unsafe_get rs.code_large sid in
  if c <> min_int then c
  else begin
    let c = Mkc_sketch.F2_contributing.decide rs.cntr_large sid in
    Array.unsafe_set rs.code_large sid c;
    c
  end

(* Apply one level's deferred tracked deltas.  Sound only under the
   deferral invariant ([ever <= 2·cap], so no prune can fire during the
   bulk insert): the resulting table holds the same (id, count) multiset
   as an in-order replay, and nothing observable depends on slot
   layout (dump/candidates/prune all canonicalize).  Only the sids in
   [touched] are visited — flush cost is O(pending sids), not O(q), so
   a mid-run space/telemetry sample on a mostly-clean repeat is
   cheap. *)
(* Flush-size distribution: how many touched sids each deferred flush
   applies.  Large flushes mean the deferral is batching well; a wall
   of size-1 flushes means reads are interleaving with feeding. *)
module Obs = struct
  let flush_size =
    Mkc_obs.Registry.histogram Mkc_obs.Registry.global "large_set.flush_size"
end

let flush_level hh d =
  if d.dirty then begin
    d.dirty <- false;
    Mkc_obs.Registry.record Obs.flush_size d.ntouched;
    let pend = d.pend and touched = d.touched in
    for i = 0 to d.ntouched - 1 do
      let sid = Array.unsafe_get touched i in
      let c = Array.unsafe_get pend sid in
      Array.unsafe_set pend sid min_int;
      (* A signed sum that cancelled to zero applies nothing — exactly
         what an in-order replay leaves behind (insert then
         remove-at-zero). *)
      if c <> 0 then Mkc_sketch.F2_heavy_hitter.add_tracked hh sid c
    done;
    d.ntouched <- 0
  end

let flush_tracked cntr defer =
  Array.iteri (fun lvl d -> flush_level (Mkc_sketch.F2_contributing.level cntr lvl) d) defer

(* Apply just the deferred tracked deltas — all that space accounting
   needs.  A CountSketch row is a fixed [depth × width] block, so the
   pending CS deltas cannot move [words]; only tracked-table occupancy
   ([2·tn] per level) does.  The tracked flush is cap-bounded per level
   (deferral stops at [ever > 2·cap]), so a cadence-driven words sample
   costs O(levels · cap) instead of replaying every pending CS delta —
   that replay waits for {!flush_pending} at the next value read. *)
let flush_words rs =
  flush_tracked rs.cntr_small rs.defer_small;
  flush_tracked rs.cntr_large rs.defer_large

(* Apply all deferred deltas (CountSketch halves and tracked halves).
   Must run before any read of counter state — candidate recovery,
   checkpoint encode, merge — and is a no-op on clean repeats (the
   common per-edge-mode case). *)
let flush_pending rs =
  if rs.cs_dirty then begin
    rs.cs_dirty <- false;
    Mkc_obs.Registry.record Obs.flush_size rs.cs_ntouched;
    let pend = rs.cs_pending and touched = rs.cs_touched in
    for i = 0 to rs.cs_ntouched - 1 do
      let sid = Array.unsafe_get touched i in
      let c = Array.unsafe_get pend sid in
      Array.unsafe_set pend sid min_int;
      if c <> 0 then begin
        Mkc_sketch.F2_contributing.add_cs_decided rs.cntr_small ~code:(code_small_of rs sid)
          sid c;
        Mkc_sketch.F2_contributing.add_cs_decided rs.cntr_large ~code:(code_large_of rs sid)
          sid c
      end
    done;
    rs.cs_ntouched <- 0
  end;
  flush_tracked rs.cntr_small rs.defer_small;
  flush_tracked rs.cntr_large rs.defer_large

(* Reconstruct [seen]/[ever] from the tables themselves (after restore
   or merge).  Exact while a level has never pruned: with no prunes the
   flushed table holds precisely the coordinates ever inserted.  Once a
   level has pruned, deferral is disabled for good and [seen]/[ever]
   are irrelevant. *)
let rebuild_defer rs =
  let reb cntr defer =
    Array.iteri
      (fun lvl d ->
        let hh = Mkc_sketch.F2_contributing.level cntr lvl in
        Array.fill d.pend 0 (Array.length d.pend) min_int;
        d.ntouched <- 0;
        d.dirty <- false;
        Array.fill d.seen 0 (Array.length d.seen) false;
        d.ever <- 0;
        if Mkc_sketch.F2_heavy_hitter.prunes hh = 0 then
          for sid = 0 to Array.length d.seen - 1 do
            if Mkc_sketch.F2_heavy_hitter.mem hh sid then begin
              d.seen.(sid) <- true;
              d.ever <- d.ever + 1
            end
          done)
      defer
  in
  reb rs.cntr_small rs.defer_small;
  reb rs.cntr_large rs.defer_large

(* The tracked half of one counter for one chunk, level-major.  Levels
   share no state, so regrouping per level is exact as long as each
   level sees its update subsequence in order.  A level defers (pure
   per-sid sums into [pend]) while pruning provably cannot fire —
   [ever + newly <= 2·cap] — and otherwise flushes and replays the
   chunk edge-by-edge (the first such chunk drives the table past
   2·cap, so it prunes, and [prunes > 0] pins the level to per-edge
   replay from then on). *)
let tracked_chunk cntr defer ~code_tab ~active ~na ~sid_cnt ~ins ~sids ~codes_j ~set_idx
    ~elt_idx ~edges ~pos ~len =
  let levels = Mkc_sketch.F2_contributing.levels cntr in
  for lvl = 0 to levels - 1 do
    let hh = Mkc_sketch.F2_contributing.level cntr lvl in
    let d = Array.unsafe_get defer lvl in
    let top = levels - 1 - lvl in
    (* covered at lvl ⟺ 0 <= code <= top *)
    let deferrable =
      Mkc_sketch.F2_heavy_hitter.prunes hh = 0
      &&
      let newly = ref 0 in
      for a = 0 to na - 1 do
        let sid = Array.unsafe_get active a in
        let code = Array.unsafe_get code_tab sid in
        if code >= 0 && code <= top && not (Array.unsafe_get d.seen sid) then incr newly
      done;
      d.ever + !newly <= 2 * Mkc_sketch.F2_heavy_hitter.cap hh
    in
    if deferrable then begin
      (* [seen]/[ever] mark every touched sid regardless of sign: the
         eager path's transient occupancy is bounded by the distinct
         sids ever touched (deletions only shrink the table), so the
         [ever <= 2·cap] invariant still rules out a prune — and with
         no prune, the table is a pure per-sid signed sum with
         removal-at-zero, which the net flush reproduces exactly. *)
      for a = 0 to na - 1 do
        let sid = Array.unsafe_get active a in
        let code = Array.unsafe_get code_tab sid in
        if code >= 0 && code <= top then begin
          if not (Array.unsafe_get d.seen sid) then begin
            Array.unsafe_set d.seen sid true;
            d.ever <- d.ever + 1
          end;
          let p = Array.unsafe_get d.pend sid in
          let c = Array.unsafe_get sid_cnt sid in
          if p = min_int then begin
            Array.unsafe_set d.touched d.ntouched sid;
            d.ntouched <- d.ntouched + 1;
            Array.unsafe_set d.pend sid c
          end
          else Array.unsafe_set d.pend sid (p + c)
        end
      done;
      d.dirty <- true
    end
    else begin
      flush_level hh d;
      for i = 0 to len - 1 do
        if Array.unsafe_get ins (Array.unsafe_get elt_idx i) then begin
          let sj = Array.unsafe_get set_idx i in
          let code = Array.unsafe_get codes_j sj in
          if code >= 0 && code <= top then
            Mkc_sketch.F2_heavy_hitter.add_tracked hh (Array.unsafe_get sids sj)
              (Array.unsafe_get edges (pos + i)).Mkc_stream.Edge.sign
        end
      done
    end
  done

let feed_planned t plan ~red edges ~pos ~len =
  (* Chunk-deduplicated path.  Per repeat: every hash decision — element
     sample membership, superset assignment, both F2C subsampling codes,
     fallback superset sampling — is served from the repeat's memo
     caches, falling back to one hash evaluation per distinct id on a
     miss; then the chunk is replayed in original edge order through
     O(1) table lookups.  The order-sensitive halves (F2C candidate
     tracking with its prune, fallback L0 adds) replay per edge, so
     their states are bit-for-bit the per-edge ones; the CountSketch
     halves are linear and commutative, so each distinct set's
     in-sample multiplicity is parked in [cs_pending] and applied by
     {!flush_pending} before the counters are next read.

     Eval counters deliberately charge the full [ne]/[ns] per chunk —
     the decision *consumptions*, not the hash evaluations a cache
     happened to absorb — so their values are independent of cache
     warmth and replay exactly across crash-resume without the caches
     being checkpointed. *)
  let ns = Mkc_stream.Chunk_plan.num_sets plan in
  let ne = Mkc_stream.Chunk_plan.num_elts plan in
  t.sc_ins <- ensure_bool t.sc_ins ne;
  t.sc_sids <- ensure_int t.sc_sids ns;
  t.sc_small <- ensure_int t.sc_small ns;
  t.sc_large <- ensure_int t.sc_large ns;
  t.sc_keepf <- ensure_bool t.sc_keepf ns;
  let ins = t.sc_ins and sids = t.sc_sids in
  let csmall = t.sc_small and clarge = t.sc_large in
  let keepf = t.sc_keepf in
  let sid_cnt = t.sc_sid_cnt and active = t.sc_active in
  let sets = Mkc_stream.Chunk_plan.sets plan in
  let set_idx = Mkc_stream.Chunk_plan.set_index plan in
  let elt_idx = Mkc_stream.Chunk_plan.elt_index plan in
  Array.iter
    (fun rs ->
      (match rs.elem_sampler with
      | None -> Array.fill ins 0 ne true
      | Some s ->
          t.st_elem_sampler_evals <- t.st_elem_sampler_evals + ne;
          let memo = rs.elem_memo in
          for j = 0 to ne - 1 do
            let x = Array.unsafe_get red j in
            let v = Mkc_sketch.Sampler.Memo.find memo x in
            if v >= 0 then Array.unsafe_set ins j (v = 1)
            else begin
              let b = Mkc_sketch.Sampler.Bernoulli.keep s x in
              Mkc_sketch.Sampler.Memo.store memo x (if b then 1 else 0);
              Array.unsafe_set ins j b
            end
          done);
      t.st_fallback_sampler_evals <- t.st_fallback_sampler_evals + ns;
      for j = 0 to ns - 1 do
        let set = Array.unsafe_get sets j in
        let sid =
          let v = Mkc_sketch.Sampler.Memo.find rs.sp_memo set in
          if v >= 0 then v
          else begin
            let sid = Superset_partition.superset_of rs.partition set in
            Mkc_sketch.Sampler.Memo.store rs.sp_memo set sid;
            sid
          end
        in
        Array.unsafe_set sids j sid;
        Array.unsafe_set csmall j (code_small_of rs sid);
        Array.unsafe_set clarge j (code_large_of rs sid);
        let kf =
          let v = Array.unsafe_get rs.keepf_tab sid in
          if v >= 0 then v = 1
          else begin
            let b = Mkc_sketch.Sampler.Bernoulli.keep rs.fallback_sampler sid in
            Array.unsafe_set rs.keepf_tab sid (if b then 1 else 0);
            b
          end
        in
        Array.unsafe_set keepf j kf
      done;
      (* Replay pass: order-sensitive L0 fallback adds happen here, per
         edge; per-sid in-sample multiplicities are collected for the
         deferred CountSketch and tracked halves. *)
      let in_sample_edges = ref 0 in
      let na = ref 0 in
      for i = 0 to len - 1 do
        if Array.unsafe_get ins (Array.unsafe_get elt_idx i) then begin
          let sj = Array.unsafe_get set_idx i in
          let sid = Array.unsafe_get sids sj in
          let sign = (Array.unsafe_get edges (pos + i)).Mkc_stream.Edge.sign in
          incr in_sample_edges;
          let c = Array.unsafe_get sid_cnt sid in
          if c = min_int then begin
            Array.unsafe_set active !na sid;
            incr na;
            Array.unsafe_set sid_cnt sid sign
          end
          else Array.unsafe_set sid_cnt sid (c + sign);
          if Array.unsafe_get keepf sj && sign > 0 then begin
            t.st_l0_updates <- t.st_l0_updates + 1;
            Mkc_sketch.L0_bjkst.add (fallback_sketch rs sid)
              (Array.unsafe_get red (Array.unsafe_get elt_idx i))
          end
        end
      done;
      t.st_f2_updates <- t.st_f2_updates + (2 * !in_sample_edges);
      if !in_sample_edges > 0 then begin
        let na = !na in
        rs.cs_dirty <- true;
        let pend = rs.cs_pending and touched = rs.cs_touched in
        for a = 0 to na - 1 do
          let sid = Array.unsafe_get active a in
          let p = Array.unsafe_get pend sid in
          let c = Array.unsafe_get sid_cnt sid in
          if p = min_int then begin
            Array.unsafe_set touched rs.cs_ntouched sid;
            rs.cs_ntouched <- rs.cs_ntouched + 1;
            Array.unsafe_set pend sid c
          end
          else Array.unsafe_set pend sid (p + c)
        done;
        tracked_chunk rs.cntr_small rs.defer_small ~code_tab:rs.code_small ~active ~na
          ~sid_cnt ~ins ~sids ~codes_j:csmall ~set_idx ~elt_idx ~edges ~pos ~len;
        tracked_chunk rs.cntr_large rs.defer_large ~code_tab:rs.code_large ~active ~na
          ~sid_cnt ~ins ~sids ~codes_j:clarge ~set_idx ~elt_idx ~edges ~pos ~len;
        for a = 0 to na - 1 do
          Array.unsafe_set sid_cnt (Array.unsafe_get active a) min_int
        done
      end)
    t.repeats

let thresholds t = (t.thr1, t.thr2)

(* A passing candidate, before cross-repeat max. *)
type candidate = { superset : int; repeat : int; est : float; via_l0 : bool }

let candidates_of_repeat t r rs =
  flush_pending rs;
  let f = t.params.Params.f in
  let of_hits threshold hits =
    List.filter_map
      (fun (h : Mkc_sketch.F2_contributing.hit) ->
        if h.freq >= threshold /. 2.0 then
          Some { superset = h.id; repeat = r; est = 2.0 *. h.freq /. (3.0 *. f); via_l0 = false }
        else None)
      hits
  in
  let small = of_hits t.thr1 (Mkc_sketch.F2_contributing.candidates rs.cntr_small) in
  let large = of_hits t.thr2 (Mkc_sketch.F2_contributing.candidates rs.cntr_large) in
  let fallback =
    Hashtbl.fold
      (fun sid sk acc ->
        let v = Mkc_sketch.L0_bjkst.estimate sk in
        if v >= t.thr2 /. 2.0 then
          (* Coverage sketch: no duplication discount needed. *)
          { superset = sid; repeat = r; est = 2.0 *. v /. 3.0; via_l0 = true } :: acc
        else acc)
      rs.fallback []
    (* Canonical order: the fold above walks the table in layout order,
       which differs between a live run and a restored/merged one. *)
    |> List.sort (fun a b -> compare a.superset b.superset)
  in
  small @ large @ fallback

let witness t (c : candidate) () =
  let rs = t.repeats.(c.repeat) in
  Superset_partition.members ~limit:t.params.Params.k rs.partition c.superset

let finalize t =
  (* Recovery success rate = recoveries / candidates: how many of the
     tracked heavy-hitter candidates (plus fallback sketches) actually
     cleared their threshold.  Examined counts are taken per repeat
     right before filtering, so they see the same post-prune tables. *)
  let examined = ref 0 in
  let all =
    List.concat
      (List.mapi
         (fun r rs ->
           flush_pending rs;
           examined :=
             !examined
             + List.length (Mkc_sketch.F2_contributing.candidates rs.cntr_small)
             + List.length (Mkc_sketch.F2_contributing.candidates rs.cntr_large)
             + Hashtbl.length rs.fallback;
           candidates_of_repeat t r rs)
         (Array.to_list t.repeats))
  in
  t.st_hh_candidates <- !examined;
  t.st_hh_recoveries <- List.length all;
  (* Total order: estimate descending, then (repeat, superset, via_l0)
     — the winner must not depend on candidate-list construction
     order. *)
  match
    List.sort
      (fun a b ->
        if a.est <> b.est then compare b.est a.est
        else compare (a.repeat, a.superset, a.via_l0) (b.repeat, b.superset, b.via_l0))
      all
  with
  | [] -> None
  | best :: _ ->
      Some
        {
          Solution.estimate = best.est /. t.rho;
          witness = witness t best;
          provenance =
            Solution.Large_set
              { superset = best.superset; repeat = best.repeat; via_l0_fallback = best.via_l0 };
        }

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode_repeat rs =
  (* The checkpoint carries the counters with all pending CS deltas
     applied — the envelope format is unchanged and a resumed run
     starts with clean accumulators. *)
  flush_pending rs;
  let fallback =
    Hashtbl.fold (fun sid sk acc -> (sid, sk) :: acc) rs.fallback []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (sid, sk) -> Json.Array [ Json.Int sid; Ck.Sketch_io.l0 sk ])
  in
  Json.Object
    [
      ("cntr_small", Ck.Sketch_io.f2c rs.cntr_small);
      ("cntr_large", Ck.Sketch_io.f2c rs.cntr_large);
      ("fallback", Json.Array fallback);
    ]

let encode t =
  Json.Object
    [
      ("repeats", Json.Array (Array.to_list (Array.map encode_repeat t.repeats)));
      ( "stats",
        Json.Object
          [
            ("elem_sampler_evals", Json.Int t.st_elem_sampler_evals);
            ("fallback_sampler_evals", Json.Int t.st_fallback_sampler_evals);
            ("f2_updates", Json.Int t.st_f2_updates);
            ("l0_updates", Json.Int t.st_l0_updates);
          ] );
    ]

let ( let* ) = Result.bind

let restore_repeat rs j =
  (* Checkpointed counters are always flushed (see [encode_repeat]), so
     pending deltas from any pre-restore feeding must not survive into
     the restored state. *)
  Array.fill rs.cs_pending 0 (Array.length rs.cs_pending) min_int;
  rs.cs_ntouched <- 0;
  rs.cs_dirty <- false;
  let* sj = Ck.J.field "cntr_small" j in
  let* () = Ck.Sketch_io.restore_f2c rs.cntr_small sj in
  let* lj = Ck.J.field "cntr_large" j in
  let* () = Ck.Sketch_io.restore_f2c rs.cntr_large lj in
  rebuild_defer rs;
  let* fb = Ck.J.list_field "fallback" j in
  Hashtbl.reset rs.fallback;
  Ck.J.map_result
    (fun entry ->
      match Json.to_list entry with
      | Some [ sid; skj ] ->
          let* sid = Ck.J.to_int sid in
          (* Same per-superset seed derivation as first-touch creation,
             so the restored sketch hashes identically. *)
          let sk = fallback_sketch rs sid in
          Ck.Sketch_io.restore_l0 sk skj
      | _ -> Ck.J.err "expected [sid, l0] fallback entry")
    fb
  |> Result.map (fun (_ : unit list) -> ())

let restore t j =
  let* reps = Ck.J.list_field "repeats" j in
  let* () =
    if List.length reps <> Array.length t.repeats then
      Ck.J.err "large_set: expected %d repeats, got %d" (Array.length t.repeats)
        (List.length reps)
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (r, rj) ->
        let* () = acc in
        match restore_repeat t.repeats.(r) rj with
        | Ok () -> Ok ()
        | Error e -> Ck.J.err "large_set repeat %d: %s" r e)
      (Ok ())
      (List.mapi (fun r rj -> (r, rj)) reps)
  in
  let* sj = Ck.J.field "stats" j in
  let* ese = Ck.J.int_field "elem_sampler_evals" sj in
  let* fse = Ck.J.int_field "fallback_sampler_evals" sj in
  let* f2u = Ck.J.int_field "f2_updates" sj in
  let* l0u = Ck.J.int_field "l0_updates" sj in
  t.st_elem_sampler_evals <- ese;
  t.st_fallback_sampler_evals <- fse;
  t.st_f2_updates <- f2u;
  t.st_l0_updates <- l0u;
  Ok ()

let merge_into ~dst src =
  Array.iteri
    (fun r (srs : repeat_state) ->
      let drs = dst.repeats.(r) in
      flush_pending srs;
      flush_pending drs;
      Mkc_sketch.F2_contributing.merge_into ~dst:drs.cntr_small srs.cntr_small;
      Mkc_sketch.F2_contributing.merge_into ~dst:drs.cntr_large srs.cntr_large;
      rebuild_defer drs;
      (* Fallback sketches are per-superset L0s with sid-derived seeds:
         identical seeds on both sides, so they union exactly.  Walk in
         sorted sid order to keep the destination layout canonical. *)
      Hashtbl.fold (fun sid sk acc -> (sid, sk) :: acc) srs.fallback []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (sid, sk) ->
             Mkc_sketch.L0_bjkst.merge_into ~dst:(fallback_sketch drs sid) sk))
    src.repeats;
  dst.st_elem_sampler_evals <- dst.st_elem_sampler_evals + src.st_elem_sampler_evals;
  dst.st_fallback_sampler_evals <-
    dst.st_fallback_sampler_evals + src.st_fallback_sampler_evals;
  dst.st_f2_updates <- dst.st_f2_updates + src.st_f2_updates;
  dst.st_l0_updates <- dst.st_l0_updates + src.st_l0_updates

let words_breakdown t =
  (* Apply deferred tracked deltas first: the accumulators are
     uncounted scratch, so an unflushed repeat would under-report the
     tracker words a per-edge run pays at the same edge.  Safe at any
     chunk boundary — the deferral invariant is maintained
     chunk-by-chunk, so an early flush replays exactly the inserts a
     later one would.  Pending CS deltas are left parked: they cannot
     change any [words] term (see {!flush_words}). *)
  Array.iter flush_words t.repeats;
  let sampler = ref 0 and partition = ref 0 and f2 = ref 0 and l0 = ref 0 in
  Array.iter
    (fun rs ->
      sampler :=
        !sampler
        + (match rs.elem_sampler with None -> 0 | Some s -> Mkc_sketch.Sampler.Bernoulli.words s)
        + Mkc_sketch.Sampler.Bernoulli.words rs.fallback_sampler;
      partition := !partition + Superset_partition.words rs.partition;
      f2 :=
        !f2
        + Mkc_sketch.F2_contributing.words rs.cntr_small
        + Mkc_sketch.F2_contributing.words rs.cntr_large;
      l0 := !l0 + Hashtbl.fold (fun _ sk acc -> acc + Mkc_sketch.L0_bjkst.words sk) rs.fallback 0)
    t.repeats;
  [
    ("sampler", !sampler);
    ("partition", !partition);
    ("f2_contributing", !f2);
    ("l0_fallback", !l0);
  ]

let words t = List.fold_left (fun acc (_, w) -> acc + w) 0 (words_breakdown t)

let stats t =
  (* Same flush as [words_breakdown]: mid-run [f2_tracked] must count
     deferred insertions the tracker already owns logically.  The
     tracked flush also settles [f2_tracked]/[f2_prunes]; pending CS
     deltas touch neither. *)
  Array.iter flush_words t.repeats;
  [
    ("elem_sampler_evals", t.st_elem_sampler_evals);
    ("fallback_sampler_evals", t.st_fallback_sampler_evals);
    ("f2_updates", t.st_f2_updates);
    ("l0_updates", t.st_l0_updates);
    ("hh_recoveries", t.st_hh_recoveries);
    ("hh_candidates", t.st_hh_candidates);
    ( "f2_prunes",
      Array.fold_left
        (fun acc rs ->
          acc
          + Mkc_sketch.F2_contributing.prunes rs.cntr_small
          + Mkc_sketch.F2_contributing.prunes rs.cntr_large)
        0 t.repeats );
    ( "f2_tracked",
      Array.fold_left
        (fun acc rs ->
          acc
          + Mkc_sketch.F2_contributing.tracked rs.cntr_small
          + Mkc_sketch.F2_contributing.tracked rs.cntr_large)
        0 t.repeats );
  ]
