lib/core/oracle.mli: Mkc_hashing Mkc_stream Params Solution
