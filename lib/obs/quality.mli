(** Quality-telemetry gauges: small helpers for publishing derived
    health signals (rates, relative errors, budget headroom) into a
    registry under stable names.  All are no-ops while
    {!Registry.enabled} is off, like every registry write. *)

val ratio : num:int -> den:int -> float
(** [num / den], or [0.] when [den <= 0]. *)

val record_ratio : ?registry:Registry.t -> string -> num:int -> den:int -> unit
(** Publish gauge [name] = [ratio ~num ~den]. *)

val record_relative_error :
  ?registry:Registry.t -> string -> truth:int -> estimate:int -> unit
(** Publish gauges [name.truth], [name.estimate] and
    [name.relative_error] = |estimate − truth| / truth (0 when the
    truth is 0) — used when a workload generator knows the planted
    optimum, or when an exact/greedy solver was run alongside. *)

val record_budget :
  ?registry:Registry.t ->
  budget_words:int ->
  peak_words:int ->
  overshoots:int ->
  unit ->
  unit
(** Publish the space-watchdog gauges [space.budget_words],
    [space.peak_words], [space.headroom] (= peak/budget) and
    [space.overshoots]. *)
