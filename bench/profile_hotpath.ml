(* Hot-path profiler: per-subroutine cost breakdown of the oracle
   ingestion pipeline.  Times each component in isolation (same params,
   same instance mix as Estimate.create) and reports ns/edge plus
   minor-heap words/edge, so hashing vs update vs GC costs are
   attributable — the flat-memory engine's "zero words per edge"
   promise is a line item here, not a guess.  A pool section drives the
   persistent domain-pool executor over the same edges and reports the
   pipelining attribution (plan-build overlap ns/edge, per-worker
   queue-wait, idle fractions) from Pool.stats.

   [run] profiles the BENCH_pipeline workload and writes
   PROFILE_hotpath.json; [run_smoke] is the CI-sized variant (same
   breakdown, a few seconds of wall clock) behind
   PROFILE_hotpath_smoke.json — CI uploads it as an artifact so a
   hot-path regression is visible as a diff of two small JSON files. *)

module P = Mkc_core.Params

let pr fmt = Format.printf fmt

type row = { name : string; seconds : float; ns_per_edge : float; words_per_edge : float }

let time_alloc rows name ~edges f =
  let a0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  let alloc = Gc.minor_words () -. a0 in
  let r =
    {
      name;
      seconds = dt;
      ns_per_edge = dt *. 1e9 /. float_of_int edges;
      words_per_edge = alloc /. float_of_int edges;
    }
  in
  pr "  %-28s %7.3fs  %8.1f ns/edge  %6.1f words/edge@." name dt r.ns_per_edge
    r.words_per_edge;
  rows := r :: !rows

let write_json path ~label ~edges ~instances ?pool_json rows =
  let oc = open_out path in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"label\": %S,\n  \"edges\": %d,\n  \"instances\": %d,\n" label
       edges instances);
  Buffer.add_string b "  \"subroutines\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"seconds\": %.6f, \"ns_per_edge\": %.2f, \
            \"words_per_edge\": %.3f }%s\n"
           r.name r.seconds r.ns_per_edge r.words_per_edge
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  (match pool_json with
  | Some pj -> Buffer.add_string b (Printf.sprintf "  \"pool\": %s\n" pj)
  | None -> Buffer.add_string b "  \"pool\": null\n");
  Buffer.add_string b "}\n";
  output_string oc (Buffer.contents b);
  close_out oc;
  pr "wrote %s@." path

let run_with ~label ~json_out ~n ~m ~k ~set_size ~alpha ~seed ~max_edges () =
  Exp_util.header (Printf.sprintf "%s: per-subroutine hot-path breakdown" label);
  let sys = Mkc_workload.Random_inst.uniform ~n ~m ~set_size ~seed in
  let src = Mkc_stream.Stream_source.of_system ~seed:(seed + 1) sys in
  let all = Mkc_stream.Stream_source.to_array src in
  let nedges = min max_edges (Array.length all) in
  let edges = Array.sub all 0 nedges in
  let params = P.make ~m ~n ~k ~alpha ~seed () in
  pr "%d edges, indep=%d@." nedges params.P.indep;
  let root = Mkc_hashing.Splitmix.create params.P.base_seed in
  let zs =
    Mkc_core.Estimate.guesses (Mkc_core.Estimate.create params)
    |> List.concat_map (fun z -> [ (z, 0); (z, 1) ])
  in
  let instances = List.length zs in
  pr "%d instances@." instances;
  let rows = ref [] in
  let time_alloc = time_alloc rows in
  (* universe reduction *)
  let reductions =
    List.map
      (fun (z, rep) ->
        let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
        Mkc_core.Universe_reduction.create ~z ~seed:(Mkc_hashing.Splitmix.fork sd 0))
      zs
  in
  let scratch = Array.make nedges (Mkc_stream.Edge.make ~set:0 ~elt:0) in
  time_alloc
    (Printf.sprintf "reduction (%d inst)" instances)
    ~edges:nedges
    (fun () ->
      List.iter
        (fun r ->
          for i = 0 to nedges - 1 do
            scratch.(i) <- Mkc_core.Universe_reduction.apply_edge r edges.(i)
          done)
        reductions);
  (* per-subroutine, with per-instance reduced streams *)
  let comps =
    List.map
      (fun ((z, rep), red) ->
        let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
        let osd = Mkc_hashing.Splitmix.fork sd 1 in
        let p = P.with_universe params z in
        let sa = P.s_alpha p in
        let heavy = sa >= 2.0 *. float_of_int p.P.k in
        let w =
          if heavy then p.P.k
          else max 1 (min p.P.k (int_of_float (Float.round p.P.alpha)))
        in
        let reduced =
          Array.map (fun e -> Mkc_core.Universe_reduction.apply_edge red e) edges
        in
        ( Mkc_core.Large_common.create p ~seed:(Mkc_hashing.Splitmix.fork osd 1),
          Mkc_core.Large_set.create p ~w ~seed:(Mkc_hashing.Splitmix.fork osd 2),
          Mkc_core.Small_set.create p ~seed:(Mkc_hashing.Splitmix.fork osd 3),
          reduced ))
      (List.combine zs reductions)
  in
  time_alloc
    (Printf.sprintf "large_common (%d inst)" instances)
    ~edges:nedges
    (fun () ->
      List.iter
        (fun (lc, _, _, reduced) ->
          Mkc_core.Large_common.feed_batch lc reduced ~pos:0 ~len:nedges)
        comps);
  time_alloc
    (Printf.sprintf "large_set (%d inst)" instances)
    ~edges:nedges
    (fun () ->
      List.iter
        (fun (_, ls, _, reduced) ->
          Mkc_core.Large_set.feed_batch ls reduced ~pos:0 ~len:nedges)
        comps);
  time_alloc
    (Printf.sprintf "small_set (%d inst)" instances)
    ~edges:nedges
    (fun () ->
      List.iter
        (fun (_, _, ss, reduced) ->
          Mkc_core.Small_set.feed_batch ss reduced ~pos:0 ~len:nedges)
        comps);
  (* planned (chunk-deduplicated) path: the batched pipeline's actual
     drive — hash decisions once per distinct id per chunk, then O(1)
     table replays.  Fresh components: pruning history must not carry
     over from the per-edge rows above. *)
  let chunk = 8192 in
  let nchunks = (nedges + chunk - 1) / chunk in
  let bounds ci =
    let p = ci * chunk in
    (p, min chunk (nedges - p))
  in
  let plans = Array.init nchunks (fun _ -> Mkc_stream.Chunk_plan.create ()) in
  time_alloc
    (Printf.sprintf "plan build (%d chunks)" nchunks)
    ~edges:nedges
    (fun () ->
      Array.iteri
        (fun ci plan ->
          let p, l = bounds ci in
          Mkc_stream.Chunk_plan.build plan edges ~pos:p ~len:l)
        plans);
  let comps2 =
    List.map
      (fun (z, rep) ->
        let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
        let osd = Mkc_hashing.Splitmix.fork sd 1 in
        let p = P.with_universe params z in
        let sa = P.s_alpha p in
        let heavy = sa >= 2.0 *. float_of_int p.P.k in
        let w =
          if heavy then p.P.k
          else max 1 (min p.P.k (int_of_float (Float.round p.P.alpha)))
        in
        ( Mkc_core.Large_common.create p ~seed:(Mkc_hashing.Splitmix.fork osd 1),
          Mkc_core.Large_set.create p ~w ~seed:(Mkc_hashing.Splitmix.fork osd 2),
          Mkc_core.Small_set.create p ~seed:(Mkc_hashing.Splitmix.fork osd 3) ))
      zs
  in
  let red_tbl = ref [] in
  time_alloc
    (Printf.sprintf "reduction planned (%d inst)" instances)
    ~edges:nedges
    (fun () ->
      red_tbl :=
        List.map
          (fun r ->
            Array.map
              (fun plan ->
                let ne = Mkc_stream.Chunk_plan.num_elts plan in
                let out = Array.make ne 0 in
                Mkc_core.Universe_reduction.apply_batch r
                  (Mkc_stream.Chunk_plan.elts plan)
                  ~pos:0 ~len:ne out;
                out)
              plans)
          reductions);
  let planned_row name f =
    time_alloc
      (Printf.sprintf "%s planned (%d inst)" name instances)
      ~edges:nedges
      (fun () ->
        List.iter2
          (fun comp reds ->
            Array.iteri
              (fun ci plan ->
                let p, l = bounds ci in
                f comp plan ~red:reds.(ci) ~pos:p ~len:l)
              plans)
          comps2 !red_tbl)
  in
  planned_row "large_common" (fun (lc, _, _) plan ~red ~pos ~len ->
      Mkc_core.Large_common.feed_planned lc plan ~red edges ~pos ~len);
  planned_row "large_set" (fun (_, ls, _) plan ~red ~pos ~len ->
      Mkc_core.Large_set.feed_planned ls plan ~red edges ~pos ~len);
  planned_row "small_set" (fun (_, _, ss) plan ~red ~pos ~len ->
      Mkc_core.Small_set.feed_planned ss plan ~red edges ~pos ~len);
  (* pool path: the persistent-executor drive of a full Estimate over
     the same edges, attributed from Pool.stats — how much plan-build
     work the coordinator hid behind worker replay, how long tickets
     sat in the mailboxes, and what fraction of the window wall each
     worker spent idle.  On a single-core host the idle fractions
     measure time-sharing, not queue design; read them next to
     [domains_recommended]. *)
  let module PL = Mkc_stream.Pipeline in
  let pool_recommended = Domain.recommended_domain_count () in
  let pool_domains = max 2 (min 4 pool_recommended) in
  let psrc = Mkc_stream.Stream_source.of_array edges in
  let e_pool = Mkc_core.Estimate.create params in
  let pool = PL.Pool.create ~domains:pool_domains () in
  (* ~8 coordinator windows, so plan-build genuinely overlaps worker
     replay instead of degenerating to one window = no pipeline *)
  let pool_chunk = max 1024 (nedges / (8 * pool_domains)) in
  time_alloc
    (Printf.sprintf "pool parallel (%d dom)" pool_domains)
    ~edges:nedges
    (fun () ->
      PL.feed_all_parallel ~pool ~chunk:pool_chunk
        ~costs:(Mkc_core.Estimate.shard_costs e_pool)
        (Mkc_core.Estimate.shards e_pool) psrc);
  let ps = PL.Pool.stats pool in
  PL.Pool.shutdown pool;
  let fe = float_of_int nedges in
  let plan_build_npe = float_of_int ps.PL.Pool.plan_build_ns /. fe in
  let plan_overlap_npe = float_of_int ps.PL.Pool.plan_overlap_ns /. fe in
  let overlap_frac =
    if ps.PL.Pool.plan_build_ns = 0 then 0.0
    else
      float_of_int ps.PL.Pool.plan_overlap_ns
      /. float_of_int ps.PL.Pool.plan_build_ns
  in
  let wall = float_of_int (max 1 ps.PL.Pool.window_wall_ns) in
  let idle_frac busy = Float.max 0.0 (1.0 -. (float_of_int busy /. wall)) in
  pr "  pool: %d windows, plan build %.1f ns/edge (%.1f ns/edge overlapped, %.0f%%)@."
    ps.PL.Pool.windows plan_build_npe plan_overlap_npe (100.0 *. overlap_frac);
  Array.iteri
    (fun i busy ->
      pr "  pool worker %d: queue-wait %.1f ns/edge, idle %.0f%%@." (i + 1)
        (float_of_int ps.PL.Pool.worker_wait_ns.(i) /. fe)
        (100.0 *. idle_frac busy))
    ps.PL.Pool.worker_busy_ns;
  let pool_json =
    let wb = Buffer.create 256 in
    Buffer.add_string wb
      (Printf.sprintf
         "{ \"domains\": %d, \"domains_recommended\": %d, \"windows\": %d,\n\
         \    \"plan_build_ns_per_edge\": %.2f, \"plan_overlap_ns_per_edge\": %.2f, \
          \"plan_overlap_fraction\": %.4f,\n\
         \    \"coord_busy_ns\": %d, \"window_wall_ns\": %d, \"rebalances\": %d,\n\
         \    \"workers\": ["
         pool_domains pool_recommended ps.PL.Pool.windows plan_build_npe
         plan_overlap_npe overlap_frac ps.PL.Pool.coord_busy_ns
         ps.PL.Pool.window_wall_ns ps.PL.Pool.rebalances);
    Array.iteri
      (fun i busy ->
        Buffer.add_string wb
          (Printf.sprintf
             "%s\n      { \"worker\": %d, \"busy_ns\": %d, \"queue_wait_ns\": %d, \
              \"queue_wait_ns_per_edge\": %.2f, \"idle_fraction\": %.4f }"
             (if i = 0 then "" else ",")
             (i + 1) busy
             ps.PL.Pool.worker_wait_ns.(i)
             (float_of_int ps.PL.Pool.worker_wait_ns.(i) /. fe)
             (idle_frac busy)))
      ps.PL.Pool.worker_busy_ns;
    Buffer.add_string wb "\n    ] }";
    Buffer.contents wb
  in
  (* micro: primitive throughputs over 1e6 ops *)
  let ops = 1_000_000 in
  let xs = Array.init ops (fun i -> (i * 2654435761) land 0xFFFFFF) in
  let ph =
    Mkc_hashing.Poly_hash.create ~indep:8 ~range:1024
      ~seed:(Mkc_hashing.Splitmix.create 1)
  in
  let acc = ref 0 in
  time_alloc "poly_hash d=8 (1e6)" ~edges:ops (fun () ->
      for i = 0 to ops - 1 do
        acc := !acc + Mkc_hashing.Poly_hash.hash ph xs.(i)
      done);
  let tab = Mkc_hashing.Tabulation.create ~seed:(Mkc_hashing.Splitmix.create 2) in
  time_alloc "tabulation hash64 (1e6)" ~edges:ops (fun () ->
      for i = 0 to ops - 1 do
        acc := !acc + Int64.to_int (Mkc_hashing.Tabulation.hash64 tab xs.(i))
      done);
  let l0 = Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.create 3) () in
  time_alloc "l0 add (1e6)" ~edges:ops (fun () ->
      for i = 0 to ops - 1 do
        Mkc_sketch.L0_bjkst.add l0 xs.(i)
      done);
  let cs =
    Mkc_sketch.Count_sketch.create ~width:64 ~seed:(Mkc_hashing.Splitmix.create 4) ()
  in
  time_alloc "count_sketch add (1e6)" ~edges:ops (fun () ->
      for i = 0 to ops - 1 do
        Mkc_sketch.Count_sketch.add cs xs.(i) 1
      done);
  ignore !acc;
  write_json json_out ~label ~edges:nedges ~instances ~pool_json (List.rev !rows);
  pr "@."

let run () =
  run_with ~label:"profile" ~json_out:"PROFILE_hotpath.json" ~n:65536 ~m:4096 ~k:32
    ~set_size:256 ~alpha:8.0 ~seed:11 ~max_edges:131072 ()

(* CI-sized smoke run: the same breakdown on a workload small enough
   for the bench-smoke job, so per-subroutine ns/edge and words/edge
   land in the uploaded artifact on every push. *)
let run_smoke () =
  run_with ~label:"profile-smoke" ~json_out:"PROFILE_hotpath_smoke.json" ~n:4096
    ~m:512 ~k:16 ~set_size:64 ~alpha:8.0 ~seed:11 ~max_edges:16384 ()
