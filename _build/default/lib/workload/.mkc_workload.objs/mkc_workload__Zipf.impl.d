lib/workload/zipf.ml: Array Float Int64 Mkc_hashing
