module Json = Mkc_obs.Json

let schema_prefix = "mkc-ckpt/"
let schema_version = 1
let schema = Printf.sprintf "%s%d" schema_prefix schema_version

type error =
  | Bad_magic of string
  | Bad_version of string
  | Truncated of string
  | Malformed of string
  | Checksum_mismatch of { expected : string; got : string }
  | Seed_mismatch of { expected : int; got : int }
  | Kind_mismatch of { expected : string; got : string }
  | Payload_rejected of string
  | Io_error of string

let error_to_string = function
  | Bad_magic s -> Printf.sprintf "bad magic: expected %S, got %S" schema s
  | Bad_version s ->
      Printf.sprintf "unsupported checkpoint version %S (this build reads %S)" s schema
  | Truncated msg -> Printf.sprintf "truncated or unparseable checkpoint: %s" msg
  | Malformed msg -> Printf.sprintf "malformed envelope: %s" msg
  | Checksum_mismatch { expected; got } ->
      Printf.sprintf "checksum mismatch: envelope says %s, payload hashes to %s" got
        expected
  | Seed_mismatch { expected; got } ->
      Printf.sprintf "seed mismatch: this run uses seed %d, checkpoint was taken under %d"
        expected got
  | Kind_mismatch { expected; got } ->
      Printf.sprintf "kind mismatch: expected a %S checkpoint, got %S" expected got
  | Payload_rejected msg -> Printf.sprintf "payload rejected: %s" msg
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg

type t = { kind : string; pos : int; seed : int; payload : Json.t }

(* FNV-1a over the canonical serialization of everything the checksum
   protects: kind, position, seed and the payload bytes.  Not
   cryptographic — it catches truncation, bit rot and hand edits, same
   threat model as the Snapshot golden. *)
let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let checksum ~kind ~pos ~seed payload =
  Printf.sprintf "%016Lx"
    (fnv1a64
       (Printf.sprintf "%s\n%d\n%d\n%s" kind pos seed (Json.to_string payload)))

let to_string t =
  (* Fixed field order, deterministic Json.to_string: the rendering is
     byte-stable, which the golden test pins. *)
  Json.to_string
    (Json.Object
       [
         ("schema", Json.String schema);
         ("kind", Json.String t.kind);
         ("pos", Json.Int t.pos);
         ("seed", Json.Int t.seed);
         ("crc", Json.String (checksum ~kind:t.kind ~pos:t.pos ~seed:t.seed t.payload));
         ("payload", t.payload);
       ])

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Malformed (Printf.sprintf "missing field %S" name))

let int_field name j =
  let* v = field name j in
  match Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Malformed (Printf.sprintf "field %S is not an integer" name))

let str_field name j =
  let* v = field name j in
  match Json.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Malformed (Printf.sprintf "field %S is not a string" name))

let of_string ?expect_kind ?expect_seed s =
  let* j =
    match Json.parse s with Ok j -> Ok j | Error msg -> Error (Truncated msg)
  in
  let* () =
    match Json.member "schema" j with
    | None -> Error (Bad_magic "<missing schema field>")
    | Some v -> (
        match Json.to_string_opt v with
        | None -> Error (Bad_magic "<non-string schema field>")
        | Some s when not (String.length s >= String.length schema_prefix
                           && String.sub s 0 (String.length schema_prefix)
                              = schema_prefix) ->
            Error (Bad_magic s)
        | Some s when s <> schema -> Error (Bad_version s)
        | Some _ -> Ok ())
  in
  let* kind = str_field "kind" j in
  let* pos = int_field "pos" j in
  let* seed = int_field "seed" j in
  let* crc = str_field "crc" j in
  let* payload = field "payload" j in
  let* () = if pos < 0 then Error (Malformed "negative position") else Ok () in
  let expected = checksum ~kind ~pos ~seed payload in
  let* () =
    if not (String.equal expected crc) then
      Error (Checksum_mismatch { expected; got = crc })
    else Ok ()
  in
  let* () =
    match expect_kind with
    | Some k when k <> kind -> Error (Kind_mismatch { expected = k; got = kind })
    | _ -> Ok ()
  in
  let* () =
    match expect_seed with
    | Some sd when sd <> seed -> Error (Seed_mismatch { expected = sd; got = seed })
    | _ -> Ok ()
  in
  Ok { kind; pos; seed; payload }

let validate s = of_string s

(* Words the serialized state would occupy if held in memory — the
   figure [Sink.Observed] accounts under the [checkpoint] breakdown
   key. *)
let words_of_bytes bytes = (bytes + 7) / 8

module Obs = struct
  let r = Mkc_obs.Registry.global
  let saves = Mkc_obs.Registry.counter r "checkpoint.saves"
  let bytes = Mkc_obs.Registry.counter r "checkpoint.bytes"
  let loads = Mkc_obs.Registry.counter r "checkpoint.loads"

  (* Per-save latency distributions: encoding (JSON envelope build) and
     the full durable save (encode + write + rename). *)
  let encode_ns = Mkc_obs.Registry.histogram r "checkpoint.encode_ns"
  let save_ns = Mkc_obs.Registry.histogram r "checkpoint.save_ns"
end

let save ~path t =
  let t0 = Mkc_obs.Clock.now_ns () in
  let s = to_string t in
  Mkc_obs.Registry.record Obs.encode_ns (Mkc_obs.Clock.now_ns () - t0);
  (* Atomic: a crash mid-save must never destroy the previous valid
     checkpoint, so write a sibling temp file and rename over. *)
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc s);
    Sys.rename tmp path
  with
  | () ->
      if Mkc_obs.Registry.enabled () then begin
        Mkc_obs.Registry.incr Obs.saves;
        Mkc_obs.Registry.add Obs.bytes (String.length s);
        Mkc_obs.Registry.record Obs.save_ns (Mkc_obs.Clock.now_ns () - t0)
      end;
      Ok (String.length s)
  | exception Sys_error msg -> Error (Io_error msg)

let load ?expect_kind ?expect_seed ~path () =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Io_error msg)
  | s ->
      if Mkc_obs.Registry.enabled () then Mkc_obs.Registry.incr Obs.loads;
      of_string ?expect_kind ?expect_seed s

type 's codec = {
  kind : string;
  seed : int;
  encode : 's -> Json.t;
  restore : 's -> Json.t -> (unit, string) result;
}

let map_codec get c =
  {
    kind = c.kind;
    seed = c.seed;
    encode = (fun t -> c.encode (get t));
    restore = (fun t j -> c.restore (get t) j);
  }

(* {1 JSON plumbing shared by the sink encoders} *)

module J = struct
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt

  let field name j =
    match Json.member name j with Some v -> Ok v | None -> err "missing field %S" name

  let int_field name j =
    let* v = field name j in
    match Json.to_int v with Some i -> Ok i | None -> err "field %S is not an int" name

  let float_field name j =
    let* v = field name j in
    match Json.to_float v with
    | Some f -> Ok f
    | None -> err "field %S is not a number" name

  let str_field name j =
    let* v = field name j in
    match Json.to_string_opt v with
    | Some s -> Ok s
    | None -> err "field %S is not a string" name

  let list_field name j =
    let* v = field name j in
    match Json.to_list v with Some l -> Ok l | None -> err "field %S is not a list" name

  let map_result f l =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: tl -> ( match f x with Ok y -> go (y :: acc) tl | Error _ as e -> e)
    in
    go [] l

  let to_int j = match Json.to_int j with Some i -> Ok i | None -> err "expected int"

  let int_array a = Json.Array (Array.to_list (Array.map (fun i -> Json.Int i) a))

  let to_int_array j =
    match Json.to_list j with
    | None -> err "expected int array"
    | Some l ->
        let* ints = map_result to_int l in
        Ok (Array.of_list ints)

  let int_matrix m = Json.Array (Array.to_list (Array.map int_array m))

  let to_int_matrix j =
    match Json.to_list j with
    | None -> err "expected int matrix"
    | Some l ->
        let* rows = map_result to_int_array l in
        Ok (Array.of_list rows)

  let int_pairs ps =
    Json.Array (List.map (fun (a, b) -> Json.Array [ Json.Int a; Json.Int b ]) ps)

  let to_int_pairs j =
    match Json.to_list j with
    | None -> err "expected pair list"
    | Some l ->
        map_result
          (fun p ->
            match Json.to_list p with
            | Some [ a; b ] ->
                let* a = to_int a in
                let* b = to_int b in
                Ok (a, b)
            | _ -> err "expected [a, b] pair")
          l

  (* Fingerprints are full 64-bit hash values; Json.Int is a 63-bit
     OCaml int, so they travel as decimal strings. *)
  let i64 v = Json.String (Int64.to_string v)

  let to_i64 j =
    match Json.to_string_opt j with
    | None -> err "expected int64 string"
    | Some s -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> err "bad int64 %S" s)
end

(* {1 Sketch payload codecs} — shared by the core sink encoders. *)

module Sketch_io = struct
  module L0 = Mkc_sketch.L0_bjkst
  module F2c = Mkc_sketch.F2_contributing
  module Memo = Mkc_sketch.Sampler.Memo

  let l0 sk =
    let z, prunes, entries = L0.dump sk in
    Json.Object
      [
        ("z", Json.Int z);
        ("prunes", Json.Int prunes);
        ( "entries",
          Json.Array
            (List.map
               (fun (fp, lvl) -> Json.Array [ J.i64 fp; Json.Int lvl ])
               entries) );
      ]

  let restore_l0 sk j =
    let* z = J.int_field "z" j in
    let* prunes = J.int_field "prunes" j in
    let* entries = J.list_field "entries" j in
    let* entries =
      J.map_result
        (fun e ->
          match Json.to_list e with
          | Some [ fp; lvl ] ->
              let* fp = J.to_i64 fp in
              let* lvl = J.to_int lvl in
              Ok (fp, lvl)
          | _ -> J.err "expected [fingerprint, level] entry")
        entries
    in
    L0.load_state sk ~z ~prunes ~entries

  let hh (rows, counts, prunes) =
    Json.Object
      [
        ("cs", J.int_matrix rows);
        ("counts", J.int_pairs counts);
        ("prunes", Json.Int prunes);
      ]

  let restore_hh j =
    let* cs = J.field "cs" j in
    let* rows = J.to_int_matrix cs in
    let* counts = J.field "counts" j in
    let* counts = J.to_int_pairs counts in
    let* prunes = J.int_field "prunes" j in
    Ok (rows, counts, prunes)

  let f2c sk = Json.Array (Array.to_list (Array.map hh (F2c.dump sk)))

  let restore_f2c sk j =
    match Json.to_list j with
    | None -> J.err "expected per-level list"
    | Some levels ->
        let* levels = J.map_result restore_hh levels in
        F2c.load_state sk (Array.of_list levels)

  let memo m =
    let keys, vals = Memo.dump m in
    Json.Object [ ("keys", J.int_array keys); ("vals", J.int_array vals) ]

  let restore_memo m j =
    let* keys = J.field "keys" j in
    let* keys = J.to_int_array keys in
    let* vals = J.field "vals" j in
    let* vals = J.to_int_array vals in
    Memo.load_state m ~keys ~vals
end
