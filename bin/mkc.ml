(* mkc — command-line driver for the streaming Max k-Cover library.

   Subcommands:
     generate    synthesize an instance and write its edge stream to a file
     estimate    single-pass α-approximate coverage estimation (Thm 3.1)
                 (--checkpoint/--resume for crash tolerance)
     report      single-pass α-approximate k-cover reporting (Thm 3.2)
     greedy      offline full-memory greedy baseline
     merge       merge edge-partitioned shard checkpoints and finalize
     lowerbound  play the §5 one-way DSJ communication game
     top         live (or replayed) telemetry dashboard
     telemetry-report / validate-telemetry
                 summarize and verify --telemetry logs *)

open Cmdliner

let stream_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "stream"; "s" ] ~docv:"FILE"
        ~doc:
          "Edge stream file: text (lines: \"set elt\") or the binary columnar format \
           (see the convert subcommand); detected by magic bytes.")

let k_arg = Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Cover budget k.")

let alpha_arg =
  Arg.(value & opt float 4.0 & info [ "alpha"; "a" ] ~docv:"A" ~doc:"Approximation target α.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let profile_arg =
  let profile_conv =
    Arg.enum [ ("practical", Mkc_core.Params.Practical); ("paper", Mkc_core.Params.Paper) ]
  in
  Arg.(
    value & opt profile_conv Mkc_core.Params.Practical
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:"Constant profile: $(b,practical) (calibrated) or $(b,paper) (Table 2 literal).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Ingestion domains. With D > 1 the independent oracle instances are \
           bin-packed across a persistent pool of D domains; results are \
           identical to a sequential run.")

let schedule_arg =
  let schedule_conv =
    Arg.enum
      [ ("static", Mkc_stream.Pipeline.Static); ("adaptive", Mkc_stream.Pipeline.Adaptive) ]
  in
  Arg.(
    value & opt schedule_conv Mkc_stream.Pipeline.Static
    & info [ "schedule" ] ~docv:"MODE"
        ~doc:
          "Shard scheduling across domains: $(b,static) bin-packs once from \
           profiled cost hints; $(b,adaptive) re-packs between chunk windows \
           from measured per-shard busy time.  Only meaningful with \
           --domains > 1; never changes results.")

let pos_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | _ -> Error (`Msg (what ^ " must be a positive integer"))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float ~what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0.0 -> Ok v
    | _ -> Error (`Msg (what ^ " must be a positive number of seconds"))
  in
  Arg.conv (parse, Format.pp_print_float)

(* Cadence-style flags are range-checked here, in the command body,
   not in a cmdliner converter: a converter error is a generic usage
   failure (exit 124), while the contract for a zero or negative
   cadence is a named error on stderr and exit 2. *)
let require_pos ~flag v =
  if v < 1 then begin
    Format.eprintf "mkc: %s must be a positive integer (got %d)@." flag v;
    exit 2
  end;
  v

let chunk_arg =
  Arg.(
    value
    & opt int Mkc_stream.Pipeline.default_chunk
    & info [ "chunk" ] ~docv:"EDGES" ~doc:"Ingestion chunk size in edges.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Atomically save the sink state to $(docv) every $(b,--checkpoint-every) chunks \
           and once at end-of-stream (the final file feeds $(b,mkc merge)).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int Mkc_stream.Pipeline.default_checkpoint_every
    & info [ "checkpoint-every" ] ~docv:"CHUNKS" ~doc:"Chunks between checkpoint saves.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Restore state from a checkpoint written by $(b,--checkpoint) and continue the \
           stream from the checkpointed position.  The run must use the same stream, \
           parameters and seed; any mismatch or corruption is rejected by name.")

let stop_after_arg =
  Arg.(
    value
    & opt (some (pos_int ~what:"stop-after")) None
    & info [ "stop-after" ] ~docv:"EDGES"
        ~doc:
          "Stop ingesting after $(docv) edges of the stream (crash simulation for the \
           resume workflow; combine with --checkpoint).")

let force_m_arg =
  Arg.(
    value
    & opt (some (pos_int ~what:"m")) None
    & info [ "force-m" ] ~docv:"M"
        ~doc:
          "Override the number of sets inferred from the stream.  Shard-merge runs must \
           pass the full instance's dimensions so every shard builds the same sinks.")

let force_n_arg =
  Arg.(
    value
    & opt (some (pos_int ~what:"n")) None
    & info [ "force-n" ] ~docv:"N" ~doc:"Override the ground-set size inferred from the stream.")

(* ---------- observability plumbing ---------- *)

type obs_opts = {
  show : bool;
  json : string option;
  prom : string option;
  cadence : int;
  trace : string option;
  progress : float option;
}

let obs_term =
  let show =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print a metrics summary after the run.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write a schema-versioned JSON metrics snapshot to $(docv).")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-prometheus" ] ~docv:"FILE"
          ~doc:"Write a Prometheus text exposition to $(docv).")
  in
  let cadence =
    Arg.(
      value
      & opt int Mkc_stream.Sink.Observed.default_cadence
      & info [ "metrics-cadence" ] ~docv:"EDGES"
          ~doc:
            "Space-profile (and --telemetry) sampling cadence in edges; must be \
             positive.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event / Perfetto JSON timeline to $(docv) (open in \
             ui.perfetto.dev or chrome://tracing).")
  in
  let progress =
    Arg.(
      value
      & opt (some (pos_float ~what:"progress interval")) None
      & info [ "progress" ] ~docv:"SEC"
          ~doc:"Print an ingestion heartbeat to stderr every $(docv) seconds.")
  in
  Term.(
    const (fun show json prom cadence trace progress ->
        { show; json; prom; cadence; trace; progress })
    $ show $ json $ prom $ cadence $ trace $ progress)

let budget_strict_arg =
  Arg.(
    value & flag
    & info [ "budget-strict" ]
        ~doc:
          "Enable the space-budget watchdog in strict mode: abort (exit 3) as soon as a \
           sampled word count exceeds the theoretical budget from the parameters.")

let metrics_wanted o = o.show || o.json <> None || o.prom <> None

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Format.eprintf "mkc: %s@." msg;
    exit 2

let emit_metrics ?space ?(series = []) o profiles =
  let snap = Mkc_obs.Snapshot.capture ~profiles ?space ~series Mkc_obs.Registry.global in
  Option.iter (fun file -> write_file file (Mkc_obs.Snapshot.to_string snap)) o.json;
  Option.iter (fun file -> write_file file (Mkc_obs.Export.prometheus snap)) o.prom;
  if o.show then print_string (Mkc_obs.Export.summary snap)

let emit_trace o =
  match o.trace with
  | None -> ()
  | Some file ->
      let events = Mkc_obs.Trace.events () in
      write_file file (Mkc_obs.Trace.to_string ~events ());
      Format.printf "wrote trace: %s (%d events)@." file (List.length events)

let space_of_budget b =
  let open Mkc_sketch.Space.Budget in
  {
    Mkc_obs.Snapshot.budget_words = budget b;
    peak_words = peak b;
    headroom = headroom b;
    overshoots = overshoots b;
    samples = samples b;
  }

let record_budget_gauges b =
  let open Mkc_sketch.Space.Budget in
  Mkc_obs.Quality.record_budget ~budget_words:(budget b) ~peak_words:(peak b)
    ~overshoots:(overshoots b) ()

let print_budget b =
  let open Mkc_sketch.Space.Budget in
  Format.printf "space budget: %d words, peak %d, headroom %.2f%s@." (budget b) (peak b)
    (headroom b)
    (if overshoots b > 0 then Printf.sprintf " (%d overshoots)" (overshoots b) else "")

(* Wall-clock-throttled stderr heartbeat for [--progress]; the Tap
   itself fires on every feed call, so all policy lives here. *)
let progress_reporter ~total interval_s =
  let interval_ns = int_of_float (interval_s *. 1e9) in
  let start = Mkc_obs.Clock.now_ns () in
  let last = ref start in
  fun ~edges ->
    let now = Mkc_obs.Clock.now_ns () in
    if now - !last >= interval_ns then begin
      last := now;
      let dt = float_of_int (now - start) /. 1e9 in
      Format.eprintf "mkc: %d/%d edges (%.0f%%), %.1fs, %.0f edges/s@." edges total
        (100.0 *. float_of_int edges /. float_of_int (max 1 total))
        dt
        (if dt > 0.0 then float_of_int edges /. dt else 0.0)
    end

(* ---------- telemetry plumbing ---------- *)

type telem_opts = { tfile : string option; thealth : string list; ttop : bool }

let telem_term =
  let tfile =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Write a binary telemetry log to $(docv): one sample of the curated track set \
             per $(b,--metrics-cadence) crossing, replayable with \
             $(b,mkc telemetry-report), $(b,mkc validate-telemetry) and $(b,mkc top).")
  in
  let thealth =
    Arg.(
      value & opt_all string []
      & info [ "health" ] ~docv:"RULE"
          ~doc:
            "Arm a health rule checked on every telemetry sample (repeatable): \
             $(b,name=track>limit) or $(b,name=track<limit) (threshold), \
             $(b,name=num/den>ppm) (ratio drift, parts-per-million), or \
             $(b,name=stall:track:window) (no change over $(i,window) samples).  A \
             trailing $(b,!) escalates the rule: its first firing aborts the run with \
             exit 3, like $(b,--budget-strict).")
  in
  let ttop =
    Arg.(
      value & flag
      & info [ "top" ]
          ~doc:
            "Repaint a live telemetry dashboard on stderr while the stream runs \
             (throttled; ANSI rewrite on a tty) and print the final view after it.")
  in
  Term.(const (fun tfile thealth ttop -> { tfile; thealth; ttop }) $ tfile $ thealth $ ttop)

let telemetry_wanted t = t.tfile <> None || t.thealth <> [] || t.ttop

let parse_health_rules specs =
  List.map
    (fun spec ->
      match Mkc_obs.Health.parse spec with
      | Ok r -> r
      | Error msg ->
          Format.eprintf "mkc: --health %S: %s@." spec msg;
          exit 2)
    specs

(* Ring rows retained for the live view; the log and the running
   min/max/last summaries cover the whole run regardless. *)
let telemetry_ring = 512

(* Throttled repaint on stderr: on a tty the previous frame is erased
   (cursor-up + erase-below); otherwise frames append, which stays
   readable when redirected to a file. *)
let top_painter ?budget_words ~violations series =
  let interval_ns = 500_000_000 in
  let last = ref 0 in
  let prev_lines = ref 0 in
  let tty = Unix.isatty Unix.stderr in
  fun ~final ->
    let now = Mkc_obs.Clock.now_ns () in
    if final || now - !last >= interval_ns then begin
      last := now;
      let s = Mkc_obs.Top.render ?budget_words ~violations:(violations ()) series in
      if tty && !prev_lines > 0 then Printf.eprintf "\027[%dA\027[0J" !prev_lines;
      prev_lines := List.length (String.split_on_char '\n' s) - 1;
      prerr_string s;
      flush stderr
    end

type telemetry_rig = {
  trecorder : Mkc_obs.Telemetry.Recorder.t;
  tpaint : (final:bool -> unit) option;
  tpath : string option;
}

let setup_telemetry topts ?budget_words ob mk_probes =
  let probes =
    mk_probes ~breakdown:(fun () -> Mkc_stream.Sink.Observed.sampled_breakdown ob)
  in
  let tracks = Array.map fst probes in
  let writer =
    Option.map
      (fun path ->
        match Mkc_obs.Telemetry.Writer.create path ~tracks with
        | Ok w -> w
        | Error e ->
            Format.eprintf "mkc: %s: %s@." path (Mkc_obs.Telemetry.error_to_string e);
            exit 2)
      topts.tfile
  in
  let recorder =
    Mkc_obs.Telemetry.Recorder.create ?writer ~capacity:telemetry_ring probes
  in
  let series = Mkc_obs.Telemetry.Recorder.series recorder in
  let engine =
    match parse_health_rules topts.thealth with
    | [] -> None
    | rules -> (
        (* Rule firings also land in the log as events, stamped with
           the sample they fired on. *)
        let on_event ~name ~value =
          let n = Mkc_obs.Series.length series in
          let at_edges = if n = 0 then 0 else Mkc_obs.Series.row_edges series (n - 1) in
          Mkc_obs.Telemetry.Recorder.event recorder ~at_edges ~name ~value
        in
        try Some (Mkc_obs.Health.create ~on_event series rules)
        with Invalid_argument msg ->
          Format.eprintf "mkc: --health: %s@." msg;
          exit 2)
  in
  let violations () =
    match engine with Some e -> Mkc_obs.Health.violations e | None -> []
  in
  let paint =
    if topts.ttop then Some (top_painter ?budget_words ~violations series) else None
  in
  Mkc_stream.Sink.Observed.set_on_sample ob (fun ~edges ~words:_ ->
      Mkc_obs.Telemetry.Recorder.sample recorder ~at_edges:edges;
      (match engine with Some e -> Mkc_obs.Health.check e | None -> ());
      match paint with Some p -> p ~final:false | None -> ());
  { trecorder = recorder; tpaint = paint; tpath = topts.tfile }

let series_of_rig = function
  | None -> []
  | Some rg ->
      Mkc_obs.Snapshot.tracks_of_series (Mkc_obs.Telemetry.Recorder.series rg.trecorder)

(* [ok = false] on the abort paths: close (flush) the log so the
   samples up to the abort survive, but skip the celebration. *)
let finish_telemetry ~ok rig =
  match rig with
  | None -> ()
  | Some rg ->
      Mkc_obs.Telemetry.Recorder.close rg.trecorder;
      if ok then begin
        (match rg.tpaint with Some p -> p ~final:true | None -> ());
        Option.iter
          (fun path ->
            Format.printf "wrote telemetry: %s (%d samples)@." path
              (Mkc_obs.Series.total (Mkc_obs.Telemetry.Recorder.series rg.trecorder)))
          rg.tpath
      end

let budget_exceeded_exit o exn =
  match exn with
  | Mkc_sketch.Space.Budget.Exceeded { budget; words } ->
      Format.eprintf
        "mkc: space budget exceeded: %d words used against a budget of %d (--budget-strict)@."
        words budget;
      (* Still flush the trace: the timeline up to the abort is exactly
         what one wants when diagnosing an overshoot. *)
      emit_trace o;
      exit 3
  | e -> raise e

let load_stream path =
  (* Format dispatch on magic bytes: binary columnar files skip text
     parsing entirely and carry (m, n) in the header. *)
  match Mkc_stream.Stream_source.load_auto_dims path with
  | src, m, n -> (src, m, n)
  | exception Failure msg ->
      Format.eprintf "mkc: %s@." msg;
      exit 2
  | exception Sys_error msg ->
      Format.eprintf "mkc: %s@." msg;
      exit 2

(* ---------- windowed-mode plumbing ---------- *)

let window_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"EPOCHS"
        ~doc:
          "Sliding-window mode: retain the last $(docv) epochs of \
           $(b,--epoch-edges) edges each and answer over their merged states \
           plus the in-flight epoch.  Runs single-domain.")

let epoch_edges_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch-edges" ] ~docv:"EDGES"
        ~doc:"Edges per window epoch (required with $(b,--window)).")

let decay_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "decay" ] ~docv:"LAMBDA"
        ~doc:
          "Exponential-decay query: fold per-epoch estimates with weight \
           $(docv) per epoch of age instead of the uniform window merge.  \
           Must lie strictly between 0 and 1; requires $(b,--window).")

(* Same contract as require_pos: windowed-flag misuse is a named error
   on stderr and exit 2, decided before any stream I/O. *)
let windowed_config ~domains ~ckpt ~resume window epoch_edges decay =
  match window with
  | None ->
      if epoch_edges <> None then begin
        Format.eprintf "mkc: --epoch-edges requires --window@.";
        exit 2
      end;
      if decay <> None then begin
        Format.eprintf "mkc: --decay requires --window@.";
        exit 2
      end;
      None
  | Some w ->
      let w = require_pos ~flag:"--window" w in
      let e =
        match epoch_edges with
        | Some e -> require_pos ~flag:"--epoch-edges" e
        | None ->
            Format.eprintf "mkc: --window requires --epoch-edges@.";
            exit 2
      in
      Option.iter
        (fun l ->
          if not (l > 0.0 && l < 1.0) then begin
            Format.eprintf "mkc: --decay must lie strictly between 0 and 1 (got %g)@." l;
            exit 2
          end)
        decay;
      if domains > 1 then begin
        Format.eprintf "mkc: --window runs single-domain; use --domains 1@.";
        exit 2
      end;
      if ckpt <> None || resume <> None then begin
        Format.eprintf
          "mkc: --window holds its own per-epoch checkpoints; --checkpoint/--resume are \
           not supported in windowed mode@.";
        exit 2
      end;
      Some (w, e, decay)

(* ---------- run-ledger plumbing ---------- *)

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Append a run record (params, host fingerprint, wall/ingest stats, histogram \
           digests, quality gauges) to the $(docv) run ledger — durable evidence for \
           $(b,mkc bench-diff) and $(b,mkc doctor).")

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* Every populated histogram in the registry, digested — the ledger's
   latency evidence.  Names are the registry track names, so records
   written by different builds line up as long as the tracks exist. *)
let ledger_digests () =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Mkc_obs.Registry.Histogram h when h.Mkc_obs.Metric.Histogram.count > 0 ->
          Some (name, Mkc_obs.Metric.Histogram.digest h)
      | _ -> None)
    (Mkc_obs.Registry.dump Mkc_obs.Registry.global)

let ledger_quality () =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Mkc_obs.Registry.Gauge g when has_substring name ".quality." -> Some (name, g)
      | _ -> None)
    (Mkc_obs.Registry.dump Mkc_obs.Registry.global)

let ledger_run_params ~stream ~m ~n ~k ~alpha ~seed ~profile ~domains ~schedule ~chunk =
  [
    ("alpha", Mkc_obs.Json.Float alpha);
    ("chunk", Mkc_obs.Json.Int chunk);
    ("domains", Mkc_obs.Json.Int domains);
    ("k", Mkc_obs.Json.Int k);
    ("m", Mkc_obs.Json.Int m);
    ("n", Mkc_obs.Json.Int n);
    ( "profile",
      Mkc_obs.Json.String
        (match profile with Mkc_core.Params.Practical -> "practical" | Paper -> "paper") );
    ( "schedule",
      Mkc_obs.Json.String
        (match schedule with Mkc_stream.Pipeline.Static -> "static" | Adaptive -> "adaptive")
    );
    ("seed", Mkc_obs.Json.Int seed);
    ("stream", Mkc_obs.Json.String (Filename.basename stream));
  ]

let append_run_ledger ~path ~label ~params ~edges ~wall_ns ~mode ~extra_stats =
  let wall_s = float_of_int wall_ns /. 1e9 in
  let rate = if wall_s > 0.0 then float_of_int edges /. wall_s else 0.0 in
  let entry =
    {
      Mkc_obs.Ledger.e_label = label;
      e_created_ns = int_of_float (Unix.gettimeofday () *. 1e9);
      e_host = Mkc_obs.Ledger.host_fingerprint ();
      e_params = params;
      e_stats =
        [ ("edges", float_of_int edges); ("edges_per_sec", rate); ("wall_s", wall_s) ]
        @ extra_stats;
      e_modes =
        [
          {
            Mkc_obs.Ledger.ms_mode = mode;
            ms_repeats = 1;
            ms_best_s = wall_s;
            ms_median_s = wall_s;
            ms_edges_per_sec = rate;
          };
        ];
      e_digests = ledger_digests ();
      e_quality = ledger_quality ();
    }
  in
  match Mkc_obs.Ledger.append path entry with
  | Ok () -> Format.printf "appended run record to %s@." path
  | Error e ->
      Format.eprintf "mkc: %s: %s@." path (Mkc_obs.Ledger.error_to_string e);
      exit 2

(* ---------- generate ---------- *)

let generate kind n m k seed out churn =
  Option.iter
    (fun frac ->
      if not (frac >= 0.0 && frac < 1.0) then begin
        Format.eprintf "mkc: --churn must lie in [0, 1) (got %g)@." frac;
        exit 2
      end)
    churn;
  let sys =
    match kind with
    | `Few_large -> (Mkc_workload.Planted.few_large ~n ~m ~k ~seed).system
    | `Many_small -> (Mkc_workload.Planted.many_small ~n ~m ~k ~seed).system
    | `Common_heavy -> (Mkc_workload.Planted.common_heavy ~n ~m ~k ~beta:4 ~seed).system
    | `Uniform -> Mkc_workload.Random_inst.uniform ~n ~m ~set_size:(max 1 (n / 64)) ~seed
    | `Zipf -> Mkc_workload.Random_inst.zipf_sizes ~n ~m ~max_size:(max 2 (n / 16)) ~skew:1.1 ~seed
    | `Graph -> Mkc_workload.Graph_gen.power_law ~vertices:n ~edges:(8 * n) ~skew:1.2 ~seed
  in
  let src = Mkc_stream.Stream_source.of_system ~seed:(seed + 1) sys in
  let src =
    match churn with
    | None -> src
    | Some frac ->
        Mkc_stream.Stream_source.of_array
          (Mkc_workload.Churn.apply ~frac ~seed:(seed + 2)
             (Mkc_stream.Stream_source.to_array src))
  in
  Mkc_stream.Stream_source.save src out;
  let deletions =
    Array.fold_left
      (fun acc (e : Mkc_stream.Edge.t) -> if e.sign < 0 then acc + 1 else acc)
      0
      (Mkc_stream.Stream_source.to_array src)
  in
  Format.printf "wrote %d pairs (%a%s) to %s@."
    (Mkc_stream.Stream_source.length src)
    Mkc_stream.Set_system.pp_summary sys
    (if deletions > 0 then Printf.sprintf ", %d deletions" deletions else "")
    out

let generate_cmd =
  let kind =
    let kind_conv =
      Arg.enum
        [
          ("few-large", `Few_large);
          ("many-small", `Many_small);
          ("common-heavy", `Common_heavy);
          ("uniform", `Uniform);
          ("zipf", `Zipf);
          ("graph", `Graph);
        ]
    in
    Arg.(value & opt kind_conv `Uniform & info [ "kind" ] ~docv:"KIND" ~doc:"Instance family.")
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Ground set size.") in
  let m = Arg.(value & opt int 1024 & info [ "m" ] ~doc:"Number of sets.") in
  let out =
    Arg.(value & opt string "stream.txt" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let churn =
    Arg.(
      value
      & opt (some float) None
      & info [ "churn" ] ~docv:"FRAC"
          ~doc:
            "Turnstile churn: retract a $(docv)-fraction of the generated edges \
             later in the stream (sign -1 lines), each strictly after its \
             insertion.  Must lie in [0, 1).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize an instance and write its edge stream")
    Term.(const generate $ kind $ n $ m $ k_arg $ seed_arg $ out $ churn)

(* ---------- convert ---------- *)

let convert path out to_text force_m force_n =
  let src, m, n =
    match Mkc_stream.Stream_source.load_auto_dims path with
    | r -> r
    | exception Failure msg ->
        Format.eprintf "mkc: %s@." msg;
        exit 2
    | exception Sys_error msg ->
        Format.eprintf "mkc: %s@." msg;
        exit 2
  in
  let m = Option.value ~default:m force_m and n = Option.value ~default:n force_n in
  let edges = Mkc_stream.Stream_source.length src in
  (match
     if to_text then Ok (Mkc_stream.Stream_source.save src out)
     else
       Result.map
         (fun (_ : int) -> ())
         (Mkc_stream.Edge_file.write out (Mkc_stream.Stream_source.to_array src) ~n ~m)
   with
  | Ok () -> ()
  | Error e ->
      Format.eprintf "mkc: %s: %s@." out (Mkc_stream.Edge_file.error_to_string e);
      exit 2
  | exception Invalid_argument msg | exception Sys_error msg ->
      Format.eprintf "mkc: %s@." msg;
      exit 2);
  Format.printf "wrote %d edges (m=%d, n=%d) to %s (%s)@." edges m n out
    (if to_text then "text" else "binary columnar")

let convert_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let to_text =
    Arg.(
      value & flag
      & info [ "to-text" ]
          ~doc:"Write the text format instead of the default binary columnar format.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert an edge stream between the text format and the binary columnar \
          format (fixed-width set/element id columns with a checksummed header; \
          parsed without per-line string handling)")
    Term.(const convert $ stream_arg $ out $ to_text $ force_m_arg $ force_n_arg)

(* ---------- estimate ---------- *)

let ckpt_error_exit what e =
  Format.eprintf "mkc: %s: %s@." what (Mkc_stream.Checkpoint.error_to_string e);
  exit 4

let truncate_source src = function
  | None -> src
  | Some edges ->
      let arr = Mkc_stream.Stream_source.to_array src in
      if edges >= Array.length arr then src
      else Mkc_stream.Stream_source.of_array (Array.sub arr 0 edges)

(* The windowed estimate run: single-domain, epoch ring inside the
   sink, telemetry through the windowed probe set. *)
let estimate_windowed ~path ~src ~m ~n ~k ~alpha ~seed ~profile ~schedule ~chunk ~oopts
    ~topts ~budget_strict ~ledger params (window, epoch_edges, decay) =
  let est = Mkc_core.Windowed.create ?decay params ~window ~epoch_edges () in
  let want = metrics_wanted oopts in
  let tracing = oopts.trace <> None in
  let telemetry_on = telemetry_wanted topts in
  (* The window.* telemetry tracks read the registry counters the
     epoch-roll path bumps, so telemetry alone needs the registry on. *)
  if telemetry_on || want || ledger <> None then Mkc_obs.Registry.set_enabled true;
  if tracing then Mkc_obs.Trace.set_enabled true;
  let budget =
    if budget_strict || want then
      Some
        (Mkc_sketch.Space.Budget.create ~strict:budget_strict
           (Mkc_core.Estimate.word_budget params))
    else None
  in
  let total = Mkc_stream.Stream_source.length src in
  let notify = Option.map (fun sec -> progress_reporter ~total sec) oopts.progress in
  let profiles = ref [] in
  let rig = ref None in
  let run () =
    if want || tracing || budget <> None || telemetry_on then begin
      let sm, ob =
        Mkc_stream.Sink.Observed.observe ~cadence:oopts.cadence ?budget
          Mkc_core.Windowed.sink est
      in
      if want then profiles := [ ("estimate", Mkc_stream.Sink.Observed.profile ob) ];
      if telemetry_on then
        rig :=
          Some
            (setup_telemetry topts
               ?budget_words:(Option.map Mkc_sketch.Space.Budget.budget budget)
               ob
               (fun ~breakdown -> Mkc_core.Telemetry_probes.build_windowed ~breakdown est));
      match notify with
      | Some notify ->
          let tm, tp = Mkc_stream.Sink.Tap.tap sm ob ~notify in
          Mkc_stream.Pipeline.run ~chunk tm tp src
      | None -> Mkc_stream.Pipeline.run ~chunk sm ob src
    end
    else
      match notify with
      | Some notify ->
          let tm, tp = Mkc_stream.Sink.Tap.tap Mkc_core.Windowed.sink est ~notify in
          Mkc_stream.Pipeline.run ~chunk tm tp src
      | None -> Mkc_stream.Pipeline.run ~chunk Mkc_core.Windowed.sink est src
  in
  let run_t0 = Mkc_obs.Clock.now_ns () in
  let r =
    try run () with
    | Mkc_obs.Health.Violation msg ->
        finish_telemetry ~ok:false !rig;
        Format.eprintf "mkc: health rule violated: %s@." msg;
        emit_trace oopts;
        exit 3
    | e ->
        finish_telemetry ~ok:false !rig;
        budget_exceeded_exit oopts e
  in
  let run_wall_ns = Mkc_obs.Clock.now_ns () - run_t0 in
  Format.printf "stream: %d pairs, m=%d, n=%d@." total m n;
  Format.printf "windowed %d-cover coverage estimate (%d epochs%s): %.0f@." k
    r.Mkc_core.Windowed.epochs
    (match decay with Some l -> Printf.sprintf ", decay %g" l | None -> "")
    r.Mkc_core.Windowed.estimate;
  (match r.Mkc_core.Windowed.outcome with
  | Some o -> Format.printf "winning subroutine: %a@." Mkc_core.Solution.pp_provenance o.provenance
  | None -> Format.printf "no subroutine produced a feasible estimate@.");
  Format.printf "epochs rolled: %d, champion swaps: %d@." r.Mkc_core.Windowed.rolled
    r.Mkc_core.Windowed.swaps;
  Format.printf "space: %d words@." (Mkc_core.Windowed.words est);
  Option.iter print_budget budget;
  finish_telemetry ~ok:true !rig;
  if want || ledger <> None then begin
    Mkc_core.Estimate.record_metrics (Mkc_core.Windowed.current est);
    Option.iter record_budget_gauges budget
  end;
  if want then
    emit_metrics
      ?space:(Option.map space_of_budget budget)
      ~series:(series_of_rig !rig) oopts (List.rev !profiles);
  emit_trace oopts;
  Option.iter
    (fun lpath ->
      append_run_ledger ~path:lpath ~label:"estimate"
        ~params:
          (ledger_run_params ~stream:path ~m ~n ~k ~alpha ~seed ~profile ~domains:1
             ~schedule ~chunk)
        ~edges:total ~wall_ns:run_wall_ns ~mode:"windowed"
        ~extra_stats:
          [
            ("epochs_rolled", float_of_int r.Mkc_core.Windowed.rolled);
            ("estimate", r.Mkc_core.Windowed.estimate);
            ("space_words", float_of_int (Mkc_core.Windowed.words est));
            ("window_swaps", float_of_int r.Mkc_core.Windowed.swaps);
          ])
    ledger

let estimate path k alpha seed profile domains schedule chunk oopts topts budget_strict
    ckpt every resume stop_after force_m force_n ledger window epoch_edges decay =
  let chunk = require_pos ~flag:"--chunk" chunk in
  let every = require_pos ~flag:"--checkpoint-every" every in
  let oopts = { oopts with cadence = require_pos ~flag:"--metrics-cadence" oopts.cadence } in
  let wincfg = windowed_config ~domains ~ckpt ~resume window epoch_edges decay in
  let src, m, n = load_stream path in
  let src = truncate_source src stop_after in
  let m = Option.value ~default:m force_m and n = Option.value ~default:n force_n in
  let params = Mkc_core.Params.make ~m ~n ~k ~alpha ~profile ~seed () in
  match wincfg with
  | Some cfg ->
      estimate_windowed ~path ~src ~m ~n ~k ~alpha ~seed ~profile ~schedule ~chunk ~oopts
        ~topts ~budget_strict ~ledger params cfg
  | None ->
  let est = Mkc_core.Estimate.create params in
  let want = metrics_wanted oopts in
  let tracing = oopts.trace <> None in
  let telemetry_on = telemetry_wanted topts in
  if telemetry_on && domains > 1 then begin
    Format.eprintf
      "mkc: --telemetry/--health/--top sample the single-domain sink; use --domains 1@.";
    exit 2
  end;
  if topts.thealth <> [] then
    (* Health counters live in the registry like every other metric. *)
    Mkc_obs.Registry.set_enabled true;
  if want || ledger <> None then Mkc_obs.Registry.set_enabled true;
  if tracing then Mkc_obs.Trace.set_enabled true;
  let budget =
    if budget_strict || want then
      Some
        (Mkc_sketch.Space.Budget.create ~strict:budget_strict
           (Mkc_core.Estimate.word_budget params))
    else None
  in
  let total = Mkc_stream.Stream_source.length src in
  let notify = Option.map (fun sec -> progress_reporter ~total sec) oopts.progress in
  let profiles = ref [] in
  let rig = ref None in
  let attach ob =
    if telemetry_on then
      rig :=
        Some
          (setup_telemetry topts
             ?budget_words:(Option.map Mkc_sketch.Space.Budget.budget budget)
             ob
             (fun ~breakdown -> Mkc_core.Telemetry_probes.build ~breakdown est))
  in
  let run () =
    if (ckpt <> None || resume <> None) && domains > 1 then begin
      (* Pool-backed checkpoint/resume: saves land on chunk-window
         boundaries (chunk × domains edges), where every worker is
         quiescent.  Shards are re-derived from the restored estimator,
         so a resumed run matches the uninterrupted one bit for bit. *)
      Option.iter
        (fun _ -> Format.eprintf "mkc: --progress is not reported in checkpoint mode; ignoring@.")
        notify;
      let codec = Mkc_core.Estimate.codec params in
      let final_samples = ref [] in
      let wrap_shards st =
        let shards = Mkc_core.Estimate.shards st in
        if not want then shards
        else
          Array.mapi
            (fun i s ->
              let ob = Mkc_stream.Sink.Observed.observe_any ~cadence:oopts.cadence s in
              profiles := (Printf.sprintf "shard%d" i, ob.Mkc_stream.Sink.Observed.oprofile) :: !profiles;
              final_samples := ob.Mkc_stream.Sink.Observed.osample :: !final_samples;
              ob.Mkc_stream.Sink.Observed.osink)
            shards
      in
      let out =
        Mkc_stream.Pipeline.run_parallel_resumable ~domains ~schedule
          ~costs:(Mkc_core.Estimate.shard_costs est) ~chunk ~every ?resume
          ?checkpoint:ckpt codec est ~shards:wrap_shards
          ~finalize:(fun st ->
            List.iter (fun sample -> sample ()) !final_samples;
            (match budget with
            | Some b -> Mkc_sketch.Space.Budget.observe b (Mkc_core.Estimate.words st)
            | None -> ());
            Mkc_core.Estimate.finalize st)
          src
      in
      match out with Ok r -> r | Error e -> ckpt_error_exit "checkpoint" e
    end
    else if ckpt <> None || resume <> None then begin
      Option.iter
        (fun _ -> Format.eprintf "mkc: --progress is not reported in checkpoint mode; ignoring@.")
        notify;
      let codec = Mkc_core.Estimate.codec params in
      let out =
        if want || tracing || budget <> None || telemetry_on then begin
          let sm, ob =
            Mkc_stream.Sink.Observed.observe ~cadence:oopts.cadence ?budget
              Mkc_core.Estimate.sink est
          in
          if want then profiles := [ ("estimate", Mkc_stream.Sink.Observed.profile ob) ];
          attach ob;
          (* Aim the codec at the inner sink and put each save's bytes on
             the space books — a held checkpoint is real space. *)
          let codec = Mkc_stream.Checkpoint.map_codec Mkc_stream.Sink.Observed.state codec in
          let on_save ~pos:_ ~bytes:_ ~words =
            Mkc_stream.Sink.Observed.note_checkpoint ob ~words
          in
          Mkc_stream.Pipeline.run_resumable ~chunk ~every ?resume ?checkpoint:ckpt ~on_save
            codec sm ob src
        end
        else
          Mkc_stream.Pipeline.run_resumable ~chunk ~every ?resume ?checkpoint:ckpt codec
            Mkc_core.Estimate.sink est src
      in
      match out with Ok r -> r | Error e -> ckpt_error_exit "checkpoint" e
    end
    else if domains > 1 then begin
      Option.iter
        (fun _ ->
          Format.eprintf "mkc: --progress is only reported with --domains 1; ignoring@.")
        notify;
      let shards = Mkc_core.Estimate.shards est in
      let final_samples = ref [] in
      let shards =
        if not want then shards
        else
          (* Budgets are single-domain mutable state: never share one
             across per-shard wrappers.  The watchdog instead checks the
             total word count once at finalize. *)
          Array.mapi
            (fun i s ->
              let ob = Mkc_stream.Sink.Observed.observe_any ~cadence:oopts.cadence s in
              profiles := (Printf.sprintf "shard%d" i, ob.Mkc_stream.Sink.Observed.oprofile) :: !profiles;
              final_samples := ob.Mkc_stream.Sink.Observed.osample :: !final_samples;
              ob.Mkc_stream.Sink.Observed.osink)
            shards
      in
      Mkc_stream.Pipeline.run_parallel ~domains ~schedule
        ~costs:(Mkc_core.Estimate.shard_costs est) ~chunk ~shards
        ~finalize:(fun () ->
          List.iter (fun sample -> sample ()) !final_samples;
          (match budget with
          | Some b -> Mkc_sketch.Space.Budget.observe b (Mkc_core.Estimate.words est)
          | None -> ());
          Mkc_core.Estimate.finalize est)
        src
    end
    else if want || tracing || budget <> None || telemetry_on then begin
      let sm, ob =
        Mkc_stream.Sink.Observed.observe ~cadence:oopts.cadence ?budget
          Mkc_core.Estimate.sink est
      in
      if want then profiles := [ ("estimate", Mkc_stream.Sink.Observed.profile ob) ];
      attach ob;
      match notify with
      | Some notify ->
          let tm, tp = Mkc_stream.Sink.Tap.tap sm ob ~notify in
          Mkc_stream.Pipeline.run ~chunk tm tp src
      | None -> Mkc_stream.Pipeline.run ~chunk sm ob src
    end
    else
      match notify with
      | Some notify ->
          let tm, tp = Mkc_stream.Sink.Tap.tap Mkc_core.Estimate.sink est ~notify in
          Mkc_stream.Pipeline.run ~chunk tm tp src
      | None -> Mkc_stream.Pipeline.run ~chunk Mkc_core.Estimate.sink est src
  in
  let run_t0 = Mkc_obs.Clock.now_ns () in
  let r =
    try run () with
    | Mkc_obs.Health.Violation msg ->
        finish_telemetry ~ok:false !rig;
        Format.eprintf "mkc: health rule violated: %s@." msg;
        (* Flush the trace for the same reason --budget-strict does:
           the timeline up to the abort is the diagnosis. *)
        emit_trace oopts;
        exit 3
    | e ->
        finish_telemetry ~ok:false !rig;
        budget_exceeded_exit oopts e
  in
  let run_wall_ns = Mkc_obs.Clock.now_ns () - run_t0 in
  Format.printf "stream: %d pairs, m=%d, n=%d@." (Mkc_stream.Stream_source.length src) m n;
  Format.printf "estimated optimal %d-cover coverage: %.0f@." k r.Mkc_core.Estimate.estimate;
  (match r.Mkc_core.Estimate.outcome with
  | Some o ->
      Format.printf "winning subroutine: %a (guess z=%d)@." Mkc_core.Solution.pp_provenance
        o.provenance r.Mkc_core.Estimate.z_guess
  | None -> Format.printf "no subroutine produced a feasible estimate@.");
  Format.printf "space: %d words@." (Mkc_core.Estimate.words est);
  Option.iter print_budget budget;
  finish_telemetry ~ok:true !rig;
  if want || ledger <> None then begin
    Mkc_core.Estimate.record_metrics est;
    Option.iter record_budget_gauges budget
  end;
  if want then
    emit_metrics
      ?space:(Option.map space_of_budget budget)
      ~series:(series_of_rig !rig) oopts (List.rev !profiles);
  emit_trace oopts;
  Option.iter
    (fun lpath ->
      append_run_ledger ~path:lpath ~label:"estimate"
        ~params:
          (ledger_run_params ~stream:path ~m ~n ~k ~alpha ~seed ~profile ~domains ~schedule
             ~chunk)
        ~edges:(Mkc_stream.Stream_source.length src)
        ~wall_ns:run_wall_ns
        ~mode:(if domains > 1 then "pool" else "sequential")
        ~extra_stats:
          [
            ("estimate", r.Mkc_core.Estimate.estimate);
            ("space_words", float_of_int (Mkc_core.Estimate.words est));
          ])
    ledger

let estimate_cmd =
  Cmd.v
    (Cmd.info "estimate" ~doc:"α-approximate coverage estimation (Theorem 3.1)")
    Term.(
      const estimate $ stream_arg $ k_arg $ alpha_arg $ seed_arg $ profile_arg
      $ domains_arg $ schedule_arg $ chunk_arg $ obs_term $ telem_term $ budget_strict_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ stop_after_arg $ force_m_arg
      $ force_n_arg $ ledger_arg $ window_arg $ epoch_edges_arg $ decay_arg)

(* ---------- report ---------- *)

(* Windowed reporting: the merged window's winning oracle carries the
   witness ids, so the reported cover is the one a fresh pass over the
   live suffix would name. *)
let report_windowed ~src ~m ~n ~k ~chunk params (window, epoch_edges, decay) =
  let est = Mkc_core.Windowed.create ?decay params ~window ~epoch_edges () in
  let r = Mkc_stream.Pipeline.run ~chunk Mkc_core.Windowed.sink est src in
  Format.printf "stream: %d pairs, m=%d, n=%d@." (Mkc_stream.Stream_source.length src) m n;
  Format.printf "windowed estimated coverage (%d epochs%s): %.0f@." r.Mkc_core.Windowed.epochs
    (match decay with Some l -> Printf.sprintf ", decay %g" l | None -> "")
    r.Mkc_core.Windowed.estimate;
  let sets =
    match r.Mkc_core.Windowed.outcome with
    | Some o ->
        Format.printf "via: %a@." Mkc_core.Solution.pp_provenance o.provenance;
        List.filteri (fun i _ -> i < k) (o.witness ())
    | None -> []
  in
  Format.printf "reported %d sets:@." (List.length sets);
  List.iter (fun id -> Format.printf "  S%d@." id) sets;
  Format.printf "epochs rolled: %d, champion swaps: %d@." r.Mkc_core.Windowed.rolled
    r.Mkc_core.Windowed.swaps;
  Format.printf "space: %d words@." (Mkc_core.Windowed.words est)

let report path k alpha seed profile domains schedule chunk oopts ledger window epoch_edges
    decay =
  let chunk = require_pos ~flag:"--chunk" chunk in
  let oopts = { oopts with cadence = require_pos ~flag:"--metrics-cadence" oopts.cadence } in
  let wincfg = windowed_config ~domains ~ckpt:None ~resume:None window epoch_edges decay in
  let src, m, n = load_stream path in
  let params = Mkc_core.Params.make ~m ~n ~k ~alpha ~profile ~seed () in
  match wincfg with
  | Some cfg -> report_windowed ~src ~m ~n ~k ~chunk params cfg
  | None ->
  let rep = Mkc_core.Report.create params in
  let want = metrics_wanted oopts in
  let tracing = oopts.trace <> None in
  if want || ledger <> None then Mkc_obs.Registry.set_enabled true;
  if tracing then Mkc_obs.Trace.set_enabled true;
  let total = Mkc_stream.Stream_source.length src in
  let notify = Option.map (fun sec -> progress_reporter ~total sec) oopts.progress in
  let profiles = ref [] in
  let run_t0 = Mkc_obs.Clock.now_ns () in
  let r =
    if domains > 1 then begin
      Option.iter
        (fun _ ->
          Format.eprintf "mkc: --progress is only reported with --domains 1; ignoring@.")
        notify;
      let shards = Mkc_core.Report.shards rep in
      let final_samples = ref [] in
      let shards =
        if not want then shards
        else
          Array.mapi
            (fun i s ->
              let ob = Mkc_stream.Sink.Observed.observe_any ~cadence:oopts.cadence s in
              profiles := (Printf.sprintf "shard%d" i, ob.Mkc_stream.Sink.Observed.oprofile) :: !profiles;
              final_samples := ob.Mkc_stream.Sink.Observed.osample :: !final_samples;
              ob.Mkc_stream.Sink.Observed.osink)
            shards
      in
      Mkc_stream.Pipeline.run_parallel ~domains ~schedule
        ~costs:(Mkc_core.Report.shard_costs rep) ~chunk ~shards
        ~finalize:(fun () ->
          List.iter (fun sample -> sample ()) !final_samples;
          Mkc_core.Report.finalize rep)
        src
    end
    else if want || tracing then begin
      let sm, ob =
        Mkc_stream.Sink.Observed.observe ~cadence:oopts.cadence Mkc_core.Report.sink rep
      in
      if want then profiles := [ ("report", Mkc_stream.Sink.Observed.profile ob) ];
      match notify with
      | Some notify ->
          let tm, tp = Mkc_stream.Sink.Tap.tap sm ob ~notify in
          Mkc_stream.Pipeline.run ~chunk tm tp src
      | None -> Mkc_stream.Pipeline.run ~chunk sm ob src
    end
    else
      match notify with
      | Some notify ->
          let tm, tp = Mkc_stream.Sink.Tap.tap Mkc_core.Report.sink rep ~notify in
          Mkc_stream.Pipeline.run ~chunk tm tp src
      | None -> Mkc_stream.Pipeline.run ~chunk Mkc_core.Report.sink rep src
  in
  let run_wall_ns = Mkc_obs.Clock.now_ns () - run_t0 in
  Format.printf "estimated coverage: %.0f@." r.Mkc_core.Report.estimate;
  (match r.Mkc_core.Report.provenance with
  | Some p -> Format.printf "via: %a@." Mkc_core.Solution.pp_provenance p
  | None -> ());
  Format.printf "reported %d sets:@." (List.length r.Mkc_core.Report.sets);
  List.iter (fun id -> Format.printf "  S%d@." id) r.Mkc_core.Report.sets;
  Format.printf "space: %d words@." (Mkc_core.Report.words rep);
  if want || ledger <> None then Mkc_core.Report.record_metrics rep;
  if want then emit_metrics oopts (List.rev !profiles);
  emit_trace oopts;
  Option.iter
    (fun lpath ->
      append_run_ledger ~path:lpath ~label:"report"
        ~params:
          (ledger_run_params ~stream:path ~m ~n ~k ~alpha ~seed ~profile ~domains ~schedule
             ~chunk)
        ~edges:total ~wall_ns:run_wall_ns
        ~mode:(if domains > 1 then "pool" else "sequential")
        ~extra_stats:
          [
            ("estimate", r.Mkc_core.Report.estimate);
            ("space_words", float_of_int (Mkc_core.Report.words rep));
          ])
    ledger

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"α-approximate k-cover reporting (Theorem 3.2)")
    Term.(
      const report $ stream_arg $ k_arg $ alpha_arg $ seed_arg $ profile_arg
      $ domains_arg $ schedule_arg $ chunk_arg $ obs_term $ ledger_arg $ window_arg
      $ epoch_edges_arg $ decay_arg)

(* ---------- greedy ---------- *)

let greedy path k =
  let src, m, n = load_stream path in
  let sys =
    Mkc_stream.Set_system.of_edges ~n ~m
      (Array.to_list (Mkc_stream.Stream_source.to_array src))
  in
  let r = Mkc_coverage.Greedy.run sys ~k in
  Format.printf "greedy %d-cover coverage: %d@." k r.Mkc_coverage.Greedy.coverage;
  List.iter (fun id -> Format.printf "  S%d@." id) r.Mkc_coverage.Greedy.chosen

let greedy_cmd =
  Cmd.v
    (Cmd.info "greedy" ~doc:"Offline full-memory greedy baseline (1 - 1/e)")
    Term.(const greedy $ stream_arg $ k_arg)

(* ---------- stats ---------- *)

let stats path =
  let src, m, n = load_stream path in
  let sys =
    Mkc_stream.Set_system.of_edges ~n ~m
      (Array.to_list (Mkc_stream.Stream_source.to_array src))
  in
  Format.printf "%a@." Mkc_stream.Set_system.pp_summary sys;
  Format.printf "max element frequency: %d@." (Mkc_stream.Stats.max_frequency sys);
  List.iter
    (fun lambda ->
      Format.printf "|Ucmn(λ=%g)| (freq ≥ m/λ): %d@." lambda
        (Mkc_stream.Stats.ucmn_size sys ~lambda))
    [ 4.0; 16.0; 64.0 ];
  Format.printf "frequency histogram (freq: #elements):@.";
  List.iter
    (fun (f, c) -> if f <= 16 then Format.printf "  %4d: %d@." f c)
    (Mkc_stream.Stats.frequency_histogram sys)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Instance statistics (frequencies, λ-common elements)")
    Term.(const stats $ stream_arg)

(* ---------- lowerbound ---------- *)

let lowerbound m alpha trials seed =
  let r = max 2 (int_of_float (ceil alpha)) in
  let correct = ref 0 and words = ref 0 in
  for t = 1 to trials do
    let case = if t mod 2 = 0 then Mkc_lowerbound.Disjointness.Yes else Mkc_lowerbound.Disjointness.No in
    let d = Mkc_lowerbound.Disjointness.generate ~r ~m ~case ~seed:(seed + t) () in
    let out =
      Mkc_lowerbound.Protocol.play d
        (Mkc_lowerbound.Protocol.coverage_distinguisher ~m ~alpha ~seed:(seed + (1000 * t)) ())
    in
    if out.Mkc_lowerbound.Protocol.correct then incr correct;
    words := max !words out.Mkc_lowerbound.Protocol.message_words
  done;
  Format.printf "α-player DSJ(m=%d, α=%d): %d/%d correct, max message %d words (m/α² = %.0f)@."
    m r !correct trials !words
    (float_of_int m /. (alpha *. alpha))

let lowerbound_cmd =
  let m = Arg.(value & opt int 1024 & info [ "m" ] ~doc:"Item universe size.") in
  let trials = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Number of game plays.") in
  Cmd.v
    (Cmd.info "lowerbound" ~doc:"Play the §5 one-way set-disjointness game")
    Term.(const lowerbound $ m $ alpha_arg $ trials $ seed_arg)

(* ---------- merge ---------- *)

let merge files =
  (* Shard-merge: each file is the final checkpoint of an independent
     run over one contiguous slice of the stream (same params and seed;
     pass them stream-ordered).  The payload embeds the params, so the
     files are self-describing — no instance flags here. *)
  match files with
  | [] -> assert false (* cmdliner enforces at least one positional *)
  | first :: rest ->
      let load path =
        match
          Mkc_stream.Checkpoint.load ~expect_kind:Mkc_core.Estimate.ckpt_kind ~path ()
        with
        | Ok c -> c
        | Error e -> ckpt_error_exit path e
      in
      let of_ckpt (c : Mkc_stream.Checkpoint.t) path =
        match Mkc_core.Estimate.of_payload c.payload with
        | Ok est -> est
        | Error msg ->
            Format.eprintf "mkc: %s: %s@." path msg;
            exit 4
      in
      let c0 = load first in
      let est = of_ckpt c0 first in
      let edges = ref c0.pos in
      List.iter
        (fun path ->
          let c = load path in
          if c.seed <> c0.seed then
            ckpt_error_exit path
              (Mkc_stream.Checkpoint.Seed_mismatch { expected = c0.seed; got = c.seed });
          let shard = of_ckpt c path in
          if not (Mkc_core.Params.same_instance (Mkc_core.Estimate.params shard)
                    (Mkc_core.Estimate.params est))
          then begin
            Format.eprintf "mkc: %s: shard params differ from %s@." path first;
            exit 4
          end;
          edges := !edges + c.pos;
          Mkc_core.Estimate.merge_into ~dst:est shard)
        rest;
      let r = Mkc_core.Estimate.finalize est in
      Format.printf "merged %d shard checkpoints covering %d edges@." (List.length files)
        !edges;
      Format.printf "estimated optimal %d-cover coverage: %.0f@."
        (Mkc_core.Estimate.params est).Mkc_core.Params.k r.Mkc_core.Estimate.estimate;
      (match r.Mkc_core.Estimate.outcome with
      | Some o ->
          Format.printf "winning subroutine: %a (guess z=%d)@." Mkc_core.Solution.pp_provenance
            o.provenance r.Mkc_core.Estimate.z_guess
      | None -> Format.printf "no subroutine produced a feasible estimate@.");
      Format.printf "space: %d words@." (Mkc_core.Estimate.words est)

let merge_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Shard checkpoint files (from $(b,--checkpoint)), stream-ordered.")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge edge-partitioned shard checkpoints and finalize the combined estimate")
    Term.(const merge $ files)

(* ---------- validate-checkpoint ---------- *)

let validate_checkpoint file =
  match Mkc_stream.Checkpoint.validate (read_file file) with
  | Error e ->
      Format.eprintf "%s: invalid checkpoint: %s@." file
        (Mkc_stream.Checkpoint.error_to_string e);
      exit 1
  | Ok c ->
      (* Deep-validate known payload kinds: the envelope checksum pins
         the bytes, the decoder pins the shape. *)
      (if c.kind = Mkc_core.Estimate.ckpt_kind then
         match Mkc_core.Estimate.of_payload c.payload with
         | Ok _ -> ()
         | Error msg ->
             Format.eprintf "%s: invalid %s payload: %s@." file c.kind msg;
             exit 1);
      Format.printf "%s: valid %s checkpoint (kind %s, %d edges, seed %d)@." file
        Mkc_stream.Checkpoint.schema c.kind c.pos c.seed

let validate_checkpoint_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Checkpoint file (from --checkpoint).")
  in
  Cmd.v
    (Cmd.info "validate-checkpoint"
       ~doc:"Validate a checkpoint file against the mkc-ckpt/1 schema")
    Term.(const validate_checkpoint $ file)

(* ---------- validate-snapshot ---------- *)

let validate_snapshot file =
  match Mkc_obs.Snapshot.validate (read_file file) with
  | Ok snap ->
      Format.printf "%s: valid %s snapshot (%d metrics, %d spans, %d profiles%s%s)@." file
        snap.Mkc_obs.Snapshot.schema
        (List.length snap.Mkc_obs.Snapshot.metrics)
        (List.length snap.Mkc_obs.Snapshot.spans)
        (List.length snap.Mkc_obs.Snapshot.profiles)
        (match snap.Mkc_obs.Snapshot.space with
        | Some sp -> Printf.sprintf ", space headroom %.2f" sp.Mkc_obs.Snapshot.headroom
        | None -> "")
        (match snap.Mkc_obs.Snapshot.series with
        | [] -> ""
        | tracks -> Printf.sprintf ", %d series tracks" (List.length tracks))
  | Error e ->
      Format.eprintf "%s: invalid snapshot: %s@." file e;
      exit 1

let validate_snapshot_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Snapshot JSON file (from --metrics-json).")
  in
  Cmd.v
    (Cmd.info "validate-snapshot"
       ~doc:
         "Validate a metrics snapshot against the mkc-obs/4 schema (mkc-obs/1 through \
          mkc-obs/3 accepted read-only)")
    Term.(const validate_snapshot $ file)

(* ---------- telemetry subcommands ---------- *)

let telemetry_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Telemetry log file (from --telemetry).")

let load_telemetry file =
  match Mkc_obs.Telemetry.read file with
  | Ok log -> log
  | Error e ->
      Format.eprintf "%s: invalid telemetry log: %s@." file
        (Mkc_obs.Telemetry.error_to_string e);
      exit 1

let warn_torn file (log : Mkc_obs.Telemetry.log) =
  Option.iter
    (fun e ->
      Format.eprintf "%s: warning: torn tail skipped: %s@." file
        (Mkc_obs.Telemetry.error_to_string e))
    log.torn

(* Fold the log's events into sorted (name, (firings, total)) rows. *)
let aggregate_events (log : Mkc_obs.Telemetry.log) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Mkc_obs.Telemetry.event) ->
      let c, v = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl e.e_name) in
      Hashtbl.replace tbl e.e_name (c + 1, v + e.e_value))
    log.events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let telemetry_report file =
  let log = load_telemetry file in
  warn_torn file log;
  Format.printf "%s: %d tracks, %d samples, %d events@." file (Array.length log.tracks)
    (List.length log.samples) (List.length log.events);
  (* Raw integers, not human-scaled: this table is what round-trip
     checks and scripts consume. *)
  Format.printf "%-26s %8s %14s %14s %14s %14s %14s@." "track" "count" "min" "max" "last"
    "p50" "p99";
  List.iter
    (fun (s : Mkc_obs.Telemetry.summary) ->
      Format.printf "%-26s %8d %14d %14d %14d %14d %14d@." s.t_name s.t_count s.t_min
        s.t_max s.t_last s.t_p50 s.t_p99)
    (Mkc_obs.Telemetry.summarize log);
  match aggregate_events log with
  | [] -> ()
  | events ->
      Format.printf "events:@.";
      List.iter
        (fun (name, (count, total)) ->
          Format.printf "  %-24s x%d (total %d)@." name count total)
        events

let telemetry_report_cmd =
  Cmd.v
    (Cmd.info "telemetry-report"
       ~doc:
         "Replay a --telemetry log into per-track min/max/last/p50/p99 summaries and an \
          event digest")
    Term.(const telemetry_report $ telemetry_file_arg)

(* Cross-check a telemetry log against the series section of a
   --metrics-json snapshot from the same run: every snapshot track's
   count/min/max/last must match the replayed log exactly.  Exits 1 on
   the first mismatch.  Shared by validate-telemetry and doctor. *)
let check_log_against_snapshot ~file ~snapfile (log : Mkc_obs.Telemetry.log)
    (snap : Mkc_obs.Snapshot.t) =
  if snap.Mkc_obs.Snapshot.series = [] then begin
    Format.eprintf "%s: snapshot has no series section to check against@." snapfile;
    exit 1
  end;
  let summaries = Mkc_obs.Telemetry.summarize log in
  List.iter
    (fun (tr : Mkc_obs.Snapshot.track) ->
      match
        List.find_opt (fun (s : Mkc_obs.Telemetry.summary) -> s.t_name = tr.tname) summaries
      with
      | None ->
          Format.eprintf "%s: track %S is in the snapshot but not the log@." file tr.tname;
          exit 1
      | Some s ->
          let check what got expected =
            if got <> expected then begin
              Format.eprintf "%s: track %S %s mismatch: log %d, snapshot %d@." file tr.tname
                what got expected;
              exit 1
            end
          in
          check "count" s.t_count tr.tcount;
          check "min" s.t_min tr.tmin;
          check "max" s.t_max tr.tmax;
          check "last" s.t_last tr.tlast)
    snap.Mkc_obs.Snapshot.series;
  Format.printf "%s: matches all %d snapshot series tracks of %s exactly@." file
    (List.length snap.Mkc_obs.Snapshot.series)
    snapfile

let validate_telemetry file against =
  let log = load_telemetry file in
  warn_torn file log;
  (match against with
  | None -> ()
  | Some snapfile -> (
      match Mkc_obs.Snapshot.validate (read_file snapfile) with
      | Error e ->
          Format.eprintf "%s: invalid snapshot: %s@." snapfile e;
          exit 1
      | Ok snap -> check_log_against_snapshot ~file ~snapfile log snap));
  Format.printf "%s: valid telemetry log, version %d (%d tracks, %d samples, %d events%s)@."
    file Mkc_obs.Telemetry.version (Array.length log.tracks) (List.length log.samples)
    (List.length log.events)
    (match log.torn with Some _ -> ", torn tail skipped" | None -> "")

let validate_telemetry_cmd =
  let against =
    Arg.(
      value
      & opt (some string) None
      & info [ "against-snapshot" ] ~docv:"SNAP"
          ~doc:
            "Also cross-check the log against the $(b,series) section of a \
             $(b,--metrics-json) snapshot from the same run: every track's \
             count/min/max/last must match the replayed log exactly.")
  in
  Cmd.v
    (Cmd.info "validate-telemetry"
       ~doc:
         "Validate a --telemetry log (checksummed MKCTEL1 frames; a torn tail is \
          reported but tolerated)")
    Term.(const validate_telemetry $ telemetry_file_arg $ against)

(* ---------- top ---------- *)

let top file follow interval =
  (* A torn tail is the normal mid-append state in follow mode; [read]
     already tolerates it, so each poll sees the intact prefix. *)
  let render_once () =
    let log = load_telemetry file in
    let violations =
      List.filter_map
        (fun (name, (_, total)) ->
          match String.split_on_char '.' name with
          | [ "health"; rule; "violations" ] -> Some (rule, total)
          | _ -> None)
        (aggregate_events log)
    in
    Mkc_obs.Top.render ~violations (Mkc_obs.Telemetry.replay log)
  in
  if not follow then print_string (render_once ())
  else begin
    let tty = Unix.isatty Unix.stdout in
    let prev_lines = ref 0 in
    while true do
      let s = render_once () in
      if tty && !prev_lines > 0 then Printf.printf "\027[%dA\027[0J" !prev_lines;
      prev_lines := List.length (String.split_on_char '\n' s) - 1;
      print_string s;
      flush stdout;
      Unix.sleepf interval
    done
  end

let top_cmd =
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:"Keep polling the log and repainting until interrupted (live tail).")
  in
  let interval =
    Arg.(
      value
      & opt (pos_float ~what:"poll interval") 0.5
      & info [ "interval" ] ~docv:"SEC" ~doc:"Poll interval for $(b,--follow).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Render the telemetry dashboard from a --telemetry log (once, or live with \
          $(b,--follow) while a run appends to it)")
    Term.(const top $ telemetry_file_arg $ follow $ interval)

(* ---------- validate-trace ---------- *)

let validate_trace file =
  match Mkc_obs.Trace.validate (read_file file) with
  | Ok n -> Format.printf "%s: valid trace_event JSON (%d events)@." file n
  | Error e ->
      Format.eprintf "%s: invalid trace: %s@." file e;
      exit 1

let validate_trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace JSON file (from --trace).")
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Validate a Chrome trace_event / Perfetto JSON timeline (from --trace)")
    Term.(const validate_trace $ file)

(* ---------- ledger / bench-diff / doctor ---------- *)

let load_ledger ~exit_code file =
  match Mkc_obs.Ledger.read file with
  | Ok store -> store
  | Error e ->
      Format.eprintf "%s: invalid run ledger: %s@." file (Mkc_obs.Ledger.error_to_string e);
      exit exit_code

let warn_ledger_torn file (store : Mkc_obs.Ledger.store) =
  Option.iter
    (fun e ->
      Format.eprintf "%s: warning: torn tail skipped: %s@." file
        (Mkc_obs.Ledger.error_to_string e))
    store.torn

let ledger_action action file index =
  let store = load_ledger ~exit_code:1 file in
  warn_ledger_torn file store;
  let entries = store.entries in
  let n = List.length entries in
  match action with
  | `Validate ->
      Format.printf "%s: valid run ledger, version %d (%d records%s)@." file
        Mkc_obs.Ledger.version n
        (match store.torn with Some _ -> ", torn tail skipped" | None -> "")
  | `List ->
      Format.printf "%s: %d records@." file n;
      List.iteri
        (fun i (e : Mkc_obs.Ledger.entry) ->
          let rate =
            match e.e_modes with
            | m :: _ ->
                Printf.sprintf " %s %.0f edges/s (best of %d)" m.ms_mode m.ms_edges_per_sec
                  m.ms_repeats
            | [] -> ""
          in
          Format.printf "  [%d] %-16s created_ns=%d%s@." i e.e_label e.e_created_ns rate)
        entries
  | `Show ->
      if n = 0 then begin
        Format.eprintf "%s: empty run ledger, nothing to show@." file;
        exit 1
      end;
      let i = Option.value ~default:(n - 1) index in
      if i < 0 || i >= n then begin
        Format.eprintf "mkc: --index %d out of range (%d records)@." i n;
        exit 2
      end;
      print_endline (Mkc_obs.Json.to_string (Mkc_obs.Ledger.entry_to_json (List.nth entries i)))

let ledger_cmd =
  let action =
    let action_conv = Arg.enum [ ("list", `List); ("show", `Show); ("validate", `Validate) ] in
    Arg.(
      required
      & pos 0 (some action_conv) None
      & info [] ~docv:"ACTION" ~doc:"$(b,list), $(b,show) or $(b,validate).")
  in
  let file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Run ledger file (from --ledger or the pipeline bench).")
  in
  let index =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ] ~docv:"N" ~doc:"Record to show (0-based; default the newest).")
  in
  Cmd.v
    (Cmd.info "ledger"
       ~doc:
         "List, show or validate the records of an MKCLEDG1 run ledger (checksummed \
          frames; a torn tail is reported but tolerated)")
    Term.(const ledger_action $ action $ file $ index)

let pick_ledger_entry ~what ~label ~index file =
  let store = load_ledger ~exit_code:2 file in
  warn_ledger_torn file store;
  let entries =
    match label with
    | None -> store.entries
    | Some l ->
        List.filter (fun (e : Mkc_obs.Ledger.entry) -> String.equal e.e_label l) store.entries
  in
  let n = List.length entries in
  if n = 0 then begin
    Format.eprintf "mkc: %s %s has no matching records%s@." what file
      (match label with Some l -> Printf.sprintf " (label %S)" l | None -> "");
    exit 2
  end;
  let i = Option.value ~default:(n - 1) index in
  if i < 0 || i >= n then begin
    Format.eprintf "mkc: %s index %d out of range (%d matching records)@." what i n;
    exit 2
  end;
  List.nth entries i

let bench_diff baseline candidate label bindex cindex noise_floor allow_incomparable =
  if not (Float.is_finite noise_floor && noise_floor >= 0.0) then begin
    Format.eprintf "mkc: --noise-floor must be a non-negative number (got %g)@." noise_floor;
    exit 2
  end;
  let b = pick_ledger_entry ~what:"baseline" ~label ~index:bindex baseline in
  let c = pick_ledger_entry ~what:"candidate" ~label ~index:cindex candidate in
  let opts = { Mkc_obs.Sentinel.default_opts with noise_floor } in
  let r = Mkc_obs.Sentinel.compare_entries ~opts ~baseline:b ~candidate:c () in
  List.iter (fun l -> Format.printf "  %s@." l) r.Mkc_obs.Sentinel.r_lines;
  Format.printf "bench-diff: %s@."
    (Mkc_obs.Sentinel.verdict_to_string r.Mkc_obs.Sentinel.r_verdict);
  match r.Mkc_obs.Sentinel.r_verdict with
  | Mkc_obs.Sentinel.Improved _ | Mkc_obs.Sentinel.Within_noise -> ()
  | Mkc_obs.Sentinel.Regressed _ -> exit 5
  | Mkc_obs.Sentinel.Incomparable _ -> if not allow_incomparable then exit 6

let bench_diff_cmd =
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"LEDGER" ~doc:"Baseline run ledger.")
  in
  let candidate =
    Arg.(
      required
      & opt (some string) None
      & info [ "candidate" ] ~docv:"LEDGER" ~doc:"Candidate run ledger.")
  in
  let label =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"LABEL"
          ~doc:"Compare only records with this label (default: any; newest wins).")
  in
  let bindex =
    Arg.(
      value
      & opt (some int) None
      & info [ "baseline-index" ] ~docv:"N"
          ~doc:"Baseline record (0-based among matches; default the newest).")
  in
  let cindex =
    Arg.(
      value
      & opt (some int) None
      & info [ "candidate-index" ] ~docv:"N"
          ~doc:"Candidate record (0-based among matches; default the newest).")
  in
  let noise_floor =
    Arg.(
      value
      & opt float Mkc_obs.Sentinel.default_opts.Mkc_obs.Sentinel.noise_floor
      & info [ "noise-floor" ] ~docv:"FRAC"
          ~doc:
            "Minimum relative noise band; the effective band is the larger of this and \
             the baseline's own best-vs-median dispersion.")
  in
  let allow_incomparable =
    Arg.(
      value & flag
      & info [ "allow-incomparable" ]
          ~doc:
            "Exit 0 instead of 6 when the records are incomparable (different labels or \
             params) — for CI baselines that may predate a workload change.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare a candidate run-ledger record against a baseline one: throughput \
          against a noise band from the baseline's own repeat dispersion, histogram-p99 \
          shifts, and quality drift.  Exit 0 when within noise or improved, 5 on a \
          regression, 6 when incomparable.")
    Term.(
      const bench_diff $ baseline $ candidate $ label $ bindex $ cindex $ noise_floor
      $ allow_incomparable)

(* ---------- doctor ---------- *)

let doctor snapshot telemetry trace ledger =
  if snapshot = None && telemetry = None && trace = None && ledger = None then begin
    Format.eprintf
      "mkc: doctor needs at least one artifact (--snapshot, --telemetry, --trace, \
       --ledger)@.";
    exit 2
  end;
  let checked = ref 0 in
  let snap =
    Option.map
      (fun file ->
        match Mkc_obs.Snapshot.validate (read_file file) with
        | Error e ->
            Format.eprintf "%s: invalid snapshot: %s@." file e;
            exit 1
        | Ok s ->
            incr checked;
            Format.printf "doctor: %s: valid %s snapshot (%d metrics)@." file
              s.Mkc_obs.Snapshot.schema
              (List.length s.Mkc_obs.Snapshot.metrics);
            (file, s))
      snapshot
  in
  Option.iter
    (fun file ->
      let log = load_telemetry file in
      warn_torn file log;
      incr checked;
      Format.printf "doctor: %s: valid telemetry log (%d tracks, %d samples)@." file
        (Array.length log.tracks) (List.length log.samples);
      match snap with
      | Some (snapfile, s) when s.Mkc_obs.Snapshot.series <> [] ->
          check_log_against_snapshot ~file ~snapfile log s
      | _ -> ())
    telemetry;
  Option.iter
    (fun file ->
      match Mkc_obs.Trace.validate (read_file file) with
      | Ok n ->
          incr checked;
          Format.printf "doctor: %s: valid trace_event JSON (%d events)@." file n
      | Error e ->
          Format.eprintf "%s: invalid trace: %s@." file e;
          exit 1)
    trace;
  Option.iter
    (fun file ->
      let store = load_ledger ~exit_code:1 file in
      warn_ledger_torn file store;
      incr checked;
      Format.printf "doctor: %s: valid run ledger (%d records)@." file
        (List.length store.entries);
      (* Cross-check the newest record's final gauges against a
         snapshot from the same run: the ledger's quality gauges and
         histogram digests must agree with what the snapshot froze. *)
      match (snap, List.rev store.entries) with
      | Some (snapfile, s), (last : Mkc_obs.Ledger.entry) :: _ ->
          let metric name =
            List.find_opt
              (fun (m : Mkc_obs.Snapshot.metric) -> String.equal m.mname name)
              s.Mkc_obs.Snapshot.metrics
          in
          List.iter
            (fun (name, q) ->
              match metric name with
              | Some { mvalue = Mkc_obs.Snapshot.Gauge g; _ } when Float.abs (g -. q) <= 1e-9
                ->
                  ()
              | Some { mvalue = Mkc_obs.Snapshot.Gauge g; _ } ->
                  Format.eprintf "%s: quality gauge %S is %.9f in the ledger, %.9f in %s@."
                    file name q g snapfile;
                  exit 1
              | _ ->
                  Format.eprintf "%s: quality gauge %S has no gauge in %s@." file name
                    snapfile;
                  exit 1)
            last.e_quality;
          List.iter
            (fun (name, (d : Mkc_obs.Metric.Histogram.digest)) ->
              match metric name with
              | Some { mvalue = Mkc_obs.Snapshot.Histogram h; _ }
                when h.Mkc_obs.Snapshot.hcount = d.d_count
                     && Float.abs (h.Mkc_obs.Snapshot.hsum -. float_of_int d.d_sum) <= 0.5
                ->
                  ()
              | Some { mvalue = Mkc_obs.Snapshot.Histogram h; _ } ->
                  Format.eprintf
                    "%s: digest %S (count %d, sum %d) disagrees with %s (count %d, sum \
                     %.0f)@."
                    file name d.d_count d.d_sum snapfile h.Mkc_obs.Snapshot.hcount
                    h.Mkc_obs.Snapshot.hsum;
                  exit 1
              | _ ->
                  Format.eprintf "%s: digest %S has no histogram in %s@." file name snapfile;
                  exit 1)
            last.e_digests;
          Format.printf "doctor: %s: newest record matches %s final gauges@." file snapfile
      | _ -> ())
    ledger;
  Format.printf "doctor: %d artifacts consistent@." !checked

let doctor_cmd =
  let opt_file name docv doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv ~doc)
  in
  let snapshot = opt_file "snapshot" "FILE" "Metrics snapshot (from --metrics-json)." in
  let telemetry = opt_file "telemetry" "FILE" "Telemetry log (from --telemetry)." in
  let trace = opt_file "trace" "FILE" "Trace timeline (from --trace)." in
  let ledger = opt_file "ledger" "FILE" "Run ledger (from --ledger)." in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "One-shot audit of a run's observability artifacts: validate each given file \
          (snapshot, telemetry log, trace, run ledger) and cross-check them against each \
          other — telemetry against the snapshot's series section, the newest ledger \
          record's quality gauges and histogram digests against the snapshot's final \
          metrics.  Exit 1 on any inconsistency.")
    Term.(const doctor $ snapshot $ telemetry $ trace $ ledger)

let () =
  let info =
    Cmd.info "mkc" ~version:"1.0.0"
      ~doc:"Streaming maximum k-coverage (Indyk-Vakilian, PODS 2019)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            convert_cmd;
            estimate_cmd;
            report_cmd;
            greedy_cmd;
            stats_cmd;
            lowerbound_cmd;
            merge_cmd;
            validate_checkpoint_cmd;
            validate_snapshot_cmd;
            validate_trace_cmd;
            top_cmd;
            telemetry_report_cmd;
            validate_telemetry_cmd;
            ledger_cmd;
            bench_diff_cmd;
            doctor_cmd;
          ]))
