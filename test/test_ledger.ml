(* Tests for Mkc_obs.Ledger, the append-only MKCLEDG1 run-record store.

   The load-bearing claims:
     1. append/read round-trips entries exactly, across multiple
        appends and re-opens (the file accumulates, never overwrites);
     2. the encoder is deterministic: identical entries encode to
        identical bytes (sorted fields), the golden-test property that
        lets bench-diff compare records from different builds;
     3. the corruption matrix mirrors the telemetry log's contract —
        a torn final frame keeps the intact prefix and is reported by
        name, while bad magic, a foreign version, an in-file checksum
        flip, and a malformed record are hard named errors;
     4. appending to a foreign or corrupt file is refused before any
        byte is written;
     5. entry_of_json rejects semantic nonsense (wrong schema,
        negative timestamps, zero repeats, inverted timings) so a
        ledger can be trusted as comparison evidence. *)

module L = Mkc_obs.Ledger
module H = Mkc_obs.Histogram
module J = Mkc_obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let with_tmp k =
  let path = Filename.temp_file "mkc_ledger_test" ".mkcledg" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> k path)

let digest_of values =
  let h = H.create () in
  List.iter (H.record h) values;
  H.digest h

let sample_entry ?(label = "bench") ?(created_ns = 1000) ?(best = 0.5) () =
  {
    L.e_label = label;
    e_created_ns = created_ns;
    e_host = [ ("hostname", J.String "testhost"); ("word_size", J.Int 64) ];
    e_params = [ ("k", J.Int 8); ("n", J.Int 1024); ("seed", J.Int 7) ];
    e_stats = [ ("edges", 4096.0); ("wall_s", best) ];
    e_modes =
      [
        {
          L.ms_mode = "batched";
          ms_repeats = 3;
          ms_best_s = best;
          ms_median_s = best *. 1.5;
          ms_edges_per_sec = 4096.0 /. best;
        };
      ];
    e_digests = [ ("feed_ns", digest_of [ 100; 200; 400 ]) ];
    e_quality = [ ("estimate.quality.vs_greedy.relative_error", 0.05) ];
  }

let append_ok path e =
  match L.append path e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "append: %s" (L.error_to_string err)

let read_ok path =
  match L.read path with
  | Ok store -> store
  | Error err -> Alcotest.failf "read: %s" (L.error_to_string err)

(* --- round trip and accumulation --- *)

let test_round_trip () =
  with_tmp (fun path ->
      let a = sample_entry ~created_ns:1000 () in
      let b = sample_entry ~created_ns:2000 ~best:0.4 () in
      append_ok path a;
      append_ok path b;
      let store = read_ok path in
      checkb "no tear" true (store.L.torn = None);
      checki "both records survive" 2 (List.length store.L.entries);
      checkb "oldest first, field-exact" true (store.L.entries = [ a; b ]);
      (* a third append after a full read/close cycle keeps accumulating *)
      append_ok path (sample_entry ~created_ns:3000 ());
      checki "append keeps accumulating" 3 (List.length (read_ok path).L.entries))

let test_encoding_deterministic () =
  let e = sample_entry () in
  checks "identical entries encode identically"
    (J.to_string (L.entry_to_json e))
    (J.to_string (L.entry_to_json (sample_entry ())));
  (* field order in the record does not leak into the bytes *)
  let shuffled = { e with L.e_params = List.rev e.L.e_params } in
  checks "encoder sorts object fields"
    (J.to_string (L.entry_to_json e))
    (J.to_string (L.entry_to_json shuffled));
  match Result.bind (J.parse (J.to_string (L.entry_to_json e))) L.entry_of_json with
  | Error msg -> Alcotest.failf "entry JSON round trip: %s" msg
  | Ok e' ->
      (* decoded assoc lists come back sorted; compare against the
         sorted original *)
      let sort l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
      checkb "JSON round trip preserves the entry" true
        (e' = { e with L.e_params = sort e.L.e_params; e_host = sort e.L.e_host })

(* --- corruption matrix --- *)

let file_bytes path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let write_bytes path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let truncate_to path keep =
  let b = file_bytes path in
  write_bytes path (Bytes.sub b 0 keep)

let flip_byte path pos =
  let b = file_bytes path in
  let pos = if pos < 0 then Bytes.length b + pos else pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  write_bytes path b

let test_torn_tail_keeps_prefix () =
  with_tmp (fun path ->
      append_ok path (sample_entry ~created_ns:1000 ());
      append_ok path (sample_entry ~created_ns:2000 ());
      let full = Bytes.length (file_bytes path) in
      (* cut into the final frame's payload: crash mid-append *)
      truncate_to path (full - 7);
      let store = read_ok path in
      checki "intact prefix survives" 1 (List.length store.L.entries);
      checkb "the tear is reported by name" true
        (match store.L.torn with Some (L.Truncated _) -> true | _ -> false);
      (* appending after a tear still works — the header is intact *)
      append_ok path (sample_entry ~created_ns:3000 ());
      ())

let test_rejection_matrix () =
  let expect_error what mutate pred =
    with_tmp (fun path ->
        append_ok path (sample_entry ());
        mutate path;
        match L.read path with
        | Ok _ -> Alcotest.failf "read accepted %s" what
        | Error e ->
            checkb (what ^ " is the named error") true (pred e);
            (* the same damage must also refuse an append *)
            (match L.append path (sample_entry ()) with
            | Ok () -> Alcotest.failf "append accepted %s" what
            | Error _ -> ()))
  in
  expect_error "a foreign magic"
    (fun p -> flip_byte p 0)
    (function L.Bad_magic _ -> true | _ -> false);
  expect_error "an unsupported version"
    (fun p -> flip_byte p 8)
    (function L.Bad_version _ -> true | _ -> false);
  expect_error "a header cut short"
    (fun p -> truncate_to p 10)
    (function L.Truncated _ -> true | _ -> false);
  (* in-file payload damage: fatal checksum mismatch, not a tear —
     note append is refused only for header damage, so check read *)
  with_tmp (fun path ->
      append_ok path (sample_entry ());
      append_ok path (sample_entry ~created_ns:2000 ());
      flip_byte path 40;
      match L.read path with
      | Ok _ -> Alcotest.fail "read accepted a flipped payload byte"
      | Error (L.Checksum_mismatch _) -> ()
      | Error e -> Alcotest.failf "expected a checksum mismatch, got: %s" (L.error_to_string e))

let test_empty_and_missing () =
  with_tmp (fun path ->
      (* a missing file reads as an error, not an empty store *)
      (match L.read path with
      | Ok _ -> Alcotest.fail "read of a missing file succeeded"
      | Error (L.Io_error _) -> ()
      | Error e -> Alcotest.failf "expected io error, got %s" (L.error_to_string e));
      (* an empty file is `Fresh for append (header gets written) *)
      write_bytes path (Bytes.create 0);
      append_ok path (sample_entry ());
      checki "record lands in the freshly-headed file" 1
        (List.length (read_ok path).L.entries))

(* --- semantic validation --- *)

let test_entry_validation () =
  let reject what patch =
    let j = L.entry_to_json (sample_entry ()) in
    let s = patch (J.to_string j) in
    match Result.bind (J.parse s) L.entry_of_json with
    | Ok _ -> Alcotest.failf "entry_of_json accepted %s" what
    | Error _ -> ()
  in
  let replace ~sub ~by s =
    let ls = String.length s and lb = String.length sub in
    let rec find i =
      if i + lb > ls then invalid_arg ("replace: " ^ sub ^ " not found")
      else if String.sub s i lb = sub then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub s 0 i ^ by ^ String.sub s (i + lb) (ls - i - lb)
  in
  reject "a foreign record schema" (replace ~sub:"mkc-ledger/1" ~by:"mkc-ledger/9");
  reject "a negative created_ns" (replace ~sub:"\"created_ns\":1000" ~by:"\"created_ns\":-1");
  reject "zero repeats" (replace ~sub:"\"repeats\":3" ~by:"\"repeats\":0");
  reject "a median below best" (replace ~sub:"\"median_s\":0.75" ~by:"\"median_s\":0.25");
  reject "a tampered digest (min above max)"
    (replace ~sub:"\"min\":100" ~by:"\"min\":500")

let suite =
  [
    Alcotest.test_case "append/read round trip accumulates" `Quick test_round_trip;
    Alcotest.test_case "encoding is deterministic and sorted" `Quick
      test_encoding_deterministic;
    Alcotest.test_case "torn tail keeps the intact prefix" `Quick
      test_torn_tail_keeps_prefix;
    Alcotest.test_case "corruption rejection matrix" `Quick test_rejection_matrix;
    Alcotest.test_case "missing vs empty files" `Quick test_empty_and_missing;
    Alcotest.test_case "record semantic validation" `Quick test_entry_validation;
  ]
