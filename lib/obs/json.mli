(** Minimal JSON: just enough to print and re-validate metric
    snapshots without an external dependency.  Integers are kept
    distinct from floats so counters round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val to_string : t -> string
(** Compact rendering; object fields keep the given order (snapshots
    emit them sorted, which makes golden tests byte-stable). *)

val parse : string -> (t, string) result
(** Strict parser for the subset {!to_string} emits plus standard JSON
    numbers, escapes and whitespace.  Errors carry a byte offset. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> float option
val to_string_opt : t -> string option
val to_list : t -> t list option
