(* Tests for the chunk-deduplicated hash engine.

   The engine's contract is an evaluation-schedule change, never a
   hash-function change: the planned (chunk-deduplicated) ingestion path
   must produce bit-for-bit the state of per-edge ingestion while
   evaluating each (set, element) sampler hash once per distinct id per
   chunk instead of once per edge.  Checked here:

   1. property: planned path ≡ per-edge path on random streams — same
      estimate/witness/words AND the same per-instance work counters,
      except the [*sampler_evals] and [*memo_hits] families, which are
      exactly what the engine is allowed (required) to shrink;
   2. the keep-level memo is transparent: under collisions and
      overwrites its answer always equals the direct hash evaluation,
      and its fixed space shows up under a [memo] breakdown key;
   3. branch-free [L0_bjkst.trailing_zeros] vs a bit-by-bit reference;
   4. the trivial branch's witness is deterministic and sorted. *)

module Edge = Mkc_stream.Edge
module Src = Mkc_stream.Stream_source
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module P = Mkc_core.Params
module E = Mkc_core.Estimate
module Sampler = Mkc_sketch.Sampler
module Sm = Mkc_hashing.Splitmix

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Work counters with the [*sampler_evals] and [*memo_hits] families
   dropped: those count hash evaluations and memo lookups (the engine's
   whole point is doing fewer of the former, which also changes how
   often the memo is consulted); everything else — edges, l0/f2
   updates, stored pairs, recoveries — is an observable-work invariant
   the planned path must preserve. *)
let invariant_stats est =
  List.map
    (fun (inst, stats) ->
      ( inst,
        List.filter
          (fun (k, _) ->
            not (has_suffix ~suffix:"sampler_evals" k || has_suffix ~suffix:"memo_hits" k))
          stats ))
    (E.stats est)

(* --- 1. planned ≡ per-edge, counters included --- *)

let prop_planned_equals_per_edge =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 300) (pair (int_range 0 31) (int_range 0 63)))
        (int_range 1 128))
  in
  let arb =
    QCheck.make
      ~print:(fun (edges, chunk) ->
        Printf.sprintf "%d edges, chunk %d" (List.length edges) chunk)
      gen
  in
  QCheck.Test.make
    ~name:"chunk-dedup planned path ≡ per-edge path (results and work counters)"
    ~count:30 arb
    (fun (pairs, chunk) ->
      let edges =
        Array.of_list (List.map (fun (s, e) -> Edge.make ~set:s ~elt:e) pairs)
      in
      let src = Src.of_array edges in
      let params = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:13 () in
      let e0 = E.create params in
      let r0 = Pipe.run_seq E.sink e0 src in
      let e1 = E.create params in
      let r1 = Pipe.run ~chunk E.sink e1 src in
      fingerprint r0 = fingerprint r1
      && E.words e0 = E.words e1
      && E.words_breakdown e0 = E.words_breakdown e1
      && invariant_stats e0 = invariant_stats e1)

(* The planned path exists to shrink sampler work: chunk grouping plus
   memoization keep set-sampling evaluations at O(distinct ids), far
   under the edge count — and since the memo makes misses a pure
   function of the distinct-id sequence, per-edge and planned drives
   must report the same (small) evaluation count. *)
let test_planned_fewer_sampler_evals () =
  let m = 32 and n = 64 in
  (* 4096 edges over 32 sets: at most m distinct set ids exist, so
     set-sampling evaluations must be bounded by m per instance however
     the stream is driven — and in both drives they must agree, because
     the memo makes misses a function of the distinct-id sequence. *)
  let edges =
    Array.init 4096 (fun i -> Edge.make ~set:(i * 7 mod m) ~elt:(i * 31 mod n))
  in
  let params = P.make ~m ~n ~k:3 ~alpha:4.0 ~seed:13 () in
  let e0 = E.create params in
  let _ = Pipe.run_seq E.sink e0 (Src.of_array edges) in
  let e1 = E.create params in
  let _ = Pipe.run ~chunk:512 E.sink e1 (Src.of_array edges) in
  let total est =
    List.fold_left
      (fun acc (_, stats) ->
        acc + (try List.assoc "sampler_evals" stats with Not_found -> 0))
      0 (E.stats est)
  in
  let instances = List.length (E.stats e0) in
  checki "planned evals = per-edge evals (memo misses)" (total e0) (total e1);
  checkb "evals bounded by m per instance" true (total e1 <= m * instances);
  checkb "evals far below edge count" true
    (total e1 < Array.length edges * instances / 10)

(* --- 2. the memo is transparent --- *)

let test_memo_transparent () =
  let sampler =
    Sampler.Nested.create ~base_rate:0.25 ~levels:5 ~indep:4 ~seed:(Sm.create 41)
  in
  (* 8 slots against ids drawn from [0, 64): heavy collisions, constant
     overwrites — the worst case for a direct-mapped cache.  Emulate
     Large_common's keep_code and check every answer against the direct
     evaluation. *)
  let memo = Sampler.Memo.create ~slots:8 in
  checki "slots round to a power of two" 8 (Sampler.Memo.slots memo);
  checki "fixed words: 2*slots + 1" 17 (Sampler.Memo.words memo);
  let rng = Sm.create 97 in
  for _ = 1 to 10_000 do
    let id = Sm.below rng 64 in
    let c = Sampler.Memo.find memo id in
    let code =
      if c <> Sampler.Memo.absent then c
      else begin
        let c = Sampler.Nested.min_keep_level_code sampler id in
        Sampler.Memo.store memo id c;
        c
      end
    in
    checki
      (Printf.sprintf "memoized decision for id %d" id)
      (Sampler.Nested.min_keep_level_code sampler id)
      code
  done

let test_memo_words_in_breakdown () =
  let params = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:13 () in
  let est = E.create params in
  let edges = Array.init 256 (fun i -> Edge.make ~set:(i mod 32) ~elt:(i mod 64)) in
  let _ = Pipe.run E.sink est (Src.of_array edges) in
  let memo_words =
    List.fold_left
      (fun acc (key, w) -> if has_suffix ~suffix:"memo" key then acc + w else acc)
      0 (E.words_breakdown est)
  in
  checkb "memo words accounted under a *.memo key" true (memo_words > 0);
  (* and the breakdown still sums to the total *)
  checki "breakdown sums to words" (E.words est)
    (List.fold_left (fun acc (_, w) -> acc + w) 0 (E.words_breakdown est))

(* --- 3. trailing_zeros vs bit-by-bit reference --- *)

let tz_reference v =
  if Int64.equal v 0L then 64
  else begin
    let c = ref 0 in
    let x = ref v in
    while Int64.equal (Int64.logand !x 1L) 0L do
      incr c;
      x := Int64.shift_right_logical !x 1
    done;
    !c
  end

let test_trailing_zeros () =
  let tz = Mkc_sketch.L0_bjkst.trailing_zeros in
  checki "zero" 64 (tz 0L);
  checki "one" 0 (tz 1L);
  checki "min_int64 (only bit 63)" 63 (tz Int64.min_int);
  checki "all ones" 0 (tz (-1L));
  for i = 0 to 63 do
    checki
      (Printf.sprintf "power of two: bit %d" i)
      i
      (tz (Int64.shift_left 1L i))
  done;
  let rng = Sm.create 7 in
  for _ = 1 to 5000 do
    let v = Sm.next rng in
    checki (Printf.sprintf "random %Ld" v) (tz_reference v) (tz v)
  done;
  (* values dense in low trailing-zero counts: shifted randoms *)
  for shift = 0 to 63 do
    let v = Int64.shift_left (Sm.next rng) shift in
    checki (Printf.sprintf "shifted %Ld" v) (tz_reference v) (tz v)
  done

(* --- 4. trivial branch: deterministic sorted witness --- *)

let test_trivial_witness_deterministic () =
  (* kα = 16 ≥ m = 8 puts Estimate on the trivial branch. *)
  let params = P.make ~m:8 ~n:64 ~k:4 ~alpha:4.0 ~seed:5 () in
  let edges = Array.init 128 (fun i -> Edge.make ~set:(i mod 8) ~elt:(i mod 64)) in
  let run () =
    let est = E.create params in
    let r = Pipe.run E.sink est (Src.of_array edges) in
    match r.E.outcome with
    | None -> Alcotest.fail "trivial branch produced no outcome"
    | Some o -> o.Mkc_core.Solution.witness ()
  in
  let w1 = run () and w2 = run () in
  checkb "two identical runs, identical witness" true (w1 = w2);
  checkb "witness is sorted" true (List.sort compare w1 = w1);
  checkb "witness is nonempty, at most k" true
    (List.length w1 > 0 && List.length w1 <= 4);
  checkb "witness ids are distinct" true
    (List.length (List.sort_uniq compare w1) = List.length w1)

let suite =
  [
    Alcotest.test_case "planned path: sampler evals collapse" `Quick
      test_planned_fewer_sampler_evals;
    Alcotest.test_case "memo: transparent under collisions" `Quick test_memo_transparent;
    Alcotest.test_case "memo: words accounted in breakdown" `Quick
      test_memo_words_in_breakdown;
    Alcotest.test_case "l0_bjkst: branch-free trailing_zeros" `Quick test_trailing_zeros;
    Alcotest.test_case "trivial witness: deterministic and sorted" `Quick
      test_trivial_witness_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_planned_equals_per_edge ]
