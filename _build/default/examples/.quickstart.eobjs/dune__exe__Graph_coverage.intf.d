examples/graph_coverage.mli:
