type verdict = Declares_yes | Declares_no

type distinguisher = {
  feed : Mkc_stream.Edge.t -> unit;
  decide : unit -> verdict;
  space : unit -> int;
}

type outcome = { correct : bool; message_words : int }

let play (d : Disjointness.t) mk =
  let dist = mk () in
  let stream = Reduction.to_stream d in
  let bounds = Reduction.player_boundaries d in
  let max_message = ref 0 in
  Array.iteri
    (fun pos e ->
      (* A player boundary is a hand-off: measure the message. *)
      if pos > 0 && Array.exists (fun b -> b = pos) bounds then
        max_message := max !max_message (dist.space ());
      dist.feed e)
    stream;
  max_message := max !max_message (dist.space ());
  let verdict = dist.decide () in
  let correct =
    match (verdict, d.case) with
    | Declares_yes, Disjointness.Yes | Declares_no, Disjointness.No -> true
    | Declares_yes, Disjointness.No | Declares_no, Disjointness.Yes -> false
  in
  { correct; message_words = !max_message }

let coverage_distinguisher ~m ~alpha ?(profile = Mkc_core.Params.Practical) ~seed () =
  fun () ->
   let n = max 2 (int_of_float (ceil alpha)) in
   let params = Mkc_core.Params.make ~m ~n ~k:1 ~alpha ~profile ~seed () in
   let est = Mkc_core.Estimate.create params in
   {
     feed = (fun e -> Mkc_core.Estimate.feed est e);
     decide =
       (fun () ->
         let r = Mkc_core.Estimate.finalize est in
         if r.Mkc_core.Estimate.estimate > Float.max 2.5 (alpha /. 4.0) then Declares_no
         else Declares_yes);
     space = (fun () -> Mkc_core.Estimate.words est);
   }

let linf_distinguisher ?(phi_scale = 1.0) ~m ~alpha ~seed () =
  let phi =
    Float.min 1.0 (phi_scale *. alpha *. alpha /. (float_of_int m +. (alpha *. alpha)))
  in
  let hh =
    Mkc_sketch.F2_heavy_hitter.create ~phi ~seed:(Mkc_hashing.Splitmix.create seed) ()
  in
  {
    feed = (fun (e : Mkc_stream.Edge.t) -> Mkc_sketch.F2_heavy_hitter.add hh e.set 1);
    decide =
      (fun () ->
        let heavy =
          Mkc_sketch.F2_heavy_hitter.candidates hh
          |> List.exists (fun (h : Mkc_sketch.F2_heavy_hitter.hit) -> h.freq >= alpha /. 2.0)
        in
        if heavy then Declares_no else Declares_yes);
    space = (fun () -> Mkc_sketch.F2_heavy_hitter.words hh);
  }

let exact_distinguisher ~m ~r () =
  let counts = Array.make m 0 in
  let seen_full = ref false in
  {
    feed =
      (fun (e : Mkc_stream.Edge.t) ->
        counts.(e.set) <- counts.(e.set) + 1;
        if counts.(e.set) >= r then seen_full := true);
    decide = (fun () -> if !seen_full then Declares_no else Declares_yes);
    space = (fun () -> m + 1);
  }
