(* End-to-end tests for EstimateMaxCover (Figure 1 / Theorem 3.1) and the
   reporting algorithm (Theorem 3.2).  Instances are kept small so the
   whole file runs in seconds; the bench harness covers larger scales. *)

module Sm = Mkc_hashing.Splitmix
module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params
module Est = Mkc_core.Estimate
module Rep = Mkc_core.Report
module Sol = Mkc_core.Solution

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_estimate ?(profile = P.Practical) sys ~k ~alpha ~seed =
  let p =
    P.make ~m:(Ss.m sys) ~n:(Ss.n sys) ~k ~alpha ~profile ~seed ()
  in
  let est = Est.create p in
  Array.iter (Est.feed est) (Ss.edge_stream ~seed:(seed + 1) sys);
  Est.finalize est

let run_report sys ~k ~alpha ~seed =
  let p = P.make ~m:(Ss.m sys) ~n:(Ss.n sys) ~k ~alpha ~seed () in
  let rep = Rep.create p in
  Array.iter (Rep.feed rep) (Ss.edge_stream ~seed:(seed + 1) sys);
  Rep.finalize rep

(* The practical-profile empirical guarantee we hold the code to:
   estimate ∈ [OPT/(slack·α), 2·OPT].  The paper's Õ(α) hides polylogs;
   slack is our practical polylog stand-in (documented in EXPERIMENTS.md). *)
let slack = 8.0

let check_alpha_approx ~opt ~alpha est =
  let opt = float_of_int opt in
  checkb
    (Printf.sprintf "estimate %.0f within [OPT/%.0fα, 2·OPT] of OPT=%.0f" est (slack *. alpha) opt)
    true
    (est >= opt /. (slack *. alpha) && est <= 2.0 *. opt)

(* ---------- trivial branch ---------- *)

let test_trivial_branch () =
  (* kα >= m: returns n/α with a k-set witness *)
  let sys = Mkc_workload.Random_inst.uniform ~n:100 ~m:16 ~set_size:10 ~seed:1 in
  let r = run_estimate sys ~k:8 ~alpha:4.0 ~seed:2 in
  checkb "n/α returned" true (Float.abs (r.Est.estimate -. 25.0) < 1e-9);
  match r.Est.outcome with
  | Some o ->
      checkb "trivial provenance" true (o.Sol.provenance = Sol.Trivial);
      checki "k witness sets" 8 (List.length (o.Sol.witness ()))
  | None -> Alcotest.fail "trivial branch must produce an outcome"

(* ---------- planted regimes ---------- *)

let test_estimate_few_large () =
  let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:512 ~k:8 ~seed:3 in
  let r = run_estimate pl.system ~k:8 ~alpha:4.0 ~seed:4 in
  check_alpha_approx ~opt:pl.planted_coverage ~alpha:4.0 r.Est.estimate

let test_estimate_many_small () =
  let pl = Mkc_workload.Planted.many_small ~n:1024 ~m:512 ~k:64 ~seed:5 in
  let r = run_estimate pl.system ~k:64 ~alpha:8.0 ~seed:6 in
  check_alpha_approx ~opt:pl.planted_coverage ~alpha:8.0 r.Est.estimate

let test_estimate_common_heavy () =
  let pl = Mkc_workload.Planted.common_heavy ~n:1024 ~m:512 ~k:16 ~beta:4 ~seed:7 in
  (* certified lower bound; true OPT may be larger — compare against
     greedy as the OPT proxy *)
  let greedy = (Mkc_coverage.Greedy.run pl.system ~k:16).coverage in
  let opt = max pl.planted_coverage greedy in
  let r = run_estimate pl.system ~k:16 ~alpha:8.0 ~seed:8 in
  check_alpha_approx ~opt ~alpha:8.0 r.Est.estimate

let test_estimate_uniform_instance () =
  let sys = Mkc_workload.Random_inst.uniform ~n:512 ~m:512 ~set_size:12 ~seed:9 in
  let greedy = (Mkc_coverage.Greedy.run sys ~k:16).coverage in
  let r = run_estimate sys ~k:16 ~alpha:4.0 ~seed:10 in
  (* greedy ∈ [OPT·(1-1/e), OPT] so it's a fine OPT proxy *)
  check_alpha_approx ~opt:greedy ~alpha:4.0 r.Est.estimate

let test_estimate_graph_workload () =
  let g = Mkc_workload.Graph_gen.power_law ~vertices:512 ~edges:6000 ~skew:1.2 ~seed:11 in
  let greedy = (Mkc_coverage.Greedy.run g ~k:16).coverage in
  let stream = Mkc_workload.Graph_gen.in_arrival_stream g ~seed:12 in
  let p = P.make ~m:512 ~n:512 ~k:16 ~alpha:4.0 ~seed:13 () in
  let est = Est.create p in
  Mkc_stream.Stream_source.iter (Est.feed est) stream;
  let r = Est.finalize est in
  check_alpha_approx ~opt:greedy ~alpha:4.0 r.Est.estimate

(* ---------- order invariance ---------- *)

let test_estimate_order_invariant_quality () =
  (* different arrival orders must give comparable results (same seeds
     for the algorithm, different stream shuffles) *)
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed:14 in
  let p = P.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:15 () in
  let run stream_seed =
    let est = Est.create p in
    Array.iter (Est.feed est) (Ss.edge_stream ~seed:stream_seed pl.system);
    (Est.finalize est).Est.estimate
  in
  let e1 = run 100 and e2 = run 200 and e3 = run 300 in
  List.iter (fun e -> check_alpha_approx ~opt:pl.planted_coverage ~alpha:4.0 e) [ e1; e2; e3 ]

let test_estimate_set_arrival_order_also_works () =
  (* canonical (set-major) order is a legal edge-arrival order too *)
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed:16 in
  let p = P.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:17 () in
  let est = Est.create p in
  Array.iter (Est.feed est) (Ss.edges pl.system);
  check_alpha_approx ~opt:pl.planted_coverage ~alpha:4.0 (Est.finalize est).Est.estimate

(* ---------- guesses & structure ---------- *)

let test_guess_ladder_covers_n () =
  let p = P.make ~m:4096 ~n:3000 ~k:4 ~alpha:8.0 () in
  let est = Est.create p in
  let gs = Est.guesses est in
  checkb "top guess >= n" true (List.exists (fun z -> z >= 3000) gs);
  checkb "ladder increasing" true (List.sort compare gs = gs)

let test_estimate_empty_stream () =
  let p = P.make ~m:256 ~n:512 ~k:4 ~alpha:4.0 () in
  let est = Est.create p in
  let r = Est.finalize est in
  checkb "no coverage claimed on empty stream" true (r.Est.estimate <= 64.0)

(* ---------- space scaling (Theorem 3.1's headline) ---------- *)

let test_words_decrease_with_alpha () =
  let words alpha =
    let p = P.make ~m:8192 ~n:8192 ~k:64 ~alpha ~seed:18 () in
    Est.words (Est.create p)
  in
  let w2 = words 2.0 and w8 = words 8.0 and w32 = words 32.0 in
  checkb "α=2 > α=8 > α=32" true (w2 > w8 && w8 > w32);
  (* fitted decay should be clearly super-linear in α (target: ~α²) *)
  checkb "decay at least linear-and-a-half" true
    (float_of_int w2 /. float_of_int w32 > 16.0 /. 1.5)

let test_report_words_include_k () =
  let p = P.make ~m:512 ~n:512 ~k:64 ~alpha:8.0 ~seed:19 () in
  let rep = Rep.create p in
  checkb "report words >= estimate words" true (Rep.words rep >= 64)

(* ---------- reporting (Theorem 3.2) ---------- *)

let test_report_few_large () =
  let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:512 ~k:8 ~seed:20 in
  let r = run_report pl.system ~k:8 ~alpha:4.0 ~seed:21 in
  checkb "at most k sets" true (List.length r.Rep.sets <= 8);
  let cov = Ss.coverage pl.system r.Rep.sets in
  checkb
    (Printf.sprintf "witness coverage %d >= OPT/(%.0f·α)" cov (2.0 *. slack))
    true
    (float_of_int cov >= float_of_int pl.planted_coverage /. (2.0 *. slack *. 4.0))

let test_report_many_small () =
  let pl = Mkc_workload.Planted.many_small ~n:1024 ~m:512 ~k:64 ~seed:22 in
  let r = run_report pl.system ~k:64 ~alpha:8.0 ~seed:23 in
  checkb "at most k sets" true (List.length r.Rep.sets <= 64);
  let cov = Ss.coverage pl.system r.Rep.sets in
  checkb "witness covers Ω(OPT/α̃)" true
    (float_of_int cov >= float_of_int pl.planted_coverage /. (2.0 *. slack *. 8.0))

let test_report_sets_are_valid_ids () =
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:128 ~k:4 ~seed:24 in
  let r = run_report pl.system ~k:4 ~alpha:4.0 ~seed:25 in
  List.iter (fun id -> checkb "valid id" true (id >= 0 && id < 128)) r.Rep.sets

let test_report_provenance_present () =
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:128 ~k:4 ~seed:26 in
  let r = run_report pl.system ~k:4 ~alpha:4.0 ~seed:27 in
  checkb "provenance recorded" true (r.Rep.provenance <> None)

let test_estimate_order_matrix () =
  (* a matrix of adversarial arrival orders: canonical set-major,
     element-major (footnote 2), reversed, and random — the guarantee is
     order-oblivious *)
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed:40 in
  let p = P.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:41 () in
  let canonical = Ss.edges pl.system in
  let element_major =
    let a = Array.copy canonical in
    Array.sort (fun (x : Mkc_stream.Edge.t) (y : Mkc_stream.Edge.t) ->
        compare (x.elt, x.set) (y.elt, y.set)) a;
    a
  in
  let reversed =
    let a = Array.copy canonical in
    let len = Array.length a in
    Array.init len (fun i -> a.(len - 1 - i))
  in
  let random = Ss.edge_stream ~seed:42 pl.system in
  List.iter
    (fun stream ->
      let est = Est.create p in
      Array.iter (Est.feed est) stream;
      check_alpha_approx ~opt:pl.planted_coverage ~alpha:4.0 (Est.finalize est).Est.estimate)
    [ canonical; element_major; reversed; random ]

(* ---------- edge cases ---------- *)

let test_estimate_duplicate_edges () =
  (* each pair repeated 3x in the stream: single-pass algorithms must be
     duplicate-tolerant (coverage counts distinct elements) *)
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed:30 in
  let base = Ss.edge_stream ~seed:31 pl.system in
  let tripled = Array.concat [ base; base; base ] in
  let p = P.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:32 () in
  let est = Est.create p in
  Array.iter (Est.feed est) tripled;
  check_alpha_approx ~opt:pl.planted_coverage ~alpha:4.0 (Est.finalize est).Est.estimate

let test_estimate_k_equals_m () =
  (* k = m triggers the trivial branch (kα ≥ m) *)
  let sys = Mkc_workload.Random_inst.uniform ~n:64 ~m:16 ~set_size:8 ~seed:33 in
  let r = run_estimate sys ~k:16 ~alpha:2.0 ~seed:34 in
  checkb "trivial estimate n/α" true (Float.abs (r.Est.estimate -. 32.0) < 1e-9)

let test_estimate_alpha_near_sqrt_m () =
  (* the upper end of the valid α range: α = Θ(√m) *)
  let pl = Mkc_workload.Planted.few_large ~n:2048 ~m:1024 ~k:8 ~seed:35 in
  let alpha = 32.0 (* = √1024 *) in
  let r = run_estimate pl.system ~k:8 ~alpha ~seed:36 in
  checkb "still sandwiched at α=√m" true
    (r.Est.estimate <= 2.0 *. float_of_int pl.planted_coverage
    && r.Est.estimate >= float_of_int pl.planted_coverage /. (slack *. alpha *. 4.0))

let test_estimate_singleton_universe () =
  let p = P.make ~m:8 ~n:1 ~k:1 ~alpha:1.0 ~seed:37 () in
  ignore (Est.finalize (Est.create p))

(* ---------- full-range front-end ---------- *)

module Fr = Mkc_core.Full_range

let test_full_range_constant_engine () =
  let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:256 ~k:8 ~seed:50 in
  let p = P.make ~m:256 ~n:1024 ~k:8 ~alpha:2.0 ~seed:51 () in
  let fr = Fr.create p in
  checkb "constant-factor engine below switch" true (Fr.engine fr = Fr.Constant_factor);
  Array.iter (Fr.feed fr) (Ss.edge_stream ~seed:52 pl.system);
  let r = Fr.finalize fr in
  let cov = Ss.coverage pl.system r.Fr.sets in
  checkb "O(1)-approx quality" true (4 * cov >= pl.planted_coverage)

let test_full_range_sketching_engine () =
  let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:512 ~k:8 ~seed:53 in
  let p = P.make ~m:512 ~n:1024 ~k:8 ~alpha:8.0 ~seed:54 () in
  let fr = Fr.create p in
  checkb "sketching engine above switch" true (Fr.engine fr = Fr.Sketching);
  Array.iter (Fr.feed fr) (Ss.edge_stream ~seed:55 pl.system);
  let r = Fr.finalize fr in
  checkb "α-approx estimate" true
    (r.Fr.estimate >= float_of_int pl.planted_coverage /. (slack *. 8.0)
    && r.Fr.estimate <= 2.0 *. float_of_int pl.planted_coverage)

let test_full_range_rejects_below_feige () =
  let p = P.make ~m:16 ~n:32 ~k:2 ~alpha:1.5 ~seed:56 () in
  Alcotest.check_raises "α below 1/(1-1/e) rejected"
    (Invalid_argument "Full_range.create: alpha must exceed 1/(1 - 1/e) (Feige's threshold)")
    (fun () -> ignore (Fr.create p))

let test_full_range_space_crossover () =
  (* space at α just above the switch should be below the O(1)-engine's
     on the same instance — the reason the corollary is interesting *)
  let pl = Mkc_workload.Planted.few_large ~n:2048 ~m:2048 ~k:16 ~seed:57 in
  let words alpha =
    let p = P.make ~m:2048 ~n:2048 ~k:16 ~alpha ~seed:58 () in
    let fr = Fr.create p in
    Array.iter (Fr.feed fr) (Ss.edge_stream ~seed:59 pl.system);
    Fr.words fr
  in
  checkb "sketching at α=16 beats O(1) engine at α=2 on space" true
    (words 16.0 < words 2.0 * 64)

(* ---------- statistical success probability (Theorem 3.1's 3/4) ---------- *)

let test_success_probability () =
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed:60 in
  let trials = 12 and successes = ref 0 in
  for t = 1 to trials do
    let r = run_estimate pl.system ~k:8 ~alpha:4.0 ~seed:(100 * t) in
    let opt = float_of_int pl.planted_coverage in
    if r.Est.estimate >= opt /. (slack *. 4.0) && r.Est.estimate <= 2.0 *. opt then
      incr successes
  done;
  checkb
    (Printf.sprintf "success rate %d/%d >= 3/4" !successes trials)
    true
    (!successes * 4 >= trials * 3)

(* ---------- seed stability ---------- *)

let test_estimate_deterministic_given_seed () =
  let pl = Mkc_workload.Planted.few_large ~n:512 ~m:256 ~k:8 ~seed:28 in
  let run () = run_estimate pl.system ~k:8 ~alpha:4.0 ~seed:29 in
  let a = run () and b = run () in
  checkb "same seed, same estimate" true (a.Est.estimate = b.Est.estimate)

let suite =
  [
    Alcotest.test_case "trivial branch (kα ≥ m)" `Quick test_trivial_branch;
    Alcotest.test_case "estimate: few large" `Slow test_estimate_few_large;
    Alcotest.test_case "estimate: many small" `Slow test_estimate_many_small;
    Alcotest.test_case "estimate: common heavy" `Slow test_estimate_common_heavy;
    Alcotest.test_case "estimate: uniform" `Slow test_estimate_uniform_instance;
    Alcotest.test_case "estimate: graph in-arrival" `Slow test_estimate_graph_workload;
    Alcotest.test_case "order invariance" `Slow test_estimate_order_invariant_quality;
    Alcotest.test_case "set-arrival order works too" `Slow test_estimate_set_arrival_order_also_works;
    Alcotest.test_case "guess ladder covers n" `Quick test_guess_ladder_covers_n;
    Alcotest.test_case "empty stream" `Quick test_estimate_empty_stream;
    Alcotest.test_case "words decrease with α" `Quick test_words_decrease_with_alpha;
    Alcotest.test_case "report words include k" `Quick test_report_words_include_k;
    Alcotest.test_case "report: few large" `Slow test_report_few_large;
    Alcotest.test_case "report: many small" `Slow test_report_many_small;
    Alcotest.test_case "report: valid ids" `Slow test_report_sets_are_valid_ids;
    Alcotest.test_case "report: provenance" `Slow test_report_provenance_present;
    Alcotest.test_case "arrival-order matrix" `Slow test_estimate_order_matrix;
    Alcotest.test_case "duplicate edges tolerated" `Slow test_estimate_duplicate_edges;
    Alcotest.test_case "k = m trivial branch" `Quick test_estimate_k_equals_m;
    Alcotest.test_case "α near √m" `Slow test_estimate_alpha_near_sqrt_m;
    Alcotest.test_case "singleton universe" `Quick test_estimate_singleton_universe;
    Alcotest.test_case "full-range: constant engine" `Quick test_full_range_constant_engine;
    Alcotest.test_case "full-range: sketching engine" `Slow test_full_range_sketching_engine;
    Alcotest.test_case "full-range: Feige threshold" `Quick test_full_range_rejects_below_feige;
    Alcotest.test_case "full-range: space crossover" `Slow test_full_range_space_crossover;
    Alcotest.test_case "success probability ≥ 3/4" `Slow test_success_probability;
    Alcotest.test_case "estimate deterministic" `Slow test_estimate_deterministic_given_seed;
  ]
