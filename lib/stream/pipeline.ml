let default_chunk = 65536

(* Pipeline-level instruments (global registry).  All writes are gated
   on [Registry.enabled], so the disabled path costs one load+branch per
   chunk.  [sink_feed_edges] counts edge×sink feed work, which is the
   quantity preserved between the sequential and domain-parallel
   drivers (every driver makes exactly one chunking pass over the
   stream; the parallel one merely widens its chunks and fans the sinks
   out per chunk). *)
module Obs = struct
  let r = Mkc_obs.Registry.global
  let chunks = Mkc_obs.Registry.counter r "pipeline.chunks"
  let edges = Mkc_obs.Registry.counter r "pipeline.edges"
  let sink_feed_edges = Mkc_obs.Registry.counter r "pipeline.sink_feed_edges"
  let domain_busy_ns = Mkc_obs.Registry.gauge ~mode:`Sum r "pipeline.domain_busy_ns"
  let domains_used = Mkc_obs.Registry.gauge ~mode:`Max r "pipeline.domains"

  (* Pool-executor instruments ([rebalances] accumulates; the overlap
     gauge is set by the coordinator per window).  All on the global
     registry, so they surface in snapshots, durable telemetry and [mkc
     top] without extra plumbing. *)
  let pool_plan_overlap_ns =
    Mkc_obs.Registry.gauge ~mode:`Sum r "pipeline.pool.plan_overlap_ns"

  let pool_rebalances = Mkc_obs.Registry.counter r "pipeline.pool.rebalances"

  (* Distribution tracks: per-chunk feed latency, per-window plan-build
     latency, and per-ticket queue wait each land in a log-linear
     histogram.  These replace the old scalar-sum gauges of the same
     names — a histogram's [sum] is the scalar the telemetry probes
     keep reading, and its buckets feed the run ledger's digests. *)
  let chunk_feed_ns = Mkc_obs.Registry.histogram r "pipeline.chunk_feed_ns"
  let pool_plan_build_ns = Mkc_obs.Registry.histogram r "pipeline.pool.plan_build_ns"
  let pool_queue_wait_ns = Mkc_obs.Registry.histogram r "pipeline.pool.queue_wait_ns"
end

let run_seq (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  Stream_source.iter (M.feed sink) src;
  M.finalize sink

let chunk_instrumented ~nsinks ~len ~cum f =
  let reg = Mkc_obs.Registry.enabled () and tr = Mkc_obs.Trace.enabled () in
  if reg || tr then begin
    let t0 = Mkc_obs.Clock.now_ns () in
    f ();
    let t1 = Mkc_obs.Clock.now_ns () in
    let dur = t1 - t0 in
    Mkc_obs.Span.record "pipeline.chunk" ~start_ns:t0 ~dur_ns:dur;
    if reg then begin
      Mkc_obs.Registry.incr Obs.chunks;
      Mkc_obs.Registry.add Obs.edges len;
      Mkc_obs.Registry.add Obs.sink_feed_edges (len * nsinks);
      Mkc_obs.Registry.record Obs.chunk_feed_ns dur
    end;
    if tr then begin
      (* Counter tracks for the timeline: cumulative edges ingested
         (per driver call, via [cum]) and this chunk's throughput. *)
      cum := !cum + len;
      Mkc_obs.Trace.counter "pipeline.edges" ~at_ns:t1 !cum;
      if dur > 0 then
        Mkc_obs.Trace.counter "pipeline.edges_per_sec" ~at_ns:t1
          (int_of_float (float_of_int len *. 1e9 /. float_of_int dur))
    end
  end
  else f ()

let run ?(chunk = default_chunk) (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  let plan = Chunk_plan.create () in
  let cum = ref 0 in
  Stream_source.chunks ~chunk
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks:1 ~len ~cum (fun () ->
          Chunk_plan.build plan edges ~pos ~len;
          M.feed_planned sink plan edges ~pos ~len))
    src;
  M.finalize sink

(* One plan per chunk, shared by every sink: the grouping pass is paid
   once per chunk, and each sink fans its per-distinct-id hash decisions
   out from the same tables. *)
let feed_all ?(chunk = default_chunk) ?(start = 0) sinks src =
  let nsinks = Array.length sinks in
  let plan = Chunk_plan.create () in
  let cum = ref 0 in
  Stream_source.chunks ~chunk ~start
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks ~len ~cum (fun () ->
          Chunk_plan.build plan edges ~pos ~len;
          Array.iter (fun s -> Sink.Any.feed_planned s plan edges ~pos ~len) sinks))
    src

(* {1 Persistent worker-domain pool}

   The parallel executor.  Domains are spawned ONCE per pool (not per
   chunk window, as the pre-pool driver did) and fed through per-worker
   single-slot mailboxes: the coordinator publishes a window ticket
   under the worker's mutex, the worker replays its assigned sinks
   against the shared read-only plan, and flips the mailbox back to
   [Idle].  All cross-domain publication — the plan contents, the edge
   slice bounds, the per-shard timings flowing back — rides the mailbox
   mutex acquire/release pairs, which is the entirety of the memory-
   model argument: a worker never reads a plan except through a
   [dispatch] that happened-after the coordinator built it, and the
   coordinator never reads [shard_ns]/worker stats except through an
   [await] that happened-after the worker wrote them. *)

type schedule = Static | Adaptive

module Pool = struct
  type ticket = {
    sinks : Sink.any array;
    assign : int array;  (* sink indices this worker owns for the window *)
    plan : Chunk_plan.t;
    edges : Edge.t array;
    tpos : int;
    tlen : int;
    shard_ns : int array;  (* per-sink ns this window; disjoint writes *)
    dispatch_ns : int;
  }

  type msg = Idle | Work of ticket | Quit

  type worker = {
    mu : Mutex.t;
    cv : Condition.t;  (* coordinator -> worker: mailbox refilled *)
    done_cv : Condition.t;  (* worker -> coordinator: back to Idle *)
    mutable msg : msg;
    (* Cumulative over the pool's lifetime (satellite of the adaptive
       scheduler: signals must not reset per window).  Written by the
       worker domain, read by the coordinator only after an [await]. *)
    mutable busy_ns : int;
    mutable wait_ns : int;  (* dispatch -> pick-up queue latency *)
    mutable windows_run : int;
  }

  type t = {
    slots : int;  (* worker count + 1 coordinator slot *)
    workers : worker array;  (* length slots - 1 *)
    handles : unit Domain.t array;
    mutable shut : bool;
    (* Coordinator-owned drive statistics, accumulated across drives. *)
    mutable windows : int;
    mutable plan_build_ns : int;
    mutable plan_overlap_ns : int;
    mutable window_wall_ns : int;
    mutable coord_busy_ns : int;
    mutable rebalances : int;
  }

  type stats = {
    domains : int;
    windows : int;
    plan_build_ns : int;
    plan_overlap_ns : int;
    window_wall_ns : int;
    coord_busy_ns : int;
    worker_busy_ns : int array;
    worker_wait_ns : int array;
    rebalances : int;
  }

  let feed_assigned (k : ticket) =
    let nassign = Array.length k.assign in
    for j = 0 to nassign - 1 do
      let i = Array.unsafe_get k.assign j in
      let s0 = Mkc_obs.Clock.now_ns () in
      Sink.Any.feed_planned k.sinks.(i) k.plan k.edges ~pos:k.tpos ~len:k.tlen;
      k.shard_ns.(i) <- Mkc_obs.Clock.now_ns () - s0
    done

  let worker_loop (w : worker) =
    let rec next () =
      Mutex.lock w.mu;
      let rec recv () =
        match w.msg with
        | Idle ->
            Condition.wait w.cv w.mu;
            recv ()
        | Work k -> Some k
        | Quit -> None
      in
      let job = recv () in
      Mutex.unlock w.mu;
      match job with
      | None -> ()
      | Some k ->
          let t0 = Mkc_obs.Clock.now_ns () in
          let wait = max 0 (t0 - k.dispatch_ns) in
          w.wait_ns <- w.wait_ns + wait;
          Mkc_obs.Registry.record Obs.pool_queue_wait_ns wait;
          feed_assigned k;
          let t1 = Mkc_obs.Clock.now_ns () in
          Mkc_obs.Span.record "pipeline.domain" ~start_ns:t0 ~dur_ns:(t1 - t0);
          w.busy_ns <- w.busy_ns + (t1 - t0);
          w.windows_run <- w.windows_run + 1;
          Mutex.lock w.mu;
          w.msg <- Idle;
          Condition.signal w.done_cv;
          Mutex.unlock w.mu;
          next ()
    in
    next ()

  let create ?domains () =
    let slots =
      match domains with
      | Some d -> max 1 d
      | None -> max 1 (Domain.recommended_domain_count ())
    in
    let workers =
      Array.init (slots - 1) (fun _ ->
          {
            mu = Mutex.create ();
            cv = Condition.create ();
            done_cv = Condition.create ();
            msg = Idle;
            busy_ns = 0;
            wait_ns = 0;
            windows_run = 0;
          })
    in
    let handles = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
    {
      slots;
      workers;
      handles;
      shut = false;
      windows = 0;
      plan_build_ns = 0;
      plan_overlap_ns = 0;
      window_wall_ns = 0;
      coord_busy_ns = 0;
      rebalances = 0;
    }

  let size t = t.slots

  let dispatch (w : worker) k =
    Mutex.lock w.mu;
    w.msg <- Work k;
    Condition.signal w.cv;
    Mutex.unlock w.mu

  let await (w : worker) =
    Mutex.lock w.mu;
    let rec wait () =
      match w.msg with
      | Idle | Quit -> ()
      | Work _ ->
          Condition.wait w.done_cv w.mu;
          wait ()
    in
    wait ();
    Mutex.unlock w.mu

  let shutdown t =
    if not t.shut then begin
      t.shut <- true;
      Array.iter await t.workers;
      Array.iter
        (fun w ->
          Mutex.lock w.mu;
          w.msg <- Quit;
          Condition.signal w.cv;
          Mutex.unlock w.mu)
        t.workers;
      Array.iter Domain.join t.handles
    end

  let with_pool ?domains f =
    let t = create ?domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  (* Call at quiescence (between drives / after a drive): worker fields
     were published by the final [await] of the last window. *)
  let stats t =
    {
      domains = t.slots;
      windows = t.windows;
      plan_build_ns = t.plan_build_ns;
      plan_overlap_ns = t.plan_overlap_ns;
      window_wall_ns = t.window_wall_ns;
      coord_busy_ns = t.coord_busy_ns;
      worker_busy_ns = Array.map (fun w -> w.busy_ns) t.workers;
      worker_wait_ns = Array.map (fun w -> w.wait_ns) t.workers;
      rebalances = t.rebalances;
    }
end

(* Longest-processing-time bin packing: shards sorted by descending
   cost, each placed on the least-loaded slot.  Slot 0 (the
   coordinator) starts pre-loaded with [coord_bias] — the plan-build
   work it will do while the workers feed — so the packing naturally
   gives the coordinator a lighter sink group.  Ties break on index, so
   the assignment is a pure function of (slots, bias, costs). *)
let lpt ~slots ~coord_bias costs =
  let nc = Array.length costs in
  let order = Array.init nc Fun.id in
  Array.sort
    (fun a b ->
      let c = compare costs.(b) costs.(a) in
      if c <> 0 then c else compare a b)
    order;
  let load = Array.make slots 0.0 in
  load.(0) <- coord_bias;
  let buckets = Array.make slots [] in
  Array.iter
    (fun i ->
      let best = ref 0 in
      for s = 1 to slots - 1 do
        if load.(s) < load.(!best) then best := s
      done;
      load.(!best) <- load.(!best) +. costs.(i);
      buckets.(!best) <- i :: buckets.(!best))
    order;
  (* Feed order within a slot is ascending sink index — immaterial for
     results (sinks are independent) but keeps replay order stable. *)
  Array.map (fun b -> Array.of_list (List.sort compare b)) buckets

(* Fraction of the per-window work that is plan building, from
   PROFILE_hotpath.json (~180 of ~9700 ns/edge on the planted shape):
   the static coordinator bias before any measurement exists. *)
let static_plan_fraction = 0.02

(* The pipelined window loop.  Per window W the coordinator:
   dispatches W's tickets to the workers, builds window W+1's plan into
   the other half of a double-buffered scratch pair (overlapping the
   workers' replay — the tentpole pipelining), feeds its own sink
   group, then awaits the workers.  Windows are barriered, so every
   sink sees the full stream in order no matter which domain runs it —
   the bit-for-bit-vs-[run_seq] invariant.  [on_window] (checkpoint
   hook) runs between windows, while every worker is quiescent. *)
let pool_drive ?pool ?slots_cap ?(schedule = Static) ?costs
    ?(chunk = default_chunk) ?(start = 0) ?on_window sinks src =
  let nsinks = Array.length sinks in
  let slots =
    match pool with
    | None -> 1
    | Some p ->
        let cap = match slots_cap with Some c -> c | None -> Pool.size p in
        max 1 (min (min (Pool.size p) cap) nsinks)
  in
  let dchunk = chunk * slots in
  let wins = Stream_source.windows ~chunk:dchunk ~start src in
  let nwin = Array.length wins in
  if nwin > 0 then begin
    let n = Stream_source.length src in
    let edges = Stream_source.backing src in
    let sized = min dchunk (n - start) in
    let plans =
      [|
        Chunk_plan.create_sized ~chunk:sized;
        (if nwin > 1 then Chunk_plan.create_sized ~chunk:sized
         else Chunk_plan.create ());
      |]
    in
    let est =
      match costs with
      | None -> Array.make nsinks 1.0
      | Some c ->
          if Array.length c <> nsinks then
            invalid_arg "Pipeline: costs length must equal the sink count";
          Array.map (fun x -> Float.max x 1e-9) c
    in
    let total = Array.fold_left ( +. ) 0.0 est in
    let coord_bias = ref (static_plan_fraction *. total) in
    let assign = ref (lpt ~slots ~coord_bias:!coord_bias est) in
    let shard_ns = Array.make nsinks 0 in
    let measured = ref false in
    let plan_build_ns = ref 0 in
    let plan_overlap_ns = ref 0 in
    let plan_last_ns = ref 0.0 in
    let coord_busy_ns = ref 0 in
    let rebalances = ref 0 in
    let busy0, wait0 =
      match pool with
      | None -> ([||], [||])
      | Some p ->
          ( Array.map (fun (w : Pool.worker) -> w.Pool.busy_ns) p.Pool.workers,
            Array.map (fun (w : Pool.worker) -> w.Pool.wait_ns) p.Pool.workers )
    in
    let cum = ref 0 in
    let parity = ref 0 in
    (* Window 0's plan is the only one built on the critical path; every
       later build overlaps the previous window's replay. *)
    let p0, l0 = wins.(0) in
    let tb = Mkc_obs.Clock.now_ns () in
    Chunk_plan.build plans.(0) edges ~pos:p0 ~len:l0;
    plan_build_ns := Mkc_obs.Clock.now_ns () - tb;
    Mkc_obs.Registry.record Obs.pool_plan_build_ns !plan_build_ns;
    let loop_t0 = Mkc_obs.Clock.now_ns () in
    for w = 0 to nwin - 1 do
      let pos, len = wins.(w) in
      let plan = plans.(!parity) in
      chunk_instrumented ~nsinks ~len ~cum (fun () ->
          (match pool with
          | Some p when slots > 1 ->
              let dns = Mkc_obs.Clock.now_ns () in
              for s = 1 to slots - 1 do
                Pool.dispatch
                  p.Pool.workers.(s - 1)
                  {
                    Pool.sinks;
                    assign = (!assign).(s);
                    plan;
                    edges;
                    tpos = pos;
                    tlen = len;
                    shard_ns;
                    dispatch_ns = dns;
                  }
              done
          | _ -> ());
          if w + 1 < nwin then begin
            let pos', len' = wins.(w + 1) in
            let t0 = Mkc_obs.Clock.now_ns () in
            Chunk_plan.build plans.(1 - !parity) edges ~pos:pos' ~len:len';
            let d = Mkc_obs.Clock.now_ns () - t0 in
            plan_build_ns := !plan_build_ns + d;
            Mkc_obs.Registry.record Obs.pool_plan_build_ns d;
            if slots > 1 then plan_overlap_ns := !plan_overlap_ns + d;
            plan_last_ns := float_of_int d
          end;
          let t0 = Mkc_obs.Clock.now_ns () in
          Pool.feed_assigned
            {
              Pool.sinks;
              assign = (!assign).(0);
              plan;
              edges;
              tpos = pos;
              tlen = len;
              shard_ns;
              dispatch_ns = t0;
            };
          let d = Mkc_obs.Clock.now_ns () - t0 in
          Mkc_obs.Span.record "pipeline.domain" ~start_ns:t0 ~dur_ns:d;
          coord_busy_ns := !coord_busy_ns + d;
          match pool with
          | Some p when slots > 1 ->
              for s = 1 to slots - 1 do
                Pool.await p.Pool.workers.(s - 1)
              done
          | _ -> ());
      (match on_window with
      | Some f -> f ~next:(pos + len) ~window:w
      | None -> ());
      (if schedule = Adaptive && slots > 1 then begin
         (* Refine per-shard cost estimates from the measured window.
            The first measurement replaces the static seed wholesale
            (unit scales differ); later ones are smoothed so one noisy
            window cannot thrash the packing. *)
         (if not !measured then begin
            for i = 0 to nsinks - 1 do
              est.(i) <- Float.max (float_of_int shard_ns.(i)) 1.0
            done;
            coord_bias := Float.max !plan_last_ns 1.0;
            measured := true
          end
          else begin
            for i = 0 to nsinks - 1 do
              est.(i) <- (0.5 *. est.(i)) +. (0.5 *. float_of_int shard_ns.(i))
            done;
            coord_bias := (0.5 *. !coord_bias) +. (0.5 *. !plan_last_ns)
          end);
         let assign' = lpt ~slots ~coord_bias:!coord_bias est in
         if assign' <> !assign then begin
           incr rebalances;
           assign := assign';
           if Mkc_obs.Registry.enabled () then
             Mkc_obs.Registry.incr Obs.pool_rebalances
         end
       end);
      (* Publish the cumulative pool signals once per window — between
         windows the workers are quiescent (the [await] above is the
         happens-before edge), so the sums are exact, and telemetry
         samples firing mid-run read live values instead of zeros. *)
      (if Mkc_obs.Registry.enabled () then begin
         let worker_busy = ref 0 and worker_wait = ref 0 in
         (match pool with
         | None -> ()
         | Some p ->
             Array.iteri
               (fun i (wk : Pool.worker) ->
                 worker_busy := !worker_busy + (wk.Pool.busy_ns - busy0.(i));
                 worker_wait := !worker_wait + (wk.Pool.wait_ns - wait0.(i)))
               p.Pool.workers);
         Mkc_obs.Registry.set Obs.domain_busy_ns
           (float_of_int (!coord_busy_ns + !worker_busy));
         Mkc_obs.Registry.set Obs.domains_used (float_of_int slots);
         Mkc_obs.Registry.set Obs.pool_plan_overlap_ns
           (float_of_int !plan_overlap_ns);
         if Mkc_obs.Trace.enabled () then
           Mkc_obs.Trace.counter "pipeline.pool.queue_wait_ns"
             ~at_ns:(Mkc_obs.Clock.now_ns ()) !worker_wait
       end);
      parity := 1 - !parity
    done;
    let window_wall_ns = Mkc_obs.Clock.now_ns () - loop_t0 in
    match pool with
    | None -> ()
    | Some p ->
        p.Pool.windows <- p.Pool.windows + nwin;
        p.Pool.plan_build_ns <- p.Pool.plan_build_ns + !plan_build_ns;
        p.Pool.plan_overlap_ns <- p.Pool.plan_overlap_ns + !plan_overlap_ns;
        p.Pool.window_wall_ns <- p.Pool.window_wall_ns + window_wall_ns;
        p.Pool.coord_busy_ns <- p.Pool.coord_busy_ns + !coord_busy_ns;
        p.Pool.rebalances <- p.Pool.rebalances + !rebalances
  end

let feed_all_parallel ?pool ?domains ?schedule ?costs ?(chunk = default_chunk)
    ?(start = 0) sinks src =
  match pool with
  | Some p ->
      (* [domains] given with an explicit pool is a cap, not a resize:
         excess workers simply see no tickets for this drive. *)
      let slots =
        match domains with
        | Some d -> min d (Pool.size p)
        | None -> Pool.size p
      in
      if min slots (Array.length sinks) <= 1 then feed_all ~chunk ~start sinks src
      else pool_drive ~pool:p ?slots_cap:domains ?schedule ?costs ~chunk ~start sinks src
  | None ->
      let d =
        match domains with
        | Some d -> d
        | None -> Domain.recommended_domain_count ()
      in
      let d = min d (Array.length sinks) in
      if d <= 1 then feed_all ~chunk ~start sinks src
      else
        Pool.with_pool ~domains:d (fun p ->
            pool_drive ~pool:p ?schedule ?costs ~chunk ~start sinks src)

let run_parallel ?pool ?domains ?schedule ?costs ?chunk ?start ~shards ~finalize
    src =
  feed_all_parallel ?pool ?domains ?schedule ?costs ?chunk ?start shards src;
  finalize ()

(* {1 Crash-resume and shard-merge drivers} *)

let default_checkpoint_every = 8

let run_resumable (type s r) ?(chunk = default_chunk)
    ?(every = default_checkpoint_every) ?resume ?checkpoint ?on_save
    (codec : s Checkpoint.codec) ((module M) : (s, r) Sink.sink) (sink : s) src :
    (r, Checkpoint.error) result =
  if every < 1 then invalid_arg "Pipeline.run_resumable: every must be >= 1";
  let ( let* ) = Result.bind in
  let* start =
    match resume with
    | None -> Ok 0
    | Some path ->
        let* env =
          Checkpoint.load ~expect_kind:codec.kind ~expect_seed:codec.seed ~path ()
        in
        let* () =
          match codec.restore sink env.Checkpoint.payload with
          | Ok () -> Ok ()
          | Error msg -> Error (Checkpoint.Payload_rejected msg)
        in
        Ok env.Checkpoint.pos
  in
  let n = Stream_source.length src in
  let* () =
    if start > n then
      Error
        (Checkpoint.Malformed
           (Printf.sprintf "resume position %d beyond stream length %d" start n))
    else Ok ()
  in
  let save_at pos =
    match checkpoint with
    | None -> Ok ()
    | Some path ->
        let env =
          { Checkpoint.kind = codec.kind; pos; seed = codec.seed;
            payload = codec.encode sink }
        in
        let* bytes = Checkpoint.save ~path env in
        (match on_save with
        | Some f -> f ~pos ~bytes ~words:(Checkpoint.words_of_bytes bytes)
        | None -> ());
        Ok ()
  in
  let plan = Chunk_plan.create () in
  let cum = ref 0 in
  let chunks_done = ref 0 in
  let failure = ref None in
  (* Checkpoints land on chunk boundaries only: resuming then re-chunks
     the suffix on the same grid, so a resumed run's chunk schedule —
     and with it every schedule-dependent counter — matches the
     uninterrupted run's exactly. *)
  Stream_source.chunks ~chunk ~start
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks:1 ~len ~cum (fun () ->
          Chunk_plan.build plan edges ~pos ~len;
          M.feed_planned sink plan edges ~pos ~len);
      incr chunks_done;
      let next = pos + len in
      if !failure = None && next < n && !chunks_done mod every = 0 then
        match save_at next with Ok () -> () | Error e -> failure := Some e)
    src;
  let* () = match !failure with None -> Ok () | Some e -> Error e in
  (* A final checkpoint at end-of-stream: the shard-merge workflow
     merges exactly these. *)
  let* () = save_at n in
  Ok (M.finalize sink)

(* Checkpoint/resume over the pool executor.  Saves land on WINDOW
   boundaries ([chunk × slots] edges) — the points where every worker
   is quiescent, so [codec.encode state] reads fully-published sink
   state.  Shards are (re)derived from the typed state AFTER a restore,
   mirroring the CLI's resume flow; a resumed run re-windows the suffix
   on the same grid (same [chunk], same effective domain count), so
   results, [words] and every work counter match the uninterrupted
   run's bit for bit. *)
let run_parallel_resumable (type s r) ?pool ?domains ?schedule ?costs
    ?(chunk = default_chunk) ?(every = default_checkpoint_every) ?resume
    ?checkpoint ?on_save (codec : s Checkpoint.codec) (state : s)
    ~(shards : s -> Sink.any array) ~(finalize : s -> r) src :
    (r, Checkpoint.error) result =
  if every < 1 then
    invalid_arg "Pipeline.run_parallel_resumable: every must be >= 1";
  let ( let* ) = Result.bind in
  let* start =
    match resume with
    | None -> Ok 0
    | Some path ->
        let* env =
          Checkpoint.load ~expect_kind:codec.kind ~expect_seed:codec.seed ~path ()
        in
        let* () =
          match codec.restore state env.Checkpoint.payload with
          | Ok () -> Ok ()
          | Error msg -> Error (Checkpoint.Payload_rejected msg)
        in
        Ok env.Checkpoint.pos
  in
  let n = Stream_source.length src in
  let* () =
    if start > n then
      Error
        (Checkpoint.Malformed
           (Printf.sprintf "resume position %d beyond stream length %d" start n))
    else Ok ()
  in
  let save_at pos =
    match checkpoint with
    | None -> Ok ()
    | Some path ->
        let env =
          { Checkpoint.kind = codec.kind; pos; seed = codec.seed;
            payload = codec.encode state }
        in
        let* bytes = Checkpoint.save ~path env in
        (match on_save with
        | Some f -> f ~pos ~bytes ~words:(Checkpoint.words_of_bytes bytes)
        | None -> ());
        Ok ()
  in
  let sinks = shards state in
  let failure = ref None in
  let on_window ~next ~window =
    if !failure = None && next < n && (window + 1) mod every = 0 then
      match save_at next with Ok () -> () | Error e -> failure := Some e
  in
  (match pool with
  | Some p ->
      pool_drive ~pool:p ?slots_cap:domains ?schedule ?costs ~chunk ~start
        ~on_window sinks src
  | None ->
      let d =
        match domains with
        | Some d -> d
        | None -> Domain.recommended_domain_count ()
      in
      let d = min d (Array.length sinks) in
      if d <= 1 then pool_drive ?schedule ?costs ~chunk ~start ~on_window sinks src
      else
        Pool.with_pool ~domains:d (fun p ->
            pool_drive ~pool:p ?schedule ?costs ~chunk ~start ~on_window sinks
              src));
  let* () = match !failure with None -> Ok () | Some e -> Error e in
  let* () = save_at n in
  Ok (finalize state)

let merge_shards ~merge first rest =
  Array.iter (fun s -> merge first s) rest;
  first

let run_sharded (type s r) ?(chunk = default_chunk) ~shards ~create ~merge
    ((module M) : (s, r) Sink.sink) src : r =
  if shards < 1 then invalid_arg "Pipeline.run_sharded: shards must be >= 1";
  let parts = Stream_source.partition ~shards src in
  let states =
    Array.map
      (fun part ->
        let s : s = create () in
        let plan = Chunk_plan.create () in
        let cum = ref 0 in
        Stream_source.chunks ~chunk
          (fun edges ~pos ~len ->
            chunk_instrumented ~nsinks:1 ~len ~cum (fun () ->
                Chunk_plan.build plan edges ~pos ~len;
                M.feed_planned s plan edges ~pos ~len))
          part;
        s)
      parts
  in
  let merged =
    merge_shards ~merge states.(0) (Array.sub states 1 (Array.length states - 1))
  in
  M.finalize merged
