lib/stream/stream_source.ml: Array Edge Fun List Printf Set_system String
