lib/core/full_range.mli: Mkc_stream Params
