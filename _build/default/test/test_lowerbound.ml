(* Tests for Section 5: the DSJ promise instances, the reduction to
   Max 1-Cover (Claims 5.3/5.4), and the one-way protocol simulation. *)

module Dsj = Mkc_lowerbound.Disjointness
module Red = Mkc_lowerbound.Reduction
module Proto = Mkc_lowerbound.Protocol
module Ss = Mkc_stream.Set_system

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_generate_yes_valid () =
  for seed = 1 to 10 do
    let d = Dsj.generate ~r:8 ~m:256 ~case:Dsj.Yes ~seed () in
    checkb "yes instance valid" true (Dsj.validate d)
  done

let test_generate_no_valid () =
  for seed = 1 to 10 do
    let d = Dsj.generate ~r:8 ~m:256 ~case:Dsj.No ~seed () in
    checkb "no instance valid" true (Dsj.validate d);
    checkb "planted item recorded" true (d.planted <> None)
  done

let test_generate_validation () =
  Alcotest.check_raises "r < 2 rejected"
    (Invalid_argument "Disjointness.generate: r must be >= 2") (fun () ->
      ignore (Dsj.generate ~r:1 ~m:10 ~case:Dsj.Yes ~seed:0 ()))

let test_claim_5_3_no_case () =
  (* No instance: optimal 1-cover coverage = α (the planted item's set
     covers every player element) *)
  for seed = 1 to 5 do
    let r = 6 in
    let d = Dsj.generate ~r ~m:128 ~case:Dsj.No ~seed:(100 + seed) () in
    let sys = Red.to_system d in
    let best = ref 0 in
    for j = 0 to 127 do
      best := max !best (Ss.coverage sys [ j ])
    done;
    checki "Claim 5.3: optimal 1-cover = r" r !best
  done

let test_claim_5_4_yes_case () =
  (* Yes instance: every set has cardinality <= 1 *)
  for seed = 1 to 5 do
    let d = Dsj.generate ~r:6 ~m:128 ~case:Dsj.Yes ~seed:(200 + seed) () in
    let sys = Red.to_system d in
    let best = ref 0 in
    for j = 0 to 127 do
      best := max !best (Ss.coverage sys [ j ])
    done;
    checki "Claim 5.4: optimal 1-cover = 1" 1 !best
  done

let test_stream_in_player_order () =
  let d = Dsj.generate ~r:4 ~m:64 ~case:Dsj.Yes ~seed:7 () in
  let stream = Red.to_stream d in
  (* element ids (players) must be non-decreasing along the stream *)
  let ok = ref true and last = ref 0 in
  Array.iter
    (fun (e : Mkc_stream.Edge.t) ->
      if e.elt < !last then ok := false;
      last := max !last e.elt)
    stream;
  checkb "player-major order" true !ok

let test_player_boundaries () =
  let d = Dsj.generate ~r:4 ~m:64 ~case:Dsj.Yes ~seed:8 () in
  let bounds = Red.player_boundaries d in
  checki "r boundaries" 4 (Array.length bounds);
  checki "first at 0" 0 bounds.(0);
  let sizes = Array.map Array.length d.players in
  checki "second boundary after player 0" sizes.(0) bounds.(1)

let test_exact_distinguisher_always_correct () =
  for seed = 1 to 10 do
    let case = if seed mod 2 = 0 then Dsj.Yes else Dsj.No in
    let d = Dsj.generate ~r:8 ~m:256 ~case ~seed:(300 + seed) () in
    let out = Proto.play d (Proto.exact_distinguisher ~m:256 ~r:8) in
    checkb "exact distinguisher correct" true out.Proto.correct;
    checkb "exact distinguisher pays Θ(m)" true (out.Proto.message_words >= 256)
  done

let test_coverage_distinguisher_mostly_correct () =
  (* The paper's own estimator distinguishes Yes (OPT=1) from No (OPT=α)
     whenever its approximation factor beats α.  With α=9 players the
     practical-profile signals (α/3 vs the ~2 quantization floor)
     separate cleanly; demand >= 85% success over 20 trials. *)
  let alpha = 9.0 and r = 9 and m = 512 in
  let correct = ref 0 and trials = 20 in
  for t = 1 to trials do
    let case = if t mod 2 = 0 then Dsj.Yes else Dsj.No in
    let d = Dsj.generate ~r ~m ~case ~seed:(400 + t) () in
    let out = Proto.play d (Proto.coverage_distinguisher ~m ~alpha ~seed:(500 + t) ()) in
    if out.Proto.correct then incr correct
  done;
  checkb
    (Printf.sprintf "coverage distinguisher correct %d/%d" !correct trials)
    true
    (!correct >= (17 * trials) / 20)

let test_linf_distinguisher_correct () =
  (* the §1 L∞/F2-sketch distinguisher: cheap and sharp on the promise gap *)
  let alpha = 8.0 and r = 8 and m = 1024 in
  let correct = ref 0 and trials = 20 and max_msg = ref 0 in
  for t = 1 to trials do
    let case = if t mod 2 = 0 then Dsj.Yes else Dsj.No in
    let d = Dsj.generate ~r ~m ~case ~seed:(600 + t) () in
    let out = Proto.play d (fun () -> Proto.linf_distinguisher ~m ~alpha ~seed:(700 + t) ()) in
    if out.Proto.correct then incr correct;
    max_msg := max !max_msg out.Proto.message_words
  done;
  checkb
    (Printf.sprintf "linf distinguisher correct %d/%d" !correct trials)
    true
    (!correct >= (9 * trials) / 10);
  (* space well below the exact Θ(m) distinguisher *)
  checkb "message o(m)" true (!max_msg < m)

let test_linf_space_scales_inverse_alpha_squared () =
  let words alpha =
    let d = Dsj.generate ~r:4 ~m:4096 ~case:Dsj.Yes ~seed:11 () in
    (Proto.play d (fun () -> Proto.linf_distinguisher ~m:4096 ~alpha ~seed:12 ())).Proto.message_words
  in
  checkb "words decrease with alpha" true (words 4.0 > words 16.0)

let test_protocol_message_words_positive () =
  let d = Dsj.generate ~r:4 ~m:128 ~case:Dsj.No ~seed:9 () in
  let out = Proto.play d (Proto.coverage_distinguisher ~m:128 ~alpha:4.0 ~seed:10 ()) in
  checkb "message size measured" true (out.Proto.message_words > 0)

let suite =
  [
    Alcotest.test_case "generate yes valid" `Quick test_generate_yes_valid;
    Alcotest.test_case "generate no valid" `Quick test_generate_no_valid;
    Alcotest.test_case "generate validation" `Quick test_generate_validation;
    Alcotest.test_case "Claim 5.3 (No case)" `Quick test_claim_5_3_no_case;
    Alcotest.test_case "Claim 5.4 (Yes case)" `Quick test_claim_5_4_yes_case;
    Alcotest.test_case "stream in player order" `Quick test_stream_in_player_order;
    Alcotest.test_case "player boundaries" `Quick test_player_boundaries;
    Alcotest.test_case "exact distinguisher" `Quick test_exact_distinguisher_always_correct;
    Alcotest.test_case "coverage distinguisher" `Slow test_coverage_distinguisher_mostly_correct;
    Alcotest.test_case "linf distinguisher" `Quick test_linf_distinguisher_correct;
    Alcotest.test_case "linf m/α² space" `Quick test_linf_space_scales_inverse_alpha_squared;
    Alcotest.test_case "protocol message size" `Quick test_protocol_message_words_positive;
  ]
