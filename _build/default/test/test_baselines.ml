(* Tests for the set-arrival baselines completing Table 1: swap-greedy
   (Saha–Getoor-style) and threshold-greedy in sampled space
   (McGregor–Vu-style). *)

module Ss = Mkc_stream.Set_system
module Sg = Mkc_coverage.Swap_greedy
module Mva = Mkc_coverage.Mv_set_arrival

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let feed_sets feed state sys =
  for i = 0 to Ss.m sys - 1 do
    feed state i (Ss.set sys i)
  done

(* ---------- swap greedy ---------- *)

let test_swap_greedy_fills_up () =
  let sys =
    Ss.create ~n:40 ~m:8 ~sets:(Array.init 8 (fun i -> Array.init 5 (fun j -> (5 * i) + j)))
  in
  let sg = Sg.create ~n:40 ~k:4 in
  feed_sets Sg.feed sg sys;
  let r = Sg.result sg in
  checki "k disjoint sets -> 4 * 5 covered" 20 r.coverage;
  checki "keeps k sets" 4 (List.length r.chosen)

let test_swap_greedy_swaps_in_better () =
  (* small sets first, then one giant set: it must be swapped in *)
  let sg = Sg.create ~n:100 ~k:2 in
  Sg.feed sg 0 [| 0 |];
  Sg.feed sg 1 [| 1 |];
  Sg.feed sg 2 (Array.init 50 (fun i -> 10 + i));
  let r = Sg.result sg in
  checkb "giant set swapped in" true (List.mem 2 r.chosen);
  checkb "coverage includes the giant" true (r.coverage >= 50)

let test_swap_greedy_constant_factor () =
  for seed = 1 to 6 do
    let sys = Mkc_workload.Random_inst.uniform ~n:300 ~m:60 ~set_size:20 ~seed:(40 + seed) in
    let k = 5 in
    let sg = Sg.create ~n:300 ~k in
    feed_sets Sg.feed sg sys;
    let r = Sg.result sg in
    let opt_proxy = (Mkc_coverage.Greedy.run sys ~k).coverage in
    (* the swap rule guarantees a constant factor; hold it to 4 like [37] *)
    checkb "within factor 4 of greedy" true (4 * r.coverage >= opt_proxy);
    checki "reported coverage is real" (Ss.coverage sys r.chosen) r.coverage
  done

let test_swap_greedy_ignores_empty_sets () =
  let sg = Sg.create ~n:10 ~k:2 in
  Sg.feed sg 0 [||];
  Sg.feed sg 1 [| 3 |];
  let r = Sg.result sg in
  checkb "empty set not kept" true (not (List.mem 0 r.chosen));
  checki "coverage" 1 r.coverage

let test_swap_greedy_duplicate_members () =
  let sg = Sg.create ~n:10 ~k:1 in
  Sg.feed sg 0 [| 1; 1; 1; 2 |];
  checki "duplicates collapse" 2 (Sg.result sg).coverage

let test_swap_greedy_space_tracks_solution () =
  let sg = Sg.create ~n:1000 ~k:3 in
  Sg.feed sg 0 (Array.init 100 Fun.id);
  Sg.feed sg 1 (Array.init 100 (fun i -> 200 + i));
  checkb "words ~ stored members" true (Sg.words sg >= 200 && Sg.words sg < 300)

(* ---------- McGregor–Vu set arrival ---------- *)

let test_mv_set_arrival_planted () =
  for seed = 1 to 4 do
    let pl = Mkc_workload.Planted.few_large ~n:2048 ~m:128 ~k:4 ~seed:(50 + seed) in
    let sys = pl.system in
    let mva = Mva.create ~k:4 ~seed:(60 + seed) () in
    feed_sets Mva.feed mva sys;
    let r = Mva.result mva in
    let true_cov = Ss.coverage sys r.Mva.chosen in
    (* threshold greedy guarantees ~1/2; demand a factor 4 with sampling slack *)
    checkb "within factor 4 of OPT" true (4 * true_cov >= pl.planted_coverage);
    checkb "at most k sets" true (List.length r.Mva.chosen <= 4)
  done

let test_mv_set_arrival_estimate_sane () =
  let pl = Mkc_workload.Planted.few_large ~n:2048 ~m:128 ~k:4 ~seed:70 in
  let mva = Mva.create ~k:4 ~seed:71 () in
  feed_sets Mva.feed mva pl.system;
  let r = Mva.result mva in
  checkb "scaled estimate within [OPT/4, 2.5 OPT]" true
    (r.Mva.coverage >= float_of_int pl.planted_coverage /. 4.0
    && r.Mva.coverage <= 2.5 *. float_of_int pl.planted_coverage)

let test_mv_set_arrival_space_independent_of_n () =
  (* same sets embedded in a tiny and a huge ground set: stored words
     should be in the same ballpark (no Õ(n) bitmaps) *)
  let mk n =
    let pl = Mkc_workload.Planted.few_large ~n ~m:64 ~k:4 ~seed:80 in
    let mva = Mva.create ~k:4 ~seed:81 () in
    feed_sets Mva.feed mva pl.system;
    Mva.words mva
  in
  let w_small = mk 1024 and w_big = mk 16384 in
  checkb "space does not scale with n" true (w_big < 8 * max 1 w_small)

let test_mv_set_arrival_validation () =
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Mv_set_arrival.create: epsilon must be in (0, 1]") (fun () ->
      ignore (Mva.create ~epsilon:0.0 ~k:2 ()))

(* set-arrival baselines vs the edge-arrival core, same instance *)
let test_baselines_vs_streaming_consistency () =
  let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:128 ~k:4 ~seed:90 in
  let sys = pl.system in
  let opt = pl.planted_coverage in
  (* all three should land within their guarantees of the same OPT *)
  let sg = Sg.create ~n:1024 ~k:4 in
  feed_sets Sg.feed sg sys;
  checkb "swap-greedy in window" true (4 * (Sg.result sg).coverage >= opt);
  let mva = Mva.create ~k:4 ~seed:91 () in
  feed_sets Mva.feed mva sys;
  checkb "mv in window" true
    (4 * Ss.coverage sys (Mva.result mva).Mva.chosen >= opt);
  let p = Mkc_core.Params.make ~m:128 ~n:1024 ~k:4 ~alpha:4.0 ~seed:92 () in
  let rep = Mkc_core.Report.create p in
  Array.iter (Mkc_core.Report.feed rep) (Ss.edge_stream ~seed:93 sys);
  let streaming_cov = Ss.coverage sys (Mkc_core.Report.finalize rep).Mkc_core.Report.sets in
  checkb "edge-arrival core within Õ(α)" true (64 * streaming_cov >= opt)

let suite =
  [
    Alcotest.test_case "swap-greedy fills up" `Quick test_swap_greedy_fills_up;
    Alcotest.test_case "swap-greedy swaps in better" `Quick test_swap_greedy_swaps_in_better;
    Alcotest.test_case "swap-greedy constant factor" `Quick test_swap_greedy_constant_factor;
    Alcotest.test_case "swap-greedy ignores empty" `Quick test_swap_greedy_ignores_empty_sets;
    Alcotest.test_case "swap-greedy dedups members" `Quick test_swap_greedy_duplicate_members;
    Alcotest.test_case "swap-greedy space" `Quick test_swap_greedy_space_tracks_solution;
    Alcotest.test_case "mv planted" `Quick test_mv_set_arrival_planted;
    Alcotest.test_case "mv estimate sane" `Quick test_mv_set_arrival_estimate_sane;
    Alcotest.test_case "mv space independent of n" `Quick test_mv_set_arrival_space_independent_of_n;
    Alcotest.test_case "mv validation" `Quick test_mv_set_arrival_validation;
    Alcotest.test_case "baselines vs streaming" `Slow test_baselines_vs_streaming_consistency;
  ]
