(* Flat-memory BJKST: the fingerprint buffer is an open-addressed
   (linear-probe) table over three preallocated int arrays — the 32-bit
   lo/hi halves of the 64-bit fingerprint and its trailing-zero level
   ([-1] marks an empty slot).  Slot count is a fixed power of two at
   least 2·(cap+1), so the load factor never exceeds 1/2 and the table
   never resizes: occupancy is bounded by cap+1 between prunes.  The
   hot [add] path therefore allocates nothing — no boxed int64 key, no
   Hashtbl bucket, no option.

   Observable state (dump/load/merge, estimate, counters) is a pure
   function of the fingerprint set, exactly as in the historical
   Hashtbl-backed layout; the canonical dump bytes are unchanged. *)

type t = {
  cap : int;
  tab : Mkc_hashing.Tabulation.t;
  mask : int; (* slots - 1; slots a power of two >= 2*(cap+1) *)
  fp_lo : int array;
  fp_hi : int array;
  lvl : int array; (* -1 = empty *)
  (* prune scratch: survivors of a level raise, <= cap+1 entries *)
  s_lo : int array;
  s_hi : int array;
  s_lvl : int array;
  mutable occ : int;
  mutable z : int;
  mutable prunes : int;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(cap = 96) ~seed () =
  if cap < 4 then invalid_arg "L0_bjkst.create: cap must be >= 4";
  let slots = pow2_at_least (2 * (cap + 1)) 16 in
  {
    cap;
    tab = Mkc_hashing.Tabulation.create ~seed;
    mask = slots - 1;
    fp_lo = Array.make slots 0;
    fp_hi = Array.make slots 0;
    lvl = Array.make slots (-1);
    s_lo = Array.make (cap + 1) 0;
    s_hi = Array.make (cap + 1) 0;
    s_lvl = Array.make (cap + 1) 0;
    occ = 0;
    z = 0;
    prunes = 0;
  }

(* 32-bit de Bruijn count-trailing-zeros.  [x land (-x)] isolates the
   lowest set bit; multiplying by the de Bruijn constant slides a unique
   5-bit window into bits 27..31 (the [land 0xFFFF_FFFF] emulates the
   32-bit wraparound the classic trick relies on — OCaml ints are wider,
   so the high product bits must be masked off, not wrapped). *)
let db32 = 0x077C_B531

let db32_tbl =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let tz32 x = Array.unsafe_get db32_tbl ((((x land (-x)) * db32) land 0xFFFF_FFFF) lsr 27)

let trailing_zeros v =
  (* Split the Int64 hash into two native-int halves once (mask and
     shift), then count within a half with the table — no per-bit loop,
     no Int64 arithmetic beyond the split. *)
  let lo = Int64.to_int v land 0xFFFF_FFFF in
  if lo <> 0 then tz32 lo
  else
    let hi = Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFF_FFFF in
    if hi <> 0 then 32 + tz32 hi else 64

(* Probe start: entries surviving at level z have >= z trailing zero
   bits, so the raw low bits are useless as a slot index — mix both
   halves through a multiplicative avalanche first. *)
let[@inline] slot_of t lo hi =
  let h = lo lxor ((hi + lo) * 0x2545_F491_4F6C_DD1D) in
  (h lxor (h lsr 21)) land t.mask

(* Find the slot holding fingerprint (lo, hi), or the empty slot where
   it would go.  Tail-recursive: no refs, no allocation. *)
let rec probe t lo hi s =
  if Array.unsafe_get t.lvl s < 0 then s
  else if Array.unsafe_get t.fp_lo s = lo && Array.unsafe_get t.fp_hi s = hi then s
  else probe t lo hi ((s + 1) land t.mask)

let prune t =
  while t.occ > t.cap do
    t.prunes <- t.prunes + 1;
    t.z <- t.z + 1;
    let z = t.z in
    (* Compact survivors into scratch, clear, reinsert: prune-in-place
       over preallocated memory, no doomed-fingerprint list. *)
    let n = ref 0 in
    for s = 0 to t.mask do
      let l = Array.unsafe_get t.lvl s in
      if l >= 0 then begin
        if l >= z then begin
          let j = !n in
          t.s_lo.(j) <- Array.unsafe_get t.fp_lo s;
          t.s_hi.(j) <- Array.unsafe_get t.fp_hi s;
          t.s_lvl.(j) <- l;
          n := j + 1
        end;
        Array.unsafe_set t.lvl s (-1)
      end
    done;
    t.occ <- !n;
    for j = 0 to !n - 1 do
      let lo = t.s_lo.(j) and hi = t.s_hi.(j) in
      let s = probe t lo hi (slot_of t lo hi) in
      t.fp_lo.(s) <- lo;
      t.fp_hi.(s) <- hi;
      t.lvl.(s) <- t.s_lvl.(j)
    done
  done

(* Shared by add/add_batch: the hash halves are already in [t.tab]. *)
let[@inline] add_hashed t =
  let lo = Mkc_hashing.Tabulation.part_lo t.tab in
  let hi = Mkc_hashing.Tabulation.part_hi t.tab in
  let lvl = if lo <> 0 then tz32 lo else if hi <> 0 then 32 + tz32 hi else 64 in
  if lvl >= t.z then begin
    (* The hash itself is the fingerprint: collisions over a 64-bit
       range are negligible for the stream sizes we target. *)
    let s = probe t lo hi (slot_of t lo hi) in
    if Array.unsafe_get t.lvl s < 0 then begin
      t.fp_lo.(s) <- lo;
      t.fp_hi.(s) <- hi;
      t.lvl.(s) <- lvl;
      t.occ <- t.occ + 1;
      if t.occ > t.cap then prune t
    end
  end

let add t x =
  Mkc_hashing.Tabulation.hash_parts t.tab x;
  add_hashed t

let add_batch t xs ~pos ~len =
  let tab = t.tab in
  for i = pos to pos + len - 1 do
    Mkc_hashing.Tabulation.hash_parts tab (Array.unsafe_get xs i);
    add_hashed t
  done

let fp_at t s =
  Int64.logor
    (Int64.shift_left (Int64.of_int t.fp_hi.(s)) 32)
    (Int64.of_int t.fp_lo.(s))

(* Canonical state: the buffer sorted by fingerprint (unsigned), plus
   the level and prune counters.  Two sketches over the same seed are
   behaviourally identical iff their dumps are equal — table layout
   (probe order, slot positions) never leaks into any observable. *)
let dump t =
  let entries = ref [] in
  for s = t.mask downto 0 do
    if t.lvl.(s) >= 0 then entries := (fp_at t s, t.lvl.(s)) :: !entries
  done;
  let entries =
    List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) !entries
  in
  (t.z, t.prunes, entries)

let clear_table t =
  Array.fill t.lvl 0 (t.mask + 1) (-1);
  t.occ <- 0

(* Insert a fingerprint given as int64; returns false if already present. *)
let insert_fp t fp lvl =
  let lo = Int64.to_int fp land 0xFFFF_FFFF in
  let hi = Int64.to_int (Int64.shift_right_logical fp 32) land 0xFFFF_FFFF in
  let s = probe t lo hi (slot_of t lo hi) in
  if Array.unsafe_get t.lvl s >= 0 then false
  else begin
    t.fp_lo.(s) <- lo;
    t.fp_hi.(s) <- hi;
    t.lvl.(s) <- lvl;
    t.occ <- t.occ + 1;
    true
  end

let load_state t ~z ~prunes ~entries =
  if z < 0 || prunes < 0 then Error "l0: negative level or prune count"
  else if List.length entries > t.cap then Error "l0: entries exceed cap"
  else if List.exists (fun (_, lvl) -> lvl < z || lvl > 64) entries then
    Error "l0: entry level out of range"
  else begin
    clear_table t;
    let dup = List.exists (fun (fp, lvl) -> not (insert_fp t fp lvl)) entries in
    if dup then begin
      clear_table t;
      Error "l0: duplicate fingerprint"
    end
    else begin
      t.z <- z;
      t.prunes <- prunes;
      Ok ()
    end
  end

(* The sketch state is a pure function of the set of fingerprints seen:
   buf = { fp seen : level(fp) ≥ z } with z the smallest level at which
   that set fits in [cap].  Union-then-prune therefore reproduces the
   single-stream state exactly (merge is the set union).  Requires both
   sketches to share cap and hash seed. *)
let merge_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "L0_bjkst.merge_into: cap mismatch";
  if src.z > dst.z then begin
    dst.z <- src.z;
    dst.prunes <- max dst.prunes src.prunes;
    (* Drop below-level entries without touching the prune counter:
       adopting the source's level is not a capacity-driven prune. *)
    let z = dst.z in
    let n = ref 0 in
    for s = 0 to dst.mask do
      let l = Array.unsafe_get dst.lvl s in
      if l >= 0 then begin
        if l >= z then begin
          let j = !n in
          dst.s_lo.(j) <- dst.fp_lo.(s);
          dst.s_hi.(j) <- dst.fp_hi.(s);
          dst.s_lvl.(j) <- l;
          n := j + 1
        end;
        dst.lvl.(s) <- -1
      end
    done;
    dst.occ <- !n;
    for j = 0 to !n - 1 do
      let lo = dst.s_lo.(j) and hi = dst.s_hi.(j) in
      let s = probe dst lo hi (slot_of dst lo hi) in
      dst.fp_lo.(s) <- lo;
      dst.fp_hi.(s) <- hi;
      dst.lvl.(s) <- dst.s_lvl.(j)
    done
  end
  else dst.prunes <- max dst.prunes src.prunes;
  (* Insert in canonical order so the destination state is independent
     of the source table's internal layout. *)
  let _, _, entries = dump src in
  List.iter
    (fun (fp, lvl) ->
      if lvl >= dst.z then begin
        ignore (insert_fp dst fp lvl : bool);
        if dst.occ > dst.cap then prune dst
      end)
    entries

let estimate t = float_of_int t.occ *. Float.pow 2.0 (float_of_int t.z)
let level t = t.z
let occupancy t = t.occ
let prunes t = t.prunes

(* Logical space: two words per live fingerprint entry plus the hash
   tables — the same accounting as the historical Hashtbl layout, so
   budget calibration and space profiles stay comparable.  The flat
   table preallocates 2·(cap+1) slots (a bounded constant factor over
   the live entries); DESIGN.md records the resident-size mapping. *)
let words t = (2 * t.occ) + Mkc_hashing.Tabulation.words t.tab + 2

(* Deletion-tolerant counting variant.  The insertion-only sketch above
   keeps a SET of fingerprints, which cannot honour a deletion; here
   each buffered fingerprint carries the signed sum of its updates and
   leaves the buffer (backward-shift, no tombstones) when that sum
   returns to zero — so the live buffer is exactly
   { fp : level(fp) ≥ z, signed count ≠ 0 } and insert-then-delete is
   bit-for-bit never-inserted on the canonical dump.  Level raises
   filter insertions and deletions of the same element identically
   (they share the hash), so pruning never strands a half-cancelled
   pair.  [z] never decreases: after massive deletion the estimate is
   conservative (a standard property of level-based L0 under
   turnstile), which is why the oracle keeps the set variant for
   insertion-only regimes. *)
module Turnstile = struct
  type t = {
    cap : int;
    tab : Mkc_hashing.Tabulation.t;
    mask : int;
    fp_lo : int array;
    fp_hi : int array;
    lvl : int array; (* -1 = empty *)
    cnt : int array; (* signed multiplicity; never 0 while live *)
    s_lo : int array;
    s_hi : int array;
    s_lvl : int array;
    s_cnt : int array;
    mutable occ : int;
    mutable z : int;
    mutable prunes : int;
  }

  let create ?(cap = 96) ~seed () =
    if cap < 4 then invalid_arg "L0_bjkst.Turnstile.create: cap must be >= 4";
    let slots = pow2_at_least (2 * (cap + 1)) 16 in
    {
      cap;
      tab = Mkc_hashing.Tabulation.create ~seed;
      mask = slots - 1;
      fp_lo = Array.make slots 0;
      fp_hi = Array.make slots 0;
      lvl = Array.make slots (-1);
      cnt = Array.make slots 0;
      s_lo = Array.make (cap + 1) 0;
      s_hi = Array.make (cap + 1) 0;
      s_lvl = Array.make (cap + 1) 0;
      s_cnt = Array.make (cap + 1) 0;
      occ = 0;
      z = 0;
      prunes = 0;
    }

  let[@inline] slot_of t lo hi =
    let h = lo lxor ((hi + lo) * 0x2545_F491_4F6C_DD1D) in
    (h lxor (h lsr 21)) land t.mask

  let rec probe t lo hi s =
    if Array.unsafe_get t.lvl s < 0 then s
    else if Array.unsafe_get t.fp_lo s = lo && Array.unsafe_get t.fp_hi s = hi then s
    else probe t lo hi ((s + 1) land t.mask)

  (* Backward-shift deletion, as in F2_heavy_hitter.remove_at: slide
     back every cluster entry whose probe path crosses the hole. *)
  let remove_at t s =
    t.occ <- t.occ - 1;
    let mask = t.mask in
    let hole = ref s in
    Array.unsafe_set t.lvl s (-1);
    let j = ref ((s + 1) land mask) in
    let continue = ref true in
    while !continue do
      if Array.unsafe_get t.lvl !j < 0 then continue := false
      else begin
        let lo = Array.unsafe_get t.fp_lo !j and hi = Array.unsafe_get t.fp_hi !j in
        let h = slot_of t lo hi in
        if (!j - h) land mask >= (!j - !hole) land mask then begin
          t.fp_lo.(!hole) <- lo;
          t.fp_hi.(!hole) <- hi;
          t.lvl.(!hole) <- t.lvl.(!j);
          t.cnt.(!hole) <- t.cnt.(!j);
          t.lvl.(!j) <- -1;
          hole := !j
        end;
        j := (!j + 1) land mask
      end
    done

  let prune t =
    while t.occ > t.cap do
      t.prunes <- t.prunes + 1;
      t.z <- t.z + 1;
      let z = t.z in
      let n = ref 0 in
      for s = 0 to t.mask do
        let l = Array.unsafe_get t.lvl s in
        if l >= 0 then begin
          if l >= z then begin
            let j = !n in
            t.s_lo.(j) <- Array.unsafe_get t.fp_lo s;
            t.s_hi.(j) <- Array.unsafe_get t.fp_hi s;
            t.s_lvl.(j) <- l;
            t.s_cnt.(j) <- Array.unsafe_get t.cnt s;
            n := j + 1
          end;
          Array.unsafe_set t.lvl s (-1)
        end
      done;
      t.occ <- !n;
      for j = 0 to !n - 1 do
        let lo = t.s_lo.(j) and hi = t.s_hi.(j) in
        let s = probe t lo hi (slot_of t lo hi) in
        t.fp_lo.(s) <- lo;
        t.fp_hi.(s) <- hi;
        t.lvl.(s) <- t.s_lvl.(j);
        t.cnt.(s) <- t.s_cnt.(j)
      done
    done

  let[@inline] add_hashed t delta =
    let lo = Mkc_hashing.Tabulation.part_lo t.tab in
    let hi = Mkc_hashing.Tabulation.part_hi t.tab in
    let lvl = if lo <> 0 then tz32 lo else if hi <> 0 then 32 + tz32 hi else 64 in
    if lvl >= t.z then begin
      let s = probe t lo hi (slot_of t lo hi) in
      if Array.unsafe_get t.lvl s < 0 then begin
        t.fp_lo.(s) <- lo;
        t.fp_hi.(s) <- hi;
        t.lvl.(s) <- lvl;
        t.cnt.(s) <- delta;
        t.occ <- t.occ + 1;
        if t.occ > t.cap then prune t
      end
      else begin
        let c = Array.unsafe_get t.cnt s + delta in
        if c = 0 then remove_at t s else Array.unsafe_set t.cnt s c
      end
    end

  let add t ?(delta = 1) x =
    Mkc_hashing.Tabulation.hash_parts t.tab x;
    add_hashed t delta

  let add_batch t xs ~pos ~len ~delta =
    let tab = t.tab in
    for i = pos to pos + len - 1 do
      Mkc_hashing.Tabulation.hash_parts tab (Array.unsafe_get xs i);
      add_hashed t delta
    done

  let fp_at t s =
    Int64.logor
      (Int64.shift_left (Int64.of_int t.fp_hi.(s)) 32)
      (Int64.of_int t.fp_lo.(s))

  let dump t =
    let entries = ref [] in
    for s = t.mask downto 0 do
      if t.lvl.(s) >= 0 then entries := (fp_at t s, t.lvl.(s), t.cnt.(s)) :: !entries
    done;
    let entries =
      List.sort (fun (a, _, _) (b, _, _) -> Int64.unsigned_compare a b) !entries
    in
    (t.z, t.prunes, entries)

  let clear_table t =
    Array.fill t.lvl 0 (t.mask + 1) (-1);
    t.occ <- 0

  let insert_fp t fp lvl c =
    let lo = Int64.to_int fp land 0xFFFF_FFFF in
    let hi = Int64.to_int (Int64.shift_right_logical fp 32) land 0xFFFF_FFFF in
    let s = probe t lo hi (slot_of t lo hi) in
    if Array.unsafe_get t.lvl s >= 0 then false
    else begin
      t.fp_lo.(s) <- lo;
      t.fp_hi.(s) <- hi;
      t.lvl.(s) <- lvl;
      t.cnt.(s) <- c;
      t.occ <- t.occ + 1;
      true
    end

  let load_state t ~z ~prunes ~entries =
    if z < 0 || prunes < 0 then Error "l0t: negative level or prune count"
    else if List.length entries > t.cap then Error "l0t: entries exceed cap"
    else if List.exists (fun (_, lvl, _) -> lvl < z || lvl > 64) entries then
      Error "l0t: entry level out of range"
    else if List.exists (fun (_, _, c) -> c = 0) entries then
      Error "l0t: zero count entry"
    else begin
      clear_table t;
      let dup = List.exists (fun (fp, lvl, c) -> not (insert_fp t fp lvl c)) entries in
      if dup then begin
        clear_table t;
        Error "l0t: duplicate fingerprint"
      end
      else begin
        t.z <- z;
        t.prunes <- prunes;
        Ok ()
      end
    end

  (* Merge = pointwise signed-count sum at the adopted level.  Counts
     that cancel to zero drop out, so merging S(x) into S(−x) leaves
     the empty sketch — the linearity law test_turnstile pins. *)
  let merge_into ~dst src =
    if dst.cap <> src.cap then invalid_arg "L0_bjkst.Turnstile.merge_into: cap mismatch";
    if src.z > dst.z then begin
      dst.z <- src.z;
      dst.prunes <- max dst.prunes src.prunes;
      let z = dst.z in
      let n = ref 0 in
      for s = 0 to dst.mask do
        let l = Array.unsafe_get dst.lvl s in
        if l >= 0 then begin
          if l >= z then begin
            let j = !n in
            dst.s_lo.(j) <- dst.fp_lo.(s);
            dst.s_hi.(j) <- dst.fp_hi.(s);
            dst.s_lvl.(j) <- l;
            dst.s_cnt.(j) <- dst.cnt.(s);
            n := j + 1
          end;
          dst.lvl.(s) <- -1
        end
      done;
      dst.occ <- !n;
      for j = 0 to !n - 1 do
        let lo = dst.s_lo.(j) and hi = dst.s_hi.(j) in
        let s = probe dst lo hi (slot_of dst lo hi) in
        dst.fp_lo.(s) <- lo;
        dst.fp_hi.(s) <- hi;
        dst.lvl.(s) <- dst.s_lvl.(j);
        dst.cnt.(s) <- dst.s_cnt.(j)
      done
    end
    else dst.prunes <- max dst.prunes src.prunes;
    let _, _, entries = dump src in
    List.iter
      (fun (fp, lvl, c) ->
        if lvl >= dst.z then begin
          let lo = Int64.to_int fp land 0xFFFF_FFFF in
          let hi = Int64.to_int (Int64.shift_right_logical fp 32) land 0xFFFF_FFFF in
          let s = probe dst lo hi (slot_of dst lo hi) in
          if Array.unsafe_get dst.lvl s < 0 then begin
            ignore (insert_fp dst fp lvl c : bool);
            if dst.occ > dst.cap then prune dst
          end
          else begin
            let c' = Array.unsafe_get dst.cnt s + c in
            if c' = 0 then remove_at dst s else Array.unsafe_set dst.cnt s c'
          end
        end)
      entries

  let estimate t = float_of_int t.occ *. Float.pow 2.0 (float_of_int t.z)
  let level t = t.z
  let occupancy t = t.occ
  let prunes t = t.prunes

  (* Three words per live entry (fingerprint halves + signed count)
     plus the hash tables. *)
  let words t = (3 * t.occ) + Mkc_hashing.Tabulation.words t.tab + 2
end
