(* Seeded churn transform for turnstile experiments: a fraction of the
   base stream's insertions are retracted again later in the stream,
   so a run must survive real deletions while the live (net-positive)
   suffix stays a plain insertion-only instance any offline baseline
   can score. *)

module Edge = Mkc_stream.Edge

let prob rng frac = Mkc_hashing.Splitmix.below rng 1_000_000 < int_of_float (frac *. 1e6)

let apply ~frac ~seed edges =
  if not (frac >= 0.0 && frac < 1.0) then
    invalid_arg "Churn.apply: frac must lie in [0, 1)";
  Array.iter
    (fun (e : Edge.t) ->
      if e.sign < 0 then invalid_arg "Churn.apply: base stream must be insertion-only")
    edges;
  let rng = Mkc_hashing.Splitmix.create seed in
  let out = ref [] in
  (* Deletions are queued FIFO behind their insertions and drain with
     probability 1/2 after each subsequent insert, so every retraction
     lands strictly after its insert at a geometrically distributed
     lag; leftovers flush at end-of-stream.  Net count per churned edge
     is exactly 0, per surviving edge exactly its base multiplicity. *)
  let pending = Queue.create () in
  Array.iter
    (fun (e : Edge.t) ->
      out := e :: !out;
      if prob rng frac then Queue.add e pending;
      if (not (Queue.is_empty pending)) && Mkc_hashing.Splitmix.below rng 2 = 0 then
        let d = Queue.pop pending in
        out := Edge.signed ~sign:(-1) ~set:d.set ~elt:d.elt :: !out)
    edges;
  Queue.iter
    (fun (d : Edge.t) -> out := Edge.signed ~sign:(-1) ~set:d.set ~elt:d.elt :: !out)
    pending;
  Array.of_list (List.rev !out)

let live edges =
  let net = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun (e : Edge.t) ->
      let key = (e.set, e.elt) in
      let c = Option.value ~default:0 (Hashtbl.find_opt net key) in
      Hashtbl.replace net key (c + e.sign))
    edges;
  let out = ref [] in
  (* First-occurrence order keeps the result a deterministic function
     of the input stream (hash-table iteration order never leaks). *)
  let emitted = Hashtbl.create 64 in
  Array.iter
    (fun (e : Edge.t) ->
      let key = (e.set, e.elt) in
      if not (Hashtbl.mem emitted key) then begin
        Hashtbl.add emitted key ();
        match Hashtbl.find_opt net key with
        | Some c when c > 0 ->
            for _ = 1 to c do
              out := Edge.make ~set:e.set ~elt:e.elt :: !out
            done
        | _ -> ()
      end)
    edges;
  Array.of_list (List.rev !out)
