type span = { name : string; start_ns : int; dur_ns : int; domain : int }

let ring_capacity = 512

type ring = { slots : span option array; mutable next : int; lock : Mutex.t }

(* Per-domain rings, registered globally so [recent] can see them all;
   the owning domain appends under the ring lock (cheap, uncontended —
   readers are rare). *)
let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let my_ring () =
  match Domain.DLS.get ring_key with
  | Some r -> r
  | None ->
      let r = { slots = Array.make ring_capacity None; next = 0; lock = Mutex.create () } in
      Mutex.lock rings_lock;
      rings := r :: !rings;
      Mutex.unlock rings_lock;
      Domain.DLS.set ring_key (Some r);
      r

let push sp =
  let r = my_ring () in
  Mutex.lock r.lock;
  r.slots.(r.next mod ring_capacity) <- Some sp;
  r.next <- r.next + 1;
  Mutex.unlock r.lock

let record ?(registry = Registry.global) name ~start_ns ~dur_ns =
  if Trace.enabled () then Trace.complete name ~start_ns ~dur_ns;
  if Registry.enabled () then begin
    let sp = { name; start_ns; dur_ns; domain = (Domain.self () :> int) } in
    push sp;
    Registry.observe_ns (Registry.histogram registry ("span." ^ name ^ ".ns")) dur_ns
  end

type handle = { hname : string; hstart : int; hreg : Registry.t; live : bool }

let start ?(registry = Registry.global) name =
  if Registry.enabled () || Trace.enabled () then
    { hname = name; hstart = Clock.now_ns (); hreg = registry; live = true }
  else { hname = name; hstart = 0; hreg = registry; live = false }

let finish h =
  if h.live then
    record ~registry:h.hreg h.hname ~start_ns:h.hstart
      ~dur_ns:(Clock.now_ns () - h.hstart)

let with_ ?registry name f =
  let h = start ?registry name in
  Fun.protect ~finally:(fun () -> finish h) f

let recent () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  let out = ref [] in
  List.iter
    (fun r ->
      Mutex.lock r.lock;
      Array.iter (function Some sp -> out := sp :: !out | None -> ()) r.slots;
      Mutex.unlock r.lock)
    rs;
  List.sort (fun a b -> compare (a.start_ns, a.name) (b.start_ns, b.name)) !out

let clear () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  List.iter
    (fun r ->
      Mutex.lock r.lock;
      Array.fill r.slots 0 ring_capacity None;
      r.next <- 0;
      Mutex.unlock r.lock)
    rs
