type t = { coeffs : int array; range : int }

let create ~indep ~range ~seed =
  if indep < 1 then invalid_arg "Poly_hash.create: indep must be >= 1";
  if range < 1 then invalid_arg "Poly_hash.create: range must be >= 1";
  let coeffs =
    Array.init indep (fun _ -> Prime_field.normalize (Splitmix.next_int seed))
  in
  { coeffs; range }

let field_value t x =
  let x = Prime_field.normalize x in
  (* Horner evaluation: c_{d-1} x^{d-1} + ... + c_0. *)
  let acc = ref 0 in
  for i = Array.length t.coeffs - 1 downto 0 do
    acc := Prime_field.add (Prime_field.mul !acc x) t.coeffs.(i)
  done;
  !acc

let hash t x = field_value t x mod t.range
let keep t x = hash t x = 0
let range t = t.range
let indep t = Array.length t.coeffs
let words t = Array.length t.coeffs + 1
