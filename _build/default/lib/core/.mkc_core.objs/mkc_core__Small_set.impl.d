lib/core/small_set.ml: Array Float Hashtbl List Mkc_coverage Mkc_hashing Mkc_sketch Mkc_stream Params Solution
