type t = {
  params : Params.t;
  sampler : Mkc_sketch.Sampler.Nested.t; (* over set ids; level g ~ β = 2^g *)
  sketches : Mkc_sketch.L0_bjkst.t array; (* one per level *)
  mutable st_sampler_evals : int;
  mutable st_l0_updates : int;
}

let num_levels params =
  1 + Mkc_hashing.Hash_family.ceil_log2 (max 1 (int_of_float (ceil params.Params.alpha)))

let create (params : Params.t) ~seed =
  let levels = num_levels params in
  let base_rate = float_of_int params.k /. float_of_int params.m in
  {
    params;
    sampler =
      Mkc_sketch.Sampler.Nested.create ~base_rate ~levels ~indep:params.indep
        ~seed:(Mkc_hashing.Splitmix.fork seed 0);
    sketches =
      Array.init levels (fun g ->
          Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.fork seed (g + 1)) ());
    st_sampler_evals = 0;
    st_l0_updates = 0;
  }

let feed t (e : Mkc_stream.Edge.t) =
  t.st_sampler_evals <- t.st_sampler_evals + 1;
  match Mkc_sketch.Sampler.Nested.min_keep_level t.sampler e.set with
  | None -> ()
  | Some finest ->
      (* Nesting: a set sampled at level [finest] belongs to every
         coarser (higher-rate) level's collection too. *)
      let top = Array.length t.sketches - 1 in
      t.st_l0_updates <- t.st_l0_updates + (top - finest + 1);
      for g = finest to top do
        Mkc_sketch.L0_bjkst.add t.sketches.(g) e.elt
      done

let feed_batch t edges ~pos ~len =
  let sampler = t.sampler and sketches = t.sketches in
  let top = Array.length sketches - 1 in
  t.st_sampler_evals <- t.st_sampler_evals + len;
  for i = pos to pos + len - 1 do
    let (e : Mkc_stream.Edge.t) = Array.unsafe_get edges i in
    match Mkc_sketch.Sampler.Nested.min_keep_level sampler e.set with
    | None -> ()
    | Some finest ->
        t.st_l0_updates <- t.st_l0_updates + (top - finest + 1);
        for g = finest to top do
          Mkc_sketch.L0_bjkst.add sketches.(g) e.elt
        done
  done

let beta_of_level g = 1 lsl g

let coverage_estimates t =
  Array.to_list
    (Array.mapi (fun g sk -> (beta_of_level g, Mkc_sketch.L0_bjkst.estimate sk)) t.sketches)

let witness t level () =
  (* Enumerate the sampled sets of the winning level from the stored
     hash seed; truncate to k ids (a uniform k-subset of F^rnd). *)
  let out = ref [] and count = ref 0 in
  let m = t.params.Params.m and k = t.params.Params.k in
  let s = ref 0 in
  while !count < k && !s < m do
    if Mkc_sketch.Sampler.Nested.keep t.sampler ~level !s then begin
      out := !s :: !out;
      incr count
    end;
    incr s
  done;
  List.rev !out

let finalize t =
  let p = t.params in
  let u = float_of_int p.Params.u in
  let best = ref None in
  Array.iteri
    (fun g sk ->
      let beta = float_of_int (beta_of_level g) in
      let v = Mkc_sketch.L0_bjkst.estimate sk in
      if v >= p.sigma *. beta *. u /. (4.0 *. p.alpha) then begin
        let est = 2.0 *. v /. (3.0 *. beta) in
        match !best with
        | Some (b, _) when b >= est -> ()
        | _ -> best := Some (est, g)
      end)
    t.sketches;
  Option.map
    (fun (est, g) ->
      {
        Solution.estimate = est;
        witness = witness t g;
        provenance = Solution.Large_common { beta = beta_of_level g };
      })
    !best

let words_breakdown t =
  [
    ("sampler", Mkc_sketch.Sampler.Nested.words t.sampler);
    ("l0", Array.fold_left (fun acc sk -> acc + Mkc_sketch.L0_bjkst.words sk) 0 t.sketches);
  ]

let words t = List.fold_left (fun acc (_, w) -> acc + w) 0 (words_breakdown t)

let stats t =
  [ ("sampler_evals", t.st_sampler_evals); ("l0_updates", t.st_l0_updates) ]
