lib/sketch/kmv.mli: Mkc_hashing
