type t = { k : int; engine : Estimate.t }

type result = {
  estimate : float;
  sets : int list;
  provenance : Solution.provenance option;
}

let create (p : Params.t) = { k = p.k; engine = Estimate.create p }
let feed t e = Estimate.feed t.engine e
let feed_batch t edges ~pos ~len = Estimate.feed_batch t.engine edges ~pos ~len

let feed_planned t plan edges ~pos ~len =
  Estimate.feed_planned t.engine plan edges ~pos ~len

let shards t = Estimate.shards t.engine
let shard_costs t = Estimate.shard_costs t.engine

let truncate k sets =
  let rec take i = function [] -> [] | x :: rest -> if i >= k then [] else x :: take (i + 1) rest in
  take 0 sets

let finalize t =
  let r = Estimate.finalize t.engine in
  match r.Estimate.outcome with
  | None -> { estimate = 0.0; sets = []; provenance = None }
  | Some o ->
      {
        estimate = r.Estimate.estimate;
        sets = truncate t.k (o.Solution.witness ());
        provenance = Some o.Solution.provenance;
      }

let words t = Estimate.words t.engine + t.k
let record_metrics ?registry t = Estimate.record_metrics ?registry t.engine

let encode t = Estimate.encode t.engine
let restore t j = Estimate.restore t.engine j
let merge_into ~dst src = Estimate.merge_into ~dst:dst.engine src.engine
let ckpt_kind = "report"

let codec (p : Params.t) : t Mkc_stream.Checkpoint.codec =
  {
    Mkc_stream.Checkpoint.kind = ckpt_kind;
    seed = p.base_seed;
    encode;
    restore = (fun t j -> restore t j);
  }

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = feed_planned
    let finalize = finalize
    let words = words
    let words_breakdown t = ("report.output", t.k) :: Estimate.words_breakdown t.engine
  end)
