lib/hashing/pairwise.ml: Prime_field Splitmix
