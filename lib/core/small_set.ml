type instance = {
  gamma_exp : int; (* γ = 2^-gamma_exp *)
  repeat : int;
  store : (int, int list ref) Hashtbl.t; (* set id -> sampled members *)
  mutable pairs : int;
  mutable dead : bool; (* storage cap exceeded (Figure 5's terminate) *)
}

type repeat_state = {
  elem_sampler : Mkc_sketch.Sampler.Nested.t;
  (* level i has rate base·2^i; guess g (γ = 2^-g) uses level G - g *)
  set_sampler : Mkc_sketch.Sampler.Bernoulli.t option; (* M; None = rate 1 *)
  instances : instance array; (* indexed by gamma_exp *)
  (* Planned-path accelerators: ids recur across chunks, so the pure
     seed-determined sampling decisions are memoised instead of
     re-hashed every chunk.  Scratch — uncounted, unchecked-pointed,
     merge-safe (see Large_set for the argument). *)
  elem_memo : Mkc_sketch.Sampler.Memo.t; (* reduced elt -> nested code *)
  set_memo : Mkc_sketch.Sampler.Memo.t; (* set id -> 0/1 in M *)
}

type t = {
  params : Params.t;
  guesses : int; (* G + 1 *)
  budget : int; (* cover budget κ on sub-instances *)
  base_rate : float; (* finest element rate, for scaling *)
  cap : int; (* per-instance stored-pair cap *)
  repeats : repeat_state array;
  (* feed_planned decision scratch, reused across chunks and repeats *)
  mutable sc_codes : int array; (* distinct elt -> nested keep-level code *)
  mutable sc_inm : bool array; (* distinct set -> in set sample M *)
  mutable st_elem_sampler_evals : int;
  mutable st_set_sampler_evals : int;
  mutable st_pairs_stored : int; (* monotone, unlike stored_pairs *)
}

let create (params : Params.t) ~seed =
  let p = params in
  let g_max = Mkc_hashing.Hash_family.ceil_log2 (max 1 (int_of_float (ceil p.Params.alpha))) in
  let guesses = g_max + 1 in
  let budget =
    max 1 (min p.k (int_of_float (ceil (4.0 *. float_of_int p.k /. p.alpha))))
  in
  (* Element rate for guess g: 16·γ_g·k / (α·u); the nested sampler's
     level 0 carries the finest guess γ = 2^-g_max. *)
  let rate_of_gamma gamma = min 1.0 (64.0 *. gamma *. float_of_int p.k /. (p.alpha *. float_of_int p.u)) in
  let base_rate = rate_of_gamma (Float.pow 2.0 (-.float_of_int g_max)) in
  let set_rate = min 1.0 (2.0 /. p.alpha) in
  let cap =
    (* Lemma 4.21 bounds the stored sub-instance by Õ(m/α²); the
       practical profile instantiates the polylog as 16·log2(mn). *)
    let m_over_a2 = Mkc_hashing.Hash_family.ceil_div p.m (max 1 (int_of_float (p.alpha *. p.alpha))) in
    max 1024 (int_of_float (16.0 *. float_of_int m_over_a2 *. Params.log2f (p.m * max 1 p.n)))
  in
  let mk_repeat r =
    let sd = Mkc_hashing.Splitmix.fork seed r in
    {
      elem_sampler =
        Mkc_sketch.Sampler.Nested.create ~base_rate ~levels:guesses ~indep:p.indep
          ~seed:(Mkc_hashing.Splitmix.fork sd 0);
      set_sampler =
        (if set_rate >= 1.0 then None
         else
           Some
             (Mkc_sketch.Sampler.Bernoulli.create ~rate:set_rate ~indep:p.indep
                ~seed:(Mkc_hashing.Splitmix.fork sd 1)));
      instances =
        Array.init guesses (fun g ->
            { gamma_exp = g; repeat = r; store = Hashtbl.create 64; pairs = 0; dead = false });
      elem_memo = Mkc_sketch.Sampler.Memo.create ~slots:(min (max 16 p.Params.u) 65536);
      set_memo = Mkc_sketch.Sampler.Memo.create ~slots:(min p.Params.m 65536);
    }
  in
  {
    params;
    guesses;
    budget;
    base_rate;
    cap;
    repeats = Array.init p.oracle_repeats mk_repeat;
    sc_codes = [||];
    sc_inm = [||];
    st_elem_sampler_evals = 0;
    st_set_sampler_evals = 0;
    st_pairs_stored = 0;
  }

let in_m t rs set =
  match rs.set_sampler with
  | None -> true
  | Some s ->
      t.st_set_sampler_evals <- t.st_set_sampler_evals + 1;
      Mkc_sketch.Sampler.Bernoulli.keep s set

let add_pair t inst set elt =
  if not inst.dead then begin
    (match Hashtbl.find_opt inst.store set with
    | Some members -> members := elt :: !members
    | None -> Hashtbl.replace inst.store set (ref [ elt ]));
    inst.pairs <- inst.pairs + 1;
    t.st_pairs_stored <- t.st_pairs_stored + 1;
    if inst.pairs > t.cap then begin
      inst.dead <- true;
      Hashtbl.reset inst.store;
      inst.pairs <- 0
    end
  end

(* Turnstile deletion: drop the most recent stored occurrence of
   (set, elt), if any.  Member lists are latest-first, so the first
   match is the latest insert; an emptied list removes its store entry
   outright, leaving the store exactly as if that insert never
   happened.  Sampling decisions are pure hashes of (set, elt), so a
   deletion passes the same filters its insertion did and lands on the
   same instances.  [st_pairs_stored] is the monotone work counter —
   deletions leave it alone.  A dead (capped) instance stays dead. *)
let remove_pair inst set elt =
  if not inst.dead then
    match Hashtbl.find_opt inst.store set with
    | None -> ()
    | Some members -> (
        let rec rm = function
          | [] -> raise Not_found
          | x :: tl -> if x = elt then tl else x :: rm tl
        in
        match rm !members with
        | [] ->
            Hashtbl.remove inst.store set;
            inst.pairs <- inst.pairs - 1
        | l ->
            members := l;
            inst.pairs <- inst.pairs - 1
        | exception Not_found -> ())

let feed_repeat t rs (e : Mkc_stream.Edge.t) =
  t.st_elem_sampler_evals <- t.st_elem_sampler_evals + 1;
  let min_lvl = Mkc_sketch.Sampler.Nested.min_keep_level_code rs.elem_sampler e.elt in
  if min_lvl >= 0 && in_m t rs e.set then begin
    (* Element survives at levels >= min_lvl, i.e. guesses
       g <= (guesses - 1) - min_lvl. *)
    let top_guess = t.guesses - 1 - min_lvl in
    if e.sign > 0 then
      for g = 0 to top_guess do
        add_pair t rs.instances.(g) e.set e.elt
      done
    else
      for g = 0 to top_guess do
        remove_pair rs.instances.(g) e.set e.elt
      done
  end

let feed t e = Array.iter (fun rs -> feed_repeat t rs e) t.repeats

let feed_batch t edges ~pos ~len =
  (* Repeat-outer chunked ingestion; per-repeat edge order unchanged. *)
  let stop = pos + len - 1 in
  Array.iter
    (fun rs ->
      for i = pos to stop do
        feed_repeat t rs (Array.unsafe_get edges i)
      done)
    t.repeats

let feed_planned t plan ~red edges ~pos ~len =
  (* Chunk-deduplicated path: nested element decisions once per distinct
     (reduced) element, set-sample membership once per distinct set —
     both served from cross-chunk memo caches — then an in-order replay,
     so add_pair sequences (hence cap/termination points) are exactly
     the per-edge ones.  Eval counters charge the full ne/ns per chunk
     (decision consumptions, not hash evaluations), independent of
     cache warmth. *)
  let ns = Mkc_stream.Chunk_plan.num_sets plan in
  let ne = Mkc_stream.Chunk_plan.num_elts plan in
  if Array.length t.sc_codes < ne then
    t.sc_codes <- Array.make (max ne (2 * Array.length t.sc_codes)) 0;
  if Array.length t.sc_inm < ns then
    t.sc_inm <- Array.make (max ns (2 * Array.length t.sc_inm)) false;
  let codes = t.sc_codes and inm = t.sc_inm in
  let sets = Mkc_stream.Chunk_plan.sets plan in
  let set_idx = Mkc_stream.Chunk_plan.set_index plan in
  let elt_idx = Mkc_stream.Chunk_plan.elt_index plan in
  Array.iter
    (fun rs ->
      t.st_elem_sampler_evals <- t.st_elem_sampler_evals + ne;
      (let memo = rs.elem_memo and s = rs.elem_sampler in
       for j = 0 to ne - 1 do
         let x = Array.unsafe_get red j in
         let v = Mkc_sketch.Sampler.Memo.find memo x in
         if v <> Mkc_sketch.Sampler.Memo.absent then Array.unsafe_set codes j v
         else begin
           let c = Mkc_sketch.Sampler.Nested.min_keep_level_code s x in
           Mkc_sketch.Sampler.Memo.store memo x c;
           Array.unsafe_set codes j c
         end
       done);
      (match rs.set_sampler with
      | None -> Array.fill inm 0 ns true
      | Some s ->
          t.st_set_sampler_evals <- t.st_set_sampler_evals + ns;
          let memo = rs.set_memo in
          for j = 0 to ns - 1 do
            let x = Array.unsafe_get sets j in
            let v = Mkc_sketch.Sampler.Memo.find memo x in
            if v >= 0 then Array.unsafe_set inm j (v = 1)
            else begin
              let b = Mkc_sketch.Sampler.Bernoulli.keep s x in
              Mkc_sketch.Sampler.Memo.store memo x (if b then 1 else 0);
              Array.unsafe_set inm j b
            end
          done);
      for i = 0 to len - 1 do
        let ej = Array.unsafe_get elt_idx i in
        let min_lvl = Array.unsafe_get codes ej in
        if min_lvl >= 0 then begin
          let sj = Array.unsafe_get set_idx i in
          if Array.unsafe_get inm sj then begin
            let set = Array.unsafe_get sets sj and elt = Array.unsafe_get red ej in
            let top_guess = t.guesses - 1 - min_lvl in
            if (Array.unsafe_get edges (pos + i)).Mkc_stream.Edge.sign > 0 then
              for g = 0 to top_guess do
                add_pair t rs.instances.(g) set elt
              done
            else
              for g = 0 to top_guess do
                remove_pair rs.instances.(g) set elt
              done
          end
        end
      done)
    t.repeats

let elem_rate t gamma_exp =
  (* level index of guess g is (guesses - 1) - g *)
  float_of_int (1 lsl (t.guesses - 1 - gamma_exp)) *. t.base_rate
  |> min 1.0

let solve t (inst : instance) =
  if inst.dead || Hashtbl.length inst.store = 0 then None
  else begin
    let sets =
      Hashtbl.fold (fun id members acc -> (id, Array.of_list !members) :: acc) inst.store []
      (* Sorted by set id: greedy breaks coverage ties by candidate
         order, so the order fed in must be canonical, not the store's
         layout order (a restored store has a different layout). *)
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let res = Mkc_coverage.Greedy.run_on_subsets ~n:t.params.Params.u ~sets ~k:t.budget in
    (* Figure 5's acceptance filter: sol must be Ω̃(k/α) on the sample,
       otherwise scaling up would manufacture coverage out of noise
       (Lemma 4.23). *)
    if res.coverage >= max 16 (2 * t.budget) then
      let rate = elem_rate t inst.gamma_exp in
      (* Conservative 1/2 scale: greedy maximizes over sampled
         intersections, so the naive inverse-rate scale-up is biased
         upward (the oracle must not overestimate, Lemma 4.23). *)
      let witness () =
        (* The ESTIMATE is tied to the analyzed budget κ, but the
           reporting budget is k (Theorem 3.2's +k term): extend greedy
           on the stored sub-instance up to k sets — extra picks can
           only increase the reported cover's true coverage. *)
        (Mkc_coverage.Greedy.run_on_subsets ~n:t.params.Params.u ~sets ~k:t.params.Params.k)
          .chosen
      in
      Some
        {
          Solution.estimate = 0.5 *. float_of_int res.coverage /. rate;
          witness;
          provenance = Solution.Small_set { gamma_exp = inst.gamma_exp; repeat = inst.repeat };
        }
    else None
  end

let finalize t =
  (* Per guess γ, average the accepted repeats (maximizing over noisy
     scaled values would bias upward); then take the best guess. *)
  let best = ref None in
  for g = 0 to t.guesses - 1 do
    let accepted =
      Array.to_list t.repeats |> List.filter_map (fun rs -> solve t rs.instances.(g))
    in
    match accepted with
    | [] -> ()
    | outs ->
        let mean =
          List.fold_left (fun a (o : Solution.outcome) -> a +. o.estimate) 0.0 outs
          /. float_of_int (List.length outs)
        in
        let top =
          List.fold_left
            (fun acc (o : Solution.outcome) ->
              match acc with
              | Some (b : Solution.outcome) when b.estimate >= o.estimate -> acc
              | _ -> Some o)
            None outs
        in
        (match top with
        | Some o ->
            let cand = { o with Solution.estimate = mean } in
            (match !best with
            | Some (b : Solution.outcome) when b.estimate >= mean -> ()
            | _ -> best := Some cand)
        | None -> ())
  done;
  !best

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode_instance inst =
  let store =
    Hashtbl.fold (fun id members acc -> (id, !members) :: acc) inst.store []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (id, members) ->
           (* Members serialize verbatim (latest-first, as stored) so a
              restored instance is list-for-list identical. *)
           Json.Array [ Json.Int id; Ck.J.int_array (Array.of_list members) ])
  in
  Json.Object
    [
      ("pairs", Json.Int inst.pairs);
      ("dead", Json.Bool inst.dead);
      ("store", Json.Array store);
    ]

let ( let* ) = Result.bind

let restore_instance inst j =
  let* pairs = Ck.J.int_field "pairs" j in
  let* dead =
    let* v = Ck.J.field "dead" j in
    match v with Json.Bool b -> Ok b | _ -> Ck.J.err "field \"dead\" is not a bool"
  in
  let* store = Ck.J.list_field "store" j in
  Hashtbl.reset inst.store;
  let* () =
    Ck.J.map_result
      (fun entry ->
        match Json.to_list entry with
        | Some [ id; members ] ->
            let* id = Ck.J.to_int id in
            let* members = Ck.J.to_int_array members in
            Hashtbl.replace inst.store id (ref (Array.to_list members));
            Ok ()
        | _ -> Ck.J.err "expected [set, members] store entry")
      store
    |> Result.map (fun (_ : unit list) -> ())
  in
  inst.pairs <- pairs;
  inst.dead <- dead;
  Ok ()

let encode t =
  Json.Object
    [
      ( "repeats",
        Json.Array
          (Array.to_list
             (Array.map
                (fun rs ->
                  Json.Array (Array.to_list (Array.map encode_instance rs.instances)))
                t.repeats)) );
      ( "stats",
        Json.Object
          [
            ("elem_sampler_evals", Json.Int t.st_elem_sampler_evals);
            ("set_sampler_evals", Json.Int t.st_set_sampler_evals);
            ("pairs_stored", Json.Int t.st_pairs_stored);
          ] );
    ]

let restore t j =
  let* reps = Ck.J.list_field "repeats" j in
  let* () =
    if List.length reps <> Array.length t.repeats then
      Ck.J.err "small_set: expected %d repeats, got %d" (Array.length t.repeats)
        (List.length reps)
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (r, rj) ->
        let* () = acc in
        match Json.to_list rj with
        | Some insts when List.length insts = t.guesses ->
            List.fold_left
              (fun acc (g, ij) ->
                let* () = acc in
                match restore_instance t.repeats.(r).instances.(g) ij with
                | Ok () -> Ok ()
                | Error e -> Ck.J.err "small_set repeat %d guess %d: %s" r g e)
              (Ok ())
              (List.mapi (fun g ij -> (g, ij)) insts)
        | _ -> Ck.J.err "small_set repeat %d: expected %d instances" r t.guesses)
      (Ok ())
      (List.mapi (fun r rj -> (r, rj)) reps)
  in
  let* sj = Ck.J.field "stats" j in
  let* ese = Ck.J.int_field "elem_sampler_evals" sj in
  let* sse = Ck.J.int_field "set_sampler_evals" sj in
  let* ps = Ck.J.int_field "pairs_stored" sj in
  t.st_elem_sampler_evals <- ese;
  t.st_set_sampler_evals <- sse;
  t.st_pairs_stored <- ps;
  Ok ()

(* Merging a stored sub-instance: sampling decisions are pure hashes
   (same seeds both sides), so shard stores are disjoint-in-time slices
   of the single-stream store.  Member lists are latest-first, so the
   later shard's list is prepended; the pair count is monotone until
   death, so summed pairs exceeding the cap reproduces the single-run
   termination exactly. *)
let merge_instance t dst src =
  if src.dead || dst.dead then begin
    dst.dead <- true;
    Hashtbl.reset dst.store;
    dst.pairs <- 0
  end
  else begin
    Hashtbl.fold (fun id members acc -> (id, !members) :: acc) src.store []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (id, members) ->
           match Hashtbl.find_opt dst.store id with
           | Some existing -> existing := members @ !existing
           | None -> Hashtbl.replace dst.store id (ref members));
    dst.pairs <- dst.pairs + src.pairs;
    if dst.pairs > t.cap then begin
      dst.dead <- true;
      Hashtbl.reset dst.store;
      dst.pairs <- 0
    end
  end

let merge_into ~dst src =
  Array.iteri
    (fun r (srs : repeat_state) ->
      Array.iteri
        (fun g inst -> merge_instance dst dst.repeats.(r).instances.(g) inst)
        srs.instances)
    src.repeats;
  dst.st_elem_sampler_evals <- dst.st_elem_sampler_evals + src.st_elem_sampler_evals;
  dst.st_set_sampler_evals <- dst.st_set_sampler_evals + src.st_set_sampler_evals;
  dst.st_pairs_stored <- dst.st_pairs_stored + src.st_pairs_stored

let stored_pairs t =
  Array.fold_left
    (fun acc rs -> Array.fold_left (fun acc inst -> acc + inst.pairs) acc rs.instances)
    0 t.repeats

let budget t = t.budget
let cap t = t.cap

let words_breakdown t =
  let samplers = ref 0 and store = ref 0 in
  Array.iter
    (fun rs ->
      samplers :=
        !samplers
        + Mkc_sketch.Sampler.Nested.words rs.elem_sampler
        + (match rs.set_sampler with None -> 0 | Some s -> Mkc_sketch.Sampler.Bernoulli.words s);
      store :=
        !store
        + Array.fold_left
            (fun acc inst -> acc + (2 * inst.pairs) + Hashtbl.length inst.store)
            0 rs.instances)
    t.repeats;
  [ ("samplers", !samplers); ("store", !store) ]

let words t = List.fold_left (fun acc (_, w) -> acc + w) 0 (words_breakdown t)

let dead_instances t =
  Array.fold_left
    (fun acc rs ->
      Array.fold_left (fun acc inst -> if inst.dead then acc + 1 else acc) acc rs.instances)
    0 t.repeats

let stats t =
  [
    ("elem_sampler_evals", t.st_elem_sampler_evals);
    ("set_sampler_evals", t.st_set_sampler_evals);
    ("pairs_stored", t.st_pairs_stored);
    ("dead_instances", dead_instances t);
  ]
