let int_array a = Array.length a
let float_array a = Array.length a
let hashtbl h ~entry_words = Hashtbl.length h * entry_words

let pp_bytes ppf words =
  Format.fprintf ppf "%d words (%.1f KiB)" words (float_of_int words *. 8.0 /. 1024.0)

module Budget = struct
  type t = {
    budget : int;
    strict : bool;
    mutable peak : int;
    mutable samples : int;
    mutable overshoots : int;
  }

  exception Exceeded of { budget : int; words : int }

  let create ?(strict = false) budget =
    if budget <= 0 then invalid_arg "Space.Budget.create: budget must be positive";
    { budget; strict; peak = 0; samples = 0; overshoots = 0 }

  let observe t words =
    t.samples <- t.samples + 1;
    if words > t.peak then t.peak <- words;
    if words > t.budget then begin
      (* count the overshoot before raising so a caught [Exceeded]
         still leaves an accurate record for the snapshot *)
      t.overshoots <- t.overshoots + 1;
      if t.strict then raise (Exceeded { budget = t.budget; words })
    end

  let budget t = t.budget
  let strict t = t.strict
  let peak t = t.peak
  let samples t = t.samples
  let overshoots t = t.overshoots

  let headroom t =
    if t.budget <= 0 then 0.0 else float_of_int t.peak /. float_of_int t.budget
end
