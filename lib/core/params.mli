(** Algorithm parameters (Table 2 of the paper) and the
    paper-vs-practical profile switch.

    The paper's constants are chosen for the asymptotic proofs — e.g.
    [t = 5000 log²(mn)/s] and [σ = 1/(2500 log²(mn))] — and make every
    threshold vacuous at laptop scale (σ|U|/α < 1 already for n = 10^5).
    Experiment E9 ablates them.  The [Practical] profile keeps every
    {e formula} but replaces the galactic constants and polylog factors
    with small calibrated ones; the [Paper] profile instantiates
    Table 2 literally.  All downstream modules read ONLY this record,
    so the two profiles exercise identical code paths. *)

type profile = Paper | Practical

type t = {
  m : int;  (** number of sets in the stream *)
  n : int;  (** size of the original ground set *)
  u : int;  (** size of the current (possibly reduced) universe; starts at [n] *)
  k : int;  (** cover budget *)
  alpha : float;  (** target approximation factor *)
  profile : profile;
  eta : float;  (** promised coverage fraction reciprocal, Table 2: η = 4 *)
  w : int;  (** superset size bound, Table 2: w = min\{k, α\} *)
  s : float;  (** large-set contribution scale, Table 2 *)
  f : float;  (** per-superset duplication bound, Table 2: f = 7 log(mn) *)
  sigma : float;  (** common-element mass threshold, Table 2 *)
  t_elem : float;  (** element-sampling rate multiplier, Table 2 *)
  indep : int;  (** Θ(log(mn)) hash independence (footnote 6) *)
  oracle_repeats : int;  (** O(log n) parallel repeats inside LargeSet/SmallSet *)
  z_repeats : int;  (** log(1/δ) repeats per coverage guess in Figure 1 *)
  accept_factor : float;
      (** Figure 1 accepts a guess-z estimate iff [est_z ≥ z / (accept_factor · α)].
          The paper's value 4 assumes its polylog-sized oracle constants; the
          practical profile relaxes it to keep the accept test consistent with
          the practical subroutine constants. *)
  z_stride : int;
      (** Figure 1 guesses z over powers of [2^z_stride] (1 = the paper's
          every-power-of-two ladder; the practical profile uses 2, costing at
          most another factor 2 in guess granularity — absorbed by Õ(α)). *)
  base_seed : int;
}

val make :
  m:int -> n:int -> k:int -> alpha:float -> ?profile:profile -> ?seed:int -> unit -> t
(** Validates [1 <= k <= m], [alpha >= 1], [n >= 1] and derives every
    Table 2 quantity for the chosen profile (default [Practical]). *)

val with_universe : t -> int -> t
(** The same parameterization over a reduced universe of the given size
    (used by Figure 1 when handing the oracle a hashed ground set). *)

val s_alpha : t -> float
(** [s·α], the reciprocal contribution threshold defining OPT_large
    (Definition 4.2): a set is "large" if it contributes at least
    [z/(s·α)] to the optimal coverage. *)

val log2f : int -> float
(** [max 1. (log2 x)] — the polylog building block used by both
    profiles. *)

val encode : t -> Mkc_obs.Json.t
(** The make-inputs (m, n, u, k, alpha, profile, seed) as JSON — what a
    checkpoint embeds so a sink can be re-created from the file alone.
    Derived quantities are intentionally omitted: they are re-derived on
    decode. *)

val of_json : Mkc_obs.Json.t -> (t, string) result
(** Inverse of {!encode}: re-runs {!make} (so validation applies) and
    restores the reduced universe. *)

val same_instance : t -> t -> bool
(** Equality of the make-inputs — whether two parameterizations denote
    the same derived instance (and hence the same hash functions). *)

val pp : Format.formatter -> t -> unit
