(** Results returned by the streaming algorithms, with provenance.

    Estimation (Theorem 3.1) needs only [estimate]; reporting
    (Theorem 3.2) additionally materializes a witness k-cover.  Witness
    set ids are produced lazily by a closure: every subroutine's witness
    is a preimage of a stored hash seed (e.g. [{S : h(S) = i*}] for the
    winning superset), so ids are recomputable after the pass in O(k)
    output space without revisiting the stream. *)

type provenance =
  | Trivial  (** the [kα ≥ m] branch of Figure 1 *)
  | Large_common of { beta : int }  (** Figure 3, winning sampling level β *)
  | Large_set of { superset : int; repeat : int; via_l0_fallback : bool }
      (** Figures 4/6/7, winning superset index *)
  | Small_set of { gamma_exp : int; repeat : int }
      (** Figure 5, winning coverage-scale guess γ = 2^-gamma_exp *)

type outcome = {
  estimate : float;  (** estimated optimal coverage (universe of the caller) *)
  witness : unit -> int list;  (** ids of a cover achieving Ω̃(estimate) *)
  provenance : provenance;
}

val best : outcome option list -> outcome option
(** The outcome with the largest estimate, [None] if all are [None]. *)

val provenance_key : provenance -> string
(** Stable metric-name key of the winning subroutine:
    ["trivial" | "large_common" | "large_set" | "small_set"]. *)

val pp_provenance : Format.formatter -> provenance -> unit
val pp : Format.formatter -> outcome -> unit
