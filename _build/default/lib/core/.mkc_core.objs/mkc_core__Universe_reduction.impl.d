lib/core/universe_reduction.ml: Array Hashtbl Mkc_hashing Mkc_stream
