lib/hashing/prime_field.mli:
