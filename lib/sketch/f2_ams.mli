(** AMS "tug-of-war" second-moment (F2) estimator (Alon–Matias–Szegedy
    [5]).

    Maintains [groups × per_group] counters [c = Σ_i s(i)·a\[i\]] with
    4-wise independent sign hashes [s]; [c²] is an unbiased estimator of
    F2 with variance ≤ 2·F2², so the median over groups of means within
    groups gives a (1 ± ε)-approximation.  Used wherever the analysis
    refers to [F2(v)] of the superset-size vector (Section 4.2), and to
    cross-check the F2 estimate embedded in {!Count_sketch}. *)

type t

val create : ?groups:int -> ?per_group:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t
(** Defaults: 5 groups of 16 counters (ε ≈ 1/2 w.h.p.). *)

val add : t -> int -> int -> unit
(** [add t i delta] processes an update [a(i) <- a(i) + delta]. *)

val add_batch : t -> int array -> pos:int -> len:int -> delta:int -> unit
(** [add_batch t ids ~pos ~len ~delta] ≡ [add t ids.(i) delta] for
    [i ∈ \[pos, pos+len)], restructured counter-outer so each counter
    is read and written once per chunk. *)

val estimate : t -> float
val words : t -> int

val dump : t -> int array
(** Copy of the counter vector — the sketch's whole mutable state. *)

val load_state : t -> int array -> (unit, string) result
(** Overlay a dumped counter vector onto a sketch of the same shape. *)

val merge_into : dst:t -> t -> unit
(** Pointwise counter addition (the sketch is linear); both sides must
    share shape and seed.  @raise Invalid_argument on shape mismatch. *)
