(** Unstructured random set systems. *)

val uniform :
  n:int -> m:int -> set_size:int -> seed:int -> Mkc_stream.Set_system.t
(** Each of the [m] sets draws [set_size] elements uniformly (with
    replacement; duplicates collapse). *)

val zipf_sizes :
  n:int -> m:int -> max_size:int -> skew:float -> seed:int -> Mkc_stream.Set_system.t
(** Set sizes follow a Zipf law over [\[1, max_size\]]; elements are
    drawn from a Zipf law over the ground set, producing both skewed
    set sizes and skewed element frequencies. *)
