(** d-wise independent polynomial hash families (Definition A.1,
    Lemma A.2).

    A hash function is a uniformly random polynomial of degree [d - 1]
    over GF(2^61 - 1); evaluated at distinct points of the domain it is
    exactly [d]-wise independent.  Storage is [d] field elements, i.e.
    [O(d log(mn))] bits as in Lemma A.2.

    Two output conventions are provided:
    - {!hash} maps to a range [\[0, r)] by reducing the field value mod
      [r] (bias at most [r / p], negligible for the ranges used here);
    - {!keep} implements the "maps to one" idiom used by the paper's
      set/element sampling: an item survives with probability [1 / r]. *)

type t

val create : indep:int -> range:int -> seed:Splitmix.t -> t
(** [create ~indep ~range ~seed] draws a fresh function from the
    [indep]-wise independent family with outputs in [\[0, range)].
    [indep >= 1], [range >= 1]. *)

val hash : t -> int -> int
(** [hash t x] evaluates the polynomial at [x] and reduces to the range.
    [x] may be any non-negative int below 2^61 - 1. *)

val field_value : t -> int -> int
(** The raw field evaluation in [\[0, 2^61 - 1)], before range
    reduction. Useful when full-width hash values are needed (e.g. KMV). *)

val keep : t -> int -> bool
(** [keep t x] is [hash t x = 0]: true with probability [1 / range].
    This is the paper's "if h(S) = 1" subsampling test. *)

val hash_batch : t -> int array -> pos:int -> len:int -> int array -> unit
(** [hash_batch t xs ~pos ~len out] writes [hash t xs.(pos + j)] into
    [out.(j)] for [j < len] — coefficient-major Horner: the coefficient
    vector is streamed once with the whole block as the inner loop, so
    hashing a block of [len] distinct values costs [d] coefficient loads
    total rather than [d·len].  Outputs are bit-for-bit equal to
    per-call {!hash} (same arithmetic per element, different loop
    nesting).  Scratch is internal and reused; only [out.(0..len-1)] is
    written. *)

val range : t -> int
(** The output range [r]. *)

val indep : t -> int
(** The independence parameter [d]. *)

val words : t -> int
(** Number of 64-bit words of state (the coefficient vector), for space
    accounting. *)
