lib/sketch/f2_ams.mli: Mkc_hashing
