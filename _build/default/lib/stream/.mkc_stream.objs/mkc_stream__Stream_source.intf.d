lib/stream/stream_source.mli: Edge Set_system
