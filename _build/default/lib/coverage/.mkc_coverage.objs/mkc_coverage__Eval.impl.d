lib/coverage/eval.ml: Mkc_stream
