(** Evaluation helpers shared by tests and benches. *)

val ratio : opt:int -> achieved:int -> float
(** [opt / achieved] as a float — the approximation factor of an
    estimate or a reported cover ([infinity] if [achieved <= 0]). *)

val within_factor : opt:int -> achieved:float -> factor:float -> bool
(** True iff [achieved] lies in [\[opt / factor, opt · slack\]] with a
    1.01 upward slack (estimates are allowed to exceed OPT only by
    rounding noise). *)

val coverage_of : Mkc_stream.Set_system.t -> int list -> int
(** Exact coverage of a reported selection (delegates to
    {!Mkc_stream.Set_system.coverage}). *)
