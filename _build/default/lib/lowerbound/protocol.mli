(** One-way communication protocol simulation (Section 5).

    In the reduction, player [i] runs the streaming algorithm over its
    own pairs and forwards the algorithm's memory state to player
    [i+1]; the message size IS the algorithm's space.  This module
    plays that game with an arbitrary streaming distinguisher and
    reports whether it solves the promise problem, together with the
    simulated message size — the empirical side of Theorem 3.3: a
    correct α-approximate estimator must carry Ω(m/α²) words across
    player boundaries. *)

type verdict = Declares_yes | Declares_no

type distinguisher = {
  feed : Mkc_stream.Edge.t -> unit;
  decide : unit -> verdict;
  space : unit -> int;  (** words carried between players *)
}

type outcome = {
  correct : bool;
  message_words : int;  (** maximum state size at any player boundary *)
}

val play : Disjointness.t -> (unit -> distinguisher) -> outcome
(** Streams the players' pairs in speaking order through a fresh
    distinguisher, recording the state's word count at each of the
    [r - 1] hand-offs. *)

val coverage_distinguisher :
  m:int ->
  alpha:float ->
  ?profile:Mkc_core.Params.profile ->
  seed:int ->
  unit ->
  unit ->
  distinguisher
(** A distinguisher wrapping the paper's own estimator
    ({!Mkc_core.Estimate} with k = 1) on the reduced Max 1-Cover
    instance: declare No iff the estimate is above [max(2.5, α/4)].  A No
    instance (OPT = α, Claim 5.3) yields an estimate ≥ (2/(3f))·α ≈ α/3
    under the practical profile, while a Yes instance (OPT = 1,
    Claim 5.4) stays at the quantization floor (≤ ~2); the threshold
    sits between the two signals, which separate once α ≳ 8.  Note the estimator must be created knowing m and the
    number of players (= n of the coverage instance ≈ α). *)

val linf_distinguisher :
  ?phi_scale:float -> m:int -> alpha:float -> seed:int -> unit -> distinguisher
(** The distinguisher sketched in the paper's "Lower bound" paragraph
    (§1): an α-approximation of the L∞ norm of the vector counting, per
    set, how many players own it.  In a No instance one coordinate
    reaches α while all others stay at 1, so it is an
    [α²/(m + α²)]-heavy hitter of F2 and an {!Mkc_sketch.F2_heavy_hitter}
    of width O(m/α²) finds it — the matching upper bound that inspired
    the algorithm.  Declares No iff some candidate's estimated frequency
    exceeds α/2.

    [phi_scale] (default 1.0) multiplies the heavy-hitter threshold φ,
    shrinking both the CountSketch and the candidate tracker by that
    factor; the E8 bench raises it to probe the tightness frontier —
    once the state drops to o(m/α²) words the distinguisher must start
    failing, which is Theorem 3.3 observed from the algorithmic side. *)

val exact_distinguisher : m:int -> r:int -> unit -> distinguisher
(** A full-memory reference distinguisher (stores per-set cardinalities,
    Θ(m) words): declares No iff some set reaches cardinality [r].
    Always correct; anchors the space axis of the E8 bench. *)
