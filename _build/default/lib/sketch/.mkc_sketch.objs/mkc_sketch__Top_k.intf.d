lib/sketch/top_k.mli:
