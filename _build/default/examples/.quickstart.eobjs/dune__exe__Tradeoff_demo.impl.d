examples/tradeoff_demo.ml: Array Float Format List Mkc_core Mkc_stream Mkc_workload
