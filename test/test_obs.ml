(* Tests for Mkc_obs and the Sink.Observed instrumentation layer.

   The load-bearing claims:
     1. the Metric merge algebra is a commutative monoid, so per-domain
        shard merges equal a single sequential history;
     2. a Registry populated from several domains reads back exactly
        what the same writes from one domain would have produced;
     3. wrapping a sink in Sink.Observed changes nothing about the
        computation — same result, same words, same breakdown — and the
        profile's final point equals words_breakdown exactly;
     4. run_parallel and sequential ingestion agree metric-for-metric
        on the invariant counters;
     5. the mkc-obs/4 JSON snapshot is byte-stable under an injected
        clock and survives a parse→validate round trip, while tampered
        snapshots are rejected; legacy mkc-obs/1 through mkc-obs/3
        snapshots still load (read-only) and re-emit byte-identically;
     6. the Prometheus exposition handles hostile metric names and
        non-finite gauge values, and bucket counts stay monotone under
        histogram merges. *)

module Edge = Mkc_stream.Edge
module Ss = Mkc_stream.Set_system
module Src = Mkc_stream.Stream_source
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module P = Mkc_core.Params
module E = Mkc_core.Estimate
module Obs = Mkc_obs
module H = Mkc_obs.Metric.Histogram

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let instance () =
  let n = 512 and m = 128 and k = 4 and seed = 3 in
  let pl = Mkc_workload.Planted.few_large ~n ~m ~k ~seed in
  let sys = pl.Mkc_workload.Planted.system in
  let src = Src.of_array (Ss.edge_stream ~seed:(seed + 7) sys) in
  (src, P.make ~m ~n ~k ~alpha:4.0 ~seed ())

let fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

(* Compare histograms on their meaningful fields (vmin/vmax are
   unspecified at count = 0). *)
let hist_eq (a : H.t) (b : H.t) =
  a.H.count = b.H.count
  && a.H.sum = b.H.sum
  && a.H.buckets = b.H.buckets
  && (a.H.count = 0 || (a.H.vmin = b.H.vmin && a.H.vmax = b.H.vmax))

let hist_of values =
  let h = H.create () in
  List.iter (H.record h) values;
  h

(* Run [f] with metrics enabled, then restore the disabled default and
   drop any retained spans no matter how [f] exits. *)
let with_metrics f =
  Obs.Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Registry.set_enabled false;
      Obs.Span.clear ())
    f

(* --- Metric merge algebra --- *)

let test_merge_scalars () =
  checki "counters merge by sum" 7 (Obs.Metric.merge_counter 3 4);
  checkb "sum gauge" true (Obs.Metric.merge_gauge `Sum 1.5 2.5 = 4.0);
  checkb "max gauge" true (Obs.Metric.merge_gauge `Max 1.5 2.5 = 2.5);
  checkb "max gauge commutes" true (Obs.Metric.merge_gauge `Max 2.5 1.5 = 2.5)

let test_histogram_buckets () =
  checki "negatives clamp to bucket 0" 0 (H.bucket_of (-5));
  checki "values below 16 get exact buckets" 3 (H.bucket_of 3);
  checki "the layouts agree on the seam: 31 is bucket 31" 31 (H.bucket_of 31);
  checki "octave 2 halves resolution: 33 shares bucket 32" 32 (H.bucket_of 33);
  checki "1024 lands at its octave base" 112 (H.bucket_of 1024);
  checki "bucket bound is the largest value mapping there" 1087
    (H.bound_of_bucket 112);
  let h = hist_of [ 1; 3; 3; 1024 ] in
  checkb "nonzero buckets" true
    (H.nonzero_buckets h = [ (1, 1); (3, 2); (112, 1) ]);
  checki "median is exact below 16" 3 (H.quantile h 0.5);
  checki "top quantile capped at the observed max" 1024 (H.quantile h 1.0);
  checki "empty quantile is 0" 0 (H.quantile (H.create ()) 0.5)

let test_histogram_monoid () =
  let xs = [ 1; 2; 3 ] and ys = [ 4; 100 ] and zs = [ 7 ] in
  let a () = hist_of xs and b () = hist_of ys and c () = hist_of zs in
  let zero () = H.create () in
  checkb "left identity" true (hist_eq (H.merge (zero ()) (a ())) (a ()));
  checkb "right identity" true (hist_eq (H.merge (a ()) (zero ())) (a ()));
  checkb "commutative" true
    (hist_eq (H.merge (a ()) (b ())) (H.merge (b ()) (a ())));
  checkb "associative" true
    (hist_eq
       (H.merge (H.merge (a ()) (b ())) (c ()))
       (H.merge (a ()) (H.merge (b ()) (c ()))));
  checkb "merge equals one sequential history" true
    (hist_eq (H.merge (a ()) (b ())) (hist_of (xs @ ys)));
  let dst = a () in
  H.merge_into ~dst (b ());
  checkb "merge_into agrees with merge" true (hist_eq dst (hist_of (xs @ ys)))

(* --- Registry: sharded writes merge to the sequential answer --- *)

let test_registry_disabled_noop () =
  let r = Obs.Registry.create () in
  checkb "switch starts off" true (not (Obs.Registry.enabled ()));
  let c = Obs.Registry.counter r "c" in
  Obs.Registry.add c 5;
  Obs.Registry.incr c;
  checkb "writes while disabled are dropped" true
    (Obs.Registry.read r "c" = Some (Obs.Registry.Counter 0));
  checkb "unregistered name reads None" true (Obs.Registry.read r "nope" = None)

let test_registry_domain_merge () =
  with_metrics (fun () ->
      (* The same write sequence, once from three spawned domains and
         once from this domain alone, must read back identically for
         counters and histograms (order-insensitive merges). *)
      let ops = [ (1, 2.0); (2, 16.0); (3, 5.0) ] in
      let par = Obs.Registry.create () in
      List.map
        (fun (inc, obs) ->
          Domain.spawn (fun () ->
              Obs.Registry.add (Obs.Registry.counter par "c") inc;
              Obs.Registry.observe (Obs.Registry.histogram par "h") obs))
        ops
      |> List.iter Domain.join;
      let seq = Obs.Registry.create () in
      List.iter
        (fun (inc, obs) ->
          Obs.Registry.add (Obs.Registry.counter seq "c") inc;
          Obs.Registry.observe (Obs.Registry.histogram seq "h") obs)
        ops;
      checkb "sharded dump = sequential dump" true
        (Obs.Registry.dump par = Obs.Registry.dump seq);
      (* Gauges merge by their registered mode across domains. *)
      let g = Obs.Registry.create () in
      List.map
        (fun v ->
          Domain.spawn (fun () ->
              Obs.Registry.set (Obs.Registry.gauge ~mode:`Sum g "busy") v;
              Obs.Registry.set (Obs.Registry.gauge ~mode:`Max g "peak") v))
        [ 1.0; 2.0; 3.0 ]
      |> List.iter Domain.join;
      checkb "sum gauge adds across domains" true
        (Obs.Registry.read g "busy" = Some (Obs.Registry.Gauge 6.0));
      checkb "max gauge high-water marks" true
        (Obs.Registry.read g "peak" = Some (Obs.Registry.Gauge 3.0));
      let r = Obs.Registry.create () in
      ignore (Obs.Registry.counter r "x");
      Alcotest.check_raises "re-registering under a different kind"
        (Invalid_argument "Registry: \"x\" re-registered as a different kind")
        (fun () -> ignore (Obs.Registry.gauge r "x")))

let test_registry_reset () =
  with_metrics (fun () ->
      let r = Obs.Registry.create () in
      Obs.Registry.add (Obs.Registry.counter r "c") 9;
      Obs.Registry.reset r;
      checkb "reset zeroes but keeps registration" true
        (Obs.Registry.read r "c" = Some (Obs.Registry.Counter 0)))

(* --- Spans and the injectable clock --- *)

let test_clock_monotone () =
  let t = ref 100 in
  Obs.Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Obs.Clock.use_wall_clock (fun () ->
      checki "injected source" 100 (Obs.Clock.now_ns ());
      t := 50;
      checkb "clamped against going backwards" true (Obs.Clock.now_ns () >= 100);
      t := 200;
      checki "advances again" 200 (Obs.Clock.now_ns ()))

let test_span_ring () =
  with_metrics (fun () ->
      let r = Obs.Registry.create () in
      Obs.Span.clear ();
      Obs.Span.record ~registry:r "work" ~start_ns:10 ~dur_ns:5;
      Obs.Span.record ~registry:r "work" ~start_ns:20 ~dur_ns:7;
      (match Obs.Span.recent () with
      | [ a; b ] ->
          checks "span name" "work" a.Obs.Span.name;
          checkb "oldest first" true (a.Obs.Span.start_ns < b.Obs.Span.start_ns)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
      (match Obs.Registry.read r "span.work.ns" with
      | Some (Obs.Registry.Histogram h) -> checki "latency histogram count" 2 h.H.count
      | _ -> Alcotest.fail "span histogram not registered");
      Obs.Span.clear ();
      checkb "clear empties the ring" true (Obs.Span.recent () = []));
  (* Disabled: record is a no-op for both the ring and the registry. *)
  Obs.Span.record "quiet" ~start_ns:1 ~dur_ns:1;
  checkb "no spans while disabled" true (Obs.Span.recent () = [])

(* --- Canonical breakdowns --- *)

let test_canonical_breakdown () =
  checkb "sorts and merges duplicate keys" true
    (Sink.canonical_breakdown [ ("b", 1); ("a", 2); ("b", 3) ]
    = [ ("a", 2); ("b", 4) ]);
  checkb "prefix is dot-joined" true
    (Sink.prefix_breakdown "oracle" [ ("l0", 1); ("sampler", 2) ]
    = [ ("oracle.l0", 1); ("oracle.sampler", 2) ])

let test_estimate_breakdown_keys () =
  let src, params = instance () in
  let est = E.create params in
  ignore (Pipe.run_seq E.sink est src);
  let wb = E.words_breakdown est in
  let keys = List.map fst wb in
  checkb "keys are sorted" true (keys = List.sort compare keys);
  checkb "keys are unique" true
    (List.length keys = List.length (List.sort_uniq compare keys));
  checkb "universe reduction is accounted" true
    (List.mem_assoc "universe_reduction" wb);
  checkb "large-common l0 under its dot namespace" true
    (List.mem_assoc "oracle.large_common.l0" wb);
  checki "breakdown sums to words" (E.words est)
    (List.fold_left (fun acc (_, w) -> acc + w) 0 wb)

(* --- Sink.Observed: wrapping changes nothing --- *)

let prop_observed_equals_bare =
  let gen = QCheck.Gen.(pair (int_range 0 1000) (int_range 1 100)) in
  let arb =
    QCheck.make
      ~print:(fun (seed, cadence) -> Printf.sprintf "seed %d, cadence %d" seed cadence)
      gen
  in
  QCheck.Test.make ~name:"Observed sink ≡ bare sink (random streams)" ~count:20 arb
    (fun (seed, cadence) ->
      let sys = Mkc_workload.Random_inst.uniform ~n:64 ~m:24 ~set_size:12 ~seed in
      let src = Src.of_system ~seed:(seed + 1) sys in
      let params = P.make ~m:24 ~n:64 ~k:3 ~alpha:4.0 ~seed:5 () in
      let bare = E.create params in
      let r0 = Pipe.run ~chunk:64 E.sink bare src in
      let obs = E.create params in
      let sm, ob = Sink.Observed.observe ~cadence E.sink obs in
      let r1 = Pipe.run ~chunk:64 sm ob src in
      let final_ok =
        match Obs.Space_profile.final (Sink.Observed.profile ob) with
        | None -> false
        | Some p ->
            p.Obs.Space_profile.words = E.words obs
            && p.Obs.Space_profile.breakdown
               = Sink.canonical_breakdown (E.words_breakdown obs)
      in
      fingerprint r0 = fingerprint r1
      && E.words bare = E.words obs
      && E.words_breakdown bare = E.words_breakdown obs
      && final_ok)

let test_observed_cadence_grid () =
  (* A sink whose words grow per edge; drive it batchwise and check the
     sample schedule: at most one sample per feed call, realigned to the
     cadence grid, plus the finalize sample. *)
  let module Count = struct
    type t = int ref
    type result = int

    let feed t (_ : Edge.t) = incr t
    let feed_batch t _ ~pos:_ ~len = t := !t + len
    let feed_planned t _ edges ~pos ~len = feed_batch t edges ~pos ~len
    let finalize t = !t
    let words t = !t
    let words_breakdown t = [ ("count", !t) ]
  end in
  let m : (int ref, int) Sink.sink = (module Count) in
  let sm, ob = Sink.Observed.observe ~cadence:10 m (ref 0) in
  let edges = Array.init 25 (fun i -> Edge.make ~set:0 ~elt:i) in
  let r = Pipe.run ~chunk:7 sm ob (Src.of_array edges) in
  checki "wrapper forwards finalize" 25 r;
  let ats =
    List.map
      (fun p -> p.Obs.Space_profile.at_edges)
      (Obs.Space_profile.points (Sink.Observed.profile ob))
  in
  (* chunks land at 7,14,21,25 edges; cadence 10 samples at 14 (first
     crossing of 10, grid realigns to 20) and 21, then finalize at 25 *)
  checkb "cadence-grid samples plus finalize" true (ats = [ 14; 21; 25 ]);
  checki "peak words" 25
    (Obs.Space_profile.peak_words (Sink.Observed.profile ob));
  Alcotest.check_raises "cadence must be positive"
    (Invalid_argument "Sink.Observed.wrap: cadence must be >= 1") (fun () ->
      ignore (Sink.Observed.observe ~cadence:0 m (ref 0)))

(* --- Parallel vs sequential ingestion: same metrics --- *)

let test_parallel_metrics_equal_seq () =
  with_metrics (fun () ->
      let read_feed_edges () =
        match Obs.Registry.read Obs.Registry.global "pipeline.sink_feed_edges" with
        | Some (Obs.Registry.Counter n) -> n
        | _ -> 0
      in
      let src, params = instance () in
      let est1 = E.create params in
      let b0 = read_feed_edges () in
      Pipe.feed_all (E.shards est1) src;
      let seq_delta = read_feed_edges () - b0 in
      let est2 = E.create params in
      let b1 = read_feed_edges () in
      Pipe.feed_all_parallel ~domains:3 (E.shards est2) src;
      let par_delta = read_feed_edges () - b1 in
      checki "sink_feed_edges invariant across drivers" seq_delta par_delta;
      checkb "drivers agree on the result" true
        (fingerprint (E.finalize est1) = fingerprint (E.finalize est2));
      let r1 = Obs.Registry.create () and r2 = Obs.Registry.create () in
      E.record_metrics ~registry:r1 est1;
      E.record_metrics ~registry:r2 est2;
      checkb "work counters identical metric-for-metric" true
        (Obs.Registry.dump r1 = Obs.Registry.dump r2);
      checkb "per-instance counters present" true
        (List.exists
           (fun (name, _) -> String.starts_with ~prefix:"estimate.z" name)
           (Obs.Registry.dump r1)))

(* --- Snapshot: golden JSON, round trip, tamper rejection --- *)

(* mkc-obs/4 body: the recorded 3 lands in log-linear bucket 3 (values
   below 16 get exact buckets). *)
let golden_body =
  "\"metrics\":[{\"name\":\"c\",\"kind\":\"counter\",\"value\":5},\
   {\"name\":\"g\",\"kind\":\"gauge\",\"value\":2.5},\
   {\"name\":\"h\",\"kind\":\"histogram\",\"count\":1,\"sum\":3.0,\"min\":3.0,\
   \"max\":3.0,\"buckets\":[[3,1]]}],\
   \"spans\":[{\"name\":\"s\",\"start_ns\":10,\"dur_ns\":5,\"domain\":0}],\
   \"profiles\":[{\"name\":\"p\",\"cadence\":2,\
   \"points\":[{\"at_edges\":2,\"words\":3,\"breakdown\":[[\"a\",1],[\"b\",2]]}]}]}"

(* Legacy (v1–v3) body: the old 64-bucket log2 layout put 3 in
   bucket 1. *)
let golden_body_legacy =
  "\"metrics\":[{\"name\":\"c\",\"kind\":\"counter\",\"value\":5},\
   {\"name\":\"g\",\"kind\":\"gauge\",\"value\":2.5},\
   {\"name\":\"h\",\"kind\":\"histogram\",\"count\":1,\"sum\":3.0,\"min\":3.0,\
   \"max\":3.0,\"buckets\":[[1,1]]}],\
   \"spans\":[{\"name\":\"s\",\"start_ns\":10,\"dur_ns\":5,\"domain\":0}],\
   \"profiles\":[{\"name\":\"p\",\"cadence\":2,\
   \"points\":[{\"at_edges\":2,\"words\":3,\"breakdown\":[[\"a\",1],[\"b\",2]]}]}]}"

let golden = "{\"schema\":\"mkc-obs/4\",\"created_ns\":42," ^ golden_body

(* The PR-2 era emission, byte for byte: still accepted read-only. *)
let golden_v1 = "{\"schema\":\"mkc-obs/1\",\"created_ns\":42," ^ golden_body_legacy

(* Likewise the PR-4..6 era emission (space section, no series). *)
let golden_v2 =
  "{\"schema\":\"mkc-obs/2\",\"created_ns\":42,\
   \"space\":{\"budget_words\":8,\"peak_words\":4,\"headroom\":0.5,\
   \"overshoots\":0,\"samples\":3}," ^ golden_body_legacy

(* And the PR-7..8 era emission (series section, log2 buckets). *)
let golden_v3 = "{\"schema\":\"mkc-obs/3\",\"created_ns\":42," ^ golden_body_legacy

let golden_space =
  "{\"schema\":\"mkc-obs/4\",\"created_ns\":42,\
   \"space\":{\"budget_words\":8,\"peak_words\":4,\"headroom\":0.5,\
   \"overshoots\":0,\"samples\":3}," ^ golden_body

let golden_series =
  "{\"schema\":\"mkc-obs/4\",\"created_ns\":42,\
   \"series\":[{\"name\":\"space.words\",\"count\":3,\"min\":1,\"max\":9,\"last\":4},\
   {\"name\":\"pipeline.edges\",\"count\":3,\"min\":2,\"max\":6,\"last\":6}]," ^ golden_body

let golden_snapshot () =
  let r = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter r "c") 5;
  Obs.Registry.set (Obs.Registry.gauge r "g") 2.5;
  Obs.Registry.observe (Obs.Registry.histogram r "h") 3.0;
  let sp = Obs.Space_profile.create ~cadence:2 in
  Obs.Space_profile.record sp ~at_edges:2 ~words:3 ~breakdown:[ ("a", 1); ("b", 2) ];
  Obs.Snapshot.capture
    ~spans:[ { Obs.Span.name = "s"; start_ns = 10; dur_ns = 5; domain = 0 } ]
    ~profiles:[ ("p", sp) ] ~now_ns:42 r

let golden_space_record =
  {
    Obs.Snapshot.budget_words = 8;
    peak_words = 4;
    headroom = Obs.Snapshot.headroom_of ~budget_words:8 ~peak_words:4;
    overshoots = 0;
    samples = 3;
  }

let golden_series_tracks =
  [
    { Obs.Snapshot.tname = "space.words"; tcount = 3; tmin = 1; tmax = 9; tlast = 4 };
    { Obs.Snapshot.tname = "pipeline.edges"; tcount = 3; tmin = 2; tmax = 6; tlast = 6 };
  ]

let test_snapshot_golden () =
  with_metrics (fun () ->
      checks "byte-stable emission" golden
        (Obs.Snapshot.to_string (golden_snapshot ()));
      let with_space =
        { (golden_snapshot ()) with Obs.Snapshot.space = Some golden_space_record }
      in
      checks "byte-stable emission with a space section" golden_space
        (Obs.Snapshot.to_string with_space);
      let with_series =
        { (golden_snapshot ()) with Obs.Snapshot.series = golden_series_tracks }
      in
      checks "byte-stable emission with a series section" golden_series
        (Obs.Snapshot.to_string with_series))

let test_snapshot_round_trip () =
  with_metrics (fun () ->
      let s = Obs.Snapshot.to_string (golden_snapshot ()) in
      match Obs.Snapshot.validate s with
      | Error e -> Alcotest.failf "golden snapshot rejected: %s" e
      | Ok snap ->
          checki "created_ns" 42 snap.Obs.Snapshot.created_ns;
          checks "schema is current" Obs.Snapshot.schema_version snap.Obs.Snapshot.schema;
          checki "metrics" 3 (List.length snap.Obs.Snapshot.metrics);
          checki "spans" 1 (List.length snap.Obs.Snapshot.spans);
          checki "profiles" 1 (List.length snap.Obs.Snapshot.profiles);
          checks "re-emission is a fixpoint" s (Obs.Snapshot.to_string snap));
      match Obs.Snapshot.validate golden_space with
      | Error e -> Alcotest.failf "space snapshot rejected: %s" e
      | Ok snap -> (
          checkb "space section parsed" true
            (snap.Obs.Snapshot.space = Some golden_space_record);
          checks "space re-emission is a fixpoint" golden_space
            (Obs.Snapshot.to_string snap);
          match Obs.Snapshot.validate golden_series with
          | Error e -> Alcotest.failf "series snapshot rejected: %s" e
          | Ok snap ->
              checkb "series section parsed" true
                (snap.Obs.Snapshot.series = golden_series_tracks);
              checks "series re-emission is a fixpoint" golden_series
                (Obs.Snapshot.to_string snap))

let test_snapshot_accepts_v1 () =
  with_metrics (fun () ->
      match Obs.Snapshot.validate golden_v1 with
      | Error e -> Alcotest.failf "legacy v1 snapshot rejected: %s" e
      | Ok snap ->
          checks "parsed schema says v1" Obs.Snapshot.schema_v1 snap.Obs.Snapshot.schema;
          checkb "v1 has no space section" true (snap.Obs.Snapshot.space = None);
          checki "metrics survive" 3 (List.length snap.Obs.Snapshot.metrics);
          (* Re-emission keeps the v1 stamp, so reading and re-writing an
             old CI artifact is the identity, not a silent upgrade. *)
          checks "v1 re-emission is a fixpoint" golden_v1 (Obs.Snapshot.to_string snap))

let test_snapshot_accepts_v2 () =
  with_metrics (fun () ->
      match Obs.Snapshot.validate golden_v2 with
      | Error e -> Alcotest.failf "legacy v2 snapshot rejected: %s" e
      | Ok snap ->
          checks "parsed schema says v2" Obs.Snapshot.schema_v2 snap.Obs.Snapshot.schema;
          checkb "v2 space section survives" true
            (snap.Obs.Snapshot.space = Some golden_space_record);
          checkb "v2 has no series section" true (snap.Obs.Snapshot.series = []);
          checks "v2 re-emission is a fixpoint" golden_v2 (Obs.Snapshot.to_string snap))

let test_snapshot_accepts_v3 () =
  with_metrics (fun () ->
      match Obs.Snapshot.validate golden_v3 with
      | Error e -> Alcotest.failf "legacy v3 snapshot rejected: %s" e
      | Ok snap ->
          checks "parsed schema says v3" Obs.Snapshot.schema_v3 snap.Obs.Snapshot.schema;
          checki "metrics survive" 3 (List.length snap.Obs.Snapshot.metrics);
          (* Its log2 bucket indices are preserved verbatim, not
             reinterpreted under the log-linear layout. *)
          checks "v3 re-emission is a fixpoint" golden_v3 (Obs.Snapshot.to_string snap))

(* First-occurrence substring replacement (avoids a Str dependency). *)
let replace_once ~sub ~by s =
  let ls = String.length s and lb = String.length sub in
  let rec find i =
    if i + lb > ls then invalid_arg "replace_once: substring not found"
    else if String.sub s i lb = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + lb) (ls - i - lb)

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec find i =
    i + lb <= ls && (String.sub s i lb = sub || find (i + 1))
  in
  find 0

let test_snapshot_rejects_tampering () =
  let reject what s =
    match Obs.Snapshot.validate s with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "a foreign schema" (replace_once ~sub:"mkc-obs/4" ~by:"mkc-obs/9" golden);
  (* histogram bucket counts no longer sum to count *)
  reject "a bucket-sum mismatch"
    (replace_once ~sub:"\"buckets\":[[3,1]]" ~by:"\"buckets\":[[3,2]]" golden);
  (* a bucket index past the log-linear layout's end *)
  reject "a bucket index out of range"
    (replace_once ~sub:"\"buckets\":[[3,1]]" ~by:"\"buckets\":[[960,1]]" golden);
  (* legacy snapshots are bounded by their own 64-bucket layout *)
  reject "a legacy bucket index past the log2 layout"
    (replace_once ~sub:"\"buckets\":[[1,1]]" ~by:"\"buckets\":[[64,1]]" golden_v3);
  (* profile point breakdown no longer sums to words *)
  reject "a breakdown-sum mismatch"
    (replace_once ~sub:"[\"b\",2]" ~by:"[\"b\",7]" golden);
  reject "truncated JSON" (String.sub golden 0 (String.length golden - 1));
  (* the space section is v2+: a v1 stamp with one is a forgery *)
  reject "a v1 snapshot carrying a space section"
    (replace_once ~sub:"mkc-obs/4" ~by:"mkc-obs/1" golden_space);
  (* likewise the series section is v3-only *)
  reject "a v2 snapshot carrying a series section"
    (replace_once ~sub:"mkc-obs/4" ~by:"mkc-obs/2" golden_series);
  reject "an empty series array"
    (replace_once
       ~sub:
         "\"series\":[{\"name\":\"space.words\",\"count\":3,\"min\":1,\"max\":9,\"last\":4},\
          {\"name\":\"pipeline.edges\",\"count\":3,\"min\":2,\"max\":6,\"last\":6}]"
       ~by:"\"series\":[]" golden_series);
  (* min ≤ last ≤ max is the summary invariant a replay must satisfy *)
  reject "a series track whose last escapes [min, max]"
    (replace_once ~sub:"\"max\":9,\"last\":4" ~by:"\"max\":9,\"last\":19" golden_series);
  reject "a series track with min > max"
    (replace_once ~sub:"\"min\":1,\"max\":9" ~by:"\"min\":10,\"max\":9" golden_series);
  reject "a series track with zero count"
    (replace_once ~sub:"\"count\":3,\"min\":1" ~by:"\"count\":0,\"min\":1" golden_series);
  (* headroom must equal peak/budget exactly *)
  reject "a headroom that disagrees with peak/budget"
    (replace_once ~sub:"\"headroom\":0.5" ~by:"\"headroom\":0.25" golden_space);
  (* a peak above budget with zero recorded overshoots is inconsistent *)
  reject "an overshooting peak with overshoots = 0"
    (replace_once ~sub:"\"peak_words\":4,\"headroom\":0.5"
       ~by:"\"peak_words\":16,\"headroom\":2.0" golden_space);
  reject "negative budget words"
    (replace_once ~sub:"\"budget_words\":8" ~by:"\"budget_words\":-8" golden_space)

let test_json_parse () =
  let v =
    Obs.Json.Object
      [
        ("a", Obs.Json.Int 3);
        ("b", Obs.Json.Array [ Obs.Json.Float 2.5; Obs.Json.String "x\"y" ]);
        ("c", Obs.Json.Bool true);
        ("d", Obs.Json.Null);
      ]
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
  | Ok v' -> checkb "parse inverts to_string" true (v = v')
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (match Obs.Json.parse "{\"a\": 1," with
  | Ok _ -> Alcotest.fail "accepted malformed JSON"
  | Error e ->
      checkb "error carries a byte offset" true
        (String.length e >= 7 && String.sub e 0 7 = "at byte"));
  checkb "integral float accessor" true
    (Obs.Json.to_int (Obs.Json.Float 3.0) = Some 3);
  checkb "non-integral float is not an int" true
    (Obs.Json.to_int (Obs.Json.Float 3.5) = None)

(* --- Prometheus exposition: hostile names, specials, monotone buckets --- *)

let snapshot_of_metrics metrics =
  {
    Obs.Snapshot.schema = Obs.Snapshot.schema_version;
    created_ns = 42;
    space = None;
    series = [];
    metrics;
    spans = [];
    profiles = [];
  }

let prom_lines metrics =
  String.split_on_char '\n' (Obs.Export.prometheus (snapshot_of_metrics metrics))

let test_prometheus_sanitize () =
  let counter name v = { Obs.Snapshot.mname = name; mvalue = Obs.Snapshot.Counter v } in
  let lines = prom_lines [ counter "mkc.estimate-rate" 3 ] in
  checkb "dots and dashes map to underscores" true
    (List.mem "mkc_estimate_rate 3" lines);
  (* A leading digit is illegal in a Prometheus name; dropping it would
     collide "2xx" with "xx", so it gains a '_' prefix instead. *)
  let lines = prom_lines [ counter "2xx" 1; counter "xx" 2 ] in
  checkb "leading digit is prefixed" true (List.mem "_2xx 1" lines);
  checkb "plain name untouched" true (List.mem "xx 2" lines);
  let lines = prom_lines [ counter "" 7 ] in
  checkb "empty name becomes a bare underscore" true (List.mem "_ 7" lines);
  let lines = prom_lines [ counter "héllo wörld" 1 ] in
  (* 'é'/'ö' are two UTF-8 bytes each, hence two underscores *)
  checkb "non-ASCII bytes all map to underscores" true
    (List.mem "h__llo_w__rld 1" lines)

let test_prometheus_specials () =
  let gauge name v = { Obs.Snapshot.mname = name; mvalue = Obs.Snapshot.Gauge v } in
  let lines =
    prom_lines
      [ gauge "g_nan" Float.nan; gauge "g_pinf" Float.infinity;
        gauge "g_ninf" Float.neg_infinity; gauge "g_int" 3.0; gauge "g_frac" 0.25 ]
  in
  checkb "NaN spelled canonically" true (List.mem "g_nan NaN" lines);
  checkb "+Inf spelled canonically" true (List.mem "g_pinf +Inf" lines);
  checkb "-Inf spelled canonically" true (List.mem "g_ninf -Inf" lines);
  checkb "integral gauges print as integers" true (List.mem "g_int 3" lines);
  checkb "fractional gauges keep their fraction" true (List.mem "g_frac 0.25" lines);
  (* scrapers reject C-locale spellings *)
  List.iter
    (fun l ->
      checkb "no lowercase nan/inf leaks" false
        (contains ~sub:" nan" l || contains ~sub:" inf" l || contains ~sub:" -inf" l))
    lines

(* Cumulative bucket counts must be nondecreasing and end at _count —
   including for a histogram produced by merging shards with disjoint
   bucket support. *)
let test_prometheus_bucket_monotone () =
  let hist_metric h =
    {
      Obs.Snapshot.mname = "lat";
      mvalue =
        Obs.Snapshot.Histogram
          {
            Obs.Snapshot.hcount = h.H.count;
            hsum = float_of_int h.H.sum;
            hmin = float_of_int h.H.vmin;
            hmax = float_of_int h.H.vmax;
            hbuckets = H.nonzero_buckets h;
          };
    }
  in
  let merged = H.merge (hist_of [ 1; 1; 100 ]) (hist_of [ 3; 4; 1000 ]) in
  let lines = prom_lines [ hist_metric merged ] in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 11 && String.sub l 0 11 = "lat_bucket{" then
          match String.rindex_opt l ' ' with
          | Some i ->
              Some (int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      lines
  in
  checkb "at least the +Inf bucket plus one finite bucket" true
    (List.length bucket_counts >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "cumulative counts are nondecreasing" true (monotone bucket_counts);
  checki "+Inf bucket equals the total count" merged.H.count
    (List.nth bucket_counts (List.length bucket_counts - 1));
  checkb "_count line matches" true (List.mem "lat_count 6" lines)

(* --- Stream_source.load: malformed input names the line --- *)

let load_failure content =
  let path = Filename.temp_file "mkc_obs_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      match Src.load path with
      | (_ : Src.t) -> Alcotest.fail "malformed file loaded"
      | exception Failure msg -> msg)

let test_load_error_line_number () =
  let msg = load_failure "0 1\nbogus line\n" in
  checkb "names the 1-based line" true (contains ~sub:"malformed line 2" msg);
  checkb "names the offending token" true (contains ~sub:"token \"bogus\"" msg);
  let msg = load_failure "0 1\n2 x7\n" in
  checkb "points at the second field" true (contains ~sub:"token \"x7\"" msg);
  let msg = load_failure "0 1 2\n" in
  checkb "names a bad sign token" true (contains ~sub:"sign token \"2\"" msg);
  let msg = load_failure "0 1 -1 4\n" in
  checkb "reports a field-count mismatch" true
    (contains ~sub:"expected 2 or 3 fields, got 4" msg)

(* --- Stream_source.load_auto: binary rejections name the path --- *)

let with_binary_stream mutate k =
  let path = Filename.temp_file "mkc_obs_edge" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let edges = Array.init 64 (fun i -> Edge.make ~set:(i mod 8) ~elt:(i mod 16)) in
      (match Mkc_stream.Edge_file.write path edges ~n:16 ~m:8 with
      | Ok (_ : int) -> ()
      | Error e ->
          Alcotest.failf "setup write: %s" (Mkc_stream.Edge_file.error_to_string e));
      mutate path;
      k path)

let patch_byte path ~pos f =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = if pos < 0 then len + pos else pos in
  Bytes.set b pos (f (Bytes.get b pos));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let truncate_file path keep =
  let ic = open_in_bin path in
  let b = Bytes.create keep in
  really_input ic b 0 keep;
  close_in ic;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let load_auto_failure mutate =
  with_binary_stream mutate (fun path ->
      match Src.load_auto path with
      | (_ : Src.t) -> Alcotest.fail "corrupt binary stream loaded"
      | exception Failure msg ->
          (* every binary rejection must say which file and which loader *)
          checkb "failure names the loader" true
            (contains ~sub:"Stream_source.load_auto" msg);
          checkb "failure names the file path" true (contains ~sub:path msg);
          msg)

let test_load_auto_rejection_matrix () =
  with_binary_stream
    (fun _ -> ())
    (fun path -> checki "intact binary stream loads" 64 (Src.length (Src.load_auto path)));
  (* byte 8 is the format version (int64 LE) *)
  let msg = load_auto_failure (fun p -> patch_byte p ~pos:8 (fun _ -> '\xff')) in
  checkb "bad version is named" true (contains ~sub:"version" msg);
  (* a header cut short (but past the 8-byte magic sniff) *)
  let msg = load_auto_failure (fun p -> truncate_file p 20) in
  checkb "truncated header is named" true (contains ~sub:"truncated" msg);
  (* intact header, columns cut short *)
  let msg = load_auto_failure (fun p -> truncate_file p 700) in
  checkb "truncated columns are named" true (contains ~sub:"truncated" msg);
  (* same length, one flipped column byte: the body checksum catches it *)
  let msg =
    load_auto_failure (fun p ->
        patch_byte p ~pos:(-1) (fun c -> Char.chr (Char.code c lxor 1)))
  in
  checkb "flipped column byte is named" true (contains ~sub:"checksum" msg);
  (* a column value outside the declared universe bound *)
  let msg = load_auto_failure (fun p -> patch_byte p ~pos:48 (fun _ -> '\xee')) in
  checkb "out-of-range id or checksum damage is named" true
    (contains ~sub:"checksum" msg || contains ~sub:"out of range" msg
    || contains ~sub:"malformed" msg)

(* --- Mid-run space accounting is exact at chunk boundaries --- *)

let test_midrun_words_exact () =
  (* The deferred CountSketch/tracked accumulators are flushed on every
     words/words_breakdown read, so a batched run's mid-stream space
     sample must equal the per-edge run's at the same boundary — this
     is what makes the telemetry space.words track exact, not laggy. *)
  let src, params = instance () in
  let edges = Src.to_array src in
  let total = Array.length edges in
  let chunk = 97 in
  let batched = E.create params and peredge = E.create params in
  let pos = ref 0 in
  while !pos < total do
    let len = min chunk (total - !pos) in
    E.feed_batch batched edges ~pos:!pos ~len;
    for i = !pos to !pos + len - 1 do
      E.feed peredge edges.(i)
    done;
    pos := !pos + len;
    checki
      (Printf.sprintf "words agree at edge %d" !pos)
      (E.words peredge) (E.words batched);
    checkb
      (Printf.sprintf "breakdowns agree at edge %d" !pos)
      true
      (E.words_breakdown peredge = E.words_breakdown batched)
  done;
  checkb "reading words mid-run perturbed nothing" true
    (fingerprint (E.finalize batched) = fingerprint (E.finalize peredge))

let suite =
  [
    Alcotest.test_case "metric: scalar merges" `Quick test_merge_scalars;
    Alcotest.test_case "metric: histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "metric: histogram monoid laws" `Quick test_histogram_monoid;
    Alcotest.test_case "registry: disabled writes are no-ops" `Quick
      test_registry_disabled_noop;
    Alcotest.test_case "registry: domain shards merge to sequential" `Quick
      test_registry_domain_merge;
    Alcotest.test_case "registry: reset" `Quick test_registry_reset;
    Alcotest.test_case "clock: injected source, monotone clamp" `Quick
      test_clock_monotone;
    Alcotest.test_case "span: ring + latency histogram" `Quick test_span_ring;
    Alcotest.test_case "sink: canonical breakdown" `Quick test_canonical_breakdown;
    Alcotest.test_case "estimate: dot-namespaced breakdown keys" `Quick
      test_estimate_breakdown_keys;
    Alcotest.test_case "observed: cadence grid sampling" `Quick
      test_observed_cadence_grid;
    Alcotest.test_case "pipeline: parallel metrics ≡ sequential" `Quick
      test_parallel_metrics_equal_seq;
    Alcotest.test_case "snapshot: golden JSON" `Quick test_snapshot_golden;
    Alcotest.test_case "snapshot: validate round trip" `Quick test_snapshot_round_trip;
    Alcotest.test_case "snapshot: accepts legacy mkc-obs/1" `Quick
      test_snapshot_accepts_v1;
    Alcotest.test_case "snapshot: accepts legacy mkc-obs/2" `Quick
      test_snapshot_accepts_v2;
    Alcotest.test_case "snapshot: accepts legacy mkc-obs/3" `Quick
      test_snapshot_accepts_v3;
    Alcotest.test_case "snapshot: rejects tampering" `Quick
      test_snapshot_rejects_tampering;
    Alcotest.test_case "json: parse/print round trip" `Quick test_json_parse;
    Alcotest.test_case "prometheus: name sanitization" `Quick test_prometheus_sanitize;
    Alcotest.test_case "prometheus: NaN/Inf spellings" `Quick test_prometheus_specials;
    Alcotest.test_case "prometheus: merged buckets stay monotone" `Quick
      test_prometheus_bucket_monotone;
    Alcotest.test_case "stream_source: malformed line number" `Quick
      test_load_error_line_number;
    Alcotest.test_case "stream_source: binary rejection matrix names the path" `Quick
      test_load_auto_rejection_matrix;
    Alcotest.test_case "estimate: mid-run words exact at chunk boundaries" `Quick
      test_midrun_words_exact;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_observed_equals_bare ]
