type guess = {
  v : float;
  covered : Bytes.t;
  mutable count : int;
  mutable sel : int list;
  mutable picked : int;
}

type t = {
  n : int;
  k : int;
  epsilon : float;
  mutable max_single : int;
  guesses : (int, guess) Hashtbl.t; (* keyed by the exponent of (1+ε) *)
}

let create ~n ~k ?(epsilon = 0.1) () =
  if n < 1 || k < 1 then invalid_arg "Sieve.create: n and k must be >= 1";
  if epsilon <= 0.0 then invalid_arg "Sieve.create: epsilon must be positive";
  { n; k; epsilon; max_single = 0; guesses = Hashtbl.create 32 }

let exponent_range t =
  let base = 1.0 +. t.epsilon in
  let lo = int_of_float (Float.floor (log (float_of_int t.max_single) /. log base)) in
  let hi = int_of_float (Float.ceil (log (float_of_int (t.max_single * t.k)) /. log base)) in
  (lo, hi)

let sync_guesses t =
  if t.max_single > 0 then begin
    let lo, hi = exponent_range t in
    let stale =
      Hashtbl.fold (fun e _ acc -> if e < lo || e > hi then e :: acc else acc) t.guesses []
    in
    List.iter (Hashtbl.remove t.guesses) stale;
    for e = lo to hi do
      if not (Hashtbl.mem t.guesses e) then
        Hashtbl.replace t.guesses e
          {
            v = Float.pow (1.0 +. t.epsilon) (float_of_int e);
            covered = Bytes.make t.n '\000';
            count = 0;
            sel = [];
            picked = 0;
          }
    done
  end

let marginal g members =
  let fresh = ref 0 in
  (* [members] may contain duplicates; count each uncovered element once
     by marking as we go, then unmarking is avoided by counting via a
     second scan trick: mark with '\002' provisionally. *)
  Array.iter
    (fun e ->
      if Bytes.get g.covered e = '\000' then begin
        Bytes.set g.covered e '\002';
        incr fresh
      end)
    members;
  Array.iter (fun e -> if Bytes.get g.covered e = '\002' then Bytes.set g.covered e '\000') members;
  !fresh

let admit g members id gain =
  Array.iter (fun e -> Bytes.set g.covered e '\001') members;
  g.count <- g.count + gain;
  g.sel <- id :: g.sel;
  g.picked <- g.picked + 1

let feed t id members =
  let distinct =
    let seen = Hashtbl.create (Array.length members) in
    Array.iter (fun e -> Hashtbl.replace seen e ()) members;
    Hashtbl.length seen
  in
  if distinct > t.max_single then begin
    t.max_single <- distinct;
    sync_guesses t
  end;
  Hashtbl.iter
    (fun _ g ->
      if g.picked < t.k then begin
        let gain = marginal g members in
        let threshold =
          ((g.v /. 2.0) -. float_of_int g.count) /. float_of_int (t.k - g.picked)
        in
        if gain > 0 && float_of_int gain >= threshold then admit g members id gain
      end)
    t.guesses

let improves ?(epsilon = 0.1) ~champion challenger =
  if epsilon <= 0.0 then invalid_arg "Sieve.improves: epsilon must be positive";
  challenger > (1.0 +. epsilon) *. champion

let result t =
  let best =
    Hashtbl.fold
      (fun _ g acc ->
        match acc with Some b when b.count >= g.count -> acc | _ -> Some g)
      t.guesses None
  in
  match best with
  | None -> { Greedy.chosen = []; coverage = 0 }
  | Some g -> { Greedy.chosen = List.rev g.sel; coverage = g.count }

let words t =
  Hashtbl.fold (fun _ g acc -> acc + ((t.n + 7) / 8) + g.picked + 3) t.guesses 0

let edge_sink t =
  Mkc_stream.Sink.Set_arrival.create
    ~feed_set:(fun id members -> feed t id members)
    ~finalize:(fun () -> result t)
    ~words:(fun () -> words t)
