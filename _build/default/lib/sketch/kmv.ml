module FSet = Set.Make (Float)

type t = {
  cap : int;
  tab : Mkc_hashing.Tabulation.t;
  token : int; (* identifies the hash function, for merge compatibility *)
  mutable kept : FSet.t;
}

let counter = ref 0

let create ?(cap = 64) ~seed () =
  if cap < 2 then invalid_arg "Kmv.create: cap must be >= 2";
  incr counter;
  { cap; tab = Mkc_hashing.Tabulation.create ~seed; token = !counter; kept = FSet.empty }

let add t x =
  let v = Mkc_hashing.Tabulation.to_unit_float t.tab x in
  if FSet.mem v t.kept then ()
  else if FSet.cardinal t.kept < t.cap then t.kept <- FSet.add v t.kept
  else
    let mx = FSet.max_elt t.kept in
    if v < mx then t.kept <- FSet.add v (FSet.remove mx t.kept)

let estimate t =
  let size = FSet.cardinal t.kept in
  if size < t.cap then float_of_int size
  else float_of_int (t.cap - 1) /. FSet.max_elt t.kept

let copy t = { t with kept = FSet.empty }

let merge a b =
  if a.token <> b.token then
    invalid_arg "Kmv.merge: sketches use different hash functions";
  let union = FSet.union a.kept b.kept in
  let rec trim s = if FSet.cardinal s > a.cap then trim (FSet.remove (FSet.max_elt s) s) else s in
  { a with kept = trim union }

let words t = FSet.cardinal t.kept + Mkc_hashing.Tabulation.words t.tab
