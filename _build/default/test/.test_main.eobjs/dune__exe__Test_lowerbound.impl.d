test/test_lowerbound.ml: Alcotest Array Mkc_lowerbound Mkc_stream Printf
