lib/stream/edge.ml: Format Int
