(* Multi-topic blog watch — the application that motivated the first
   streaming Max k-Cover paper (Saha–Getoor [37], cited in §1).

   Blogs (sets) mention topics (elements); an aggregator wants to follow
   k blogs that jointly cover as many topics as possible.  Mentions
   arrive as a feed of (blog, topic) pairs in publication order —
   i.e. a genuine edge-arrival stream with Zipf-skewed topic popularity.

   Run with:  dune exec examples/blog_watch.exe *)

module Ss = Mkc_stream.Set_system

let () =
  let topics = 8192 and blogs = 2048 in
  let k = 32 and alpha = 4.0 in

  (* skewed blog sizes and topic popularity *)
  let corpus =
    Mkc_workload.Random_inst.zipf_sizes ~n:topics ~m:blogs ~max_size:400 ~skew:1.1 ~seed:11
  in
  Format.printf "corpus: %d blogs, %d topics, %d mentions@." blogs topics
    (Ss.total_size corpus);

  let stream = Ss.edge_stream ~seed:12 corpus in
  let params = Mkc_core.Params.make ~m:blogs ~n:topics ~k ~alpha ~seed:13 () in

  (* run estimation and reporting side by side in the same pass *)
  let est = Mkc_core.Estimate.create params in
  let rep = Mkc_core.Report.create params in
  Array.iter
    (fun e ->
      Mkc_core.Estimate.feed est e;
      Mkc_core.Report.feed rep e)
    stream;

  let r = Mkc_core.Estimate.finalize est in
  Format.printf "@.estimated best %d-blog topic coverage: %.0f topics@." k
    r.Mkc_core.Estimate.estimate;

  let sol = Mkc_core.Report.finalize rep in
  let chosen = sol.Mkc_core.Report.sets in
  let covered = Ss.coverage corpus chosen in
  Format.printf "recommended following %d blogs covering %d topics@."
    (List.length chosen) covered;

  (* context: what full-memory baselines achieve *)
  let greedy = Mkc_coverage.Greedy.run corpus ~k in
  let sieve = Mkc_coverage.Sieve.create ~n:topics ~k () in
  for b = 0 to blogs - 1 do
    Mkc_coverage.Sieve.feed sieve b (Ss.set corpus b)
  done;
  let sv = Mkc_coverage.Sieve.result sieve in
  Format.printf "@.baselines: offline greedy %d topics | set-arrival sieve %d topics@."
    greedy.Mkc_coverage.Greedy.coverage sv.Mkc_coverage.Greedy.coverage;
  Format.printf
    "space: streaming %d words | sieve %d words (Õ(n) bitmaps) | greedy stores all %d mentions@."
    (Mkc_core.Report.words rep)
    (Mkc_coverage.Sieve.words sieve)
    (Ss.total_size corpus)
