(* API-surface tests: validation paths, pretty-printers, words accounting
   and small behaviors not covered elsewhere. *)

module Sm = Mkc_hashing.Splitmix
module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------- pretty printers ---------- *)

let test_edge_pp () =
  checks "edge pp" "(S3, e7)"
    (Format.asprintf "%a" Mkc_stream.Edge.pp (Mkc_stream.Edge.make ~set:3 ~elt:7))

let test_system_pp_summary () =
  let s = Ss.create ~n:5 ~m:2 ~sets:[| [| 0; 1 |]; [| 2 |] |] in
  checks "summary" "set system: n=5 m=2 pairs=3" (Format.asprintf "%a" Ss.pp_summary s)

let test_params_pp () =
  let p = P.make ~m:10 ~n:20 ~k:2 ~alpha:4.0 () in
  let s = Format.asprintf "%a" P.pp p in
  checkb "mentions profile" true (contains "practical" s);
  checkb "mentions m" true (contains "m=10" s)

let test_space_pp_bytes () =
  let s = Format.asprintf "%a" Mkc_sketch.Space.pp_bytes 1024 in
  checkb "shows words and KiB" true (contains "1024 words" s && contains "8.0 KiB" s)

let test_provenance_pp_variants () =
  let open Mkc_core.Solution in
  checkb "trivial" true (contains "trivial" (Format.asprintf "%a" pp_provenance Trivial));
  checkb "large-set" true
    (contains "D5"
       (Format.asprintf "%a" pp_provenance
          (Large_set { superset = 5; repeat = 1; via_l0_fallback = true })));
  checkb "small-set" true
    (contains "2^-3"
       (Format.asprintf "%a" pp_provenance (Small_set { gamma_exp = 3; repeat = 0 })))

(* ---------- validation raises ---------- *)

let test_validation_raises () =
  let s = Sm.create 0 in
  Alcotest.check_raises "nested levels"
    (Invalid_argument "Nested.create: levels must be >= 1") (fun () ->
      ignore (Mkc_sketch.Sampler.Nested.create ~base_rate:0.5 ~levels:0 ~indep:2 ~seed:s));
  Alcotest.check_raises "nested base rate"
    (Invalid_argument "Nested.create: base_rate must be positive") (fun () ->
      ignore (Mkc_sketch.Sampler.Nested.create ~base_rate:0.0 ~levels:2 ~indep:2 ~seed:s));
  Alcotest.check_raises "reservoir cap"
    (Invalid_argument "Reservoir.create: cap must be >= 1") (fun () ->
      ignore (Mkc_sketch.Sampler.Reservoir.create ~cap:0 ~seed:s));
  Alcotest.check_raises "tabulation range"
    (Invalid_argument "Tabulation.hash: range must be >= 1") (fun () ->
      ignore (Mkc_hashing.Tabulation.hash (Mkc_hashing.Tabulation.create ~seed:s) 1 0));
  Alcotest.check_raises "splitmix below"
    (Invalid_argument "Splitmix.below: bound must be positive") (fun () ->
      ignore (Sm.below s 0));
  Alcotest.check_raises "dyadic bits"
    (Invalid_argument "Dyadic_hh.create: bits must be in [1, 30]") (fun () ->
      ignore (Mkc_sketch.Dyadic_hh.create ~bits:0 ~phi:0.5 ~seed:s ()));
  Alcotest.check_raises "sieve sizes"
    (Invalid_argument "Sieve.create: n and k must be >= 1") (fun () ->
      ignore (Mkc_coverage.Sieve.create ~n:0 ~k:1 ()));
  Alcotest.check_raises "superset partition q"
    (Invalid_argument "Superset_partition.create: q must be >= 1") (fun () ->
      ignore (Mkc_core.Superset_partition.create ~m:4 ~q:0 ~indep:2 ~seed:s));
  Alcotest.check_raises "universe reduction z"
    (Invalid_argument "Universe_reduction.create: z must be >= 1") (fun () ->
      ignore (Mkc_core.Universe_reduction.create ~z:0 ~seed:s))

let test_hll_merge_incompatible () =
  let a = Mkc_sketch.Hyperloglog.create ~seed:(Sm.create 1) () in
  let b = Mkc_sketch.Hyperloglog.create ~seed:(Sm.create 2) () in
  Alcotest.check_raises "different hashes rejected"
    (Invalid_argument "Hyperloglog.merge: sketches use different hash functions") (fun () ->
      ignore (Mkc_sketch.Hyperloglog.merge a b))

let test_stream_load_malformed () =
  let path = Filename.temp_file "mkc_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "1 2\nbroken line here\n";
      close_out oc;
      checkb "malformed line raises Failure" true
        (try
           ignore (Mkc_stream.Stream_source.load path);
           false
         with Failure _ -> true))

(* ---------- words / structure accounting ---------- *)

let test_dyadic_words_scale_with_bits () =
  let words bits =
    Mkc_sketch.Dyadic_hh.words
      (Mkc_sketch.Dyadic_hh.create ~bits ~phi:0.25 ~seed:(Sm.create 3) ())
  in
  checkb "words grow linearly with bits" true
    (words 16 > words 8 && words 8 > words 4)

let test_large_common_estimates_match_levels () =
  let p = P.make ~m:128 ~n:256 ~k:4 ~alpha:8.0 ~seed:4 () in
  let lc = Mkc_core.Large_common.create p ~seed:(Sm.create 5) in
  (* levels = ceil_log2(8) + 1 = 4 *)
  checki "one estimate per sampling level" 4
    (List.length (Mkc_core.Large_common.coverage_estimates lc))

let test_guess_ladder_stride () =
  let practical = P.make ~m:4096 ~n:4096 ~k:4 ~alpha:8.0 () in
  let paper = P.make ~m:4096 ~n:4096 ~k:4 ~alpha:8.0 ~profile:P.Paper () in
  let count p = List.length (Mkc_core.Estimate.guesses (Mkc_core.Estimate.create p)) in
  checkb "paper ladder is denser" true (count paper > count practical)

let test_full_range_words_positive () =
  let p = P.make ~m:128 ~n:256 ~k:4 ~alpha:2.0 ~seed:6 () in
  let fr = Mkc_core.Full_range.create p in
  Mkc_core.Full_range.feed fr (Mkc_stream.Edge.make ~set:0 ~elt:0);
  checkb "words positive" true (Mkc_core.Full_range.words fr >= 0)

(* ---------- misc behaviors ---------- *)

let test_mcgregor_vu_survives_dead_guesses () =
  (* small guesses die from the cap; finalize must still work *)
  let mv = Mkc_coverage.Mcgregor_vu.create ~m:64 ~n:4096 ~k:4 ~epsilon:0.3 ~seed:7 () in
  let sys = Mkc_workload.Random_inst.uniform ~n:4096 ~m:64 ~set_size:128 ~seed:8 in
  Array.iter (Mkc_coverage.Mcgregor_vu.feed mv) (Ss.edges sys);
  let r = Mkc_coverage.Mcgregor_vu.finalize mv in
  checkb "finalize total" true (r.Mkc_coverage.Mcgregor_vu.coverage >= 0.0)

let test_mv_set_arrival_empty () =
  let mva = Mkc_coverage.Mv_set_arrival.create ~k:3 () in
  let r = Mkc_coverage.Mv_set_arrival.result mva in
  checkb "empty result" true (r.Mkc_coverage.Mv_set_arrival.chosen = [])

let test_exact_on_empty_sets () =
  let s = Ss.create ~n:3 ~m:2 ~sets:[| [||]; [||] |] in
  checki "zero optimal" 0 (Mkc_coverage.Exact.run s ~k:2).coverage

let test_kmv_merge_respects_cap () =
  let a = Mkc_sketch.Kmv.create ~cap:8 ~seed:(Sm.create 9) () in
  let b = Mkc_sketch.Kmv.copy a in
  for x = 0 to 99 do
    Mkc_sketch.Kmv.add a x;
    Mkc_sketch.Kmv.add b (1000 + x)
  done;
  let m = Mkc_sketch.Kmv.merge a b in
  (* words = kept values + tables; kept must be <= cap *)
  checkb "merged kept within cap" true
    (Mkc_sketch.Kmv.words m <= Mkc_sketch.Kmv.words a + 8)

let test_nested_out_of_range_level () =
  let s =
    Mkc_sketch.Sampler.Nested.create ~base_rate:0.25 ~levels:2 ~indep:2 ~seed:(Sm.create 10)
  in
  Alcotest.check_raises "level out of range" (Invalid_argument "Nested: level out of range")
    (fun () -> ignore (Mkc_sketch.Sampler.Nested.keep s ~level:5 0))

let suite =
  [
    Alcotest.test_case "edge pp" `Quick test_edge_pp;
    Alcotest.test_case "system pp summary" `Quick test_system_pp_summary;
    Alcotest.test_case "params pp" `Quick test_params_pp;
    Alcotest.test_case "space pp bytes" `Quick test_space_pp_bytes;
    Alcotest.test_case "provenance pp variants" `Quick test_provenance_pp_variants;
    Alcotest.test_case "validation raises" `Quick test_validation_raises;
    Alcotest.test_case "hll merge incompatible" `Quick test_hll_merge_incompatible;
    Alcotest.test_case "stream load malformed" `Quick test_stream_load_malformed;
    Alcotest.test_case "dyadic words scale" `Quick test_dyadic_words_scale_with_bits;
    Alcotest.test_case "large-common level count" `Quick test_large_common_estimates_match_levels;
    Alcotest.test_case "guess ladder stride" `Quick test_guess_ladder_stride;
    Alcotest.test_case "full-range words" `Quick test_full_range_words_positive;
    Alcotest.test_case "mcgregor-vu dead guesses" `Quick test_mcgregor_vu_survives_dead_guesses;
    Alcotest.test_case "mv-set-arrival empty" `Quick test_mv_set_arrival_empty;
    Alcotest.test_case "exact on empty sets" `Quick test_exact_on_empty_sets;
    Alcotest.test_case "kmv merge cap" `Quick test_kmv_merge_respects_cap;
    Alcotest.test_case "nested out-of-range level" `Quick test_nested_out_of_range_level;
  ]
