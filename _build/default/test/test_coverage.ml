(* Tests for the offline baselines: greedy, exact, sieve. *)

module Ss = Mkc_stream.Set_system
module Greedy = Mkc_coverage.Greedy
module Exact = Mkc_coverage.Exact
module Sieve = Mkc_coverage.Sieve
module Eval = Mkc_coverage.Eval
module Mv = Mkc_coverage.Mcgregor_vu

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let tiny () =
  Ss.create ~n:8 ~m:5
    ~sets:[| [| 0; 1; 2; 3 |]; [| 3; 4 |]; [| 4; 5; 6 |]; [| 6; 7 |]; [| 0; 7 |] |]

(* naive reference greedy for cross-checking the lazy implementation *)
let naive_greedy sys ~k =
  let n = Ss.n sys and m = Ss.m sys in
  let covered = Array.make n false in
  let chosen = ref [] in
  for _ = 1 to k do
    let best = ref (-1) and best_gain = ref 0 in
    for i = 0 to m - 1 do
      if not (List.mem i !chosen) then begin
        let gain = Array.fold_left (fun acc e -> if covered.(e) then acc else acc + 1) 0 (Ss.set sys i) in
        if gain > !best_gain then begin
          best := i;
          best_gain := gain
        end
      end
    done;
    if !best >= 0 then begin
      Array.iter (fun e -> covered.(e) <- true) (Ss.set sys !best);
      chosen := !best :: !chosen
    end
  done;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 covered

let test_greedy_tiny () =
  let r = Greedy.run (tiny ()) ~k:2 in
  (* greedy picks set 0 (4 elems) then set 2 (3 new): coverage 7 *)
  checki "coverage" 7 r.coverage;
  checki "picks" 2 (List.length r.chosen)

let test_greedy_k_exceeds_useful_sets () =
  let s = Ss.create ~n:4 ~m:3 ~sets:[| [| 0; 1 |]; [| 0; 1 |]; [| 2 |] |] in
  let r = Greedy.run s ~k:3 in
  checki "covers all coverable" 3 r.coverage;
  (* a set with zero marginal gain is never picked *)
  checkb "no useless picks" true (List.length r.chosen <= 2)

let test_greedy_is_a_valid_greedy_execution () =
  (* Replay the lazy-greedy picks and verify the greedy invariant: each
     pick has maximum marginal gain at its turn (ties allowed).  This is
     robust to tie-break order, unlike comparing coverages directly. *)
  for seed = 1 to 10 do
    let s = Mkc_workload.Random_inst.uniform ~n:120 ~m:40 ~set_size:12 ~seed in
    let r = Greedy.run s ~k:6 in
    let covered = Array.make 120 false in
    let gain i =
      Array.fold_left (fun acc e -> if covered.(e) then acc else acc + 1) 0 (Ss.set s i)
    in
    List.iter
      (fun pick ->
        let g = gain pick in
        for i = 0 to 39 do
          checkb "greedy invariant: no set beats the pick" true (gain i <= g)
        done;
        Array.iter (fun e -> covered.(e) <- true) (Ss.set s pick))
      r.chosen;
    (* and the coverage is at least naive greedy's (same algorithm,
       arbitrary tie-breaks differ by small amounts at most here) *)
    checkb "coverage sane vs naive" true
      (float_of_int r.coverage >= 0.9 *. float_of_int (naive_greedy s ~k:6))
  done

let test_greedy_approximation_guarantee () =
  (* greedy >= (1 - 1/e) OPT, verified against the exact solver *)
  for seed = 1 to 8 do
    let s = Mkc_workload.Random_inst.uniform ~n:60 ~m:18 ~set_size:8 ~seed:(100 + seed) in
    let g = (Greedy.run s ~k:4).coverage in
    let opt = (Exact.run s ~k:4).coverage in
    checkb "1-1/e bound" true (float_of_int g >= 0.63 *. float_of_int opt)
  done

let test_greedy_on_disjoint_sets_is_optimal () =
  let s =
    Ss.create ~n:40 ~m:8 ~sets:(Array.init 8 (fun i -> Array.init 5 (fun j -> (5 * i) + j)))
  in
  checki "picks k disjoint sets" 20 (Greedy.run s ~k:4).coverage

let test_greedy_empty_instance () =
  let s = Ss.create ~n:5 ~m:2 ~sets:[| [||]; [||] |] in
  let r = Greedy.run s ~k:2 in
  checki "zero coverage" 0 r.coverage;
  checkb "nothing chosen" true (r.chosen = [])

let test_greedy_on_subsets () =
  let r =
    Greedy.run_on_subsets ~n:100
      ~sets:[ (17, [| 1; 2; 3 |]); (42, [| 3; 4 |]); (7, [| 9 |]) ]
      ~k:2
  in
  (* best 2-cover: {1,2,3} plus either {3,4} or {9} — 4 elements *)
  checki "coverage" 4 r.coverage;
  checkb "returns original ids" true (List.for_all (fun id -> List.mem id [ 17; 42; 7 ]) r.chosen)

let test_exact_tiny () =
  let r = Exact.run (tiny ()) ~k:2 in
  checki "optimal 2-cover" 7 r.coverage;
  checkb "flagged optimal" true r.optimal

let test_exact_matches_bruteforce () =
  (* compare against explicit enumeration on very small instances *)
  for seed = 1 to 6 do
    let s = Mkc_workload.Random_inst.uniform ~n:25 ~m:10 ~set_size:6 ~seed:(200 + seed) in
    let k = 3 in
    let best = ref 0 in
    for a = 0 to 9 do
      for b = a to 9 do
        for c = b to 9 do
          best := max !best (Ss.coverage s [ a; b; c ])
        done
      done
    done;
    ignore k;
    checki "branch&bound = brute force" !best (Exact.run s ~k:3).coverage
  done

let test_exact_respects_budget () =
  let r = Exact.run (tiny ()) ~k:1 in
  checki "best single set" 4 r.coverage;
  checkb "at most k sets" true (List.length r.chosen <= 1)

let test_exact_node_budget () =
  let s = Mkc_workload.Random_inst.uniform ~n:200 ~m:40 ~set_size:20 ~seed:300 in
  let r = Exact.run ~max_nodes:50 s ~k:5 in
  (* with a starved node budget the result is still a valid lower bound *)
  checkb "not flagged optimal" true (not r.optimal);
  checkb "valid selection" true (Ss.coverage s r.chosen = r.coverage)

let test_sieve_reasonable_on_set_arrival () =
  for seed = 1 to 5 do
    let pl = Mkc_workload.Planted.few_large ~n:512 ~m:64 ~k:4 ~seed:(400 + seed) in
    let sys = pl.system in
    let sieve = Sieve.create ~n:512 ~k:4 () in
    for i = 0 to Ss.m sys - 1 do
      Sieve.feed sieve i (Ss.set sys i)
    done;
    let r = Sieve.result sieve in
    (* sieve guarantees ~ 1/2 OPT; planted OPT = 256 *)
    checkb "sieve >= OPT/3" true (r.coverage * 3 >= pl.planted_coverage);
    checkb "at most k sets" true (List.length r.chosen <= 4);
    checki "reported coverage is real" (Ss.coverage sys r.chosen) r.coverage
  done

let test_sieve_space_is_linear_in_n () =
  let sieve = Sieve.create ~n:10_000 ~k:8 () in
  Sieve.feed sieve 0 (Array.init 100 Fun.id);
  (* one bitmap per live guess: words >= n/8 per guess *)
  checkb "Õ(n) footprint visible" true (Sieve.words sieve > 10_000 / 8)

let test_mcgregor_vu_constant_factor () =
  (* the Õ(m/ε²) edge-arrival baseline should land within a small
     constant of the planted optimum *)
  for seed = 1 to 3 do
    let pl = Mkc_workload.Planted.few_large ~n:2048 ~m:256 ~k:8 ~seed:(600 + seed) in
    let sys = pl.system in
    let mv = Mv.create ~m:256 ~n:2048 ~k:8 ~seed:(700 + seed) () in
    Array.iter (Mv.feed mv) (Ss.edge_stream ~seed:(800 + seed) sys);
    let r = Mv.finalize mv in
    let true_cov = Ss.coverage sys r.Mv.chosen in
    checkb "within constant of OPT" true (4 * true_cov >= pl.planted_coverage);
    checkb "at most k sets" true (List.length r.Mv.chosen <= 8);
    checkb "scaled estimate sane" true
      (r.Mv.coverage <= 2.5 *. float_of_int pl.planted_coverage)
  done

let test_mcgregor_vu_storage_bounded () =
  let pl = Mkc_workload.Planted.many_small ~n:4096 ~m:512 ~k:64 ~seed:31 in
  let mv = Mv.create ~m:512 ~n:4096 ~k:64 ~epsilon:0.5 ~seed:32 () in
  Array.iter (Mv.feed mv) (Ss.edge_stream ~seed:33 pl.system);
  (* per-guess cap ≈ 8/ε²·m·log(mn)/8 words; a dozen live guesses max *)
  checkb "words bounded" true (Mv.words mv < 20 * 32 * 512 * 21)

let test_mcgregor_vu_validation () =
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Mcgregor_vu.create: epsilon must be in (0, 1]") (fun () ->
      ignore (Mv.create ~m:10 ~n:10 ~k:2 ~epsilon:1.5 ()))

let test_eval_ratio () =
  checkb "ratio" true (Eval.ratio ~opt:100 ~achieved:50 = 2.0);
  checkb "infinite on zero" true (Eval.ratio ~opt:10 ~achieved:0 = infinity)

let test_eval_within_factor () =
  checkb "within" true (Eval.within_factor ~opt:100 ~achieved:30.0 ~factor:4.0);
  checkb "too small" false (Eval.within_factor ~opt:100 ~achieved:20.0 ~factor:4.0);
  checkb "overestimate rejected" false (Eval.within_factor ~opt:100 ~achieved:150.0 ~factor:4.0)

let suite =
  [
    Alcotest.test_case "greedy tiny" `Quick test_greedy_tiny;
    Alcotest.test_case "greedy skips useless sets" `Quick test_greedy_k_exceeds_useful_sets;
    Alcotest.test_case "greedy invariant holds" `Quick test_greedy_is_a_valid_greedy_execution;
    Alcotest.test_case "greedy (1-1/e) guarantee" `Quick test_greedy_approximation_guarantee;
    Alcotest.test_case "greedy optimal on disjoint" `Quick test_greedy_on_disjoint_sets_is_optimal;
    Alcotest.test_case "greedy empty instance" `Quick test_greedy_empty_instance;
    Alcotest.test_case "greedy on subsets" `Quick test_greedy_on_subsets;
    Alcotest.test_case "exact tiny" `Quick test_exact_tiny;
    Alcotest.test_case "exact = brute force" `Quick test_exact_matches_bruteforce;
    Alcotest.test_case "exact respects budget" `Quick test_exact_respects_budget;
    Alcotest.test_case "exact node budget" `Quick test_exact_node_budget;
    Alcotest.test_case "sieve on set arrival" `Quick test_sieve_reasonable_on_set_arrival;
    Alcotest.test_case "sieve Õ(n) space" `Quick test_sieve_space_is_linear_in_n;
    Alcotest.test_case "mcgregor-vu constant factor" `Slow test_mcgregor_vu_constant_factor;
    Alcotest.test_case "mcgregor-vu storage bounded" `Quick test_mcgregor_vu_storage_bounded;
    Alcotest.test_case "mcgregor-vu validation" `Quick test_mcgregor_vu_validation;
    Alcotest.test_case "eval ratio" `Quick test_eval_ratio;
    Alcotest.test_case "eval within_factor" `Quick test_eval_within_factor;
  ]
