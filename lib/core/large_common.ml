type t = {
  params : Params.t;
  sampler : Mkc_sketch.Sampler.Nested.t; (* over set ids; level g ~ β = 2^g *)
  sketches : Mkc_sketch.L0_bjkst.t array; (* one per level *)
  memo : Mkc_sketch.Sampler.Memo.t; (* set id -> keep-level code *)
  mutable codes : int array; (* per-distinct-set scratch for feed_planned *)
  mutable st_sampler_evals : int;
  mutable st_l0_updates : int;
  mutable st_memo_hits : int;
}

let num_levels params =
  1 + Mkc_hashing.Hash_family.ceil_log2 (max 1 (int_of_float (ceil params.Params.alpha)))

let create (params : Params.t) ~seed =
  let levels = num_levels params in
  let base_rate = float_of_int params.k /. float_of_int params.m in
  {
    params;
    sampler =
      Mkc_sketch.Sampler.Nested.create ~base_rate ~levels ~indep:params.indep
        ~seed:(Mkc_hashing.Splitmix.fork seed 0);
    sketches =
      Array.init levels (fun g ->
          Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.fork seed (g + 1)) ());
    (* Enough slots for one per set on the instance sizes we target, so
       steady-state misses vanish; capped so memo space stays O(1)
       words per instance relative to the Õ(m/α²) budget. *)
    memo = Mkc_sketch.Sampler.Memo.create ~slots:(min (max 1 params.Params.m) 4096);
    codes = [||];
    st_sampler_evals = 0;
    st_l0_updates = 0;
    st_memo_hits = 0;
  }

(* The set-sampling decision for a set id, through the memo: a hit
   returns the cached keep-level code, a miss evaluates the hash (the
   only place [st_sampler_evals] is counted) and caches it.  Values only
   ever enter the memo from a fresh evaluation, so the decision is
   always exactly the hash's — the memo changes how often the polynomial
   is evaluated, never what it says. *)
let keep_code t id =
  let c = Mkc_sketch.Sampler.Memo.find t.memo id in
  if c <> Mkc_sketch.Sampler.Memo.absent then begin
    t.st_memo_hits <- t.st_memo_hits + 1;
    c
  end
  else begin
    t.st_sampler_evals <- t.st_sampler_evals + 1;
    let c = Mkc_sketch.Sampler.Nested.min_keep_level_code t.sampler id in
    Mkc_sketch.Sampler.Memo.store t.memo id c;
    c
  end

let add_levels t finest elt =
  (* Nesting: a set sampled at level [finest] belongs to every coarser
     (higher-rate) level's collection too. *)
  let top = Array.length t.sketches - 1 in
  t.st_l0_updates <- t.st_l0_updates + (top - finest + 1);
  for g = finest to top do
    Mkc_sketch.L0_bjkst.add (Array.unsafe_get t.sketches g) elt
  done

(* Turnstile note: the per-level collections are set-variant L0 sketches
   (insertion-only), so deletions bypass them — a level's distinct-cover
   estimate over a churned stream is an upper bound on the live
   coverage (the windowed mode bounds staleness instead; DESIGN.md,
   turnstile section).  The sampler decision is still consumed for
   every edge so eval counters stay sign-independent. *)
let feed t (e : Mkc_stream.Edge.t) =
  let finest = keep_code t e.set in
  if finest >= 0 && e.sign > 0 then add_levels t finest e.elt

let feed_batch t edges ~pos ~len =
  for i = pos to pos + len - 1 do
    let (e : Mkc_stream.Edge.t) = Array.unsafe_get edges i in
    let finest = keep_code t e.set in
    if finest >= 0 && e.sign > 0 then add_levels t finest e.elt
  done

let feed_planned t plan ~red edges ~pos ~len =
  (* Decide once per distinct set id, then replay the chunk in original
     edge order — L0 updates land in exactly the per-edge sequence, so
     sketch states (prune points included) are bit-for-bit identical. *)
  let ns = Mkc_stream.Chunk_plan.num_sets plan in
  if Array.length t.codes < ns then
    t.codes <- Array.make (max ns (2 * Array.length t.codes)) 0;
  let codes = t.codes and sets = Mkc_stream.Chunk_plan.sets plan in
  for j = 0 to ns - 1 do
    Array.unsafe_set codes j (keep_code t (Array.unsafe_get sets j))
  done;
  let set_idx = Mkc_stream.Chunk_plan.set_index plan in
  let elt_idx = Mkc_stream.Chunk_plan.elt_index plan in
  for i = 0 to len - 1 do
    let finest = Array.unsafe_get codes (Array.unsafe_get set_idx i) in
    if finest >= 0 && (Array.unsafe_get edges (pos + i)).Mkc_stream.Edge.sign > 0 then
      add_levels t finest (Array.unsafe_get red (Array.unsafe_get elt_idx i))
  done

let sampler_evals t = t.st_sampler_evals
let beta_of_level g = 1 lsl g

let coverage_estimates t =
  Array.to_list
    (Array.mapi (fun g sk -> (beta_of_level g, Mkc_sketch.L0_bjkst.estimate sk)) t.sketches)

let witness t level () =
  (* Enumerate the sampled sets of the winning level from the stored
     hash seed; truncate to k ids (a uniform k-subset of F^rnd). *)
  let out = ref [] and count = ref 0 in
  let m = t.params.Params.m and k = t.params.Params.k in
  let s = ref 0 in
  while !count < k && !s < m do
    if Mkc_sketch.Sampler.Nested.keep t.sampler ~level !s then begin
      out := !s :: !out;
      incr count
    end;
    incr s
  done;
  List.rev !out

let finalize t =
  let p = t.params in
  let u = float_of_int p.Params.u in
  let best = ref None in
  Array.iteri
    (fun g sk ->
      let beta = float_of_int (beta_of_level g) in
      let v = Mkc_sketch.L0_bjkst.estimate sk in
      if v >= p.sigma *. beta *. u /. (4.0 *. p.alpha) then begin
        let est = 2.0 *. v /. (3.0 *. beta) in
        match !best with
        | Some (b, _) when b >= est -> ()
        | _ -> best := Some (est, g)
      end)
    t.sketches;
  Option.map
    (fun (est, g) ->
      {
        Solution.estimate = est;
        witness = witness t g;
        provenance = Solution.Large_common { beta = beta_of_level g };
      })
    !best

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode t =
  Json.Object
    [
      ("l0s", Json.Array (Array.to_list (Array.map Ck.Sketch_io.l0 t.sketches)));
      ("memo", Ck.Sketch_io.memo t.memo);
      ( "stats",
        Json.Object
          [
            ("sampler_evals", Json.Int t.st_sampler_evals);
            ("l0_updates", Json.Int t.st_l0_updates);
            ("memo_hits", Json.Int t.st_memo_hits);
          ] );
    ]

let restore t j =
  let ( let* ) = Result.bind in
  let* l0s = Ck.J.list_field "l0s" j in
  let* () =
    if List.length l0s <> Array.length t.sketches then
      Ck.J.err "large_common: expected %d l0 levels, got %d" (Array.length t.sketches)
        (List.length l0s)
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (g, lj) ->
        let* () = acc in
        match Ck.Sketch_io.restore_l0 t.sketches.(g) lj with
        | Ok () -> Ok ()
        | Error e -> Ck.J.err "large_common l0 level %d: %s" g e)
      (Ok ())
      (List.mapi (fun g lj -> (g, lj)) l0s)
  in
  let* mj = Ck.J.field "memo" j in
  let* () = Ck.Sketch_io.restore_memo t.memo mj in
  let* sj = Ck.J.field "stats" j in
  let* se = Ck.J.int_field "sampler_evals" sj in
  let* lu = Ck.J.int_field "l0_updates" sj in
  let* mh = Ck.J.int_field "memo_hits" sj in
  t.st_sampler_evals <- se;
  t.st_l0_updates <- lu;
  t.st_memo_hits <- mh;
  Ok ()

(* L0 sketches merge exactly (state = pure function of elements seen);
   work counters sum (total work done across shards); the decision memo
   resets — overwrite histories don't compose, and it is a pure
   accelerator, so a rebuild from scratch is always sound. *)
let merge_into ~dst src =
  Array.iteri
    (fun g sk -> Mkc_sketch.L0_bjkst.merge_into ~dst:dst.sketches.(g) sk)
    src.sketches;
  Mkc_sketch.Sampler.Memo.reset dst.memo;
  dst.st_sampler_evals <- dst.st_sampler_evals + src.st_sampler_evals;
  dst.st_l0_updates <- dst.st_l0_updates + src.st_l0_updates;
  dst.st_memo_hits <- dst.st_memo_hits + src.st_memo_hits

let words_breakdown t =
  [
    ("sampler", Mkc_sketch.Sampler.Nested.words t.sampler);
    ("memo", Mkc_sketch.Sampler.Memo.words t.memo);
    ("l0", Array.fold_left (fun acc sk -> acc + Mkc_sketch.L0_bjkst.words sk) 0 t.sketches);
  ]

let words t = List.fold_left (fun acc (_, w) -> acc + w) 0 (words_breakdown t)

let stats t =
  [
    ("sampler_evals", t.st_sampler_evals);
    ("l0_updates", t.st_l0_updates);
    ("memo_hits", t.st_memo_hits);
    ( "l0_prunes",
      Array.fold_left (fun acc sk -> acc + Mkc_sketch.L0_bjkst.prunes sk) 0 t.sketches );
    ( "l0_occupancy",
      Array.fold_left (fun acc sk -> acc + Mkc_sketch.L0_bjkst.occupancy sk) 0 t.sketches );
  ]
