type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape b s
    | Array l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          l;
        Buffer.add_char b ']'
    | Object fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape b k;
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* ASCII only — snapshots never emit beyond it *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Object []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields_loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          fields_loop ();
          Object (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Array []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items_loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          items_loop ();
          Array (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member k = function
  | Object fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list = function Array l -> Some l | _ -> None
