(** Declarative health rules over {!Series} tracks — the PR-4 space
    watchdog generalized.  A rule watches one or two tracks and fires
    on each committed sample that violates it:

    - [Threshold]: a track crosses a fixed limit ([>] or [<]);
    - [Ratio_drift]: the ratio of two tracks (in parts-per-million)
      exceeds a limit — e.g. space.words vs. its budget, or minor GC
      words vs. edges;
    - [Stall]: a track fails to change over a window of consecutive
      samples while the stream keeps advancing.

    Each firing bumps a [health.<rule>.violations] counter in the
    metric registry, invokes [on_event] (the CLI wires this to the
    telemetry log), and — for a rule marked [escalate] — raises
    {!Violation}, mirroring [--budget-strict]. *)

type cmp = Gt | Lt

type kind =
  | Threshold of { track : string; cmp : cmp; limit : int }
  | Ratio_drift of { num : string; den : string; max_ppm : int }
  | Stall of { track : string; window : int }

type rule = { name : string; kind : kind; escalate : bool }

exception Violation of string
(** Raised by {!check} when an escalating rule fires; the payload
    names the rule and the offending values. *)

val parse : string -> (rule, string) result
(** Parse the CLI rule syntax (a trailing ['!'] marks escalation):
    - ["name=track>limit"], ["name=track<limit"] — threshold;
    - ["name=num/den>ppm"] — ratio drift, limit in ppm;
    - ["name=stall:track:window"] — stall over [window] samples. *)

val rule_to_string : rule -> string
(** Render a rule back into {!parse} syntax. *)

type engine

val create :
  ?registry:Registry.t ->
  ?on_event:(name:string -> value:int -> unit) ->
  Series.t ->
  rule list ->
  engine
(** Resolve each rule's tracks against the series ([Invalid_argument]
    on an unknown track, naming it) and return an engine watching it.
    [registry] defaults to {!Registry.global}. *)

val check : engine -> unit
(** Examine the latest committed sample; call once after each
    [Series.commit].  No-op until the series has a sample.  Raises
    {!Violation} if an escalating rule fires (after counting and
    emitting the event). *)

val violations : engine -> (string * int) list
(** Total firings per rule, in rule order — independent of the
    registry's global on/off switch, so [mkc top] can render them
    even with metrics disabled. *)
