(** Append-only run ledger: one file accumulating a record per
    benchmark or estimation run, so cross-run comparisons ({!Sentinel},
    [mkc bench-diff]) have durable evidence instead of a single
    overwritten JSON.

    Layout — the {!Telemetry.Framed} machinery with its own magic:

    {v
      offset 0   magic   "MKCLEDG1" (8 bytes)
      offset 8   version int64 LE (currently 1)
      then       frames, each:
                   payload_len  int64 LE
                   checksum     int64 LE — FNV-1a 64 over the payload
                   payload      one JSON run record
    v}

    Same error contract as the telemetry log: every rejection is a
    named variant, a torn final frame (crash mid-append) keeps the
    intact prefix and is reported in [store.torn], and a checksum
    mismatch is fatal. *)

type error =
  | Bad_magic of string
  | Bad_version of int
  | Truncated of string
  | Checksum_mismatch of { expected : string; got : string }
  | Malformed of string
  | Io_error of string

val error_to_string : error -> string

val magic : string
val version : int

val record_schema : string
(** Schema tag carried inside every record ("mkc-ledger/1"). *)

(** Best-of-k timing for one pipeline mode — the sentinel reads the
    baseline's own [best]/[median] spread as its noise band. *)
type mode_stat = {
  ms_mode : string;  (** "sequential" | "batched" | "pipelined" | ... *)
  ms_repeats : int;  (** how many timed repeats best/median summarize *)
  ms_best_s : float;
  ms_median_s : float;  (** >= [ms_best_s] by construction *)
  ms_edges_per_sec : float;  (** throughput of the best repeat *)
}

(** One run record: a self-describing envelope of what ran, where, and
    how it behaved. *)
type entry = {
  e_label : string;  (** workload identity, e.g. "pipeline-bench" *)
  e_created_ns : int;  (** wall clock, ns since the epoch *)
  e_host : (string * Json.t) list;  (** host fingerprint, sorted *)
  e_params : (string * Json.t) list;  (** workload parameters, sorted *)
  e_stats : (string * float) list;  (** wall_s / edges / edges_per_sec, ... *)
  e_modes : mode_stat list;
  e_digests : (string * Histogram.digest) list;  (** per-track latency digests *)
  e_quality : (string * float) list;  (** estimate.quality.* gauges *)
}

type store = { entries : entry list; torn : error option }

val host_fingerprint : unit -> (string * Json.t) list
(** domains / hostname / ocaml / os / word_size of the running
    process, sorted — enough to spot cross-host comparisons. *)

val entry_to_json : entry -> Json.t
(** All object fields sorted; identical entries encode identically. *)

val entry_of_json : Json.t -> (entry, string) result
(** Rejects wrong [record_schema], negative [created_ns], repeats < 1,
    non-finite or inverted timings, and malformed digests. *)

val append : string -> entry -> (unit, error) result
(** Append one record.  Creates the file (with header) when absent or
    empty; otherwise validates the existing header first, so appending
    to a foreign or corrupt file is a named error, not silent damage. *)

val read : string -> (store, error) result
(** Load and verify every record, oldest first.  A torn final frame is
    skipped and reported in [torn]; corruption inside the file is a
    hard error. *)
