(* Pure rendering for the live telemetry view.  The layout keys off
   the canonical track families — pipeline, space, gc, sketch — but
   degrades gracefully: unknown tracks get a generic line, absent
   families are skipped. *)

let pp_count v =
  let f = float_of_int (abs v) and sign = if v < 0 then "-" else "" in
  if f >= 1e9 then Printf.sprintf "%s%.2fG" sign (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%s%.2fM" sign (f /. 1e6)
  else if f >= 10_000. then Printf.sprintf "%s%.1fk" sign (f /. 1e3)
  else begin
    (* thousands separator for the small range, where digits matter *)
    let s = string_of_int (abs v) in
    let n = String.length s in
    let b = Buffer.create (n + 4) in
    String.iteri
      (fun i c ->
        if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char b ',';
        Buffer.add_char b c)
      s;
    sign ^ Buffer.contents b
  end

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}"; "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 32) s track =
  let len = Series.length s in
  if len = 0 then ""
  else begin
    let take = min width len in
    let first = len - take in
    let lo = ref max_int and hi = ref min_int in
    for i = first to len - 1 do
      let v = Series.get s ~row:i ~track in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    let span = !hi - !lo in
    let b = Buffer.create (3 * take) in
    for i = first to len - 1 do
      let v = Series.get s ~row:i ~track in
      let level = if span = 0 then 0 else (v - !lo) * 7 / span in
      Buffer.add_string b spark_levels.(level)
    done;
    Buffer.contents b
  end

let bar ~width ~num ~den =
  if den <= 0 then ""
  else begin
    let fill = max 0 (min width (num * width / den)) in
    let b = Buffer.create (width + 2) in
    Buffer.add_char b '[';
    for i = 0 to width - 1 do
      Buffer.add_char b (if i < fill then '#' else '-')
    done;
    Buffer.add_char b ']';
    Buffer.contents b
  end

let has_prefix ~prefix s = String.starts_with ~prefix s

let render ?(budget_words = 0) ?(violations = []) s =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  if Series.total s = 0 then begin
    line "mkc top — waiting for the first sample";
    Buffer.contents b
  end
  else begin
    let names = Series.tracks s in
    let idx name = Series.index s name in
    let last_of name = Option.map (Series.last s) (idx name) in
    let len = Series.length s in
    let edges = Series.row_edges s (len - 1) in
    let elapsed_ns = Series.row_ns s (len - 1) - Series.row_ns s 0 in
    line "mkc top — %s edges · %.1fs · %d samples (%d retained)" (pp_count edges)
      (float_of_int elapsed_ns /. 1e9)
      (Series.total s) len;
    (match idx "pipeline.edges_per_sec" with
    | Some t ->
        line "  throughput  %9s edges/s  %s  (min %s, max %s)"
          (pp_count (Series.last s t))
          (sparkline s t)
          (pp_count (Series.min_of s t))
          (pp_count (Series.max_of s t))
    | None -> ());
    (match last_of "space.words" with
    | Some words when budget_words > 0 ->
        line "  space       %9s words / budget %s  %s %3d%%" (pp_count words)
          (pp_count budget_words)
          (bar ~width:20 ~num:words ~den:budget_words)
          (words * 100 / budget_words)
    | Some words -> line "  space       %9s words (no budget)" (pp_count words)
    | None -> ());
    Array.iteri
      (fun t name ->
        if has_prefix ~prefix:"space." name && name <> "space.words" then
          line "    %-32s %9s" (String.sub name 6 (String.length name - 6))
            (pp_count (Series.last s t)))
      names;
    (match (last_of "gc.minor_words", last_of "gc.major_words", last_of "gc.heap_words") with
    | Some mi, Some ma, Some he ->
        line "  gc          minor %s  major %s  heap %s words" (pp_count mi) (pp_count ma)
          (pp_count he)
    | _ -> ());
    let sketchy =
      [
        ("sketch.l0_occupancy", "l0 occ");
        ("sketch.l0_prunes", "l0 prunes");
        ("sketch.f2_tracked", "f2 tracked");
        ("sketch.f2_prunes", "f2 prunes");
      ]
      |> List.filter_map (fun (name, lbl) ->
             Option.map (fun v -> Printf.sprintf "%s %s" lbl (pp_count v)) (last_of name))
    in
    if sketchy <> [] then line "  sketches    %s" (String.concat "  " sketchy);
    let quality =
      [ ("sketch.hh_recovery_ppm", "hh recovery"); ("sketch.memo_hit_ppm", "memo hit") ]
      |> List.filter_map (fun (name, lbl) ->
             Option.map
               (fun v -> Printf.sprintf "%s %.1f%%" lbl (float_of_int v /. 10_000.))
               (last_of name))
    in
    if quality <> [] then line "  quality     %s" (String.concat "  " quality);
    (* Anything outside the families above still shows up. *)
    Array.iteri
      (fun t name ->
        if
          not
            (has_prefix ~prefix:"space." name
            || has_prefix ~prefix:"gc." name
            || has_prefix ~prefix:"sketch." name
            || has_prefix ~prefix:"pipeline." name)
        then
          line "  %-32s last %9s  min %9s  max %9s" name
            (pp_count (Series.last s t))
            (pp_count (Series.min_of s t))
            (pp_count (Series.max_of s t)))
      names;
    (match violations with
    | [] -> line "  health      OK"
    | vs ->
        let total = List.fold_left (fun a (_, c) -> a + c) 0 vs in
        if total = 0 then
          line "  health      OK (%s armed)"
            (String.concat ", " (List.map fst vs))
        else
          line "  health      %s"
            (String.concat "  "
               (List.filter_map
                  (fun (name, c) -> if c = 0 then None else Some (Printf.sprintf "%s ×%d" name c))
                  vs)));
    Buffer.contents b
  end
