lib/core/estimate.mli: Mkc_stream Params Solution
