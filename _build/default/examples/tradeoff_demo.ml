(* The paper's headline in one screen: the space/approximation trade-off.

   Sweeps α on a fixed instance and prints, per α: the words of state the
   single-pass estimator kept, the space predicted by Θ̃(m/α²), and the
   achieved approximation ratio — the Table 1 "[here]" rows in miniature
   (the full sweep lives in bench/main.ml, experiment E1).

   Run with:  dune exec examples/tradeoff_demo.exe *)

module Ss = Mkc_stream.Set_system

let () =
  let n = 4096 and m = 2048 and k = 16 in
  let pl = Mkc_workload.Planted.few_large ~n ~m ~k ~seed:21 in
  let sys = pl.Mkc_workload.Planted.system in
  let opt = pl.Mkc_workload.Planted.planted_coverage in
  let stream = Ss.edge_stream ~seed:22 sys in
  Format.printf "instance: n=%d m=%d k=%d, planted OPT=%d, %d pairs@.@." n m k opt
    (Array.length stream);
  Format.printf "%6s  %12s  %12s  %10s  %8s@." "α" "space(words)" "~c·m/α²" "estimate"
    "OPT/est";
  List.iter
    (fun alpha ->
      let p = Mkc_core.Params.make ~m ~n ~k ~alpha ~seed:23 () in
      let est = Mkc_core.Estimate.create p in
      Array.iter (Mkc_core.Estimate.feed est) stream;
      let r = Mkc_core.Estimate.finalize est in
      let words = Mkc_core.Estimate.words est in
      let predicted = float_of_int m /. (alpha *. alpha) in
      Format.printf "%6.0f  %12d  %12.0f  %10.0f  %8.2f@." alpha words predicted
        r.Mkc_core.Estimate.estimate
        (float_of_int opt /. Float.max 1.0 r.Mkc_core.Estimate.estimate))
    [ 2.0; 4.0; 8.0; 16.0 ];
  Format.printf
    "@.space falls ~quadratically with α while the achieved ratio stays ≲ α — Theorem 3.1.@."
