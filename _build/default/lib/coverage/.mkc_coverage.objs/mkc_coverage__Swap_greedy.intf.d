lib/coverage/swap_greedy.mli: Greedy
