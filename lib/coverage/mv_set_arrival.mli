(** Threshold-greedy set-arrival Max k-Cover in sampled space, after
    McGregor–Vu (ICDT 2017 [34]) — the
    "Reporting / Set Arrival / 2 + ε / Õ(k/ε³)" row of Table 1.

    For each guess [v] of OPT (powers of (1+ε)), subsample the universe
    at rate [Θ̃(k / (ε² v))] — so only Õ(k/ε²) of an optimal solution's
    elements survive per guess, Õ(k/ε³) over the ladder — and admit an
    arriving set when its marginal coverage {e on the sample} is at
    least [rate·v / (2k)].  The element-sampling lemma (the paper's
    Lemma 2.5) transfers the threshold-greedy 1/2-approximation back to
    the full universe at (1 ± ε) distortion.

    Space is independent of n (unlike {!Sieve}'s Õ(n) bitmaps): only
    sampled element ids are retained.  Set-arrival only. *)

type t

type result = { chosen : int list; coverage : float }
(** [coverage] is the best guess's estimate (scaled back). *)

val create : ?epsilon:float -> ?seed:int -> k:int -> unit -> t
(** Default ε = 0.5, seed 1. *)

val feed : t -> int -> int array -> unit
val result : t -> result
val words : t -> int

val edge_sink : t -> result Mkc_stream.Sink.Set_arrival.t
(** The threshold-greedy baseline as an edge sink via the set-arrival
    adapter: drive it with [Mkc_stream.Sink.Set_arrival.sink ()] over a
    stream whose edges arrive grouped by set (e.g. the canonical
    set-major order).  On any other order the adapter re-feeds fragments
    of a set as separate arrivals. *)
