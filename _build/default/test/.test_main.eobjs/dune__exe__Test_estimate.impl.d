test/test_estimate.ml: Alcotest Array Float List Mkc_core Mkc_coverage Mkc_hashing Mkc_stream Mkc_workload Printf
