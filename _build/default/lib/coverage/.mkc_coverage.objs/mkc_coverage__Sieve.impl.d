lib/coverage/sieve.ml: Array Bytes Float Greedy Hashtbl List
