let ceil_log2 x =
  if x <= 1 then 0
  else
    let rec go i acc = if acc >= x then i else go (i + 1) (acc * 2) in
    go 0 1

let log_mn_indep ~m ~n =
  let m = max 2 m and n = max 2 n in
  max 4 (ceil_log2 m + ceil_log2 n)

let sample_rate_range ~rate =
  if rate <= 0.0 then invalid_arg "Hash_family.sample_rate_range: rate <= 0";
  if rate >= 1.0 then 1 else max 1 (int_of_float (Float.round (1.0 /. rate)))

let ceil_div a b =
  if b <= 0 then invalid_arg "Hash_family.ceil_div: divisor must be positive";
  (a + b - 1) / b
