test/test_coverage.ml: Alcotest Array Fun List Mkc_coverage Mkc_stream Mkc_workload
