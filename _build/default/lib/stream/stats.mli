(** Instance statistics used in the paper's case analysis.

    Computed offline (full-memory) from a {!Set_system}; tests use them
    to place instances into the paper's regimes I/II/III (Section 4) and
    to verify set-sampling claims. *)

val frequency_histogram : Set_system.t -> (int * int) list
(** Pairs [(frequency, #elements with that frequency)] sorted by
    frequency. *)

val ucmn_size : Set_system.t -> lambda:float -> int
(** |U^cmn_λ| with the paper's polylog factor set to 1: the number of
    elements appearing in at least [m / λ] sets (Definition 2.1,
    practical profile). [lambda > 0]. *)

val max_frequency : Set_system.t -> int

val contribution_profile : Set_system.t -> int list -> int array
(** Given a selection in a fixed order, the disjoint contributions
    |O'_i| of Definition 4.2 (first-come ownership of covered
    elements). *)
