let int_array a = Array.length a
let float_array a = Array.length a
let hashtbl h ~entry_words = Hashtbl.length h * entry_words

let pp_bytes ppf words =
  Format.fprintf ppf "%d words (%.1f KiB)" words (float_of_int words *. 8.0 /. 1024.0)
