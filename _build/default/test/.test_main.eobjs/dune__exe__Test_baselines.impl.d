test/test_baselines.ml: Alcotest Array Fun List Mkc_core Mkc_coverage Mkc_stream Mkc_workload
