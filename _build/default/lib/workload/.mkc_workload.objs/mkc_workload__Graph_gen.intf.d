lib/workload/graph_gen.mli: Mkc_stream
