(** F2-Contributing (Theorem 2.11, after Indyk–Woodruff [29]).

    A class of coordinates [R_t = \{i : 2^(t-1) < a(i) ≤ 2^t\}] is
    γ-contributing when [|R_t| · 2^(2t) ≥ γ·F2(a)].  The algorithm of
    Section 2.2 finds, w.h.p., one coordinate from {e every}
    γ-contributing class: for each guess [n_t = 2^i] of the class size
    ([i ≤ log r]) it subsamples coordinates at rate ≈ [polylog / 2^i]
    with a Θ(log mn)-wise independent hash and runs an
    {!F2_heavy_hitter} on the surviving substream — once only polylog
    members of the class survive, each is an Ω̃(γ)-heavy hitter of the
    subsampled F2 (Lemma 2.9).  Reported values are (1 ± 1/2)-accurate.

    [r] bounds the class sizes searched; Figure 6 exploits this to keep
    supersets inflated by common elements out of the candidate set
    (Remark 4.12). *)

type t

type hit = { id : int; freq : float; level : int }
(** [level] is the size-guess index i (class size ≈ 2^i) whose
    substream surfaced the coordinate. *)

val create :
  ?depth:int ->
  ?oversample:float ->
  gamma:float ->
  r:int ->
  indep:int ->
  seed:Mkc_hashing.Splitmix.t ->
  unit ->
  t
(** [create ~gamma ~r ~indep ~seed ()] prepares [⌈log2 r⌉ + 1] parallel
    heavy-hitter instances.  [indep] is the independence of the
    coordinate-subsampling hashes (Θ(log mn) per the paper).
    [oversample] multiplies the survival rate (the paper's [12 log m];
    default 2.0 under the practical profile). *)

val add : t -> int -> int -> unit
(** [add t i delta]: feed an update for coordinate [i]; each level
    processes it iff [i] survives that level's subsampling. *)

val add_batch : t -> int array -> pos:int -> len:int -> delta:int -> unit
(** [add_batch t ids ~pos ~len ~delta] ≡ per-item [add] over the chunk
    with the per-call dispatch hoisted out of the loop. *)

val decide : t -> int -> int
(** The subsampling decision for coordinate [i] as a keep-level code
    ([-1] = survives no level): one hash evaluation, no allocation.
    [add t i d] ≡ [add_decided t ~code:(decide t i) i d], so a caller
    may decide once per distinct coordinate and replay the code across
    all of that coordinate's updates. *)

val decide_batch : t -> int array -> pos:int -> len:int -> int array -> unit
(** [out.(j) = decide t ids.(pos + j)] for [j < len], hashed
    coefficient-major in one pass. *)

val add_decided : t -> code:int -> int -> int -> unit
(** [add] with the sampling decision precomputed. *)

val add_cs_decided : t -> code:int -> int -> int -> unit
(** Only the CountSketch halves of the surviving levels' updates —
    linear, so per-coordinate deltas may be aggregated per chunk. *)

val add_tracked_decided : t -> code:int -> int -> int -> unit
(** Only the candidate-tracking halves — order-sensitive, must replay
    in stream order (see {!F2_heavy_hitter.add_tracked}). *)

val hits : t -> hit list
(** One or more candidates per level that passed the per-level φ-heavy
    test, deduplicated by coordinate (keeping the largest frequency
    estimate), sorted by decreasing frequency. *)

val candidates : t -> hit list
(** All tracked candidates across levels (no φ filter), deduplicated and
    sorted by decreasing frequency — callers apply absolute thresholds. *)

val levels : t -> int

val level : t -> int -> F2_heavy_hitter.t
(** The heavy-hitter instance of one subsampling level.  A coordinate
    with keep-level code [c >= 0] updates levels [0 .. levels t - 1 - c];
    the levels share no state, so a chunk-planned driver may regroup
    tracked updates level-by-level (each level still replayed in stream
    order) and stay bit-for-bit with per-item {!add}.
    @raise Invalid_argument on an out-of-range level. *)

val tracked : t -> int
(** Total candidates currently tracked, summed across levels. *)

val prunes : t -> int
(** Total candidate-table prune passes, summed across levels. *)

val words : t -> int

val dump : t -> (int array array * (int * int) list * int) array
(** Per-level {!F2_heavy_hitter.dump}s, in level order. *)

val load_state :
  t -> (int array array * (int * int) list * int) array -> (unit, string) result
(** Overlay dumped per-level states onto a freshly created instance
    (same gamma/r/seed); errors name the offending level. *)

val merge_into : dst:t -> t -> unit
(** Merge level-by-level (the subsampling decision is seed-determined,
    so substreams partition consistently on both sides).
    @raise Invalid_argument on level-count mismatch. *)
