lib/sketch/f2_contributing.ml: Array F2_heavy_hitter Hashtbl List Mkc_hashing Sampler
