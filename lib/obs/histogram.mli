(** Mergeable log-linear (HDR-style) latency histogram.

    Integer-valued (nanoseconds, sizes): each power-of-two octave is
    split into {!sub_buckets} linear sub-buckets, so any value is
    bucketed within ≤ 1/16 (6.25%) relative error, and values 0..15
    are exact.  All state lives in immediate ints on one preallocated
    flat array: {!record} allocates nothing (pinned by the
    allocation-regression test), and {!merge} is a commutative monoid
    with {!create} as identity — the registry's shard-merge law.

    This module also owns the single ceil-rank quantile definition
    ({!ceil_rank}, {!quantile_sorted}) shared with
    [Telemetry.summarize], so histogram digests and raw-sample
    summaries cannot drift. *)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;  (** meaningless when [count = 0] *)
  mutable vmax : int;  (** meaningless when [count = 0] *)
  buckets : int array;  (** length {!num_buckets} *)
}

val num_buckets : int
val sub_buckets : int

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** Record one observation (negatives clamp to 0).  Zero allocation. *)

val bucket_of : int -> int
(** Index of the bucket a value lands in. *)

val bound_of_bucket : int -> int
(** Largest value mapping to the bucket (inclusive upper bound); used
    as the Prometheus [le] label and by {!quantile}. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' observations. *)

val merge_into : dst:t -> t -> unit

val nonzero_buckets : t -> (int * int) list
(** [(bucket index, count)] for non-empty buckets, ascending. *)

val ceil_rank : float -> int -> int
(** [ceil_rank q n] — 1-based rank [ceil (q * n)] clamped to [1, n]. *)

val quantile_sorted : int array -> float -> int
(** Exact ceil-rank quantile of a sorted sample array; 0 when empty. *)

val quantile : t -> float -> int
(** Ceil-rank quantile over the buckets: the inclusive upper bound of
    the bucket holding the ranked observation, capped at the exact
    observed max.  Exact for values < 16, within 6.25% otherwise; 0
    when empty. *)

(** Fixed-size summary of a histogram: what the run ledger stores and
    the sentinel's quantile-shift checks compare. *)
type digest = {
  d_count : int;
  d_sum : int;
  d_min : int;
  d_max : int;
  d_p50 : int;
  d_p90 : int;
  d_p99 : int;
  d_p999 : int;
}

val digest : t -> digest
val digest_to_json : digest -> Json.t

val digest_of_json : Json.t -> (digest, string) result
(** Rejects negative counts, [min > max], and non-monotone quantiles. *)

val to_json : t -> Json.t
(** Full encoding: count/sum/min/max plus sparse bucket pairs. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; rejects out-of-range bucket indices and
    bucket counts that do not sum to [count]. *)

val prometheus : name:string -> t -> string
(** Prometheus exposition: cumulative [_bucket{le="..."}] lines (the
    inclusive bucket upper bounds), a [+Inf] bucket, [_sum], and
    [_count]. *)
