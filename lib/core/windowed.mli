(** Sliding-window and exponential-decay coverage estimation.

    The general streaming model of the paper is insertion + deletion;
    freshness-weighted queries ("coverage over the recent stream") are
    the other practical face of the same machinery.  This module cuts
    the edge stream into fixed-size epochs, runs a fresh {!Estimate}
    instance per epoch, and checkpoints each finished epoch's encoded
    state ({!Estimate.encode}) into a ring of the last [window] epochs.
    A query merges the held states oldest-first into one estimator by
    the shard-merge path ({!Estimate.merge_into}) plus the in-flight
    epoch, so the windowed answer is exactly what a fresh single pass
    over the live suffix would produce (L0 and the linear sketches
    merge losslessly; only work counters and the decision memo differ,
    and neither feeds the estimate).

    With [decay] = λ the same ring instead feeds the {!Decay} monoid:
    per-epoch finalized estimates are folded oldest-first, each step
    aging the accumulated mass by λ per epoch — an exponential-decay
    estimate in O(window) extra space.

    Telemetry: [window.epochs] (live epochs, gauge), [window.rolled]
    and [window.swaps] (counters), and a [window.decay_merge] span
    around each query-time merge — all through the global registry, so
    [--telemetry] picks them up at no extra plumbing. *)

(** The decay-merge monoid: [(v, span)] is a mass [v] covering [span]
    epochs.  [combine ~lambda a b] (with [b] the newer operand) is
    [(b.v + λ^b.span · a.v, a.span + b.span)] — associative, with
    {!Decay.identity} [(0, 0)] as two-sided identity (the laws
    test_window checks). *)
module Decay : sig
  type acc = { v : float; span : int }

  val identity : acc
  val combine : lambda:float -> acc -> acc -> acc

  val of_estimate : float -> acc
  (** One epoch's finalized estimate as a span-1 element. *)
end

type t

val create :
  ?epsilon:float -> ?decay:float -> Params.t -> window:int -> epoch_edges:int -> unit -> t
(** [create params ~window ~epoch_edges ()] retains the last [window]
    epochs of [epoch_edges] edges each.  [decay] switches the query to
    the exponential-decay fold (must lie in (0, 1)); [epsilon]
    (default 0.1) is the {!Mkc_coverage.Sieve.improves} threshold for
    champion swaps.  Raises [Invalid_argument] on out-of-range
    arguments, by name. *)

val feed : t -> Mkc_stream.Edge.t -> unit
val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Batched feeds split chunks at epoch boundaries, so rolls land at
    exactly the per-edge drive's edge counts (bit-for-bit equal
    states across driving modes). *)

val feed_planned :
  t -> Mkc_stream.Chunk_plan.t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit

type result = {
  estimate : float;  (** windowed (or decayed) coverage estimate *)
  outcome : Solution.outcome option;
      (** the merged window's winning oracle outcome (witness ids) *)
  epochs : int;  (** epochs contributing to the answer, partial included *)
  rolled : int;  (** total epochs rolled over the whole run *)
  swaps : int;  (** champion swaps decided by the sieve comparator *)
}

val finalize : t -> result

val words : t -> int
(** Current estimator plus every held epoch payload — a checkpoint the
    process holds is real space (same accounting as
    {!Mkc_stream.Sink.Observed.note_checkpoint}). *)

val words_breakdown : t -> (string * int) list

val stats_totals : t -> (string * int) list
(** {!Estimate.stats_totals} of the in-flight epoch (what the
    telemetry probes sample mid-run). *)

val params : t -> Params.t

val current : t -> Estimate.t
(** The in-flight epoch's estimator.  Telemetry probes must re-read
    this per sample — it is replaced on every roll. *)

val rolled : t -> int
val swaps : t -> int

val sink : (t, result) Mkc_stream.Sink.sink
