(* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; we map
   every other character to '_' and prefix a '_' when the first
   character is a digit (dropping it would collide "2xx" with "xx"). *)
let sanitize name =
  let mapped =
    String.map
      (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Prometheus exposition spells the IEEE specials "NaN" / "+Inf" /
   "-Inf"; %g would print "nan"/"inf", which scrapers reject. *)
let num f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else Printf.sprintf "%g" f

(* Bucket upper bound for the [le] label / quantile report: log-linear
   Histogram bounds on current snapshots, 2^(i+1) on legacy v1–v3. *)
let bucket_bound ~schema i =
  if String.equal schema Snapshot.schema_version then
    float_of_int (Histogram.bound_of_bucket i)
  else Float.pow 2.0 (float_of_int (i + 1))

let prometheus (s : Snapshot.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (m : Snapshot.metric) ->
      let n = sanitize m.Snapshot.mname in
      match m.Snapshot.mvalue with
      | Snapshot.Counter c ->
          line "# TYPE %s counter" n;
          line "%s %d" n c
      | Snapshot.Gauge g ->
          line "# TYPE %s gauge" n;
          line "%s %s" n (num g)
      | Snapshot.Histogram h ->
          line "# TYPE %s histogram" n;
          let cum = ref 0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              line "%s_bucket{le=\"%s\"} %d" n (num (bucket_bound ~schema:s.Snapshot.schema i)) !cum)
            h.Snapshot.hbuckets;
          line "%s_bucket{le=\"+Inf\"} %d" n h.Snapshot.hcount;
          line "%s_sum %s" n (num h.Snapshot.hsum);
          line "%s_count %d" n h.Snapshot.hcount)
    s.Snapshot.metrics;
  Buffer.contents b

let quantile_of_hist ?(schema = Snapshot.schema_version) (h : Snapshot.hist) q =
  if h.Snapshot.hcount = 0 then 0.0
  else begin
    let rank = Histogram.ceil_rank q h.Snapshot.hcount in
    let seen = ref 0 and hit = ref None in
    List.iter
      (fun (i, c) ->
        seen := !seen + c;
        if !hit = None && !seen >= rank then hit := Some i)
      h.Snapshot.hbuckets;
    match !hit with
    | Some i -> Float.min (bucket_bound ~schema i) h.Snapshot.hmax
    | None -> h.Snapshot.hmax
  end

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let summary (s : Snapshot.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "== metrics (schema %s) ==" s.Snapshot.schema;
  List.iter
    (fun (m : Snapshot.metric) ->
      match m.Snapshot.mvalue with
      | Snapshot.Counter c -> line "  %-48s %d" m.Snapshot.mname c
      | Snapshot.Gauge g -> line "  %-48s %s" m.Snapshot.mname (num g)
      | Snapshot.Histogram h ->
          line "  %-48s n=%d p50=%s p99=%s max=%s" m.Snapshot.mname h.Snapshot.hcount
            (pp_ns (quantile_of_hist ~schema:s.Snapshot.schema h 0.5))
            (pp_ns (quantile_of_hist ~schema:s.Snapshot.schema h 0.99))
            (pp_ns h.Snapshot.hmax))
    s.Snapshot.metrics;
  if s.Snapshot.spans <> [] then begin
    (* aggregate per span name: count and total time *)
    let agg = Hashtbl.create 8 in
    List.iter
      (fun (sp : Span.span) ->
        let c, tot = Option.value ~default:(0, 0) (Hashtbl.find_opt agg sp.Span.name) in
        Hashtbl.replace agg sp.Span.name (c + 1, tot + sp.Span.dur_ns))
      s.Snapshot.spans;
    line "== spans (last %d retained per domain) ==" Span.ring_capacity;
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) agg []
    |> List.sort compare
    |> List.iter (fun (name, (c, tot)) ->
           line "  %-48s %6d spans  total %s" name c (pp_ns (float_of_int tot)))
  end;
  List.iter
    (fun (p : Snapshot.profile) ->
      let peak = List.fold_left (fun a (pt : Snapshot.point) -> max a pt.Snapshot.words) 0 p.Snapshot.points in
      match (p.Snapshot.points, List.rev p.Snapshot.points) with
      | first :: _, last :: _ ->
          line "== space profile %S (cadence %d edges, %d samples) ==" p.Snapshot.pname
            p.Snapshot.cadence (List.length p.Snapshot.points);
          line "  words: first=%d peak=%d final=%d" first.Snapshot.words peak last.Snapshot.words;
          List.iter
            (fun (k, w) -> line "    %-46s %d" k w)
            last.Snapshot.breakdown
      | _ -> ())
    s.Snapshot.profiles;
  Buffer.contents b
