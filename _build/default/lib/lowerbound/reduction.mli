(** The reduction of Section 5: α-player Set Disjointness(m) →
    Max 1-Cover on edge-arrival streams.

    Universe [U_I = {e_1, …, e_α}] (one element per player); one set
    [S_j] per item [j ∈ [m]], where [S_j = {i : j ∈ T_i}].  Player [i]
    emits the pairs [(S_j, e_i)] for its items [j ∈ T_i] — so the
    stream is exactly the players' inputs in speaking order, and a
    streaming algorithm's memory between players is a one-way message.

    Claims 5.3/5.4: a No instance has optimal 1-cover coverage [α]
    (the planted common item's set covers every player-element); a Yes
    instance has optimal coverage 1.  Hence any algorithm estimating
    Max 1-Cover within a factor < α distinguishes the cases and
    inherits the Ω(m/α²) bound (Theorem 3.3). *)

val to_stream : Disjointness.t -> Mkc_stream.Edge.t array
(** The induced edge stream in player order (player 0 first). *)

val to_system : Disjointness.t -> Mkc_stream.Set_system.t
(** The full Max 1-Cover instance (n = r elements, m sets) — for
    offline verification of Claims 5.3/5.4. *)

val player_boundaries : Disjointness.t -> int array
(** [boundaries.(i)] = index in the stream where player [i]'s pairs
    begin; used by {!Protocol} to cut the stream into messages. *)
