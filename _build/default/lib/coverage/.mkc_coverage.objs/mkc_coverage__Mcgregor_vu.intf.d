lib/coverage/mcgregor_vu.mli: Mkc_stream
