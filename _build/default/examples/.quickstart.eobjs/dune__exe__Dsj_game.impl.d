examples/dsj_game.ml: Format Mkc_lowerbound
