(* Unit and property tests for the hashing substrate. *)

module Pf = Mkc_hashing.Prime_field
module Sm = Mkc_hashing.Splitmix
module Ph = Mkc_hashing.Poly_hash
module Pw = Mkc_hashing.Pairwise
module Tab = Mkc_hashing.Tabulation
module Hf = Mkc_hashing.Hash_family

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- Splitmix ---------- *)

let test_splitmix_deterministic () =
  let a = Sm.create 42 and b = Sm.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sm.next a) (Sm.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Sm.create 1 and b = Sm.create 2 in
  let all_equal = ref true in
  for _ = 1 to 16 do
    if not (Int64.equal (Sm.next a) (Sm.next b)) then all_equal := false
  done;
  checkb "different seeds diverge" false !all_equal

let test_splitmix_below_in_range () =
  let g = Sm.create 7 in
  for bound = 1 to 50 do
    for _ = 1 to 20 do
      let v = Sm.below g bound in
      checkb "0 <= v < bound" true (v >= 0 && v < bound)
    done
  done

let test_splitmix_below_hits_all_residues () =
  let g = Sm.create 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Sm.below g 8) <- true
  done;
  checkb "all residues of [0,8) reached" true (Array.for_all Fun.id seen)

let test_splitmix_fork_reproducible () =
  let g = Sm.create 5 in
  let a = Sm.fork g 3 and b = Sm.fork g 3 in
  check Alcotest.int64 "fork deterministic" (Sm.next a) (Sm.next b)

let test_splitmix_fork_distinct () =
  let g = Sm.create 5 in
  let a = Sm.fork g 0 and b = Sm.fork g 1 in
  checkb "fork children distinct" false (Int64.equal (Sm.next a) (Sm.next b))

let test_splitmix_next_int_nonneg () =
  let g = Sm.create 9 in
  for _ = 1 to 200 do
    checkb "non-negative" true (Sm.next_int g >= 0)
  done

(* ---------- Prime field ---------- *)

let test_field_mul_matches_reference () =
  let g = Sm.create 2024 in
  for _ = 1 to 2000 do
    let a = Pf.normalize (Sm.next_int g) and b = Pf.normalize (Sm.next_int g) in
    checki "mul = reference" (Pf.mul_reference a b) (Pf.mul a b)
  done

let test_field_mul_edge_cases () =
  let p = Pf.p in
  checki "0 * x" 0 (Pf.mul 0 12345);
  checki "1 * x" 12345 (Pf.mul 1 12345);
  checki "(p-1)^2" (Pf.mul_reference (p - 1) (p - 1)) (Pf.mul (p - 1) (p - 1));
  checki "(p-1) * 1" (p - 1) (Pf.mul (p - 1) 1)

let test_field_add_sub_inverse () =
  let g = Sm.create 3 in
  for _ = 1 to 500 do
    let a = Pf.normalize (Sm.next_int g) and b = Pf.normalize (Sm.next_int g) in
    checki "(a + b) - b = a" a (Pf.sub (Pf.add a b) b)
  done

let test_field_inv () =
  let g = Sm.create 4 in
  for _ = 1 to 100 do
    let a = 1 + Sm.below g (Pf.p - 1) in
    checki "a * a^-1 = 1" 1 (Pf.mul a (Pf.inv a))
  done;
  Alcotest.check_raises "inv 0 raises"
    (Invalid_argument "Prime_field.inv: zero has no inverse") (fun () -> ignore (Pf.inv 0))

let test_field_pow () =
  checki "2^10" 1024 (Pf.pow 2 10);
  checki "x^0" 1 (Pf.pow 98765 0);
  (* Fermat: a^(p-1) = 1 *)
  checki "fermat" 1 (Pf.pow 31337 (Pf.p - 1))

let test_field_normalize () =
  checki "negative wraps" (Pf.p - 1) (Pf.normalize (-1));
  checki "p wraps to 0" 0 (Pf.normalize Pf.p);
  checki "id below p" 17 (Pf.normalize 17)

(* QCheck: algebraic laws of the field. *)
let field_elt = QCheck.map (fun x -> Pf.normalize x) QCheck.(map abs QCheck.int)

let prop_mul_commutative =
  QCheck.Test.make ~name:"field mul commutative" ~count:300
    (QCheck.pair field_elt field_elt)
    (fun (a, b) -> Pf.mul a b = Pf.mul b a)

let prop_mul_associative =
  QCheck.Test.make ~name:"field mul associative" ~count:300
    (QCheck.triple field_elt field_elt field_elt)
    (fun (a, b, c) -> Pf.mul a (Pf.mul b c) = Pf.mul (Pf.mul a b) c)

let prop_distributive =
  QCheck.Test.make ~name:"field distributivity" ~count:300
    (QCheck.triple field_elt field_elt field_elt)
    (fun (a, b, c) -> Pf.mul a (Pf.add b c) = Pf.add (Pf.mul a b) (Pf.mul a c))

(* ---------- Poly hash ---------- *)

let test_poly_hash_range () =
  let g = Sm.create 21 in
  let h = Ph.create ~indep:4 ~range:97 ~seed:g in
  for x = 0 to 2000 do
    let v = Ph.hash h x in
    checkb "in range" true (v >= 0 && v < 97)
  done

let test_poly_hash_deterministic () =
  let h = Ph.create ~indep:6 ~range:1000 ~seed:(Sm.create 8) in
  for x = 0 to 100 do
    checki "stable" (Ph.hash h x) (Ph.hash h x)
  done

let test_poly_hash_uniformity () =
  (* χ²-style sanity: bucket counts of 20k keys into 16 buckets. *)
  let h = Ph.create ~indep:4 ~range:16 ~seed:(Sm.create 33) in
  let counts = Array.make 16 0 in
  for x = 0 to 19_999 do
    let b = Ph.hash h x in
    counts.(b) <- counts.(b) + 1
  done;
  let expected = 20_000 / 16 in
  Array.iter
    (fun c ->
      checkb "bucket within 20% of uniform" true
        (float_of_int (abs (c - expected)) < 0.2 *. float_of_int expected))
    counts

let test_poly_hash_keep_rate () =
  let h = Ph.create ~indep:8 ~range:64 ~seed:(Sm.create 77) in
  let kept = ref 0 in
  let total = 64_000 in
  for x = 0 to total - 1 do
    if Ph.keep h x then incr kept
  done;
  let expected = total / 64 in
  checkb "keep rate ~ 1/range" true (abs (!kept - expected) < expected / 2)

let test_poly_hash_pairwise_collisions () =
  (* Pairwise independence: collision probability over the FUNCTION draw
     is 1/range; average over many functions, one random pair each.
     (Within one degree-1 function, consecutive-pair collisions are
     fully correlated — h(x+1) − h(x) is the constant c₁ — so the
     average must be over the family, not over pairs.) *)
  let rng = Sm.create 99 in
  let collisions = ref 0 in
  let trials = 4_096 in
  for t = 0 to trials - 1 do
    let h = Ph.create ~indep:2 ~range:64 ~seed:(Sm.fork rng t) in
    let x = Sm.below rng 1_000_000 and y = 1_000_000 + Sm.below rng 1_000_000 in
    if Ph.hash h x = Ph.hash h y then incr collisions
  done;
  let expected = trials / 64 in
  checkb "pair collision rate ~ 1/64" true (abs (!collisions - expected) < expected)

let test_poly_hash_words () =
  let h = Ph.create ~indep:5 ~range:10 ~seed:(Sm.create 1) in
  checki "words = indep + 1" 6 (Ph.words h);
  checki "indep accessor" 5 (Ph.indep h);
  checki "range accessor" 10 (Ph.range h)

let test_poly_hash_validation () =
  Alcotest.check_raises "indep 0 rejected"
    (Invalid_argument "Poly_hash.create: indep must be >= 1") (fun () ->
      ignore (Ph.create ~indep:0 ~range:4 ~seed:(Sm.create 0)));
  Alcotest.check_raises "range 0 rejected"
    (Invalid_argument "Poly_hash.create: range must be >= 1") (fun () ->
      ignore (Ph.create ~indep:2 ~range:0 ~seed:(Sm.create 0)))

(* ---------- Pairwise ---------- *)

let test_pairwise_range_and_sign () =
  let h = Pw.create ~range:31 ~seed:(Sm.create 6) in
  for x = 0 to 500 do
    let v = Pw.hash h x in
    checkb "in range" true (v >= 0 && v < 31);
    let s = Pw.sign h x in
    checkb "sign is ±1" true (s = 1 || s = -1)
  done

let test_pairwise_sign_balance () =
  let h = Pw.create ~range:2 ~seed:(Sm.create 123) in
  let pos = ref 0 in
  let total = 10_000 in
  for x = 0 to total - 1 do
    if Pw.sign h x = 1 then incr pos
  done;
  checkb "signs roughly balanced" true (abs (!pos - (total / 2)) < total / 10)

(* ---------- Tabulation ---------- *)

let test_tabulation_deterministic () =
  let t = Tab.create ~seed:(Sm.create 55) in
  for x = 0 to 100 do
    check Alcotest.int64 "stable" (Tab.hash64 t x) (Tab.hash64 t x)
  done

let test_tabulation_range () =
  let t = Tab.create ~seed:(Sm.create 56) in
  for x = 0 to 1000 do
    let v = Tab.hash t x 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_tabulation_unit_float () =
  let t = Tab.create ~seed:(Sm.create 57) in
  for x = 0 to 2000 do
    let f = Tab.to_unit_float t x in
    checkb "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_tabulation_distinct_keys_distinct_hashes () =
  (* 64-bit outputs: collisions among 10k keys are overwhelmingly unlikely. *)
  let t = Tab.create ~seed:(Sm.create 58) in
  let seen = Hashtbl.create 10_000 in
  let collisions = ref 0 in
  for x = 0 to 9_999 do
    let h = Tab.hash64 t x in
    if Hashtbl.mem seen h then incr collisions else Hashtbl.replace seen h ()
  done;
  checki "no collisions" 0 !collisions

let test_tabulation_uniformity () =
  let t = Tab.create ~seed:(Sm.create 59) in
  let counts = Array.make 8 0 in
  for x = 0 to 15_999 do
    counts.(Tab.hash t x 8) <- counts.(Tab.hash t x 8) + 1
  done;
  Array.iter
    (fun c -> checkb "bucket within 15% of uniform" true (abs (c - 2000) < 300))
    counts

(* ---------- Hash_family helpers ---------- *)

let test_ceil_log2 () =
  checki "1 -> 0" 0 (Hf.ceil_log2 1);
  checki "2 -> 1" 1 (Hf.ceil_log2 2);
  checki "3 -> 2" 2 (Hf.ceil_log2 3);
  checki "1024 -> 10" 10 (Hf.ceil_log2 1024);
  checki "1025 -> 11" 11 (Hf.ceil_log2 1025);
  checki "0 -> 0" 0 (Hf.ceil_log2 0)

let prop_ceil_log2_spec =
  QCheck.Test.make ~name:"ceil_log2 spec" ~count:500
    QCheck.(int_range 1 (1 lsl 40))
    (fun x ->
      let i = Hf.ceil_log2 x in
      (1 lsl i) >= x && (i = 0 || 1 lsl (i - 1) < x))

let test_ceil_div () =
  checki "7/2" 4 (Hf.ceil_div 7 2);
  checki "8/2" 4 (Hf.ceil_div 8 2);
  checki "0/5" 0 (Hf.ceil_div 0 5)

let prop_ceil_div_spec =
  QCheck.Test.make ~name:"ceil_div spec" ~count:500
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 1000))
    (fun (a, b) ->
      let q = Hf.ceil_div a b in
      (q * b) >= a && ((q - 1) * b) < a)

let test_log_mn_indep () =
  checkb "at least 4" true (Hf.log_mn_indep ~m:2 ~n:2 >= 4);
  checkb "grows with m,n" true (Hf.log_mn_indep ~m:1024 ~n:1024 >= 20)

let test_sample_rate_range () =
  checki "rate 1 -> range 1" 1 (Hf.sample_rate_range ~rate:1.0);
  checki "rate 1/8 -> 8" 8 (Hf.sample_rate_range ~rate:0.125);
  Alcotest.check_raises "rate 0 rejected"
    (Invalid_argument "Hash_family.sample_rate_range: rate <= 0") (fun () ->
      ignore (Hf.sample_rate_range ~rate:0.0))

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_mul_commutative; prop_mul_associative; prop_distributive;
    prop_ceil_log2_spec; prop_ceil_div_spec ]

let suite =
  [
    Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
    Alcotest.test_case "splitmix seed sensitivity" `Quick test_splitmix_seed_sensitivity;
    Alcotest.test_case "splitmix below in range" `Quick test_splitmix_below_in_range;
    Alcotest.test_case "splitmix below covers residues" `Quick test_splitmix_below_hits_all_residues;
    Alcotest.test_case "splitmix fork reproducible" `Quick test_splitmix_fork_reproducible;
    Alcotest.test_case "splitmix fork distinct" `Quick test_splitmix_fork_distinct;
    Alcotest.test_case "splitmix next_int nonneg" `Quick test_splitmix_next_int_nonneg;
    Alcotest.test_case "field mul matches reference" `Quick test_field_mul_matches_reference;
    Alcotest.test_case "field mul edge cases" `Quick test_field_mul_edge_cases;
    Alcotest.test_case "field add/sub inverse" `Quick test_field_add_sub_inverse;
    Alcotest.test_case "field inverse" `Quick test_field_inv;
    Alcotest.test_case "field pow" `Quick test_field_pow;
    Alcotest.test_case "field normalize" `Quick test_field_normalize;
    Alcotest.test_case "poly hash range" `Quick test_poly_hash_range;
    Alcotest.test_case "poly hash deterministic" `Quick test_poly_hash_deterministic;
    Alcotest.test_case "poly hash uniformity" `Quick test_poly_hash_uniformity;
    Alcotest.test_case "poly hash keep rate" `Quick test_poly_hash_keep_rate;
    Alcotest.test_case "poly hash pairwise collisions" `Quick test_poly_hash_pairwise_collisions;
    Alcotest.test_case "poly hash words" `Quick test_poly_hash_words;
    Alcotest.test_case "poly hash validation" `Quick test_poly_hash_validation;
    Alcotest.test_case "pairwise range and sign" `Quick test_pairwise_range_and_sign;
    Alcotest.test_case "pairwise sign balance" `Quick test_pairwise_sign_balance;
    Alcotest.test_case "tabulation deterministic" `Quick test_tabulation_deterministic;
    Alcotest.test_case "tabulation range" `Quick test_tabulation_range;
    Alcotest.test_case "tabulation unit float" `Quick test_tabulation_unit_float;
    Alcotest.test_case "tabulation collision-free on 10k" `Quick
      test_tabulation_distinct_keys_distinct_hashes;
    Alcotest.test_case "tabulation uniformity" `Quick test_tabulation_uniformity;
    Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "log_mn_indep" `Quick test_log_mn_indep;
    Alcotest.test_case "sample_rate_range" `Quick test_sample_rate_range;
  ]
  @ qsuite
