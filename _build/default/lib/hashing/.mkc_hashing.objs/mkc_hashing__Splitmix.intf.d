lib/hashing/splitmix.mli:
