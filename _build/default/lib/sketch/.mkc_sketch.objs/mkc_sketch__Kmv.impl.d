lib/sketch/kmv.ml: Float Mkc_hashing Set
