(** Conventions shared by the hash families used in the paper's
    algorithms. *)

val log_mn_indep : m:int -> n:int -> int
(** The Θ(log(mn)) independence parameter used throughout Sections 4 and
    Appendix A.1 ("O(log mn)-wise independent is sufficient for all
    applications in this paper", footnote 6).  Returns
    [max 4 (ceil (log2 (m * n)))]. *)

val sample_rate_range : rate:float -> int
(** Convert a survival probability [rate] in (0, 1] into the integer
    range [r] such that [Poly_hash.keep] with range [r] survives with
    probability [1/r ≈ rate].  Clamped to at least 1. *)

val ceil_log2 : int -> int
(** [ceil_log2 x] is the smallest [i] with [2^i >= x]; 0 for [x <= 1]. *)

val ceil_div : int -> int -> int
(** Integer ceiling division for positive arguments. *)
