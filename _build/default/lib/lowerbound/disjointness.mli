(** r-player Set Disjointness with the unique-intersection promise
    (Section 5).

    Each of [r] players holds a set [T_i ⊆ [m]]; the input is promised
    to be either
    - {b Yes}: all [T_i] pairwise disjoint, or
    - {b No}: a unique item [j*] belongs to every [T_i]
      (the sets are otherwise disjoint).

    Chakrabarti–Khot–Sun: any one-way protocol needs Ω(m/r) bits
    (Theorem 5.1), hence any single-pass streaming algorithm solving it
    needs Ω(m/r²) space (Corollary 5.2). *)

type case = Yes | No

type t = {
  r : int;  (** number of players *)
  m : int;  (** item universe *)
  case : case;
  players : int array array;  (** players.(i) = sorted items of T_i *)
  planted : int option;  (** the unique common item in a No instance *)
}

val generate : r:int -> m:int -> case:case -> seed:int -> ?fill:float -> unit -> t
(** Random promise instance.  [fill] (default 0.5) is the fraction of
    the [m] items distributed among players (items are partitioned so
    disjointness holds; a No instance additionally plants one common
    item). *)

val validate : t -> bool
(** Checks the promise (test support). *)
