(** The classic greedy algorithm for Max k-Cover (Nemhauser–Wolsey–
    Fisher [35]): repeatedly pick the set with the largest marginal
    coverage.  Guarantees a (1 − 1/e)-fraction of the optimum — i.e.
    approximation factor 1/(1 − 1/e) ≈ 1.582, tight under P ≠ NP
    (Feige [23]).

    This is the full-memory baseline of Table 1 and the offline solver
    invoked by [SmallSet] (Figure 5) on its stored sub-instance.  The
    implementation is lazy greedy (Minoux): marginal gains are
    submodular hence non-increasing, so stale priority-queue entries
    are re-evaluated only when they surface. *)

type result = { chosen : int list; coverage : int }
(** [chosen] in pick order; [coverage] = |C(chosen)|. *)

val run : Mkc_stream.Set_system.t -> k:int -> result

val run_on_subsets :
  n:int -> sets:(int * int array) list -> k:int -> result
(** Greedy over an explicit list of [(set id, member elements)] pairs —
    the form SmallSet's stored sub-instance takes.  Elements may be any
    non-negative ints below [n]. *)
