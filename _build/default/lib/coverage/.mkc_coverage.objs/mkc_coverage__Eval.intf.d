lib/coverage/eval.mli: Mkc_stream
