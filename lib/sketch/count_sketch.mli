(** CountSketch (Charikar–Chen–Farach-Colton [18]).

    A depth × width array of counters; row [r] hashes item [i] to bucket
    [b_r(i)] with a pairwise hash and adds a 4-wise independent sign
    [s_r(i)].  The frequency estimate is the median over rows of
    [s_r(i) · C\[r\]\[b_r(i)\]], with error [O(√(F2 / width))] per row —
    the L2 guarantee that makes it the standard F2-heavy-hitter building
    block (Theorem 2.10 cites [14, 15, 18, 39]).

    Each row also yields an AMS-style F2 estimate [Σ_b C\[r\]\[b\]²];
    {!f2_estimate} takes the median over rows, saving a separate F2
    sketch inside {!F2_heavy_hitter}. *)

type t

val create : ?depth:int -> width:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t
(** Default depth 5. [width] should be Θ(1/φ) for φ-heavy-hitter use. *)

val add : t -> int -> int -> unit
(** [add t i delta]: update item [i] by [delta]. *)

val add_batch : t -> int array -> pos:int -> len:int -> delta:int -> unit
(** [add_batch t ids ~pos ~len ~delta] ≡ per-item [add] over the chunk,
    restructured row-outer for cache locality. *)

val estimate : t -> int -> float
(** Median-of-rows frequency estimate for item [i]. *)

val f2_estimate : t -> float
(** Median over rows of the per-row sum of squared counters. *)

val width : t -> int
val words : t -> int

val dump : t -> int array array
(** Copy of the depth × width counter matrix. *)

val load_state : t -> int array array -> (unit, string) result
(** Overlay a dumped counter matrix onto a sketch of the same shape. *)

val merge_into : dst:t -> t -> unit
(** Pointwise counter addition (the sketch is linear); both sides must
    share shape and seed.  @raise Invalid_argument on shape mismatch. *)
