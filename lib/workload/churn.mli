(** Seeded churn workloads for the turnstile (insertion + deletion)
    stream model.

    {!apply} rewrites an insertion-only stream so a [frac]-fraction of
    its edges are retracted again later in the stream (sign −1),
    each retraction strictly after its insertion; {!live} recovers the
    net-positive suffix as a plain insertion-only stream, which is what
    offline baselines (greedy) score against.  Both are deterministic
    functions of [(frac, seed, input)]. *)

val apply : frac:float -> seed:int -> Mkc_stream.Edge.t array -> Mkc_stream.Edge.t array
(** Raises [Invalid_argument] if [frac] is outside [\[0, 1)] or the
    base stream already contains deletions. *)

val live : Mkc_stream.Edge.t array -> Mkc_stream.Edge.t array
(** Multiset net counts: each (set, elt) pair appears with its net
    multiplicity (insertions minus deletions, clamped at 0), in first-
    occurrence order. *)
