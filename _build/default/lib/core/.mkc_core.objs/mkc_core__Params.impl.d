lib/core/params.ml: Float Format Mkc_hashing
