lib/hashing/hash_family.ml: Float
