type t = { z : int; hash : Mkc_hashing.Poly_hash.t }

let create ~z ~seed =
  if z < 1 then invalid_arg "Universe_reduction.create: z must be >= 1";
  { z; hash = Mkc_hashing.Poly_hash.create ~indep:4 ~range:z ~seed }

let z t = t.z
let apply t e = Mkc_hashing.Poly_hash.hash t.hash e

let apply_batch t elts ~pos ~len out =
  Mkc_hashing.Poly_hash.hash_batch t.hash elts ~pos ~len out

let apply_edge t (e : Mkc_stream.Edge.t) = { e with elt = apply t e.elt }

let image_size t elts =
  let seen = Hashtbl.create (Array.length elts) in
  Array.iter (fun e -> Hashtbl.replace seen (apply t e) ()) elts;
  Hashtbl.length seen

let words t = Mkc_hashing.Poly_hash.words t.hash + 1
