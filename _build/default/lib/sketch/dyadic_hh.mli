(** Dyadic-search F2 heavy hitters — an alternative realization of
    Theorem 2.10's primitive, after the hierarchical search of
    Cormode–Muthukrishnan and the CountSketch paper [18].

    One CountSketch per level of a dyadic decomposition of [\[0, 2^bits)]:
    level [ℓ] sketches the frequency vector aggregated over dyadic
    intervals of length [2^(bits-ℓ)].  At query time, heavy intervals
    are refined level by level, so heavy coordinates are {e identified}
    without tracking candidate ids during the pass — the trade-off
    against {!F2_heavy_hitter}'s tracker is [bits]× more sketch space
    but zero per-update candidate bookkeeping and no reliance on
    re-occurrence of heavy items.  Experiment E10 ablates the two.

    Insertion-only or turnstile streams both work (the search itself is
    oblivious to deletions). *)

type t

type hit = { id : int; freq : float }

val create :
  ?depth:int -> ?width_factor:int -> bits:int -> phi:float -> seed:Mkc_hashing.Splitmix.t -> unit -> t
(** [create ~bits ~phi ~seed ()] sketches a universe of [2^bits]
    coordinates for φ-heavy-hitter queries. [1 <= bits <= 30]. *)

val add : t -> int -> int -> unit
(** [add t i delta]; [i] must be below [2^bits]. *)

val hits : t -> hit list
(** All coordinates whose estimated frequency passes the [√(φ·F̂2)]
    test, found by dyadic refinement; values are CountSketch estimates
    at the leaf level. Sorted by decreasing frequency. *)

val words : t -> int
