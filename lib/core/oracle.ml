type t = {
  params : Params.t;
  large_common : Large_common.t;
  large_set : Large_set.t;
  small_set : Small_set.t option; (* only when sα < 2k *)
  mutable st_edges : int;
}

let create (params : Params.t) ~seed =
  let sa = Params.s_alpha params in
  let heavy_regime = sa >= 2.0 *. float_of_int params.k in
  let w =
    if heavy_regime then params.k
    else max 1 (min params.k (int_of_float (Float.round params.alpha)))
  in
  {
    params;
    large_common = Large_common.create params ~seed:(Mkc_hashing.Splitmix.fork seed 1);
    large_set = Large_set.create params ~w ~seed:(Mkc_hashing.Splitmix.fork seed 2);
    small_set =
      (if heavy_regime then None
       else Some (Small_set.create params ~seed:(Mkc_hashing.Splitmix.fork seed 3)));
    st_edges = 0;
  }

let feed t e =
  t.st_edges <- t.st_edges + 1;
  Large_common.feed t.large_common e;
  Large_set.feed t.large_set e;
  Option.iter (fun ss -> Small_set.feed ss e) t.small_set

let feed_batch t edges ~pos ~len =
  (* Subroutine-outer: each subroutine's sketches stay hot across the
     whole chunk instead of being revisited on every edge. *)
  t.st_edges <- t.st_edges + len;
  Large_common.feed_batch t.large_common edges ~pos ~len;
  Large_set.feed_batch t.large_set edges ~pos ~len;
  Option.iter (fun ss -> Small_set.feed_batch ss edges ~pos ~len) t.small_set

let feed_planned t plan ~red edges ~pos ~len =
  (* Chunk-deduplicated ingestion: the shared plan (distinct ids +
     per-edge indices) and the caller's reduced-element table [red] are
     fanned out to every subroutine, each of which decides per distinct
     id and replays per edge. *)
  t.st_edges <- t.st_edges + len;
  Large_common.feed_planned t.large_common plan ~red edges ~pos ~len;
  Large_set.feed_planned t.large_set plan ~red edges ~pos ~len;
  Option.iter (fun ss -> Small_set.feed_planned ss plan ~red edges ~pos ~len) t.small_set

(* Relative per-edge feed cost of this oracle's subroutine mix, in
   units of one Large_common feed.  The weights come from
   PROFILE_hotpath.json's planned-path ns/edge on the planted shape
   (large_common 282, large_set 6105, small_set 2134 per 16 instances):
   Large_set's per-edge heap/sketch work dominates everywhere, and
   Small_set only exists outside the heavy regime (sα < 2k).  Static
   seeds for the pool scheduler's bin packing — only ratios matter. *)
let cost_hint t =
  let ls = 21.6 and ss = 7.6 in
  1.0 +. ls +. (match t.small_set with None -> 0.0 | Some _ -> ss)

let clamp (p : Params.t) outcome =
  (* No k-cover can exceed the universe size, so cap subroutine
     estimates at |U| — inverse-sampling scale-ups may overshoot. *)
  Option.map
    (fun (o : Solution.outcome) ->
      { o with estimate = Float.min o.estimate (float_of_int p.Params.u) })
    outcome

let finalize_all t =
  [
    clamp t.params (Large_common.finalize t.large_common);
    clamp t.params (Large_set.finalize t.large_set);
    clamp t.params (Option.bind t.small_set Small_set.finalize);
  ]

let finalize t = Solution.best (finalize_all t)

let words_breakdown t =
  let open Mkc_stream.Sink in
  canonical_breakdown
    (prefix_breakdown "oracle"
       (prefix_breakdown "large_common" (Large_common.words_breakdown t.large_common)
       @ prefix_breakdown "large_set" (Large_set.words_breakdown t.large_set)
       @
       match t.small_set with
       | None -> [ ("small_set", 0) ] (* component absent in the heavy regime *)
       | Some ss -> prefix_breakdown "small_set" (Small_set.words_breakdown ss)))

let words t = List.fold_left (fun acc (_, w) -> acc + w) 0 (words_breakdown t)

let stats t =
  let open Mkc_stream.Sink in
  canonical_breakdown
    (("edges", t.st_edges)
    (* Top-level [sampler_evals] is the headline decision count of the
       chunk engine: actual set-sampling hash evaluations (LargeCommon
       memo misses) — O(distinct set ids), not O(edges).  The per-
       subroutine breakdowns keep their own *_sampler_evals keys. *)
    :: ("sampler_evals", Large_common.sampler_evals t.large_common)
    :: prefix_breakdown "large_common" (Large_common.stats t.large_common)
    @ prefix_breakdown "large_set" (Large_set.stats t.large_set)
    @
    match t.small_set with
    | None -> []
    | Some ss -> prefix_breakdown "small_set" (Small_set.stats ss))

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode t =
  Json.Object
    [
      ("edges", Json.Int t.st_edges);
      ("large_common", Large_common.encode t.large_common);
      ("large_set", Large_set.encode t.large_set);
      ( "small_set",
        match t.small_set with None -> Json.Null | Some ss -> Small_set.encode ss );
    ]

let restore t j =
  let ( let* ) = Result.bind in
  let* edges = Ck.J.int_field "edges" j in
  let* lcj = Ck.J.field "large_common" j in
  let* () =
    Result.map_error (Printf.sprintf "oracle.large_common: %s")
      (Large_common.restore t.large_common lcj)
  in
  let* lsj = Ck.J.field "large_set" j in
  let* () =
    Result.map_error (Printf.sprintf "oracle.large_set: %s")
      (Large_set.restore t.large_set lsj)
  in
  let* ssj = Ck.J.field "small_set" j in
  let* () =
    match (t.small_set, ssj) with
    | None, Json.Null -> Ok ()
    | Some ss, (Json.Object _ as pj) ->
        Result.map_error (Printf.sprintf "oracle.small_set: %s") (Small_set.restore ss pj)
    | None, _ -> Ck.J.err "oracle: payload has small_set but this regime has none"
    | Some _, _ -> Ck.J.err "oracle: payload is missing small_set state"
  in
  t.st_edges <- edges;
  Ok ()

let merge_into ~dst src =
  Large_common.merge_into ~dst:dst.large_common src.large_common;
  Large_set.merge_into ~dst:dst.large_set src.large_set;
  (match (dst.small_set, src.small_set) with
  | Some d, Some s -> Small_set.merge_into ~dst:d s
  | None, None -> ()
  | _ -> invalid_arg "Oracle.merge_into: regime mismatch");
  dst.st_edges <- dst.st_edges + src.st_edges

let sink : (t, Solution.outcome option) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type result = Solution.outcome option

    let feed = feed
    let feed_batch = feed_batch

    (* Standalone oracle sink: the stream is unreduced, so the identity
       element table (the plan's own distinct raw values) plays [red]. *)
    let feed_planned t plan edges ~pos ~len =
      feed_planned t plan ~red:(Mkc_stream.Chunk_plan.elts plan) edges ~pos ~len

    let finalize = finalize
    let words = words
    let words_breakdown = words_breakdown
  end)
