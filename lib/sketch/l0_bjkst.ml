type t = {
  cap : int;
  tab : Mkc_hashing.Tabulation.t;
  (* fingerprint -> trailing-zero level of the element's hash *)
  buf : (int64, int) Hashtbl.t;
  mutable z : int;
  mutable prunes : int;
}

let create ?(cap = 96) ~seed () =
  if cap < 4 then invalid_arg "L0_bjkst.create: cap must be >= 4";
  { cap; tab = Mkc_hashing.Tabulation.create ~seed; buf = Hashtbl.create 64; z = 0; prunes = 0 }

(* 32-bit de Bruijn count-trailing-zeros.  [x land (-x)] isolates the
   lowest set bit; multiplying by the de Bruijn constant slides a unique
   5-bit window into bits 27..31 (the [land 0xFFFF_FFFF] emulates the
   32-bit wraparound the classic trick relies on — OCaml ints are wider,
   so the high product bits must be masked off, not wrapped). *)
let db32 = 0x077C_B531

let db32_tbl =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let tz32 x = Array.unsafe_get db32_tbl ((((x land (-x)) * db32) land 0xFFFF_FFFF) lsr 27)

let trailing_zeros v =
  (* Split the Int64 hash into two native-int halves once (mask and
     shift), then count within a half with the table — no per-bit loop,
     no Int64 arithmetic beyond the split. *)
  let lo = Int64.to_int v land 0xFFFF_FFFF in
  if lo <> 0 then tz32 lo
  else
    let hi = Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFF_FFFF in
    if hi <> 0 then 32 + tz32 hi else 64

let prune t =
  while Hashtbl.length t.buf > t.cap do
    t.prunes <- t.prunes + 1;
    t.z <- t.z + 1;
    let z = t.z in
    (* In place: no doomed-fingerprint list is materialized. *)
    Hashtbl.filter_map_inplace (fun _ lvl -> if lvl < z then None else Some lvl) t.buf
  done

let add t x =
  let h = Mkc_hashing.Tabulation.hash64 t.tab x in
  let lvl = trailing_zeros h in
  if lvl >= t.z then begin
    (* The hash itself is the fingerprint: collisions over a 64-bit
       range are negligible for the stream sizes we target. *)
    if not (Hashtbl.mem t.buf h) then begin
      Hashtbl.replace t.buf h lvl;
      prune t
    end
  end

let add_batch t xs ~pos ~len =
  (* Batched fast path: one monomorphic loop, hash/level state hoisted
     out; pruning still triggers exactly as in edge-by-edge [add]. *)
  let tab = t.tab and buf = t.buf in
  for i = pos to pos + len - 1 do
    let h = Mkc_hashing.Tabulation.hash64 tab (Array.unsafe_get xs i) in
    let lvl = trailing_zeros h in
    if lvl >= t.z && not (Hashtbl.mem buf h) then begin
      Hashtbl.replace buf h lvl;
      prune t
    end
  done

(* Canonical state: the buffer sorted by fingerprint (unsigned), plus
   the level and prune counters.  Two sketches over the same seed are
   behaviourally identical iff their dumps are equal — Hashtbl layout
   (insertion/resize history) never leaks into any observable. *)
let dump t =
  let entries = Hashtbl.fold (fun fp lvl acc -> (fp, lvl) :: acc) t.buf [] in
  let entries =
    List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) entries
  in
  (t.z, t.prunes, entries)

let load_state t ~z ~prunes ~entries =
  if z < 0 || prunes < 0 then Error "l0: negative level or prune count"
  else if List.length entries > t.cap then Error "l0: entries exceed cap"
  else if List.exists (fun (_, lvl) -> lvl < z || lvl > 64) entries then
    Error "l0: entry level out of range"
  else begin
    Hashtbl.reset t.buf;
    List.iter (fun (fp, lvl) -> Hashtbl.replace t.buf fp lvl) entries;
    if Hashtbl.length t.buf <> List.length entries then begin
      Hashtbl.reset t.buf;
      Error "l0: duplicate fingerprint"
    end
    else begin
      t.z <- z;
      t.prunes <- prunes;
      Ok ()
    end
  end

(* The sketch state is a pure function of the set of fingerprints seen:
   buf = { fp seen : level(fp) ≥ z } with z the smallest level at which
   that set fits in [cap].  Union-then-prune therefore reproduces the
   single-stream state exactly (merge is the set union).  Requires both
   sketches to share cap and hash seed. *)
let merge_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "L0_bjkst.merge_into: cap mismatch";
  if src.z > dst.z then begin
    dst.z <- src.z;
    dst.prunes <- max dst.prunes src.prunes;
    let z = dst.z in
    Hashtbl.filter_map_inplace (fun _ lvl -> if lvl < z then None else Some lvl) dst.buf
  end
  else dst.prunes <- max dst.prunes src.prunes;
  (* Insert in canonical order so the destination layout is independent
     of the source table's internal iteration order. *)
  let _, _, entries = dump src in
  List.iter
    (fun (fp, lvl) ->
      if lvl >= dst.z && not (Hashtbl.mem dst.buf fp) then Hashtbl.replace dst.buf fp lvl)
    entries;
  prune dst

let estimate t = float_of_int (Hashtbl.length t.buf) *. Float.pow 2.0 (float_of_int t.z)
let level t = t.z
let occupancy t = Hashtbl.length t.buf
let prunes t = t.prunes
let words t = Space.hashtbl t.buf ~entry_words:2 + Mkc_hashing.Tabulation.words t.tab + 2
