bench/experiments.ml: Array Exp_util List Mkc_core Mkc_coverage Mkc_hashing Mkc_lowerbound Mkc_sketch Mkc_stream Mkc_workload Printf Unix
