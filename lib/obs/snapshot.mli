(** Versioned, machine-readable snapshot of an observability state:
    merged metrics, recent spans, and space-over-stream profiles.

    The JSON schema is {!schema_version} ("mkc-obs/1"); {!of_json}
    re-validates every field, so consumers (CI, [bench]) fail loudly on
    drift instead of silently mis-parsing.  Emission order is
    deterministic (metrics sorted by name, spans by start time), so
    snapshots taken under an injected {!Clock} source are golden-test
    stable. *)

type hist = {
  hcount : int;
  hsum : float;
  hmin : float;  (** 0 when empty *)
  hmax : float;
  hbuckets : (int * int) list;  (** (log2 bucket index, count), ascending *)
}

type value = Counter of int | Gauge of float | Histogram of hist
type metric = { mname : string; mvalue : value }
type point = { at_edges : int; words : int; breakdown : (string * int) list }
type profile = { pname : string; cadence : int; points : point list }
type t = {
  created_ns : int;
  metrics : metric list;
  spans : Span.span list;
  profiles : profile list;
}

val schema_version : string

val capture :
  ?spans:Span.span list ->
  ?profiles:(string * Space_profile.t) list ->
  ?now_ns:int ->
  Registry.t ->
  t
(** Merge-read the registry (plus the given spans/profiles) into a
    snapshot.  [spans] defaults to [Span.recent ()]; [now_ns] defaults
    to {!Clock.now_ns}. *)

val to_json : t -> Json.t
val to_string : t -> string

val of_json : Json.t -> (t, string) result
(** Parse AND validate: schema version, field presence, kinds, types.
    The error names the offending field. *)

val validate : string -> (t, string) result
(** Parse a raw JSON string and validate it ({!Json.parse} ∘
    {!of_json}). *)
