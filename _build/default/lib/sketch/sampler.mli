(** Sampling primitives used by the paper's algorithms.

    - {!Bernoulli}: hash-based subsampling with limited independence —
      the implementation of set sampling (Lemma 2.3, Appendix A.1) and
      element sampling (Lemma 2.5).  Membership is a pure function of
      the item, so the same item is consistently kept or dropped across
      the whole stream with only the hash seed stored.
    - {!Reservoir}: classic reservoir sampling, used where a uniform
      fixed-size sample of {e stream positions} is needed (e.g. the
      superset sample M of Figure 6, Case 2). *)

module Bernoulli : sig
  type t

  val create : rate:float -> indep:int -> seed:Mkc_hashing.Splitmix.t -> t
  (** [create ~rate ~indep ~seed] keeps each item independently with
      probability ~[rate], using an [indep]-wise independent hash
      (Appendix A.1 implements set sampling with Θ(log mn)-wise
      independence). *)

  val keep : t -> int -> bool

  val rate : t -> float
  (** The realized rate [1 / range] (the requested rate rounded to a
      reciprocal of an integer). *)

  val words : t -> int
end

module Nested : sig
  (** Multi-layered subsampling (Section 4.1): a single hash induces a
      chain of samples [S_0 ⊆ S_1 ⊆ ... ⊆ S_L] with geometrically
      increasing rates — level [i] keeps an item with probability
      [min(1, base_rate · 2^i)], and an item kept at level [i] is kept
      at every coarser level [j > i].  Evaluating all levels costs one
      hash, which matters on the per-edge hot path. *)

  type t

  val create :
    base_rate:float -> levels:int -> indep:int -> seed:Mkc_hashing.Splitmix.t -> t
  (** [base_rate] is the (finest) level-0 rate, rounded down to a
      reciprocal power of two. [levels >= 1]. *)

  val keep : t -> level:int -> int -> bool

  val min_keep_level : t -> int -> int option
  (** The finest (smallest) level at which the item survives, computed
      with a single hash evaluation; [None] if it survives at no level.
      By nesting, the item survives at exactly the levels
      [>= min_keep_level]. *)

  val rate : t -> level:int -> float
  (** The realized rate of a level (exactly [2^-j] for some j). *)

  val levels : t -> int
  val words : t -> int
end

module Reservoir : sig
  type t

  val create : cap:int -> seed:Mkc_hashing.Splitmix.t -> t
  val add : t -> int -> unit
  val contents : t -> int array
  val seen : t -> int
  val words : t -> int
end
