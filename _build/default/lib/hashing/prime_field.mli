(** Arithmetic in the prime field GF(p) for the Mersenne prime
    [p = 2^61 - 1].

    Polynomial hash families over this field (see {!Poly_hash}) realize the
    d-wise independent hash functions of Definition A.1 / Lemma A.2 of the
    paper: a random degree-(d-1) polynomial over GF(p) restricted to a
    domain of size at most [p] is exactly d-wise independent, and storing it
    takes [d] field elements — [d log(mn)] bits, matching Lemma A.2.

    Field elements are represented as native OCaml ints in [\[0, p)]
    (they fit: [p < 2^62]).  Multiplication internally uses 64-bit
    emulated 128-bit products. *)

val p : int
(** The field modulus, [2^61 - 1]. *)

val normalize : int -> int
(** [normalize x] maps an arbitrary int to its residue in [\[0, p)]. *)

val add : int -> int -> int
(** Field addition. Arguments must be in [\[0, p)]. *)

val sub : int -> int -> int
(** Field subtraction. Arguments must be in [\[0, p)]. *)

val mul : int -> int -> int
(** Field multiplication via 128-bit product emulation.
    Arguments must be in [\[0, p)]. *)

val pow : int -> int -> int
(** [pow b e] is [b]{^ e} in the field, [e >= 0]. *)

val inv : int -> int
(** Multiplicative inverse; raises [Invalid_argument] on zero. *)

val mul_reference : int -> int -> int
(** Slow schoolbook (16-bit limb) multiplication used as a test oracle for
    {!mul}. *)
