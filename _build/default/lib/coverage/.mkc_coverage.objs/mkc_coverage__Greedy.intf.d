lib/coverage/greedy.mli: Mkc_stream
