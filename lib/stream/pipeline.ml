let default_chunk = 8192

(* Pipeline-level instruments (global registry).  All writes are gated
   on [Registry.enabled], so the disabled path costs one load+branch per
   chunk.  [sink_feed_edges] counts edge×sink feed work, which is the
   quantity preserved between the sequential and domain-parallel
   drivers: [pipeline.chunks]/[pipeline.edges] count per-pass, so the
   parallel driver (one pass per domain) multiplies them by the domain
   count, while the merged [sink_feed_edges] total is identical. *)
module Obs = struct
  let r = Mkc_obs.Registry.global
  let chunks = Mkc_obs.Registry.counter r "pipeline.chunks"
  let edges = Mkc_obs.Registry.counter r "pipeline.edges"
  let sink_feed_edges = Mkc_obs.Registry.counter r "pipeline.sink_feed_edges"
  let domain_busy_ns = Mkc_obs.Registry.gauge ~mode:`Sum r "pipeline.domain_busy_ns"
  let domains_used = Mkc_obs.Registry.gauge ~mode:`Max r "pipeline.domains"
end

let run_seq (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  Stream_source.iter (M.feed sink) src;
  M.finalize sink

let chunk_instrumented ~nsinks ~len f =
  if Mkc_obs.Registry.enabled () then begin
    let t0 = Mkc_obs.Clock.now_ns () in
    f ();
    let dur = Mkc_obs.Clock.now_ns () - t0 in
    Mkc_obs.Span.record "pipeline.chunk" ~start_ns:t0 ~dur_ns:dur;
    Mkc_obs.Registry.incr Obs.chunks;
    Mkc_obs.Registry.add Obs.edges len;
    Mkc_obs.Registry.add Obs.sink_feed_edges (len * nsinks)
  end
  else f ()

let run ?(chunk = default_chunk) (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  Stream_source.chunks ~chunk
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks:1 ~len (fun () -> M.feed_batch sink edges ~pos ~len))
    src;
  M.finalize sink

let feed_all ?(chunk = default_chunk) sinks src =
  let nsinks = Array.length sinks in
  Stream_source.chunks ~chunk
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks ~len (fun () ->
          Array.iter (fun s -> Sink.Any.feed_batch s edges ~pos ~len) sinks))
    src

let feed_all_parallel ?domains ?(chunk = default_chunk) sinks src =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let domains = min domains (Array.length sinks) in
  if domains <= 1 then feed_all ~chunk sinks src
  else begin
    (* Round-robin sharding: sink i belongs to domain (i mod domains).
       Each domain drives only its own sinks, over the shared read-only
       stream, so no two domains ever touch the same mutable state. *)
    let group g =
      let mine = ref [] in
      Array.iteri (fun i s -> if i mod domains = g then mine := s :: !mine) sinks;
      Array.of_list (List.rev !mine)
    in
    let workers =
      Array.init domains (fun g ->
          let mine = group g in
          Domain.spawn (fun () ->
              if Mkc_obs.Registry.enabled () then begin
                (* Busy time lands in this domain's registry shard; the
                   `Sum-merged gauge is total busy ns, and the per-domain
                   spans give the utilization split. *)
                let t0 = Mkc_obs.Clock.now_ns () in
                feed_all ~chunk mine src;
                let dur = Mkc_obs.Clock.now_ns () - t0 in
                Mkc_obs.Span.record "pipeline.domain" ~start_ns:t0 ~dur_ns:dur;
                Mkc_obs.Registry.set Obs.domain_busy_ns (float_of_int dur)
              end
              else feed_all ~chunk mine src))
    in
    Array.iter Domain.join workers;
    if Mkc_obs.Registry.enabled () then
      Mkc_obs.Registry.set Obs.domains_used (float_of_int domains)
  end

let run_parallel ?domains ?chunk ~shards ~finalize src =
  feed_all_parallel ?domains ?chunk shards src;
  finalize ()
