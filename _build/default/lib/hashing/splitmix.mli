(** SplitMix64 pseudo-random generator.

    Used throughout the library to derive independent hash-function seeds
    from a single experiment seed, so that every run is reproducible.  The
    generator follows Steele, Lea and Flood (OOPSLA 2014); it is a fast
    64-bit mixer with provably full period, adequate for seeding the
    k-wise independent hash families of {!Poly_hash} (which carry the
    actual independence guarantees needed by the paper's analysis). *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_int : t -> int
(** [next_int t] is [next t] truncated to a non-negative native int
    (62 bits). *)

val below : t -> int -> int
(** [below t bound] is a uniform value in [\[0, bound)]. [bound] must be
    positive. *)

val split : t -> t
(** [split t] derives a statistically independent child generator;
    both [t] and the child may be used afterwards. *)

val fork : t -> int -> t
(** [fork t i] derives the [i]-th child generator deterministically;
    unlike {!split} it does not advance [t], so [fork t 0], [fork t 1],
    ... form a reproducible family. *)
