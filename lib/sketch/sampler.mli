(** Sampling primitives used by the paper's algorithms.

    - {!Bernoulli}: hash-based subsampling with limited independence —
      the implementation of set sampling (Lemma 2.3, Appendix A.1) and
      element sampling (Lemma 2.5).  Membership is a pure function of
      the item, so the same item is consistently kept or dropped across
      the whole stream with only the hash seed stored.
    - {!Reservoir}: classic reservoir sampling, used where a uniform
      fixed-size sample of {e stream positions} is needed (e.g. the
      superset sample M of Figure 6, Case 2). *)

module Bernoulli : sig
  type t

  val create : rate:float -> indep:int -> seed:Mkc_hashing.Splitmix.t -> t
  (** [create ~rate ~indep ~seed] keeps each item independently with
      probability ~[rate], using an [indep]-wise independent hash
      (Appendix A.1 implements set sampling with Θ(log mn)-wise
      independence). *)

  val keep : t -> int -> bool

  val keep_batch : t -> int array -> pos:int -> len:int -> bool array -> unit
  (** [keep_batch t xs ~pos ~len out]: [out.(j) = keep t xs.(pos + j)]
      for [j < len], via one coefficient-major
      {!Mkc_hashing.Poly_hash.hash_batch} pass — bit-for-bit the
      per-call decisions. *)

  val rate : t -> float
  (** The realized rate [1 / range] (the requested rate rounded to a
      reciprocal of an integer). *)

  val words : t -> int
end

module Nested : sig
  (** Multi-layered subsampling (Section 4.1): a single hash induces a
      chain of samples [S_0 ⊆ S_1 ⊆ ... ⊆ S_L] with geometrically
      increasing rates — level [i] keeps an item with probability
      [min(1, base_rate · 2^i)], and an item kept at level [i] is kept
      at every coarser level [j > i].  Evaluating all levels costs one
      hash, which matters on the per-edge hot path. *)

  type t

  val create :
    base_rate:float -> levels:int -> indep:int -> seed:Mkc_hashing.Splitmix.t -> t
  (** [base_rate] is the (finest) level-0 rate, rounded down to a
      reciprocal power of two. [levels >= 1]. *)

  val keep : t -> level:int -> int -> bool

  val min_keep_level : t -> int -> int option
  (** The finest (smallest) level at which the item survives, computed
      with a single hash evaluation; [None] if it survives at no level.
      By nesting, the item survives at exactly the levels
      [>= min_keep_level]. *)

  val min_keep_level_code : t -> int -> int
  (** Allocation-free {!min_keep_level}: the level, or [-1] for [None].
      The hot-path form — [int option] returns box without flambda. *)

  val min_keep_level_batch : t -> int array -> pos:int -> len:int -> int array -> unit
  (** [out.(j) = min_keep_level_code t xs.(pos + j)] for [j < len],
      hashing the block coefficient-major
      ({!Mkc_hashing.Poly_hash.hash_batch}). *)

  val rate : t -> level:int -> float
  (** The realized rate of a level (exactly [2^-j] for some j). *)

  val levels : t -> int
  val words : t -> int
end

(** Bounded direct-mapped cache for per-id sampling decisions (int keys,
    int values).  Slot = [id land (slots - 1)]; a colliding id evicts by
    overwrite.  Purely an accelerator: on a miss the caller recomputes
    the hash and [store]s the result, so a memoized decision is always
    exactly the hash's — the cache can change how often the hash is
    {e evaluated}, never what it {e says}.  Space is a fixed
    [2·slots + 1] words, accounted by the owning sketch under a
    [*.memo] key. *)
module Memo : sig
  type t

  val absent : int
  (** Sentinel returned by {!find} on a miss ([min_int]; never a legal
      stored value — keep-level codes are [>= -1]). *)

  val create : slots:int -> t
  (** [slots] is rounded up to a power of two. *)

  val find : t -> int -> int
  (** The cached value for this key, or {!absent}. Keys must be
      non-negative. *)

  val store : t -> int -> int -> unit

  val slots : t -> int

  val words : t -> int

  val dump : t -> int array * int array
  (** [(keys, vals)] — the cache contents verbatim, for crash-resume
      (a resumed run must replay the exact hit/miss sequence the
      uninterrupted run would see). *)

  val load_state : t -> keys:int array -> vals:int array -> (unit, string) result
  (** Overlay dumped cache contents; rejects a slot-count mismatch. *)

  val reset : t -> unit
  (** Drop all cached decisions (used on merge: shards' overwrite
      histories don't compose, and the cache is a pure accelerator, so
      rebuilding from scratch is always sound). *)
end

module Reservoir : sig
  type t

  val create : cap:int -> seed:Mkc_hashing.Splitmix.t -> t
  val add : t -> int -> unit
  val contents : t -> int array
  val seen : t -> int
  val words : t -> int
end
