type t = Edge.t array

let of_array a = Array.copy a
let of_system ?seed sys = Set_system.edge_stream ?seed sys
let length = Array.length
let iter = Array.iter
let fold f init t = Array.fold_left f init t
let to_array = Array.copy

let chunks ?(chunk = 8192) ?(start = 0) f t =
  if chunk < 1 then invalid_arg "Stream_source.chunks: chunk must be >= 1";
  let n = Array.length t in
  if start < 0 || start > n then
    invalid_arg "Stream_source.chunks: start out of range";
  let pos = ref start in
  (* Strictly-before guard: the loop body always has [len >= 1], so a
     stream whose length is an exact multiple of [chunk] (or a resume
     from [start = n]) never sees a trailing empty chunk. *)
  while !pos < n do
    let len = min chunk (n - !pos) in
    f t ~pos:!pos ~len;
    pos := !pos + len
  done

let partition ~shards t =
  if shards < 1 then invalid_arg "Stream_source.partition: shards must be >= 1";
  let n = Array.length t in
  Array.init shards (fun s ->
      let lo = n * s / shards and hi = n * (s + 1) / shards in
      Array.sub t lo (hi - lo))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter (fun (e : Edge.t) -> Printf.fprintf oc "%d %d\n" e.set e.elt) t)

let is_ws = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false

(* Tokenize on runs of whitespace, so tab-separated files, doubled
   spaces, and trailing blanks all load. *)
let split_ws line =
  let n = String.length line in
  let toks = ref [] and i = ref 0 in
  while !i < n do
    while !i < n && is_ws line.[!i] do
      incr i
    done;
    if !i < n then begin
      let j = ref !i in
      while !j < n && not (is_ws line.[!j]) do
        incr j
      done;
      toks := String.sub line !i (!j - !i) :: !toks;
      i := !j
    end
  done;
  List.rev !toks

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      let lineno = ref 0 in
      let malformed line why =
        failwith
          (Printf.sprintf "Stream_source.load: %s: malformed line %d (%s): %S" path
             !lineno why line)
      in
      (* Point at the offending token, not just the line: a million-edge
         file with one stray field is otherwise a needle hunt. *)
      let bad_token tok = Printf.sprintf "token %S is not an integer" tok in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match split_ws line with
           | [] -> ()
           | [ s; e ] -> (
               match (int_of_string_opt s, int_of_string_opt e) with
               | Some s, Some e -> acc := Edge.make ~set:s ~elt:e :: !acc
               | None, _ -> malformed line (bad_token s)
               | _, None -> malformed line (bad_token e))
           | toks ->
               malformed line
                 (Printf.sprintf "expected 2 fields, got %d" (List.length toks))
         done
       with End_of_file -> ());
      Array.of_list (List.rev !acc))

let max_ids t =
  Array.fold_left
    (fun (ms, me) (e : Edge.t) -> (max ms (e.set + 1), max me (e.elt + 1)))
    (0, 0) t
