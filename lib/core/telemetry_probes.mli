(** The curated telemetry track set for an estimator run.

    {!build} assembles the probe array a
    {!Mkc_obs.Telemetry.Recorder} evaluates on each [Sink.Observed]
    cadence sample:

    - [pipeline.edges] / [pipeline.edges_per_sec] — stream progress
      and instantaneous throughput (delta over the previous sample);
    - [space.words] and one [space.<component>] track per
      [words_breakdown] key — the paper's Õ(m/α²) bound, live;
    - [gc.minor_words] / [gc.major_words] / [gc.heap_words] — from
      [Gc.quick_stat], the flat-memory discipline's regression canary;
    - [sketch.l0_occupancy] / [sketch.l0_prunes] /
      [sketch.f2_tracked] / [sketch.f2_prunes] — sketch health from
      {!Estimate.stats_totals};
    - [sketch.hh_recovery_ppm] / [sketch.memo_hit_ppm] — the quality
      ratios of [estimate.quality.*], scaled to integer
      parts-per-million (the series stores ints only);
    - [pipeline.domain_busy_ns] and [pipeline.pool.plan_build_ns] /
      [pipeline.pool.plan_overlap_ns] / [pipeline.pool.queue_wait_ns] /
      [pipeline.pool.rebalances] — the pool executor's cumulative
      utilization, read from the global registry where the coordinator
      publishes them once per chunk window.

    Ratio and recovery tracks read 0 until their denominators exist
    (heavy-hitter recovery only runs at finalize); pool tracks read 0
    until the first parallel drive. *)

val build :
  breakdown:(unit -> (string * int) list) ->
  Estimate.t ->
  Mkc_obs.Telemetry.Recorder.probe array
(** [breakdown] should read the {e observed} breakdown — normally
    [Sink.Observed.sampled_breakdown], the walk the cadence sample
    already paid for, so probing adds no sketch walk of its own.  The
    [space.words] track is the sum of that breakdown (every sink's
    words are the sum of its components) and the [space.<component>]
    track names are fixed from [breakdown ()] at build time.
    Breakdown and stats reads are cached per sample timestamp, so the
    per-sample cost is one [breakdown] fetch and one
    {!Estimate.stats_totals} walk regardless of track count. *)

val build_windowed :
  breakdown:(unit -> (string * int) list) ->
  Windowed.t ->
  Mkc_obs.Telemetry.Recorder.probe array
(** {!build} for a windowed run: the same track set plus
    [window.epochs] / [window.rolled] / [window.swaps] (read from the
    global registry, where {!Windowed} publishes them on each epoch
    roll).  Sketch-health totals are re-read through
    {!Windowed.current} on every sample, since the in-flight estimator
    is replaced when an epoch rolls. *)
