examples/graph_coverage.ml: Format List Mkc_core Mkc_coverage Mkc_stream Mkc_workload
