test/test_paper_profile.ml: Alcotest Array Float List Mkc_core Mkc_hashing Mkc_stream Mkc_workload
