type t = Edge.t array

let of_array a = Array.copy a
let of_system ?seed sys = Set_system.edge_stream ?seed sys
let length = Array.length
let iter = Array.iter
let fold f init t = Array.fold_left f init t
let to_array = Array.copy

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter (fun (e : Edge.t) -> Printf.fprintf oc "%d %d\n" e.set e.elt) t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match String.split_on_char ' ' (String.trim line) with
             | [ s; e ] -> acc := Edge.make ~set:(int_of_string s) ~elt:(int_of_string e) :: !acc
             | _ -> failwith (Printf.sprintf "Stream_source.load: malformed line %S" line)
         done
       with End_of_file -> ());
      Array.of_list (List.rev !acc))

let max_ids t =
  Array.fold_left
    (fun (ms, me) (e : Edge.t) -> (max ms (e.set + 1), max me (e.elt + 1)))
    (0, 0) t
