lib/sketch/top_k.ml: Hashtbl List Space
