lib/sketch/l0_bjkst.ml: Float Hashtbl Int64 List Mkc_hashing Space
