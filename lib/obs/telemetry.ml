(* Append-only binary telemetry log.  See the .mli for the layout.

   Framing mirrors Edge_file: little-endian int64 fields, FNV-1a 64
   checksums, and a named error for every rejection.  The reader adds
   one twist — a torn final frame (a crash mid-append) yields the
   intact prefix plus a named [torn] error rather than a failure,
   because telemetry is most valuable for runs that died. *)

type error =
  | Bad_magic of string
  | Bad_version of int
  | Truncated of string
  | Checksum_mismatch of { expected : string; got : string }
  | Malformed of string
  | Io_error of string

let magic = "MKCTEL1\n"
let version = 1

let error_to_string = function
  | Bad_magic s -> Printf.sprintf "not a telemetry log (magic %S, expected %S)" s magic
  | Bad_version v ->
      Printf.sprintf "unsupported telemetry log version %d (this build reads %d)" v version
  | Truncated msg -> Printf.sprintf "truncated telemetry log: %s" msg
  | Checksum_mismatch { expected; got } ->
      Printf.sprintf "checksum mismatch: frame says %s, payload hashes to %s" got expected
  | Malformed msg -> Printf.sprintf "malformed telemetry log: %s" msg
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg

(* Same FNV-1a 64 as Edge_file and the checkpoint envelope. *)
let fnv1a64 b ~pos ~len =
  let h = ref 0xCBF29CE484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h 0x100000001B3L
  done;
  !h

let hex64 v = Printf.sprintf "%016Lx" v
let kind_directory = 1
let kind_sample = 2
let kind_event = 3

type sample = { s_ns : int; s_edges : int; values : int array }
type event = { e_ns : int; e_edges : int; e_name : string; e_value : int }

type log = {
  tracks : string array;
  samples : sample list;
  events : event list;
  torn : error option;
}

module Writer = struct
  type t = {
    oc : out_channel;
    ntracks : int;
    w_tracks : string array;
    scratch : Bytes.t; (* one full sample frame: 16-byte header + payload *)
    mutable closed : bool;
  }

  let frame oc payload =
    let len = Bytes.length payload in
    let head = Bytes.create 16 in
    Bytes.set_int64_le head 0 (Int64.of_int len);
    Bytes.set_int64_le head 8 (fnv1a64 payload ~pos:0 ~len);
    output_bytes oc head;
    output_bytes oc payload

  let directory_payload tracks =
    let b = Buffer.create 256 in
    let i64 v =
      let s = Bytes.create 8 in
      Bytes.set_int64_le s 0 (Int64.of_int v);
      Buffer.add_bytes b s
    in
    i64 kind_directory;
    i64 (Array.length tracks);
    Array.iter
      (fun name ->
        i64 (String.length name);
        Buffer.add_string b name)
      tracks;
    Buffer.to_bytes b

  let create path ~tracks =
    let nt = Array.length tracks in
    if nt = 0 then invalid_arg "Telemetry.Writer.create: no tracks";
    match open_out_bin path with
    | exception Sys_error msg -> Error (Io_error msg)
    | oc ->
        let head = Bytes.create 16 in
        Bytes.blit_string magic 0 head 0 8;
        Bytes.set_int64_le head 8 (Int64.of_int version);
        output_bytes oc head;
        frame oc (directory_payload tracks);
        let sample_payload = 24 + (8 * nt) in
        let scratch = Bytes.create (16 + sample_payload) in
        Bytes.set_int64_le scratch 0 (Int64.of_int sample_payload);
        Bytes.set_int64_le scratch 16 (Int64.of_int kind_sample);
        Ok { oc; ntracks = nt; w_tracks = Array.copy tracks; scratch; closed = false }

  let sample t ~at_ns ~at_edges values =
    if Array.length values <> t.ntracks then
      invalid_arg "Telemetry.Writer.sample: value count does not match the directory";
    (* Header and kind are pre-filled in [scratch]; only the payload
       checksum and the coordinates/values change per sample. *)
    Bytes.set_int64_le t.scratch 24 (Int64.of_int at_ns);
    Bytes.set_int64_le t.scratch 32 (Int64.of_int at_edges);
    for i = 0 to t.ntracks - 1 do
      Bytes.set_int64_le t.scratch (40 + (8 * i)) (Int64.of_int (Array.unsafe_get values i))
    done;
    let plen = Bytes.length t.scratch - 16 in
    Bytes.set_int64_le t.scratch 8 (fnv1a64 t.scratch ~pos:16 ~len:plen);
    output_bytes t.oc t.scratch

  let event t ~at_ns ~at_edges ~name ~value =
    let nlen = String.length name in
    let payload = Bytes.create (40 + nlen) in
    Bytes.set_int64_le payload 0 (Int64.of_int kind_event);
    Bytes.set_int64_le payload 8 (Int64.of_int at_ns);
    Bytes.set_int64_le payload 16 (Int64.of_int at_edges);
    Bytes.set_int64_le payload 24 (Int64.of_int value);
    Bytes.set_int64_le payload 32 (Int64.of_int nlen);
    Bytes.blit_string name 0 payload 40 nlen;
    frame t.oc payload

  let flush t = flush t.oc

  let close t =
    if not t.closed then begin
      t.closed <- true;
      close_out_noerr t.oc
    end
end

(* ---------- reading ---------- *)

let ( let* ) = Result.bind

let checked_to_int name v =
  let i = Int64.to_int v in
  if Int64.of_int i <> v then Error (Malformed (Printf.sprintf "%s %Ld out of range" name v))
  else Ok i

let parse_directory payload plen =
  if plen < 16 then Error (Malformed "directory frame too short")
  else
    let* nt = checked_to_int "track count" (Bytes.get_int64_le payload 8) in
    if nt < 1 then Error (Malformed "directory declares no tracks")
    else begin
      let tracks = Array.make nt "" in
      let rec go i pos =
        if i = nt then
          if pos = plen then Ok tracks
          else Error (Malformed "trailing bytes after the track directory")
        else if pos + 8 > plen then Error (Malformed "directory track length cut short")
        else
          let* len = checked_to_int "track name length" (Bytes.get_int64_le payload pos) in
          if len < 0 || pos + 8 + len > plen then
            Error (Malformed "directory track name cut short")
          else begin
            tracks.(i) <- Bytes.sub_string payload (pos + 8) len;
            go (i + 1) (pos + 8 + len)
          end
      in
      go 0 16
    end

let parse_sample payload plen ~ntracks =
  if plen <> 24 + (8 * ntracks) then
    Error
      (Malformed
         (Printf.sprintf "sample frame is %d bytes, directory of %d tracks needs %d" plen
            ntracks
            (24 + (8 * ntracks))))
  else
    let* s_ns = checked_to_int "sample ns" (Bytes.get_int64_le payload 8) in
    let* s_edges = checked_to_int "sample edges" (Bytes.get_int64_le payload 16) in
    let values = Array.make ntracks 0 in
    let rec go i =
      if i = ntracks then Ok { s_ns; s_edges; values }
      else
        let* v = checked_to_int "sample value" (Bytes.get_int64_le payload (24 + (8 * i))) in
        values.(i) <- v;
        go (i + 1)
    in
    go 0

let parse_event payload plen =
  if plen < 40 then Error (Malformed "event frame too short")
  else
    let* e_ns = checked_to_int "event ns" (Bytes.get_int64_le payload 8) in
    let* e_edges = checked_to_int "event edges" (Bytes.get_int64_le payload 16) in
    let* e_value = checked_to_int "event value" (Bytes.get_int64_le payload 24) in
    let* nlen = checked_to_int "event name length" (Bytes.get_int64_le payload 32) in
    if nlen < 0 || 40 + nlen <> plen then Error (Malformed "event name length disagrees with frame")
    else Ok { e_ns; e_edges; e_name = Bytes.sub_string payload 40 nlen; e_value }

let read path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let file_len = in_channel_length ic in
          let data = Bytes.create file_len in
          let* () =
            match really_input ic data 0 file_len with
            | () -> Ok ()
            | exception End_of_file -> Error (Io_error "file shrank during read")
          in
          let* () =
            if file_len < 16 then
              Error (Truncated (Printf.sprintf "%d bytes, need 16 for the header" file_len))
            else Ok ()
          in
          let got_magic = Bytes.sub_string data 0 8 in
          let* () = if String.equal got_magic magic then Ok () else Error (Bad_magic got_magic) in
          let* ver = checked_to_int "version" (Bytes.get_int64_le data 8) in
          let* () = if ver = version then Ok () else Error (Bad_version ver) in
          (* Walk the frames.  A frame that extends past EOF is a torn
             tail: keep everything before it and name the tear. *)
          let rec go pos ~tracks ~samples ~events =
            let finish torn =
              match tracks with
              | None -> Error (Malformed "log carries no track directory")
              | Some tracks ->
                  Ok { tracks; samples = List.rev samples; events = List.rev events; torn }
            in
            if pos = file_len then finish None
            else if pos + 16 > file_len then
              finish
                (Some
                   (Truncated
                      (Printf.sprintf "torn frame header at byte %d (%d of 16 bytes)" pos
                         (file_len - pos))))
            else
              let* plen = checked_to_int "frame length" (Bytes.get_int64_le data pos) in
              if plen < 8 then Error (Malformed (Printf.sprintf "frame of %d bytes at byte %d" plen pos))
              else if pos + 16 + plen > file_len then
                finish
                  (Some
                     (Truncated
                        (Printf.sprintf "torn frame at byte %d (%d of %d payload bytes)" pos
                           (file_len - pos - 16) plen)))
              else
                let stored_crc = Bytes.get_int64_le data (pos + 8) in
                let crc = fnv1a64 data ~pos:(pos + 16) ~len:plen in
                if not (Int64.equal crc stored_crc) then
                  Error (Checksum_mismatch { expected = hex64 crc; got = hex64 stored_crc })
                else
                  let payload = Bytes.sub data (pos + 16) plen in
                  let* kind = checked_to_int "frame kind" (Bytes.get_int64_le payload 0) in
                  let next = pos + 16 + plen in
                  if kind = kind_directory then
                    if tracks <> None then Error (Malformed "second track directory")
                    else
                      let* tr = parse_directory payload plen in
                      go next ~tracks:(Some tr) ~samples ~events
                  else if tracks = None then
                    Error (Malformed "first frame is not a track directory")
                  else if kind = kind_sample then
                    let ntracks = Array.length (Option.get tracks) in
                    let* s = parse_sample payload plen ~ntracks in
                    go next ~tracks ~samples:(s :: samples) ~events
                  else if kind = kind_event then
                    let* e = parse_event payload plen in
                    go next ~tracks ~samples ~events:(e :: events)
                  else Error (Malformed (Printf.sprintf "unknown frame kind %d" kind))
          in
          go 16 ~tracks:None ~samples:[] ~events:[])

(* ---------- shared framing ---------- *)

(* The magic/version/frame/torn-tail machinery, factored out so the
   run ledger (MKCLEDG1) carries the exact same guarantees as the
   telemetry log without re-implementing them. *)
module Framed = struct
  let fnv1a64 = fnv1a64
  let hex64 = hex64

  let write_header oc ~magic ~version =
    if String.length magic <> 8 then
      invalid_arg "Telemetry.Framed.write_header: magic must be exactly 8 bytes";
    let head = Bytes.create 16 in
    Bytes.blit_string magic 0 head 0 8;
    Bytes.set_int64_le head 8 (Int64.of_int version);
    output_bytes oc head

  let write_frame = Writer.frame

  let check_header data ~file_len ~magic ~version =
    let* () =
      if file_len < 16 then
        Error (Truncated (Printf.sprintf "%d bytes, need 16 for the header" file_len))
      else Ok ()
    in
    let got_magic = Bytes.sub_string data 0 8 in
    let* () = if String.equal got_magic magic then Ok () else Error (Bad_magic got_magic) in
    let* ver = checked_to_int "version" (Bytes.get_int64_le data 8) in
    if ver = version then Ok () else Error (Bad_version ver)

  let read_all ~magic ~version path =
    if String.length magic <> 8 then
      invalid_arg "Telemetry.Framed.read_all: magic must be exactly 8 bytes";
    match open_in_bin path with
    | exception Sys_error msg -> Error (Io_error msg)
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let file_len = in_channel_length ic in
            let data = Bytes.create file_len in
            let* () =
              match really_input ic data 0 file_len with
              | () -> Ok ()
              | exception End_of_file -> Error (Io_error "file shrank during read")
            in
            let* () = check_header data ~file_len ~magic ~version in
            let rec go pos acc =
              if pos = file_len then Ok (List.rev acc, None)
              else if pos + 16 > file_len then
                Ok
                  ( List.rev acc,
                    Some
                      (Truncated
                         (Printf.sprintf "torn frame header at byte %d (%d of 16 bytes)" pos
                            (file_len - pos))) )
              else
                let* plen = checked_to_int "frame length" (Bytes.get_int64_le data pos) in
                if plen < 1 then
                  Error (Malformed (Printf.sprintf "frame of %d bytes at byte %d" plen pos))
                else if pos + 16 + plen > file_len then
                  Ok
                    ( List.rev acc,
                      Some
                        (Truncated
                           (Printf.sprintf "torn frame at byte %d (%d of %d payload bytes)" pos
                              (file_len - pos - 16) plen)) )
                else
                  let stored_crc = Bytes.get_int64_le data (pos + 8) in
                  let crc = fnv1a64 data ~pos:(pos + 16) ~len:plen in
                  if not (Int64.equal crc stored_crc) then
                    Error (Checksum_mismatch { expected = hex64 crc; got = hex64 stored_crc })
                  else go (pos + 16 + plen) (Bytes.sub data (pos + 16) plen :: acc)
            in
            go 16 [])
end

(* ---------- summaries ---------- *)

type summary = {
  t_name : string;
  t_count : int;
  t_min : int;
  t_max : int;
  t_last : int;
  t_p50 : int;
  t_p99 : int;
}

(* The ceil-rank definition lives in Histogram so raw-sample summaries
   and histogram digests share one quantile (asserted equal on a fixture
   in test_telemetry.ml). *)
let quantile = Histogram.quantile_sorted

let summarize log =
  let n = List.length log.samples in
  Array.to_list log.tracks
  |> List.mapi (fun i t_name ->
         if n = 0 then
           { t_name; t_count = 0; t_min = 0; t_max = 0; t_last = 0; t_p50 = 0; t_p99 = 0 }
         else begin
           let vals = Array.make n 0 in
           List.iteri (fun j s -> vals.(j) <- s.values.(i)) log.samples;
           let t_last = vals.(n - 1) in
           Array.sort compare vals;
           {
             t_name;
             t_count = n;
             t_min = vals.(0);
             t_max = vals.(n - 1);
             t_last;
             t_p50 = quantile vals 0.5;
             t_p99 = quantile vals 0.99;
           }
         end)

let replay ?capacity log =
  let n = List.length log.samples in
  let capacity = match capacity with Some c -> c | None -> max 1 n in
  let s = Series.create ~capacity ~tracks:log.tracks in
  List.iter
    (fun smp ->
      Array.iteri (fun i v -> Series.stage s i v) smp.values;
      Series.commit s ~at_ns:smp.s_ns ~at_edges:smp.s_edges)
    log.samples;
  s

(* ---------- live recording ---------- *)

module Recorder = struct
  type probe = string * (at_ns:int -> at_edges:int -> int)

  type t = {
    series : Series.t;
    writer : Writer.t option;
    probes : probe array;
    vals : int array; (* reusable sample row *)
  }

  let create ?writer ~capacity probes =
    let names = Array.map fst probes in
    (match writer with
    | Some (w : Writer.t) when w.Writer.w_tracks <> names ->
        invalid_arg "Telemetry.Recorder.create: writer directory does not match the probes"
    | _ -> ());
    {
      series = Series.create ~capacity ~tracks:names;
      writer;
      probes;
      vals = Array.make (Array.length probes) 0;
    }

  let series t = t.series

  let sample t ~at_edges =
    let at_ns = Clock.now_ns () in
    for i = 0 to Array.length t.probes - 1 do
      let _, eval = Array.unsafe_get t.probes i in
      let v = eval ~at_ns ~at_edges in
      Array.unsafe_set t.vals i v;
      Series.stage t.series i v
    done;
    Series.commit t.series ~at_ns ~at_edges;
    match t.writer with None -> () | Some w -> Writer.sample w ~at_ns ~at_edges t.vals

  let event t ~at_edges ~name ~value =
    match t.writer with
    | None -> ()
    | Some w -> Writer.event w ~at_ns:(Clock.now_ns ()) ~at_edges ~name ~value

  let close t = match t.writer with None -> () | Some w -> Writer.close w
end
