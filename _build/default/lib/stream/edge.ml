type t = { set : int; elt : int }

let make ~set ~elt =
  if set < 0 || elt < 0 then invalid_arg "Edge.make: ids must be non-negative";
  { set; elt }

let compare a b =
  let c = Int.compare a.set b.set in
  if c <> 0 then c else Int.compare a.elt b.elt

let equal a b = compare a b = 0
let pp ppf { set; elt } = Format.fprintf ppf "(S%d, e%d)" set elt
