(** Metric value types and their merge algebra.

    The registry keeps one cell per (metric, domain); reads merge the
    per-domain cells with the operations here.  Merges form a
    commutative monoid (associative, commutative, with
    {!Histogram.create} / zero as identity) — the law the per-domain
    sharding relies on: merging shards in any order equals a single
    sequential history.  [test/test_obs.ml] checks this. *)

module Histogram = Histogram
(** Histogram cells are {!Histogram}: log-linear buckets, integer
    values, zero-allocation {!Histogram.record}, commutative
    {!Histogram.merge}. *)

val merge_counter : int -> int -> int
(** Counters merge by sum. *)

val merge_gauge : [ `Sum | `Max ] -> float -> float -> float
(** Gauges merge by the mode fixed at registration: [`Sum] for
    additive-across-domains quantities (busy time, retained words),
    [`Max] for high-water marks (wall time, peaks). *)
