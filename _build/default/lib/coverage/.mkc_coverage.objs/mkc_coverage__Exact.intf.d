lib/coverage/exact.mli: Mkc_stream
