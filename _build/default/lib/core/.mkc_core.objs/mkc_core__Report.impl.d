lib/core/report.ml: Estimate Params Solution
