type t = { n : int; m : int; sets : int array array }

let dedup_sorted a =
  let a = Array.copy a in
  Array.sort compare a;
  let len = Array.length a in
  if len = 0 then a
  else begin
    let out = ref [ a.(0) ] and count = ref 1 in
    for i = 1 to len - 1 do
      if a.(i) <> a.(i - 1) then begin
        out := a.(i) :: !out;
        incr count
      end
    done;
    let res = Array.make !count 0 in
    List.iteri (fun i x -> res.(!count - 1 - i) <- x) !out;
    res
  end

let create ~n ~m ~sets =
  if n < 0 || m < 0 then invalid_arg "Set_system.create: negative dimensions";
  if Array.length sets <> m then invalid_arg "Set_system.create: |sets| <> m";
  let sets =
    Array.map
      (fun s ->
        Array.iter
          (fun e -> if e < 0 || e >= n then invalid_arg "Set_system.create: element out of range")
          s;
        dedup_sorted s)
      sets
  in
  { n; m; sets }

let of_edges ~n ~m edges =
  let buckets = Array.make m [] in
  List.iter
    (fun (e : Edge.t) ->
      if e.set < 0 || e.set >= m then invalid_arg "Set_system.of_edges: set out of range";
      buckets.(e.set) <- e.elt :: buckets.(e.set))
    edges;
  create ~n ~m ~sets:(Array.map Array.of_list buckets)

let n t = t.n
let m t = t.m
let set t i = t.sets.(i)
let set_size t i = Array.length t.sets.(i)
let total_size t = Array.fold_left (fun acc s -> acc + Array.length s) 0 t.sets

let covered t sel =
  let mark = Array.make t.n false in
  List.iter
    (fun i ->
      if i < 0 || i >= t.m then invalid_arg "Set_system.covered: set id out of range";
      Array.iter (fun e -> mark.(e) <- true) t.sets.(i))
    sel;
  mark

let coverage t sel =
  let mark = covered t sel in
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mark

let frequencies t =
  let freq = Array.make t.n 0 in
  Array.iter (fun s -> Array.iter (fun e -> freq.(e) <- freq.(e) + 1) s) t.sets;
  freq

let common_elements t ~threshold =
  let freq = frequencies t in
  Array.fold_left (fun acc f -> if f >= threshold then acc + 1 else acc) 0 freq

let edges t =
  let out = Array.make (total_size t) { Edge.set = 0; elt = 0; sign = 1 } in
  let pos = ref 0 in
  Array.iteri
    (fun i s ->
      Array.iter
        (fun e ->
          out.(!pos) <- { Edge.set = i; elt = e; sign = 1 };
          incr pos)
        s)
    t.sets;
  out

let edge_stream ?seed t =
  let es = edges t in
  (match seed with
  | None -> ()
  | Some s ->
      let rng = Mkc_hashing.Splitmix.create s in
      for i = Array.length es - 1 downto 1 do
        let j = Mkc_hashing.Splitmix.below rng (i + 1) in
        let tmp = es.(i) in
        es.(i) <- es.(j);
        es.(j) <- tmp
      done);
  es

let pp_summary ppf t =
  Format.fprintf ppf "set system: n=%d m=%d pairs=%d" t.n t.m (total_size t)
