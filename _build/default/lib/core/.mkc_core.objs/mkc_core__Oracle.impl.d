lib/core/oracle.ml: Float Large_common Large_set List Mkc_hashing Option Params Small_set Solution
