(** Monotonic nanosecond clock for spans and latency histograms.

    Readings are clamped to be non-decreasing per domain, so span
    durations are never negative even if the underlying wall clock
    steps backwards.  The time source is injectable
    ({!set_source}/{!use_wall_clock}) so exporters and golden tests can
    run against a deterministic clock. *)

val now_ns : unit -> int
(** Current time in nanoseconds, monotone non-decreasing within each
    domain.  The absolute origin is the source's (Unix epoch for the
    default wall-clock source). *)

val set_source : (unit -> int) -> unit
(** Replace the raw time source (returns nanoseconds).  Affects every
    domain; per-domain monotonic clamping still applies on top, but is
    reset per source installation — readings under the new source are
    never clamped against the old source's values.  Swap sources only
    at quiescence (no concurrent readers). *)

val use_wall_clock : unit -> unit
(** Restore the default [Unix.gettimeofday]-backed source. *)
