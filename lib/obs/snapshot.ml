type hist = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hbuckets : (int * int) list;
}

type value = Counter of int | Gauge of float | Histogram of hist
type metric = { mname : string; mvalue : value }
type point = { at_edges : int; words : int; breakdown : (string * int) list }
type profile = { pname : string; cadence : int; points : point list }

type space = {
  budget_words : int;
  peak_words : int;
  headroom : float;
  overshoots : int;
  samples : int;
}

type track = { tname : string; tcount : int; tmin : int; tmax : int; tlast : int }

type t = {
  schema : string;
  created_ns : int;
  space : space option;
  series : track list;
  metrics : metric list;
  spans : Span.span list;
  profiles : profile list;
}

let schema_version = "mkc-obs/4"
let schema_v3 = "mkc-obs/3"
let schema_v2 = "mkc-obs/2"
let schema_v1 = "mkc-obs/1"

(* v1–v3 histograms used 64 plain log2 buckets; v4 uses the log-linear
   Histogram layout.  Validation bounds bucket indices per schema. *)
let legacy_num_buckets = 64

let headroom_of ~budget_words ~peak_words =
  if budget_words <= 0 then 0.0 else float_of_int peak_words /. float_of_int budget_words

let hist_of_metric (h : Metric.Histogram.t) =
  {
    hcount = h.count;
    hsum = float_of_int h.sum;
    hmin = (if h.count = 0 then 0.0 else float_of_int h.vmin);
    hmax = (if h.count = 0 then 0.0 else float_of_int h.vmax);
    hbuckets = Metric.Histogram.nonzero_buckets h;
  }

let tracks_of_series s =
  let n = Series.total s in
  if n = 0 then []
  else
    Array.to_list (Series.tracks s)
    |> List.mapi (fun i tname ->
           {
             tname;
             tcount = n;
             tmin = Series.min_of s i;
             tmax = Series.max_of s i;
             tlast = Series.last s i;
           })

let capture ?spans ?(profiles = []) ?space ?(series = []) ?now_ns registry =
  let spans = match spans with Some s -> s | None -> Span.recent () in
  let now_ns = match now_ns with Some t -> t | None -> Clock.now_ns () in
  let metrics =
    Registry.dump registry
    |> List.map (fun (mname, v) ->
           let mvalue =
             match v with
             | Registry.Counter c -> Counter c
             | Registry.Gauge g -> Gauge g
             | Registry.Histogram h -> Histogram (hist_of_metric h)
           in
           { mname; mvalue })
  in
  let profiles =
    List.map
      (fun (pname, sp) ->
        {
          pname;
          cadence = Space_profile.cadence sp;
          points =
            List.map
              (fun (p : Space_profile.point) ->
                { at_edges = p.at_edges; words = p.words; breakdown = p.breakdown })
              (Space_profile.points sp);
        })
      profiles
  in
  { schema = schema_version; created_ns = now_ns; space; series; metrics; spans; profiles }

(* ---------- emission ---------- *)

let json_of_metric m =
  let base = [ ("name", Json.String m.mname) ] in
  Json.Object
    (match m.mvalue with
    | Counter c -> base @ [ ("kind", Json.String "counter"); ("value", Json.Int c) ]
    | Gauge g -> base @ [ ("kind", Json.String "gauge"); ("value", Json.Float g) ]
    | Histogram h ->
        base
        @ [
            ("kind", Json.String "histogram");
            ("count", Json.Int h.hcount);
            ("sum", Json.Float h.hsum);
            ("min", Json.Float h.hmin);
            ("max", Json.Float h.hmax);
            ( "buckets",
              Json.Array
                (List.map (fun (i, c) -> Json.Array [ Json.Int i; Json.Int c ]) h.hbuckets) );
          ])

let json_of_span (s : Span.span) =
  Json.Object
    [
      ("name", Json.String s.name);
      ("start_ns", Json.Int s.start_ns);
      ("dur_ns", Json.Int s.dur_ns);
      ("domain", Json.Int s.domain);
    ]

let json_of_point p =
  Json.Object
    [
      ("at_edges", Json.Int p.at_edges);
      ("words", Json.Int p.words);
      ( "breakdown",
        Json.Array (List.map (fun (k, w) -> Json.Array [ Json.String k; Json.Int w ]) p.breakdown)
      );
    ]

let json_of_profile p =
  Json.Object
    [
      ("name", Json.String p.pname);
      ("cadence", Json.Int p.cadence);
      ("points", Json.Array (List.map json_of_point p.points));
    ]

let json_of_space s =
  Json.Object
    [
      ("budget_words", Json.Int s.budget_words);
      ("peak_words", Json.Int s.peak_words);
      ("headroom", Json.Float s.headroom);
      ("overshoots", Json.Int s.overshoots);
      ("samples", Json.Int s.samples);
    ]

let json_of_track tr =
  Json.Object
    [
      ("name", Json.String tr.tname);
      ("count", Json.Int tr.tcount);
      ("min", Json.Int tr.tmin);
      ("max", Json.Int tr.tmax);
      ("last", Json.Int tr.tlast);
    ]

let to_json t =
  Json.Object
    (("schema", Json.String t.schema)
     :: ("created_ns", Json.Int t.created_ns)
     :: (match t.space with None -> [] | Some s -> [ ("space", json_of_space s) ])
    @ (match t.series with
      | [] -> []
      | trs -> [ ("series", Json.Array (List.map json_of_track trs)) ])
    @ [
        ("metrics", Json.Array (List.map json_of_metric t.metrics));
        ("spans", Json.Array (List.map json_of_span t.spans));
        ("profiles", Json.Array (List.map json_of_profile t.profiles));
      ])

let to_string t = Json.to_string (to_json t)

(* ---------- validation ---------- *)

let ( let* ) = Result.bind

let field ctx name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or mistyped field %S" ctx name)

let list_field ctx name j =
  match Option.bind (Json.member name j) Json.to_list with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "%s: missing or mistyped array %S" ctx name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let pair_of conv name j =
  match j with
  | Json.Array [ a; b ] -> (
      match (conv a, Json.to_int b) with
      | Some x, Some y -> Ok (x, y)
      | _ -> Error (Printf.sprintf "%s: bad pair element" name))
  | _ -> Error (Printf.sprintf "%s: expected 2-element array" name)

let metric_of_json ~max_bucket j =
  let* mname = field "metric" "name" Json.to_string_opt j in
  let ctx = Printf.sprintf "metric %S" mname in
  let* kind = field ctx "kind" Json.to_string_opt j in
  let* mvalue =
    match kind with
    | "counter" ->
        let* v = field ctx "value" Json.to_int j in
        Ok (Counter v)
    | "gauge" ->
        let* v = field ctx "value" Json.to_float j in
        Ok (Gauge v)
    | "histogram" ->
        let* hcount = field ctx "count" Json.to_int j in
        let* hsum = field ctx "sum" Json.to_float j in
        let* hmin = field ctx "min" Json.to_float j in
        let* hmax = field ctx "max" Json.to_float j in
        let* raw = list_field ctx "buckets" j in
        let* hbuckets = map_result (pair_of Json.to_int ctx) raw in
        if List.exists (fun (i, c) -> i < 0 || i >= max_bucket || c < 0) hbuckets
        then Error (ctx ^ ": bucket index or count out of range")
        else if List.fold_left (fun a (_, c) -> a + c) 0 hbuckets <> hcount then
          Error (ctx ^ ": bucket counts do not sum to count")
        else Ok (Histogram { hcount; hsum; hmin; hmax; hbuckets })
    | k -> Error (Printf.sprintf "%s: unknown kind %S" ctx k)
  in
  Ok { mname; mvalue }

let span_of_json j =
  let* name = field "span" "name" Json.to_string_opt j in
  let ctx = Printf.sprintf "span %S" name in
  let* start_ns = field ctx "start_ns" Json.to_int j in
  let* dur_ns = field ctx "dur_ns" Json.to_int j in
  let* domain = field ctx "domain" Json.to_int j in
  if dur_ns < 0 then Error (ctx ^ ": negative duration")
  else Ok { Span.name; start_ns; dur_ns; domain }

let point_of_json ctx j =
  let* at_edges = field ctx "at_edges" Json.to_int j in
  let* words = field ctx "words" Json.to_int j in
  let* raw = list_field ctx "breakdown" j in
  let* breakdown = map_result (pair_of Json.to_string_opt ctx) raw in
  Ok { at_edges; words; breakdown }

let profile_of_json j =
  let* pname = field "profile" "name" Json.to_string_opt j in
  let ctx = Printf.sprintf "profile %S" pname in
  let* cadence = field ctx "cadence" Json.to_int j in
  let* raw = list_field ctx "points" j in
  let* points = map_result (point_of_json ctx) raw in
  (* every point's breakdown must sum to its total — the invariant the
     space experiments rely on *)
  let bad =
    List.find_opt
      (fun p -> List.fold_left (fun a (_, w) -> a + w) 0 p.breakdown <> p.words)
      points
  in
  match bad with
  | Some p -> Error (Printf.sprintf "%s: breakdown does not sum to words at edge %d" ctx p.at_edges)
  | None -> Ok { pname; cadence; points }

let space_of_json j =
  let ctx = "space" in
  let* budget_words = field ctx "budget_words" Json.to_int j in
  let* peak_words = field ctx "peak_words" Json.to_int j in
  let* headroom = field ctx "headroom" Json.to_float j in
  let* overshoots = field ctx "overshoots" Json.to_int j in
  let* samples = field ctx "samples" Json.to_int j in
  if budget_words < 0 || peak_words < 0 then Error (ctx ^ ": negative word count")
  else if overshoots < 0 || overshoots > samples then
    Error (ctx ^ ": overshoots outside [0, samples]")
  else if headroom <> headroom_of ~budget_words ~peak_words then
    Error (ctx ^ ": headroom is not peak_words / budget_words")
  else if budget_words > 0 && samples > 0 && peak_words > budget_words && overshoots = 0 then
    Error (ctx ^ ": peak over budget but no overshoot recorded")
  else Ok { budget_words; peak_words; headroom; overshoots; samples }

let track_of_json j =
  let* tname = field "series track" "name" Json.to_string_opt j in
  let ctx = Printf.sprintf "series track %S" tname in
  let* tcount = field ctx "count" Json.to_int j in
  let* tmin = field ctx "min" Json.to_int j in
  let* tmax = field ctx "max" Json.to_int j in
  let* tlast = field ctx "last" Json.to_int j in
  if tcount < 1 then Error (ctx ^ ": a recorded track needs count >= 1")
  else if tmin > tmax then Error (ctx ^ ": min above max")
  else if tlast < tmin || tlast > tmax then Error (ctx ^ ": last outside [min, max]")
  else Ok { tname; tcount; tmin; tmax; tlast }

let of_json j =
  let* schema = field "snapshot" "schema" Json.to_string_opt j in
  if
    schema <> schema_version && schema <> schema_v3 && schema <> schema_v2
    && schema <> schema_v1
  then
    Error
      (Printf.sprintf "snapshot: schema %S, expected %S (or legacy %S / %S / %S)" schema
         schema_version schema_v3 schema_v2 schema_v1)
  else
    let* created_ns = field "snapshot" "created_ns" Json.to_int j in
    let* space =
      match Json.member "space" j with
      | None -> Ok None
      | Some _ when schema = schema_v1 ->
          Error (Printf.sprintf "snapshot: %S has no \"space\" section" schema_v1)
      | Some sj ->
          let* s = space_of_json sj in
          Ok (Some s)
    in
    let* series =
      match Json.member "series" j with
      | None -> Ok []
      | Some _ when schema = schema_v1 || schema = schema_v2 ->
          Error (Printf.sprintf "snapshot: %S has no \"series\" section" schema)
      | Some sj -> (
          match Json.to_list sj with
          | None -> Error "snapshot: mistyped \"series\" section"
          | Some raw ->
              let* trs = map_result track_of_json raw in
              if trs = [] then Error "snapshot: empty \"series\" section" else Ok trs)
    in
    let max_bucket =
      if schema = schema_version then Metric.Histogram.num_buckets else legacy_num_buckets
    in
    let* raw_metrics = list_field "snapshot" "metrics" j in
    let* metrics = map_result (metric_of_json ~max_bucket) raw_metrics in
    let* raw_spans = list_field "snapshot" "spans" j in
    let* spans = map_result span_of_json raw_spans in
    let* raw_profiles = list_field "snapshot" "profiles" j in
    let* profiles = map_result profile_of_json raw_profiles in
    Ok { schema; created_ns; space; series; metrics; spans; profiles }

let validate s =
  let* j = Json.parse s in
  of_json j
