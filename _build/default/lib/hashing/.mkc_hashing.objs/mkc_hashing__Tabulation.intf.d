lib/hashing/tabulation.mli: Splitmix
