bench/exp_util.ml: Array Float Format List Mkc_core Mkc_coverage Mkc_stream Mkc_workload Unix
