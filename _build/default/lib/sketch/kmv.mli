(** K-Minimum-Values distinct-element sketch (Bar-Yossef et al. [11]).

    Keeps the [cap] smallest hash values (as points in the unit
    interval) seen so far; the number of distinct elements is estimated
    as [(cap - 1) / max kept value].  With [cap = Θ(1/ε²)] the estimate
    is a (1 ± ε)-approximation w.h.p. — the paper's Theorem 2.12 only
    needs ε = 1/2, so the default capacity is tiny and the sketch is
    genuinely Õ(1) space.

    One of three interchangeable L0 estimators (with {!L0_bjkst} and
    {!Hyperloglog}); experiment E10 compares them. *)

type t

val create : ?cap:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t
(** Default [cap] is 64 (ε ≈ 1/4 empirically). *)

val add : t -> int -> unit
val estimate : t -> float
val merge : t -> t -> t
(** Sketches must share the same hash function (i.e. be {!copy}s or fed
    from the same [create]d ancestor); raises [Invalid_argument]
    otherwise. *)

val copy : t -> t
(** Fresh empty sketch sharing the hash function of [t] (mergeable). *)

val words : t -> int
