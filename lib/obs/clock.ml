let wall () = int_of_float (Unix.gettimeofday () *. 1e9)
let source = ref wall

(* Per-domain high-water mark: clamping is domain-local, so no domain
   ever observes its own clock running backwards, without any
   cross-domain synchronization on the hot path. *)
let last : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let now_ns () =
  let raw = !source () in
  let hw = Domain.DLS.get last in
  let v = if raw > !hw then raw else !hw in
  hw := v;
  v

let set_source f = source := f
let use_wall_clock () = source := wall
