(** Versioned, schema-validated, byte-stable checkpoints of sink state.

    A checkpoint is a [mkc-ckpt/1] JSON envelope around a sink-specific
    payload: the sink kind, the stream position the state covers, the
    base hash seed the sink was created under, and an FNV-1a checksum of
    all of the above.  Everything about a sink except its mutable state
    is a deterministic function of its parameters and seed, so restore
    re-creates the sink (same hash functions, bit for bit) and overlays
    the payload — a restored sink is indistinguishable from one that
    processed the prefix itself.

    Validation mirrors {!Mkc_obs.Snapshot}: every rejection is a named
    {!error} (foreign magic, unknown version, truncated payload, forged
    seed, checksum mismatch), and emission is byte-stable so goldens can
    pin the format. *)

type error =
  | Bad_magic of string  (** [schema] field absent or not [mkc-ckpt/*]. *)
  | Bad_version of string  (** [mkc-ckpt/N] with an N this build does not read. *)
  | Truncated of string  (** JSON parse failure — cut-off or corrupt bytes. *)
  | Malformed of string  (** Envelope field missing or of the wrong shape. *)
  | Checksum_mismatch of { expected : string; got : string }
  | Seed_mismatch of { expected : int; got : int }
      (** The checkpoint was taken under a different base seed: its hash
          functions are not this run's hash functions, so restoring
          would silently corrupt every estimate. *)
  | Kind_mismatch of { expected : string; got : string }
  | Payload_rejected of string  (** The sink's own decoder said no. *)
  | Io_error of string

val error_to_string : error -> string

type t = {
  kind : string;  (** Which sink family the payload belongs to. *)
  pos : int;  (** Edges of the stream covered by this state. *)
  seed : int;  (** Base seed the sink's hash functions derive from. *)
  payload : Mkc_obs.Json.t;
}

val schema : string
(** ["mkc-ckpt/1"]. *)

val to_string : t -> string
(** Byte-stable rendering (fixed field order, deterministic JSON). *)

val of_string : ?expect_kind:string -> ?expect_seed:int -> string -> (t, error) result
(** Parse and validate; [expect_kind]/[expect_seed] additionally pin
    the sink family and hash seed (a checkpoint from a different seed
    would restore silently-wrong hash state, so resume paths always
    pass them). *)

val validate : string -> (t, error) result
(** {!of_string} with no expectations — the [validate-checkpoint]
    subcommand's core. *)

val save : path:string -> t -> (int, error) result
(** Serialize and write atomically (temp file + rename, so a crash
    mid-save never destroys the previous valid checkpoint).  Returns
    the byte size written.  Bumps [checkpoint.saves]/[checkpoint.bytes]
    when the metric registry is enabled. *)

val load : ?expect_kind:string -> ?expect_seed:int -> path:string -> unit -> (t, error) result

val words_of_bytes : int -> int
(** Words the serialized state occupies ([bytes / 8], rounded up) — the
    figure {!Sink.Observed} accounts under the [checkpoint] breakdown
    key. *)

type 's codec = {
  kind : string;
  seed : int;
  encode : 's -> Mkc_obs.Json.t;
  restore : 's -> Mkc_obs.Json.t -> (unit, string) result;
      (** Overlay a payload onto a freshly created sink of the same
          parameters and seed. *)
}
(** How a sink family plugs into checkpointing: a kind tag, the seed its
    hashes derive from, and payload encode/restore.  Core sinks expose
    one ({!Mkc_core.Estimate.codec} etc.). *)

val map_codec : ('t -> 's) -> 's codec -> 't codec
(** Re-aim a codec through an accessor — e.g. checkpoint the inner sink
    of a {!Sink.Observed} wrapper via [map_codec Sink.Observed.state]. *)

(** {1 Payload plumbing} — JSON helpers shared by the sink encoders.
    Exposed so core-layer codecs (and tests) build on one vocabulary. *)
module J : sig
  val err : ('a, unit, string, ('b, string) result) format4 -> 'a
  val field : string -> Mkc_obs.Json.t -> (Mkc_obs.Json.t, string) result
  val int_field : string -> Mkc_obs.Json.t -> (int, string) result
  val float_field : string -> Mkc_obs.Json.t -> (float, string) result
  val str_field : string -> Mkc_obs.Json.t -> (string, string) result
  val list_field : string -> Mkc_obs.Json.t -> (Mkc_obs.Json.t list, string) result
  val map_result : ('a -> ('b, string) result) -> 'a list -> ('b list, string) result
  val to_int : Mkc_obs.Json.t -> (int, string) result
  val int_array : int array -> Mkc_obs.Json.t
  val to_int_array : Mkc_obs.Json.t -> (int array, string) result
  val int_matrix : int array array -> Mkc_obs.Json.t
  val to_int_matrix : Mkc_obs.Json.t -> (int array array, string) result
  val int_pairs : (int * int) list -> Mkc_obs.Json.t
  val to_int_pairs : Mkc_obs.Json.t -> ((int * int) list, string) result

  val i64 : int64 -> Mkc_obs.Json.t
  (** 64-bit fingerprints travel as decimal strings (JSON ints are
      63-bit OCaml ints here). *)

  val to_i64 : Mkc_obs.Json.t -> (int64, string) result
end

(** {1 Sketch payload codecs} — canonical JSON forms of the sketch
    dumps, shared by every core sink that composes them. *)
module Sketch_io : sig
  val l0 : Mkc_sketch.L0_bjkst.t -> Mkc_obs.Json.t
  val restore_l0 : Mkc_sketch.L0_bjkst.t -> Mkc_obs.Json.t -> (unit, string) result
  val f2c : Mkc_sketch.F2_contributing.t -> Mkc_obs.Json.t
  val restore_f2c : Mkc_sketch.F2_contributing.t -> Mkc_obs.Json.t -> (unit, string) result
  val memo : Mkc_sketch.Sampler.Memo.t -> Mkc_obs.Json.t
  val restore_memo : Mkc_sketch.Sampler.Memo.t -> Mkc_obs.Json.t -> (unit, string) result
end
