lib/core/large_set.mli: Mkc_hashing Mkc_stream Params Solution
