lib/workload/planted.mli: Mkc_stream
