lib/workload/planted.ml: Array List Mkc_hashing Mkc_stream
