(** Directed-graph coverage workloads.

    The paper motivates the edge-arrival model with graph neighborhoods
    (footnote 2): when sets are out-neighborhoods of vertices, the input
    representation may list a vertex's {e incoming} edges contiguously,
    scattering each set across the stream.  These generators produce
    such instances: picking [k] vertices to maximize the union of their
    out-neighborhoods (e.g. influence seeding / dominating-set style
    tasks). *)

val power_law :
  vertices:int -> edges:int -> skew:float -> seed:int -> Mkc_stream.Set_system.t
(** Random multigraph with Zipf-distributed endpoints: set [u] =
    out-neighborhood of vertex [u]; ground set = vertices.  Parallel
    edges collapse. *)

val in_arrival_stream :
  Mkc_stream.Set_system.t -> seed:int -> Mkc_stream.Stream_source.t
(** The adversarial order of footnote 2: (set = u, elt = v) pairs
    grouped by {e target} v — each set arrives maximally
    non-contiguously. [seed] shuffles the order of target groups. *)
