test/test_sketch.ml: Alcotest Array Float Hashtbl List Mkc_hashing Mkc_sketch Option QCheck QCheck_alcotest
