(* Equivalence tests for the Sink/Pipeline ingestion layer.

   The whole refactor rests on two guarantees:
     1. feed_batch ≡ edge-by-edge feed (any chunk size), and
     2. domain-parallel shard ingestion ≡ sequential ingestion,
   both bit-for-bit: identical finalized results and identical space
   accounting.  Every sink and every batched sketch is checked. *)

module Edge = Mkc_stream.Edge
module Ss = Mkc_stream.Set_system
module Src = Mkc_stream.Stream_source
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module P = Mkc_core.Params
module E = Mkc_core.Estimate
module Sm = Mkc_hashing.Splitmix

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance () =
  let n = 512 and m = 128 and k = 4 and seed = 3 in
  let pl = Mkc_workload.Planted.few_large ~n ~m ~k ~seed in
  let sys = pl.Mkc_workload.Planted.system in
  let src = Src.of_array (Ss.edge_stream ~seed:(seed + 7) sys) in
  (src, P.make ~m ~n ~k ~alpha:4.0 ~seed ())

let fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

(* --- estimate / report / full-range sinks --- *)

let test_estimate_batched_equivalence () =
  let src, params = instance () in
  let est0 = E.create params in
  let r0 = Pipe.run_seq E.sink est0 src in
  List.iter
    (fun chunk ->
      let est = E.create params in
      let r = Pipe.run ~chunk E.sink est src in
      checkb (Printf.sprintf "chunk %d: same result" chunk) true
        (fingerprint r = fingerprint r0);
      checki (Printf.sprintf "chunk %d: same words" chunk) (E.words est0) (E.words est);
      checkb (Printf.sprintf "chunk %d: same breakdown" chunk) true
        (E.words_breakdown est = E.words_breakdown est0))
    [ 1; 7; 1024 ]

let test_estimate_parallel_equivalence () =
  let src, params = instance () in
  let est0 = E.create params in
  let r0 = Pipe.run_seq E.sink est0 src in
  List.iter
    (fun domains ->
      let est = E.create params in
      let r =
        Pipe.run_parallel ~domains ~shards:(E.shards est)
          ~finalize:(fun () -> E.finalize est)
          src
      in
      checkb (Printf.sprintf "%d domains: bit-for-bit result" domains) true
        (fingerprint r = fingerprint r0);
      checki (Printf.sprintf "%d domains: same words" domains) (E.words est0)
        (E.words est))
    [ 2; 3 ]

let test_report_batched_and_parallel () =
  let src, params = instance () in
  let module R = Mkc_core.Report in
  let r0 = Pipe.run_seq R.sink (R.create params) src in
  let r1 = Pipe.run ~chunk:37 R.sink (R.create params) src in
  let rep2 = R.create params in
  let r2 =
    Pipe.run_parallel ~domains:2 ~shards:(R.shards rep2)
      ~finalize:(fun () -> R.finalize rep2)
      src
  in
  checkb "batched: same sets" true (r1.R.sets = r0.R.sets);
  checkb "batched: same estimate" true (r1.R.estimate = r0.R.estimate);
  checkb "parallel: same sets" true (r2.R.sets = r0.R.sets);
  checkb "parallel: same estimate" true (r2.R.estimate = r0.R.estimate)

let test_full_range_sink_both_engines () =
  let src, _ = instance () in
  let module F = Mkc_core.Full_range in
  List.iter
    (fun alpha ->
      let p = P.make ~m:128 ~n:512 ~k:4 ~alpha ~seed:3 () in
      let r0 = Pipe.run_seq F.sink (F.create p) src in
      let r1 = Pipe.run ~chunk:97 F.sink (F.create p) src in
      let fr2 = F.create p in
      let r2 =
        Pipe.run_parallel ~domains:2 ~shards:(F.shards fr2)
          ~finalize:(fun () -> F.finalize fr2)
          src
      in
      checkb (Printf.sprintf "alpha %g: batched" alpha) true (r1 = r0);
      checkb (Printf.sprintf "alpha %g: parallel" alpha) true (r2 = r0))
    [ 2.0; 8.0 ]

(* --- batched sketches --- *)

let ids = Array.init 3000 (fun i -> ((i * 7919) + 13) mod 257)

let test_l0_add_batch () =
  let mk () = Mkc_sketch.L0_bjkst.create ~seed:(Sm.create 5) () in
  let a = mk () and b = mk () in
  Array.iter (Mkc_sketch.L0_bjkst.add a) ids;
  Mkc_sketch.L0_bjkst.add_batch b ids ~pos:0 ~len:(Array.length ids);
  checkb "same estimate" true
    (Mkc_sketch.L0_bjkst.estimate a = Mkc_sketch.L0_bjkst.estimate b);
  checki "same level" (Mkc_sketch.L0_bjkst.level a) (Mkc_sketch.L0_bjkst.level b);
  checki "same words" (Mkc_sketch.L0_bjkst.words a) (Mkc_sketch.L0_bjkst.words b)

let test_f2_ams_add_batch () =
  let mk () = Mkc_sketch.F2_ams.create ~seed:(Sm.create 9) () in
  let a = mk () and b = mk () in
  Array.iter (fun i -> Mkc_sketch.F2_ams.add a i 2) ids;
  Mkc_sketch.F2_ams.add_batch b ids ~pos:0 ~len:(Array.length ids) ~delta:2;
  checkb "same estimate" true
    (Mkc_sketch.F2_ams.estimate a = Mkc_sketch.F2_ams.estimate b)

let test_count_sketch_add_batch () =
  let mk () = Mkc_sketch.Count_sketch.create ~width:64 ~seed:(Sm.create 17) () in
  let a = mk () and b = mk () in
  Array.iter (fun i -> Mkc_sketch.Count_sketch.add a i 1) ids;
  Mkc_sketch.Count_sketch.add_batch b ids ~pos:0 ~len:(Array.length ids) ~delta:1;
  for i = 0 to 20 do
    checkb "same point estimate" true
      (Mkc_sketch.Count_sketch.estimate a i = Mkc_sketch.Count_sketch.estimate b i)
  done;
  checkb "same F2 estimate" true
    (Mkc_sketch.Count_sketch.f2_estimate a = Mkc_sketch.Count_sketch.f2_estimate b)

let test_f2_heavy_hitter_add_batch () =
  let mk () = Mkc_sketch.F2_heavy_hitter.create ~phi:0.05 ~seed:(Sm.create 23) () in
  let a = mk () and b = mk () in
  Array.iter (fun i -> Mkc_sketch.F2_heavy_hitter.add a i 1) ids;
  Mkc_sketch.F2_heavy_hitter.add_batch b ids ~pos:0 ~len:(Array.length ids) ~delta:1;
  checkb "same hits" true
    (Mkc_sketch.F2_heavy_hitter.hits a = Mkc_sketch.F2_heavy_hitter.hits b);
  checkb "same candidates" true
    (Mkc_sketch.F2_heavy_hitter.candidates a = Mkc_sketch.F2_heavy_hitter.candidates b)

let test_f2_contributing_add_batch () =
  let mk () =
    Mkc_sketch.F2_contributing.create ~gamma:0.1 ~r:64 ~indep:4 ~seed:(Sm.create 29) ()
  in
  let a = mk () and b = mk () in
  Array.iter (fun i -> Mkc_sketch.F2_contributing.add a i 1) ids;
  Mkc_sketch.F2_contributing.add_batch b ids ~pos:0 ~len:(Array.length ids) ~delta:1;
  checkb "same hits" true
    (Mkc_sketch.F2_contributing.hits a = Mkc_sketch.F2_contributing.hits b);
  checkb "same candidates" true
    (Mkc_sketch.F2_contributing.candidates a = Mkc_sketch.F2_contributing.candidates b)

(* --- coverage baselines --- *)

let test_mcgregor_vu_sink () =
  let src, _ = instance () in
  let module Mv = Mkc_coverage.Mcgregor_vu in
  let mk () = Mv.create ~m:128 ~n:512 ~k:4 ~seed:3 () in
  let a = mk () in
  let ra = Pipe.run_seq Mv.sink a src in
  let b = mk () in
  let rb = Pipe.run ~chunk:11 Mv.sink b src in
  checkb "batched ≡ per-edge" true (ra = rb)

let baseline_system () =
  Ss.create ~n:12 ~m:4
    ~sets:[| [| 0; 1; 2; 3; 4 |]; [| 4; 5; 6 |]; [| 7; 8 |]; [| 0; 9; 10; 11 |] |]

let test_set_arrival_adapter_sieve () =
  let sys = baseline_system () in
  let module Sieve = Mkc_coverage.Sieve in
  let direct = Sieve.create ~n:(Ss.n sys) ~k:2 () in
  for i = 0 to Ss.m sys - 1 do
    Sieve.feed direct i (Ss.set sys i)
  done;
  let r0 = Sieve.result direct in
  (* canonical set-major edge order: each set arrives as one contiguous
     run, so the adapter reassembles exactly the direct arrivals *)
  let t = Sieve.create ~n:(Ss.n sys) ~k:2 () in
  let r1 =
    Pipe.run ~chunk:3 (Sink.Set_arrival.sink ()) (Sieve.edge_sink t)
      (Src.of_array (Ss.edges sys))
  in
  checkb "adapter ≡ direct set feed" true (r0 = r1)

let test_set_arrival_adapter_mv () =
  let sys = baseline_system () in
  let module M = Mkc_coverage.Mv_set_arrival in
  let direct = M.create ~k:2 () in
  for i = 0 to Ss.m sys - 1 do
    M.feed direct i (Ss.set sys i)
  done;
  let r0 = M.result direct in
  let t = M.create ~k:2 () in
  let r1 =
    Pipe.run ~chunk:5 (Sink.Set_arrival.sink ()) (M.edge_sink t)
      (Src.of_array (Ss.edges sys))
  in
  checkb "adapter ≡ direct set feed" true (r0 = r1)

(* --- property: batching/parallelism never changes the estimate --- *)

let prop_batched_equals_sequential =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 200)
           (pair (int_range 0 31) (int_range 0 63)))
        (int_range 1 64))
  in
  let arb =
    QCheck.make
      ~print:(fun (edges, chunk) ->
        Printf.sprintf "%d edges, chunk %d" (List.length edges) chunk)
      gen
  in
  QCheck.Test.make ~name:"feed_batch ≡ feed for Estimate (random streams)" ~count:30
    arb (fun (pairs, chunk) ->
      let edges =
        Array.of_list (List.map (fun (s, e) -> Edge.make ~set:s ~elt:e) pairs)
      in
      let src = Src.of_array edges in
      let params = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:5 () in
      let r0 = Pipe.run_seq E.sink (E.create params) src in
      let r1 = Pipe.run ~chunk E.sink (E.create params) src in
      let est2 = E.create params in
      let r2 =
        Pipe.run_parallel ~domains:2 ~shards:(E.shards est2)
          ~finalize:(fun () -> E.finalize est2)
          src
      in
      fingerprint r0 = fingerprint r1 && fingerprint r0 = fingerprint r2)

let suite =
  [
    Alcotest.test_case "estimate: batched ≡ per-edge" `Quick test_estimate_batched_equivalence;
    Alcotest.test_case "estimate: parallel ≡ sequential" `Quick
      test_estimate_parallel_equivalence;
    Alcotest.test_case "report: batched/parallel ≡ per-edge" `Quick
      test_report_batched_and_parallel;
    Alcotest.test_case "full-range: both engines via sink" `Quick
      test_full_range_sink_both_engines;
    Alcotest.test_case "l0_bjkst add_batch" `Quick test_l0_add_batch;
    Alcotest.test_case "f2_ams add_batch" `Quick test_f2_ams_add_batch;
    Alcotest.test_case "count_sketch add_batch" `Quick test_count_sketch_add_batch;
    Alcotest.test_case "f2_heavy_hitter add_batch" `Quick test_f2_heavy_hitter_add_batch;
    Alcotest.test_case "f2_contributing add_batch" `Quick test_f2_contributing_add_batch;
    Alcotest.test_case "mcgregor-vu sink" `Quick test_mcgregor_vu_sink;
    Alcotest.test_case "set-arrival adapter: sieve" `Quick test_set_arrival_adapter_sieve;
    Alcotest.test_case "set-arrival adapter: mv" `Quick test_set_arrival_adapter_mv;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_batched_equals_sequential ]
