(** A stream token in the general (edge-arrival) model: the pair
    [(set, element)] meaning "element [elt] belongs to set [set]",
    carrying a turnstile [sign] (+1 insertion, -1 deletion).

    Sets are identified by ints in [\[0, m)], elements by ints in
    [\[0, n)].  Duplicate pairs may appear in a stream; all algorithms
    in this repository are duplicate-tolerant as the paper requires
    (frequencies count multiplicity only where the analysis says so).

    In the turnstile extension each [(set, elt)] pair's multiplicity is
    the signed sum of its updates.  The linear sketches (F2 family)
    absorb either sign natively; insertion-only structures document
    their deletion behaviour at their [feed] points. *)

type t = { set : int; elt : int; sign : int }

val make : set:int -> elt:int -> t
(** An insertion ([sign = 1]).  Raises [Invalid_argument] on negative
    ids. *)

val signed : sign:int -> set:int -> elt:int -> t
(** A signed update: [~sign:1] inserts, [~sign:(-1)] deletes.  Raises
    [Invalid_argument] on negative ids or a sign outside {+1, -1}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
