let to_stream (d : Disjointness.t) =
  let out = ref [] in
  for i = Array.length d.players - 1 downto 0 do
    Array.iter
      (fun item -> out := { Mkc_stream.Edge.set = item; elt = i; sign = 1 } :: !out)
      d.players.(i)
  done;
  Array.of_list !out

let to_system (d : Disjointness.t) =
  Mkc_stream.Set_system.of_edges ~n:d.r ~m:d.m (Array.to_list (to_stream d))

let player_boundaries (d : Disjointness.t) =
  let bounds = Array.make d.r 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i p ->
      bounds.(i) <- !acc;
      acc := !acc + Array.length p)
    d.players;
  bounds
