(** Noise-aware regression sentinel: compare a candidate ledger entry
    against a baseline entry and classify the difference.

    Decision procedure, in order:

    + different labels or different workload params → {!Incomparable}
      (comparing different workloads yields noise, not evidence);
    + per-mode best-of-k throughput outside the {e noise band} —
      [max(noise_floor, (median - best) / best)] estimated from the
      baseline's own repeat dispersion — → {!Regressed} (slower) or
      counts toward {!Improved} (faster);
    + a histogram-digest p99 inflated beyond both the relative band
      and the absolute floor → {!Regressed};
    + a quality gauge drifted beyond the absolute tolerance →
      {!Regressed} (the α-approximation guarantee is not allowed to
      buy throughput);
    + any regression wins over any improvement; neither →
      {!Within_noise}.

    Pure and deterministic: the verdict is a function of the two
    entries and {!opts} alone. *)

type verdict =
  | Improved of string
  | Within_noise
  | Regressed of string
  | Incomparable of string

val verdict_to_string : verdict -> string

type opts = {
  noise_floor : float;  (** minimum relative noise band (0.02) *)
  p99_band : float;  (** allowed relative p99 inflation (0.5) *)
  p99_abs_floor : int;  (** plus this absolute slack, in the digest's
                            unit — keeps one-bucket jitter on tiny
                            values from tripping the check (1000) *)
  quality_tol : float;  (** absolute quality-gauge tolerance (0.01) *)
}

val default_opts : opts

type report = {
  r_verdict : verdict;
  r_lines : string list;  (** per-check evidence, for [mkc bench-diff] output *)
}

val compare_entries :
  ?opts:opts -> baseline:Ledger.entry -> candidate:Ledger.entry -> unit -> report
