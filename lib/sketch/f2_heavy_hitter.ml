type t = {
  phi : float;
  clamp : bool;
  cs : Count_sketch.t;
  cap : int;
  (* Candidate tracking: exact counts of tracked ids since insertion
     (SpaceSaving-style).  In the paper's insertion-only application the
     coordinate frequency IS the stream count, so an exact counter both
     identifies heavy candidates and avoids re-estimating through the
     CountSketch on every update (a per-update sort); the reported
     values still come from the CountSketch at finalize time, keeping
     the Theorem 2.10 (1 ± 1/2) guarantee.

     The tracker is a flat open-addressed (linear-probe) table over two
     preallocated int arrays: [tkeys] ([min_int] = empty) and [tvals].
     Slot count is a fixed power of two >= 2·(2·cap+1): occupancy peaks
     at 2·cap+1 just before a prune fires, so the load factor stays
     <= 1/2 and the table never resizes.  Entries leave either in bulk
     prunes (which rebuild from scratch) or one at a time when a
     turnstile deletion returns a signed count to zero — the latter
     uses backward-shift deletion, so linear probing still needs no
     tombstones, and the per-update path allocates nothing. *)
  tkeys : int array;
  tvals : int array;
  tmask : int;
  (* prune scratch: at most 2·cap+1 live entries when a prune fires *)
  sid : int array;
  scnt : int array;
  mutable tn : int;
  mutable prunes : int;
}

type hit = { id : int; freq : float }

let absent = min_int

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(depth = 5) ?(width_factor = 8) ?(clamp = true) ~phi ~seed () =
  if phi <= 0.0 || phi > 1.0 then invalid_arg "F2_heavy_hitter.create: phi must be in (0, 1]";
  let width = max 4 (int_of_float (ceil (float_of_int width_factor /. phi))) in
  let cap = max 4 (int_of_float (ceil (4.0 /. phi))) in
  let maxocc = (2 * cap) + 1 in
  let slots = pow2_at_least (2 * maxocc) 16 in
  {
    phi;
    clamp;
    cs = Count_sketch.create ~depth ~width ~seed:(Mkc_hashing.Splitmix.fork seed 0) ();
    cap;
    tkeys = Array.make slots absent;
    tvals = Array.make slots 0;
    tmask = slots - 1;
    sid = Array.make maxocc 0;
    scnt = Array.make maxocc 0;
    tn = 0;
    prunes = 0;
  }

let[@inline] slot_of t i =
  let h = i * 0x2545_F491_4F6C_DD1D in
  (h lxor (h lsr 23)) land t.tmask

(* Find the slot holding [i], or the empty slot where it would go.
   Tail-recursive: no refs, no allocation on the per-update path. *)
let rec probe keys mask i s =
  let k = Array.unsafe_get keys s in
  if k = i || k = absent then s else probe keys mask i ((s + 1) land mask)

(* Prune order: count descending with an id tie-break.  Which
   candidates survive must be a function of the (id, count) multiset
   alone, never of table layout — a restored or merged table has a
   different slot arrangement but must prune identically.  The sort is
   an in-place heapsort over the preallocated scratch prefix, so a
   prune allocates nothing either. *)
let[@inline] sorts_after t i j =
  let ci = Array.unsafe_get t.scnt i and cj = Array.unsafe_get t.scnt j in
  ci < cj || (ci = cj && Array.unsafe_get t.sid i > Array.unsafe_get t.sid j)

let swap_scratch t i j =
  let c = t.scnt.(i) in
  t.scnt.(i) <- t.scnt.(j);
  t.scnt.(j) <- c;
  let d = t.sid.(i) in
  t.sid.(i) <- t.sid.(j);
  t.sid.(j) <- d

let rec sift t n i =
  let l = (2 * i) + 1 in
  if l < n then begin
    let m = if sorts_after t l i then l else i in
    let r = l + 1 in
    let m = if r < n && sorts_after t r m then r else m in
    if m <> i then begin
      swap_scratch t i m;
      sift t n m
    end
  end

let sort_scratch t n =
  for i = (n / 2) - 1 downto 0 do
    sift t n i
  done;
  for e = n - 1 downto 1 do
    swap_scratch t 0 e;
    sift t e 0
  done

(* Insert without overflow checks: only called while rebuilding below
   cap occupancy. *)
let reinsert t id c =
  let s = probe t.tkeys t.tmask id (slot_of t id) in
  t.tkeys.(s) <- id;
  t.tvals.(s) <- c;
  t.tn <- t.tn + 1

let prune t =
  t.prunes <- t.prunes + 1;
  let n = ref 0 in
  for s = 0 to t.tmask do
    if Array.unsafe_get t.tkeys s <> absent then begin
      t.sid.(!n) <- Array.unsafe_get t.tkeys s;
      t.scnt.(!n) <- Array.unsafe_get t.tvals s;
      incr n;
      Array.unsafe_set t.tkeys s absent
    end
  done;
  sort_scratch t !n;
  t.tn <- 0;
  let keep = min t.cap !n in
  for j = 0 to keep - 1 do
    reinsert t t.sid.(j) t.scnt.(j)
  done

(* The two halves of an update, separable because they touch disjoint
   state.  The CountSketch half is linear and commutative — updates to
   the same id may be aggregated or reordered freely.  The tracked-count
   half is NOT: [prune] keeps the top-[cap] of the candidate table, and
   which ids are tracked when it fires depends on insertion order — so
   callers that aggregate the CS half per chunk must still replay this
   half in original stream order to stay bit-for-bit with per-item
   [add]. *)
let add_cs t i delta = Count_sketch.add t.cs i delta

(* Backward-shift deletion: clear the hole, then walk the cluster after
   it, sliding back every entry whose probe path crosses the hole.
   Probe sequences stay unbroken with no tombstones; the serialized
   form ([dump] sorts by id) depends only on the surviving (id, count)
   multiset, which is what makes insert-then-delete bit-for-bit equal
   to never-inserted on the serialized table. *)
let remove_at t s =
  t.tn <- t.tn - 1;
  let mask = t.tmask in
  let hole = ref s in
  Array.unsafe_set t.tkeys s absent;
  let j = ref ((s + 1) land mask) in
  let continue = ref true in
  while !continue do
    let k = Array.unsafe_get t.tkeys !j in
    if k = absent then continue := false
    else begin
      let h = slot_of t k in
      if (!j - h) land mask >= (!j - !hole) land mask then begin
        Array.unsafe_set t.tkeys !hole k;
        Array.unsafe_set t.tvals !hole (Array.unsafe_get t.tvals !j);
        Array.unsafe_set t.tkeys !j absent;
        hole := !j
      end;
      j := (!j + 1) land mask
    end
  done

let add_tracked t i delta =
  let s = probe t.tkeys t.tmask i (slot_of t i) in
  if Array.unsafe_get t.tkeys s = i then begin
    let c = Array.unsafe_get t.tvals s + delta in
    (* A signed count returning to zero means "never inserted": drop
       the entry so the table matches the insertion-free state.  With
       positive deltas (insertion-only streams) this branch is dead and
       the historical behaviour is bit-for-bit unchanged. *)
    if c = 0 then remove_at t s else Array.unsafe_set t.tvals s c
  end
  else begin
    Array.unsafe_set t.tkeys s i;
    Array.unsafe_set t.tvals s delta;
    t.tn <- t.tn + 1;
    if t.tn > 2 * t.cap then prune t
  end

let add t i delta =
  add_cs t i delta;
  add_tracked t i delta

let add_batch t ids ~pos ~len ~delta =
  (* The CountSketch half is commutative, so it takes the row-outer
     batched path; the exact-counter half replays the chunk in order so
     candidate tracking and pruning behave exactly as per-item [add]. *)
  Count_sketch.add_batch t.cs ids ~pos ~len ~delta;
  for i = pos to pos + len - 1 do
    add_tracked t (Array.unsafe_get ids i) delta
  done

let candidates t =
  if t.tn > t.cap then prune t;
  (* The CountSketch estimate of a light coordinate can be inflated by
     bucket collisions with a genuinely heavy one; the exact
     since-insertion counter is a sound upper bound in insertion-only
     streams, so report the minimum of the two.  (A heavy coordinate is
     tracked from early on, so its counter is near-exact and the
     (1 ± 1/2) value guarantee is preserved.) *)
  let acc = ref [] in
  for s = 0 to t.tmask do
    let id = t.tkeys.(s) in
    if id <> absent then begin
      let est = Count_sketch.estimate t.cs id in
      let freq = if t.clamp then Float.min est (float_of_int t.tvals.(s)) else est in
      acc := { id; freq } :: !acc
    end
  done;
  List.sort
    (fun a b -> if a.freq <> b.freq then compare b.freq a.freq else compare a.id b.id)
    !acc

let hits t =
  let f2 = Count_sketch.f2_estimate t.cs in
  let threshold = t.phi *. f2 in
  candidates t |> List.filter (fun { freq; _ } -> freq *. freq >= threshold)

let dump t =
  let counts = ref [] in
  for s = 0 to t.tmask do
    if t.tkeys.(s) <> absent then counts := (t.tkeys.(s), t.tvals.(s)) :: !counts
  done;
  let counts = List.sort (fun (a, _) (b, _) -> compare a b) !counts in
  (Count_sketch.dump t.cs, counts, t.prunes)

let clear_tracked t =
  Array.fill t.tkeys 0 (t.tmask + 1) absent;
  t.tn <- 0

(* Insert a restored/merged (id, count); returns false on duplicate. *)
let insert_count t id c =
  let s = probe t.tkeys t.tmask id (slot_of t id) in
  if Array.unsafe_get t.tkeys s = id then false
  else begin
    t.tkeys.(s) <- id;
    t.tvals.(s) <- c;
    t.tn <- t.tn + 1;
    true
  end

let load_state t ~rows ~counts ~prunes =
  if prunes < 0 then Error "f2_hh: negative prune count"
  else if List.length counts > 2 * t.cap then Error "f2_hh: tracked counts exceed cap"
  else
    match Count_sketch.load_state t.cs rows with
    | Error e -> Error e
    | Ok () ->
        clear_tracked t;
        let dup = List.exists (fun (id, c) -> not (insert_count t id c)) counts in
        if dup then begin
          clear_tracked t;
          Error "f2_hh: duplicate tracked id"
        end
        else begin
          t.prunes <- prunes;
          Ok ()
        end

(* The CountSketch half is linear; the tracked half merges by summing
   since-insertion counters (replayed in canonical id order so the
   result is independent of either table's layout).  When neither side
   has pruned this is exactly the single-stream tracked state; once
   prunes have fired the tracker is an approximation either way. *)
let merge_into ~dst src =
  if dst.cap <> src.cap then invalid_arg "F2_heavy_hitter.merge_into: cap mismatch";
  Count_sketch.merge_into ~dst:dst.cs src.cs;
  let _, counts, _ = dump src in
  List.iter (fun (id, c) -> add_tracked dst id c) counts;
  dst.prunes <- dst.prunes + src.prunes

let f2_estimate t = Count_sketch.f2_estimate t.cs
let phi t = t.phi
let tracked t = t.tn
let cap t = t.cap
let mem t i = Array.unsafe_get t.tkeys (probe t.tkeys t.tmask i (slot_of t i)) = i
let prunes t = t.prunes

(* Logical space: two words per live tracked entry plus the
   CountSketch — same accounting as the historical Hashtbl layout
   (the flat table's 2×-slot preallocation is a bounded constant
   factor; see DESIGN.md). *)
let words t = Count_sketch.words t.cs + (2 * t.tn)
