let frequency_histogram sys =
  let freq = Set_system.frequencies sys in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun f -> Hashtbl.replace tbl f (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f)))
    freq;
  Hashtbl.fold (fun f c acc -> (f, c) :: acc) tbl [] |> List.sort compare

let ucmn_size sys ~lambda =
  if lambda <= 0.0 then invalid_arg "Stats.ucmn_size: lambda must be positive";
  let threshold =
    max 1 (int_of_float (ceil (float_of_int (Set_system.m sys) /. lambda)))
  in
  Set_system.common_elements sys ~threshold

let max_frequency sys = Array.fold_left max 0 (Set_system.frequencies sys)

let contribution_profile sys sel =
  let seen = Array.make (Set_system.n sys) false in
  sel
  |> List.map (fun i ->
         let fresh = ref 0 in
         Array.iter
           (fun e ->
             if not seen.(e) then begin
               seen.(e) <- true;
               incr fresh
             end)
           (Set_system.set sys i);
         !fresh)
  |> Array.of_list
