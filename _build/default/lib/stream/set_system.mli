(** In-memory set systems [(U, F)] — the ground truth against which
    streaming algorithms are evaluated.

    This module is NOT part of any streaming algorithm's space budget;
    it exists so that tests and benches can compute exact coverages,
    optimal solutions on small instances, and element frequencies
    (Definition 2.1's λ-common elements). *)

type t

val create : n:int -> m:int -> sets:int array array -> t
(** [create ~n ~m ~sets] builds a system over ground set [\[0, n)] with
    [m] sets.  [sets.(i)] lists the elements of set [i]; duplicates are
    removed and entries validated. *)

val of_edges : n:int -> m:int -> Edge.t list -> t
val n : t -> int
val m : t -> int
val set : t -> int -> int array
(** Elements of one set, sorted, duplicate-free. *)

val set_size : t -> int -> int
val total_size : t -> int
(** Σ |S| over all sets = number of distinct stream pairs. *)

val coverage : t -> int list -> int
(** [coverage t sel] is [|∪_{i ∈ sel} S_i|]. *)

val covered : t -> int list -> bool array
(** Indicator of covered elements for a selection. *)

val frequencies : t -> int array
(** [frequencies t].(e) = number of sets containing element [e]. *)

val common_elements : t -> threshold:int -> int
(** Number of elements whose frequency is at least [threshold] — the
    size of [U^cmn] at a given commonality level (Definition 2.1 with
    the polylog folded into the caller's threshold). *)

val edges : t -> Edge.t array
(** All (set, element) pairs in canonical (set-major) order. *)

val edge_stream : ?seed:int -> t -> Edge.t array
(** The edge set in a deterministic pseudorandom arbitrary order —
    the paper's adversarial edge-arrival stream surrogate.  Without
    [seed] the canonical order is returned. *)

val pp_summary : Format.formatter -> t -> unit
