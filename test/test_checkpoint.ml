(* Tests for the checkpoint / shard-merge subsystem.

   The contract has two halves:

   1. crash tolerance — kill a run at any chunk boundary, restore from
      the latest checkpoint, finish: the result, the word counts and
      every work counter are bit-for-bit those of the uninterrupted run
      (checkpoints land on chunk boundaries only, so the resumed run
      re-chunks the suffix on the same grid);
   2. mergeability — the sketches are linear (F2/CountSketch,
      Thm 2.11) or pure functions of the element set seen (L0, Fig 3),
      so P edge-partitioned shard runs merge into exactly the
      single-stream state.

   Plus the envelope itself: a byte-stable mkc-ckpt/1 golden, and named
   rejection of every tampering mode (foreign magic, unknown version,
   truncated bytes, forged seed, flipped payload, wrong kind). *)

module Edge = Mkc_stream.Edge
module Src = Mkc_stream.Stream_source
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json
module P = Mkc_core.Params
module E = Mkc_core.Estimate
module L0 = Mkc_sketch.L0_bjkst
module F2 = Mkc_sketch.F2_ams
module Sm = Mkc_hashing.Splitmix

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Same regime as test_chunk_engine: small enough for qcheck volume,
   rich enough that all three oracle subroutines carry live state. *)
let params () = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:13 ()

let edges_gen =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 300) (pair (int_range 0 31) (int_range 0 63)))
      (int_range 1 128))

let edges_arb =
  QCheck.make
    ~print:(fun (edges, chunk) ->
      Printf.sprintf "%d edges, chunk %d" (List.length edges) chunk)
    edges_gen

let to_edges pairs = Array.of_list (List.map (fun (s, e) -> Edge.make ~set:s ~elt:e) pairs)

let fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Shard runs make their sampler decisions per shard-local chunk and
   rebuild the decision memo from scratch after a merge, so the
   evaluation/hit counter families legitimately differ from the
   single-stream run — everything else must not. *)
let invariant_stats est =
  List.map
    (fun (inst, stats) ->
      ( inst,
        List.filter
          (fun (k, _) ->
            not (has_suffix ~suffix:"sampler_evals" k || has_suffix ~suffix:"memo_hits" k))
          stats ))
    (E.stats est)

let with_tmp f =
  let path = Filename.temp_file "mkc_ckpt" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- 1. differential crash-resume (sequential) --- *)

(* Uninterrupted run vs: run the prefix with a checkpoint at every
   chunk, "crash" at a random chunk boundary, restore into a fresh
   estimator, finish the suffix.  Everything observable must match bit
   for bit — including the sampler-eval counters, because the resumed
   run re-chunks the suffix on the same grid. *)
let prop_crash_resume =
  QCheck.Test.make ~name:"crash at a chunk boundary + resume ≡ uninterrupted run"
    ~count:25 edges_arb (fun (pairs, chunk) ->
      let edges = to_edges pairs in
      let n = Array.length edges in
      let p = params () in
      let full = E.create p in
      let r_full = Pipe.run ~chunk E.sink full (Src.of_array edges) in
      (* crash after [cut] edges, a chunk multiple chosen pseudo-randomly
         from the instance (qcheck shrinks stay reproducible) *)
      let nchunks = (n + chunk - 1) / chunk in
      let cut = chunk * (1 + ((n * 7919) mod nchunks)) in
      let cut = min cut n in
      with_tmp (fun path ->
          let interrupted = E.create p in
          (match
             Pipe.run_resumable ~chunk ~every:1 ~checkpoint:path (E.codec p) E.sink
               interrupted
               (Src.of_array (Array.sub edges 0 cut))
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "prefix run: %s" (Ck.error_to_string e));
          let resumed = E.create p in
          match
            Pipe.run_resumable ~chunk ~resume:path (E.codec p) E.sink resumed
              (Src.of_array edges)
          with
          | Error e -> Alcotest.failf "resume: %s" (Ck.error_to_string e)
          | Ok r_res ->
              fingerprint r_full = fingerprint r_res
              && E.words full = E.words resumed
              && E.words_breakdown full = E.words_breakdown resumed
              && E.stats full = E.stats resumed))

(* Same law under the parallel driver: restore a checkpoint taken at a
   coordinator chunk boundary, re-derive the shards, drive the suffix
   with [feed_all_parallel ~start].  The coordinator chunks at
   [chunk × domains], so the cut must sit on that wider grid. *)
let prop_crash_resume_parallel =
  QCheck.Test.make ~name:"parallel resume (feed_all_parallel ~start) ≡ uninterrupted"
    ~count:15 edges_arb (fun (pairs, chunk) ->
      let domains = 2 in
      let edges = to_edges pairs in
      let n = Array.length edges in
      let p = params () in
      let wide = chunk * domains in
      let run_parallel_from est start =
        Pipe.run_parallel ~domains ~chunk
          ~shards:(E.shards est)
          ~finalize:(fun () -> E.finalize est)
          ~start
          (Src.of_array edges)
      in
      let full = E.create p in
      let r_full = run_parallel_from full 0 in
      let nchunks = (n + wide - 1) / wide in
      let cut = min n (wide * (1 + ((n * 104729) mod nchunks))) in
      (* drive the prefix in parallel, snapshot through the codec's
         string form (exercising the envelope), restore, finish *)
      let interrupted = E.create p in
      Pipe.feed_all_parallel ~domains ~chunk (E.shards interrupted)
        (Src.of_array (Array.sub edges 0 cut));
      let env =
        { Ck.kind = (E.codec p).Ck.kind; pos = cut; seed = (E.codec p).Ck.seed;
          payload = E.encode interrupted }
      in
      let resumed = E.create p in
      match Ck.of_string ~expect_kind:"estimate" ~expect_seed:p.P.base_seed
              (Ck.to_string env)
      with
      | Error e -> Alcotest.failf "envelope round trip: %s" (Ck.error_to_string e)
      | Ok env -> (
          match E.restore resumed env.Ck.payload with
          | Error msg -> Alcotest.failf "restore: %s" msg
          | Ok () ->
              let r_res = run_parallel_from resumed env.Ck.pos in
              fingerprint r_full = fingerprint r_res
              && E.words full = E.words resumed
              && E.words_breakdown full = E.words_breakdown resumed
              && E.stats full = E.stats resumed))

(* --- 2. merge laws --- *)

(* P edge-partitioned shard runs, merged stream-ordered, then finalized
   ≡ the single-stream run: same answer, same words, same invariant
   work counters (the sampler-eval families are per-shard-schedule). *)
let prop_shard_merge =
  let gen = QCheck.Gen.(pair edges_gen (int_range 2 4)) in
  let arb =
    QCheck.make
      ~print:(fun ((edges, chunk), shards) ->
        Printf.sprintf "%d edges, chunk %d, %d shards" (List.length edges) chunk shards)
      gen
  in
  QCheck.Test.make ~name:"P edge-partitioned shards merged ≡ single-stream run" ~count:20
    arb (fun ((pairs, chunk), shards) ->
      let edges = to_edges pairs in
      let p = params () in
      let single = E.create p in
      let r_single = Pipe.run ~chunk E.sink single (Src.of_array edges) in
      let merged = ref None in
      let r_merged =
        Pipe.run_sharded ~chunk ~shards
          ~create:(fun () ->
            let e = E.create p in
            (* run_sharded merges into the first created state *)
            if !merged = None then merged := Some e;
            e)
          ~merge:(fun dst src -> E.merge_into ~dst src)
          E.sink (Src.of_array edges)
      in
      let merged = Option.get !merged in
      fingerprint r_single = fingerprint r_merged
      && E.words single = E.words merged
      && E.words_breakdown single = E.words_breakdown merged
      && invariant_stats single = invariant_stats merged)

(* Sketch-level merge laws, on canonical dump states.  [l0_of]/[f2_of]
   build a sketch from an element list under a fixed seed; merge order
   and grouping must not matter. *)
let l0_of seed xs =
  let sk = L0.create ~seed:(Sm.create seed) () in
  List.iter (fun x -> L0.add sk x) xs;
  sk

let l0_merged seed parts =
  let acc = l0_of seed [] in
  List.iter (fun xs -> L0.merge_into ~dst:acc (l0_of seed xs)) parts;
  L0.dump acc

let prop_l0_merge_laws =
  let gen = QCheck.Gen.(list_size (int_range 0 200) (int_range 0 1000)) in
  let arb3 =
    QCheck.make
      ~print:(fun (a, (b, c)) ->
        Printf.sprintf "|a|=%d |b|=%d |c|=%d" (List.length a) (List.length b)
          (List.length c))
      QCheck.Gen.(pair gen (pair gen gen))
  in
  QCheck.Test.make ~name:"l0 merge: commutative, associative, ≡ union stream" ~count:50
    arb3 (fun (a, (b, c)) ->
      let seed = 4242 in
      l0_merged seed [ a; b ] = l0_merged seed [ b; a ]
      && l0_merged seed [ a; b; c ] = l0_merged seed [ c; a; b ]
      (* merge ≡ feeding the concatenated stream into one sketch *)
      && l0_merged seed [ a; b; c ] = L0.dump (l0_of seed (a @ b @ c)))

let f2_of seed xs =
  let sk = F2.create ~seed:(Sm.create seed) () in
  List.iter (fun (i, d) -> F2.add sk i d) xs;
  sk

let f2_merged seed parts =
  let acc = f2_of seed [] in
  List.iter (fun xs -> F2.merge_into ~dst:acc (f2_of seed xs)) parts;
  F2.dump acc

let prop_f2_merge_laws =
  let gen =
    QCheck.Gen.(list_size (int_range 0 100) (pair (int_range 0 200) (int_range (-3) 3)))
  in
  let arb3 =
    QCheck.make
      ~print:(fun (a, (b, c)) ->
        Printf.sprintf "|a|=%d |b|=%d |c|=%d" (List.length a) (List.length b)
          (List.length c))
      QCheck.Gen.(pair gen (pair gen gen))
  in
  QCheck.Test.make ~name:"f2 merge: linear — commutative, associative, ≡ summed stream"
    ~count:50 arb3 (fun (a, (b, c)) ->
      let seed = 777 in
      f2_merged seed [ a; b ] = f2_merged seed [ b; a ]
      && f2_merged seed [ a; b; c ] = f2_merged seed [ c; a; b ]
      && f2_merged seed [ a; b; c ] = F2.dump (f2_of seed (a @ b @ c)))

(* --- 3. envelope: golden bytes, round trip, tamper rejection --- *)

let demo_env =
  {
    Ck.kind = "demo";
    pos = 3;
    seed = 42;
    payload = Json.Object [ ("counts", Ck.J.int_array [| 1; 2; 3 |]) ];
  }

let golden =
  "{\"schema\":\"mkc-ckpt/1\",\"kind\":\"demo\",\"pos\":3,\"seed\":42,\
   \"crc\":\"c5fe3701f915d617\",\"payload\":{\"counts\":[1,2,3]}}"

let test_golden_bytes () =
  checks "byte-stable rendering" golden (Ck.to_string demo_env);
  (* stability across a parse → re-render cycle *)
  match Ck.of_string golden with
  | Error e -> Alcotest.failf "golden does not parse: %s" (Ck.error_to_string e)
  | Ok env -> checks "round trip re-renders identically" golden (Ck.to_string env)

let test_round_trip_fields () =
  match Ck.of_string ~expect_kind:"demo" ~expect_seed:42 golden with
  | Error e -> Alcotest.failf "golden rejected: %s" (Ck.error_to_string e)
  | Ok env ->
      checks "kind" "demo" env.Ck.kind;
      checki "pos" 3 env.Ck.pos;
      checki "seed" 42 env.Ck.seed;
      checkb "payload preserved" true (env.Ck.payload = demo_env.Ck.payload)

let replace_once ~sub ~by s =
  let ls = String.length s and lb = String.length sub in
  let rec find i =
    if i + lb > ls then invalid_arg "replace_once: substring not found"
    else if String.sub s i lb = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + lb) (ls - i - lb)

let test_tamper_rejection () =
  let reject what expected s =
    match Ck.of_string s with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error e ->
        checkb
          (Printf.sprintf "%s rejected as %s (got %s)" what expected (Ck.error_to_string e))
          true
          (match (expected, e) with
          | "bad_magic", Ck.Bad_magic _ -> true
          | "bad_version", Ck.Bad_version _ -> true
          | "truncated", Ck.Truncated _ -> true
          | "malformed", Ck.Malformed _ -> true
          | "checksum", Ck.Checksum_mismatch _ -> true
          | _ -> false)
  in
  reject "a foreign schema" "bad_magic" (replace_once ~sub:"mkc-ckpt/1" ~by:"not-ckpt/1" golden);
  reject "an unknown version" "bad_version"
    (replace_once ~sub:"mkc-ckpt/1" ~by:"mkc-ckpt/9" golden);
  reject "truncated bytes" "truncated" (String.sub golden 0 (String.length golden - 7));
  reject "a missing field" "malformed" (replace_once ~sub:"\"pos\":3," ~by:"" golden);
  reject "a flipped payload" "checksum"
    (replace_once ~sub:"[1,2,3]" ~by:"[1,2,4]" golden);
  reject "a forged position" "checksum" (replace_once ~sub:"\"pos\":3" ~by:"\"pos\":4" golden);
  (* seed/kind forgery that also fixes nothing else trips the checksum;
     expectation pinning catches a *consistently* re-signed envelope *)
  (match Ck.of_string ~expect_seed:43 golden with
  | Error (Ck.Seed_mismatch { expected = 43; got = 42 }) -> ()
  | Error e -> Alcotest.failf "seed pin: wrong error %s" (Ck.error_to_string e)
  | Ok _ -> Alcotest.fail "foreign seed accepted");
  match Ck.of_string ~expect_kind:"estimate" golden with
  | Error (Ck.Kind_mismatch { expected = "estimate"; got = "demo" }) -> ()
  | Error e -> Alcotest.failf "kind pin: wrong error %s" (Ck.error_to_string e)
  | Ok _ -> Alcotest.fail "foreign kind accepted"

let test_save_load_atomic () =
  with_tmp (fun path ->
      (match Ck.save ~path demo_env with
      | Error e -> Alcotest.failf "save: %s" (Ck.error_to_string e)
      | Ok bytes ->
          checki "save returns the byte size" (String.length golden) bytes;
          checki "words_of_bytes rounds up" ((bytes + 7) / 8) (Ck.words_of_bytes bytes));
      checks "file holds exactly the golden bytes" golden (read_file path);
      (* a corrupt file on disk is rejected by name, not by exception *)
      write_file path (replace_once ~sub:"[1,2,3]" ~by:"[9,2,3]" golden);
      match Ck.load ~path () with
      | Error (Ck.Checksum_mismatch _) -> ()
      | Error e -> Alcotest.failf "corrupt load: wrong error %s" (Ck.error_to_string e)
      | Ok _ -> Alcotest.fail "corrupt file accepted");
  match Ck.load ~path:"/nonexistent/mkc.ckpt" () with
  | Error (Ck.Io_error _) -> ()
  | Error e -> Alcotest.failf "missing file: wrong error %s" (Ck.error_to_string e)
  | Ok _ -> Alcotest.fail "missing file accepted"

(* A payload the estimator's own decoder must reject, wrapped in a
   perfectly valid envelope: the envelope validates, restore does not. *)
let test_payload_rejected () =
  let p = params () in
  let est = E.create p in
  let good = E.encode est in
  let bad =
    match good with
    | Json.Object fields ->
        Json.Object
          (List.map
             (function "body", _ -> ("body", Json.String "trivial") | kv -> kv)
             fields)
    | _ -> Alcotest.fail "estimate payload is not an object"
  in
  (match E.restore est bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "branch-mismatched payload accepted");
  (* and through the driver it surfaces as Payload_rejected *)
  with_tmp (fun path ->
      let env =
        { Ck.kind = "estimate"; pos = 0; seed = p.P.base_seed; payload = bad }
      in
      (match Ck.save ~path env with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "save: %s" (Ck.error_to_string e));
      let fresh = E.create p in
      match
        Pipe.run_resumable ~resume:path (E.codec p) E.sink fresh
          (Src.of_array [| Edge.make ~set:0 ~elt:0 |])
      with
      | Error (Ck.Payload_rejected _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Ck.error_to_string e)
      | Ok _ -> Alcotest.fail "rejected payload restored")

(* --- 4. space accounting: checkpoint bytes are on the books --- *)

let test_observed_checkpoint_words () =
  let p = params () in
  let est = E.create p in
  let sm, ob = Sink.Observed.observe E.sink est in
  let module SM = (val sm) in
  let base = SM.words ob in
  Sink.Observed.note_checkpoint ob ~words:1234;
  checki "checkpoint words join the total" (base + 1234) (SM.words ob);
  checkb "breakdown grows a checkpoint key" true
    (List.mem_assoc "checkpoint" (SM.words_breakdown ob));
  checki "checkpoint key holds the last size" 1234
    (List.assoc "checkpoint" (SM.words_breakdown ob));
  (* a newer, smaller checkpoint replaces the figure (held space, not a sum) *)
  Sink.Observed.note_checkpoint ob ~words:10;
  checki "note_checkpoint overwrites" (base + 10) (SM.words ob);
  checkb "negative sizes are rejected" true
    (match Sink.Observed.note_checkpoint ob ~words:(-1) with
    | exception Invalid_argument _ -> true
    | () -> false)

(* --- 5. end-of-stream checkpoint feeds the merge workflow --- *)

let test_final_checkpoint_merges () =
  let p = params () in
  let edges =
    Array.init 240 (fun i -> Edge.make ~set:(i * 11 mod 32) ~elt:(i * 17 mod 64))
  in
  let single = E.create p in
  let r_single = Pipe.run ~chunk:64 E.sink single (Src.of_array edges) in
  let parts = Src.partition ~shards:2 (Src.of_array edges) in
  let final_env part =
    with_tmp (fun path ->
        let est = E.create p in
        (match
           Pipe.run_resumable ~chunk:64 ~checkpoint:path (E.codec p) E.sink est part
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "shard run: %s" (Ck.error_to_string e));
        match Ck.load ~expect_kind:"estimate" ~expect_seed:p.P.base_seed ~path () with
        | Ok env -> env
        | Error e -> Alcotest.failf "shard checkpoint: %s" (Ck.error_to_string e))
  in
  let e0 = final_env parts.(0) and e1 = final_env parts.(1) in
  checki "shard checkpoints cover the whole stream" (Array.length edges)
    (e0.Ck.pos + e1.Ck.pos);
  let merged =
    match E.of_payload e0.Ck.payload with
    | Error msg -> Alcotest.failf "of_payload: %s" msg
    | Ok dst -> (
        match E.of_payload e1.Ck.payload with
        | Error msg -> Alcotest.failf "of_payload: %s" msg
        | Ok src ->
            E.merge_into ~dst src;
            dst)
  in
  let r_merged = E.finalize merged in
  checkb "merged final checkpoints ≡ single-stream run" true
    (fingerprint r_single = fingerprint r_merged);
  checki "merged words = single-stream words" (E.words single) (E.words merged)

(* --- 6. coverage baseline: the [34]-style sinks obey the same laws --- *)

let test_mcgregor_vu_shard_merge () =
  let module Mv = Mkc_coverage.Mcgregor_vu in
  let edges =
    Array.init 400 (fun i -> Edge.make ~set:(i * 13 mod 24) ~elt:(i * 29 mod 96))
  in
  let create () = Mv.create ~m:24 ~n:96 ~k:3 ~epsilon:0.5 ~seed:11 () in
  let single = create () in
  let r_single = Pipe.run ~chunk:64 Mv.sink single (Src.of_array edges) in
  let r_merged =
    Pipe.run_sharded ~chunk:64 ~shards:3 ~create
      ~merge:(fun dst src -> Mv.merge_into ~dst src)
      Mv.sink (Src.of_array edges)
  in
  checkb "3-shard merge ≡ single run" true
    (r_single.Mv.chosen = r_merged.Mv.chosen
    && r_single.Mv.coverage = r_merged.Mv.coverage
    && r_single.Mv.words = r_merged.Mv.words);
  (* encode/restore round trip: a restored baseline finalizes identically *)
  let orig = create () in
  let _ = Pipe.run ~chunk:64 Mv.sink orig (Src.of_array edges) in
  let fresh = create () in
  (match Mv.restore fresh (Mv.encode orig) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mcgregor_vu restore: %s" e);
  let rf = Mv.finalize fresh and ro = Mv.finalize orig in
  checkb "restored baseline finalizes identically" true
    (rf.Mv.chosen = ro.Mv.chosen && rf.Mv.coverage = ro.Mv.coverage)

(* --- 7. count_sketch: linearity --- *)

let prop_count_sketch_merge =
  let module Cs = Mkc_sketch.Count_sketch in
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 100) (pair (int_range 0 100) (int_range (-4) 4)))
        (list_size (int_range 0 100) (pair (int_range 0 100) (int_range (-4) 4))))
  in
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "|a|=%d |b|=%d" (List.length a) (List.length b))
      gen
  in
  QCheck.Test.make ~name:"count_sketch merge: linear rows, ≡ summed stream" ~count:50 arb
    (fun (a, b) ->
      let mk xs =
        let sk = Cs.create ~width:16 ~seed:(Sm.create 99) () in
        List.iter (fun (i, d) -> Cs.add sk i d) xs;
        sk
      in
      let dst = mk a in
      Cs.merge_into ~dst (mk b);
      Cs.dump dst = Cs.dump (mk (a @ b)))

(* --- 8. params: self-describing payloads --- *)

let test_params_round_trip () =
  let p = params () in
  (match P.of_json (P.encode p) with
  | Error e -> Alcotest.failf "params round trip: %s" e
  | Ok q ->
      checkb "same instance after round trip" true (P.same_instance p q);
      checkb "derived constants re-derived" true (q = p));
  (* a different seed is a different instance *)
  let q = P.make ~m:32 ~n:64 ~k:3 ~alpha:4.0 ~seed:14 () in
  checkb "seed difference detected" false (P.same_instance p q);
  (* malformed params are rejected, not crashed on *)
  match P.of_json (Json.Object [ ("m", Json.Int 32) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated params accepted"

(* --- 9. sketch payload round trips through Sketch_io --- *)

let test_sketch_io_round_trips () =
  (* L0: feed, dump through JSON, restore into a twin, compare dumps *)
  let sk = l0_of 31 (List.init 300 (fun i -> i * i)) in
  let twin = L0.create ~seed:(Sm.create 31) () in
  (match Ck.Sketch_io.restore_l0 twin (Ck.Sketch_io.l0 sk) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "l0 restore: %s" e);
  checkb "l0 round trip is exact" true (L0.dump sk = L0.dump twin);
  checkb "l0 estimates agree" true (L0.estimate sk = L0.estimate twin);
  (* tampered payloads are rejected by the decoder *)
  (match Ck.Sketch_io.restore_l0 twin (Json.Object [ ("z", Json.Int 1) ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "truncated l0 payload accepted");
  (* Memo: contents and counters survive *)
  let memo = Mkc_sketch.Sampler.Memo.create ~slots:16 in
  List.iter (fun i -> Mkc_sketch.Sampler.Memo.store memo (i * 3) (i mod 5)) (List.init 40 Fun.id);
  let memo2 = Mkc_sketch.Sampler.Memo.create ~slots:16 in
  (match Ck.Sketch_io.restore_memo memo2 (Ck.Sketch_io.memo memo) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "memo restore: %s" e);
  List.iter
    (fun i ->
      checki
        (Printf.sprintf "memo slot agreement for id %d" (i * 3))
        (Mkc_sketch.Sampler.Memo.find memo (i * 3))
        (Mkc_sketch.Sampler.Memo.find memo2 (i * 3)))
    (List.init 40 Fun.id);
  (* a memo of the wrong geometry is rejected *)
  let small = Mkc_sketch.Sampler.Memo.create ~slots:8 in
  match Ck.Sketch_io.restore_memo small (Ck.Sketch_io.memo memo) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "geometry-mismatched memo accepted"

(* --- 10. registry counters: saves/loads/bytes are published --- *)

let test_checkpoint_obs_counters () =
  Mkc_obs.Registry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Mkc_obs.Registry.set_enabled false;
      Mkc_obs.Registry.reset Mkc_obs.Registry.global)
    (fun () ->
      Mkc_obs.Registry.reset Mkc_obs.Registry.global;
      let read name =
        match Mkc_obs.Registry.read Mkc_obs.Registry.global name with
        | Some (Mkc_obs.Registry.Counter n) -> n
        | _ -> 0
      in
      with_tmp (fun path ->
          (match Ck.save ~path demo_env with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "save: %s" (Ck.error_to_string e));
          (match Ck.load ~path () with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "load: %s" (Ck.error_to_string e));
          checki "one save" 1 (read "checkpoint.saves");
          checki "one load" 1 (read "checkpoint.loads");
          checki "bytes = golden size" (String.length golden) (read "checkpoint.bytes")))

let suite =
  [
    Alcotest.test_case "envelope: golden bytes" `Quick test_golden_bytes;
    Alcotest.test_case "envelope: field round trip" `Quick test_round_trip_fields;
    Alcotest.test_case "envelope: tamper rejection by name" `Quick test_tamper_rejection;
    Alcotest.test_case "envelope: atomic save / corrupt load" `Quick test_save_load_atomic;
    Alcotest.test_case "payload: sink decoder rejection" `Quick test_payload_rejected;
    Alcotest.test_case "observed: checkpoint bytes on the space books" `Quick
      test_observed_checkpoint_words;
    Alcotest.test_case "merge: final checkpoints of 2 shards" `Quick
      test_final_checkpoint_merges;
    Alcotest.test_case "coverage baseline: shard-merge and restore" `Quick
      test_mcgregor_vu_shard_merge;
    Alcotest.test_case "params: self-describing payload round trip" `Quick
      test_params_round_trip;
    Alcotest.test_case "sketch_io: l0 and memo payload round trips" `Quick
      test_sketch_io_round_trips;
    Alcotest.test_case "registry: checkpoint.saves/loads/bytes counters" `Quick
      test_checkpoint_obs_counters;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_crash_resume;
        prop_crash_resume_parallel;
        prop_shard_merge;
        prop_l0_merge_laws;
        prop_f2_merge_laws;
        prop_count_sketch_merge;
      ]
