lib/stream/set_system.ml: Array Edge Format List Mkc_hashing
