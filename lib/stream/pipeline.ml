let default_chunk = 8192

let run_seq (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  Stream_source.iter (M.feed sink) src;
  M.finalize sink

let run ?(chunk = default_chunk) (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  Stream_source.chunks ~chunk (fun edges ~pos ~len -> M.feed_batch sink edges ~pos ~len) src;
  M.finalize sink

let feed_all ?(chunk = default_chunk) sinks src =
  Stream_source.chunks ~chunk
    (fun edges ~pos ~len ->
      Array.iter (fun s -> Sink.Any.feed_batch s edges ~pos ~len) sinks)
    src

let feed_all_parallel ?domains ?(chunk = default_chunk) sinks src =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let domains = min domains (Array.length sinks) in
  if domains <= 1 then feed_all ~chunk sinks src
  else begin
    (* Round-robin sharding: sink i belongs to domain (i mod domains).
       Each domain drives only its own sinks, over the shared read-only
       stream, so no two domains ever touch the same mutable state. *)
    let group g =
      let mine = ref [] in
      Array.iteri (fun i s -> if i mod domains = g then mine := s :: !mine) sinks;
      Array.of_list (List.rev !mine)
    in
    let workers =
      Array.init domains (fun g ->
          let mine = group g in
          Domain.spawn (fun () -> feed_all ~chunk mine src))
    in
    Array.iter Domain.join workers
  end

let run_parallel ?domains ?chunk ~shards ~finalize src =
  feed_all_parallel ?domains ?chunk shards src;
  finalize ()
