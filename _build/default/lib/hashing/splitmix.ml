type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let next_int t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let below t bound =
  if bound <= 0 then invalid_arg "Splitmix.below: bound must be positive";
  (* Rejection sampling to avoid modulo bias on small bounds. *)
  let limit = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next t) 1 in
    (* r is uniform in [0, 2^63). *)
    let v = Int64.rem r limit in
    let max_fair = Int64.sub Int64.max_int (Int64.rem Int64.max_int limit) in
    if Int64.compare r max_fair <= 0 then Int64.to_int v else loop ()
  in
  loop ()

let split t = { state = next t }

let fork t i =
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) 0xD1342543DE82EF95L)) }
