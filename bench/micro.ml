(* Bechamel micro-benchmarks: per-update cost of each streaming
   component — one Test.make per experiment area, all in one run. *)

open Bechamel
open Toolkit
module Sm = Mkc_hashing.Splitmix

let mk_edges n seed =
  let rng = Sm.create seed in
  Array.init n (fun _ ->
      Mkc_stream.Edge.make ~set:(Sm.below rng 2048) ~elt:(Sm.below rng 4096))

(* E10: sketch update costs *)
let test_l0_add =
  let sk = Mkc_sketch.L0_bjkst.create ~seed:(Sm.create 1) () in
  let i = ref 0 in
  Test.make ~name:"e10-l0-bjkst-add"
    (Staged.stage (fun () ->
         incr i;
         Mkc_sketch.L0_bjkst.add sk !i))

let test_kmv_add =
  let sk = Mkc_sketch.Kmv.create ~seed:(Sm.create 2) () in
  let i = ref 0 in
  Test.make ~name:"e10-kmv-add"
    (Staged.stage (fun () ->
         incr i;
         Mkc_sketch.Kmv.add sk !i))

let test_count_sketch_add =
  let cs = Mkc_sketch.Count_sketch.create ~width:1024 ~seed:(Sm.create 3) () in
  let i = ref 0 in
  Test.make ~name:"e10-count-sketch-add"
    (Staged.stage (fun () ->
         incr i;
         Mkc_sketch.Count_sketch.add cs (!i land 2047) 1))

let test_f2hh_add =
  let hh = Mkc_sketch.F2_heavy_hitter.create ~phi:0.01 ~seed:(Sm.create 4) () in
  let i = ref 0 in
  Test.make ~name:"e10-f2-heavy-hitter-add"
    (Staged.stage (fun () ->
         incr i;
         Mkc_sketch.F2_heavy_hitter.add hh (!i land 255) 1))

let test_f2c_add =
  let c = Mkc_sketch.F2_contributing.create ~gamma:0.05 ~r:512 ~indep:8 ~seed:(Sm.create 5) () in
  let i = ref 0 in
  Test.make ~name:"e10-f2-contributing-add"
    (Staged.stage (fun () ->
         incr i;
         Mkc_sketch.F2_contributing.add c (!i land 511) 1))

(* E1/E2: whole-pipeline per-edge cost *)
let test_estimate_feed =
  let p = Mkc_core.Params.make ~m:2048 ~n:4096 ~k:16 ~alpha:8.0 ~seed:6 () in
  let est = Mkc_core.Estimate.create p in
  let edges = mk_edges 65536 7 in
  let i = ref 0 in
  Test.make ~name:"e1-estimate-feed-edge"
    (Staged.stage (fun () ->
         incr i;
         Mkc_core.Estimate.feed est edges.(!i land 65535)))

let test_oracle_feed =
  let p = Mkc_core.Params.make ~m:2048 ~n:4096 ~k:16 ~alpha:8.0 ~seed:8 () in
  let o = Mkc_core.Oracle.create p ~seed:(Sm.create 9) in
  let edges = mk_edges 65536 10 in
  let i = ref 0 in
  Test.make ~name:"e6-oracle-feed-edge"
    (Staged.stage (fun () ->
         incr i;
         Mkc_core.Oracle.feed o edges.(!i land 65535)))

(* checkpoint codec: serialize / restore cost of a warmed estimator
   (the price of one [--checkpoint] save and one [--resume] load,
   minus the disk) *)
let checkpoint_env_of est p =
  {
    Mkc_stream.Checkpoint.kind = Mkc_core.Estimate.ckpt_kind;
    pos = 65536;
    seed = (Mkc_core.Estimate.codec p).Mkc_stream.Checkpoint.seed;
    payload = Mkc_core.Estimate.encode est;
  }

let test_checkpoint_encode =
  let p = Mkc_core.Params.make ~m:2048 ~n:4096 ~k:16 ~alpha:8.0 ~seed:13 () in
  let est = Mkc_core.Estimate.create p in
  Array.iter (Mkc_core.Estimate.feed est) (mk_edges 65536 14);
  Test.make ~name:"ckpt-encode-estimate"
    (Staged.stage (fun () ->
         ignore (Mkc_stream.Checkpoint.to_string (checkpoint_env_of est p))))

let test_checkpoint_restore =
  let p = Mkc_core.Params.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:15 () in
  let est = Mkc_core.Estimate.create p in
  Array.iter (Mkc_core.Estimate.feed est) (mk_edges 65536 16);
  let bytes = Mkc_stream.Checkpoint.to_string (checkpoint_env_of est p) in
  Test.make ~name:"ckpt-restore-estimate"
    (Staged.stage (fun () ->
         match Mkc_stream.Checkpoint.of_string bytes with
         | Error _ -> assert false
         | Ok env -> (
             let fresh = Mkc_core.Estimate.create p in
             match Mkc_core.Estimate.restore fresh env.Mkc_stream.Checkpoint.payload with
             | Ok () -> ()
             | Error _ -> assert false)))

(* hashing substrate *)
let test_poly_hash =
  let h = Mkc_hashing.Poly_hash.create ~indep:8 ~range:1024 ~seed:(Sm.create 11) in
  let i = ref 0 in
  Test.make ~name:"hash-poly8"
    (Staged.stage (fun () ->
         incr i;
         ignore (Mkc_hashing.Poly_hash.hash h !i)))

let test_tabulation_hash =
  let t = Mkc_hashing.Tabulation.create ~seed:(Sm.create 12) in
  let i = ref 0 in
  Test.make ~name:"hash-tabulation"
    (Staged.stage (fun () ->
         incr i;
         ignore (Mkc_hashing.Tabulation.hash64 t !i)))

let tests =
  Test.make_grouped ~name:"mkc" ~fmt:"%s %s"
    [
      test_poly_hash;
      test_tabulation_hash;
      test_l0_add;
      test_kmv_add;
      test_count_sketch_add;
      test_f2hh_add;
      test_f2c_add;
      test_estimate_feed;
      test_oracle_feed;
      test_checkpoint_encode;
      test_checkpoint_restore;
    ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  Analyze.merge ols instances results

let () = Bechamel_notty.Unit.add Instance.monotonic_clock (Measure.unit Instance.monotonic_clock)

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results

let run () =
  Format.printf "@.=== micro-benchmarks (bechamel, per-call wall clock) ===@.";
  let results = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  img (window, results) |> Notty_unix.eol |> Notty_unix.output_image
