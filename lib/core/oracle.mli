(** The (α, δ, η)-oracle for Max k-Cover (Definition 3.4, Figure 2,
    Theorem 4.1).

    Runs in parallel, in one pass over the edge stream:
    - {!Large_common} (always) — case I;
    - {!Large_set} with [w = k] when [sα ≥ 2k] (then OPT_large carries
      half the optimum unconditionally, Claim 4.3), else with [w = α] —
      case II;
    - {!Small_set} only when [sα < 2k] — case III.

    [finalize] returns the subroutine outcome with the largest estimate.
    Contract (Definition 3.4): with probability ≥ 1 − δ the returned
    value is at least [OPT/Õ(α)] whenever [OPT ≥ |U|/η], and w.h.p. it
    never exceeds OPT.  Total space Õ(m/α²). *)

type t

val create : Params.t -> seed:Mkc_hashing.Splitmix.t -> t
val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed}: each
    subroutine consumes the whole chunk before the next starts. *)

val feed_planned :
  t ->
  Mkc_stream.Chunk_plan.t ->
  red:int array ->
  Mkc_stream.Edge.t array ->
  pos:int ->
  len:int ->
  unit
(** Chunk-deduplicated ingestion (bit-for-bit ≡ {!feed}): each
    subroutine makes its hash decisions once per distinct set/element id
    of the plan and replays the chunk in edge order.  [red.(j)] is the
    (universe-reduced) element value of the plan's j-th distinct raw
    element — {!Estimate} fills it with one batched hash pass per
    instance; standalone oracle sinks pass the identity table. *)

val finalize : t -> Solution.outcome option
(** [None] ⇔ every subroutine reported infeasible. *)

val finalize_all : t -> Solution.outcome option list
(** Per-subroutine outcomes [\[large_common; large_set; small_set?\]] —
    the fig2 bench uses this to build the regime/winner matrix. *)

val cost_hint : t -> float
(** Static relative per-edge feed cost of this oracle's subroutine mix
    (units: one Large_common feed ≈ 1.0), from the profiled planned-path
    ns/edge ratios.  Seeds the pool scheduler's cost-aware bin packing;
    refined online from measured busy-ns in adaptive mode. *)

val words : t -> int

val words_breakdown : t -> (string * int) list
(** Per-subroutine word counts under canonical dot-namespaced keys
    ([oracle.large_common.l0], [oracle.large_set.f2_contributing], …;
    sorted, duplicates merged) — the E1 bench uses this to separate the
    α-dependent Õ(m/α²) mass from the Ω̃(1) floor.  In the heavy regime
    the absent subroutine appears as [("oracle.small_set", 0)]. *)

val stats : t -> (string * int) list
(** Work counters, dot-namespaced like {!words_breakdown}: ["edges"]
    consumed; ["sampler_evals"] — the headline decision count, actual
    set-sampling hash evaluations (LargeCommon memo misses, O(distinct
    set ids) under chunked ingestion, not O(edges)); plus each
    subroutine's {e stats} list ([oracle] prefix omitted — keys are
    [large_common.sampler_evals], [large_set.hh_recoveries], …).
    ["large_set.hh_recoveries"] is only populated by [finalize]. *)

val sink : (t, Solution.outcome option) Mkc_stream.Sink.sink
(** The oracle as a {!Mkc_stream.Sink} (one z-guess instance of the
    {!Estimate} fan-out, or standalone). *)

val encode : t -> Mkc_obs.Json.t
(** Composes the subroutine payloads plus the edge counter; the
    small-set slot is [Null] in the heavy regime. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) result
(** Overlay an {!encode} payload onto a freshly {!create}d oracle of the
    same params and seed; rejects a payload whose regime (small-set
    present/absent) disagrees. *)

val merge_into : dst:t -> t -> unit
(** Fold a shard's subroutine states in; raises [Invalid_argument] on a
    regime mismatch. *)
