lib/sketch/hyperloglog.ml: Bytes Char Float Int64 Mkc_hashing
