lib/sketch/f2_heavy_hitter.mli: Mkc_hashing
