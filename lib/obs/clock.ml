let wall () = int_of_float (Unix.gettimeofday () *. 1e9)
let source = ref wall

(* The source is versioned: installing a new one (set_source /
   use_wall_clock) bumps the epoch, and each domain's high-water mark
   resets on first read under the new epoch.  Without this, a
   deterministic test source could never be observed after any real
   wall-clock reading on the same domain — the clamp would pin every
   reading at the old wall-clock value. *)
let epoch = Atomic.make 0

type cell = { mutable ep : int; mutable hw : int }

(* Per-domain high-water mark: clamping is domain-local, so no domain
   ever observes its own clock running backwards, without any
   cross-domain synchronization on the hot path. *)
let last : cell Domain.DLS.key = Domain.DLS.new_key (fun () -> { ep = -1; hw = 0 })

let now_ns () =
  let raw = !source () in
  let c = Domain.DLS.get last in
  let e = Atomic.get epoch in
  if c.ep <> e then begin
    c.ep <- e;
    c.hw <- raw
  end
  else if raw > c.hw then c.hw <- raw;
  c.hw

let set_source f =
  source := f;
  Atomic.incr epoch

let use_wall_clock () =
  source := wall;
  Atomic.incr epoch
