(* The registry's histogram cells are log-linear Histograms; alias the
   module here so the whole merge algebra lives in one namespace. *)
module Histogram = Histogram

let merge_counter = ( + )
let merge_gauge mode a b = match mode with `Sum -> a +. b | `Max -> Float.max a b
