(* Ingestion-throughput micro-benchmark for the Sink/Pipeline layer.

   Six ways to drive the same Estimate sink over the same edge stream:
     per-edge      Stream_source.iter + Sink.feed        (the old ingestion path)
     batched       Pipeline.feed_all — chunked ingestion through the
                   chunk-deduplicated plan path (Chunk_plan + feed_planned)
     parallel      Pipeline.feed_all_parallel over Estimate.shards through
                   the persistent pool (static cost-hint packing)
     parallel-4    the same at 4 domains with the adaptive scheduler —
                   the acceptance-criteria configuration
     instrumented  batched again, metrics enabled + Sink.Observed wrapper
                   (quantifies the observability overhead; runs after the
                   plain modes so they see the registry disabled)
     telemetry     instrumented again, plus a Telemetry.Recorder writing
                   the MKCTEL1 log on the Observed cadence — the
                   [--telemetry] overhead number the acceptance criteria
                   gate on (within 5% of batched)

   All runs use identical params/seeds, so their finalized results must
   be identical — the benchmark asserts this before reporting, and also
   asserts that the instrumented run's final space-profile point equals
   the sink's words_breakdown exactly.  Results go to stdout and to a
   JSON file (machine-readable; includes the mkc-obs/2 metrics snapshot
   of the instrumented run, the winner-attribution counts, the
   space-budget headroom, the estimate-vs-greedy relative error, and
   the chunk-dedup efficiency ratio sampler_evals/edges).

   The instrumented run also carries the Space.Budget watchdog;
   [budget_strict := true] (the CLI's --budget-strict) makes an
   overshoot fatal, which is how CI gates on space regressions.

   Two registry entries share this runner:
     pipeline        n=65536, m=4096 — the acceptance-criteria workload
     pipeline-smoke  n=4096,  m=512  — a few seconds; CI divergence gate *)

module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params
module E = Mkc_core.Estimate

type timing = { mode : string; seconds : float; edges_per_sec : float }

let budget_strict = ref false

let time_ingest name f =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  (name, dt)

let outcome_fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

(* Oracle-level sampler evaluations actually performed (memo misses),
   summed over every (z, repeat) instance.  The chunk-dedup engine's
   headline number: per-edge ingestion would pay one evaluation per
   (instance, edge). *)
let total_sampler_evals e =
  List.fold_left
    (fun acc (_inst, stats) ->
      acc + (try List.assoc "sampler_evals" stats with Not_found -> 0))
    0 (E.stats e)

let run_with ~label ~json_out ~n ~m ~k ~set_size ~alpha ~seed () =
  Exp_util.header
    (Printf.sprintf "%s: per-edge vs batched vs domain-parallel ingestion" label);
  let sys = Mkc_workload.Random_inst.uniform ~n ~m ~set_size ~seed in
  let src = Mkc_stream.Stream_source.of_system ~seed:(seed + 1) sys in
  let edges = Mkc_stream.Stream_source.length src in
  (* Host context for the throughput numbers: [domains] is what the
     2-domain "parallel" mode requests; [domains_recommended] is what
     the host actually offers — on a single-core box every parallel
     figure is a time-sharing measurement, and readers of the JSON can
     tell. *)
  let domains_recommended = Domain.recommended_domain_count () in
  let domains = max 2 (min 4 domains_recommended) in
  Format.printf
    "stream: %d edges (n=%d, m=%d), k=%d, alpha=%g, %d domains (host recommends %d)@."
    edges n m k alpha domains domains_recommended;
  let params = P.make ~m ~n ~k ~alpha ~seed () in
  let fresh () = E.create params in
  let e_seq = fresh () and e_batch = fresh () and e_par = fresh () in
  let e_par4 = fresh () in
  let timings =
    [
      time_ingest "per-edge" (fun () ->
          Mkc_stream.Stream_source.iter (E.feed e_seq) src);
      time_ingest "batched" (fun () ->
          Mkc_stream.Pipeline.feed_all [| Mkc_stream.Sink.pack E.sink e_batch |] src);
      time_ingest "parallel" (fun () ->
          Mkc_stream.Pipeline.feed_all_parallel ~domains
            ~schedule:Mkc_stream.Pipeline.Static ~costs:(E.shard_costs e_par)
            (E.shards e_par) src);
      (* The acceptance-criteria configuration: 4 domains, adaptive
         re-packing from measured busy-ns. *)
      time_ingest "parallel-4" (fun () ->
          Mkc_stream.Pipeline.feed_all_parallel ~domains:4
            ~schedule:Mkc_stream.Pipeline.Adaptive ~costs:(E.shard_costs e_par4)
            (E.shards e_par4) src);
    ]
  in
  (* Telemetry mode: the batched drive through an Observed wrapper plus
     a live Telemetry.Recorder evaluating the standard probe set and
     writing the binary log on every cadence sample — exactly what the
     CLI's --telemetry costs on top of batched ingestion.  Runs with the
     registry still disabled, like a plain [mkc estimate --telemetry]:
     the probes read structural sketch stats, not registry counters. *)
  let module T = Mkc_obs.Telemetry in
  (* edges/16 is exactly the CLI default cadence (65536) on the full
     acceptance workload, and still yields a real sample train on the
     CI smoke size. *)
  let tel_cadence = max 1 (edges / 16) in
  let tel_path = Filename.remove_extension json_out ^ ".mkctel" in
  let telemetry_drive path =
    let e = fresh () in
    let sm, ob = Mkc_stream.Sink.Observed.observe ~cadence:tel_cadence E.sink e in
    let probes =
      Mkc_core.Telemetry_probes.build
        ~breakdown:(fun () -> Mkc_stream.Sink.Observed.sampled_breakdown ob)
        e
    in
    let writer =
      match T.Writer.create path ~tracks:(Array.map fst probes) with
      | Ok w -> w
      | Error err -> failwith ("pipeline bench: telemetry writer: " ^ T.error_to_string err)
    in
    let recorder = T.Recorder.create ~writer ~capacity:512 probes in
    Mkc_stream.Sink.Observed.set_on_sample ob (fun ~edges:at ~words:_ ->
        T.Recorder.sample recorder ~at_edges:at);
    let any = Mkc_stream.Sink.pack sm ob in
    let _, dt =
      time_ingest "telemetry" (fun () -> Mkc_stream.Pipeline.feed_all [| any |] src)
    in
    let r = E.finalize e in
    Mkc_stream.Sink.Observed.sample ob;
    T.Recorder.close recorder;
    (dt, r, ob, recorder)
  in
  let dt_tel, r_tel, ob_tel, recorder = telemetry_drive tel_path in
  (* Best-of-three, interleaved, for the gated pair: the 5%-overhead
     acceptance gate compares two multi-second timings, and single
     draws on a shared machine flicker by more than the gate width.
     Interleaving (T B T B) also cancels slow drift.  The re-drive
     telemetry logs are scratch; the validated one above is kept. *)
  let batched_redrive () =
    let e = fresh () in
    let _, dt =
      time_ingest "batched" (fun () ->
          Mkc_stream.Pipeline.feed_all [| Mkc_stream.Sink.pack E.sink e |] src)
    in
    (dt, outcome_fingerprint (E.finalize e))
  in
  let scratch = tel_path ^ ".rerun" in
  let telemetry_redrive () =
    let dt, r, _, _ = telemetry_drive scratch in
    Sys.remove scratch;
    if outcome_fingerprint r <> outcome_fingerprint r_tel then
      failwith "pipeline bench: telemetry re-drive disagrees!";
    dt
  in
  let dt_batch2, fp_batch2 = batched_redrive () in
  let dt_tel2 = telemetry_redrive () in
  let dt_batch3, fp_batch3 = batched_redrive () in
  let dt_tel3 = telemetry_redrive () in
  (* Every timed draw per mode, kept (not just the min): repeats and
     best/median land in the JSON and the run ledger, because the
     sentinel's noise band is exactly this best-vs-median spread. *)
  let draws =
    List.map
      (fun (name, dt) ->
        if name = "batched" then (name, [ dt; dt_batch2; dt_batch3 ]) else (name, [ dt ]))
      timings
    @ [ ("telemetry", [ dt_tel; dt_tel2; dt_tel3 ]) ]
  in
  let timings =
    List.map (fun (name, ds) -> (name, List.fold_left Float.min infinity ds)) draws
  in
  (* The log must round-trip, untorn, with its final space.words sample
     equal to the sink's observed words — the durable log and the live
     accounting may never disagree. *)
  (match T.read tel_path with
  | Error e -> failwith ("pipeline bench: telemetry log unreadable: " ^ T.error_to_string e)
  | Ok log ->
      (match log.T.torn with
      | Some e -> failwith ("pipeline bench: telemetry log torn: " ^ T.error_to_string e)
      | None -> ());
      let words_sum =
        List.find (fun s -> s.T.t_name = "space.words") (T.summarize log)
      in
      if words_sum.T.t_count < 2 then
        failwith "pipeline bench: telemetry log has fewer than 2 samples!";
      if words_sum.T.t_last <> Mkc_stream.Sink.Observed.words ob_tel then
        failwith "pipeline bench: telemetry final space.words <> observed words!");
  (* Instrumented mode: same batched drive, but through an Observed
     wrapper with the metric registry live.  Runs after the plain modes
     so they measure the disabled (one load-and-branch) path. *)
  let e_obs = fresh () in
  Mkc_obs.Registry.set_enabled true;
  let budget =
    Mkc_sketch.Space.Budget.create ~strict:!budget_strict (E.word_budget params)
  in
  let sm, ob = Mkc_stream.Sink.Observed.observe ~cadence:65536 ~budget E.sink e_obs in
  let obs_any = Mkc_stream.Sink.pack sm ob in
  let t_instrumented =
    time_ingest "instrumented" (fun () -> Mkc_stream.Pipeline.feed_all [| obs_any |] src)
  in
  let timings = timings @ [ t_instrumented ] in
  let draws = draws @ [ (fst t_instrumented, [ snd t_instrumented ]) ] in
  let r_obs = E.finalize e_obs in
  Mkc_stream.Sink.Observed.sample ob;
  E.record_metrics e_obs;
  let profile = Mkc_stream.Sink.Observed.profile ob in
  (match Mkc_obs.Space_profile.final profile with
  | None -> failwith "pipeline bench: instrumented run recorded no space profile!"
  | Some final ->
      let wb = Mkc_stream.Sink.canonical_breakdown (E.words_breakdown e_obs) in
      if final.Mkc_obs.Space_profile.words <> E.words e_obs then
        failwith "pipeline bench: space-profile final total <> words!";
      if final.Mkc_obs.Space_profile.breakdown <> wb then
        failwith "pipeline bench: space-profile final breakdown <> words_breakdown!");
  (* Ground truth for this workload is the offline greedy baseline; the
     estimate/greedy gap is the end-to-end quality number (the paper's
     guarantee is a 1/Õ(α) fraction of OPT ≥ greedy/(1 - 1/e)). *)
  let greedy = (Mkc_coverage.Greedy.run sys ~k).Mkc_coverage.Greedy.coverage in
  Mkc_obs.Quality.record_relative_error "estimate.quality.vs_greedy" ~truth:greedy
    ~estimate:(int_of_float r_obs.E.estimate);
  let module B = Mkc_sketch.Space.Budget in
  Mkc_obs.Quality.record_budget ~budget_words:(B.budget budget)
    ~peak_words:(B.peak budget) ~overshoots:(B.overshoots budget) ();
  let space =
    {
      Mkc_obs.Snapshot.budget_words = B.budget budget;
      peak_words = B.peak budget;
      headroom = B.headroom budget;
      overshoots = B.overshoots budget;
      samples = B.samples budget;
    }
  in
  let winners = E.winners e_obs in
  let snapshot =
    Mkc_obs.Snapshot.capture ~profiles:[ ("estimate", profile) ] ~space
      Mkc_obs.Registry.global
  in
  (* Harvested while the registry is still live: the instrumented
     drive's latency digests and quality gauges, bound for the run
     ledger below. *)
  let reg_dump = Mkc_obs.Registry.dump Mkc_obs.Registry.global in
  let run_digests =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Mkc_obs.Registry.Histogram h when h.Mkc_obs.Metric.Histogram.count > 0 ->
            Some (name, Mkc_obs.Metric.Histogram.digest h)
        | _ -> None)
      reg_dump
  in
  let has_substring s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    go 0
  in
  let run_quality =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Mkc_obs.Registry.Gauge g when has_substring name ".quality." -> Some (name, g)
        | _ -> None)
      reg_dump
  in
  Mkc_obs.Registry.set_enabled false;
  let results =
    List.map
      (fun e -> outcome_fingerprint (E.finalize e))
      [ e_seq; e_batch; e_par; e_par4 ]
    @ [ fp_batch2; fp_batch3; outcome_fingerprint r_obs; outcome_fingerprint r_tel ]
  in
  (match results with
  | a :: rest ->
      if List.exists (fun r -> r <> a) rest then
        failwith "pipeline bench: ingestion modes disagree!"
  | [] -> assert false);
  let estimate, z_guess, _ = List.hd results in
  Format.printf "all modes agree: estimate %.0f (z-guess %d)@." estimate z_guess;
  let rel_err =
    if greedy = 0 then 0.0
    else abs_float (estimate -. float_of_int greedy) /. float_of_int greedy
  in
  Format.printf "greedy baseline: %d (relative error %.3f)@." greedy rel_err;
  Format.printf "winners:%s@."
    (String.concat ""
       (List.map (fun (who, c) -> Printf.sprintf " %s=%d" who c) winners));
  Format.printf "space budget: %d words, peak %d, headroom %.2f@." (B.budget budget)
    (B.peak budget) (B.headroom budget);
  (* Dedup efficiency: batched path's actual sampler evaluations vs the
     per-edge path's (one per instance per edge). *)
  let evals_batched = total_sampler_evals e_batch in
  let evals_seq = total_sampler_evals e_seq in
  let eval_ratio = float_of_int evals_batched /. float_of_int (max 1 edges) in
  Format.printf "sampler evals: %d batched vs %d per-edge (%.1f%% of %d edges)@."
    evals_batched evals_seq (100.0 *. eval_ratio) edges;
  let timings =
    List.map
      (fun (mode, seconds) ->
        { mode; seconds; edges_per_sec = float_of_int edges /. seconds })
      timings
  in
  (* Repeat statistics per mode: best (= the headline number above),
     ceil-rank median, and the repeat count — the sentinel's
     noise-band inputs. *)
  let mode_stats =
    List.map
      (fun (mode, ds) ->
        let sorted = List.sort compare ds in
        let nrep = List.length sorted in
        let best = List.hd sorted in
        let median = List.nth sorted ((nrep - 1) / 2) in
        {
          Mkc_obs.Ledger.ms_mode = mode;
          ms_repeats = nrep;
          ms_best_s = best;
          ms_median_s = median;
          ms_edges_per_sec = float_of_int edges /. best;
        })
      draws
  in
  List.iter
    (fun t ->
      Format.printf "  %-12s  %6.3fs  %10.0f edges/s@." t.mode t.seconds t.edges_per_sec)
    timings;
  let eps mode = (List.find (fun t -> t.mode = mode) timings).edges_per_sec in
  let telemetry_overhead_pct = 100.0 *. (1.0 -. (eps "telemetry" /. eps "batched")) in
  Format.printf "telemetry overhead vs batched: %.1f%% (%d samples in %s)@."
    telemetry_overhead_pct
    (Mkc_obs.Series.total (T.Recorder.series recorder))
    tel_path;
  (* The CI speedup gate reads these: parallel throughput over batched,
     honest only when the host actually has the cores (see
     domains_recommended). *)
  let speedup = eps "parallel" /. eps "batched" in
  let speedup4 = eps "parallel-4" /. eps "batched" in
  Format.printf
    "parallel speedup vs batched: %.2fx (static, %d domains), %.2fx (adaptive, 4 domains)@."
    speedup domains speedup4;
  let oc = open_out json_out in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"edges\": %d,\n  \"n\": %d,\n  \"m\": %d,\n  \"k\": %d,\n  \"alpha\": %g,\n  \"domains\": %d,\n  \"estimate\": %.0f,\n"
       edges n m k alpha domains estimate);
  Buffer.add_string b
    (Printf.sprintf
       "  \"domains_requested\": %d,\n  \"domains_recommended\": %d,\n  \"schedule\": \
        \"static\",\n  \"schedule_parallel4\": \"adaptive\",\n"
       domains domains_recommended);
  Buffer.add_string b
    (Printf.sprintf
       "  \"parallel_speedup_vs_batched\": %.4f,\n  \
        \"parallel4_speedup_vs_batched\": %.4f,\n"
       speedup speedup4);
  Buffer.add_string b
    (Printf.sprintf
       "  \"sampler_evals\": %d,\n  \"sampler_evals_per_edge_path\": %d,\n  \"sampler_evals_ratio\": %.6f,\n"
       evals_batched evals_seq eval_ratio);
  Buffer.add_string b "  \"modes\": [\n";
  List.iteri
    (fun i (ms : Mkc_obs.Ledger.mode_stat) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"mode\": %S, \"seconds\": %.6f, \"repeats\": %d, \"best_s\": %.6f, \
            \"median_s\": %.6f, \"edges_per_sec\": %.0f }%s\n"
           ms.ms_mode ms.ms_best_s ms.ms_repeats ms.ms_best_s ms.ms_median_s
           ms.ms_edges_per_sec
           (if i = List.length mode_stats - 1 then "" else ",")))
    mode_stats;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"telemetry_overhead_pct\": %.3f,\n  \"telemetry_log\": %S,\n"
       telemetry_overhead_pct tel_path);
  Buffer.add_string b
    (Printf.sprintf "  \"greedy\": %d,\n  \"estimate_vs_greedy_rel_error\": %.6f,\n"
       greedy rel_err);
  Buffer.add_string b "  \"winners\": {";
  List.iteri
    (fun i (who, c) ->
      Buffer.add_string b
        (Printf.sprintf "%s %S: %d" (if i = 0 then "" else ",") who c))
    winners;
  Buffer.add_string b " },\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"space\": { \"budget_words\": %d, \"peak_words\": %d, \"headroom\": %.6f, \
        \"overshoots\": %d, \"samples\": %d },\n"
       (B.budget budget) (B.peak budget) (B.headroom budget) (B.overshoots budget)
       (B.samples budget));
  Buffer.add_string b
    (Printf.sprintf "  \"metrics_snapshot\": %s\n" (Mkc_obs.Snapshot.to_string snapshot));
  Buffer.add_string b "}\n";
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "wrote %s@." json_out;
  (* The JSON file is overwritten per run; the run ledger accumulates.
     Every bench run appends a record here so bench-diff always has a
     baseline to compare against. *)
  let entry =
    {
      Mkc_obs.Ledger.e_label = label;
      e_created_ns = int_of_float (Unix.gettimeofday () *. 1e9);
      e_host = Mkc_obs.Ledger.host_fingerprint ();
      e_params =
        [
          ("alpha", Mkc_obs.Json.Float alpha);
          ("domains", Mkc_obs.Json.Int domains);
          ("k", Mkc_obs.Json.Int k);
          ("m", Mkc_obs.Json.Int m);
          ("n", Mkc_obs.Json.Int n);
          ("seed", Mkc_obs.Json.Int seed);
          ("set_size", Mkc_obs.Json.Int set_size);
        ];
      e_stats =
        [
          ("edges", float_of_int edges);
          ("estimate", estimate);
          ("headroom", B.headroom budget);
          ("telemetry_overhead_pct", telemetry_overhead_pct);
        ];
      e_modes = mode_stats;
      e_digests = run_digests;
      e_quality = run_quality;
    }
  in
  let ledger_path = "ledger.mkcledg" in
  match Mkc_obs.Ledger.append ledger_path entry with
  | Ok () -> Format.printf "appended run record to %s@." ledger_path
  | Error e ->
      failwith ("pipeline bench: ledger append: " ^ Mkc_obs.Ledger.error_to_string e)

let run () =
  run_with ~label:"pipeline" ~json_out:"BENCH_pipeline.json" ~n:65536 ~m:4096 ~k:32
    ~set_size:256 ~alpha:8.0 ~seed:11 ()

(* CI-sized smoke run: same modes, same agreement assertions, a few
   seconds of wall clock.  Exists so CI can gate on cross-mode
   divergence without paying for the full workload. *)
let run_smoke () =
  run_with ~label:"pipeline-smoke" ~json_out:"BENCH_pipeline_smoke.json" ~n:4096
    ~m:512 ~k:16 ~set_size:64 ~alpha:8.0 ~seed:11 ()

