(** Named metric registry, sharded per domain.

    Ownership mirrors {!Mkc_stream.Pipeline.run_parallel}: every write
    goes to a cell owned by the writing domain (found through
    domain-local storage, created lazily), so the hot path takes no
    lock and shares no mutable cell between domains.  Reads
    ({!read}/{!dump}) merge the per-domain cells with the {!Metric}
    monoid — merged totals are exactly what a single-domain run would
    have produced, which is what makes sequential and domain-parallel
    ingestion comparable metric-for-metric.

    Writes racing with a merged read may be missed by that read (the
    usual monitoring staleness); totals are exact whenever the writers
    are quiescent, e.g. after [Domain.join] — the only point the
    library itself reads.

    All write operations are no-ops while the global switch is off
    (the default), costing one load and branch — instrumented hot
    paths stay within noise of uninstrumented ones. *)

type t

val create : unit -> t
(** A fresh, empty registry (used by tests and by callers that want
    isolated metric scopes). *)

val global : t
(** The default registry every built-in instrumentation site writes
    to. *)

val set_enabled : bool -> unit
(** Master switch for ALL registries' write paths (and {!Span}
    recording).  Off by default. *)

val enabled : unit -> bool

(** {1 Handles}

    Registering the same name twice returns an equivalent handle;
    re-registering a name as a different kind raises
    [Invalid_argument].  Handles are cheap and can be created eagerly
    or per call site. *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
val gauge : ?mode:[ `Sum | `Max ] -> t -> string -> gauge
(** Default mode [`Sum]; see {!Metric.merge_gauge}. *)

val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val record : histogram -> int -> unit
(** Record one integer observation (see {!Histogram.record}). *)

val observe : histogram -> float -> unit
(** [record] after truncation to int — kept for float-valued call
    sites. *)

val observe_ns : histogram -> int -> unit

(** {1 Merged reads} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Metric.Histogram.t

val read : t -> string -> value option
(** Merged-across-domains value of one metric; [None] if never
    registered. *)

val dump : t -> (string * value) list
(** Every registered metric, merged, sorted by name — the stable
    export order. *)

val reset : t -> unit
(** Zero every cell in every shard (metrics stay registered).  Call
    only while writers are quiescent. *)
