lib/core/universe_reduction.mli: Mkc_hashing Mkc_stream
