type t = {
  num_levels : int;
  (* One nested sampler drives all class-size guesses: F2C level i
     (class size ≈ 2^i, survival rate oversample/2^i) is the nested
     sampler's level (num_levels - 1 - i), so one hash evaluation per
     update decides every level. *)
  sampler : Sampler.Nested.t;
  hhs : F2_heavy_hitter.t array;
}

type hit = { id : int; freq : float; level : int }

let create ?(depth = 5) ?(oversample = 2.0) ~gamma ~r ~indep ~seed () =
  if gamma <= 0.0 then invalid_arg "F2_contributing.create: gamma must be positive";
  if r < 1 then invalid_arg "F2_contributing.create: r must be >= 1";
  let num_levels = Mkc_hashing.Hash_family.ceil_log2 r + 1 in
  (* Lemma 2.9: once only ~polylog coordinates of a γ-contributing class
     survive the subsampling, each survivor is an Ω̃(γ)-heavy hitter of
     the substream.  The practical profile folds the polylog divisor
     into φ = γ/2. *)
  let phi = min 1.0 (gamma /. 2.0) in
  let base_rate = oversample /. float_of_int (1 lsl (num_levels - 1)) in
  {
    num_levels;
    sampler =
      Sampler.Nested.create ~base_rate ~levels:num_levels ~indep
        ~seed:(Mkc_hashing.Splitmix.fork seed 0);
    hhs =
      Array.init num_levels (fun i ->
          F2_heavy_hitter.create ~depth ~phi ~seed:(Mkc_hashing.Splitmix.fork seed (i + 1)) ());
  }

(* nested level j ↔ F2C level (num_levels - 1 - j); an item surviving
   at nested levels >= code survives at F2C levels
   <= num_levels - 1 - code.  [decide] exposes the sampling decision
   (the keep-level code, -1 = dropped everywhere) so chunk-deduplicated
   callers can evaluate it once per distinct coordinate and replay it
   across that coordinate's updates. *)
let decide t i = Sampler.Nested.min_keep_level_code t.sampler i

let decide_batch t ids ~pos ~len out =
  Sampler.Nested.min_keep_level_batch t.sampler ids ~pos ~len out

let add_tracked_decided t ~code i delta =
  if code >= 0 then
    for lvl = 0 to t.num_levels - 1 - code do
      F2_heavy_hitter.add_tracked (Array.unsafe_get t.hhs lvl) i delta
    done

let add_cs_decided t ~code i delta =
  if code >= 0 then
    for lvl = 0 to t.num_levels - 1 - code do
      F2_heavy_hitter.add_cs (Array.unsafe_get t.hhs lvl) i delta
    done

let add_decided t ~code i delta =
  if code >= 0 then
    for lvl = 0 to t.num_levels - 1 - code do
      F2_heavy_hitter.add (Array.unsafe_get t.hhs lvl) i delta
    done

let add t i delta = add_decided t ~code:(decide t i) i delta

let add_batch t ids ~pos ~len ~delta =
  (* Batched path: sampler and level array hoisted; each item still
     decides all its levels with one hash evaluation. *)
  for i = pos to pos + len - 1 do
    let x = Array.unsafe_get ids i in
    add_decided t ~code:(decide t x) x delta
  done

let dedup hits =
  let best = Hashtbl.create 16 in
  List.iter
    (fun (h : hit) ->
      match Hashtbl.find_opt best h.id with
      | Some (prev : hit) when prev.freq >= h.freq -> ()
      | _ -> Hashtbl.replace best h.id h)
    hits;
  Hashtbl.fold (fun _ h acc -> h :: acc) best []
  |> List.sort (fun a b ->
         if a.freq <> b.freq then compare b.freq a.freq else compare a.id b.id)

let collect t extract =
  Array.to_list t.hhs
  |> List.mapi (fun i hh ->
         extract hh
         |> List.map (fun (h : F2_heavy_hitter.hit) -> { id = h.id; freq = h.freq; level = i }))
  |> List.concat |> dedup

let hits t = collect t F2_heavy_hitter.hits
let candidates t = collect t F2_heavy_hitter.candidates
let levels t = Array.length t.hhs

let level t i =
  if i < 0 || i >= t.num_levels then invalid_arg "F2_contributing.level: out of range";
  t.hhs.(i)
let tracked t = Array.fold_left (fun acc hh -> acc + F2_heavy_hitter.tracked hh) 0 t.hhs
let prunes t = Array.fold_left (fun acc hh -> acc + F2_heavy_hitter.prunes hh) 0 t.hhs

let words t =
  Sampler.Nested.words t.sampler
  + Array.fold_left (fun acc hh -> acc + F2_heavy_hitter.words hh) 0 t.hhs

let dump t = Array.map F2_heavy_hitter.dump t.hhs

let load_state t levels =
  if Array.length levels <> t.num_levels then Error "f2c: level count mismatch"
  else begin
    let rec go i =
      if i >= t.num_levels then Ok ()
      else
        let rows, counts, prunes = levels.(i) in
        match F2_heavy_hitter.load_state t.hhs.(i) ~rows ~counts ~prunes with
        | Error e -> Error (Printf.sprintf "f2c level %d: %s" i e)
        | Ok () -> go (i + 1)
    in
    go 0
  end

(* Per-level merge: the subsampling decision is a pure hash of the
   coordinate (same seed on both sides), so the surviving substreams
   partition exactly like the input and levels merge independently. *)
let merge_into ~dst src =
  if dst.num_levels <> src.num_levels then
    invalid_arg "F2_contributing.merge_into: level count mismatch";
  Array.iteri (fun i hh -> F2_heavy_hitter.merge_into ~dst:dst.hhs.(i) hh) src.hhs
