(** SmallSet (Figure 5): the element-sampling subroutine of the
    (α, δ, η)-oracle, covering case III — optimal solutions whose
    coverage is mostly carried by many small sets
    ([|C(OPT_large)| < |C(OPT)|/2], only possible when [sα < 2k]).

    Rationale (Section 4.3): subsampling sets at rate Θ̃(1/α) preserves
    a ([Θ̃(k/α)])-cover with an Ω̃(1/α) fraction of OPT's coverage
    (Lemma 4.16 / Corollary 4.19); element sampling at a rate tuned by
    the coverage-scale guess [γ_g] then preserves constant-factor
    approximability (Lemma 2.5) while the stored sub-instance [(L, M)]
    fits in Õ(m/α²) words (Lemmas 4.20–4.21).  The sub-instance is
    solved offline at the end of the pass with the greedy algorithm
    (the "O(1)-approximation" of the pseudocode) and the sampled
    coverage is scaled back by the reciprocal sampling rate.

    A guess is accepted only if greedy's sampled coverage is Ω̃(k/α)
    (Figure 5's final filter) — this is what keeps the oracle from
    overestimating (Lemma 4.23).

    The witness is greedy's chosen set ids: at most [⌈c·k/α⌉ ≤ k]
    original set ids, directly available. *)

type t

val create : Params.t -> seed:Mkc_hashing.Splitmix.t -> t
val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed}. *)

val feed_planned :
  t ->
  Mkc_stream.Chunk_plan.t ->
  red:int array ->
  Mkc_stream.Edge.t array ->
  pos:int ->
  len:int ->
  unit
(** Chunk-deduplicated ingestion: nested element-sampling decisions once
    per distinct element, set-sample membership once per distinct set,
    then an in-order replay of the chunk — stored-pair sequences (hence
    cap/termination points) are bit-for-bit the per-edge ones.
    [red.(j)] must hold the (reduced) element value of the plan's j-th
    distinct element. *)

val finalize : t -> Solution.outcome option
val words : t -> int

val words_breakdown : t -> (string * int) list
(** [("samplers", _); ("store", _)] — hash seeds vs the live stored
    sub-instances. *)

val stats : t -> (string * int) list
(** Work counters: ["elem_sampler_evals"] (nested element-sampler hash
    evaluations — per edge in per-edge mode, per distinct element per
    chunk in planned mode), ["set_sampler_evals"] (set-sample membership
    evaluations), ["pairs_stored"] (total (set, element) pairs ever
    stored — monotone, unlike {!stored_pairs}; identical across modes)
    and ["dead_instances"] (sub-instances that overflowed the Lemma 4.21
    cap and were terminated). *)

val stored_pairs : t -> int
(** Total (set, element) pairs currently stored across all live
    sub-instances — the quantity bounded by Lemma 4.21 (diagnostics for
    the fig5 bench). *)

val budget : t -> int
(** The cover budget [⌈36k/(sα)⌉-style] used on sub-instances. *)

val cap : t -> int
(** The per-instance stored-pair cap (Lemma 4.21's Õ(m/α²) instantiated
    with the profile's polylog). *)

val encode : t -> Mkc_obs.Json.t
(** Mutable state per sub-instance (stored member lists verbatim,
    latest-first; pair counts; death flags) plus work counters; the
    samplers are re-created from params + seed. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) result
(** Overlay an {!encode} payload onto a freshly {!create}d instance of
    the same params and seed. *)

val merge_into : dst:t -> t -> unit
(** Fold a shard in, instance by instance: member lists concatenate
    (the shard fed the later stream suffix first), pair counts sum, and
    a summed count over the cap kills the instance exactly as the
    single-stream run would. *)
