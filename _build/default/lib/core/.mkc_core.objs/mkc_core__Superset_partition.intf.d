lib/core/superset_partition.mli: Mkc_hashing
