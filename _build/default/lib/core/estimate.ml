type inst = { z : int; reduction : Universe_reduction.t; oracle : Oracle.t }

type body =
  | Trivial of { estimate : float; witness : unit -> int list }
  | Run of { insts : inst array }

type t = { params : Params.t; body : body }

type result = { estimate : float; outcome : Solution.outcome option; z_guess : int }

let guess_ladder (p : Params.t) =
  let top = Mkc_hashing.Hash_family.ceil_log2 p.n in
  let bottom = min top 2 in
  let rec go z acc = if z > top then List.rev acc else go (z + p.z_stride) ((1 lsl z) :: acc) in
  let ladder = go bottom [] in
  (* Always include the top guess so OPT ≈ n is never missed. *)
  if List.mem (1 lsl top) ladder then ladder else ladder @ [ 1 lsl top ]

let trivial_witness (p : Params.t) () =
  (* k distinct pseudo-random set ids; by set sampling, a random
     k-subset carries a ≥ k/m ≥ 1/α coverage fraction in expectation. *)
  let rng = Mkc_hashing.Splitmix.create (p.base_seed lxor 0x7777) in
  let seen = Hashtbl.create p.k in
  while Hashtbl.length seen < p.k do
    Hashtbl.replace seen (Mkc_hashing.Splitmix.below rng p.m) ()
  done;
  Hashtbl.fold (fun id () acc -> id :: acc) seen []

let create (p : Params.t) =
  let body =
    if float_of_int p.k *. p.alpha >= float_of_int p.m then
      Trivial
        { estimate = float_of_int p.n /. p.alpha; witness = trivial_witness p }
    else begin
      let root = Mkc_hashing.Splitmix.create p.base_seed in
      let insts =
        guess_ladder p
        |> List.concat_map (fun z ->
               List.init p.z_repeats (fun rep ->
                   let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
                   {
                     z;
                     reduction =
                       Universe_reduction.create ~z ~seed:(Mkc_hashing.Splitmix.fork sd 0);
                     oracle =
                       Oracle.create (Params.with_universe p z)
                         ~seed:(Mkc_hashing.Splitmix.fork sd 1);
                   }))
        |> Array.of_list
      in
      Run { insts }
    end
  in
  { params = p; body }

let feed t e =
  match t.body with
  | Trivial _ -> ()
  | Run { insts } ->
      Array.iter
        (fun inst -> Oracle.feed inst.oracle (Universe_reduction.apply_edge inst.reduction e))
        insts

let finalize t =
  match t.body with
  | Trivial { estimate; witness } ->
      {
        estimate;
        outcome = Some { Solution.estimate; witness; provenance = Solution.Trivial };
        z_guess = 0;
      }
  | Run { insts } ->
      let p = t.params in
      let accepted = ref None and fallback = ref None in
      let consider slot (cand : result) =
        match !slot with
        | Some (best : result) when best.estimate >= cand.estimate -> ()
        | _ -> slot := Some cand
      in
      Array.iter
        (fun inst ->
          match Oracle.finalize inst.oracle with
          | None -> ()
          | Some o ->
              let cand = { estimate = o.Solution.estimate; outcome = Some o; z_guess = inst.z } in
              let threshold = float_of_int inst.z /. (p.accept_factor *. p.alpha) in
              if o.Solution.estimate >= threshold then consider accepted cand
              else consider fallback cand)
        insts;
      (match (!accepted, !fallback) with
      | Some r, _ -> r
      | None, Some r -> r
      | None, None -> { estimate = 0.0; outcome = None; z_guess = 0 })

let guesses t = guess_ladder t.params

let words t =
  match t.body with
  | Trivial _ -> t.params.k
  | Run { insts } ->
      Array.fold_left
        (fun acc inst -> acc + Universe_reduction.words inst.reduction + Oracle.words inst.oracle)
        0 insts

let words_breakdown t =
  match t.body with
  | Trivial _ -> [ ("trivial-witness", t.params.k) ]
  | Run { insts } ->
      let acc = Hashtbl.create 8 in
      let bump key w =
        Hashtbl.replace acc key (w + Option.value ~default:0 (Hashtbl.find_opt acc key))
      in
      Array.iter
        (fun inst ->
          bump "universe-reduction" (Universe_reduction.words inst.reduction);
          List.iter (fun (k, w) -> bump k w) (Oracle.words_breakdown inst.oracle))
        insts;
      Hashtbl.fold (fun k w l -> (k, w) :: l) acc [] |> List.sort compare
