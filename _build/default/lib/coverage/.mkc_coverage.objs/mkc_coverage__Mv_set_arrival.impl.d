lib/coverage/mv_set_arrival.ml: Array Float Hashtbl List Mkc_hashing Mkc_sketch
