(* Hot-path profiler: per-subroutine cost breakdown of the oracle
   ingestion pipeline on the BENCH_pipeline workload.  Times each
   component in isolation (same params, same instance mix as
   Estimate.create) and reports seconds plus minor-heap allocation per
   edge, so hashing vs update vs GC costs are attributable. *)

module P = Mkc_core.Params

let pr fmt = Format.printf fmt

let time_alloc name ~edges f =
  let a0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  let alloc = Gc.minor_words () -. a0 in
  pr "  %-28s %7.3fs  %8.1f ns/edge  %6.1f words/edge@." name dt
    (dt *. 1e9 /. float_of_int edges)
    (alloc /. float_of_int edges);
  dt

let run () =
  pr "=== hot-path profile ===@.";
  let n = 65536 and m = 4096 and k = 32 and alpha = 8.0 and seed = 11 in
  let sys = Mkc_workload.Random_inst.uniform ~n ~m ~set_size:256 ~seed in
  let src = Mkc_stream.Stream_source.of_system ~seed:(seed + 1) sys in
  let all = Mkc_stream.Stream_source.to_array src in
  let nedges = min 131072 (Array.length all) in
  let edges = Array.sub all 0 nedges in
  let params = P.make ~m ~n ~k ~alpha ~seed () in
  pr "%d edges, indep=%d@." nedges params.P.indep;
  let root = Mkc_hashing.Splitmix.create params.P.base_seed in
  let zs =
    Mkc_core.Estimate.guesses (Mkc_core.Estimate.create params)
    |> List.concat_map (fun z -> [ (z, 0); (z, 1) ])
  in
  pr "%d instances@." (List.length zs);
  (* universe reduction *)
  let reductions =
    List.map
      (fun (z, rep) ->
        let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
        Mkc_core.Universe_reduction.create ~z ~seed:(Mkc_hashing.Splitmix.fork sd 0))
      zs
  in
  let scratch = Array.make nedges (Mkc_stream.Edge.make ~set:0 ~elt:0) in
  let _ =
    time_alloc "reduction (16 inst)" ~edges:nedges (fun () ->
        List.iter
          (fun r ->
            for i = 0 to nedges - 1 do
              scratch.(i) <- Mkc_core.Universe_reduction.apply_edge r edges.(i)
            done)
          reductions)
  in
  (* per-subroutine, with per-instance reduced streams *)
  let comps =
    List.map
      (fun ((z, rep), red) ->
        let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
        let osd = Mkc_hashing.Splitmix.fork sd 1 in
        let p = P.with_universe params z in
        let sa = P.s_alpha p in
        let heavy = sa >= 2.0 *. float_of_int p.P.k in
        let w =
          if heavy then p.P.k
          else max 1 (min p.P.k (int_of_float (Float.round p.P.alpha)))
        in
        let reduced =
          Array.map (fun e -> Mkc_core.Universe_reduction.apply_edge red e) edges
        in
        ( Mkc_core.Large_common.create p ~seed:(Mkc_hashing.Splitmix.fork osd 1),
          Mkc_core.Large_set.create p ~w ~seed:(Mkc_hashing.Splitmix.fork osd 2),
          Mkc_core.Small_set.create p ~seed:(Mkc_hashing.Splitmix.fork osd 3),
          reduced ))
      (List.combine zs reductions)
  in
  let _ =
    time_alloc "large_common (16 inst)" ~edges:nedges (fun () ->
        List.iter
          (fun (lc, _, _, reduced) ->
            Mkc_core.Large_common.feed_batch lc reduced ~pos:0 ~len:nedges)
          comps)
  in
  let _ =
    time_alloc "large_set (16 inst)" ~edges:nedges (fun () ->
        List.iter
          (fun (_, ls, _, reduced) ->
            Mkc_core.Large_set.feed_batch ls reduced ~pos:0 ~len:nedges)
          comps)
  in
  let _ =
    time_alloc "small_set (16 inst)" ~edges:nedges (fun () ->
        List.iter
          (fun (_, _, ss, reduced) ->
            Mkc_core.Small_set.feed_batch ss reduced ~pos:0 ~len:nedges)
          comps)
  in
  (* micro: primitive throughputs over 1e6 ops *)
  let ops = 1_000_000 in
  let xs = Array.init ops (fun i -> (i * 2654435761) land 0xFFFFFF) in
  let ph = Mkc_hashing.Poly_hash.create ~indep:8 ~range:1024 ~seed:(Mkc_hashing.Splitmix.create 1) in
  let acc = ref 0 in
  let _ =
    time_alloc "poly_hash d=8 (1e6)" ~edges:ops (fun () ->
        for i = 0 to ops - 1 do
          acc := !acc + Mkc_hashing.Poly_hash.hash ph xs.(i)
        done)
  in
  let tab = Mkc_hashing.Tabulation.create ~seed:(Mkc_hashing.Splitmix.create 2) in
  let _ =
    time_alloc "tabulation hash64 (1e6)" ~edges:ops (fun () ->
        for i = 0 to ops - 1 do
          acc := !acc + Int64.to_int (Mkc_hashing.Tabulation.hash64 tab xs.(i))
        done)
  in
  let l0 = Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.create 3) () in
  let _ =
    time_alloc "l0 add (1e6)" ~edges:ops (fun () ->
        for i = 0 to ops - 1 do
          Mkc_sketch.L0_bjkst.add l0 xs.(i)
        done)
  in
  let cs = Mkc_sketch.Count_sketch.create ~width:64 ~seed:(Mkc_hashing.Splitmix.create 4) () in
  let _ =
    time_alloc "count_sketch add (1e6)" ~edges:ops (fun () ->
        for i = 0 to ops - 1 do
          Mkc_sketch.Count_sketch.add cs xs.(i) 1
        done)
  in
  ignore !acc;
  pr "@."
