(* Per-chunk distinct-id grouping: the shared first pass of the
   chunk-deduplicated hash engine.

   [build] scans a chunk once and produces, in reusable scratch (no
   per-chunk allocation once the buffers have grown to a steady state):

   - the distinct set ids of the chunk, in first-appearance order, with
     per-set edge counts;
   - the distinct raw element values of the chunk, in first-appearance
     order;
   - for every edge of the chunk, the index of its set (resp. element)
     in those distinct tables.

   Downstream consumers evaluate each per-set or per-element hash
   decision once per distinct id and then replay the chunk edge by edge
   through O(1) array lookups, so the final sketch states are exactly
   the per-edge ones — only the evaluation schedule changes.

   Id -> slot mapping uses hash tables (cleared, not reallocated,
   between chunks) so arbitrary non-negative ids are safe; the cost is
   two table probes per edge, paid once per chunk and shared by every
   oracle instance that consumes the plan. *)

type t = {
  mutable len : int;
  (* per-edge, chunk-relative: index into the distinct tables *)
  mutable set_idx : int array;
  mutable elt_idx : int array;
  (* distinct sets, first-appearance order *)
  mutable nsets : int;
  mutable sets : int array;
  mutable set_count : int array;
  (* distinct raw element values, first-appearance order *)
  mutable nelts : int;
  mutable elts : int array;
  sslot : (int, int) Hashtbl.t;
  eslot : (int, int) Hashtbl.t;
}

let create () =
  {
    len = 0;
    set_idx = [||];
    elt_idx = [||];
    nsets = 0;
    sets = [||];
    set_count = [||];
    nelts = 0;
    elts = [||];
    sslot = Hashtbl.create 1024;
    eslot = Hashtbl.create 4096;
  }

let ensure a n = if Array.length a >= n then a else Array.make (max n (2 * Array.length a)) 0

let build t edges ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Array.length edges then
    invalid_arg "Chunk_plan.build: bad slice";
  t.len <- len;
  t.set_idx <- ensure t.set_idx len;
  t.elt_idx <- ensure t.elt_idx len;
  t.sets <- ensure t.sets len;
  t.set_count <- ensure t.set_count len;
  t.elts <- ensure t.elts len;
  t.nsets <- 0;
  t.nelts <- 0;
  Hashtbl.clear t.sslot;
  Hashtbl.clear t.eslot;
  for i = 0 to len - 1 do
    let (e : Edge.t) = Array.unsafe_get edges (pos + i) in
    let sj =
      match Hashtbl.find_opt t.sslot e.set with
      | Some j ->
          t.set_count.(j) <- t.set_count.(j) + 1;
          j
      | None ->
          let j = t.nsets in
          Hashtbl.replace t.sslot e.set j;
          t.sets.(j) <- e.set;
          t.set_count.(j) <- 1;
          t.nsets <- j + 1;
          j
    in
    let ej =
      match Hashtbl.find_opt t.eslot e.elt with
      | Some j -> j
      | None ->
          let j = t.nelts in
          Hashtbl.replace t.eslot e.elt j;
          t.elts.(j) <- e.elt;
          t.nelts <- j + 1;
          j
    in
    t.set_idx.(i) <- sj;
    t.elt_idx.(i) <- ej
  done

let len t = t.len
let num_sets t = t.nsets
let num_elts t = t.nelts

(* Direct array access for hot loops; the first [num_sets] (resp.
   [num_elts], [len]) entries are valid for the current chunk. *)
let sets t = t.sets
let set_counts t = t.set_count
let elts t = t.elts
let set_index t = t.set_idx
let elt_index t = t.elt_idx

let words t =
  Array.length t.set_idx + Array.length t.elt_idx + Array.length t.sets
  + Array.length t.set_count + Array.length t.elts
  + (2 * Hashtbl.length t.sslot)
  + (2 * Hashtbl.length t.eslot)
