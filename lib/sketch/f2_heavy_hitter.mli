(** F2-HeavyHitter (Theorem 2.10): single-pass algorithm that, with high
    probability, returns every coordinate [i] with [a(i)² ≥ φ·F2(a)]
    together with a (1 ± 1/2)-approximation of [a(i)], in Õ(1/φ)
    space.

    Implementation: a {!Count_sketch} of width Θ(1/φ) for frequency
    estimates and the in-sketch F2 estimate, plus a {!Top_k} candidate
    tracker of capacity Θ(1/φ) (any φ-heavy item occupies a constant
    fraction of the stream's L2 mass, so rescoring on each arrival keeps
    it in the tracker w.h.p.). *)

type t

type hit = { id : int; freq : float }
(** A reported coordinate with its approximate frequency. *)

val create :
  ?depth:int ->
  ?width_factor:int ->
  ?clamp:bool ->
  phi:float ->
  seed:Mkc_hashing.Splitmix.t ->
  unit ->
  t
(** [create ~phi ~seed ()] targets φ-heavy hitters of F2.  CountSketch
    width is [width_factor / phi] (default factor 8, so per-row error ≤
    (1/√8)·√(φ F2) and the (1 ± 1/2) value guarantee holds w.h.p.).

    [clamp] (default true) caps each candidate's reported frequency by
    its exact since-insertion counter — sound for insertion-only
    streams and the fix for collision-inflated light candidates; set it
    to false to reproduce the unclamped textbook estimator (the E10
    ablation does). *)

val add : t -> int -> int -> unit
(** [add t i delta]. The heavy-hitter applications in this paper are
    insertion-only ([delta ≥ 1]).  Equivalent to [add_cs] followed by
    [add_tracked]. *)

val add_cs : t -> int -> int -> unit
(** The CountSketch half of an update alone.  Linear and commutative:
    updates to the same id may be aggregated ([add_cs t i (c·d)] ≡ c
    calls of [add_cs t i d]) and reordered across ids. *)

val add_tracked : t -> int -> int -> unit
(** The candidate-tracking half of an update alone (exact counters +
    SpaceSaving-style prune).  Order-sensitive: the prune keeps the
    current top candidates, so callers splitting updates must replay
    this half in original stream order. *)

val add_batch : t -> int array -> pos:int -> len:int -> delta:int -> unit
(** [add_batch t ids ~pos ~len ~delta] ≡ per-item [add] over the chunk;
    the CountSketch rows are updated row-outer. *)

val hits : t -> hit list
(** Candidates whose estimated frequency passes the φ·F̂2 test,
    sorted by decreasing frequency. *)

val candidates : t -> hit list
(** All tracked candidates with fresh estimates, no φ filter (used by
    callers that apply their own absolute thresholds, e.g. Figure 4's
    [thr1]/[thr2] tests). Sorted by decreasing frequency. *)

val f2_estimate : t -> float
val phi : t -> float

val tracked : t -> int
(** Candidates currently held by the exact-counter tracker. *)

val cap : t -> int
(** Tracker capacity: a prune fires only when more than [2 * cap]
    candidates are held, so a caller that can bound the distinct
    coordinates ever inserted by [2 * cap] knows pruning never
    triggers — and may then aggregate or reorder tracked updates
    freely (the final table is a pure per-coordinate sum). *)

val mem : t -> int -> bool
(** Whether a coordinate is currently tracked (one probe, no
    allocation). *)

val prunes : t -> int
(** SpaceSaving-style prune passes so far (including the final
    trim {!candidates} performs) — a health gauge for the candidate
    table's capacity. *)

val words : t -> int

val dump : t -> int array array * (int * int) list * int
(** [(cs_rows, tracked_counts, prunes)] — canonical state: the
    CountSketch counter matrix plus the tracked [(id, count)] pairs
    sorted by id.  Layout-free: equal dumps ⇔ behaviourally identical
    sketches (same seed). *)

val load_state :
  t ->
  rows:int array array ->
  counts:(int * int) list ->
  prunes:int ->
  (unit, string) result
(** Overlay a dumped state onto a freshly created sketch (same phi,
    width and seed).  Rejects shape mismatches, overfull trackers and
    duplicate ids by name. *)

val merge_into : dst:t -> t -> unit
(** Fold [src] into [dst] (same shape and seed): CountSketch counters
    add pointwise (linear), tracked counters sum per id in canonical id
    order, pruning as capacity demands; prune counters add.  Exact
    (bit-for-bit the single-stream state) whenever no prune has fired
    on either side.  @raise Invalid_argument on cap mismatch. *)
