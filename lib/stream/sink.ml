module type S = sig
  type t
  type result

  val feed : t -> Edge.t -> unit
  val feed_batch : t -> Edge.t array -> pos:int -> len:int -> unit
  val feed_planned : t -> Chunk_plan.t -> Edge.t array -> pos:int -> len:int -> unit
  val finalize : t -> result
  val words : t -> int
  val words_breakdown : t -> (string * int) list
end

type ('s, 'r) sink = (module S with type t = 's and type result = 'r)
type any = Any : ('s, 'r) sink * 's -> any

let pack m s = Any (m, s)

module Any = struct
  let feed (Any ((module M), s)) e = M.feed s e
  let feed_batch (Any ((module M), s)) edges ~pos ~len = M.feed_batch s edges ~pos ~len

  let feed_planned (Any ((module M), s)) plan edges ~pos ~len =
    M.feed_planned s plan edges ~pos ~len

  let words (Any ((module M), s)) = M.words s
  let words_breakdown (Any ((module M), s)) = M.words_breakdown s
end

let batch_by_feed feed s edges ~pos ~len =
  for i = pos to pos + len - 1 do
    feed s edges.(i)
  done

let batch_ignoring_plan feed_batch s _plan edges ~pos ~len = feed_batch s edges ~pos ~len

(* Canonical form of a words_breakdown: duplicate keys merged by sum,
   sorted by key.  Component keys are dot-namespaced by convention
   ("oracle.large_common.l0"), so a sorted list reads as a tree. *)
let canonical_breakdown kvs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    kvs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let prefix_breakdown prefix kvs = List.map (fun (k, v) -> (prefix ^ "." ^ k, v)) kvs

module Observed = struct
  (* Per-call feed latency distribution across every observed sink —
     the histogram counterpart of the scalar [busy_ns] sums below. *)
  module Obs = struct
    let feed_ns =
      Mkc_obs.Registry.histogram Mkc_obs.Registry.global "sink.observed.feed_ns"
  end

  type ('s, 'r) st = {
    inner : ('s, 'r) sink;
    state : 's;
    profile : Mkc_obs.Space_profile.t;
    budget : Mkc_sketch.Space.Budget.t option;
    mutable edges : int;
    mutable next_at : int;
    (* Words held by the most recent serialized checkpoint of the inner
       sink (0 until one is taken).  Checkpointing is real space the
       process pays for, so it joins the breakdown under its own key
       and the budget watchdog sees it. *)
    mutable ckpt_words : int;
    (* Sample fan-out: the telemetry recorder (and anything else that
       wants the cadence heartbeat) hooks in here.  Called after the
       profile point is recorded but before the budget watchdog, so a
       strict-mode abort still leaves the final sample in the log. *)
    mutable on_sample : (edges:int -> words:int -> unit) option;
    (* The breakdown the most recent [sample] recorded — so the
       telemetry probes riding [on_sample] can read the walk the sample
       already paid for instead of re-walking (and re-flushing) every
       sketch.  Empty until the first sample. *)
    mutable last_bd : (string * int) list;
    (* Cumulative ns spent inside the inner sink's batch feeds, over the
       wrapper's whole lifetime — never reset per window, so scheduler
       and [mkc top] signals reading it see a monotone series, not a
       sawtooth.  Timed around [feed_batch]/[feed_planned] only; the
       per-edge [feed] path stays clock-free. *)
    mutable busy_ns : int;
  }

  let default_cadence = 65536

  let total_words (type s r) (t : (s, r) st) =
    let (module M) = t.inner in
    M.words t.state + t.ckpt_words

  let sample (type s r) (t : (s, r) st) =
    let (module M) = t.inner in
    (* One walk serves both numbers: every sink's [words] is the sum of
       its [words_breakdown] (the S contract — words split by
       component), so the total falls out of the component walk. *)
    let breakdown =
      let inner = M.words_breakdown t.state in
      canonical_breakdown
        (if t.ckpt_words > 0 then ("checkpoint", t.ckpt_words) :: inner else inner)
    in
    let words = List.fold_left (fun acc (_, w) -> acc + w) 0 breakdown in
    t.last_bd <- breakdown;
    Mkc_obs.Space_profile.record t.profile ~at_edges:t.edges ~words ~breakdown;
    if Mkc_obs.Trace.enabled () then
      Mkc_obs.Trace.counter "space.words" ~at_ns:(Mkc_obs.Clock.now_ns ()) words;
    (match t.on_sample with None -> () | Some f -> f ~edges:t.edges ~words);
    (* Watchdog last: in strict mode [observe] raises on overshoot, and
       the profile point (and telemetry sample) above should survive to
       tell the story. *)
    match t.budget with None -> () | Some b -> Mkc_sketch.Space.Budget.observe b words

  let wrap ?(cadence = default_cadence) ?budget inner state =
    if cadence < 1 then invalid_arg "Sink.Observed.wrap: cadence must be >= 1";
    {
      inner;
      state;
      profile = Mkc_obs.Space_profile.create ~cadence;
      budget;
      edges = 0;
      next_at = cadence;
      ckpt_words = 0;
      on_sample = None;
      last_bd = [];
      busy_ns = 0;
    }

  let profile t = t.profile
  let state t = t.state
  let busy_ns t = t.busy_ns
  let set_on_sample t f = t.on_sample <- Some f

  let note_checkpoint t ~words =
    if words < 0 then invalid_arg "Sink.Observed.note_checkpoint: negative words";
    t.ckpt_words <- words

  (* At most one sample per feed call; [next_at] realigns to the cadence
     grid so oversized batches don't trigger a burst of samples. *)
  let bump t n =
    t.edges <- t.edges + n;
    if t.edges >= t.next_at then begin
      sample t;
      let c = Mkc_obs.Space_profile.cadence t.profile in
      t.next_at <- ((t.edges / c) + 1) * c
    end

  let feed (type s r) (t : (s, r) st) e =
    let (module M) = t.inner in
    M.feed t.state e;
    bump t 1

  let feed_batch (type s r) (t : (s, r) st) edges ~pos ~len =
    let (module M) = t.inner in
    let t0 = Mkc_obs.Clock.now_ns () in
    M.feed_batch t.state edges ~pos ~len;
    let d = Mkc_obs.Clock.now_ns () - t0 in
    t.busy_ns <- t.busy_ns + d;
    Mkc_obs.Registry.record Obs.feed_ns d;
    bump t len

  let feed_planned (type s r) (t : (s, r) st) plan edges ~pos ~len =
    let (module M) = t.inner in
    let t0 = Mkc_obs.Clock.now_ns () in
    M.feed_planned t.state plan edges ~pos ~len;
    let d = Mkc_obs.Clock.now_ns () - t0 in
    t.busy_ns <- t.busy_ns + d;
    Mkc_obs.Registry.record Obs.feed_ns d;
    bump t len

  let finalize (type s r) (t : (s, r) st) =
    let (module M) = t.inner in
    let r = M.finalize t.state in
    sample t;
    r

  let words (type s r) (t : (s, r) st) = total_words t

  let words_breakdown (type s r) (t : (s, r) st) =
    let (module M) = t.inner in
    let inner = M.words_breakdown t.state in
    canonical_breakdown
      (if t.ckpt_words > 0 then ("checkpoint", t.ckpt_words) :: inner else inner)

  let sampled_breakdown (type s r) (t : (s, r) st) =
    match t.last_bd with [] -> words_breakdown t | bd -> bd

  let sink (type s r) () : ((s, r) st, r) sink =
    (module struct
      type nonrec t = (s, r) st
      type result = r

      let feed = feed
      let feed_batch = feed_batch
      let feed_planned = feed_planned
      let finalize = finalize
      let words = words
      let words_breakdown = words_breakdown
    end)

  let observe (type s r) ?cadence ?budget (m : (s, r) sink) (state : s) :
      ((s, r) st, r) sink * (s, r) st =
    let t = wrap ?cadence ?budget m state in
    (sink (), t)

  type observed_any = {
    osink : any;
    oprofile : Mkc_obs.Space_profile.t;
    osample : unit -> unit;
    obusy_ns : unit -> int;
  }

  let observe_any ?cadence ?budget packed =
    match packed with
    | Any (m, s) ->
        let sm, t = observe ?cadence ?budget m s in
        {
          osink = Any (sm, t);
          oprofile = t.profile;
          osample = (fun () -> sample t);
          obusy_ns = (fun () -> t.busy_ns);
        }
end

(* A transparent progress tap: forwards everything to the inner sink
   and calls [notify ~edges] once per feed call with the cumulative
   edge count.  The callback decides what (if anything) to do — the
   CLI's [--progress] uses wall-clock throttling in the callback, so
   the tap itself stays policy-free and allocation-free. *)
module Tap = struct
  type ('s, 'r) st = {
    inner : ('s, 'r) sink;
    state : 's;
    notify : edges:int -> unit;
    mutable edges : int;
  }

  let wrap inner state ~notify = { inner; state; notify; edges = 0 }
  let state t = t.state

  let bump t n =
    t.edges <- t.edges + n;
    t.notify ~edges:t.edges

  let sink (type s r) () : ((s, r) st, r) sink =
    (module struct
      type nonrec t = (s, r) st
      type result = r

      let feed (type s r) (t : (s, r) st) e =
        let (module M) = t.inner in
        M.feed t.state e;
        bump t 1

      let feed_batch (type s r) (t : (s, r) st) edges ~pos ~len =
        let (module M) = t.inner in
        M.feed_batch t.state edges ~pos ~len;
        bump t len

      let feed_planned (type s r) (t : (s, r) st) plan edges ~pos ~len =
        let (module M) = t.inner in
        M.feed_planned t.state plan edges ~pos ~len;
        bump t len

      let finalize (type s r) (t : (s, r) st) =
        let (module M) = t.inner in
        M.finalize t.state

      let words (type s r) (t : (s, r) st) =
        let (module M) = t.inner in
        M.words t.state

      let words_breakdown (type s r) (t : (s, r) st) =
        let (module M) = t.inner in
        M.words_breakdown t.state
    end)

  let tap (type s r) (m : (s, r) sink) (state : s) ~notify : ((s, r) st, r) sink * (s, r) st
      =
    (sink (), wrap m state ~notify)
end

module Set_arrival = struct
  type 'r t = {
    feed_set : int -> int array -> unit;
    fin : unit -> 'r;
    words_of : unit -> int;
    mutable cur : int; (* current set id; -1 = no open set *)
    mutable buf : int array;
    mutable len : int;
  }

  let create ~feed_set ~finalize ~words =
    { feed_set; fin = finalize; words_of = words; cur = -1; buf = Array.make 16 0; len = 0 }

  let flush t =
    if t.cur >= 0 then t.feed_set t.cur (Array.sub t.buf 0 t.len);
    t.cur <- -1;
    t.len <- 0

  let push t elt =
    if t.len = Array.length t.buf then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    t.buf.(t.len) <- elt;
    t.len <- t.len + 1

  let feed t (e : Edge.t) =
    if e.set <> t.cur then begin
      flush t;
      t.cur <- e.set
    end;
    push t e.elt

  let feed_batch t edges ~pos ~len = batch_by_feed feed t edges ~pos ~len
  let finalize t =
    flush t;
    t.fin ()

  let words t = t.words_of ()

  let sink (type r) () : (r t, r) sink =
    (module struct
      type nonrec t = r t
      type result = r

      let feed = feed
      let feed_batch = feed_batch
      let feed_planned = batch_ignoring_plan feed_batch
      let finalize = finalize
      let words = words
      let words_breakdown t = [ ("set_arrival", words t) ]
    end)
end
