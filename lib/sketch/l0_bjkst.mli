(** BJKST distinct-element sketch (Bar-Yossef–Jayram–Kumar–Sivakumar–
    Trevisan [11], algorithm 2).

    Maintains a level [z] and a buffer of fingerprints of elements whose
    hash has at least [z] trailing zero bits; when the buffer overflows
    the level is raised and the buffer pruned.  The estimate is
    [|buffer| · 2^z].  With buffer capacity Θ(1/ε²) this gives the
    (1 ± ε)-approximation of Theorem 2.12 in Õ(1) space.

    This is the default L0 estimator used by [LargeCommon] (Figure 3)
    and the L0 fallback of [LargeSetComplete] (Figure 6). *)

type t

val create : ?cap:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t
(** Default [cap] = 96 (ε ≈ 1/4 in practice; Theorem 2.12 only needs
    ε = 1/2). *)

val add : t -> int -> unit

val add_batch : t -> int array -> pos:int -> len:int -> unit
(** [add_batch t xs ~pos ~len] ≡ [add] over [xs.(pos .. pos+len-1)],
    with the per-call dispatch hoisted out of the loop. *)

val trailing_zeros : int64 -> int
(** Count of trailing zero bits (64 for zero) — branch-free de Bruijn
    lookup over native-int halves, no per-bit loop.  Exposed for the
    test suite's comparison against the bit-by-bit reference. *)

val estimate : t -> float
val level : t -> int
(** Current sampling level [z] (diagnostic). *)

val occupancy : t -> int
(** Fingerprints currently buffered (≤ [cap] between updates). *)

val prunes : t -> int
(** Level raises performed so far — each one halves the expected
    buffer.  A health gauge: runaway pruning means the buffer capacity
    is too small for the distinct-element load. *)

val words : t -> int

val dump : t -> int * int * (int64 * int) list
(** [(z, prunes, entries)] — the canonical state: buffered fingerprints
    with their levels, sorted by unsigned fingerprint.  Two sketches
    over the same seed are behaviourally identical iff their dumps are
    equal; hashtable layout never leaks. *)

val load_state :
  t -> z:int -> prunes:int -> entries:(int64 * int) list -> (unit, string) result
(** Overlay a dumped state onto a freshly created sketch (same cap and
    seed).  Rejects out-of-range levels, overfull buffers and duplicate
    fingerprints by name. *)

val merge_into : dst:t -> t -> unit
(** Fold [src] into [dst].  Both must share cap and hash seed.  The
    sketch state is a pure function of the fingerprint set seen, so the
    merged state is bit-for-bit the single-stream state over the
    concatenated inputs.
    @raise Invalid_argument on cap mismatch. *)

(** Deletion-tolerant counting variant for turnstile streams.

    Same level/buffer mechanics as the set sketch above, but each
    buffered fingerprint carries the signed sum of its updates and
    leaves the buffer when that sum returns to zero — so
    insert-then-delete is bit-for-bit never-inserted on {!Turnstile.dump},
    and {!Turnstile.merge_into} is the pointwise signed-count sum
    (merging S(x) into S(−x) empties the sketch).  The level [z] never
    decreases, so after massive net deletion the estimate is
    conservative; the insertion-only regimes keep the set variant
    (whose checkpoint codec bytes this module deliberately does not
    touch). *)
module Turnstile : sig
  type t

  val create : ?cap:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t

  val add : t -> ?delta:int -> int -> unit
  (** [add t x] inserts once; [add t ~delta:(-1) x] deletes once.
      Any non-zero [delta] is the signed multiplicity to apply. *)

  val add_batch : t -> int array -> pos:int -> len:int -> delta:int -> unit
  (** [add] over [xs.(pos .. pos+len-1)], all with the same [delta]. *)

  val estimate : t -> float
  (** [occupancy · 2^z] — the L0 (distinct live elements) estimate. *)

  val level : t -> int
  val occupancy : t -> int
  val prunes : t -> int
  val words : t -> int

  val dump : t -> int * int * (int64 * int * int) list
  (** [(z, prunes, entries)] with entries [(fp, level, signed count)]
      sorted by unsigned fingerprint — canonical, layout-free. *)

  val load_state :
    t ->
    z:int ->
    prunes:int ->
    entries:(int64 * int * int) list ->
    (unit, string) result
  (** Overlay a dumped state onto a fresh sketch (same cap and seed).
      Rejects out-of-range levels, overfull buffers, zero counts and
      duplicate fingerprints by name. *)

  val merge_into : dst:t -> t -> unit
  (** Pointwise signed-count sum at the adopted level; entries whose
      summed count cancels to zero drop out.
      @raise Invalid_argument on cap mismatch. *)
end
