examples/tradeoff_demo.mli:
