lib/workload/random_inst.mli: Mkc_stream
