let chars = 8

type t = { tables : int64 array array }

let create ~seed =
  let tables =
    Array.init chars (fun _ -> Array.init 256 (fun _ -> Splitmix.next seed))
  in
  { tables }

let hash64 t x =
  let acc = ref 0L in
  let x = ref x in
  for i = 0 to chars - 1 do
    let c = !x land 0xFF in
    acc := Int64.logxor !acc t.tables.(i).(c);
    x := !x lsr 8
  done;
  !acc

let hash t x r =
  if r < 1 then invalid_arg "Tabulation.hash: range must be >= 1";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (hash64 t x) 1) (Int64.of_int r))

let to_unit_float t x =
  let bits = Int64.shift_right_logical (hash64 t x) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let words t = chars * Array.length t.tables.(0)
