lib/sketch/count_min.mli: Mkc_hashing
