(** Planted instances keyed to the paper's case analysis (Section 4).

    The oracle of Figure 2 wins through different subroutines depending
    on the instance:

    - case I (many common elements)        → [LargeCommon], Figure 3;
    - case II (few large sets carry OPT)   → [LargeSet], Figures 4/6/7;
    - case III (many small sets carry OPT) → [SmallSet], Figure 5.

    Each generator plants a known optimal solution so tests can compare
    streaming estimates against a certified [OPT] without solving
    NP-hard instances. *)

type t = {
  system : Mkc_stream.Set_system.t;
  planted_sets : int list;  (** ids of the planted (near-)optimal k-cover *)
  planted_coverage : int;  (** exact coverage of [planted_sets] *)
}

val planted :
  n:int ->
  m:int ->
  num_planted:int ->
  coverage_fraction:float ->
  noise_size:int ->
  ?noise_overlap:float ->
  seed:int ->
  unit ->
  t
(** Plant [num_planted] disjoint sets jointly covering
    [coverage_fraction · n] elements (sizes as equal as possible); the
    remaining [m - num_planted] noise sets each draw [noise_size]
    elements, a fraction [noise_overlap] (default 0.5) of them from the
    planted region and the rest from the uncovered region. The planted
    sets are an optimal [num_planted]-cover by construction whenever
    noise sets are smaller than planted ones. *)

val few_large : n:int -> m:int -> k:int -> seed:int -> t
(** Case II: [k] planted sets of size [n/(2k)] each — few sets, each
    contributing a large fraction of OPT. *)

val many_small : n:int -> m:int -> k:int -> seed:int -> t
(** Case III: [k] planted sets, each tiny relative to OPT (use with
    large [k]); noise sets are same-sized so the regime is genuinely
    "many small sets". *)

val common_heavy :
  n:int -> m:int -> k:int -> beta:int -> seed:int -> t
(** Case I: a block of [βk]-common elements — each appears in [~m/(βk)]
    sets — dominating the optimum, so covering the common block with βk
    random sets is near-optimal (Lemma 2.3).  [planted_sets] is a best
    k-prefix of the planting. *)
