(** Swap-based set-arrival streaming Max k-Cover, after Saha–Getoor
    (SDM 2009 [37]) — the "Reporting / Set Arrival / 4 / Õ(n)" row of
    Table 1.

    Maintains a current solution of at most [k] sets (with their
    contents, Õ(n) words total when coverage is Θ(n)); an arriving set
    is swapped in against the currently least-contributing kept set
    when its fresh coverage is at least twice that set's unique
    contribution.  The 2× margin is what yields the constant-factor
    guarantee: every swap retires a contribution at most half the gain,
    so the final solution's coverage is within a constant of any fixed
    optimum (the original analysis gives factor 4).

    Requires sets as unit objects — a set-arrival algorithm, kept as a
    baseline to contrast with the edge-arrival core. *)

type t

val create : n:int -> k:int -> t
val feed : t -> int -> int array -> unit
(** [feed t id members]: one set arrives. *)

val result : t -> Greedy.result
val words : t -> int
