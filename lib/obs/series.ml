type t = {
  names : string array;
  nt : int;
  cap : int;
  data : int array; (* cap × nt ring, row-major *)
  ns : int array; (* cap *)
  edges : int array; (* cap *)
  staging : int array; (* nt *)
  mins : int array; (* nt, running over all commits *)
  maxs : int array;
  lasts : int array;
  mutable len : int; (* retained rows *)
  mutable next : int; (* ring write cursor *)
  mutable total : int; (* rows ever committed *)
}

let create ~capacity ~tracks =
  if capacity < 1 then invalid_arg "Series.create: capacity must be >= 1";
  let nt = Array.length tracks in
  if nt = 0 then invalid_arg "Series.create: no tracks";
  let seen = Hashtbl.create nt in
  Array.iter
    (fun name ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Series.create: duplicate track %S" name);
      Hashtbl.add seen name ())
    tracks;
  {
    names = Array.copy tracks;
    nt;
    cap = capacity;
    data = Array.make (capacity * nt) 0;
    ns = Array.make capacity 0;
    edges = Array.make capacity 0;
    staging = Array.make nt 0;
    mins = Array.make nt 0;
    maxs = Array.make nt 0;
    lasts = Array.make nt 0;
    len = 0;
    next = 0;
    total = 0;
  }

let tracks t = Array.copy t.names
let ntracks t = t.nt
let capacity t = t.cap

let index t name =
  let rec go i = if i >= t.nt then None else if t.names.(i) = name then Some i else go (i + 1) in
  go 0

let index_exn t name =
  match index t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Series: unknown track %S" name)

let stage t i v =
  if i < 0 || i >= t.nt then invalid_arg "Series.stage: track index out of range";
  t.staging.(i) <- v

let commit t ~at_ns ~at_edges =
  let base = t.next * t.nt in
  Array.blit t.staging 0 t.data base t.nt;
  t.ns.(t.next) <- at_ns;
  t.edges.(t.next) <- at_edges;
  if t.total = 0 then begin
    Array.blit t.staging 0 t.mins 0 t.nt;
    Array.blit t.staging 0 t.maxs 0 t.nt
  end
  else
    for i = 0 to t.nt - 1 do
      let v = Array.unsafe_get t.staging i in
      if v < Array.unsafe_get t.mins i then Array.unsafe_set t.mins i v;
      if v > Array.unsafe_get t.maxs i then Array.unsafe_set t.maxs i v
    done;
  Array.blit t.staging 0 t.lasts 0 t.nt;
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1;
  t.total <- t.total + 1

let length t = t.len
let total t = t.total

(* Physical slot of logical row [i] (0 = oldest retained). *)
let slot t i =
  if i < 0 || i >= t.len then invalid_arg "Series: row out of range";
  if t.len < t.cap then i else (t.next + i) mod t.cap

let get t ~row ~track =
  if track < 0 || track >= t.nt then invalid_arg "Series.get: track index out of range";
  t.data.((slot t row * t.nt) + track)

let row_ns t i = t.ns.(slot t i)
let row_edges t i = t.edges.(slot t i)

let check_track t i =
  if i < 0 || i >= t.nt then invalid_arg "Series: track index out of range"

let last t i =
  check_track t i;
  t.lasts.(i)

let min_of t i =
  check_track t i;
  t.mins.(i)

let max_of t i =
  check_track t i;
  t.maxs.(i)
