lib/coverage/swap_greedy.ml: Array Greedy List
