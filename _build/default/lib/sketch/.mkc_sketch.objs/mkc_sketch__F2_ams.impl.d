lib/sketch/f2_ams.ml: Array Mkc_hashing
