lib/stream/stats.ml: Array Hashtbl List Option Set_system
