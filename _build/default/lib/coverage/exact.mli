(** Exact Max k-Cover by branch and bound, for small instances only.

    Tests use it as the OPT oracle when verifying approximation factors
    on instances too irregular for a planted optimum.  The bound prunes
    with the submodular upper bound "current coverage + sum of the
    [remaining] largest set sizes". Exponential worst case: guard with
    [max_nodes]. *)

type result = { chosen : int list; coverage : int; optimal : bool }
(** [optimal] is false when the node budget was exhausted (the result is
    then the best solution found, a lower bound). *)

val run : ?max_nodes:int -> Mkc_stream.Set_system.t -> k:int -> result
(** Default [max_nodes] = 2_000_000. *)
