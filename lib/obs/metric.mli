(** Metric value types and their merge algebra.

    The registry keeps one cell per (metric, domain); reads merge the
    per-domain cells with the operations here.  Merges form a
    commutative monoid (associative, commutative, with {!Histogram.create}
    / zero as identity) — the law the per-domain sharding relies on:
    merging shards in any order equals a single sequential history.
    [test/test_obs.ml] checks this. *)

(** Fixed-width log-bucketed histogram: bucket [i] counts observations
    [v] with [2^i <= v < 2^(i+1)] (values below 1 land in bucket 0).
    Designed for nanosecond latencies: 64 buckets cover [1ns, ~292y]. *)
module Histogram : sig
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;  (** meaningless when [count = 0] *)
    mutable vmax : float;
    buckets : int array;  (** length {!num_buckets} *)
  }

  val num_buckets : int
  val create : unit -> t
  val observe : t -> float -> unit
  val observe_ns : t -> int -> unit

  val bucket_of : float -> int
  (** Index of the bucket a value lands in. *)

  val merge : t -> t -> t
  (** Fresh histogram holding both inputs' observations. *)

  val merge_into : dst:t -> t -> unit

  val nonzero_buckets : t -> (int * int) list
  (** [(bucket index, count)] for non-empty buckets, ascending. *)

  val quantile : t -> float -> float
  (** [quantile h q] for q ∈ \[0, 1\]: upper bound (2^(i+1)) of the
      bucket containing the q-th observation; 0 when empty.  Log-bucket
      resolution: exact within a factor of 2. *)
end

val merge_counter : int -> int -> int
(** Counters merge by sum. *)

val merge_gauge : [ `Sum | `Max ] -> float -> float -> float
(** Gauges merge by the mode fixed at registration: [`Sum] for
    additive-across-domains quantities (busy time, retained words),
    [`Max] for high-water marks (wall time, peaks). *)
