(** Zipf (power-law) sampling.

    Used to synthesize the skewed workloads that motivate maximum
    coverage in the paper's introduction (information retrieval, data
    mining): topic popularity and set sizes in real corpora are
    heavy-tailed. *)

type t

val create : n:int -> s:float -> seed:Mkc_hashing.Splitmix.t -> t
(** Distribution over [\[0, n)] with P(i) ∝ 1/(i+1)^s. [s >= 0]. *)

val sample : t -> int
val pmf : t -> int -> float
val words : t -> int
