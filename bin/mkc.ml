(* mkc — command-line driver for the streaming Max k-Cover library.

   Subcommands:
     generate    synthesize an instance and write its edge stream to a file
     estimate    single-pass α-approximate coverage estimation (Thm 3.1)
     report      single-pass α-approximate k-cover reporting (Thm 3.2)
     greedy      offline full-memory greedy baseline
     lowerbound  play the §5 one-way DSJ communication game *)

open Cmdliner

let stream_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "stream"; "s" ] ~docv:"FILE" ~doc:"Edge stream file (lines: \"set elt\").")

let k_arg = Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Cover budget k.")

let alpha_arg =
  Arg.(value & opt float 4.0 & info [ "alpha"; "a" ] ~docv:"A" ~doc:"Approximation target α.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let profile_arg =
  let profile_conv =
    Arg.enum [ ("practical", Mkc_core.Params.Practical); ("paper", Mkc_core.Params.Paper) ]
  in
  Arg.(
    value & opt profile_conv Mkc_core.Params.Practical
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:"Constant profile: $(b,practical) (calibrated) or $(b,paper) (Table 2 literal).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Ingestion domains. With D > 1 the independent oracle instances are \
           sharded across D domains; results are identical to a sequential run.")

let chunk_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | _ -> Error (`Msg "chunk size must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt pos_int Mkc_stream.Pipeline.default_chunk
    & info [ "chunk" ] ~docv:"EDGES" ~doc:"Ingestion chunk size in edges.")

let load_stream path =
  let src = Mkc_stream.Stream_source.load path in
  let m, n = Mkc_stream.Stream_source.max_ids src in
  (src, m, n)

(* ---------- generate ---------- *)

let generate kind n m k seed out =
  let sys =
    match kind with
    | `Few_large -> (Mkc_workload.Planted.few_large ~n ~m ~k ~seed).system
    | `Many_small -> (Mkc_workload.Planted.many_small ~n ~m ~k ~seed).system
    | `Common_heavy -> (Mkc_workload.Planted.common_heavy ~n ~m ~k ~beta:4 ~seed).system
    | `Uniform -> Mkc_workload.Random_inst.uniform ~n ~m ~set_size:(max 1 (n / 64)) ~seed
    | `Zipf -> Mkc_workload.Random_inst.zipf_sizes ~n ~m ~max_size:(max 2 (n / 16)) ~skew:1.1 ~seed
    | `Graph -> Mkc_workload.Graph_gen.power_law ~vertices:n ~edges:(8 * n) ~skew:1.2 ~seed
  in
  let src = Mkc_stream.Stream_source.of_system ~seed:(seed + 1) sys in
  Mkc_stream.Stream_source.save src out;
  Format.printf "wrote %d pairs (%a) to %s@."
    (Mkc_stream.Stream_source.length src)
    Mkc_stream.Set_system.pp_summary sys out

let generate_cmd =
  let kind =
    let kind_conv =
      Arg.enum
        [
          ("few-large", `Few_large);
          ("many-small", `Many_small);
          ("common-heavy", `Common_heavy);
          ("uniform", `Uniform);
          ("zipf", `Zipf);
          ("graph", `Graph);
        ]
    in
    Arg.(value & opt kind_conv `Uniform & info [ "kind" ] ~docv:"KIND" ~doc:"Instance family.")
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Ground set size.") in
  let m = Arg.(value & opt int 1024 & info [ "m" ] ~doc:"Number of sets.") in
  let out =
    Arg.(value & opt string "stream.txt" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize an instance and write its edge stream")
    Term.(const generate $ kind $ n $ m $ k_arg $ seed_arg $ out)

(* ---------- estimate ---------- *)

let estimate path k alpha seed profile domains chunk =
  let src, m, n = load_stream path in
  let params = Mkc_core.Params.make ~m ~n ~k ~alpha ~profile ~seed () in
  let est = Mkc_core.Estimate.create params in
  let r =
    if domains > 1 then
      Mkc_stream.Pipeline.run_parallel ~domains ~chunk
        ~shards:(Mkc_core.Estimate.shards est)
        ~finalize:(fun () -> Mkc_core.Estimate.finalize est)
        src
    else Mkc_stream.Pipeline.run ~chunk Mkc_core.Estimate.sink est src
  in
  Format.printf "stream: %d pairs, m=%d, n=%d@." (Mkc_stream.Stream_source.length src) m n;
  Format.printf "estimated optimal %d-cover coverage: %.0f@." k r.Mkc_core.Estimate.estimate;
  (match r.Mkc_core.Estimate.outcome with
  | Some o ->
      Format.printf "winning subroutine: %a (guess z=%d)@." Mkc_core.Solution.pp_provenance
        o.provenance r.Mkc_core.Estimate.z_guess
  | None -> Format.printf "no subroutine produced a feasible estimate@.");
  Format.printf "space: %d words@." (Mkc_core.Estimate.words est)

let estimate_cmd =
  Cmd.v
    (Cmd.info "estimate" ~doc:"α-approximate coverage estimation (Theorem 3.1)")
    Term.(
      const estimate $ stream_arg $ k_arg $ alpha_arg $ seed_arg $ profile_arg
      $ domains_arg $ chunk_arg)

(* ---------- report ---------- *)

let report path k alpha seed profile domains chunk =
  let src, m, n = load_stream path in
  let params = Mkc_core.Params.make ~m ~n ~k ~alpha ~profile ~seed () in
  let rep = Mkc_core.Report.create params in
  let r =
    if domains > 1 then
      Mkc_stream.Pipeline.run_parallel ~domains ~chunk
        ~shards:(Mkc_core.Report.shards rep)
        ~finalize:(fun () -> Mkc_core.Report.finalize rep)
        src
    else Mkc_stream.Pipeline.run ~chunk Mkc_core.Report.sink rep src
  in
  Format.printf "estimated coverage: %.0f@." r.Mkc_core.Report.estimate;
  (match r.Mkc_core.Report.provenance with
  | Some p -> Format.printf "via: %a@." Mkc_core.Solution.pp_provenance p
  | None -> ());
  Format.printf "reported %d sets:@." (List.length r.Mkc_core.Report.sets);
  List.iter (fun id -> Format.printf "  S%d@." id) r.Mkc_core.Report.sets;
  Format.printf "space: %d words@." (Mkc_core.Report.words rep)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"α-approximate k-cover reporting (Theorem 3.2)")
    Term.(
      const report $ stream_arg $ k_arg $ alpha_arg $ seed_arg $ profile_arg
      $ domains_arg $ chunk_arg)

(* ---------- greedy ---------- *)

let greedy path k =
  let src, m, n = load_stream path in
  let sys =
    Mkc_stream.Set_system.of_edges ~n ~m
      (Array.to_list (Mkc_stream.Stream_source.to_array src))
  in
  let r = Mkc_coverage.Greedy.run sys ~k in
  Format.printf "greedy %d-cover coverage: %d@." k r.Mkc_coverage.Greedy.coverage;
  List.iter (fun id -> Format.printf "  S%d@." id) r.Mkc_coverage.Greedy.chosen

let greedy_cmd =
  Cmd.v
    (Cmd.info "greedy" ~doc:"Offline full-memory greedy baseline (1 - 1/e)")
    Term.(const greedy $ stream_arg $ k_arg)

(* ---------- stats ---------- *)

let stats path =
  let src, m, n = load_stream path in
  let sys =
    Mkc_stream.Set_system.of_edges ~n ~m
      (Array.to_list (Mkc_stream.Stream_source.to_array src))
  in
  Format.printf "%a@." Mkc_stream.Set_system.pp_summary sys;
  Format.printf "max element frequency: %d@." (Mkc_stream.Stats.max_frequency sys);
  List.iter
    (fun lambda ->
      Format.printf "|Ucmn(λ=%g)| (freq ≥ m/λ): %d@." lambda
        (Mkc_stream.Stats.ucmn_size sys ~lambda))
    [ 4.0; 16.0; 64.0 ];
  Format.printf "frequency histogram (freq: #elements):@.";
  List.iter
    (fun (f, c) -> if f <= 16 then Format.printf "  %4d: %d@." f c)
    (Mkc_stream.Stats.frequency_histogram sys)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Instance statistics (frequencies, λ-common elements)")
    Term.(const stats $ stream_arg)

(* ---------- lowerbound ---------- *)

let lowerbound m alpha trials seed =
  let r = max 2 (int_of_float (ceil alpha)) in
  let correct = ref 0 and words = ref 0 in
  for t = 1 to trials do
    let case = if t mod 2 = 0 then Mkc_lowerbound.Disjointness.Yes else Mkc_lowerbound.Disjointness.No in
    let d = Mkc_lowerbound.Disjointness.generate ~r ~m ~case ~seed:(seed + t) () in
    let out =
      Mkc_lowerbound.Protocol.play d
        (Mkc_lowerbound.Protocol.coverage_distinguisher ~m ~alpha ~seed:(seed + (1000 * t)) ())
    in
    if out.Mkc_lowerbound.Protocol.correct then incr correct;
    words := max !words out.Mkc_lowerbound.Protocol.message_words
  done;
  Format.printf "α-player DSJ(m=%d, α=%d): %d/%d correct, max message %d words (m/α² = %.0f)@."
    m r !correct trials !words
    (float_of_int m /. (alpha *. alpha))

let lowerbound_cmd =
  let m = Arg.(value & opt int 1024 & info [ "m" ] ~doc:"Item universe size.") in
  let trials = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Number of game plays.") in
  Cmd.v
    (Cmd.info "lowerbound" ~doc:"Play the §5 one-way set-disjointness game")
    Term.(const lowerbound $ m $ alpha_arg $ trials $ seed_arg)

let () =
  let info =
    Cmd.info "mkc" ~version:"1.0.0"
      ~doc:"Streaming maximum k-coverage (Indyk-Vakilian, PODS 2019)"
  in
  exit (Cmd.eval (Cmd.group info [ generate_cmd; estimate_cmd; report_cmd; greedy_cmd; stats_cmd; lowerbound_cmd ]))
