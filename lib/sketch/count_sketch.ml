type t = {
  depth : int;
  width : int;
  buckets : Mkc_hashing.Pairwise.t array;
  signs : Mkc_hashing.Poly_hash.t array;
  counters : int array array; (* depth x width *)
}

let create ?(depth = 5) ~width ~seed () =
  if depth < 1 then invalid_arg "Count_sketch.create: depth must be >= 1";
  if width < 1 then invalid_arg "Count_sketch.create: width must be >= 1";
  {
    depth;
    width;
    buckets =
      Array.init depth (fun r ->
          Mkc_hashing.Pairwise.create ~range:width ~seed:(Mkc_hashing.Splitmix.fork seed (2 * r)));
    signs =
      Array.init depth (fun r ->
          Mkc_hashing.Poly_hash.create ~indep:4 ~range:2
            ~seed:(Mkc_hashing.Splitmix.fork seed ((2 * r) + 1)));
    counters = Array.init depth (fun _ -> Array.make width 0);
  }

let sign h x = if Mkc_hashing.Poly_hash.hash h x = 0 then 1 else -1

let add t i delta =
  for r = 0 to t.depth - 1 do
    let b = Mkc_hashing.Pairwise.hash t.buckets.(r) i in
    t.counters.(r).(b) <- t.counters.(r).(b) + (sign t.signs.(r) i * delta)
  done

let add_batch t ids ~pos ~len ~delta =
  (* Row-outer loop: one row's bucket/sign hashes and counter array stay
     hot across the whole chunk.  Per-bucket integer additions commute,
     so the final counters equal per-item [add]'s. *)
  for r = 0 to t.depth - 1 do
    let bh = t.buckets.(r) and sh = t.signs.(r) and row = t.counters.(r) in
    for i = pos to pos + len - 1 do
      let x = Array.unsafe_get ids i in
      let b = Mkc_hashing.Pairwise.hash bh x in
      row.(b) <- row.(b) + (sign sh x * delta)
    done
  done

let dump t = Array.map Array.copy t.counters

let load_state t rows =
  if
    Array.length rows <> t.depth
    || Array.exists (fun row -> Array.length row <> t.width) rows
  then Error "count_sketch: row shape mismatch"
  else begin
    Array.iteri (fun r row -> Array.blit row 0 t.counters.(r) 0 t.width) rows;
    Ok ()
  end

(* Every counter is a signed sum over the update stream — linear — so
   merging sketches with the same hashes is pointwise addition. *)
let merge_into ~dst src =
  if dst.depth <> src.depth || dst.width <> src.width then
    invalid_arg "Count_sketch.merge_into: shape mismatch";
  for r = 0 to dst.depth - 1 do
    let drow = dst.counters.(r) and srow = src.counters.(r) in
    for b = 0 to dst.width - 1 do
      drow.(b) <- drow.(b) + srow.(b)
    done
  done

let estimate t i =
  let ests =
    Array.init t.depth (fun r ->
        let b = Mkc_hashing.Pairwise.hash t.buckets.(r) i in
        float_of_int (sign t.signs.(r) i * t.counters.(r).(b)))
  in
  Array.sort compare ests;
  if t.depth land 1 = 1 then ests.(t.depth / 2)
  else (ests.((t.depth / 2) - 1) +. ests.(t.depth / 2)) /. 2.0

let f2_estimate t =
  let per_row =
    Array.init t.depth (fun r ->
        Array.fold_left
          (fun acc c -> acc +. (float_of_int c *. float_of_int c))
          0.0 t.counters.(r))
  in
  Array.sort compare per_row;
  per_row.(t.depth / 2)

let width t = t.width

let words t =
  (t.depth * t.width)
  + Array.fold_left (fun acc h -> acc + Mkc_hashing.Pairwise.words h) 0 t.buckets
  + Array.fold_left (fun acc h -> acc + Mkc_hashing.Poly_hash.words h) 0 t.signs
