test/test_hashing.ml: Alcotest Array Fun Hashtbl Int64 List Mkc_hashing QCheck QCheck_alcotest
