(* Amortized implementation: candidates accumulate in a hashtable up to
   2×cap, then one O(size log size) prune keeps the top cap by score.
   This keeps per-offer cost O(1) amortized, which matters because the
   tracker capacity is Θ(1/φ) = Θ̃(m/α²) in the paper's main regime. *)
type t = { cap : int; tbl : (int, float) Hashtbl.t }

let create ~cap =
  if cap < 1 then invalid_arg "Top_k.create: cap must be >= 1";
  { cap; tbl = Hashtbl.create 16 }

let prune t =
  let entries = Hashtbl.fold (fun id score acc -> (id, score) :: acc) t.tbl [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) entries in
  Hashtbl.reset t.tbl;
  List.iteri (fun i (id, score) -> if i < t.cap then Hashtbl.replace t.tbl id score) sorted

let offer t id score =
  Hashtbl.replace t.tbl id score;
  if Hashtbl.length t.tbl > 2 * t.cap then prune t

let mem t id = Hashtbl.mem t.tbl id

let to_list t =
  if Hashtbl.length t.tbl > t.cap then prune t;
  Hashtbl.fold (fun id score acc -> (id, score) :: acc) t.tbl []

let cardinal t = min t.cap (Hashtbl.length t.tbl)
let words t = Space.hashtbl t.tbl ~entry_words:2 + 1
