lib/workload/zipf.mli: Mkc_hashing
