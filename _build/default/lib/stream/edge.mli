(** A stream token in the general (edge-arrival) model: the pair
    [(set, element)] meaning "element [elt] belongs to set [set]".

    Sets are identified by ints in [\[0, m)], elements by ints in
    [\[0, n)].  Duplicate pairs may appear in a stream; all algorithms
    in this repository are duplicate-tolerant as the paper requires
    (frequencies count multiplicity only where the analysis says so). *)

type t = { set : int; elt : int }

val make : set:int -> elt:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
