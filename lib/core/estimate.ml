type inst = {
  z : int;
  rep : int;
  span_name : string; (* "estimate.z<z>.rep<rep>", precomputed off the hot path *)
  reduction : Universe_reduction.t;
  oracle : Oracle.t;
}

type body =
  | Trivial of { estimate : float; witness : unit -> int list }
  | Run of { insts : inst array }

(* Per-instance finalize verdict: (z, rep, winning-subroutine key or
   "none", passed the z-acceptance test). *)
type final = { fz : int; frep : int; fwinner : string; faccepted : bool }

type t = {
  params : Params.t;
  body : body;
  mutable red : int array; (* distinct-element reduction buffer, reused per chunk *)
  own_plan : Mkc_stream.Chunk_plan.t; (* for feed_batch callers with no shared plan *)
  mutable finals : final list; (* populated by [finalize], newest wins *)
}

type result = { estimate : float; outcome : Solution.outcome option; z_guess : int }

let guess_ladder (p : Params.t) =
  let top = Mkc_hashing.Hash_family.ceil_log2 p.n in
  let bottom = min top 2 in
  let rec go z acc = if z > top then List.rev acc else go (z + p.z_stride) ((1 lsl z) :: acc) in
  let ladder = go bottom [] in
  (* Always include the top guess so OPT ≈ n is never missed. *)
  if List.mem (1 lsl top) ladder then ladder else ladder @ [ 1 lsl top ]

let trivial_witness (p : Params.t) () =
  (* k distinct pseudo-random set ids; by set sampling, a random
     k-subset carries a ≥ k/m ≥ 1/α coverage fraction in expectation.
     Sorted: Hashtbl.fold order is implementation-defined, and the
     witness must be deterministic across OCaml versions/runs. *)
  let rng = Mkc_hashing.Splitmix.create (p.base_seed lxor 0x7777) in
  let seen = Hashtbl.create p.k in
  while Hashtbl.length seen < p.k do
    Hashtbl.replace seen (Mkc_hashing.Splitmix.below rng p.m) ()
  done;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])

let create (p : Params.t) =
  let body =
    if float_of_int p.k *. p.alpha >= float_of_int p.m then
      Trivial
        { estimate = float_of_int p.n /. p.alpha; witness = trivial_witness p }
    else begin
      let root = Mkc_hashing.Splitmix.create p.base_seed in
      let insts =
        guess_ladder p
        |> List.concat_map (fun z ->
               List.init p.z_repeats (fun rep ->
                   let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
                   {
                     z;
                     rep;
                     span_name = Printf.sprintf "estimate.z%d.rep%d" z rep;
                     reduction =
                       Universe_reduction.create ~z ~seed:(Mkc_hashing.Splitmix.fork sd 0);
                     oracle =
                       Oracle.create (Params.with_universe p z)
                         ~seed:(Mkc_hashing.Splitmix.fork sd 1);
                   }))
        |> Array.of_list
      in
      Run { insts }
    end
  in
  { params = p; body; red = [||]; own_plan = Mkc_stream.Chunk_plan.create (); finals = [] }

let feed t e =
  match t.body with
  | Trivial _ -> ()
  | Run { insts } ->
      Array.iter
        (fun inst -> Oracle.feed inst.oracle (Universe_reduction.apply_edge inst.reduction e))
        insts

let grow_red scratch n =
  if Array.length scratch >= n then scratch else Array.make (max n (2 * Array.length scratch)) 0

let feed_planned t plan edges ~pos ~len =
  match t.body with
  | Trivial _ -> ()
  | Run { insts } ->
      (* Instance-outer over the shared plan: each instance reduces only
         the chunk's DISTINCT elements (one coefficient-major hash pass
         per instance) into [red], then its oracle decides per distinct
         id and replays the chunk.  Instances are mutually independent,
         so the final state is exactly the edge-by-edge one. *)
      let ne = Mkc_stream.Chunk_plan.num_elts plan in
      t.red <- grow_red t.red ne;
      let red = t.red and elts = Mkc_stream.Chunk_plan.elts plan in
      (* One timed span per (z, rep) instance per chunk — the Figure 1
         fan-out becomes visible as parallel rows on the trace timeline.
         The obs check is hoisted so the untraced hot path pays one
         branch per chunk, not one clock read per instance. *)
      let obs = Mkc_obs.Registry.enabled () || Mkc_obs.Trace.enabled () in
      Array.iter
        (fun inst ->
          let t0 = if obs then Mkc_obs.Clock.now_ns () else 0 in
          Universe_reduction.apply_batch inst.reduction elts ~pos:0 ~len:ne red;
          Oracle.feed_planned inst.oracle plan ~red edges ~pos ~len;
          if obs then
            Mkc_obs.Span.record inst.span_name ~start_ns:t0
              ~dur_ns:(Mkc_obs.Clock.now_ns () - t0))
        insts

let feed_batch t edges ~pos ~len =
  match t.body with
  | Trivial _ -> ()
  | Run _ ->
      Mkc_stream.Chunk_plan.build t.own_plan edges ~pos ~len;
      feed_planned t t.own_plan edges ~pos ~len

let finalize t =
  match t.body with
  | Trivial { estimate; witness } ->
      t.finals <- [ { fz = 0; frep = 0; fwinner = "trivial"; faccepted = true } ];
      {
        estimate;
        outcome = Some { Solution.estimate; witness; provenance = Solution.Trivial };
        z_guess = 0;
      }
  | Run { insts } ->
      let p = t.params in
      let accepted = ref None and fallback = ref None in
      let finals = ref [] in
      let consider slot (cand : result) =
        match !slot with
        | Some (best : result) when best.estimate >= cand.estimate -> ()
        | _ -> slot := Some cand
      in
      Array.iter
        (fun inst ->
          match Oracle.finalize inst.oracle with
          | None ->
              finals :=
                { fz = inst.z; frep = inst.rep; fwinner = "none"; faccepted = false } :: !finals
          | Some o ->
              let cand = { estimate = o.Solution.estimate; outcome = Some o; z_guess = inst.z } in
              let threshold = float_of_int inst.z /. (p.accept_factor *. p.alpha) in
              let ok = o.Solution.estimate >= threshold in
              finals :=
                {
                  fz = inst.z;
                  frep = inst.rep;
                  fwinner = Solution.provenance_key o.Solution.provenance;
                  faccepted = ok;
                }
                :: !finals;
              if ok then consider accepted cand else consider fallback cand)
        insts;
      t.finals <- List.rev !finals;
      (match (!accepted, !fallback) with
      | Some r, _ -> r
      | None, Some r -> r
      | None, None -> { estimate = 0.0; outcome = None; z_guess = 0 })

let guesses t = guess_ladder t.params

let words t =
  match t.body with
  | Trivial _ -> t.params.k
  | Run { insts } ->
      Array.fold_left
        (fun acc inst -> acc + Universe_reduction.words inst.reduction + Oracle.words inst.oracle)
        0 insts

let words_breakdown t =
  match t.body with
  | Trivial _ -> [ ("trivial_witness", t.params.k) ]
  | Run { insts } ->
      Mkc_stream.Sink.canonical_breakdown
        (Array.to_list insts
        |> List.concat_map (fun inst ->
               ("universe_reduction", Universe_reduction.words inst.reduction)
               :: Oracle.words_breakdown inst.oracle))

let stats t =
  match t.body with
  | Trivial _ -> []
  | Run { insts } ->
      Array.to_list insts
      |> List.map (fun inst -> ((inst.z, inst.rep), Oracle.stats inst.oracle))

(* Sum the per-instance oracle stats into one canonical table — the
   sketch-health totals both [record_metrics] and the telemetry probes
   read. *)
let stats_totals t =
  let totals = Hashtbl.create 32 in
  List.iter
    (fun ((_ : int * int), stats) ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace totals k (v + Option.value ~default:0 (Hashtbl.find_opt totals k)))
        stats)
    (stats t);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])

let winners t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.fwinner
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.fwinner)))
    t.finals;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* The Õ(m/α²) space bound of Theorems 3.1/3.3 with its constants made
   explicit: each of the |ladder|·z_repeats oracle instances is allowed
   [c_mass · m/α² + c_floor] words per log²(mn) polylog factor.  The
   two-term shape matters: the mass term is the theorem's m/α² sketch
   load, while the floor covers per-instance state that does not scale
   with m/α² (tabulation tables, the keep-level memo, CountSketch
   rows).  The constants are calibrated against measured peaks of the
   quickstart/bench/CI workloads at ~0.5–0.8 headroom — tight enough
   that a constant-factor space regression trips the watchdog, loose
   enough that healthy runs never do. *)
let budget_mass = 8.0
let budget_floor = 640.0

let word_budget (p : Params.t) =
  if float_of_int p.k *. p.alpha >= float_of_int p.m then (* trivial branch: witness ids only *)
    4 * p.k
  else begin
    let instances = List.length (guess_ladder p) * p.z_repeats in
    let lmn = Params.log2f (p.m * max 1 p.n) in
    let m_over_a2 = float_of_int p.m /. (p.alpha *. p.alpha) in
    let per_inst = ((budget_mass *. m_over_a2) +. budget_floor) *. lmn *. lmn in
    int_of_float (ceil (float_of_int instances *. per_inst))
  end

let record_metrics ?(registry = Mkc_obs.Registry.global) t =
  (* Publish per-(guess, repeat) oracle work counters.  Totals go under
     estimate.oracle.<stat>; the per-instance split keeps the z/rep
     labels in the metric name, so the Figure 1 fan-out is readable off
     a flat dump. *)
  List.iter
    (fun ((z, rep), stats) ->
      List.iter
        (fun (key, v) ->
          Mkc_obs.Registry.add (Mkc_obs.Registry.counter registry ("estimate.oracle." ^ key)) v;
          Mkc_obs.Registry.add
            (Mkc_obs.Registry.counter registry
               (Printf.sprintf "estimate.z%d.rep%d.%s" z rep key))
            v)
        stats)
    (stats t);
  (* Winner attribution and the z-ladder accept/reject outcomes (both
     need [finalize] to have run; the counts sum to the number of
     oracle instances). *)
  let bump name = Mkc_obs.Registry.add (Mkc_obs.Registry.counter registry name) 1 in
  List.iter
    (fun f ->
      bump ("estimate.winner." ^ f.fwinner);
      bump
        (Printf.sprintf "estimate.z%d.%s" f.fz (if f.faccepted then "accepted" else "rejected"));
      bump (if f.faccepted then "estimate.guess.accepted" else "estimate.guess.rejected"))
    t.finals;
  (* Sketch-health ratios, derived from the same stats the counters
     publish raw: memo hit ratio (top-level sampler_evals are exactly
     the misses) and the heavy-hitter recovery success rate. *)
  let totals = stats_totals t in
  let tot k = Option.value ~default:0 (List.assoc_opt k totals) in
  let memo_hits = tot "large_common.memo_hits" in
  Mkc_obs.Quality.record_ratio ~registry "estimate.quality.memo.hit_ratio" ~num:memo_hits
    ~den:(memo_hits + tot "large_common.sampler_evals");
  Mkc_obs.Quality.record_ratio ~registry "estimate.quality.f2.hh_recovery_rate"
    ~num:(tot "large_set.hh_recoveries")
    ~den:(tot "large_set.hh_candidates")

module Ck = Mkc_stream.Checkpoint
module Json = Mkc_obs.Json

let encode t =
  Json.Object
    [
      ("params", Params.encode t.params);
      ( "body",
        match t.body with
        | Trivial _ -> Json.String "trivial"
        | Run { insts } ->
            Json.Object
              [
                ( "insts",
                  Json.Array
                    (Array.to_list (Array.map (fun i -> Oracle.encode i.oracle) insts)) );
              ] );
    ]

let restore t j =
  let ( let* ) = Result.bind in
  let* pj = Ck.J.field "params" j in
  let* p = Result.map_error (Printf.sprintf "estimate params: %s") (Params.of_json pj) in
  let* () =
    if Params.same_instance p t.params then Ok ()
    else Ck.J.err "estimate: payload was produced by a different instance (params differ)"
  in
  let* bj = Ck.J.field "body" j in
  match (t.body, bj) with
  | Trivial _, Json.String "trivial" -> Ok ()
  | Run { insts }, Json.Object _ ->
      let* ijs = Ck.J.list_field "insts" bj in
      let* () =
        if List.length ijs <> Array.length insts then
          Ck.J.err "estimate: expected %d oracle instances, got %d" (Array.length insts)
            (List.length ijs)
        else Ok ()
      in
      List.fold_left
        (fun acc (i, ij) ->
          let* () = acc in
          match Oracle.restore insts.(i).oracle ij with
          | Ok () -> Ok ()
          | Error e ->
              Ck.J.err "estimate z%d rep%d: %s" insts.(i).z insts.(i).rep e)
        (Ok ())
        (List.mapi (fun i ij -> (i, ij)) ijs)
  | _ -> Ck.J.err "estimate: body branch (trivial vs run) disagrees with this instance"

let merge_into ~dst src =
  match (dst.body, src.body) with
  | Trivial _, Trivial _ -> ()
  | Run { insts = d }, Run { insts = s } when Array.length d = Array.length s ->
      Array.iteri (fun i si -> Oracle.merge_into ~dst:d.(i).oracle si.oracle) s
  | _ -> invalid_arg "Estimate.merge_into: instance shapes differ"

let ckpt_kind = "estimate"

let codec (p : Params.t) : t Ck.codec =
  { Ck.kind = ckpt_kind; seed = p.base_seed; encode; restore = (fun t j -> restore t j) }

let of_payload j =
  (* Rebuild an estimator from a bare payload: the embedded params pin
     the instance, so a checkpoint file is self-describing — the merge
     CLI needs no instance flags. *)
  let ( let* ) = Result.bind in
  let* pj = Ck.J.field "params" j in
  let* p = Result.map_error (Printf.sprintf "estimate params: %s") (Params.of_json pj) in
  let t = create p in
  let* () = restore t j in
  Ok t

let params t = t.params

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = feed_planned
    let finalize = finalize
    let words = words
    let words_breakdown = words_breakdown
  end)

(* One z-guess × repeat instance as an independently driveable sink —
   the unit the parallel pipeline schedules.  Each shard owns a private
   reduction buffer and plan scratch so shards never share mutable
   state (plans may not cross domains). *)
type shard = {
  inst : inst;
  mutable shard_red : int array;
  shard_plan : Mkc_stream.Chunk_plan.t;
}

let shard_sink : (shard, unit) Mkc_stream.Sink.sink =
  (module struct
    type t = shard
    type result = unit

    let feed s e =
      Oracle.feed s.inst.oracle (Universe_reduction.apply_edge s.inst.reduction e)

    let feed_planned s plan edges ~pos ~len =
      let obs = Mkc_obs.Registry.enabled () || Mkc_obs.Trace.enabled () in
      let t0 = if obs then Mkc_obs.Clock.now_ns () else 0 in
      let ne = Mkc_stream.Chunk_plan.num_elts plan in
      s.shard_red <- grow_red s.shard_red ne;
      Universe_reduction.apply_batch s.inst.reduction
        (Mkc_stream.Chunk_plan.elts plan)
        ~pos:0 ~len:ne s.shard_red;
      Oracle.feed_planned s.inst.oracle plan ~red:s.shard_red edges ~pos ~len;
      if obs then
        Mkc_obs.Span.record s.inst.span_name ~start_ns:t0
          ~dur_ns:(Mkc_obs.Clock.now_ns () - t0)

    let feed_batch s edges ~pos ~len =
      Mkc_stream.Chunk_plan.build s.shard_plan edges ~pos ~len;
      feed_planned s s.shard_plan edges ~pos ~len

    let finalize _ = ()
    let words s = Universe_reduction.words s.inst.reduction + Oracle.words s.inst.oracle

    let words_breakdown s =
      ("universe_reduction", Universe_reduction.words s.inst.reduction)
      :: Oracle.words_breakdown s.inst.oracle
  end)

let shards t =
  match t.body with
  | Trivial _ -> [||] (* the trivial branch ignores the stream *)
  | Run { insts } ->
      Array.map
        (fun inst ->
          Mkc_stream.Sink.pack shard_sink
            { inst; shard_red = [||]; shard_plan = Mkc_stream.Chunk_plan.create () })
        insts

(* Per-shard static cost hints, index-aligned with [shards]: the
   universe-reduction batch pass (~4.3 Large_common units per edge from
   PROFILE_hotpath.json) plus the instance's oracle subroutine mix.
   Instances differ only through the regime split (small-set present or
   not, a function of the shared params), so on a fixed params ladder
   the hints are uniform — the packing they seed degrades to balanced
   counts, and the adaptive schedule's measured busy-ns supplies the
   per-instance contrast. *)
let reduction_cost = 4.3

let shard_costs t =
  match t.body with
  | Trivial _ -> [||]
  | Run { insts } ->
      Array.map (fun inst -> reduction_cost +. Oracle.cost_hint inst.oracle) insts
