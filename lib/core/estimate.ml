type inst = { z : int; rep : int; reduction : Universe_reduction.t; oracle : Oracle.t }

type body =
  | Trivial of { estimate : float; witness : unit -> int list }
  | Run of { insts : inst array }

type t = {
  params : Params.t;
  body : body;
  mutable red : int array; (* distinct-element reduction buffer, reused per chunk *)
  own_plan : Mkc_stream.Chunk_plan.t; (* for feed_batch callers with no shared plan *)
}

type result = { estimate : float; outcome : Solution.outcome option; z_guess : int }

let guess_ladder (p : Params.t) =
  let top = Mkc_hashing.Hash_family.ceil_log2 p.n in
  let bottom = min top 2 in
  let rec go z acc = if z > top then List.rev acc else go (z + p.z_stride) ((1 lsl z) :: acc) in
  let ladder = go bottom [] in
  (* Always include the top guess so OPT ≈ n is never missed. *)
  if List.mem (1 lsl top) ladder then ladder else ladder @ [ 1 lsl top ]

let trivial_witness (p : Params.t) () =
  (* k distinct pseudo-random set ids; by set sampling, a random
     k-subset carries a ≥ k/m ≥ 1/α coverage fraction in expectation.
     Sorted: Hashtbl.fold order is implementation-defined, and the
     witness must be deterministic across OCaml versions/runs. *)
  let rng = Mkc_hashing.Splitmix.create (p.base_seed lxor 0x7777) in
  let seen = Hashtbl.create p.k in
  while Hashtbl.length seen < p.k do
    Hashtbl.replace seen (Mkc_hashing.Splitmix.below rng p.m) ()
  done;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])

let create (p : Params.t) =
  let body =
    if float_of_int p.k *. p.alpha >= float_of_int p.m then
      Trivial
        { estimate = float_of_int p.n /. p.alpha; witness = trivial_witness p }
    else begin
      let root = Mkc_hashing.Splitmix.create p.base_seed in
      let insts =
        guess_ladder p
        |> List.concat_map (fun z ->
               List.init p.z_repeats (fun rep ->
                   let sd = Mkc_hashing.Splitmix.fork root ((z * 131) + rep) in
                   {
                     z;
                     rep;
                     reduction =
                       Universe_reduction.create ~z ~seed:(Mkc_hashing.Splitmix.fork sd 0);
                     oracle =
                       Oracle.create (Params.with_universe p z)
                         ~seed:(Mkc_hashing.Splitmix.fork sd 1);
                   }))
        |> Array.of_list
      in
      Run { insts }
    end
  in
  { params = p; body; red = [||]; own_plan = Mkc_stream.Chunk_plan.create () }

let feed t e =
  match t.body with
  | Trivial _ -> ()
  | Run { insts } ->
      Array.iter
        (fun inst -> Oracle.feed inst.oracle (Universe_reduction.apply_edge inst.reduction e))
        insts

let grow_red scratch n =
  if Array.length scratch >= n then scratch else Array.make (max n (2 * Array.length scratch)) 0

let feed_planned t plan edges ~pos ~len =
  match t.body with
  | Trivial _ -> ()
  | Run { insts } ->
      (* Instance-outer over the shared plan: each instance reduces only
         the chunk's DISTINCT elements (one coefficient-major hash pass
         per instance) into [red], then its oracle decides per distinct
         id and replays the chunk.  Instances are mutually independent,
         so the final state is exactly the edge-by-edge one. *)
      let ne = Mkc_stream.Chunk_plan.num_elts plan in
      t.red <- grow_red t.red ne;
      let red = t.red and elts = Mkc_stream.Chunk_plan.elts plan in
      Array.iter
        (fun inst ->
          Universe_reduction.apply_batch inst.reduction elts ~pos:0 ~len:ne red;
          Oracle.feed_planned inst.oracle plan ~red edges ~pos ~len)
        insts

let feed_batch t edges ~pos ~len =
  match t.body with
  | Trivial _ -> ()
  | Run _ ->
      Mkc_stream.Chunk_plan.build t.own_plan edges ~pos ~len;
      feed_planned t t.own_plan edges ~pos ~len

let finalize t =
  match t.body with
  | Trivial { estimate; witness } ->
      {
        estimate;
        outcome = Some { Solution.estimate; witness; provenance = Solution.Trivial };
        z_guess = 0;
      }
  | Run { insts } ->
      let p = t.params in
      let accepted = ref None and fallback = ref None in
      let consider slot (cand : result) =
        match !slot with
        | Some (best : result) when best.estimate >= cand.estimate -> ()
        | _ -> slot := Some cand
      in
      Array.iter
        (fun inst ->
          match Oracle.finalize inst.oracle with
          | None -> ()
          | Some o ->
              let cand = { estimate = o.Solution.estimate; outcome = Some o; z_guess = inst.z } in
              let threshold = float_of_int inst.z /. (p.accept_factor *. p.alpha) in
              if o.Solution.estimate >= threshold then consider accepted cand
              else consider fallback cand)
        insts;
      (match (!accepted, !fallback) with
      | Some r, _ -> r
      | None, Some r -> r
      | None, None -> { estimate = 0.0; outcome = None; z_guess = 0 })

let guesses t = guess_ladder t.params

let words t =
  match t.body with
  | Trivial _ -> t.params.k
  | Run { insts } ->
      Array.fold_left
        (fun acc inst -> acc + Universe_reduction.words inst.reduction + Oracle.words inst.oracle)
        0 insts

let words_breakdown t =
  match t.body with
  | Trivial _ -> [ ("trivial_witness", t.params.k) ]
  | Run { insts } ->
      Mkc_stream.Sink.canonical_breakdown
        (Array.to_list insts
        |> List.concat_map (fun inst ->
               ("universe_reduction", Universe_reduction.words inst.reduction)
               :: Oracle.words_breakdown inst.oracle))

let stats t =
  match t.body with
  | Trivial _ -> []
  | Run { insts } ->
      Array.to_list insts
      |> List.map (fun inst -> ((inst.z, inst.rep), Oracle.stats inst.oracle))

let record_metrics ?(registry = Mkc_obs.Registry.global) t =
  (* Publish per-(guess, repeat) oracle work counters.  Totals go under
     estimate.oracle.<stat>; the per-instance split keeps the z/rep
     labels in the metric name, so the Figure 1 fan-out is readable off
     a flat dump. *)
  List.iter
    (fun ((z, rep), stats) ->
      List.iter
        (fun (key, v) ->
          Mkc_obs.Registry.add (Mkc_obs.Registry.counter registry ("estimate.oracle." ^ key)) v;
          Mkc_obs.Registry.add
            (Mkc_obs.Registry.counter registry
               (Printf.sprintf "estimate.z%d.rep%d.%s" z rep key))
            v)
        stats)
    (stats t)

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = feed_planned
    let finalize = finalize
    let words = words
    let words_breakdown = words_breakdown
  end)

(* One z-guess × repeat instance as an independently driveable sink —
   the unit the parallel pipeline schedules.  Each shard owns a private
   reduction buffer and plan scratch so shards never share mutable
   state (plans may not cross domains). *)
type shard = {
  inst : inst;
  mutable shard_red : int array;
  shard_plan : Mkc_stream.Chunk_plan.t;
}

let shard_sink : (shard, unit) Mkc_stream.Sink.sink =
  (module struct
    type t = shard
    type result = unit

    let feed s e =
      Oracle.feed s.inst.oracle (Universe_reduction.apply_edge s.inst.reduction e)

    let feed_planned s plan edges ~pos ~len =
      let ne = Mkc_stream.Chunk_plan.num_elts plan in
      s.shard_red <- grow_red s.shard_red ne;
      Universe_reduction.apply_batch s.inst.reduction
        (Mkc_stream.Chunk_plan.elts plan)
        ~pos:0 ~len:ne s.shard_red;
      Oracle.feed_planned s.inst.oracle plan ~red:s.shard_red edges ~pos ~len

    let feed_batch s edges ~pos ~len =
      Mkc_stream.Chunk_plan.build s.shard_plan edges ~pos ~len;
      feed_planned s s.shard_plan edges ~pos ~len

    let finalize _ = ()
    let words s = Universe_reduction.words s.inst.reduction + Oracle.words s.inst.oracle

    let words_breakdown s =
      ("universe_reduction", Universe_reduction.words s.inst.reduction)
      :: Oracle.words_breakdown s.inst.oracle
  end)

let shards t =
  match t.body with
  | Trivial _ -> [||] (* the trivial branch ignores the stream *)
  | Run { insts } ->
      Array.map
        (fun inst ->
          Mkc_stream.Sink.pack shard_sink
            { inst; shard_red = [||]; shard_plan = Mkc_stream.Chunk_plan.create () })
        insts
