(* Append-only run ledger.  See the .mli for the layout.

   The container is the Telemetry framing (8-byte magic + int64 LE
   version header, length/FNV-1a-64-checksum frames, torn tail
   tolerated, checksum mismatch fatal) with magic "MKCLEDG1" and one
   JSON run record per frame.  JSON payloads keep the ledger
   self-describing: a record written by an older binary stays readable
   field-by-field, and new fields never invalidate old readers. *)

type error =
  | Bad_magic of string
  | Bad_version of int
  | Truncated of string
  | Checksum_mismatch of { expected : string; got : string }
  | Malformed of string
  | Io_error of string

let magic = "MKCLEDG1"
let version = 1
let record_schema = "mkc-ledger/1"

let error_to_string = function
  | Bad_magic s -> Printf.sprintf "not a run ledger (magic %S, expected %S)" s magic
  | Bad_version v ->
      Printf.sprintf "unsupported run ledger version %d (this build reads %d)" v version
  | Truncated msg -> Printf.sprintf "truncated run ledger: %s" msg
  | Checksum_mismatch { expected; got } ->
      Printf.sprintf "checksum mismatch: frame says %s, payload hashes to %s" got expected
  | Malformed msg -> Printf.sprintf "malformed run ledger: %s" msg
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg

let of_telemetry_error : Telemetry.error -> error = function
  | Telemetry.Bad_magic s -> Bad_magic s
  | Telemetry.Bad_version v -> Bad_version v
  | Telemetry.Truncated s -> Truncated s
  | Telemetry.Checksum_mismatch { expected; got } -> Checksum_mismatch { expected; got }
  | Telemetry.Malformed s -> Malformed s
  | Telemetry.Io_error s -> Io_error s

type mode_stat = {
  ms_mode : string;
  ms_repeats : int;
  ms_best_s : float;
  ms_median_s : float;
  ms_edges_per_sec : float;
}

type entry = {
  e_label : string;
  e_created_ns : int;
  e_host : (string * Json.t) list;
  e_params : (string * Json.t) list;
  e_stats : (string * float) list;
  e_modes : mode_stat list;
  e_digests : (string * Histogram.digest) list;
  e_quality : (string * float) list;
}

type store = { entries : entry list; torn : error option }

let host_fingerprint () =
  let hostname = try Unix.gethostname () with Unix.Unix_error _ -> "unknown" in
  [
    ("domains", Json.Int (Domain.recommended_domain_count ()));
    ("hostname", Json.String hostname);
    ("ocaml", Json.String Sys.ocaml_version);
    ("os", Json.String Sys.os_type);
    ("word_size", Json.Int Sys.word_size);
  ]

(* ---------- encoding ---------- *)

let by_key (a, _) (b, _) = String.compare a b

(* Sorted fields everywhere: the encoder is a function of the entry's
   contents alone, so golden tests are byte-stable and identical
   entries hash identically. *)
let sorted_obj fields = Json.Object (List.sort by_key fields)

let mode_stat_to_json m =
  sorted_obj
    [
      ("best_s", Json.Float m.ms_best_s);
      ("edges_per_sec", Json.Float m.ms_edges_per_sec);
      ("median_s", Json.Float m.ms_median_s);
      ("mode", Json.String m.ms_mode);
      ("repeats", Json.Int m.ms_repeats);
    ]

let entry_to_json e =
  sorted_obj
    [
      ("created_ns", Json.Int e.e_created_ns);
      ("digests", sorted_obj (List.map (fun (k, d) -> (k, Histogram.digest_to_json d)) e.e_digests));
      ("host", sorted_obj e.e_host);
      ("label", Json.String e.e_label);
      ("modes", Json.Array (List.map mode_stat_to_json e.e_modes));
      ("params", sorted_obj e.e_params);
      ("quality", sorted_obj (List.map (fun (k, v) -> (k, Json.Float v)) e.e_quality));
      ("schema", Json.String record_schema);
      ("stats", sorted_obj (List.map (fun (k, v) -> (k, Json.Float v)) e.e_stats));
    ]

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong shape" name))

let opt_obj name j =
  match Json.member name j with
  | None -> Ok []
  | Some (Json.Object fields) -> Ok fields
  | Some _ -> Error (Printf.sprintf "field %S is not an object" name)

let float_fields name j =
  let* fields = opt_obj name j in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (k, v) :: rest -> (
        match Json.to_float v with
        | Some f -> go ((k, f) :: acc) rest
        | None -> Error (Printf.sprintf "field %S.%s is not a number" name k))
  in
  go [] fields

let mode_stat_of_json j =
  let* ms_mode = field "mode" Json.to_string_opt j in
  let* ms_repeats = field "repeats" Json.to_int j in
  let* ms_best_s = field "best_s" Json.to_float j in
  let* ms_median_s = field "median_s" Json.to_float j in
  let* ms_edges_per_sec = field "edges_per_sec" Json.to_float j in
  if ms_repeats < 1 then Error (Printf.sprintf "mode %S declares %d repeats" ms_mode ms_repeats)
  else if not (Float.is_finite ms_best_s && ms_best_s >= 0.0) then
    Error (Printf.sprintf "mode %S best_s is not a finite non-negative time" ms_mode)
  else if not (Float.is_finite ms_median_s && ms_median_s >= ms_best_s) then
    Error (Printf.sprintf "mode %S median_s is below best_s" ms_mode)
  else if not (Float.is_finite ms_edges_per_sec && ms_edges_per_sec >= 0.0) then
    Error (Printf.sprintf "mode %S edges_per_sec is not a finite non-negative rate" ms_mode)
  else Ok { ms_mode; ms_repeats; ms_best_s; ms_median_s; ms_edges_per_sec }

let entry_of_json j =
  let* schema = field "schema" Json.to_string_opt j in
  let* () =
    if String.equal schema record_schema then Ok ()
    else Error (Printf.sprintf "record schema %S, this build reads %S" schema record_schema)
  in
  let* e_label = field "label" Json.to_string_opt j in
  let* e_created_ns = field "created_ns" Json.to_int j in
  let* () =
    if e_created_ns >= 0 then Ok ()
    else Error (Printf.sprintf "created_ns %d is negative" e_created_ns)
  in
  let* e_host = opt_obj "host" j in
  let* e_params = opt_obj "params" j in
  let* e_stats = float_fields "stats" j in
  let* e_quality = float_fields "quality" j in
  let* modes_json =
    match Json.member "modes" j with
    | None -> Ok []
    | Some v -> (
        match Json.to_list v with
        | Some l -> Ok l
        | None -> Error "field \"modes\" is not an array")
  in
  let rec parse_modes acc = function
    | [] -> Ok (List.rev acc)
    | m :: rest ->
        let* ms = mode_stat_of_json m in
        parse_modes (ms :: acc) rest
  in
  let* e_modes = parse_modes [] modes_json in
  let* digest_fields = opt_obj "digests" j in
  let rec parse_digests acc = function
    | [] -> Ok (List.rev acc)
    | (k, v) :: rest -> (
        match Histogram.digest_of_json v with
        | Ok d -> parse_digests ((k, d) :: acc) rest
        | Error msg -> Error (Printf.sprintf "digest %S: %s" k msg))
  in
  let* e_digests = parse_digests [] digest_fields in
  Ok { e_label; e_created_ns; e_host; e_params; e_stats; e_modes; e_digests; e_quality }

(* ---------- file I/O ---------- *)

let entry_to_string e = Json.to_string (entry_to_json e)

let header_status path =
  (* [`Fresh] when the file is absent or empty (write a new header),
     [`Ok] when a valid MKCLEDG1 header is already in place. *)
  match open_in_bin path with
  | exception Sys_error _ -> Ok `Fresh
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len = 0 then Ok `Fresh
          else if len < 16 then
            Error (Truncated (Printf.sprintf "%d bytes, need 16 for the header" len))
          else begin
            let head = Bytes.create 16 in
            really_input ic head 0 16;
            let got_magic = Bytes.sub_string head 0 8 in
            if not (String.equal got_magic magic) then Error (Bad_magic got_magic)
            else
              let ver = Int64.to_int (Bytes.get_int64_le head 8) in
              if ver <> version then Error (Bad_version ver) else Ok `Ok
          end)

let append path e =
  let* status = header_status path in
  match open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path with
  | exception Sys_error msg -> Error (Io_error msg)
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          (match status with
          | `Fresh -> Telemetry.Framed.write_header oc ~magic ~version
          | `Ok -> ());
          Telemetry.Framed.write_frame oc (Bytes.of_string (entry_to_string e));
          Ok ())

let read path =
  match Telemetry.Framed.read_all ~magic ~version path with
  | Error e -> Error (of_telemetry_error e)
  | Ok (payloads, torn) ->
      let torn = Option.map of_telemetry_error torn in
      let rec go i acc = function
        | [] -> Ok { entries = List.rev acc; torn }
        | p :: rest -> (
            match Json.parse (Bytes.to_string p) with
            | Error msg -> Error (Malformed (Printf.sprintf "record %d: %s" i msg))
            | Ok j -> (
                match entry_of_json j with
                | Error msg -> Error (Malformed (Printf.sprintf "record %d: %s" i msg))
                | Ok e -> go (i + 1) (e :: acc) rest))
      in
      go 0 [] payloads
