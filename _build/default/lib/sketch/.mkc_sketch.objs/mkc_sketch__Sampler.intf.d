lib/sketch/sampler.mli: Mkc_hashing
