examples/quickstart.mli:
