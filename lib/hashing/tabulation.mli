(** Simple tabulation hashing (Thorup–Zhang [39]).

    The key is split into 8-bit characters, each indexing a table of
    random 64-bit words which are XORed together.  Simple tabulation is
    3-wise independent and behaves like full randomness for many
    streaming applications (Patrascu–Thorup); the paper cites
    tabulation-based hashing as one of the F2-heavy-hitter
    implementations [39].  We use it as a fast full-width mixer for KMV
    and HyperLogLog, where empirical uniformity matters more than proof
    obligations.

    Tables live in flat native-int arrays as 32-bit lo/hi halves, so
    the per-key path ({!hash_parts}) is allocation-free; {!hash64}
    recombines the halves into the same 64-bit values the historical
    boxed-table layout produced. *)

type t

val create : seed:Splitmix.t -> t
(** Fresh tables for 8 input characters (56-bit keys). *)

val hash_parts : t -> int -> unit
(** Allocation-free hot path: hash [x] and leave the 32-bit halves of
    the 64-bit hash readable via {!part_lo}/{!part_hi}.  The halves
    satisfy [hash64 t x = (part_hi lsl 32) lor part_lo]. *)

val part_lo : t -> int
(** Low 32 bits of the last {!hash_parts} result. *)

val part_hi : t -> int
(** High 32 bits of the last {!hash_parts} result. *)

val hash64 : t -> int -> int64
(** Full-width 64-bit hash of a non-negative int key. *)

val hash : t -> int -> int -> int
(** [hash t x r] reduces {!hash64} to [\[0, r)]. *)

val to_unit_float : t -> int -> float
(** [to_unit_float t x] maps the hash to a float in [\[0, 1)] —
    convenient for order statistics (KMV). *)

val words : t -> int
