test/test_props.ml: Array Fun List Mkc_core Mkc_coverage Mkc_hashing Mkc_sketch Mkc_stream Mkc_workload Printf QCheck QCheck_alcotest
