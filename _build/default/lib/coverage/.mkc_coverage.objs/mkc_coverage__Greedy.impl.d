lib/coverage/greedy.ml: Array Hashtbl List Mkc_stream
