type t = {
  depth : int;
  width : int;
  buckets : Mkc_hashing.Pairwise.t array;
  signs : Mkc_hashing.Poly_hash.t array;
  (* Row-major flat counters: row r bucket b lives at [r*width + b].
     One contiguous allocation instead of depth boxed rows — better
     locality on the per-edge path, and the whole sketch state is a
     single preallocated block. *)
  counters : int array;
}

let create ?(depth = 5) ~width ~seed () =
  if depth < 1 then invalid_arg "Count_sketch.create: depth must be >= 1";
  if width < 1 then invalid_arg "Count_sketch.create: width must be >= 1";
  {
    depth;
    width;
    buckets =
      Array.init depth (fun r ->
          Mkc_hashing.Pairwise.create ~range:width ~seed:(Mkc_hashing.Splitmix.fork seed (2 * r)));
    signs =
      Array.init depth (fun r ->
          Mkc_hashing.Poly_hash.create ~indep:4 ~range:2
            ~seed:(Mkc_hashing.Splitmix.fork seed ((2 * r) + 1)));
    counters = Array.make (depth * width) 0;
  }

let sign h x = if Mkc_hashing.Poly_hash.hash h x = 0 then 1 else -1

let add t i delta =
  let cs = t.counters in
  for r = 0 to t.depth - 1 do
    let b = Mkc_hashing.Pairwise.hash (Array.unsafe_get t.buckets r) i in
    let j = (r * t.width) + b in
    Array.unsafe_set cs j
      (Array.unsafe_get cs j + (sign (Array.unsafe_get t.signs r) i * delta))
  done

let add_batch t ids ~pos ~len ~delta =
  (* Row-outer loop: one row's bucket/sign hashes and counter range stay
     hot across the whole chunk.  Per-bucket integer additions commute,
     so the final counters equal per-item [add]'s. *)
  let cs = t.counters in
  for r = 0 to t.depth - 1 do
    let bh = t.buckets.(r) and sh = t.signs.(r) in
    let base = r * t.width in
    for i = pos to pos + len - 1 do
      let x = Array.unsafe_get ids i in
      let j = base + Mkc_hashing.Pairwise.hash bh x in
      Array.unsafe_set cs j (Array.unsafe_get cs j + (sign sh x * delta))
    done
  done

(* The canonical dump stays a depth x width matrix — checkpoint codecs
   and goldens predate the flat layout. *)
let dump t = Array.init t.depth (fun r -> Array.sub t.counters (r * t.width) t.width)

let load_state t rows =
  if
    Array.length rows <> t.depth
    || Array.exists (fun row -> Array.length row <> t.width) rows
  then Error "count_sketch: row shape mismatch"
  else begin
    Array.iteri (fun r row -> Array.blit row 0 t.counters (r * t.width) t.width) rows;
    Ok ()
  end

(* Every counter is a signed sum over the update stream — linear — so
   merging sketches with the same hashes is pointwise addition. *)
let merge_into ~dst src =
  if dst.depth <> src.depth || dst.width <> src.width then
    invalid_arg "Count_sketch.merge_into: shape mismatch";
  let d = dst.counters and s = src.counters in
  for j = 0 to (dst.depth * dst.width) - 1 do
    d.(j) <- d.(j) + s.(j)
  done

let estimate t i =
  let ests =
    Array.init t.depth (fun r ->
        let b = Mkc_hashing.Pairwise.hash t.buckets.(r) i in
        float_of_int (sign t.signs.(r) i * t.counters.((r * t.width) + b)))
  in
  Array.sort compare ests;
  if t.depth land 1 = 1 then ests.(t.depth / 2)
  else (ests.((t.depth / 2) - 1) +. ests.(t.depth / 2)) /. 2.0

let f2_estimate t =
  let per_row =
    Array.init t.depth (fun r ->
        let acc = ref 0.0 in
        for b = 0 to t.width - 1 do
          let c = float_of_int t.counters.((r * t.width) + b) in
          acc := !acc +. (c *. c)
        done;
        !acc)
  in
  Array.sort compare per_row;
  per_row.(t.depth / 2)

let width t = t.width

let words t =
  (t.depth * t.width)
  + Array.fold_left (fun acc h -> acc + Mkc_hashing.Pairwise.words h) 0 t.buckets
  + Array.fold_left (fun acc h -> acc + Mkc_hashing.Poly_hash.words h) 0 t.signs
