(* CLI contract tests: flag validation must fail with a named error on
   stderr and exit 2 — not cmdliner's generic usage failure (124) —
   and it must fire before any stream I/O, so a bad flag is reported
   even when the stream file is also wrong.

   These spawn the real binary (declared as a test dep in dune, so it
   is built and the relative path resolves from the test's cwd). *)

let mkc = "../bin/mkc.exe"

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec find i = i + lb <= ls && (String.sub s i lb = sub || find (i + 1)) in
  find 0

(* exit code + captured stderr of one mkc invocation *)
let run_capture args =
  let err = Filename.temp_file "mkc_cli" ".err" in
  Fun.protect
    ~finally:(fun () -> Sys.remove err)
    (fun () ->
      let cmd = Printf.sprintf "%s %s >/dev/null 2>%s" mkc args (Filename.quote err) in
      let code = Sys.command cmd in
      let ic = open_in err in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, s))

let expect_named_rejection cmd_args ~flag ~got =
  let code, stderr = run_capture cmd_args in
  checki (Printf.sprintf "%s: exit code" cmd_args) 2 code;
  checkb
    (Printf.sprintf "%s: stderr names the flag" cmd_args)
    true
    (contains ~sub:(flag ^ " must be a positive integer") stderr);
  checkb
    (Printf.sprintf "%s: stderr echoes the value" cmd_args)
    true
    (contains ~sub:(Printf.sprintf "(got %d)" got) stderr)

let test_estimate_flag_validation () =
  expect_named_rejection "estimate --stream nope.txt --chunk=0" ~flag:"--chunk" ~got:0;
  expect_named_rejection "estimate --stream nope.txt --chunk=-3" ~flag:"--chunk" ~got:(-3);
  expect_named_rejection "estimate --stream nope.txt --checkpoint-every=0"
    ~flag:"--checkpoint-every" ~got:0;
  expect_named_rejection "estimate --stream nope.txt --checkpoint-every=-8"
    ~flag:"--checkpoint-every" ~got:(-8);
  expect_named_rejection "estimate --stream nope.txt --metrics-cadence=0"
    ~flag:"--metrics-cadence" ~got:0;
  expect_named_rejection "estimate --stream nope.txt --metrics-cadence=-1"
    ~flag:"--metrics-cadence" ~got:(-1)

let test_report_flag_validation () =
  expect_named_rejection "report --stream nope.txt --chunk=-1" ~flag:"--chunk" ~got:(-1);
  expect_named_rejection "report --stream nope.txt --metrics-cadence=0"
    ~flag:"--metrics-cadence" ~got:0

let test_flag_check_precedes_stream_io () =
  (* Same missing stream without the bad flag: still exit 2, but the
     message is about the stream, proving the flag check above (not the
     missing file) produced the named error. *)
  let code, stderr = run_capture "estimate --stream nope.txt" in
  checki "missing stream is exit 2" 2 code;
  checkb "missing stream error is not the flag error" false
    (contains ~sub:"positive integer" stderr)

(* The stream files below are all "nope.txt" (missing): getting the
   windowed-flag message instead of the missing-file one proves the
   validation fires before any stream I/O. *)
let expect_rejection cmd_args ~msg =
  let code, stderr = run_capture cmd_args in
  checki (Printf.sprintf "%s: exit code" cmd_args) 2 code;
  checkb (Printf.sprintf "%s: stderr says %S" cmd_args msg) true (contains ~sub:msg stderr)

let test_windowed_flag_validation () =
  expect_rejection "estimate --stream nope.txt --window 4"
    ~msg:"--window requires --epoch-edges";
  expect_rejection "estimate --stream nope.txt --epoch-edges 10"
    ~msg:"--epoch-edges requires --window";
  expect_rejection "estimate --stream nope.txt --decay 0.5"
    ~msg:"--decay requires --window";
  expect_rejection "estimate --stream nope.txt --window 4 --epoch-edges 10 --decay 1.5"
    ~msg:"--decay must lie strictly between 0 and 1 (got 1.5)";
  expect_rejection "estimate --stream nope.txt --window 4 --epoch-edges 10 --decay 0"
    ~msg:"--decay must lie strictly between 0 and 1 (got 0)";
  expect_rejection "estimate --stream nope.txt --window 4 --epoch-edges 10 --domains 2"
    ~msg:"--window runs single-domain";
  expect_rejection
    "estimate --stream nope.txt --window 4 --epoch-edges 10 --checkpoint c.json"
    ~msg:"--checkpoint/--resume are not supported in windowed mode";
  expect_named_rejection "estimate --stream nope.txt --window 0 --epoch-edges 10"
    ~flag:"--window" ~got:0;
  expect_named_rejection "estimate --stream nope.txt --window 4 --epoch-edges=-2"
    ~flag:"--epoch-edges" ~got:(-2);
  (* report shares the same windowed-flag contract *)
  expect_rejection "report --stream nope.txt --window 4"
    ~msg:"--window requires --epoch-edges";
  expect_rejection "report --stream nope.txt --window 4 --epoch-edges 10 --decay 2"
    ~msg:"--decay must lie strictly between 0 and 1 (got 2)"

let test_sign_column_parse_error () =
  (* A bad sign token must be rejected with the 1-based line number and
     the offending token, exit 2 — not a crash, not a partial load. *)
  let path = Filename.temp_file "mkc_cli" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0 1\n0 2 2\n1 3\n";
      close_out oc;
      let code, stderr = run_capture (Printf.sprintf "estimate --stream %s" path) in
      checki "bad sign token is exit 2" 2 code;
      checkb "stderr names the line" true (contains ~sub:"malformed line 2" stderr);
      checkb "stderr names the token" true
        (contains ~sub:"sign token \"2\" is not +1 or -1" stderr);
      let oc = open_out path in
      output_string oc "0 1\n0 2 +1 9\n" ;
      close_out oc;
      let code, stderr = run_capture (Printf.sprintf "estimate --stream %s" path) in
      checki "extra field is exit 2" 2 code;
      checkb "stderr counts the fields" true
        (contains ~sub:"expected 2 or 3 fields, got 4" stderr))

let test_generate_churn_validation () =
  expect_rejection "generate -n 10 -m 4 -k 2 -o nope_out.txt --churn 1.5"
    ~msg:"--churn must lie in [0, 1) (got 1.5)";
  expect_rejection "generate -n 10 -m 4 -k 2 -o nope_out.txt --churn=-0.25"
    ~msg:"--churn must lie in [0, 1) (got -0.25)"

let suite =
  [
    Alcotest.test_case "estimate rejects non-positive cadence flags" `Quick
      test_estimate_flag_validation;
    Alcotest.test_case "report rejects non-positive cadence flags" `Quick
      test_report_flag_validation;
    Alcotest.test_case "flag validation precedes stream i/o" `Quick
      test_flag_check_precedes_stream_io;
    Alcotest.test_case "windowed flags reject misuse by name" `Quick
      test_windowed_flag_validation;
    Alcotest.test_case "sign column parse error names line and token" `Quick
      test_sign_column_parse_error;
    Alcotest.test_case "generate rejects out-of-range churn" `Quick
      test_generate_churn_validation;
  ]
