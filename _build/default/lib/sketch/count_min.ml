type t = {
  depth : int;
  width : int;
  buckets : Mkc_hashing.Pairwise.t array;
  counters : int array array;
}

let create ?(depth = 5) ~width ~seed () =
  if depth < 1 then invalid_arg "Count_min.create: depth must be >= 1";
  if width < 1 then invalid_arg "Count_min.create: width must be >= 1";
  {
    depth;
    width;
    buckets =
      Array.init depth (fun r ->
          Mkc_hashing.Pairwise.create ~range:width ~seed:(Mkc_hashing.Splitmix.fork seed r));
    counters = Array.init depth (fun _ -> Array.make width 0);
  }

let add t i delta =
  for r = 0 to t.depth - 1 do
    let b = Mkc_hashing.Pairwise.hash t.buckets.(r) i in
    t.counters.(r).(b) <- t.counters.(r).(b) + delta
  done

let estimate t i =
  let best = ref max_float in
  for r = 0 to t.depth - 1 do
    let b = Mkc_hashing.Pairwise.hash t.buckets.(r) i in
    best := min !best (float_of_int t.counters.(r).(b))
  done;
  !best

let words t =
  (t.depth * t.width)
  + Array.fold_left (fun acc h -> acc + Mkc_hashing.Pairwise.words h) 0 t.buckets
