type point = { at_edges : int; words : int; breakdown : (string * int) list }
type t = { cadence : int; mutable rev_points : point list }

let create ~cadence = { cadence; rev_points = [] }
let cadence t = t.cadence

let record t ~at_edges ~words ~breakdown =
  t.rev_points <- { at_edges; words; breakdown } :: t.rev_points

let points t = List.rev t.rev_points
let final t = match t.rev_points with [] -> None | p :: _ -> Some p
let peak_words t = List.fold_left (fun acc p -> max acc p.words) 0 t.rev_points
