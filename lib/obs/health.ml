type cmp = Gt | Lt

type kind =
  | Threshold of { track : string; cmp : cmp; limit : int }
  | Ratio_drift of { num : string; den : string; max_ppm : int }
  | Stall of { track : string; window : int }

type rule = { name : string; kind : kind; escalate : bool }

exception Violation of string

(* ---------- CLI syntax ---------- *)

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
       s

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let int_field what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "health rule: %s %S is not an integer" what s)

let ( let* ) = Result.bind

let parse spec =
  let spec, escalate =
    let n = String.length spec in
    if n > 0 && spec.[n - 1] = '!' then (String.sub spec 0 (n - 1), true) else (spec, false)
  in
  let* name, body =
    match split_once ~on:'=' spec with
    | Some (n, b) when valid_name n -> Ok (n, b)
    | Some (n, _) -> Error (Printf.sprintf "health rule: bad rule name %S" n)
    | None -> Error (Printf.sprintf "health rule %S: expected name=spec" spec)
  in
  let* kind =
    match split_once ~on:':' body with
    | Some ("stall", rest) -> (
        match split_once ~on:':' rest with
        | Some (track, w) ->
            let* window = int_field "stall window" w in
            if window < 1 then Error "health rule: stall window must be >= 1"
            else Ok (Stall { track; window })
        | None -> Error (Printf.sprintf "health rule %S: expected stall:track:window" name))
    | _ -> (
        let op_gt = split_once ~on:'>' body and op_lt = split_once ~on:'<' body in
        match (op_gt, op_lt) with
        | Some (lhs, rhs), None -> (
            let* limit = int_field "limit" rhs in
            match split_once ~on:'/' lhs with
            | Some (num, den) -> Ok (Ratio_drift { num; den; max_ppm = limit })
            | None -> Ok (Threshold { track = lhs; cmp = Gt; limit }))
        | None, Some (lhs, rhs) ->
            let* limit = int_field "limit" rhs in
            if String.contains lhs '/' then
              Error "health rule: ratio rules only support '>'"
            else Ok (Threshold { track = lhs; cmp = Lt; limit })
        | _ ->
            Error
              (Printf.sprintf "health rule %S: expected track>limit, track<limit, num/den>ppm, or stall:track:window"
                 name))
  in
  Ok { name; kind; escalate }

let rule_to_string r =
  let body =
    match r.kind with
    | Threshold { track; cmp = Gt; limit } -> Printf.sprintf "%s>%d" track limit
    | Threshold { track; cmp = Lt; limit } -> Printf.sprintf "%s<%d" track limit
    | Ratio_drift { num; den; max_ppm } -> Printf.sprintf "%s/%s>%d" num den max_ppm
    | Stall { track; window } -> Printf.sprintf "stall:%s:%d" track window
  in
  Printf.sprintf "%s=%s%s" r.name body (if r.escalate then "!" else "")

(* ---------- evaluation ---------- *)

(* Track names resolved to staging indices once at engine creation. *)
type compiled =
  | C_threshold of { track : int; cmp : cmp; limit : int }
  | C_ratio of { num : int; den : int; max_ppm : int }
  | C_stall of { track : int; window : int; mutable prev : int; mutable run : int }

type entry = { rule : rule; compiled : compiled; counter : Registry.counter; mutable fired : int }

type engine = {
  series : Series.t;
  entries : entry array;
  on_event : name:string -> value:int -> unit;
  mutable seen_total : int;
}

let create ?registry ?(on_event = fun ~name:_ ~value:_ -> ()) series rules =
  let registry = match registry with Some r -> r | None -> Registry.global in
  let resolve track = Series.index_exn series track in
  let entries =
    List.map
      (fun rule ->
        let compiled =
          match rule.kind with
          | Threshold { track; cmp; limit } -> C_threshold { track = resolve track; cmp; limit }
          | Ratio_drift { num; den; max_ppm } ->
              C_ratio { num = resolve num; den = resolve den; max_ppm }
          | Stall { track; window } ->
              C_stall { track = resolve track; window; prev = 0; run = 0 }
        in
        let counter = Registry.counter registry ("health." ^ rule.name ^ ".violations") in
        { rule; compiled; counter; fired = 0 })
      rules
    |> Array.of_list
  in
  { series; entries; on_event; seen_total = 0 }

(* Evaluate one entry against the latest committed row; [Some msg]
   describes a violation. *)
let evaluate e ~first s =
  match e.compiled with
  | C_threshold { track; cmp; limit } ->
      let v = Series.last s track in
      let bad = match cmp with Gt -> v > limit | Lt -> v < limit in
      if bad then
        Some
          (Printf.sprintf "%s: %s = %d is %s %d"
             e.rule.name
             (Series.tracks s).(track)
             v
             (match cmp with Gt -> "over" | Lt -> "under")
             limit)
      else None
  | C_ratio { num; den; max_ppm } ->
      let n = Series.last s num and d = Series.last s den in
      if d <= 0 then None
      else
        let ppm = n * 1_000_000 / d in
        if ppm > max_ppm then
          Some
            (Printf.sprintf "%s: %s/%s = %d ppm is over %d ppm" e.rule.name
               (Series.tracks s).(num) (Series.tracks s).(den) ppm max_ppm)
        else None
  | C_stall c ->
      let v = Series.last s c.track in
      if first then begin
        c.prev <- v;
        c.run <- 0;
        None
      end
      else begin
        if v = c.prev then c.run <- c.run + 1 else c.run <- 0;
        c.prev <- v;
        if c.run >= c.window then
          Some
            (Printf.sprintf "%s: %s stuck at %d for %d samples" e.rule.name
               (Series.tracks s).(c.track) v c.run)
        else None
      end

let check t =
  let total = Series.total t.series in
  if total > t.seen_total then begin
    let first = t.seen_total = 0 in
    t.seen_total <- total;
    let escalated = ref None in
    Array.iter
      (fun e ->
        match evaluate e ~first t.series with
        | None -> ()
        | Some msg ->
            e.fired <- e.fired + 1;
            Registry.incr e.counter;
            t.on_event ~name:("health." ^ e.rule.name ^ ".violations") ~value:1;
            if e.rule.escalate && !escalated = None then escalated := Some msg)
      t.entries;
    match !escalated with None -> () | Some msg -> raise (Violation msg)
  end

let violations t =
  Array.to_list (Array.map (fun e -> (e.rule.name, e.fired)) t.entries)
