(* The per-table / per-figure experiment harness (DESIGN.md §4).

   Each [eN] function regenerates one artifact of the paper and prints a
   table; EXPERIMENTS.md records paper-claim vs measured for each. *)

open Exp_util
module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params
module Sm = Mkc_hashing.Splitmix

(* ------------------------------------------------------------------ *)
(* E1 — Table 1: space of the [here] rows vs α, with baseline context  *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 / Table 1 — space vs approximation factor (single pass, edge arrival)";
  let n = 8192 and m = 4096 and k = 64 in
  let inst = mk_few_large ~n ~m ~k ~seed:101 in
  row "instance: n=%d m=%d k=%d (planted OPT=%d)@." n m k inst.opt;
  row "@.%6s  %14s  %10s  %12s  %10s@." "α" "words(Est)" "m/α²" "estimate" "OPT/est";
  let alphas = [ 2.0; 4.0; 8.0; 16.0; 32.0 ] in
  let runs =
    List.map
      (fun alpha ->
        let r = run_estimate inst ~alpha ~seed:102 () in
        row "%6.0f  %14d  %10.0f  %12.0f  %10.2f@." alpha r.words
          (float_of_int m /. (alpha *. alpha))
          r.estimate (ratio ~opt:inst.opt r.estimate);
        (alpha, r))
      alphas
  in
  (* The Õ(m/α²) bound carries an additive α-independent polylog floor
     (the φ₂ = Ω̃(1) structures, samplers, L0 sketches).  Fit the decay
     exponent on the α-dependent part: words(α) − words(α_max). *)
  let floor_words = (List.assoc 32.0 runs).words in
  let pts =
    List.filter_map
      (fun (a, (r : est_run)) ->
        if a < 32.0 && r.words > floor_words then
          Some (a, float_of_int (r.words - floor_words))
        else None)
      runs
  in
  let slope = loglog_slope pts in
  row "@.fitted exponent of the α-dependent space: α^%.2f   (Theorem 3.1 predicts α^-2)@." slope;
  (* where the words live, at one α (post-pass state) *)
  row "@.component breakdown at α=8:";
  List.iter (fun (name, w) -> row " %s=%d" name w) (List.assoc 8.0 runs).breakdown;
  row "@.";
  subheader "baseline context (other Table 1 rows)";
  let sieve = Mkc_coverage.Sieve.create ~n ~k () in
  for i = 0 to m - 1 do
    Mkc_coverage.Sieve.feed sieve i (Ss.set inst.system i)
  done;
  let sv = Mkc_coverage.Sieve.result sieve in
  row "set-arrival sieve [9]-style: coverage=%d, words=%d (Õ(n) bitmaps; cannot run on edge arrival)@."
    sv.Mkc_coverage.Greedy.coverage
    (Mkc_coverage.Sieve.words sieve);
  let sg = Mkc_coverage.Swap_greedy.create ~n ~k in
  for i = 0 to m - 1 do
    Mkc_coverage.Swap_greedy.feed sg i (Ss.set inst.system i)
  done;
  let sgr = Mkc_coverage.Swap_greedy.result sg in
  row "set-arrival swap-greedy [37]-style: coverage=%d, words=%d (stores its k sets)@."
    sgr.Mkc_coverage.Greedy.coverage
    (Mkc_coverage.Swap_greedy.words sg);
  let mva = Mkc_coverage.Mv_set_arrival.create ~k ~seed:105 () in
  for i = 0 to m - 1 do
    Mkc_coverage.Mv_set_arrival.feed mva i (Ss.set inst.system i)
  done;
  let mvar = Mkc_coverage.Mv_set_arrival.result mva in
  row "set-arrival threshold-greedy [34]-style: coverage≈%.0f, words=%d (Õ(k/ε³), no n-dependence)@."
    mvar.Mkc_coverage.Mv_set_arrival.coverage
    (Mkc_coverage.Mv_set_arrival.words mva);
  let mv = Mkc_coverage.Mcgregor_vu.create ~m ~n ~k ~seed:103 () in
  Array.iter (Mkc_coverage.Mcgregor_vu.feed mv) (Ss.edge_stream ~seed:104 inst.system);
  let mvr = Mkc_coverage.Mcgregor_vu.finalize mv in
  row "edge-arrival O(1)-approx [34]-style: coverage≈%.0f, words=%d (Õ(m/ε²), the α→O(1) anchor)@."
    mvr.Mkc_coverage.Mcgregor_vu.coverage mvr.Mkc_coverage.Mcgregor_vu.words;
  let greedy = Mkc_coverage.Greedy.run inst.system ~k in
  row "offline greedy [35]: coverage=%d, words=%d (stores the entire input)@."
    greedy.coverage (Ss.total_size inst.system);
  (* the full-range corollary: below the switch the front-end delegates
     to the O(1)-approximation engine *)
  let fr = Mkc_core.Full_range.create (P.make ~m ~n ~k ~alpha:2.0 ~seed:107 ()) in
  Array.iter (Mkc_core.Full_range.feed fr) (Ss.edge_stream ~seed:108 inst.system);
  let frr = Mkc_core.Full_range.finalize fr in
  row "full-range front-end at α=2: engine=%s, estimate≈%.0f, words=%d@."
    (match frr.Mkc_core.Full_range.engine with
    | Mkc_core.Full_range.Constant_factor -> "O(1)-approx [12,34]"
    | Mkc_core.Full_range.Sketching -> "sketching")
    frr.Mkc_core.Full_range.estimate (Mkc_core.Full_range.words fr)

(* ------------------------------------------------------------------ *)
(* E2 — Figure 1 / Theorem 3.1: accuracy across instance families      *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2 / Fig 1 — EstimateMaxCover accuracy across instance families";
  let n = 4096 and m = 2048 in
  let instances =
    [
      mk_few_large ~n ~m ~k:16 ~seed:201;
      mk_many_small ~n ~m ~k:128 ~seed:202;
      mk_common_heavy ~n ~m ~k:16 ~seed:203;
      mk_uniform ~n ~m ~k:32 ~seed:204;
      mk_zipf ~n ~m ~k:32 ~seed:205;
      mk_graph ~n:2048 ~k:32 ~seed:206;
    ]
  in
  row "@.%-14s %6s %8s  %10s %10s %8s %10s  %-24s@." "family" "k" "α" "OPT*" "med-est"
    "OPT/est" "witness" "winner (median seed)";
  List.iter
    (fun inst ->
      List.iter
        (fun alpha ->
          (* median over three algorithm seeds (Thm 3.1 is a ≥3/4-probability
             guarantee, so per-seed noise is expected) *)
          let runs =
            List.map
              (fun seed -> run_estimate inst ~alpha ~seed ~report_witness:true ())
              [ 207; 1207; 2207 ]
            |> List.sort (fun (a : est_run) b -> compare a.estimate b.estimate)
          in
          let r = List.nth runs 1 in
          let witness = match r.witness_coverage with Some c -> string_of_int c | None -> "-" in
          row "%-14s %6d %8.0f  %10d %10.0f %8.2f %10s  %-24s@." inst.name inst.k alpha inst.opt
            r.estimate (ratio ~opt:inst.opt r.estimate) witness r.provenance)
        [ 4.0; 8.0 ])
    instances;
  row "@.(OPT* = planted optimum or greedy proxy; paper guarantee: OPT/est ≤ Õ(α), est ≤ OPT;@.";
  row " med-est = median estimate over three seeds, witness = that seed's reported-cover coverage)@."

(* ------------------------------------------------------------------ *)
(* E3 — Figure 3: multi-layered set sampling on common-heavy instances *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3 / Fig 3 — LargeCommon: per-level sampled coverage vs common-element mass";
  let n = 4096 and m = 2048 and k = 16 and alpha = 8.0 in
  let pl = Mkc_workload.Planted.common_heavy ~n ~m ~k ~beta:4 ~seed:301 in
  let p = P.make ~m ~n ~k ~alpha ~seed:302 () in
  let lc = Mkc_core.Large_common.create p ~seed:(Sm.create 303) in
  Array.iter (Mkc_core.Large_common.feed lc) (Ss.edge_stream ~seed:304 pl.system);
  row "@.%6s  %12s  %14s  %12s@." "β" "L0(C(Frnd))" "|Ucmn(βk)|" "threshold";
  List.iter
    (fun (beta, est) ->
      let ucmn =
        Ss.common_elements pl.system
          ~threshold:(max 1 (m / (beta * k)))
      in
      let thr = p.sigma *. float_of_int beta *. float_of_int n /. (4.0 *. alpha) in
      row "%6d  %12.0f  %14d  %12.0f@." beta est ucmn thr)
    (Mkc_core.Large_common.coverage_estimates lc);
  (match Mkc_core.Large_common.finalize lc with
  | Some o ->
      row "@.LargeCommon estimate: %.0f  (OPT proxy %d; Lemma 2.3: samples cover the common mass)@."
        o.estimate pl.planted_coverage
  | None -> row "@.LargeCommon: infeasible (unexpected on this instance)@.");
  row "words: %d (Õ(1) — Theorem 4.4)@." (Mkc_core.Large_common.words lc)

(* ------------------------------------------------------------------ *)
(* E4 — Figures 4/6/7: heavy-hitter route on planted-giant instances   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4 / Figs 4+6+7 — LargeSet: detecting supersets that carry the optimum";
  let n = 8192 and m = 1024 in
  row "@.%8s %8s  %12s %12s %12s  %8s@." "α" "giants" "OPT" "estimate" "witness-cov" "words";
  List.iter
    (fun (alpha, giants) ->
      let pl =
        Mkc_workload.Planted.planted ~n ~m ~num_planted:giants ~coverage_fraction:0.5
          ~noise_size:8 ~seed:401 ()
      in
      let k = max giants 4 in
      let p = P.make ~m ~n ~k ~alpha ~seed:402 () in
      let w = max 1 (min k (int_of_float alpha)) in
      let ls = Mkc_core.Large_set.create p ~w ~seed:(Sm.create 403) in
      Array.iter (Mkc_core.Large_set.feed ls) (Ss.edge_stream ~seed:404 pl.system);
      match Mkc_core.Large_set.finalize ls with
      | Some o ->
          let cov = Ss.coverage pl.system (o.witness ()) in
          row "%8.0f %8d  %12d %12.0f %12d  %8d@." alpha giants pl.planted_coverage o.estimate
            cov (Mkc_core.Large_set.words ls)
      | None ->
          row "%8.0f %8d  %12d %12s %12s  %8d@." alpha giants pl.planted_coverage "infeasible"
            "-" (Mkc_core.Large_set.words ls))
    [ (4.0, 1); (4.0, 4); (8.0, 1); (8.0, 8); (16.0, 1) ];
  row "@.(paper: when few sets contribute ≥ OPT/(sα) each, an Ω̃(α²/m)-contributing class@.";
  row " exists and F2-Contributing surfaces one of its supersets — Claims 4.11/4.13)@."

(* ------------------------------------------------------------------ *)
(* E5 — Figure 5: element sampling, storage and accuracy               *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5 / Fig 5 — SmallSet: sub-instance storage obeys Õ(m/α²) and greedy scales back";
  let n = 8192 and m = 4096 and k = 256 in
  row "@.%8s  %10s  %10s  %12s %12s %10s@." "α" "stored" "cap/inst" "OPT" "estimate" "budget κ";
  List.iter
    (fun alpha ->
      let pl = Mkc_workload.Planted.many_small ~n ~m ~k ~seed:501 in
      let p = P.make ~m ~n ~k ~alpha ~seed:502 () in
      let ss = Mkc_core.Small_set.create p ~seed:(Sm.create 503) in
      Array.iter (Mkc_core.Small_set.feed ss) (Ss.edge_stream ~seed:504 pl.system);
      let est =
        match Mkc_core.Small_set.finalize ss with
        | Some o -> Printf.sprintf "%.0f" o.estimate
        | None -> "declined" (* Lemma 4.23's filter refused to answer *)
      in
      row "%8.0f  %10d  %10d  %12d %12s %10d@." alpha
        (Mkc_core.Small_set.stored_pairs ss)
        (Mkc_core.Small_set.cap ss) pl.planted_coverage est
        (Mkc_core.Small_set.budget ss))
    [ 4.0; 8.0; 16.0; 32.0 ];
  row "@.(Lemma 4.21: stored pairs per instance = Õ(m/α²); Cor 4.19: a (k/α)-cover with@.";
  row " Ω̃(OPT/α) coverage survives set sampling; Lemma 2.5 scales the sample back)@."

(* ------------------------------------------------------------------ *)
(* E6 — Figure 2: which subroutine wins on which regime                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6 / Fig 2 — Oracle case analysis: winner per planted regime";
  let n = 4096 and m = 2048 in
  let regimes =
    [
      ("case I: common-heavy", (mk_common_heavy ~n ~m ~k:16 ~seed:601).system, 16);
      ( "case II: few large",
        (Mkc_workload.Planted.planted ~n ~m ~num_planted:2 ~coverage_fraction:0.5
           ~noise_size:8 ~seed:602 ())
          .system,
        4 );
      ("case III: many small", (mk_many_small ~n ~m ~k:256 ~seed:603).system, 256);
    ]
  in
  row "@.%-22s %14s %14s %14s@." "regime" "LargeCommon" "LargeSet" "SmallSet";
  List.iter
    (fun (name, sys, k) ->
      let p = P.make ~m ~n ~k ~alpha:8.0 ~seed:604 () in
      let o = Mkc_core.Oracle.create p ~seed:(Sm.create 605) in
      Array.iter (Mkc_core.Oracle.feed o) (Ss.edge_stream ~seed:606 sys);
      let cell = function
        | Some (out : Mkc_core.Solution.outcome) -> Printf.sprintf "%.0f" out.estimate
        | None -> "infeasible"
      in
      match Mkc_core.Oracle.finalize_all o with
      | [ lc; ls; ss ] -> row "%-22s %14s %14s %14s@." name (cell lc) (cell ls) (cell ss)
      | _ -> assert false)
    regimes;
  row "@.(the oracle returns the max; the paper's analysis predicts the diagonal dominates)@."

(* ------------------------------------------------------------------ *)
(* E7 — Lemma 3.5: universe reduction preserves coverage               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7 / Lemma 3.5 — universe reduction success probability";
  row "@.%8s %8s  %14s  %12s@." "z" "|S|" "Pr[|h(S)|≥z/4]" "mean |h(S)|/z";
  List.iter
    (fun z ->
      let s = Array.init (2 * z) (fun i -> i * 17) in
      let succ = ref 0 and img = ref 0.0 in
      let trials = 400 in
      for t = 0 to trials - 1 do
        let r = Mkc_core.Universe_reduction.create ~z ~seed:(Sm.create (700 + t)) in
        let sz = Mkc_core.Universe_reduction.image_size r s in
        if sz >= z / 4 then incr succ;
        img := !img +. (float_of_int sz /. float_of_int z)
      done;
      row "%8d %8d  %14.3f  %12.3f@." z (Array.length s)
        (float_of_int !succ /. float_of_int trials)
        (!img /. float_of_int trials))
    [ 32; 64; 256; 1024 ];
  row "@.(paper: probability ≥ 3/4 whenever |S| ≥ z ≥ 32 — measured rates should exceed it)@."

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 3.3: the DSJ lower-bound game                          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 / Thm 3.3 — one-way α-player set disjointness via Max 1-Cover";
  let m = 2048 in
  row "@.%8s %8s  %10s %14s %12s  %10s@." "α" "trials" "correct" "msg(words)" "m/α²"
    "exact(m)";
  List.iter
    (fun r_players ->
      let alpha = float_of_int r_players in
      let trials = 12 in
      let correct = ref 0 and msg = ref 0 in
      for t = 1 to trials do
        let case =
          if t mod 2 = 0 then Mkc_lowerbound.Disjointness.Yes
          else Mkc_lowerbound.Disjointness.No
        in
        let d = Mkc_lowerbound.Disjointness.generate ~r:r_players ~m ~case ~seed:(800 + t) () in
        let out =
          Mkc_lowerbound.Protocol.play d
            (Mkc_lowerbound.Protocol.coverage_distinguisher ~m ~alpha
               ~seed:(900 + (t * 13)) ())
        in
        if out.correct then incr correct;
        msg := max !msg out.message_words
      done;
      let exact =
        Mkc_lowerbound.Protocol.play
          (Mkc_lowerbound.Disjointness.generate ~r:r_players ~m
             ~case:Mkc_lowerbound.Disjointness.No ~seed:999 ())
          (Mkc_lowerbound.Protocol.exact_distinguisher ~m ~r:r_players)
      in
      row "%8d %8d  %7d/%2d %14d %12.0f  %10d@." r_players trials !correct trials !msg
        (float_of_int m /. (alpha *. alpha))
        exact.message_words)
    [ 8; 12; 16 ];
  subheader "the §1 L∞/F2-sketch distinguisher (the upper bound that inspired the algorithm)";
  row "%8s  %10s  %14s %12s@." "α" "correct" "msg(words)" "m/α²";
  List.iter
    (fun r_players ->
      let alpha = float_of_int r_players in
      let trials = 20 in
      let correct = ref 0 and msg = ref 0 in
      for t = 1 to trials do
        let case =
          if t mod 2 = 0 then Mkc_lowerbound.Disjointness.Yes
          else Mkc_lowerbound.Disjointness.No
        in
        let d = Mkc_lowerbound.Disjointness.generate ~r:r_players ~m ~case ~seed:(850 + t) () in
        let out =
          Mkc_lowerbound.Protocol.play d
            (fun () -> Mkc_lowerbound.Protocol.linf_distinguisher ~m ~alpha ~seed:(950 + t) ())
        in
        if out.correct then incr correct;
        msg := max !msg out.message_words
      done;
      row "%8d  %7d/%2d  %14d %12.0f@." r_players !correct trials !msg
        (float_of_int m /. (alpha *. alpha)))
    [ 4; 8; 16; 32 ];
  subheader "tightness frontier: shrink the L∞ sketch state and correctness must fail";
  let alpha = 8.0 and r_players = 8 in
  row "%14s  %12s  %10s   (m/α² = %.0f)@." "state-scale" "msg(words)" "correct"
    (float_of_int m /. (alpha *. alpha));
  List.iter
    (fun wf ->
      let trials = 20 in
      let correct = ref 0 and msg = ref 0 in
      for t = 1 to trials do
        let case =
          if t mod 2 = 0 then Mkc_lowerbound.Disjointness.Yes
          else Mkc_lowerbound.Disjointness.No
        in
        let d =
          Mkc_lowerbound.Disjointness.generate ~r:r_players ~m ~case ~seed:(1300 + t) ()
        in
        let out =
          Mkc_lowerbound.Protocol.play d (fun () ->
              Mkc_lowerbound.Protocol.linf_distinguisher
                ~phi_scale:(float_of_int wf)
                ~m ~alpha ~seed:(1400 + t) ())
        in
        if out.correct then incr correct;
        msg := max !msg out.message_words
      done;
      row "%13dx  %12d  %7d/%2d@." wf !msg !correct trials)
    [ 1; 4; 16; 64 ];
  row "@.(a correct α-approximate estimator distinguishes coverage α vs 1 — Claims 5.3/5.4 —@.";
  row " so by CKS its message must be Ω(m/α²); the exact player pays Θ(m):@.";
  row " correctness collapses exactly when the sketch width drops below the m/α² scale)@."

(* ------------------------------------------------------------------ *)
(* E9 — Table 2: parameter ablation                                    *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9 / Table 2 — parameter sensitivity";
  let n = 4096 and m = 2048 and k = 16 and alpha = 8.0 in
  let run_variants inst variants =
    row "@.%-22s  %10s %8s  %12s  %8s@." "variant" "estimate" "OPT/est" "words" "sec";
    List.iter
      (fun (name, p) ->
        let est = Mkc_core.Estimate.create p in
        let stream = Ss.edge_stream ~seed:903 inst.system in
        let t0 = Unix.gettimeofday () in
        Array.iter (Mkc_core.Estimate.feed est) stream;
        let r = Mkc_core.Estimate.finalize est in
        let t1 = Unix.gettimeofday () in
        row "%-22s  %10.0f %8.2f  %12d  %8.2f@." name r.estimate
          (ratio ~opt:inst.opt r.estimate)
          (Mkc_core.Estimate.words est) (t1 -. t0))
      variants
  in
  subheader "t, f, repeats on a planted-giant instance (the LargeSet knobs)";
  let inst =
    let pl =
      Mkc_workload.Planted.planted ~n ~m ~num_planted:1 ~coverage_fraction:0.5
        ~noise_size:8 ~seed:901 ()
    in
    { name = "one-giant"; system = pl.system; k = 4; opt = pl.planted_coverage }
  in
  let base = P.make ~m ~n ~k:4 ~alpha:4.0 ~seed:902 () in
  ignore k;
  ignore alpha;
  run_variants inst
    [
      ("baseline (practical)", base);
      ("t × 1/4", { base with t_elem = base.t_elem /. 4.0 });
      ("t × 4", { base with t_elem = base.t_elem *. 4.0 });
      ("f × 4", { base with f = base.f *. 4.0 });
      ("repeats 1", { base with oracle_repeats = 1; z_repeats = 1 });
      ("repeats 4", { base with oracle_repeats = 4; z_repeats = 3 });
      ("accept × 1/8", { base with accept_factor = base.accept_factor /. 8.0 });
    ];
  subheader "σ on a common-heavy instance (the LargeCommon acceptance knob)";
  let instc = mk_common_heavy ~n ~m ~k ~seed:904 in
  let basec = P.make ~m ~n ~k ~alpha ~seed:905 () in
  (* isolate LargeCommon: σ gates which sampling levels may answer
     (threshold σβ|U|/(4α) per level) — report estimate + passing levels *)
  row "@.%-22s  %16s %16s@." "variant" "LargeCommon est" "levels passing";
  List.iter
    (fun (name, p) ->
      let lc = Mkc_core.Large_common.create p ~seed:(Sm.create 906) in
      Array.iter (Mkc_core.Large_common.feed lc) (Ss.edge_stream ~seed:907 instc.system);
      let passing =
        Mkc_core.Large_common.coverage_estimates lc
        |> List.filter (fun (beta, est) ->
               est >= p.P.sigma *. float_of_int beta *. float_of_int p.P.u /. (4.0 *. alpha))
        |> List.length
      in
      let cell =
        match Mkc_core.Large_common.finalize lc with
        | Some o -> Printf.sprintf "%.0f" o.estimate
        | None -> "infeasible"
      in
      row "%-22s  %16s %16d@." name cell passing)
    [
      ("σ × 1/16 (lax)", { basec with sigma = basec.sigma /. 16.0 });
      ("baseline σ", basec);
      ("σ → 1 (strictest)", { basec with sigma = 1.0 });
      ("σ → 2 (over-strict)", { basec with sigma = 2.0 });
    ]

(* ------------------------------------------------------------------ *)
(* E10 — Theorems 2.10-2.12: sketch substrate accuracy                 *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10 / Thms 2.10-2.12 — sketch substrate accuracy";
  subheader "L0 estimators (Theorem 2.12 wants (1±1/2) in Õ(1) space)";
  row "%12s  %10s %10s %10s   %10s %10s %10s@." "true L0" "kmv" "bjkst" "hll" "w(kmv)"
    "w(bjkst)" "w(hll)";
  List.iter
    (fun truth ->
      let kmv = Mkc_sketch.Kmv.create ~seed:(Sm.create 1001) () in
      let bj = Mkc_sketch.L0_bjkst.create ~seed:(Sm.create 1002) () in
      let hll = Mkc_sketch.Hyperloglog.create ~seed:(Sm.create 1003) () in
      for x = 0 to truth - 1 do
        Mkc_sketch.Kmv.add kmv x;
        Mkc_sketch.L0_bjkst.add bj x;
        Mkc_sketch.Hyperloglog.add hll x
      done;
      row "%12d  %10.0f %10.0f %10.0f   %10d %10d %10d@." truth
        (Mkc_sketch.Kmv.estimate kmv)
        (Mkc_sketch.L0_bjkst.estimate bj)
        (Mkc_sketch.Hyperloglog.estimate hll)
        (Mkc_sketch.Kmv.words kmv) (Mkc_sketch.L0_bjkst.words bj)
        (Mkc_sketch.Hyperloglog.words hll))
    [ 100; 10_000; 1_000_000 ];
  subheader "F2-HeavyHitter recall (Theorem 2.10)";
  row "%8s %10s  %10s %12s@." "φ" "planted" "recalled" "words";
  List.iter
    (fun phi ->
      let recalled = ref 0 and planted = 5 in
      let hh = Mkc_sketch.F2_heavy_hitter.create ~phi ~seed:(Sm.create 1004) () in
      for id = 0 to planted - 1 do
        for _ = 1 to 4000 do
          Mkc_sketch.F2_heavy_hitter.add hh id 1
        done
      done;
      for i = 100 to 2099 do
        Mkc_sketch.F2_heavy_hitter.add hh i 3
      done;
      let ids = Mkc_sketch.F2_heavy_hitter.hits hh |> List.map (fun (h : Mkc_sketch.F2_heavy_hitter.hit) -> h.id) in
      for id = 0 to planted - 1 do
        if List.mem id ids then incr recalled
      done;
      row "%8.3f %10d  %10d %12d@." phi planted !recalled
        (Mkc_sketch.F2_heavy_hitter.words hh))
    [ 0.1; 0.05; 0.01 ];
  subheader "F2-Contributing detection (Theorem 2.11)";
  row "%12s %12s  %10s@." "class size" "freq each" "detected";
  List.iter
    (fun (size, freq) ->
      let detected = ref 0 in
      let trials = 10 in
      for t = 0 to trials - 1 do
        let c =
          Mkc_sketch.F2_contributing.create ~gamma:0.25 ~r:1024 ~indep:8
            ~seed:(Sm.create (1100 + t)) ()
        in
        for f = 1 to freq do
          ignore f;
          for i = 0 to size - 1 do
            Mkc_sketch.F2_contributing.add c (5000 + i) 1
          done
        done;
        (* background noise *)
        for i = 0 to 999 do
          Mkc_sketch.F2_contributing.add c i 1
        done;
        if
          List.exists
            (fun (h : Mkc_sketch.F2_contributing.hit) -> h.id >= 5000 && h.id < 5000 + size)
            (Mkc_sketch.F2_contributing.hits c)
        then incr detected
      done;
      row "%12d %12d  %7d/%2d@." size freq !detected trials)
    [ (1, 512); (16, 128); (128, 45); (512, 23) ];
  row "@.(one member of every γ-contributing class should surface w.h.p.)@.";
  subheader "ablation: tracker HH vs dyadic-search HH (two Thm 2.10 realizations)";
  row "%8s  %12s %12s  %12s %12s@." "φ" "tracker-rec" "dyadic-rec" "w(tracker)" "w(dyadic)";
  List.iter
    (fun phi ->
      let planted = 5 in
      let hh = Mkc_sketch.F2_heavy_hitter.create ~phi ~seed:(Sm.create 1200) () in
      let dy = Mkc_sketch.Dyadic_hh.create ~bits:12 ~phi ~seed:(Sm.create 1201) () in
      for id = 0 to planted - 1 do
        for _ = 1 to 4000 do
          Mkc_sketch.F2_heavy_hitter.add hh id 1;
          Mkc_sketch.Dyadic_hh.add dy id 1
        done
      done;
      for i = 100 to 2099 do
        Mkc_sketch.F2_heavy_hitter.add hh (i land 4095) 3;
        Mkc_sketch.Dyadic_hh.add dy (i land 4095) 3
      done;
      let rec_of ids = List.length (List.filter (fun id -> id < planted) ids) in
      let t_rec =
        rec_of (List.map (fun (h : Mkc_sketch.F2_heavy_hitter.hit) -> h.id)
                  (Mkc_sketch.F2_heavy_hitter.hits hh))
      in
      let d_rec =
        rec_of (List.map (fun (h : Mkc_sketch.Dyadic_hh.hit) -> h.id)
                  (Mkc_sketch.Dyadic_hh.hits dy))
      in
      row "%8.3f  %9d/%2d %9d/%2d  %12d %12d@." phi t_rec planted d_rec planted
        (Mkc_sketch.F2_heavy_hitter.words hh)
        (Mkc_sketch.Dyadic_hh.words dy))
    [ 0.1; 0.05; 0.01 ];
  row "(dyadic pays a log(universe) space factor for turnstile support and@.";
  row " recurrence-free identification — the paper's tracker suffices for insertion streams)@."

let all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ()
