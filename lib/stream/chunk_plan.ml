(* Per-chunk distinct-id grouping: the shared first pass of the
   chunk-deduplicated hash engine.

   [build] scans a chunk once and produces, in reusable scratch (no
   per-chunk allocation once the buffers have grown to a steady state):

   - the distinct set ids of the chunk, in first-appearance order, with
     per-set edge counts;
   - the distinct raw element values of the chunk, in first-appearance
     order;
   - for every edge of the chunk, the index of its set (resp. element)
     in those distinct tables.

   Downstream consumers evaluate each per-set or per-element hash
   decision once per distinct id and then replay the chunk edge by edge
   through O(1) array lookups, so the final sketch states are exactly
   the per-edge ones — only the evaluation schedule changes.

   Id -> slot mapping uses flat open-addressed (linear-probe) tables
   over preallocated int arrays, sized to a power of two >= 2·chunk_len
   so the load factor stays <= 1/2.  A stamp array versions the slots:
   a slot is live only if its stamp equals the current build's, so
   "clearing" between chunks is a single counter increment, not an
   O(slots) wipe.  The per-edge cost is two probes with no allocation —
   no Hashtbl buckets, no [Some j] per lookup. *)

type t = {
  mutable len : int;
  (* per-edge, chunk-relative: index into the distinct tables *)
  mutable set_idx : int array;
  mutable elt_idx : int array;
  (* distinct sets, first-appearance order *)
  mutable nsets : int;
  mutable sets : int array;
  mutable set_count : int array;
  (* distinct raw element values, first-appearance order *)
  mutable nelts : int;
  mutable elts : int array;
  (* open-addressed id -> distinct-slot tables, stamp-versioned *)
  mutable smask : int;
  mutable skey : int array;
  mutable sval : int array;
  mutable sstamp : int array;
  mutable emask : int;
  mutable ekey : int array;
  mutable eval : int array;
  mutable estamp : int array;
  mutable stamp : int;
}

let init_slots = 2048

let create () =
  {
    len = 0;
    set_idx = [||];
    elt_idx = [||];
    nsets = 0;
    sets = [||];
    set_count = [||];
    nelts = 0;
    elts = [||];
    smask = init_slots - 1;
    skey = Array.make init_slots 0;
    sval = Array.make init_slots 0;
    sstamp = Array.make init_slots 0;
    emask = init_slots - 1;
    ekey = Array.make init_slots 0;
    eval = Array.make init_slots 0;
    estamp = Array.make init_slots 0;
    stamp = 0;
  }

(* Pre-size every buffer for [chunk]-edge builds so the first windows of
   a run pay no growth reallocation — the pool driver's double-buffered
   scratch pair is created at the window width once per run. *)
let rec pow2_at_least' n acc = if acc >= n then acc else pow2_at_least' n (acc * 2)

let create_sized ~chunk =
  if chunk < 1 then invalid_arg "Chunk_plan.create_sized: chunk must be >= 1";
  let t = create () in
  let slots = pow2_at_least' (2 * chunk) init_slots in
  t.set_idx <- Array.make chunk 0;
  t.elt_idx <- Array.make chunk 0;
  t.sets <- Array.make chunk 0;
  t.set_count <- Array.make chunk 0;
  t.elts <- Array.make chunk 0;
  t.smask <- slots - 1;
  t.skey <- Array.make slots 0;
  t.sval <- Array.make slots 0;
  t.sstamp <- Array.make slots 0;
  t.emask <- slots - 1;
  t.ekey <- Array.make slots 0;
  t.eval <- Array.make slots 0;
  t.estamp <- Array.make slots 0;
  t

let ensure a n = if Array.length a >= n then a else Array.make (max n (2 * Array.length a)) 0

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let[@inline] mix x = (x * 0x2545_F491_4F6C_DD1D) lsr 17

let build t edges ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Array.length edges then
    invalid_arg "Chunk_plan.build: bad slice";
  t.len <- len;
  t.set_idx <- ensure t.set_idx len;
  t.elt_idx <- ensure t.elt_idx len;
  t.sets <- ensure t.sets len;
  t.set_count <- ensure t.set_count len;
  t.elts <- ensure t.elts len;
  (* Distinct counts are bounded by the chunk length, so power-of-two
     slots >= 2·len keeps the load factor under 1/2 with no mid-chunk
     rehash. *)
  let slots = pow2_at_least (2 * max 1 len) init_slots in
  if slots - 1 > t.smask then begin
    t.smask <- slots - 1;
    t.skey <- Array.make slots 0;
    t.sval <- Array.make slots 0;
    t.sstamp <- Array.make slots 0;
    t.emask <- slots - 1;
    t.ekey <- Array.make slots 0;
    t.eval <- Array.make slots 0;
    t.estamp <- Array.make slots 0;
    t.stamp <- 0
  end;
  t.nsets <- 0;
  t.nelts <- 0;
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let smask = t.smask and skey = t.skey and sval = t.sval and sstamp = t.sstamp in
  let emask = t.emask and ekey = t.ekey and eval = t.eval and estamp = t.estamp in
  for i = 0 to len - 1 do
    let (e : Edge.t) = Array.unsafe_get edges (pos + i) in
    (* set id -> distinct slot *)
    let s = ref (mix e.set land smask) in
    while
      Array.unsafe_get sstamp !s = stamp && Array.unsafe_get skey !s <> e.set
    do
      s := (!s + 1) land smask
    done;
    let sj =
      if Array.unsafe_get sstamp !s = stamp then begin
        let j = Array.unsafe_get sval !s in
        t.set_count.(j) <- t.set_count.(j) + 1;
        j
      end
      else begin
        let j = t.nsets in
        Array.unsafe_set sstamp !s stamp;
        Array.unsafe_set skey !s e.set;
        Array.unsafe_set sval !s j;
        t.sets.(j) <- e.set;
        t.set_count.(j) <- 1;
        t.nsets <- j + 1;
        j
      end
    in
    (* raw element value -> distinct slot *)
    let p = ref (mix e.elt land emask) in
    while
      Array.unsafe_get estamp !p = stamp && Array.unsafe_get ekey !p <> e.elt
    do
      p := (!p + 1) land emask
    done;
    let ej =
      if Array.unsafe_get estamp !p = stamp then Array.unsafe_get eval !p
      else begin
        let j = t.nelts in
        Array.unsafe_set estamp !p stamp;
        Array.unsafe_set ekey !p e.elt;
        Array.unsafe_set eval !p j;
        t.elts.(j) <- e.elt;
        t.nelts <- j + 1;
        j
      end
    in
    t.set_idx.(i) <- sj;
    t.elt_idx.(i) <- ej
  done

let len t = t.len
let num_sets t = t.nsets
let num_elts t = t.nelts

(* Direct array access for hot loops; the first [num_sets] (resp.
   [num_elts], [len]) entries are valid for the current chunk. *)
let sets t = t.sets
let set_counts t = t.set_count
let elts t = t.elts
let set_index t = t.set_idx
let elt_index t = t.elt_idx

let words t =
  Array.length t.set_idx + Array.length t.elt_idx + Array.length t.sets
  + Array.length t.set_count + Array.length t.elts
  + (3 * (t.smask + 1))
  + (3 * (t.emask + 1))
