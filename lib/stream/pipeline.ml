let default_chunk = 65536

(* Pipeline-level instruments (global registry).  All writes are gated
   on [Registry.enabled], so the disabled path costs one load+branch per
   chunk.  [sink_feed_edges] counts edge×sink feed work, which is the
   quantity preserved between the sequential and domain-parallel
   drivers (every driver makes exactly one chunking pass over the
   stream; the parallel one merely widens its chunks and fans the sinks
   out per chunk). *)
module Obs = struct
  let r = Mkc_obs.Registry.global
  let chunks = Mkc_obs.Registry.counter r "pipeline.chunks"
  let edges = Mkc_obs.Registry.counter r "pipeline.edges"
  let sink_feed_edges = Mkc_obs.Registry.counter r "pipeline.sink_feed_edges"
  let domain_busy_ns = Mkc_obs.Registry.gauge ~mode:`Sum r "pipeline.domain_busy_ns"
  let domains_used = Mkc_obs.Registry.gauge ~mode:`Max r "pipeline.domains"
end

let run_seq (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  Stream_source.iter (M.feed sink) src;
  M.finalize sink

let chunk_instrumented ~nsinks ~len ~cum f =
  let reg = Mkc_obs.Registry.enabled () and tr = Mkc_obs.Trace.enabled () in
  if reg || tr then begin
    let t0 = Mkc_obs.Clock.now_ns () in
    f ();
    let t1 = Mkc_obs.Clock.now_ns () in
    let dur = t1 - t0 in
    Mkc_obs.Span.record "pipeline.chunk" ~start_ns:t0 ~dur_ns:dur;
    if reg then begin
      Mkc_obs.Registry.incr Obs.chunks;
      Mkc_obs.Registry.add Obs.edges len;
      Mkc_obs.Registry.add Obs.sink_feed_edges (len * nsinks)
    end;
    if tr then begin
      (* Counter tracks for the timeline: cumulative edges ingested
         (per driver call, via [cum]) and this chunk's throughput. *)
      cum := !cum + len;
      Mkc_obs.Trace.counter "pipeline.edges" ~at_ns:t1 !cum;
      if dur > 0 then
        Mkc_obs.Trace.counter "pipeline.edges_per_sec" ~at_ns:t1
          (int_of_float (float_of_int len *. 1e9 /. float_of_int dur))
    end
  end
  else f ()

let run ?(chunk = default_chunk) (type s r) ((module M) : (s, r) Sink.sink) (sink : s) src =
  let plan = Chunk_plan.create () in
  let cum = ref 0 in
  Stream_source.chunks ~chunk
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks:1 ~len ~cum (fun () ->
          Chunk_plan.build plan edges ~pos ~len;
          M.feed_planned sink plan edges ~pos ~len))
    src;
  M.finalize sink

(* One plan per chunk, shared by every sink: the grouping pass is paid
   once per chunk, and each sink fans its per-distinct-id hash decisions
   out from the same tables. *)
let feed_all ?(chunk = default_chunk) ?(start = 0) sinks src =
  let nsinks = Array.length sinks in
  let plan = Chunk_plan.create () in
  let cum = ref 0 in
  Stream_source.chunks ~chunk ~start
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks ~len ~cum (fun () ->
          Chunk_plan.build plan edges ~pos ~len;
          Array.iter (fun s -> Sink.Any.feed_planned s plan edges ~pos ~len) sinks))
    src

let feed_all_parallel ?domains ?(chunk = default_chunk) ?(start = 0) sinks src =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let domains = min domains (Array.length sinks) in
  if domains <= 1 then feed_all ~chunk ~start sinks src
  else begin
    (* Round-robin sharding: sink i belongs to group (i mod domains), so
       no two workers ever touch the same mutable sink state.  The
       coordinator makes the single chunking pass over the stream and
       builds ONE Chunk_plan per chunk; the plan is read-only once built,
       so every group replays its sinks against the same tables.  Chunks
       are widened by the domain count: relative to the batched driver
       the grouping pass costs the same O(edges) total, but each distinct
       id's hash decisions are made once per [chunk × domains]-edge
       window instead of once per [chunk]-edge window — strictly less
       hash work, which is what lets this driver beat {!feed_all} even
       when the domains time-share a single core.  Group 0 runs on the
       coordinator's domain; groups 1.. each get a fresh worker domain
       per chunk (a handful of spawns per stream, joined before the next
       chunk so sinks never see chunks out of order). *)
    let nsinks = Array.length sinks in
    let dchunk = chunk * domains in
    let groups =
      Array.init domains (fun g ->
          let mine = ref [] in
          Array.iteri (fun i s -> if i mod domains = g then mine := s :: !mine) sinks;
          Array.of_list (List.rev !mine))
    in
    let plan = Chunk_plan.create () in
    let busy_ns = ref 0 in
    let cum = ref 0 in
    Stream_source.chunks ~chunk:dchunk ~start
      (fun edges ~pos ~len ->
        chunk_instrumented ~nsinks ~len ~cum (fun () ->
            Chunk_plan.build plan edges ~pos ~len;
            let feed_group mine =
              Array.iter (fun s -> Sink.Any.feed_planned s plan edges ~pos ~len) mine
            in
            let timed_group g =
              (* Busy time per worker per chunk: the span gives the
                 utilization split; durs are summed by the coordinator
                 (workers return theirs through [Domain.join]) into the
                 single `Sum gauge below. *)
              let t0 = Mkc_obs.Clock.now_ns () in
              feed_group groups.(g);
              let dur = Mkc_obs.Clock.now_ns () - t0 in
              Mkc_obs.Span.record "pipeline.domain" ~start_ns:t0 ~dur_ns:dur;
              dur
            in
            if Mkc_obs.Registry.enabled () || Mkc_obs.Trace.enabled () then begin
              let workers =
                Array.init (domains - 1) (fun i ->
                    Domain.spawn (fun () -> timed_group (i + 1)))
              in
              busy_ns := !busy_ns + timed_group 0;
              Array.iter (fun w -> busy_ns := !busy_ns + Domain.join w) workers
            end
            else begin
              let workers =
                Array.init (domains - 1) (fun i ->
                    Domain.spawn (fun () -> feed_group groups.(i + 1)))
              in
              feed_group groups.(0);
              Array.iter Domain.join workers
            end))
      src;
    if Mkc_obs.Registry.enabled () then begin
      Mkc_obs.Registry.set Obs.domain_busy_ns (float_of_int !busy_ns);
      Mkc_obs.Registry.set Obs.domains_used (float_of_int domains)
    end
  end

let run_parallel ?domains ?chunk ?start ~shards ~finalize src =
  feed_all_parallel ?domains ?chunk ?start shards src;
  finalize ()

(* {1 Crash-resume and shard-merge drivers} *)

let default_checkpoint_every = 8

let run_resumable (type s r) ?(chunk = default_chunk)
    ?(every = default_checkpoint_every) ?resume ?checkpoint ?on_save
    (codec : s Checkpoint.codec) ((module M) : (s, r) Sink.sink) (sink : s) src :
    (r, Checkpoint.error) result =
  if every < 1 then invalid_arg "Pipeline.run_resumable: every must be >= 1";
  let ( let* ) = Result.bind in
  let* start =
    match resume with
    | None -> Ok 0
    | Some path ->
        let* env =
          Checkpoint.load ~expect_kind:codec.kind ~expect_seed:codec.seed ~path ()
        in
        let* () =
          match codec.restore sink env.Checkpoint.payload with
          | Ok () -> Ok ()
          | Error msg -> Error (Checkpoint.Payload_rejected msg)
        in
        Ok env.Checkpoint.pos
  in
  let n = Stream_source.length src in
  let* () =
    if start > n then
      Error
        (Checkpoint.Malformed
           (Printf.sprintf "resume position %d beyond stream length %d" start n))
    else Ok ()
  in
  let save_at pos =
    match checkpoint with
    | None -> Ok ()
    | Some path ->
        let env =
          { Checkpoint.kind = codec.kind; pos; seed = codec.seed;
            payload = codec.encode sink }
        in
        let* bytes = Checkpoint.save ~path env in
        (match on_save with
        | Some f -> f ~pos ~bytes ~words:(Checkpoint.words_of_bytes bytes)
        | None -> ());
        Ok ()
  in
  let plan = Chunk_plan.create () in
  let cum = ref 0 in
  let chunks_done = ref 0 in
  let failure = ref None in
  (* Checkpoints land on chunk boundaries only: resuming then re-chunks
     the suffix on the same grid, so a resumed run's chunk schedule —
     and with it every schedule-dependent counter — matches the
     uninterrupted run's exactly. *)
  Stream_source.chunks ~chunk ~start
    (fun edges ~pos ~len ->
      chunk_instrumented ~nsinks:1 ~len ~cum (fun () ->
          Chunk_plan.build plan edges ~pos ~len;
          M.feed_planned sink plan edges ~pos ~len);
      incr chunks_done;
      let next = pos + len in
      if !failure = None && next < n && !chunks_done mod every = 0 then
        match save_at next with Ok () -> () | Error e -> failure := Some e)
    src;
  let* () = match !failure with None -> Ok () | Some e -> Error e in
  (* A final checkpoint at end-of-stream: the shard-merge workflow
     merges exactly these. *)
  let* () = save_at n in
  Ok (M.finalize sink)

let merge_shards ~merge first rest =
  Array.iter (fun s -> merge first s) rest;
  first

let run_sharded (type s r) ?(chunk = default_chunk) ~shards ~create ~merge
    ((module M) : (s, r) Sink.sink) src : r =
  if shards < 1 then invalid_arg "Pipeline.run_sharded: shards must be >= 1";
  let parts = Stream_source.partition ~shards src in
  let states =
    Array.map
      (fun part ->
        let s : s = create () in
        let plan = Chunk_plan.create () in
        let cum = ref 0 in
        Stream_source.chunks ~chunk
          (fun edges ~pos ~len ->
            chunk_instrumented ~nsinks:1 ~len ~cum (fun () ->
                Chunk_plan.build plan edges ~pos ~len;
                M.feed_planned s plan edges ~pos ~len))
          part;
        s)
      parts
  in
  let merged =
    merge_shards ~merge states.(0) (Array.sub states 1 (Array.length states - 1))
  in
  M.finalize merged
