(** LargeSet (Figures 4, 6 and 7): the heavy-hitter subroutine of the
    (α, δ, η)-oracle, covering case II — an optimal solution whose
    coverage is mostly carried by OPT_large, the sets contributing at
    least [z/(sα)] each (Definition 4.2).

    Pipeline per parallel repeat (Figure 7 runs O(log n) repeats so that
    at least one element sample avoids all w-common elements, App. B):

    + sample elements [L ⊆ U] at rate [ρ = t·s·α·η/|U|] (Step 1 of
      App. B);
    + hash sets into [q ≈ m/w] supersets of at most [w] sets each
      (Claim 4.9) — the coordinate vector is
      [v(i) = Σ_{S ∈ D_i} |S ∩ L|];
    + hunt a superset from a contributing class with two
      F2-Contributing instances — [Cntr_small] with
      [φ₁ = Ω̃(α²/m)] over classes of size ≤ [r₁ = s_L·α] (Case 1,
      Claim 4.11) and [Cntr_large] with [φ₂ = Ω̃(1)] over classes of
      size ≤ [r₂] (Case 2, Claim 4.13);
    + for contributing classes larger than [r₂], fall back to L0
      sketches on ~[q/r₂] directly sampled supersets (Figure 6, Case 2
      branch 2).

    A candidate superset's frequency estimate [ṽ] passes at threshold
    [thr₁/2] (resp. [thr₂/2]) and yields the estimate [2ṽ/(3f)] — the
    [f = Θ̃(1)] divisor discounts within-superset duplication of
    non-common elements (Claim 4.10) — scaled back to the full universe
    by [1/ρ].  Space Õ(m/α²) (Lemma B.7).

    The witness is [{S : h(S) = i*}] for the winning superset [i*]: at
    most [w ≤ k] sets, enumerable from the stored hash seed. *)

type t

val create : Params.t -> w:int -> seed:Mkc_hashing.Splitmix.t -> t
(** [w] is the superset size bound — Figure 2 passes [k] when
    [sα ≥ 2k] and [α] otherwise. *)

val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed} (repeats are
    driven repeat-outer for cache locality). *)

val feed_planned :
  t ->
  Mkc_stream.Chunk_plan.t ->
  red:int array ->
  Mkc_stream.Edge.t array ->
  pos:int ->
  len:int ->
  unit
(** Chunk-deduplicated ingestion: per repeat, every hash decision
    (element-sample membership, superset assignment, both F2C
    subsampling codes, fallback superset sampling) is evaluated once per
    distinct id of the plan via coefficient-major batched hashing, then
    the chunk replays in original edge order — order-sensitive state
    (F2C candidate tracking, fallback L0) per edge, linear CountSketch
    halves as one aggregated delta per distinct set.  Bit-for-bit
    equivalent to {!feed}.  [red.(j)] must hold the (reduced) element
    value of the plan's j-th distinct element. *)

val finalize : t -> Solution.outcome option
val words : t -> int

val words_breakdown : t -> (string * int) list
(** [("sampler", _); ("partition", _); ("f2_contributing", _);
    ("l0_fallback", _)] — summed over repeats. *)

val stats : t -> (string * int) list
(** Work counters: ["elem_sampler_evals"] (element-sample membership
    hash evaluations — per edge in per-edge mode, per distinct element
    per chunk in planned mode), ["fallback_sampler_evals"] (fallback
    superset-sampling evaluations — per in-sample edge vs per distinct
    set), ["f2_updates"] (logical F2-Contributing point updates,
    identical across modes), ["l0_updates"] (fallback L0 sketch updates,
    identical across modes) and ["hh_recoveries"] (candidate supersets
    recovered at finalize — the heavy hitters of Theorem 2.11's recovery
    step; populated by {!finalize}). *)

val thresholds : t -> float * float
(** [(thr1, thr2)] on the sampled-universe scale (diagnostics). *)

val encode : t -> Mkc_obs.Json.t
(** Mutable state per repeat (both F2-Contributing dumps, fallback L0
    sketches keyed by superset id, work counters); samplers/partitions
    are re-created from params + seed. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) result
(** Overlay an {!encode} payload onto a freshly {!create}d instance of
    the same params, [w] and seed (fallback sketches are re-created
    with their superset-id-derived seeds, so they hash identically). *)

val merge_into : dst:t -> t -> unit
(** Fold a shard in, repeat by repeat: F2-Contributing levels merge via
    their linear CountSketch halves + summed trackers, fallback L0s
    union exactly (same sid-derived seeds), work counters sum. *)
