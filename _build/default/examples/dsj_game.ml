(* The lower bound, played live (Section 5 / Theorem 3.3).

   α players each hold a set of items with the promise that the sets are
   either pairwise disjoint (Yes) or share exactly one common item (No).
   Player i runs a streaming algorithm over its own (set, element) pairs
   and mails the algorithm's memory to player i+1 — so distinguishing
   the cases one-way is exactly estimating Max 1-Cover within α, and the
   message size is the algorithm's space.

   Run with:  dune exec examples/dsj_game.exe *)

module Dsj = Mkc_lowerbound.Disjointness
module Proto = Mkc_lowerbound.Protocol

let play_round name maker trials ~m ~r =
  let correct = ref 0 and msg = ref 0 in
  for t = 1 to trials do
    let case = if t mod 2 = 0 then Dsj.Yes else Dsj.No in
    let d = Dsj.generate ~r ~m ~case ~seed:(2000 + t) () in
    let out = Proto.play d (maker t) in
    if out.Proto.correct then incr correct;
    msg := max !msg out.Proto.message_words
  done;
  Format.printf "%-34s %3d/%d correct, max message %6d words@." name !correct trials !msg

let () =
  let m = 4096 and r = 12 in
  let alpha = float_of_int r in
  Format.printf "α-player Set Disjointness: m=%d items, α=%d players@." m r;
  Format.printf "promise gap: optimal 1-cover coverage is %d (No) vs 1 (Yes)@.@." r;

  play_round "exact distinguisher (Θ(m))"
    (fun _ -> Proto.exact_distinguisher ~m ~r)
    10 ~m ~r;

  play_round "L∞/F2 sketch (O(m/α²), §1)"
    (fun t -> fun () -> Proto.linf_distinguisher ~m ~alpha ~seed:(3000 + t) ())
    10 ~m ~r;

  play_round "the paper's estimator (k = 1)"
    (fun t -> Proto.coverage_distinguisher ~m ~alpha ~seed:(4000 + t) ())
    10 ~m ~r;

  Format.printf
    "@.Theorem 3.3: any single-pass α-approximate estimator must carry Ω(m/α²) = %.0f words@."
    (float_of_int m /. (alpha *. alpha));
  Format.printf
    "across player boundaries; the L∞ sketch shows the bound is achievable, and the@.";
  Format.printf "exact player shows what giving up the α-approximation slack costs (Θ(m)).@."
