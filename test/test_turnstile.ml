(* Turnstile linearity law-suite: every linear sketch must satisfy
   S(x ++ −x) = S(∅) and merge(S(x), S(−x)) = S(∅) — compared on the
   canonical dumps AND on the serialized checkpoint bytes, so a stray
   tombstone or layout leak cannot hide.  A test-local composite sink
   of all the linear sketches then locks the same law through every
   pipeline driving mode (seq, batched, pool-parallel, crash-resume):
   edges inserted and later deleted leave states bit-for-bit identical
   to never having inserted them. *)

module Sm = Mkc_hashing.Splitmix
module Ams = Mkc_sketch.F2_ams
module Cs = Mkc_sketch.Count_sketch
module Hh = Mkc_sketch.F2_heavy_hitter
module F2c = Mkc_sketch.F2_contributing
module L0t = Mkc_sketch.L0_bjkst.Turnstile
module Edge = Mkc_stream.Edge
module Sink = Mkc_stream.Sink
module Pipe = Mkc_stream.Pipeline
module Ck = Mkc_stream.Checkpoint
module J = Ck.J
module Json = Mkc_obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- generators ---------- *)

(* A signed multiset: ids from a small universe so collisions and
   repeated touches (the deferred-accumulator hazards) actually occur;
   deltas ±1..3 so partial cancellation transits through zero. *)
let updates_gen =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (let* id = int_range 0 63 in
       let* mag = int_range 1 3 in
       let* neg = bool in
       return (id, if neg then -mag else mag)))

let updates_arb =
  QCheck.make
    ~print:(fun us ->
      String.concat ";" (List.map (fun (i, d) -> Printf.sprintf "(%d,%+d)" i d) us))
    updates_gen

let negate us = List.rev_map (fun (i, d) -> (i, -d)) us

(* ---------- per-sketch cancellation laws ---------- *)

(* One law closure per sketch (the state types differ, so each sketch
   gets its own monomorphic check): [cancel] feeds x then −x into one
   sketch, [merge] builds S(x) and S(−x) separately and merges, and
   [net] compares an interleaved churn stream against its survivors;
   all compare canonical dumps against a fresh sketch (or against the
   survivor run). *)
let per_sketch_laws ~seed ~law :
    ((int * int) list -> (int * int) list -> bool) list =
  let triple mk add merge dump xs ys =
    match law with
    | `Cancel ->
        let t = mk () in
        List.iter (fun (i, d) -> add t i d) xs;
        List.iter (fun (i, d) -> add t i d) (negate xs);
        dump t = dump (mk ())
    | `Merge ->
        let a = mk () and b = mk () in
        List.iter (fun (i, d) -> add a i d) xs;
        List.iter (fun (i, d) -> add b i d) (negate xs);
        merge ~dst:a b;
        dump a = dump (mk ())
    | `Net ->
        let a = mk () and b = mk () in
        List.iter (fun (i, d) -> add a i d) xs;
        List.iter (fun (i, d) -> add b i d) ys;
        dump a = dump b
  in
  [
    triple (fun () -> Ams.create ~seed:(Sm.create seed) ()) Ams.add Ams.merge_into Ams.dump;
    triple
      (fun () -> Cs.create ~width:32 ~seed:(Sm.create (seed + 1)) ())
      Cs.add Cs.merge_into Cs.dump;
    triple
      (fun () -> Hh.create ~phi:0.1 ~seed:(Sm.create (seed + 2)) ())
      Hh.add Hh.merge_into Hh.dump;
    triple
      (fun () -> F2c.create ~gamma:0.25 ~r:4 ~indep:4 ~seed:(Sm.create (seed + 3)) ())
      F2c.add F2c.merge_into F2c.dump;
    triple
      (fun () -> L0t.create ~seed:(Sm.create (seed + 4)) ())
      (fun t i d -> L0t.add t ~delta:d i)
      L0t.merge_into L0t.dump;
  ]

let prop_feed_cancellation =
  QCheck.Test.make ~name:"S(x ++ -x) = S(empty) for every linear sketch" ~count:60
    updates_arb (fun us ->
      List.for_all (fun law -> law us []) (per_sketch_laws ~seed:7 ~law:`Cancel))

let prop_merge_cancellation =
  QCheck.Test.make ~name:"merge(S(x), S(-x)) = S(empty) for every linear sketch"
    ~count:60 updates_arb (fun us ->
      List.for_all (fun law -> law us []) (per_sketch_laws ~seed:11 ~law:`Merge))

let prop_interleaved_cancellation =
  (* Deletions interleaved mid-stream, not appended: partial sums
     transit through zero while other ids are still live. *)
  QCheck.Test.make ~name:"interleaved insert/delete nets out per sketch" ~count:60
    updates_arb (fun us ->
      let interleaved =
        List.concat_map (fun (i, d) -> [ (i, d); ((i * 31) mod 64, 1); (i, -d) ]) us
      in
      let survivors = List.map (fun (i, _) -> ((i * 31) mod 64, 1)) us in
      List.for_all
        (fun law -> law interleaved survivors)
        (per_sketch_laws ~seed:13 ~law:`Net))

(* ---------- L0 turnstile specifics ---------- *)

let test_l0t_counts_not_membership () =
  let t = L0t.create ~seed:(Sm.create 21) () in
  L0t.add t 5;
  L0t.add t 5;
  L0t.add t ~delta:(-1) 5;
  checki "double insert, one delete: still live" 1 (L0t.occupancy t);
  L0t.add t ~delta:(-1) 5;
  checki "second delete removes" 0 (L0t.occupancy t);
  checkb "estimate zero when empty" true (L0t.estimate t = 0.0)

let test_l0t_load_state_rejects_zero_count () =
  let t = L0t.create ~seed:(Sm.create 22) () in
  match L0t.load_state t ~z:0 ~prunes:0 ~entries:[ (42L, 0, 0) ] with
  | Ok () -> Alcotest.fail "zero-count entry must be rejected"
  | Error msg -> checkb "names the zero count" true (String.length msg > 0)

let test_l0t_signed_feed_matches_set_variant_on_insertions () =
  (* All-positive streams below the prune threshold: the counting
     variant's live fingerprints are exactly the set variant's (same
     seed, same hash path).  Above it the two may prune at different
     times — the turnstile variant's estimate is then conservative by
     design, not bit-identical. *)
  (* Tabulation.create consumes the Splitmix state, so each sketch
     needs its own freshly-seeded generator to share the hash tables. *)
  let set = Mkc_sketch.L0_bjkst.create ~seed:(Sm.create 23) () in
  let cnt = L0t.create ~seed:(Sm.create 23) () in
  for x = 0 to 79 do
    Mkc_sketch.L0_bjkst.add set (x * 7919);
    L0t.add cnt (x * 7919)
  done;
  let z_s, _, entries_s = Mkc_sketch.L0_bjkst.dump set in
  let z_c, _, entries_c = L0t.dump cnt in
  checki "same level" z_s z_c;
  checkb "same live fingerprints" true
    (List.map (fun (fp, lvl) -> (fp, lvl)) entries_s
    = List.map (fun (fp, lvl, _) -> (fp, lvl)) entries_c)

(* ---------- the composite linear sink ---------- *)

module Lin = struct
  type t = {
    ams : Ams.t;
    cs : Cs.t;
    hh : Hh.t;
    f2c : F2c.t;
    l0 : L0t.t;
  }

  let create seed =
    let s = Sm.create seed in
    {
      ams = Ams.create ~seed:(Sm.fork s 0) ();
      cs = Cs.create ~width:32 ~seed:(Sm.fork s 1) ();
      hh = Hh.create ~phi:0.1 ~seed:(Sm.fork s 2) ();
      f2c = F2c.create ~gamma:0.25 ~r:4 ~indep:4 ~seed:(Sm.fork s 3) ();
      l0 = L0t.create ~seed:(Sm.fork s 4) ();
    }

  let key (e : Edge.t) = (e.set * 1_000_003) + e.elt

  let feed t (e : Edge.t) =
    let i = key e in
    Ams.add t.ams i e.sign;
    Cs.add t.cs i e.sign;
    Hh.add t.hh i e.sign;
    F2c.add t.f2c i e.sign;
    L0t.add t.l0 ~delta:e.sign i

  let dump t = (Ams.dump t.ams, Cs.dump t.cs, Hh.dump t.hh, F2c.dump t.f2c, L0t.dump t.l0)

  let words t =
    Ams.words t.ams + Cs.words t.cs + Hh.words t.hh + F2c.words t.f2c + L0t.words t.l0

  let sink : (t, unit) Sink.sink =
    (module struct
      type nonrec t = t
      type result = unit

      let feed = feed
      let feed_batch = Sink.batch_by_feed feed
      let feed_planned = Sink.batch_ignoring_plan feed_batch
      let finalize (_ : t) = ()
      let words = words
      let words_breakdown t = [ ("lin", words t) ]
    end)

  (* Small checkpoint codec over the canonical dumps — what "compared
     on serialized bytes" means below: two states are equal iff their
     encoded payloads are byte-identical. *)
  let hh_json (rows, counts, prunes) =
    Json.Object
      [ ("counts", J.int_pairs counts); ("prunes", Json.Int prunes); ("rows", J.int_matrix rows) ]

  let restore_hh_json hh j =
    let ( let* ) = Result.bind in
    let* rows = Result.bind (J.field "rows" j) J.to_int_matrix in
    let* counts = Result.bind (J.field "counts" j) J.to_int_pairs in
    let* prunes = J.int_field "prunes" j in
    Hh.load_state hh ~rows ~counts ~prunes

  let l0_json (z, prunes, entries) =
    Json.Object
      [
        ( "entries",
          Json.Array
            (List.map
               (fun (fp, lvl, c) -> Json.Array [ J.i64 fp; Json.Int lvl; Json.Int c ])
               entries) );
        ("prunes", Json.Int prunes);
        ("z", Json.Int z);
      ]

  let restore_l0_json l0 j =
    let ( let* ) = Result.bind in
    let* z = J.int_field "z" j in
    let* prunes = J.int_field "prunes" j in
    let* ejs = J.list_field "entries" j in
    let* entries =
      J.map_result
        (function
          | Json.Array [ fp; Json.Int lvl; Json.Int c ] ->
              Result.map (fun fp -> (fp, lvl, c)) (J.to_i64 fp)
          | _ -> J.err "l0 entry shape")
        ejs
    in
    L0t.load_state l0 ~z ~prunes ~entries

  let encode t =
    let hh_dumps = F2c.dump t.f2c in
    Json.Object
      [
        ("ams", J.int_array (Ams.dump t.ams));
        ("cs", J.int_matrix (Cs.dump t.cs));
        ("f2c", Json.Array (Array.to_list (Array.map hh_json hh_dumps)));
        ("hh", hh_json (Hh.dump t.hh));
        ("l0", l0_json (L0t.dump t.l0));
      ]

  let restore t j =
    let ( let* ) = Result.bind in
    let* ams = Result.bind (J.field "ams" j) J.to_int_array in
    let* () = Ams.load_state t.ams ams in
    let* cs = Result.bind (J.field "cs" j) J.to_int_matrix in
    let* () = Cs.load_state t.cs cs in
    let* () = Result.bind (J.field "hh" j) (restore_hh_json t.hh) in
    let* f2cs = J.list_field "f2c" j in
    let* levels =
      J.map_result
        (fun lj ->
          let ( let* ) = Result.bind in
          let* rows = Result.bind (J.field "rows" lj) J.to_int_matrix in
          let* counts = Result.bind (J.field "counts" lj) J.to_int_pairs in
          let* prunes = J.int_field "prunes" lj in
          Ok (rows, counts, prunes))
        f2cs
    in
    let* () = F2c.load_state t.f2c (Array.of_list levels) in
    Result.bind (J.field "l0" j) (restore_l0_json t.l0)

  let codec seed : t Ck.codec = { kind = "lin-test"; seed; encode; restore }

  let bytes t = Json.to_string (encode t)
end

(* ---------- signed streams through every driving mode ---------- *)

(* Deterministic churned stream: inserts over a small grid (48 distinct
   keys — below every sketch's prune threshold, where cancellation is
   exact; past a prune the sketches are deliberately conservative, not
   bit-identical), where every third edge is retracted a few positions
   later. *)
let churned_and_clean seed =
  let rng = Sm.create seed in
  let ins = ref [] and pending = Queue.create () in
  for i = 0 to 799 do
    let set = Sm.below rng 6 and elt = Sm.below rng 8 in
    let e = Edge.make ~set ~elt in
    ins := e :: !ins;
    if i mod 3 = 0 then Queue.add e pending;
    if (not (Queue.is_empty pending)) && Sm.below rng 2 = 0 then begin
      let d : Edge.t = Queue.pop pending in
      ins := Edge.signed ~sign:(-1) ~set:d.set ~elt:d.elt :: !ins
    end
  done;
  Queue.iter
    (fun (d : Edge.t) -> ins := Edge.signed ~sign:(-1) ~set:d.set ~elt:d.elt :: !ins)
    pending;
  let churned = Array.of_list (List.rev !ins) in
  (churned, Mkc_workload.Churn.live churned)

let drive_seq edges =
  let t = Lin.create 99 in
  let () = Pipe.run_seq Lin.sink t edges in
  t

let test_insert_delete_equals_never_inserted_seq () =
  let churned, clean = churned_and_clean 31 in
  let a = drive_seq (Mkc_stream.Stream_source.of_array churned) in
  let b = drive_seq (Mkc_stream.Stream_source.of_array clean) in
  checkb "dumps equal" true (Lin.dump a = Lin.dump b);
  checkb "serialized bytes equal" true (String.equal (Lin.bytes a) (Lin.bytes b));
  checki "words equal" (Lin.words a) (Lin.words b)

let test_batched_matches_seq_on_signed_stream () =
  let churned, _ = churned_and_clean 32 in
  let src = Mkc_stream.Stream_source.of_array churned in
  let reference = Lin.bytes (drive_seq src) in
  List.iter
    (fun chunk ->
      let t = Lin.create 99 in
      let () = Pipe.run ~chunk Lin.sink t src in
      checkb
        (Printf.sprintf "chunk=%d matches seq bytes" chunk)
        true
        (String.equal (Lin.bytes t) reference))
    [ 1; 7; 64; 1024 ]

let test_parallel_matches_seq_on_signed_stream () =
  let churned, clean = churned_and_clean 33 in
  let src = Mkc_stream.Stream_source.of_array churned in
  let reference = Lin.bytes (drive_seq src) in
  let clean_ref = Lin.bytes (drive_seq (Mkc_stream.Stream_source.of_array clean)) in
  let t1 = Lin.create 99 and t2 = Lin.create 99 in
  Pipe.feed_all_parallel ~domains:2 ~chunk:128
    [| Sink.pack Lin.sink t1; Sink.pack Lin.sink t2 |]
    src;
  checkb "pool shard 1 matches seq" true (String.equal (Lin.bytes t1) reference);
  checkb "pool shard 2 matches seq" true (String.equal (Lin.bytes t2) reference);
  checkb "pool result nets out deletions" true (String.equal (Lin.bytes t1) clean_ref)

let test_crash_resume_matches_seq_on_signed_stream () =
  let churned, _ = churned_and_clean 34 in
  let src = Mkc_stream.Stream_source.of_array churned in
  let reference = Lin.bytes (drive_seq src) in
  let path = Filename.temp_file "lin_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Crash after a prefix: drive a truncated stream with
         checkpointing on, then resume the full stream from the saved
         state. *)
      let prefix = Array.sub churned 0 300 in
      let t1 = Lin.create 99 in
      (match
         Pipe.run_resumable ~chunk:64 ~every:1 ~checkpoint:path (Lin.codec 99) Lin.sink t1
           (Mkc_stream.Stream_source.of_array prefix)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "checkpoint leg: %s" (Ck.error_to_string e));
      let t2 = Lin.create 99 in
      match Pipe.run_resumable ~chunk:64 ~resume:path (Lin.codec 99) Lin.sink t2 src with
      | Ok () -> checkb "resumed run matches seq bytes" true (String.equal (Lin.bytes t2) reference)
      | Error e -> Alcotest.failf "resume leg: %s" (Ck.error_to_string e))

let test_signed_all_positive_equals_unsigned () =
  (* Edge.signed ~sign:1 and Edge.make are the same edge — the signed
     entry point must not perturb any insertion-only pipeline state. *)
  let _, clean = churned_and_clean 35 in
  let as_signed = Array.map (fun (e : Edge.t) -> Edge.signed ~sign:1 ~set:e.set ~elt:e.elt) clean in
  let a = drive_seq (Mkc_stream.Stream_source.of_array clean) in
  let b = drive_seq (Mkc_stream.Stream_source.of_array as_signed) in
  checkb "identical bytes" true (String.equal (Lin.bytes a) (Lin.bytes b))

let test_v2_edge_file_drives_the_signed_sink () =
  (* The whole signed path end to end: churned edges → v2 binary file →
     load_auto → sink drive, bit-identical to the in-memory drive. *)
  let churned, clean = churned_and_clean 41 in
  let sets = Array.fold_left (fun acc (e : Edge.t) -> max acc (e.set + 1)) 0 churned in
  let elts = Array.fold_left (fun acc (e : Edge.t) -> max acc (e.elt + 1)) 0 churned in
  let path = Filename.temp_file "mkc_turnstile" ".mkce" in
  Fun.protect
    ~finally:(fun () -> Stdlib.Sys.remove path)
    (fun () ->
      (match Mkc_stream.Edge_file.write path churned ~n:elts ~m:sets with
      | Ok (_ : int) -> ()
      | Error e ->
          Alcotest.failf "write failed: %s" (Mkc_stream.Edge_file.error_to_string e));
      let src = Mkc_stream.Stream_source.load_auto path in
      let from_file = drive_seq src in
      let in_memory = drive_seq (Mkc_stream.Stream_source.of_array churned) in
      checkb "file drive = in-memory drive" true
        (String.equal (Lin.bytes from_file) (Lin.bytes in_memory));
      let never = drive_seq (Mkc_stream.Stream_source.of_array clean) in
      checkb "file drive nets out deletions" true
        (String.equal (Lin.bytes from_file) (Lin.bytes never)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_feed_cancellation; prop_merge_cancellation; prop_interleaved_cancellation ]
  @ [
      Alcotest.test_case "l0 turnstile counts multiplicity, not membership" `Quick
        test_l0t_counts_not_membership;
      Alcotest.test_case "l0 turnstile load_state rejects zero counts" `Quick
        test_l0t_load_state_rejects_zero_count;
      Alcotest.test_case "l0 turnstile matches set variant on insertions" `Quick
        test_l0t_signed_feed_matches_set_variant_on_insertions;
      Alcotest.test_case "insert-then-delete = never-inserted (seq, bytes+words)" `Quick
        test_insert_delete_equals_never_inserted_seq;
      Alcotest.test_case "batched signed drive matches seq bit-for-bit" `Quick
        test_batched_matches_seq_on_signed_stream;
      Alcotest.test_case "pool-parallel signed drive matches seq bit-for-bit" `Quick
        test_parallel_matches_seq_on_signed_stream;
      Alcotest.test_case "crash-resume signed drive matches seq bit-for-bit" `Quick
        test_crash_resume_matches_seq_on_signed_stream;
      Alcotest.test_case "all-positive signed feed = unsigned feed" `Quick
        test_signed_all_positive_equals_unsigned;
      Alcotest.test_case "v2 edge file drives the signed sink" `Quick
        test_v2_edge_file_drives_the_signed_sink;
    ]
