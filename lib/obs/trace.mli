(** Chrome [trace_event] / Perfetto JSON timeline exporter.

    Spans recorded through {!Span} (and counter samples pushed here
    directly) land in bounded per-domain ring buffers while tracing is
    enabled; {!to_string} renders them as a Chrome/Perfetto-loadable
    JSON array (open in [chrome://tracing] or [ui.perfetto.dev]).
    Recording costs one branch when disabled, and when enabled writes
    three ints into a preallocated domain-local ring without taking a
    lock (only the first use of a name on a domain touches the global
    intern table). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val ring_capacity : int
(** Events retained per domain; older events are overwritten. *)

(** {1 Recording} *)

val complete : string -> start_ns:int -> dur_ns:int -> unit
(** A finished span (trace_event phase ["X"]); no-op when disabled. *)

val counter : string -> at_ns:int -> int -> unit
(** A counter-track sample (phase ["C"]); no-op when disabled. *)

(** {1 Reading} — call at quiescence (no concurrent recorders). *)

type event =
  | Complete of { name : string; start_ns : int; dur_ns : int; tid : int }
  | Counter of { name : string; at_ns : int; value : int; tid : int }

val events : unit -> event list
(** Surviving events across all domains, sorted by (time, name, tid). *)

val clear : unit -> unit

(** {1 Export} *)

val to_json : ?events:event list -> unit -> Json.t
(** Chrome [trace_event] JSON array: [M] metadata naming the process
    and each thread, then the events with domain ids renumbered densely
    from 0 and timestamps in microseconds relative to the earliest
    event.  Deterministic given the events. *)

val to_string : ?events:event list -> unit -> string

val validate : string -> (int, string) result
(** Check that a string parses as a [trace_event] JSON array whose
    events carry the mandatory fields for their phase ([X]: non-negative
    [ts]/[dur]; [C]: [args.value]; [M]: [args.name]).  Returns the
    number of events. *)
