module type S = sig
  type t
  type result

  val feed : t -> Edge.t -> unit
  val feed_batch : t -> Edge.t array -> pos:int -> len:int -> unit
  val finalize : t -> result
  val words : t -> int
  val words_breakdown : t -> (string * int) list
end

type ('s, 'r) sink = (module S with type t = 's and type result = 'r)
type any = Any : ('s, 'r) sink * 's -> any

let pack m s = Any (m, s)

module Any = struct
  let feed (Any ((module M), s)) e = M.feed s e
  let feed_batch (Any ((module M), s)) edges ~pos ~len = M.feed_batch s edges ~pos ~len
  let words (Any ((module M), s)) = M.words s
  let words_breakdown (Any ((module M), s)) = M.words_breakdown s
end

let batch_by_feed feed s edges ~pos ~len =
  for i = pos to pos + len - 1 do
    feed s edges.(i)
  done

module Set_arrival = struct
  type 'r t = {
    feed_set : int -> int array -> unit;
    fin : unit -> 'r;
    words_of : unit -> int;
    mutable cur : int; (* current set id; -1 = no open set *)
    mutable buf : int array;
    mutable len : int;
  }

  let create ~feed_set ~finalize ~words =
    { feed_set; fin = finalize; words_of = words; cur = -1; buf = Array.make 16 0; len = 0 }

  let flush t =
    if t.cur >= 0 then t.feed_set t.cur (Array.sub t.buf 0 t.len);
    t.cur <- -1;
    t.len <- 0

  let push t elt =
    if t.len = Array.length t.buf then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    t.buf.(t.len) <- elt;
    t.len <- t.len + 1

  let feed t (e : Edge.t) =
    if e.set <> t.cur then begin
      flush t;
      t.cur <- e.set
    end;
    push t e.elt

  let feed_batch t edges ~pos ~len = batch_by_feed feed t edges ~pos ~len
  let finalize t =
    flush t;
    t.fin ()

  let words t = t.words_of ()

  let sink (type r) () : (r t, r) sink =
    (module struct
      type nonrec t = r t
      type result = r

      let feed = feed
      let feed_batch = feed_batch
      let finalize = finalize
      let words = words
      let words_breakdown t = [ ("set-arrival-adapter", words t) ]
    end)
end
