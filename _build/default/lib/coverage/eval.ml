let ratio ~opt ~achieved =
  if achieved <= 0 then infinity else float_of_int opt /. float_of_int achieved

let within_factor ~opt ~achieved ~factor =
  let opt = float_of_int opt in
  achieved >= (opt /. factor) -. 1e-9 && achieved <= (opt *. 1.01) +. 1e-9

let coverage_of = Mkc_stream.Set_system.coverage
