lib/sketch/count_sketch.mli: Mkc_hashing
