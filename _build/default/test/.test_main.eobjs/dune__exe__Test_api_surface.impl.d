test/test_api_surface.ml: Alcotest Array Filename Format Fun List Mkc_core Mkc_coverage Mkc_hashing Mkc_sketch Mkc_stream Mkc_workload String Sys
