(* Unit tests for the core algorithm building blocks: Params, universe
   reduction (Lemma 3.5), and the three oracle subroutines on planted
   regimes. *)

module Sm = Mkc_hashing.Splitmix
module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params
module Ur = Mkc_core.Universe_reduction
module Lc = Mkc_core.Large_common
module Ls = Mkc_core.Large_set
module Sms = Mkc_core.Small_set
module Oracle = Mkc_core.Oracle
module Sol = Mkc_core.Solution

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let feed_all feed state sys ~seed =
  Array.iter (feed state) (Ss.edge_stream ~seed sys)

(* ---------- Params ---------- *)

let test_params_practical_defaults () =
  let p = P.make ~m:1000 ~n:5000 ~k:20 ~alpha:8.0 () in
  checki "w = min(k, alpha)" 8 p.w;
  checkb "eta = 4" true (p.eta = 4.0);
  checkb "s keeps sα = w/2" true (Float.abs (P.s_alpha p -. 4.0) < 1e-9);
  checkb "sigma practical" true (p.sigma = 0.5);
  checki "universe starts at n" 5000 p.u

let test_params_paper_profile () =
  let p = P.make ~m:1000 ~n:5000 ~k:20 ~alpha:8.0 ~profile:P.Paper () in
  checkb "paper s is tiny" true (p.s < 1e-3);
  checkb "paper sigma is tiny" true (p.sigma < 1e-2);
  checkb "paper t is huge" true (p.t_elem > 1e3);
  checkb "paper f is polylog" true (p.f > 7.0);
  checkb "indep = Θ(log mn)" true (p.indep >= 20)

let test_params_validation () =
  Alcotest.check_raises "k > m rejected" (Invalid_argument "Params.make: k must be in [1, m]")
    (fun () -> ignore (P.make ~m:5 ~n:10 ~k:6 ~alpha:2.0 ()));
  Alcotest.check_raises "alpha < 1 rejected" (Invalid_argument "Params.make: alpha must be >= 1")
    (fun () -> ignore (P.make ~m:5 ~n:10 ~k:2 ~alpha:0.5 ()))

let test_params_with_universe () =
  let p = P.make ~m:100 ~n:1000 ~k:5 ~alpha:4.0 () in
  let p' = P.with_universe p 64 in
  checki "u replaced" 64 p'.u;
  checki "n kept" 1000 p'.n

(* ---------- Universe reduction (Lemma 3.5) ---------- *)

let test_reduction_range () =
  let r = Ur.create ~z:37 ~seed:(Sm.create 1) in
  for e = 0 to 1000 do
    let v = Ur.apply r e in
    checkb "in [0,z)" true (v >= 0 && v < 37)
  done;
  checki "z accessor" 37 (Ur.z r)

let test_reduction_deterministic () =
  let r = Ur.create ~z:100 ~seed:(Sm.create 2) in
  for e = 0 to 50 do
    checki "stable" (Ur.apply r e) (Ur.apply r e)
  done

let test_reduction_lemma_3_5 () =
  (* |S| >= z >= 32  =>  |h(S)| >= z/4 w.p. >= 3/4.  Empirically the
     success rate should be well above 3/4. *)
  let z = 64 in
  let s = Array.init 200 (fun i -> i * 3) in
  let successes = ref 0 in
  let trials = 200 in
  for t = 0 to trials - 1 do
    let r = Ur.create ~z ~seed:(Sm.create (1000 + t)) in
    if Ur.image_size r s >= z / 4 then incr successes
  done;
  checkb "Lemma 3.5 success rate >= 3/4" true (!successes >= 3 * trials / 4)

let test_reduction_never_increases_coverage () =
  let r = Ur.create ~z:16 ~seed:(Sm.create 3) in
  let s = Array.init 50 Fun.id in
  checkb "image smaller than set" true (Ur.image_size r s <= 50);
  checkb "image at most z" true (Ur.image_size r s <= 16)

let test_reduction_edge_mapping () =
  let r = Ur.create ~z:8 ~seed:(Sm.create 4) in
  let e = Mkc_stream.Edge.make ~set:5 ~elt:123 in
  let e' = Ur.apply_edge r e in
  checki "set untouched" 5 e'.set;
  checki "element hashed" (Ur.apply r 123) e'.elt

(* ---------- Solution ---------- *)

let test_solution_best () =
  let mk est = Some { Sol.estimate = est; witness = (fun () -> []); provenance = Sol.Trivial } in
  (match Sol.best [ mk 3.0; None; mk 7.0; mk 5.0 ] with
  | Some o -> checkb "max picked" true (o.Sol.estimate = 7.0)
  | None -> Alcotest.fail "expected an outcome");
  checkb "all none" true (Sol.best [ None; None ] = None)

(* ---------- LargeCommon (Figure 3) ---------- *)

let test_large_common_triggers_on_common_heavy () =
  let pl = Mkc_workload.Planted.common_heavy ~n:1024 ~m:512 ~k:16 ~beta:4 ~seed:5 in
  let p = P.make ~m:512 ~n:1024 ~k:16 ~alpha:8.0 ~seed:6 () in
  let lc = Lc.create p ~seed:(Sm.create 7) in
  feed_all Lc.feed lc pl.system ~seed:8;
  match Lc.finalize lc with
  | None -> Alcotest.fail "LargeCommon should trigger on a common-heavy instance"
  | Some o ->
      checkb "positive estimate" true (o.Sol.estimate > 0.0);
      (* never (grossly) overestimate OPT: estimate <= n *)
      checkb "bounded by universe" true (o.Sol.estimate <= 1024.0);
      (match o.Sol.provenance with
      | Sol.Large_common _ -> ()
      | _ -> Alcotest.fail "wrong provenance");
      let w = o.Sol.witness () in
      checkb "witness nonempty, <= k sets" true (List.length w >= 1 && List.length w <= 16)

let test_large_common_infeasible_on_sparse () =
  (* no common elements at all: every element in exactly one set *)
  let sys =
    Ss.create ~n:1024 ~m:128
      ~sets:(Array.init 128 (fun i -> Array.init 8 (fun j -> (8 * i) + j)))
  in
  let p = P.make ~m:128 ~n:1024 ~k:4 ~alpha:8.0 ~seed:9 () in
  let lc = Lc.create p ~seed:(Sm.create 10) in
  feed_all Lc.feed lc sys ~seed:11;
  (* with every frequency = 1, no β level should amass σβ|U|/α coverage
     from only βk sampled sets out of m=128... β=α=8: 8·4=32 sets of 8 elems
     = 256 elements ≥ σ·8·1024/8 = 512? No → infeasible expected. *)
  checkb "infeasible or small" true
    (match Lc.finalize lc with None -> true | Some o -> o.Sol.estimate <= 300.0)

let test_large_common_estimates_per_level () =
  let pl = Mkc_workload.Planted.common_heavy ~n:512 ~m:256 ~k:8 ~beta:2 ~seed:12 in
  let p = P.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:13 () in
  let lc = Lc.create p ~seed:(Sm.create 14) in
  feed_all Lc.feed lc pl.system ~seed:15;
  let ests = Lc.coverage_estimates lc in
  checkb "one estimate per level" true (List.length ests >= 2);
  (* multi-layered nesting: coverage grows with β *)
  let sorted_by_beta = List.sort compare ests in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1.0 && monotone rest
    | _ -> true
  in
  checkb "coverage non-decreasing in β" true (monotone sorted_by_beta)

(* ---------- Superset partition (Claims 4.9 / 4.10) ---------- *)

module Sp = Mkc_core.Superset_partition

let test_partition_members_consistent () =
  let sp = Sp.create ~m:200 ~q:16 ~indep:6 ~seed:(Sm.create 40) in
  for i = 0 to 15 do
    List.iter
      (fun s -> checki "member maps back" i (Sp.superset_of sp s))
      (Sp.members sp i)
  done

let test_partition_covers_all_sets () =
  let sp = Sp.create ~m:300 ~q:10 ~indep:6 ~seed:(Sm.create 41) in
  let total = List.init 10 (fun i -> List.length (Sp.members sp i)) |> List.fold_left ( + ) 0 in
  checki "every set in exactly one superset" 300 total

let test_partition_limit () =
  let sp = Sp.create ~m:1000 ~q:2 ~indep:4 ~seed:(Sm.create 42) in
  checkb "limit respected" true (List.length (Sp.members ~limit:7 sp 0) <= 7)

let test_partition_sizes_claim_4_9 () =
  (* q = m/w supersets: no superset should be grossly above w·polylog *)
  let m = 2048 and w = 8 in
  let q = m / w in
  let sp = Sp.create ~m ~q ~indep:8 ~seed:(Sm.create 43) in
  let max_size = ref 0 in
  for i = 0 to q - 1 do
    max_size := max !max_size (List.length (Sp.members sp i))
  done;
  checkb "max superset size = O(w log)" true (!max_size <= 4 * w)

let test_partition_duplication_claim_4_10 () =
  (* rare elements land at most f = Θ̃(1) times in one superset *)
  let sys = Mkc_workload.Random_inst.uniform ~n:2048 ~m:1024 ~set_size:8 ~seed:44 in
  let sp = Sp.create ~m:1024 ~q:128 ~indep:8 ~seed:(Sm.create 45) in
  let worst = ref 0 in
  (* count per (superset, element) multiplicity *)
  let tbl = Hashtbl.create 4096 in
  Array.iter
    (fun (e : Mkc_stream.Edge.t) ->
      let key = (Sp.superset_of sp e.set, e.elt) in
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key c;
      worst := max !worst c)
    (Ss.edges sys);
  (* with max element frequency ~8 and 128 supersets, duplication stays tiny *)
  checkb "within-superset duplication bounded" true (!worst <= 4)

(* ---------- LargeSet (Figures 4/6/7) ---------- *)

let test_large_set_finds_giant_set () =
  (* a single giant set carries the optimum: the classic case II *)
  let pl =
    Mkc_workload.Planted.planted ~n:2048 ~m:256 ~num_planted:1 ~coverage_fraction:0.5
      ~noise_size:8 ~seed:16 ()
  in
  let p = P.make ~m:256 ~n:2048 ~k:4 ~alpha:4.0 ~seed:17 () in
  let ls = Ls.create p ~w:4 ~seed:(Sm.create 18) in
  feed_all Ls.feed ls pl.system ~seed:19;
  match Ls.finalize ls with
  | None -> Alcotest.fail "LargeSet should find the giant set"
  | Some o ->
      let giant = List.hd pl.planted_sets in
      checkb "estimate within [OPT/32, 2·OPT]" true
        (o.Sol.estimate >= 1024.0 /. 32.0 && o.Sol.estimate <= 2.0 *. 1024.0);
      let w = o.Sol.witness () in
      checkb "witness includes a superset" true (List.length w >= 1);
      (* the winning superset should contain the giant set most of the time;
         verify its actual coverage is large *)
      let cov = Ss.coverage pl.system w in
      checkb "witness coverage >= OPT/16 (superset caught the giant)" true
        (cov >= 1024 / 16 || not (List.mem giant w))

let test_large_set_space_shrinks_with_alpha () =
  let mk alpha =
    let p = P.make ~m:4096 ~n:8192 ~k:64 ~alpha ~seed:20 () in
    let w = max 1 (min p.P.k (int_of_float alpha)) in
    Ls.words (Ls.create p ~w ~seed:(Sm.create 21))
  in
  let w2 = mk 2.0 and w8 = mk 8.0 and w32 = mk 32.0 in
  checkb "words decrease with alpha (m/α² scaling)" true (w2 > w8 && w8 > w32)

let test_large_set_thresholds_positive () =
  let p = P.make ~m:512 ~n:1024 ~k:8 ~alpha:4.0 () in
  let ls = Ls.create p ~w:4 ~seed:(Sm.create 22) in
  let t1, t2 = Ls.thresholds ls in
  checkb "thr1 < thr2" true (t1 < t2 && t1 > 0.0)

let test_large_set_flat_instance_case2 () =
  (* All supersets equally large: the Ω̃(1)-contributing class spans the
     whole partition (size q > r2), which is Figure 6's oversized-class
     case, handled by the L0 fallback over sampled supersets.  The
     subroutine must still return a sound, in-window estimate. *)
  let m = 512 and n = 4096 in
  let sys =
    Ss.create ~n ~m ~sets:(Array.init m (fun i -> Array.init 8 (fun j -> ((8 * i) + j) mod n)))
  in
  let p = P.make ~m ~n ~k:32 ~alpha:4.0 ~seed:60 () in
  let ls = Ls.create p ~w:4 ~seed:(Sm.create 61) in
  feed_all Ls.feed ls sys ~seed:62;
  match Ls.finalize ls with
  | None -> () (* declining is sound on a flat instance *)
  | Some o ->
      (* any superset covers ≤ w·8 = 32 elements; a k-cover ≤ 32·32 *)
      checkb "estimate ≤ |U|" true (o.Sol.estimate <= float_of_int n);
      checkb "estimate sound for flat supersets" true (o.Sol.estimate <= 2.0 *. 32.0 *. 32.0)

(* ---------- SmallSet (Figure 5) ---------- *)

let test_small_set_on_many_small () =
  let pl = Mkc_workload.Planted.many_small ~n:2048 ~m:512 ~k:128 ~seed:23 in
  let p = P.make ~m:512 ~n:2048 ~k:128 ~alpha:8.0 ~seed:24 () in
  let ss = Sms.create p ~seed:(Sm.create 25) in
  feed_all Sms.feed ss pl.system ~seed:26;
  match Sms.finalize ss with
  | None -> Alcotest.fail "SmallSet should produce an estimate in case III"
  | Some o ->
      checkb "estimate within [OPT/32, 2·OPT]" true
        (o.Sol.estimate >= float_of_int pl.planted_coverage /. 32.0
        && o.Sol.estimate <= 2.0 *. float_of_int pl.planted_coverage);
      let w = o.Sol.witness () in
      (* estimate is tied to budget κ; the witness may extend to k *)
      checkb "witness within k" true (List.length w <= 128);
      checkb "witness is a real partial cover" true (Ss.coverage pl.system w > 0)

let test_small_set_storage_capped () =
  let pl = Mkc_workload.Planted.many_small ~n:1024 ~m:1024 ~k:64 ~seed:27 in
  let p = P.make ~m:1024 ~n:1024 ~k:64 ~alpha:4.0 ~seed:28 () in
  let ss = Sms.create p ~seed:(Sm.create 29) in
  feed_all Sms.feed ss pl.system ~seed:30;
  (* Lemma 4.21: stored pairs are Õ(m/α²) per live instance; the module
     hard-caps each instance at [Sms.cap]. *)
  let guesses = 1 + Mkc_hashing.Hash_family.ceil_log2 4 in
  let instances = p.P.oracle_repeats * guesses in
  checkb "stored pairs bounded" true (Sms.stored_pairs ss <= Sms.cap ss * instances)

let test_small_set_budget_scales () =
  let p4 = P.make ~m:512 ~n:512 ~k:64 ~alpha:4.0 () in
  let p16 = P.make ~m:512 ~n:512 ~k:64 ~alpha:16.0 () in
  let b4 = Sms.budget (Sms.create p4 ~seed:(Sm.create 31)) in
  let b16 = Sms.budget (Sms.create p16 ~seed:(Sm.create 32)) in
  checkb "budget ~ k/α decreasing in α" true (b4 > b16);
  checkb "budget <= k" true (b4 <= 64)

(* ---------- Oracle (Figure 2) ---------- *)

let test_oracle_combines_subroutines () =
  let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:256 ~k:8 ~seed:33 in
  let p = P.make ~m:256 ~n:1024 ~k:8 ~alpha:4.0 ~seed:34 () in
  let o = Oracle.create p ~seed:(Sm.create 35) in
  feed_all Oracle.feed o pl.system ~seed:36;
  let all = Oracle.finalize_all o in
  checki "three slots" 3 (List.length all);
  match Oracle.finalize o with
  | None -> Alcotest.fail "oracle should not be infeasible here"
  | Some best ->
      List.iter
        (fun slot ->
          match slot with
          | Some s -> checkb "best is max" true (s.Sol.estimate <= best.Sol.estimate)
          | None -> ())
        all

let test_oracle_never_exceeds_universe () =
  for seed = 1 to 5 do
    let sys = Mkc_workload.Random_inst.uniform ~n:512 ~m:256 ~set_size:16 ~seed:(500 + seed) in
    let p = P.make ~m:256 ~n:512 ~k:8 ~alpha:4.0 ~seed:(600 + seed) () in
    let o = Oracle.create p ~seed:(Sm.create (700 + seed)) in
    feed_all Oracle.feed o sys ~seed:(800 + seed);
    match Oracle.finalize o with
    | None -> ()
    | Some out -> checkb "estimate <= |U|" true (out.Sol.estimate <= 512.0)
  done

let test_oracle_estimate_not_wild_overestimate () =
  (* the (α,δ,η)-oracle promise: output ≤ OPT (w.h.p.).  Allow 2x slack
     for the practical constants. *)
  for seed = 1 to 5 do
    let pl = Mkc_workload.Planted.few_large ~n:1024 ~m:256 ~k:8 ~seed:(900 + seed) in
    let opt = pl.planted_coverage in
    let p = P.make ~m:256 ~n:1024 ~k:8 ~alpha:4.0 ~seed:(1000 + seed) () in
    let o = Oracle.create p ~seed:(Sm.create (1100 + seed)) in
    feed_all Oracle.feed o pl.system ~seed:(1200 + seed);
    match Oracle.finalize o with
    | None -> ()
    | Some out -> checkb "estimate <= 2·OPT" true (out.Sol.estimate <= 2.0 *. float_of_int opt)
  done

let test_words_breakdown_sums () =
  let p = P.make ~m:512 ~n:512 ~k:8 ~alpha:4.0 ~seed:46 () in
  let est = Mkc_core.Estimate.create p in
  let breakdown = Mkc_core.Estimate.words_breakdown est in
  let sum = List.fold_left (fun a (_, w) -> a + w) 0 breakdown in
  checki "breakdown sums to words" (Mkc_core.Estimate.words est) sum;
  let has prefix = List.exists (fun (key, _) -> String.starts_with ~prefix key) breakdown in
  checkb "has the three subroutines" true
    (has "oracle.large_set." && has "oracle.large_common.")

let test_figure2_case_matrix () =
  (* the E6 winner matrix, asserted: each planted regime must make its
     predicted subroutine feasible and within the α-window *)
  let n = 2048 and m = 1024 in
  let window opt est = est > 0.0 && est <= 2.0 *. float_of_int opt in
  (* case I: common-heavy -> LargeCommon feasible *)
  let pl1 = Mkc_workload.Planted.common_heavy ~n ~m ~k:16 ~beta:4 ~seed:70 in
  let p1 = P.make ~m ~n ~k:16 ~alpha:8.0 ~seed:71 () in
  let o1 = Oracle.create p1 ~seed:(Sm.create 72) in
  feed_all Oracle.feed o1 pl1.system ~seed:73;
  (match Oracle.finalize_all o1 with
  | [ Some lc; _; _ ] ->
      checkb "case I: LargeCommon feasible and sound" true
        (window (Mkc_coverage.Greedy.run pl1.system ~k:16).coverage lc.Sol.estimate)
  | _ -> Alcotest.fail "case I: LargeCommon should be feasible");
  (* case II: one giant set -> LargeSet feasible, others may decline *)
  let pl2 =
    Mkc_workload.Planted.planted ~n ~m ~num_planted:1 ~coverage_fraction:0.5 ~noise_size:8
      ~seed:74 ()
  in
  let p2 = P.make ~m ~n ~k:4 ~alpha:4.0 ~seed:75 () in
  let o2 = Oracle.create p2 ~seed:(Sm.create 76) in
  feed_all Oracle.feed o2 pl2.system ~seed:77;
  (match Oracle.finalize_all o2 with
  | [ _; Some ls; _ ] ->
      checkb "case II: LargeSet feasible and sound" true
        (window pl2.planted_coverage ls.Sol.estimate)
  | _ -> Alcotest.fail "case II: LargeSet should be feasible");
  (* case III: many small -> SmallSet feasible *)
  let pl3 = Mkc_workload.Planted.many_small ~n ~m ~k:128 ~seed:78 in
  let p3 = P.make ~m ~n ~k:128 ~alpha:8.0 ~seed:79 () in
  let o3 = Oracle.create p3 ~seed:(Sm.create 80) in
  feed_all Oracle.feed o3 pl3.system ~seed:81;
  match Oracle.finalize_all o3 with
  | [ _; _; Some ss ] ->
      checkb "case III: SmallSet feasible and sound" true
        (window pl3.planted_coverage ss.Sol.estimate)
  | _ -> Alcotest.fail "case III: SmallSet should be feasible"

let test_space_fit_exponent () =
  (* static regression: the α-dependent state must decay ~quadratically *)
  let words alpha =
    let p = P.make ~m:16384 ~n:16384 ~k:128 ~alpha ~seed:82 () in
    Mkc_core.Estimate.words (Mkc_core.Estimate.create p)
  in
  let w4 = words 4.0 and w16 = words 16.0 and w64 = words 64.0 in
  let floor_w = w64 in
  let a = float_of_int (w4 - floor_w) and b = float_of_int (max 1 (w16 - floor_w)) in
  (* slope between α=4 and α=16 on the floored curve *)
  let slope = log (b /. a) /. log (16.0 /. 4.0) in
  checkb (Printf.sprintf "fit slope %.2f <= -1.3" slope) true (slope <= -1.3)

let suite =
  [
    Alcotest.test_case "params practical defaults" `Quick test_params_practical_defaults;
    Alcotest.test_case "params paper profile" `Quick test_params_paper_profile;
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "params with_universe" `Quick test_params_with_universe;
    Alcotest.test_case "reduction range" `Quick test_reduction_range;
    Alcotest.test_case "reduction deterministic" `Quick test_reduction_deterministic;
    Alcotest.test_case "reduction Lemma 3.5" `Quick test_reduction_lemma_3_5;
    Alcotest.test_case "reduction never increases coverage" `Quick
      test_reduction_never_increases_coverage;
    Alcotest.test_case "reduction edge mapping" `Quick test_reduction_edge_mapping;
    Alcotest.test_case "solution best" `Quick test_solution_best;
    Alcotest.test_case "large-common triggers (case I)" `Quick
      test_large_common_triggers_on_common_heavy;
    Alcotest.test_case "large-common infeasible on sparse" `Quick
      test_large_common_infeasible_on_sparse;
    Alcotest.test_case "large-common per-level estimates" `Quick
      test_large_common_estimates_per_level;
    Alcotest.test_case "partition members consistent" `Quick test_partition_members_consistent;
    Alcotest.test_case "partition covers all sets" `Quick test_partition_covers_all_sets;
    Alcotest.test_case "partition limit" `Quick test_partition_limit;
    Alcotest.test_case "partition sizes (Claim 4.9)" `Quick test_partition_sizes_claim_4_9;
    Alcotest.test_case "partition duplication (Claim 4.10)" `Quick
      test_partition_duplication_claim_4_10;
    Alcotest.test_case "estimate words breakdown" `Quick test_words_breakdown_sums;
    Alcotest.test_case "large-set finds giant set (case II)" `Quick test_large_set_finds_giant_set;
    Alcotest.test_case "large-set m/α² space scaling" `Quick test_large_set_space_shrinks_with_alpha;
    Alcotest.test_case "large-set thresholds" `Quick test_large_set_thresholds_positive;
    Alcotest.test_case "large-set flat instance (Fig 6 case 2)" `Quick
      test_large_set_flat_instance_case2;
    Alcotest.test_case "small-set on many-small (case III)" `Quick test_small_set_on_many_small;
    Alcotest.test_case "small-set storage capped" `Quick test_small_set_storage_capped;
    Alcotest.test_case "small-set budget scaling" `Quick test_small_set_budget_scales;
    Alcotest.test_case "Figure 2 case matrix" `Slow test_figure2_case_matrix;
    Alcotest.test_case "space fit exponent" `Quick test_space_fit_exponent;
    Alcotest.test_case "oracle combines subroutines" `Quick test_oracle_combines_subroutines;
    Alcotest.test_case "oracle bounded by universe" `Quick test_oracle_never_exceeds_universe;
    Alcotest.test_case "oracle no wild overestimate" `Quick
      test_oracle_estimate_not_wild_overestimate;
  ]
