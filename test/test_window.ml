(* Sliding-window / exponential-decay coverage (Windowed): the window
   invariant (window of W epochs ≡ a fresh run over the live suffix),
   the Decay monoid laws, the sieve swap comparator, and a seeded churn
   workload held to the paper band against greedy on the live suffix. *)

module Sm = Mkc_hashing.Splitmix
module Ss = Mkc_stream.Set_system
module Edge = Mkc_stream.Edge
module P = Mkc_core.Params
module Est = Mkc_core.Estimate
module W = Mkc_core.Windowed
module D = Mkc_core.Windowed.Decay
module Sol = Mkc_core.Solution
module Churn = Mkc_workload.Churn

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- Decay monoid laws (qcheck) ---------- *)

let acc_gen =
  QCheck.Gen.(
    let* v = float_range 0.0 100.0 in
    let* span = int_range 0 8 in
    return { D.v; span })

let lam_acc3_arb =
  QCheck.make
    ~print:(fun (l, a, b, c) ->
      Printf.sprintf "λ=%.3f (%.2f,%d) (%.2f,%d) (%.2f,%d)" l a.D.v a.D.span b.D.v
        b.D.span c.D.v c.D.span)
    QCheck.Gen.(
      let* l = float_range 0.05 0.95 in
      let* a = acc_gen in
      let* b = acc_gen in
      let* c = acc_gen in
      return (l, a, b, c))

let prop_decay_identity =
  QCheck.Test.make ~name:"decay identity is two-sided (exactly)" ~count:100 lam_acc3_arb
    (fun (lambda, a, _, _) ->
      let left = D.combine ~lambda D.identity a in
      let right = D.combine ~lambda a D.identity in
      (* λ⁰ = 1 and x + 0 = x are exact in floating point, so the
         identity laws hold bit-for-bit, not just approximately. *)
      left.D.v = a.D.v && left.D.span = a.D.span && right.D.v = a.D.v
      && right.D.span = a.D.span)

let close x y =
  let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
  Float.abs (x -. y) <= 1e-9 *. scale

let prop_decay_assoc =
  QCheck.Test.make ~name:"decay combine is associative" ~count:100 lam_acc3_arb
    (fun (lambda, a, b, c) ->
      let left = D.combine ~lambda (D.combine ~lambda a b) c in
      let right = D.combine ~lambda a (D.combine ~lambda b c) in
      close left.D.v right.D.v && left.D.span = right.D.span)

let prop_decay_fold_closed_form =
  (* Folding span-1 epochs oldest-first must equal the textbook
     exponential-decay sum Σᵢ λ^(age of i) · vᵢ. *)
  QCheck.Test.make ~name:"decay fold of span-1 epochs = Σ λ^age·v" ~count:100
    (QCheck.make
       ~print:(fun (l, vs) ->
         Printf.sprintf "λ=%.3f [%s]" l
           (String.concat ";" (List.map (Printf.sprintf "%.2f") vs)))
       QCheck.Gen.(
         let* l = float_range 0.05 0.95 in
         let* vs = list_size (int_range 0 12) (float_range 0.0 100.0) in
         return (l, vs)))
    (fun (lambda, vs) ->
      let folded =
        (List.fold_left
           (fun acc v -> D.combine ~lambda acc (D.of_estimate v))
           D.identity vs)
          .D.v
      in
      let n = List.length vs in
      let direct =
        List.fold_left ( +. ) 0.0
          (List.mapi (fun i v -> (Float.pow lambda (float_of_int (n - 1 - i)) *. v)) vs)
      in
      close folded direct)

(* ---------- the sieve swap comparator ---------- *)

let test_sieve_improves () =
  let open Mkc_coverage.Sieve in
  checkb "clears the (1+ε) bar" true (improves ~epsilon:0.1 ~champion:100.0 111.0);
  checkb "exactly (1+ε)·champion does not" false (improves ~epsilon:0.1 ~champion:100.0 110.0);
  checkb "below the bar does not" false (improves ~epsilon:0.1 ~champion:100.0 105.0);
  checkb "any positive beats a zero champion" true (improves ~champion:0.0 1.0);
  Alcotest.check_raises "epsilon must be positive"
    (Invalid_argument "Sieve.improves: epsilon must be positive") (fun () ->
      ignore (improves ~epsilon:0.0 ~champion:1.0 2.0 : bool))

(* ---------- window of W epochs ≡ fresh run on the live suffix ---------- *)

let params sys ~k ~alpha ~seed =
  P.make ~m:(Ss.m sys) ~n:(Ss.n sys) ~k ~alpha ~seed ()

(* Edge count of the live suffix for a [window]/[epoch_edges] run over
   [total] edges — the ring's full epochs plus the in-flight partial. *)
let live_suffix_len ~window ~epoch_edges ~total =
  let full = total / epoch_edges and in_ep = total mod epoch_edges in
  (min window full * epoch_edges) + in_ep

let check_window_equals_fresh ~window ~epoch_edges ~drop_partial sys ~k ~alpha ~seed =
  let p = params sys ~k ~alpha ~seed in
  let edges = Ss.edge_stream ~seed:(seed + 1) sys in
  let edges =
    if drop_partial then Array.sub edges 0 (Array.length edges / epoch_edges * epoch_edges)
    else edges
  in
  let total = Array.length edges in
  let w = W.create p ~window ~epoch_edges () in
  Array.iter (W.feed w) edges;
  let r = W.finalize w in
  let live = live_suffix_len ~window ~epoch_edges ~total in
  let fresh = Est.create p in
  Est.feed_batch fresh edges ~pos:(total - live) ~len:live;
  let f = Est.finalize fresh in
  checkb
    (Printf.sprintf "windowed %.2f = fresh-suffix %.2f" r.W.estimate f.Est.estimate)
    true
    (r.W.estimate = f.Est.estimate);
  (match (r.W.outcome, f.Est.outcome) with
  | Some a, Some b ->
      checkb "same witness ids" true (a.Sol.witness () = b.Sol.witness ());
      checkb "same provenance" true (a.Sol.provenance = b.Sol.provenance)
  | None, None -> ()
  | _ -> Alcotest.fail "outcome presence differs between windowed and fresh");
  checki "rolled epochs" (total / epoch_edges) r.W.rolled;
  checki "live epochs in the answer"
    (min window (total / epoch_edges) + if total mod epoch_edges > 0 then 1 else 0)
    r.W.epochs

let test_window_equals_fresh_suffix () =
  let sys = Mkc_workload.Random_inst.uniform ~n:300 ~m:48 ~set_size:10 ~seed:5 in
  check_window_equals_fresh ~window:3 ~epoch_edges:70 ~drop_partial:false sys ~k:6
    ~alpha:2.0 ~seed:7

let test_window_equals_fresh_suffix_exact_epochs () =
  (* Partial epoch empty: only the ring contributes to the answer. *)
  let sys = Mkc_workload.Random_inst.uniform ~n:300 ~m:48 ~set_size:10 ~seed:8 in
  check_window_equals_fresh ~window:2 ~epoch_edges:64 ~drop_partial:true sys ~k:6
    ~alpha:2.0 ~seed:9

let test_window_wider_than_stream () =
  (* Window wider than the whole run: the live suffix is the whole
     stream, so the windowed answer is the plain single-pass answer. *)
  let sys = Mkc_workload.Random_inst.uniform ~n:200 ~m:32 ~set_size:8 ~seed:10 in
  check_window_equals_fresh ~window:64 ~epoch_edges:50 ~drop_partial:false sys ~k:4
    ~alpha:2.0 ~seed:11

(* ---------- batched drive rolls at the same boundaries ---------- *)

let test_batched_drive_matches_per_edge () =
  let sys = Mkc_workload.Random_inst.uniform ~n:250 ~m:40 ~set_size:9 ~seed:13 in
  let p = params sys ~k:5 ~alpha:2.0 ~seed:14 in
  let edges = Ss.edge_stream ~seed:15 sys in
  let by_edge = W.create p ~window:3 ~epoch_edges:57 () in
  Array.iter (W.feed by_edge) edges;
  let a = W.finalize by_edge in
  List.iter
    (fun chunk ->
      let batched = W.create p ~window:3 ~epoch_edges:57 () in
      let total = Array.length edges in
      let pos = ref 0 in
      while !pos < total do
        let len = min chunk (total - !pos) in
        W.feed_batch batched edges ~pos:!pos ~len;
        pos := !pos + len
      done;
      let b = W.finalize batched in
      checkb
        (Printf.sprintf "chunk %d matches per-edge drive" chunk)
        true
        (a.W.estimate = b.W.estimate && a.W.rolled = b.W.rolled
        && a.W.epochs = b.W.epochs))
    [ 1; 13; 57; 64; 1024 ]

(* ---------- seeded churn workload vs greedy on the live suffix ---------- *)

(* Same empirical band as test_estimate: estimate ∈ [OPT/(slack·α), 2·OPT],
   with greedy's (1 − 1/e) guarantee bounding OPT from the live suffix. *)
let slack = 8.0

let test_churn_tracks_greedy_on_live_suffix () =
  let sys = Mkc_workload.Random_inst.uniform ~n:400 ~m:64 ~set_size:12 ~seed:17 in
  let base = Ss.edge_stream ~seed:18 sys in
  let churned = Churn.apply ~frac:0.3 ~seed:19 base in
  checkb "churn produced deletions" true
    (Array.exists (fun (e : Edge.t) -> e.sign < 0) churned);
  let k = 6 and alpha = 2.0 in
  let p = params sys ~k ~alpha ~seed:20 in
  (* Window wide enough to keep the whole churned stream live: the
     estimate must then track the NET instance, i.e. deletions really
     cancel their insertions inside the sketches. *)
  let w = W.create p ~window:64 ~epoch_edges:128 () in
  Array.iter (W.feed w) churned;
  let r = W.finalize w in
  let live = Churn.live churned in
  checkb "live suffix lost the churned edges" true
    (Array.length live < Array.length base);
  let live_sys = Ss.of_edges ~n:(Ss.n sys) ~m:(Ss.m sys) (Array.to_list live) in
  let g = Mkc_coverage.Greedy.run live_sys ~k in
  let opt_lo = float_of_int g.Mkc_coverage.Greedy.coverage in
  let opt_hi = opt_lo /. (1.0 -. (1.0 /. Float.exp 1.0)) in
  checkb
    (Printf.sprintf "windowed %.0f within [%.0f/(%.0f·α), 2·%.0f] of greedy-on-live"
       r.W.estimate opt_lo slack opt_hi)
    true
    (r.W.estimate >= opt_lo /. (slack *. alpha) && r.W.estimate <= 2.0 *. opt_hi)

(* ---------- decay mode and argument validation ---------- *)

let test_decay_run_and_validation () =
  let sys = Mkc_workload.Random_inst.uniform ~n:200 ~m:32 ~set_size:8 ~seed:23 in
  let p = params sys ~k:4 ~alpha:2.0 ~seed:24 in
  let edges = Ss.edge_stream ~seed:25 sys in
  let w = W.create ~decay:0.5 p ~window:4 ~epoch_edges:60 () in
  Array.iter (W.feed w) edges;
  let r = W.finalize w in
  checkb "decayed estimate is positive" true (r.W.estimate > 0.0);
  (* The discounted fold is bounded by the undiscounted sum of the same
     per-epoch estimates: λ < 1 only ever shrinks older mass. *)
  let plain = W.create p ~window:4 ~epoch_edges:60 () in
  Array.iter (W.feed plain) edges;
  let sum_bound =
    (* A loose sanity bound: the decayed value cannot exceed epochs ×
       the largest single-epoch estimate, itself ≤ n. *)
    float_of_int (r.W.epochs * Ss.n sys)
  in
  checkb "decayed estimate below the trivial bound" true (r.W.estimate <= sum_bound);
  ignore (W.finalize plain : W.result);
  let expect_invalid name thunk =
    match thunk () with
    | exception Invalid_argument msg ->
        checkb (name ^ " names Windowed.create") true
          (String.length msg >= 15 && String.sub msg 0 15 = "Windowed.create")
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "decay = 1" (fun () -> W.create ~decay:1.0 p ~window:2 ~epoch_edges:10 ());
  expect_invalid "decay = 0" (fun () -> W.create ~decay:0.0 p ~window:2 ~epoch_edges:10 ());
  expect_invalid "window = 0" (fun () -> W.create p ~window:0 ~epoch_edges:10 ());
  expect_invalid "epoch_edges = 0" (fun () -> W.create p ~window:2 ~epoch_edges:0 ());
  expect_invalid "epsilon = 0" (fun () ->
      W.create ~epsilon:0.0 p ~window:2 ~epoch_edges:10 ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_decay_identity; prop_decay_assoc; prop_decay_fold_closed_form ]
  @ [
      Alcotest.test_case "sieve improves comparator" `Quick test_sieve_improves;
      Alcotest.test_case "window of W ≡ fresh run on live suffix" `Quick
        test_window_equals_fresh_suffix;
      Alcotest.test_case "window ≡ fresh with empty partial epoch" `Quick
        test_window_equals_fresh_suffix_exact_epochs;
      Alcotest.test_case "window wider than stream ≡ single pass" `Quick
        test_window_wider_than_stream;
      Alcotest.test_case "batched drive rolls at per-edge boundaries" `Quick
        test_batched_drive_matches_per_edge;
      Alcotest.test_case "churned stream tracks greedy on live suffix" `Quick
        test_churn_tracks_greedy_on_live_suffix;
      Alcotest.test_case "decay mode runs and create validates by name" `Quick
        test_decay_run_and_validation;
    ]
