lib/sketch/hyperloglog.mli: Mkc_hashing
