(** The full trade-off curve, α ∈ (1/(1 − 1/e), Ω̃(√m)].

    The paper's Theorems 3.1/3.2 cover super-constant α; for constant α
    it invokes the O(1)-approximation edge-arrival algorithms of
    [12, 34] ("Note that Theorem 3.1 together with the
    O(1)-approximation algorithms of [12, 34] ... imply that for any
    α ∈ (1/(1−1/e), Ω̃(√m)] there exists a single-pass streaming
    algorithm ... in Õ(m/α²) space").  This module realizes that
    corollary: below {!switch_alpha} it runs the Õ(m/ε²) element-
    sampling algorithm ({!Mkc_coverage.Mcgregor_vu}, ε derived from the
    requested α); above it, the paper's {!Report}.

    The result is one entry point whose space is Õ(m/α²) over the whole
    admissible range. *)

type t

val switch_alpha : float
(** The hand-off point between the O(1)-approximation engine and the
    sketching engine (default 3.0: below it, ε = α − 1/(1−1/e)
    parameterizes the [34]-style algorithm). *)

type engine = Constant_factor | Sketching

val create : Params.t -> t
(** Chooses the engine from [params.alpha]; validates
    [alpha > 1/(1 - 1/e)]. *)

val engine : t -> engine
val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed} on whichever
    engine is active. *)

type result = { estimate : float; sets : int list; engine : engine }

val finalize : t -> result
val words : t -> int

val encode : t -> Mkc_obs.Json.t
(** Tagged by engine: the [34]-style baseline's stores, or the full
    {!Report} payload. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) Stdlib.result
(** Overlay an {!encode} payload; rejects a payload whose engine tag
    disagrees with this instance's alpha regime. *)

val merge_into : dst:t -> t -> unit
(** Fold a shard in via whichever engine is active; raises
    [Invalid_argument] on an engine mismatch. *)

val ckpt_kind : string
(** The {!Mkc_stream.Checkpoint} kind tag, ["full_range"]. *)

val codec : Params.t -> t Mkc_stream.Checkpoint.codec
(** Checkpoint codec (kind {!ckpt_kind}, seed [base_seed]) for
    {!Mkc_stream.Pipeline.run_resumable}. *)

val sink : (t, result) Mkc_stream.Sink.sink
(** The front-end as a {!Mkc_stream.Sink}. *)

val shards : t -> Mkc_stream.Sink.any array
(** Independent shards for {!Mkc_stream.Pipeline.feed_all_parallel}: the
    sketching engine's oracle instances, or the single [34]-style
    baseline in the constant-factor regime. *)
