(** Random partition of the set family into supersets (Section 4.2).

    A Θ(log mn)-wise independent hash [h : F → [q]] groups the [m] sets
    into [q ≈ m/w] supersets [D_i = {S : h(S) = i}]; w.h.p. no superset
    holds more than [w] sets (Claim 4.9) and, absent w-common elements,
    each element appears at most [f = Θ̃(1)] times inside a superset
    (Claim 4.10) — which is what lets LargeSet use total size as a
    coverage proxy.

    Only the hash seed is stored; the {e membership} of any superset is
    recomputable after the pass by scanning set ids, which is how the
    reporting algorithm materializes its witness in O(k) output space
    without a second pass over the data. *)

type t

val create : m:int -> q:int -> indep:int -> seed:Mkc_hashing.Splitmix.t -> t
val superset_of : t -> int -> int
(** The superset index of a set id, in [\[0, q)]. *)

val superset_of_batch : t -> int array -> pos:int -> len:int -> int array -> unit
(** [out.(j) = superset_of t sets.(pos + j)] for [j < len] — one
    coefficient-major hash pass over a chunk's distinct set ids. *)

val members : ?limit:int -> t -> int -> int list
(** All set ids hashed to the given superset, by scanning [\[0, m)];
    stops after [limit] ids when given. *)

val num_supersets : t -> int
val words : t -> int
