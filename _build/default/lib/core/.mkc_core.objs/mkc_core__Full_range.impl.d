lib/core/full_range.ml: Float Mkc_coverage Params Report
