(* Ingestion-throughput micro-benchmark for the Sink/Pipeline layer.

   Three ways to drive the same Estimate sink over a ~10^6-edge stream:
     per-edge   Stream_source.iter + Sink.feed        (the old ingestion path)
     batched    Stream_source.chunks + Sink.feed_batch (Pipeline.run)
     parallel   Pipeline.feed_all_parallel over Estimate.shards

   All three runs use identical params/seeds, so their finalized results
   must be identical — the benchmark asserts this before reporting.
   Results go to stdout and to BENCH_pipeline.json (machine-readable). *)

module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params
module E = Mkc_core.Estimate

let json_out = "BENCH_pipeline.json"

type timing = { mode : string; seconds : float; edges_per_sec : float }

let time_ingest name f =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  (name, dt)

let outcome_fingerprint (r : E.result) =
  let witness =
    match r.E.outcome with
    | None -> []
    | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())
  in
  (r.E.estimate, r.E.z_guess, witness)

let run () =
  Exp_util.header "pipeline: per-edge vs batched vs domain-parallel ingestion";
  let n = 65536 and m = 4096 and k = 32 and alpha = 8.0 and seed = 11 in
  let sys = Mkc_workload.Random_inst.uniform ~n ~m ~set_size:256 ~seed in
  let src = Mkc_stream.Stream_source.of_system ~seed:(seed + 1) sys in
  let edges = Mkc_stream.Stream_source.length src in
  let domains = max 2 (min 4 (Domain.recommended_domain_count ())) in
  Format.printf "stream: %d edges (n=%d, m=%d), k=%d, alpha=%g, %d domains@." edges n
    m k alpha domains;
  let params = P.make ~m ~n ~k ~alpha ~seed () in
  let fresh () = E.create params in
  let e_seq = fresh () and e_batch = fresh () and e_par = fresh () in
  let timings =
    [
      time_ingest "per-edge" (fun () ->
          Mkc_stream.Stream_source.iter (E.feed e_seq) src);
      time_ingest "batched" (fun () ->
          Mkc_stream.Stream_source.chunks
            (fun a ~pos ~len -> E.feed_batch e_batch a ~pos ~len)
            src);
      time_ingest "parallel" (fun () ->
          Mkc_stream.Pipeline.feed_all_parallel ~domains (E.shards e_par) src);
    ]
  in
  let results = List.map (fun e -> outcome_fingerprint (E.finalize e)) [ e_seq; e_batch; e_par ] in
  (match results with
  | [ a; b; c ] ->
      if a <> b || a <> c then failwith "pipeline bench: ingestion modes disagree!"
  | _ -> assert false);
  let (estimate, z_guess, _) = List.hd results in
  Format.printf "all modes agree: estimate %.0f (z-guess %d)@." estimate z_guess;
  let timings =
    List.map
      (fun (mode, seconds) ->
        { mode; seconds; edges_per_sec = float_of_int edges /. seconds })
      timings
  in
  List.iter
    (fun t ->
      Format.printf "  %-8s  %6.3fs  %10.0f edges/s@." t.mode t.seconds t.edges_per_sec)
    timings;
  let oc = open_out json_out in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"edges\": %d,\n  \"n\": %d,\n  \"m\": %d,\n  \"k\": %d,\n  \"alpha\": %g,\n  \"domains\": %d,\n  \"estimate\": %.0f,\n"
       edges n m k alpha domains estimate);
  Buffer.add_string b "  \"modes\": [\n";
  List.iteri
    (fun i t ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"mode\": %S, \"seconds\": %.6f, \"edges_per_sec\": %.0f }%s\n"
           t.mode t.seconds t.edges_per_sec
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "wrote %s@." json_out
