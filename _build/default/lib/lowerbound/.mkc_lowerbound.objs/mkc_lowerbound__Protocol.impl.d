lib/lowerbound/protocol.ml: Array Disjointness Float List Mkc_core Mkc_hashing Mkc_sketch Mkc_stream Reduction
