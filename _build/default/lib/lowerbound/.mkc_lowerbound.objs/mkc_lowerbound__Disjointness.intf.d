lib/lowerbound/disjointness.mli:
