lib/sketch/dyadic_hh.mli: Mkc_hashing
