(** LargeCommon (Figure 3): the multi-layered set-sampling subroutine of
    the (α, δ, η)-oracle, covering case I of the analysis — instances
    where, for some β ≤ α, the (βk)-common elements have mass at least
    [σβ|U|/α].

    For each guess [β_g = 2^i ≤ α] it samples sets at rate ≈ [β_g k / m]
    (one Θ(log mn)-wise hash drives all levels, nested — Section A.1)
    and measures the coverage of the sampled collection with an L0
    sketch.  By set sampling (Lemma 2.3) the level-β_g sample covers all
    (β_g k)-common elements w.h.p., so if those are numerous the sketch
    value is large; the returned estimate [2·VAL/(3β_g)] is a lower
    bound on the best k-cover inside the sample (Observation 2.4) and
    hence on OPT.  Total space Õ(1) (Theorem 4.4).

    The witness is the lexicographically-first min(k, |F^rnd|) sampled
    set ids of the winning level — a uniform k-subset of the sample,
    which carries a 1/β_g fraction of the sample's coverage in
    expectation (Observation 2.4). *)

type t

val create : Params.t -> seed:Mkc_hashing.Splitmix.t -> t
val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed}. *)

val feed_planned :
  t ->
  Mkc_stream.Chunk_plan.t ->
  red:int array ->
  Mkc_stream.Edge.t array ->
  pos:int ->
  len:int ->
  unit
(** Chunk-deduplicated ingestion: the set-sampling decision is made once
    per distinct set id of the plan (through the memo), then the chunk
    is replayed in original edge order with O(1) lookups — L0 states are
    bit-for-bit the per-edge ones.  [red.(j)] must hold the (reduced)
    element value of the plan's j-th distinct element; the edge slice
    itself is not consulted. *)

val sampler_evals : t -> int
(** Actual set-sampling hash evaluations so far — memo misses only (the
    decision count the chunk engine is built to shrink; also the
    [sampler_evals] stat). *)

val finalize : t -> Solution.outcome option
(** [None] means "infeasible": no level passed the
    [σ β_g |U| / (4α)] threshold — then w.h.p. no β ≤ α has common-
    element mass above the case-I bar (Lemma 4.7), and the other oracle
    subroutines are in charge. *)

val coverage_estimates : t -> (int * float) list
(** Per-level [(β_g, L0 estimate of |C(F^rnd_β)|)] diagnostics, used by
    the fig3 bench. *)

val words : t -> int

val words_breakdown : t -> (string * int) list
(** [("sampler", _); ("memo", _); ("l0", _)] — the nested set-sampler's
    seeds, the bounded decision memo, and the per-level L0 sketches. *)

val stats : t -> (string * int) list
(** Work counters: ["sampler_evals"] (set-sampling hash {e evaluations}
    — memo misses, not probes: O(distinct set ids), not O(edges)) and
    ["l0_updates"] (one per (kept edge, nested level) — Figure 3's
    sketch update volume, identical across ingestion modes). *)

val encode : t -> Mkc_obs.Json.t
(** Mutable state only (L0 dumps, memo contents, work counters): the
    samplers and hash tables are re-created from params + seed by
    {!create}, then {!restore} overlays this payload. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) result
(** Overlay an {!encode} payload onto a freshly {!create}d instance of
    the same params and seed. *)

val merge_into : dst:t -> t -> unit
(** Fold a shard's state in: L0 sketches merge exactly (their state is
    a pure function of the elements seen), work counters sum, and the
    decision memo is dropped and rebuilt (it is a pure accelerator). *)
