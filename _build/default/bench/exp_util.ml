(* Shared machinery for the experiment harness (bench/experiments.ml). *)

module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params

let fprintf = Format.printf

let header title =
  fprintf "@.=== %s ===@." title

let subheader s = fprintf "@.--- %s ---@." s

let row fmt = Format.printf fmt

(* A named instance with an OPT proxy. *)
type instance = {
  name : string;
  system : Ss.t;
  k : int;
  opt : int; (* certified or greedy-based proxy for the optimal coverage *)
}

let mk_few_large ~n ~m ~k ~seed =
  let pl = Mkc_workload.Planted.few_large ~n ~m ~k ~seed in
  { name = "few-large"; system = pl.system; k; opt = pl.planted_coverage }

let mk_many_small ~n ~m ~k ~seed =
  let pl = Mkc_workload.Planted.many_small ~n ~m ~k ~seed in
  { name = "many-small"; system = pl.system; k; opt = pl.planted_coverage }

let mk_common_heavy ~n ~m ~k ~seed =
  let pl = Mkc_workload.Planted.common_heavy ~n ~m ~k ~beta:4 ~seed in
  let greedy = (Mkc_coverage.Greedy.run pl.system ~k).coverage in
  { name = "common-heavy"; system = pl.system; k; opt = max greedy pl.planted_coverage }

let mk_uniform ~n ~m ~k ~seed =
  let sys = Mkc_workload.Random_inst.uniform ~n ~m ~set_size:(max 2 (n / 128)) ~seed in
  { name = "uniform"; system = sys; k; opt = (Mkc_coverage.Greedy.run sys ~k).coverage }

let mk_zipf ~n ~m ~k ~seed =
  let sys = Mkc_workload.Random_inst.zipf_sizes ~n ~m ~max_size:(n / 8) ~skew:1.1 ~seed in
  { name = "zipf"; system = sys; k; opt = (Mkc_coverage.Greedy.run sys ~k).coverage }

let mk_graph ~n ~k ~seed =
  let sys = Mkc_workload.Graph_gen.power_law ~vertices:n ~edges:(10 * n) ~skew:1.2 ~seed in
  { name = "graph"; system = sys; k; opt = (Mkc_coverage.Greedy.run sys ~k).coverage }

type est_run = {
  estimate : float;
  words : int;
  breakdown : (string * int) list;
  seconds : float;
  provenance : string;
  witness_coverage : int option;
}

let run_estimate ?(profile = P.Practical) ?(report_witness = false) (inst : instance)
    ~alpha ~seed () =
  let sys = inst.system in
  let p = P.make ~m:(Ss.m sys) ~n:(Ss.n sys) ~k:inst.k ~alpha ~profile ~seed () in
  let est = Mkc_core.Estimate.create p in
  let stream = Ss.edge_stream ~seed:(seed + 7) sys in
  let t0 = Unix.gettimeofday () in
  Array.iter (Mkc_core.Estimate.feed est) stream;
  let r = Mkc_core.Estimate.finalize est in
  let t1 = Unix.gettimeofday () in
  let provenance =
    match r.outcome with
    | Some o -> Format.asprintf "%a" Mkc_core.Solution.pp_provenance o.provenance
    | None -> "infeasible"
  in
  let witness_coverage =
    if report_witness then
      match r.outcome with
      | Some o ->
          let sets =
            o.witness () |> List.filteri (fun i _ -> i < inst.k)
          in
          Some (Ss.coverage sys sets)
      | None -> Some 0
    else None
  in
  {
    estimate = r.estimate;
    words = Mkc_core.Estimate.words est;
    breakdown = Mkc_core.Estimate.words_breakdown est;
    seconds = t1 -. t0;
    provenance;
    witness_coverage;
  }

(* least-squares slope of log(y) against log(x) *)
let loglog_slope pts =
  let pts = List.filter (fun (x, y) -> x > 0.0 && y > 0.0) pts in
  let lg = List.map (fun (x, y) -> (log x, log y)) pts in
  let nf = float_of_int (List.length lg) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 lg in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 lg in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 lg in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 lg in
  ((nf *. sxy) -. (sx *. sy)) /. ((nf *. sxx) -. (sx *. sx))

let ratio ~opt est = float_of_int opt /. Float.max 1.0 est
