type profile = Paper | Practical

type t = {
  m : int;
  n : int;
  u : int;
  k : int;
  alpha : float;
  profile : profile;
  eta : float;
  w : int;
  s : float;
  f : float;
  sigma : float;
  t_elem : float;
  indep : int;
  oracle_repeats : int;
  z_repeats : int;
  accept_factor : float;
  z_stride : int;
  base_seed : int;
}

let log2f x = max 1.0 (Float.log2 (float_of_int (max 2 x)))

let derive ~m ~n ~k ~alpha ~profile ~seed =
  let eta = 4.0 in
  let w = min k (max 1 (int_of_float (Float.round alpha))) in
  let lmn = log2f (m * max 1 n) in
  let s =
    match profile with
    | Paper ->
        (* Table 2: s = 9 / (5000 √(2η log(sα)) log²(mn)) · w/α; the
           log(sα) inside the root is approximated by log α (the paper
           treats it as a fixed polylog). *)
        let la = max 1.0 (Float.log2 alpha) in
        9.0 /. (5000.0 *. sqrt (2.0 *. eta *. la) *. lmn *. lmn) *. (float_of_int w /. alpha)
    | Practical ->
        (* keep s·α = w/2, i.e. "large" sets contribute ≥ 2z/w. *)
        0.5 *. float_of_int w /. alpha
  in
  let f = match profile with Paper -> 7.0 *. lmn | Practical -> 2.0 in
  let sigma =
    match profile with Paper -> 1.0 /. (2500.0 *. lmn *. lmn) | Practical -> 0.5
  in
  let t_elem =
    match profile with Paper -> 5000.0 *. lmn *. lmn /. s | Practical -> 8.0
  in
  let indep =
    match profile with
    | Paper -> Mkc_hashing.Hash_family.log_mn_indep ~m ~n
    | Practical -> min 8 (Mkc_hashing.Hash_family.log_mn_indep ~m ~n)
  in
  let oracle_repeats =
    match profile with
    | Paper -> max 1 (int_of_float (Float.ceil (log2f n)))
    | Practical -> 2
  in
  let z_repeats = match profile with Paper -> 5 | Practical -> 2 in
  let z_stride = match profile with Paper -> 1 | Practical -> 2 in
  let accept_factor = match profile with Paper -> 4.0 | Practical -> 64.0 in
  {
    m;
    n;
    u = n;
    k;
    alpha;
    profile;
    eta;
    w;
    s;
    f;
    sigma;
    t_elem;
    indep;
    oracle_repeats;
    z_repeats;
    accept_factor;
    z_stride;
    base_seed = seed;
  }

let make ~m ~n ~k ~alpha ?(profile = Practical) ?(seed = 0xC0FFEE) () =
  if n < 1 then invalid_arg "Params.make: n must be >= 1";
  if m < 1 then invalid_arg "Params.make: m must be >= 1";
  if k < 1 || k > m then invalid_arg "Params.make: k must be in [1, m]";
  if alpha < 1.0 then invalid_arg "Params.make: alpha must be >= 1";
  derive ~m ~n ~k ~alpha ~profile ~seed

let with_universe t u =
  if u < 1 then invalid_arg "Params.with_universe: u must be >= 1";
  { t with u }

let s_alpha t = t.s *. t.alpha

(* Only the make-inputs travel: every derived quantity is a pure
   function of them, so re-deriving on decode keeps checkpoints valid
   across constant recalibrations (the checksum still pins bytes; the
   semantics are pinned by the inputs). *)
let encode t =
  Mkc_obs.Json.(
    Object
      [
        ("m", Int t.m);
        ("n", Int t.n);
        ("u", Int t.u);
        ("k", Int t.k);
        ("alpha", Float t.alpha);
        ("profile", String (match t.profile with Paper -> "paper" | Practical -> "practical"));
        ("seed", Int t.base_seed);
      ])

let of_json j =
  let module J = Mkc_stream.Checkpoint.J in
  let ( let* ) = Result.bind in
  let* m = J.int_field "m" j in
  let* n = J.int_field "n" j in
  let* u = J.int_field "u" j in
  let* k = J.int_field "k" j in
  let* alpha = J.float_field "alpha" j in
  let* profile =
    let* p = J.str_field "profile" j in
    match p with
    | "paper" -> Ok Paper
    | "practical" -> Ok Practical
    | other -> J.err "unknown profile %S" other
  in
  let* seed = J.int_field "seed" j in
  match make ~m ~n ~k ~alpha ~profile ~seed () with
  | p -> Ok (with_universe p u)
  | exception Invalid_argument msg -> Error msg

let same_instance a b =
  a.m = b.m && a.n = b.n && a.u = b.u && a.k = b.k && a.alpha = b.alpha
  && a.profile = b.profile && a.base_seed = b.base_seed

let pp ppf t =
  Format.fprintf ppf
    "params{m=%d n=%d u=%d k=%d α=%.2f %s η=%.0f w=%d s=%.4g f=%.2f σ=%.4g t=%.4g indep=%d}"
    t.m t.n t.u t.k t.alpha
    (match t.profile with Paper -> "paper" | Practical -> "practical")
    t.eta t.w t.s t.f t.sigma t.t_elem t.indep
