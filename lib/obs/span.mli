(** Span tracing: named, monotonic-clocked intervals.

    Each finished span is (1) folded into the owning registry as a
    log-bucketed latency histogram [span.<name>.ns], and (2) appended
    to a bounded per-domain trace ring (most recent {!ring_capacity}
    spans per domain) readable through {!recent} — enough to
    reconstruct a per-chunk timeline of a run without unbounded
    memory.  When {!Trace.enabled} is on, every finished span is also
    forwarded to the {!Trace} timeline ring.  Everything is a no-op
    while both {!Registry.enabled} and {!Trace.enabled} are off. *)

type span = { name : string; start_ns : int; dur_ns : int; domain : int }

val ring_capacity : int
(** Spans retained per domain (oldest overwritten first). *)

type handle

val start : ?registry:Registry.t -> string -> handle
(** Begin a span now ({!Clock.now_ns}). *)

val finish : handle -> unit
(** End the span and record it.  Finishing a handle created while
    recording was disabled is a no-op. *)

val with_ : ?registry:Registry.t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (recorded even if it raises). *)

val record : ?registry:Registry.t -> string -> start_ns:int -> dur_ns:int -> unit
(** [record name ~start_ns ~dur_ns] — low-level entry for call sites
    that already timed the interval. *)

val recent : unit -> span list
(** All retained spans across domains, oldest first (by start time). *)

val clear : unit -> unit
(** Drop all retained spans (histograms in the registry are
    untouched). *)
