(** Append-only binary telemetry log.

    Layout:

    {v
      offset 0   magic   "MKCTEL1\n" (8 bytes)
      offset 8   version int64 LE (currently 1)
      then       frames, each:
                   payload_len  int64 LE
                   checksum     int64 LE — FNV-1a 64 over the payload
                   payload      payload_len bytes
    v}

    The first frame must be a track directory; after that, sample
    frames carry one int64 per directory track plus the (ns, edges)
    coordinates, and event frames carry a named counter increment
    (health-rule violations, checkpoint saves, …).

    Error handling mirrors [Edge_file]: every rejection is a named
    variant, never a silent partial load.  The one deliberate
    exception is a {e torn tail}: a final frame cut short by a crash
    mid-append.  The reader keeps the intact prefix and reports the
    tear as a named error in [log.torn] instead of failing, so a
    telemetry file is useful evidence precisely when the run it
    describes died. *)

type error =
  | Bad_magic of string
  | Bad_version of int
  | Truncated of string
  | Checksum_mismatch of { expected : string; got : string }
  | Malformed of string
  | Io_error of string

val error_to_string : error -> string

val magic : string
val version : int

type sample = { s_ns : int; s_edges : int; values : int array }
type event = { e_ns : int; e_edges : int; e_name : string; e_value : int }

type log = {
  tracks : string array;
  samples : sample list; (* oldest first *)
  events : event list; (* oldest first *)
  torn : error option; (* a skipped torn final frame, if any *)
}

module Writer : sig
  type t

  val create : string -> tracks:string array -> (t, error) result
  (** Open [path] for append-from-scratch and write the header and
      track directory.  Raises [Invalid_argument] on an empty track
      set. *)

  val sample : t -> at_ns:int -> at_edges:int -> int array -> unit
  (** Append one sample frame.  The value array must have exactly one
      entry per directory track ([Invalid_argument] otherwise).  Zero
      allocation per call: the frame is assembled in a reusable
      scratch buffer. *)

  val event : t -> at_ns:int -> at_edges:int -> name:string -> value:int -> unit
  val flush : t -> unit
  val close : t -> unit
end

val read : string -> (log, error) result
(** Load and verify a telemetry log.  Corruption {e inside} the file
    (bad checksum, malformed frame with more data after it) is a hard
    error; a torn final frame is skipped and reported in [torn]. *)

(** The header/frame/checksum/torn-tail machinery shared with the run
    ledger ([Ledger], magic "MKCLEDG1"): 8-byte magic + int64 LE
    version header, then frames of int64 LE payload length, FNV-1a 64
    payload checksum, and the payload itself. *)
module Framed : sig
  val fnv1a64 : Bytes.t -> pos:int -> len:int -> int64
  val hex64 : int64 -> string

  val write_header : out_channel -> magic:string -> version:int -> unit
  (** [magic] must be exactly 8 bytes ([Invalid_argument] otherwise). *)

  val write_frame : out_channel -> Bytes.t -> unit

  val read_all : magic:string -> version:int -> string -> (Bytes.t list * error option, error) result
  (** Every intact frame payload, oldest first, plus the named tear
      when the final frame was cut short mid-append.  A checksum
      mismatch or corruption {e inside} the file is a hard error. *)
end

type summary = {
  t_name : string;
  t_count : int;
  t_min : int;
  t_max : int;
  t_last : int;
  t_p50 : int;
  t_p99 : int;
}

val summarize : log -> summary list
(** Per-track summary over all samples, in directory order.  Tracks
    with no samples report all-zero fields with [t_count = 0]. *)

val quantile : int array -> float -> int
(** [quantile sorted q] with [sorted] ascending: the smallest element
    whose rank covers fraction [q] of the data (0 on empty input). *)

val replay : ?capacity:int -> log -> Series.t
(** Rebuild a {!Series} from a log's samples (capacity defaults to
    the sample count, min 1), for rendering a finished run with
    [Top.render]. *)

module Recorder : sig
  (** Glue between a live run and the series/log: a fixed probe set
      evaluated on each [Sink.Observed] cadence sample. *)

  type probe = string * (at_ns:int -> at_edges:int -> int)

  type t

  val create : ?writer:Writer.t -> capacity:int -> probe array -> t
  (** The probe names become the series tracks (and must match the
      writer's directory when a writer is given). *)

  val series : t -> Series.t

  val sample : t -> at_edges:int -> unit
  (** Evaluate every probe at [Clock.now_ns ()], commit the row, and
      append it to the log (when writing). *)

  val event : t -> at_edges:int -> name:string -> value:int -> unit
  (** Forward a named event to the log (when writing). *)

  val close : t -> unit
end
