(* Cross-module property-based tests (qcheck): invariants that must hold
   over randomly generated instances, not just the hand-picked ones. *)

module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params

(* generator: a small random set system *)
let sys_gen =
  QCheck.Gen.(
    let* n = int_range 8 128 in
    let* m = int_range 2 48 in
    let* max_size = int_range 1 16 in
    let* seed = int_range 0 1_000_000 in
    return (Mkc_workload.Random_inst.uniform ~n ~m ~set_size:max_size ~seed, n, m))

let sys_arb =
  QCheck.make ~print:(fun (s, n, m) -> Printf.sprintf "sys(n=%d m=%d pairs=%d)" n m (Ss.total_size s)) sys_gen

let prop_coverage_monotone =
  QCheck.Test.make ~name:"coverage is monotone in the selection" ~count:60 sys_arb
    (fun (sys, _, m) ->
      let sel = List.init (min 4 m) Fun.id in
      let bigger = List.init (min 8 m) Fun.id in
      Ss.coverage sys sel <= Ss.coverage sys bigger)

let prop_coverage_submodular =
  QCheck.Test.make ~name:"marginal gains are submodular" ~count:60 sys_arb
    (fun (sys, _, m) ->
      if m < 3 then true
      else begin
        (* f(A + x) - f(A) >= f(B + x) - f(B) for A ⊆ B *)
        let a = [ 0 ] and b = [ 0; 1 ] and x = 2 in
        let ga = Ss.coverage sys (x :: a) - Ss.coverage sys a in
        let gb = Ss.coverage sys (x :: b) - Ss.coverage sys b in
        ga >= gb
      end)

let prop_greedy_within_budget_and_valid =
  QCheck.Test.make ~name:"greedy picks ≤ k valid distinct sets" ~count:60 sys_arb
    (fun (sys, _, m) ->
      let k = max 1 (m / 4) in
      let r = Mkc_coverage.Greedy.run sys ~k in
      List.length r.chosen <= k
      && List.for_all (fun i -> i >= 0 && i < m) r.chosen
      && List.sort_uniq compare r.chosen = List.sort compare r.chosen
      && Ss.coverage sys r.chosen = r.coverage)

let prop_greedy_monotone_in_k =
  QCheck.Test.make ~name:"greedy coverage monotone in k" ~count:40 sys_arb
    (fun (sys, _, m) ->
      let cov k = (Mkc_coverage.Greedy.run sys ~k).coverage in
      let k1 = max 1 (m / 8) and k2 = max 2 (m / 3) in
      cov k1 <= cov k2)

let prop_exact_at_least_greedy =
  QCheck.Test.make ~name:"exact solver ≥ greedy" ~count:25 sys_arb
    (fun (sys, _, m) ->
      let k = min 3 m in
      (Mkc_coverage.Exact.run sys ~k).coverage >= (Mkc_coverage.Greedy.run sys ~k).coverage)

let prop_contributions_sum_to_coverage =
  QCheck.Test.make ~name:"contribution profile sums to coverage" ~count:60 sys_arb
    (fun (sys, _, m) ->
      let sel = List.init (min 5 m) Fun.id in
      let prof = Mkc_stream.Stats.contribution_profile sys sel in
      Array.fold_left ( + ) 0 prof = Ss.coverage sys sel)

let prop_universe_reduction_image_bounds =
  QCheck.Test.make ~name:"universe reduction image bounds" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 0 1_000_000))
    (fun (z, seed) ->
      let r =
        Mkc_core.Universe_reduction.create ~z ~seed:(Mkc_hashing.Splitmix.create seed)
      in
      let s = Array.init 100 (fun i -> i * 31) in
      let img = Mkc_core.Universe_reduction.image_size r s in
      img >= 1 && img <= min 100 z)

let prop_edge_stream_is_permutation =
  QCheck.Test.make ~name:"edge_stream is a permutation of edges" ~count:40 sys_arb
    (fun (sys, _, _) ->
      let sort a =
        let a = Array.copy a in
        Array.sort Mkc_stream.Edge.compare a;
        a
      in
      sort (Ss.edge_stream ~seed:7 sys) = sort (Ss.edges sys))

let prop_oracle_bounded_by_universe =
  QCheck.Test.make ~name:"oracle estimate ≤ |U|" ~count:12 sys_arb
    (fun (sys, n, m) ->
      let k = max 1 (m / 4) in
      let p = P.make ~m ~n ~k ~alpha:4.0 ~seed:11 () in
      let o = Mkc_core.Oracle.create p ~seed:(Mkc_hashing.Splitmix.create 12) in
      Array.iter (Mkc_core.Oracle.feed o) (Ss.edge_stream ~seed:13 sys);
      match Mkc_core.Oracle.finalize o with
      | None -> true
      | Some out -> out.Mkc_core.Solution.estimate <= float_of_int n +. 1e-6)

let prop_report_sets_valid =
  QCheck.Test.make ~name:"report returns ≤ k valid set ids" ~count:8 sys_arb
    (fun (sys, n, m) ->
      let k = max 1 (m / 4) in
      let p = P.make ~m ~n ~k ~alpha:4.0 ~seed:21 () in
      let rep = Mkc_core.Report.create p in
      Array.iter (Mkc_core.Report.feed rep) (Ss.edge_stream ~seed:22 sys);
      let r = Mkc_core.Report.finalize rep in
      List.length r.Mkc_core.Report.sets <= k
      && List.for_all (fun i -> i >= 0 && i < m) r.Mkc_core.Report.sets)

let prop_sieve_result_consistent =
  QCheck.Test.make ~name:"sieve reports its true coverage" ~count:30 sys_arb
    (fun (sys, n, m) ->
      let k = max 1 (m / 4) in
      let sv = Mkc_coverage.Sieve.create ~n ~k () in
      for i = 0 to m - 1 do
        Mkc_coverage.Sieve.feed sv i (Ss.set sys i)
      done;
      let r = Mkc_coverage.Sieve.result sv in
      Ss.coverage sys r.chosen = r.coverage && List.length r.chosen <= k)

let prop_swap_greedy_consistent =
  QCheck.Test.make ~name:"swap-greedy reports its true coverage" ~count:30 sys_arb
    (fun (sys, n, m) ->
      let k = max 1 (m / 4) in
      let sg = Mkc_coverage.Swap_greedy.create ~n ~k in
      for i = 0 to m - 1 do
        Mkc_coverage.Swap_greedy.feed sg i (Ss.set sys i)
      done;
      let r = Mkc_coverage.Swap_greedy.result sg in
      Ss.coverage sys r.chosen = r.coverage && List.length r.chosen <= k)

let prop_l0_sketches_duplicate_insensitive =
  QCheck.Test.make ~name:"L0 sketches ignore duplicates" ~count:40
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 60) (int_range 0 5000)) (int_range 0 100000))
    (fun (xs, seed) ->
      let sk1 = Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.create seed) () in
      let sk2 = Mkc_sketch.L0_bjkst.create ~seed:(Mkc_hashing.Splitmix.create seed) () in
      List.iter (Mkc_sketch.L0_bjkst.add sk1) xs;
      (* feed the same multiset three times into sk2 *)
      for _ = 1 to 3 do
        List.iter (Mkc_sketch.L0_bjkst.add sk2) xs
      done;
      Mkc_sketch.L0_bjkst.estimate sk1 = Mkc_sketch.L0_bjkst.estimate sk2)

let prop_nested_rates_monotone =
  QCheck.Test.make ~name:"nested sampler rates monotone" ~count:60
    QCheck.(pair (int_range 2 8) (int_range 0 100000))
    (fun (levels, seed) ->
      let s =
        Mkc_sketch.Sampler.Nested.create ~base_rate:(1.0 /. 128.0) ~levels ~indep:4
          ~seed:(Mkc_hashing.Splitmix.create seed)
      in
      let ok = ref true in
      for l = 0 to levels - 2 do
        if Mkc_sketch.Sampler.Nested.rate s ~level:l > Mkc_sketch.Sampler.Nested.rate s ~level:(l + 1)
        then ok := false
      done;
      !ok)

let prop_histogram_counts_all_elements =
  QCheck.Test.make ~name:"frequency histogram counts every element" ~count:60 sys_arb
    (fun (sys, n, _) ->
      let total =
        Mkc_stream.Stats.frequency_histogram sys |> List.fold_left (fun a (_, c) -> a + c) 0
      in
      total = n)

let prop_field_pow_homomorphism =
  QCheck.Test.make ~name:"field pow is a homomorphism" ~count:200
    QCheck.(triple (int_range 2 1_000_000) (int_range 0 50) (int_range 0 50))
    (fun (b, x, y) ->
      let open Mkc_hashing.Prime_field in
      pow b (x + y) = mul (pow b x) (pow b y))

let prop_field_fermat =
  QCheck.Test.make ~name:"Fermat little theorem" ~count:40
    QCheck.(int_range 1 1_000_000_000)
    (fun a ->
      let open Mkc_hashing.Prime_field in
      pow (normalize a) (p - 1) = 1)

let prop_planted_really_optimal =
  QCheck.Test.make ~name:"planted instances are exactly optimal" ~count:15
    QCheck.(pair (int_range 0 100000) (int_range 1 3))
    (fun (seed, np) ->
      let pl =
        Mkc_workload.Planted.planted ~n:120 ~m:10 ~num_planted:np ~coverage_fraction:0.5
          ~noise_size:4 ~seed ()
      in
      (Mkc_coverage.Exact.run pl.system ~k:np).coverage = pl.planted_coverage)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_coverage_monotone;
      prop_coverage_submodular;
      prop_greedy_within_budget_and_valid;
      prop_greedy_monotone_in_k;
      prop_exact_at_least_greedy;
      prop_contributions_sum_to_coverage;
      prop_universe_reduction_image_bounds;
      prop_edge_stream_is_permutation;
      prop_oracle_bounded_by_universe;
      prop_report_sets_valid;
      prop_sieve_result_consistent;
      prop_swap_greedy_consistent;
      prop_l0_sketches_duplicate_insensitive;
      prop_nested_rates_monotone;
      prop_histogram_counts_all_elements;
      prop_field_pow_homomorphism;
      prop_field_fermat;
      prop_planted_really_optimal;
    ]
