let () =
  Alcotest.run "maxkcover"
    [
      ("hashing", Test_hashing.suite);
      ("sketch", Test_sketch.suite);
      ("stream", Test_stream.suite);
      ("pipeline", Test_pipeline.suite);
      ("chunk-engine", Test_chunk_engine.suite);
      ("workload", Test_workload.suite);
      ("coverage", Test_coverage.suite);
      ("baselines", Test_baselines.suite);
      ("core-units", Test_core_units.suite);
      ("estimate", Test_estimate.suite);
      ("lowerbound", Test_lowerbound.suite);
      ("paper-profile", Test_paper_profile.suite);
      ("properties", Test_props.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("api-surface", Test_api_surface.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("golden-compat", Test_golden_compat.suite);
      ("alloc", Test_alloc.suite);
      ("quality-stats", Test_quality_stats.suite);
      ("obs", Test_obs.suite);
      ("histogram", Test_histogram.suite);
      ("ledger", Test_ledger.suite);
      ("sentinel", Test_sentinel.suite);
      ("cli", Test_cli.suite);
      ("turnstile", Test_turnstile.suite);
      ("window", Test_window.suite);
      ("series", Test_series.suite);
      ("telemetry", Test_telemetry.suite);
      ("health", Test_health.suite);
      ("trace", Test_trace.suite);
      ("pool", Test_pool.suite);
    ]
