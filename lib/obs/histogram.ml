(* Log-linear (HDR-style) latency histogram on a preallocated flat
   int array.

   Bucket layout: each power-of-two octave is split into 16 linear
   sub-buckets, so every bucket's width is at most 1/16 of its lower
   bound (≤ 6.25% relative error).  Values 0..15 get their own exact
   bucket; for v >= 16 the index is

     16 * (floor(log2 v) - 3) + (the 4 bits after the leading bit)

   which makes index = v for all v < 32 (the two layouts agree on the
   seam).  62 octaves * 16 sub-buckets cover the full int63 range, so
   nanosecond latencies up to ~292 years land without clamping.

   Everything is an immediate int: [record] performs no allocation
   (the allocation test pins this at <= 0 minor words per record), and
   [merge] is a commutative monoid with [create ()] as identity — the
   same law the Metric scalars obey, so per-domain registry shards can
   merge in any order. *)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

let sub_buckets = 16
let num_buckets = 960 (* 16 exact + 59 octaves * 16 sub-buckets *)

let create () =
  { count = 0; sum = 0; vmin = max_int; vmax = min_int; buckets = Array.make num_buckets 0 }

let clear t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int;
  Array.fill t.buckets 0 num_buckets 0

(* floor(log2 v) for v >= 1, by shift descent — no floats, no refs,
   nothing allocated. *)
let rec floor_log2 v p =
  if v >= 256 then floor_log2 (v lsr 8) (p + 8)
  else if v >= 2 then floor_log2 (v lsr 1) (p + 1)
  else p

let bucket_of v =
  if v < 16 then if v < 0 then 0 else v
  else
    let p = floor_log2 v 0 in
    (16 * (p - 3)) + ((v lsr (p - 4)) land 15)

(* Largest value mapping to bucket [i] (inclusive): the bound reported
   by quantiles and used as the Prometheus [le] label, which is a <=
   comparison, so inclusive is exact. *)
let bound_of_bucket i =
  if i < 16 then if i < 0 then 0 else i
  else
    let octave = i / 16 and sub = i mod 16 in
    ((16 + sub + 1) lsl (octave - 1)) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = bucket_of v in
  Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + 1)

let merge_into ~dst src =
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  for i = 0 to num_buckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let nonzero_buckets t =
  let out = ref [] in
  for i = num_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then out := (i, t.buckets.(i)) :: !out
  done;
  !out

(* ---------- ceil-rank quantiles ---------- *)

(* The one ceil-rank definition shared by every quantile in the tree:
   the q-quantile of n observations is the one at 1-based rank
   ceil(q * n), clamped to [1, n].  Telemetry.summarize uses the same
   function over raw sorted samples, so the two paths cannot drift. *)
let ceil_rank q n =
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  max 1 (min n r)

let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then 0 else a.(ceil_rank q n - 1)

let quantile t q =
  if t.count = 0 then 0
  else begin
    let rank = ceil_rank q t.count in
    let seen = ref 0 and hit = ref (num_buckets - 1) and looking = ref true in
    for i = 0 to num_buckets - 1 do
      if !looking then begin
        seen := !seen + t.buckets.(i);
        if !seen >= rank then begin
          hit := i;
          looking := false
        end
      end
    done;
    (* report the bucket's inclusive upper bound, capped by the exact
       observed maximum (the top bucket can be much wider than vmax) *)
    min (bound_of_bucket !hit) t.vmax
  end

(* ---------- digests ---------- *)

type digest = {
  d_count : int;
  d_sum : int;
  d_min : int;
  d_max : int;
  d_p50 : int;
  d_p90 : int;
  d_p99 : int;
  d_p999 : int;
}

let digest t =
  {
    d_count = t.count;
    d_sum = t.sum;
    d_min = (if t.count = 0 then 0 else t.vmin);
    d_max = (if t.count = 0 then 0 else t.vmax);
    d_p50 = quantile t 0.5;
    d_p90 = quantile t 0.9;
    d_p99 = quantile t 0.99;
    d_p999 = quantile t 0.999;
  }

let digest_to_json d =
  Json.Object
    [
      ("count", Json.Int d.d_count);
      ("sum", Json.Int d.d_sum);
      ("min", Json.Int d.d_min);
      ("max", Json.Int d.d_max);
      ("p50", Json.Int d.d_p50);
      ("p90", Json.Int d.d_p90);
      ("p99", Json.Int d.d_p99);
      ("p999", Json.Int d.d_p999);
    ]

let ( let* ) = Result.bind

let int_field ctx name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or mistyped field %S" ctx name)

let digest_of_json j =
  let ctx = "histogram digest" in
  let* d_count = int_field ctx "count" j in
  let* d_sum = int_field ctx "sum" j in
  let* d_min = int_field ctx "min" j in
  let* d_max = int_field ctx "max" j in
  let* d_p50 = int_field ctx "p50" j in
  let* d_p90 = int_field ctx "p90" j in
  let* d_p99 = int_field ctx "p99" j in
  let* d_p999 = int_field ctx "p999" j in
  if d_count < 0 then Error (ctx ^ ": negative count")
  else if d_count > 0 && d_min > d_max then Error (ctx ^ ": min above max")
  else if
    d_count > 0
    && not (d_p50 <= d_p90 && d_p90 <= d_p99 && d_p99 <= d_p999 && d_p999 <= d_max)
  then Error (ctx ^ ": quantiles not monotone")
  else Ok { d_count; d_sum; d_min; d_max; d_p50; d_p90; d_p99; d_p999 }

(* ---------- encodings ---------- *)

let to_json t =
  Json.Object
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (if t.count = 0 then 0 else t.vmin));
      ("max", Json.Int (if t.count = 0 then 0 else t.vmax));
      ( "buckets",
        Json.Array
          (List.map (fun (i, c) -> Json.Array [ Json.Int i; Json.Int c ]) (nonzero_buckets t))
      );
    ]

let of_json j =
  let ctx = "histogram" in
  let* count = int_field ctx "count" j in
  let* sum = int_field ctx "sum" j in
  let* vmin = int_field ctx "min" j in
  let* vmax = int_field ctx "max" j in
  let* raw =
    match Option.bind (Json.member "buckets" j) Json.to_list with
    | Some l -> Ok l
    | None -> Error (ctx ^ ": missing or mistyped array \"buckets\"")
  in
  let* pairs =
    List.fold_left
      (fun acc el ->
        let* acc = acc in
        match el with
        | Json.Array [ a; b ] -> (
            match (Json.to_int a, Json.to_int b) with
            | Some i, Some c -> Ok ((i, c) :: acc)
            | _ -> Error (ctx ^ ": bad bucket pair"))
        | _ -> Error (ctx ^ ": expected 2-element bucket arrays"))
      (Ok []) raw
  in
  let pairs = List.rev pairs in
  if List.exists (fun (i, c) -> i < 0 || i >= num_buckets || c < 0) pairs then
    Error (ctx ^ ": bucket index or count out of range")
  else if List.fold_left (fun a (_, c) -> a + c) 0 pairs <> count then
    Error (ctx ^ ": bucket counts do not sum to count")
  else begin
    let t = create () in
    t.count <- count;
    t.sum <- sum;
    t.vmin <- (if count = 0 then max_int else vmin);
    t.vmax <- (if count = 0 then min_int else vmax);
    List.iter (fun (i, c) -> t.buckets.(i) <- c) pairs;
    Ok t
  end

(* Prometheus exposition: cumulative [_bucket] lines with the bucket's
   inclusive upper bound as the [le] label, then [_sum] and [_count]. *)
let prometheus ~name t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "# TYPE %s histogram" name;
  let cum = ref 0 in
  List.iter
    (fun (i, c) ->
      cum := !cum + c;
      line "%s_bucket{le=\"%d\"} %d" name (bound_of_bucket i) !cum)
    (nonzero_buckets t);
  line "%s_bucket{le=\"+Inf\"} %d" name t.count;
  line "%s_sum %d" name t.sum;
  line "%s_count %d" name t.count;
  Buffer.contents b
