lib/sketch/dyadic_hh.ml: Array Count_sketch List Mkc_hashing
