(* Edge cases and failure-injection tests across the stack: boundary
   sizes, out-of-range ids, empty structures, degenerate parameters. *)

module Sm = Mkc_hashing.Splitmix
module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- hashing ---------- *)

let test_splitmix_split_diverges () =
  let g = Sm.create 1 in
  let child = Sm.split g in
  checkb "parent and child diverge" false (Int64.equal (Sm.next g) (Sm.next child))

let test_poly_hash_range_one () =
  let h = Mkc_hashing.Poly_hash.create ~indep:3 ~range:1 ~seed:(Sm.create 2) in
  for x = 0 to 50 do
    checki "range 1 always hashes to 0" 0 (Mkc_hashing.Poly_hash.hash h x)
  done;
  checkb "keep always true at range 1" true (Mkc_hashing.Poly_hash.keep h 7)

let test_poly_hash_huge_keys () =
  let h = Mkc_hashing.Poly_hash.create ~indep:4 ~range:100 ~seed:(Sm.create 3) in
  let v = Mkc_hashing.Poly_hash.hash h max_int in
  checkb "max_int key handled" true (v >= 0 && v < 100)

let test_field_sub_wraps () =
  checki "0 - 1 = p - 1" (Mkc_hashing.Prime_field.p - 1) (Mkc_hashing.Prime_field.sub 0 1)

let test_pairwise_words () =
  let h = Mkc_hashing.Pairwise.create ~range:7 ~seed:(Sm.create 4) in
  checki "pairwise stores 3 words" 3 (Mkc_hashing.Pairwise.words h)

(* ---------- sketches ---------- *)

let test_count_sketch_turnstile () =
  (* inserts followed by exact deletions net to ~zero *)
  let cs = Mkc_sketch.Count_sketch.create ~width:256 ~seed:(Sm.create 5) () in
  for i = 0 to 99 do
    Mkc_sketch.Count_sketch.add cs i 10
  done;
  for i = 0 to 99 do
    Mkc_sketch.Count_sketch.add cs i (-10)
  done;
  checkb "empty after cancellation" true (Mkc_sketch.Count_sketch.f2_estimate cs = 0.0)

let test_f2_ams_negative_deltas () =
  let sk = Mkc_sketch.F2_ams.create ~seed:(Sm.create 6) () in
  Mkc_sketch.F2_ams.add sk 3 100;
  Mkc_sketch.F2_ams.add sk 3 (-100);
  checkb "cancelled" true (Mkc_sketch.F2_ams.estimate sk = 0.0)

let test_hh_clamp_ablation () =
  (* with clamp off, a light candidate colliding with the giant can be
     reported with an inflated value; with clamp on it cannot exceed its
     exact count *)
  let mk clamp = Mkc_sketch.F2_heavy_hitter.create ~clamp ~phi:0.25 ~seed:(Sm.create 7) () in
  let feed hh =
    for _ = 1 to 10_000 do
      Mkc_sketch.F2_heavy_hitter.add hh 1 1
    done;
    Mkc_sketch.F2_heavy_hitter.add hh 2 1
  in
  let clamped = mk true and unclamped = mk false in
  feed clamped;
  feed unclamped;
  let freq_of hh id =
    List.find_opt
      (fun (h : Mkc_sketch.F2_heavy_hitter.hit) -> h.id = id)
      (Mkc_sketch.F2_heavy_hitter.candidates hh)
    |> Option.map (fun (h : Mkc_sketch.F2_heavy_hitter.hit) -> h.freq)
  in
  (match freq_of clamped 2 with
  | Some f -> checkb "clamped light candidate ≤ exact count" true (f <= 1.0)
  | None -> ());
  match freq_of clamped 1 with
  | Some f -> checkb "heavy candidate near exact" true (f >= 5000.0 && f <= 15000.0)
  | None -> Alcotest.fail "heavy candidate must be tracked"

let test_kmv_small_cap_boundary () =
  let sk = Mkc_sketch.Kmv.create ~cap:2 ~seed:(Sm.create 8) () in
  Mkc_sketch.Kmv.add sk 1;
  checkb "below cap exact" true (Mkc_sketch.Kmv.estimate sk = 1.0)

let test_reservoir_below_cap () =
  let r = Mkc_sketch.Sampler.Reservoir.create ~cap:10 ~seed:(Sm.create 9) in
  Mkc_sketch.Sampler.Reservoir.add r 42;
  Mkc_sketch.Sampler.Reservoir.add r 43;
  let c = Mkc_sketch.Sampler.Reservoir.contents r in
  checkb "keeps everything below cap" true (Array.to_list c = [ 42; 43 ])

let test_dyadic_bits_boundary () =
  let dy = Mkc_sketch.Dyadic_hh.create ~bits:1 ~phi:0.5 ~seed:(Sm.create 10) () in
  for _ = 1 to 100 do
    Mkc_sketch.Dyadic_hh.add dy 1 1
  done;
  let hits = Mkc_sketch.Dyadic_hh.hits dy in
  checkb "2-coordinate universe works" true
    (List.exists (fun (h : Mkc_sketch.Dyadic_hh.hit) -> h.id = 1) hits)

(* ---------- streams / workloads ---------- *)

let test_empty_stream_save_load () =
  let src = Mkc_stream.Stream_source.of_array [||] in
  let path = Filename.temp_file "mkc_empty" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mkc_stream.Stream_source.save src path;
      checki "empty roundtrip" 0
        (Mkc_stream.Stream_source.length (Mkc_stream.Stream_source.load path)))

let test_system_with_empty_sets_only () =
  let s = Ss.create ~n:4 ~m:3 ~sets:[| [||]; [||]; [||] |] in
  checki "zero total size" 0 (Ss.total_size s);
  checki "zero coverage" 0 (Ss.coverage s [ 0; 1; 2 ])

let test_planted_full_overlap_noise () =
  let pl =
    Mkc_workload.Planted.planted ~n:100 ~m:10 ~num_planted:2 ~coverage_fraction:0.5
      ~noise_size:5 ~noise_overlap:1.0 ~seed:11 ()
  in
  (* all noise inside the covered region: planted sets still optimal *)
  checki "planted coverage" 50 pl.planted_coverage;
  checkb "noise confined to covered region" true
    (Ss.coverage pl.system (List.init 10 Fun.id) = 50)

let test_planted_zero_overlap_noise () =
  let pl =
    Mkc_workload.Planted.planted ~n:100 ~m:10 ~num_planted:2 ~coverage_fraction:0.4
      ~noise_size:5 ~noise_overlap:0.0 ~seed:12 ()
  in
  (* noise entirely outside the planted region *)
  let noise_ids = List.filter (fun i -> not (List.mem i pl.planted_sets)) (List.init 10 Fun.id) in
  let covered = Ss.covered pl.system noise_ids in
  let planted_region_hit = ref false in
  for e = 0 to 39 do
    if covered.(e) then planted_region_hit := true
  done;
  checkb "noise avoids planted region" false !planted_region_hit

let test_graph_zero_edges () =
  let g = Mkc_workload.Graph_gen.power_law ~vertices:10 ~edges:0 ~skew:1.0 ~seed:13 in
  checki "no pairs" 0 (Ss.total_size g)

let zipf_singleton_real () =
  let z = Mkc_workload.Zipf.create ~n:1 ~s:2.0 ~seed:(Sm.create 14) in
  checki "only outcome" 0 (Mkc_workload.Zipf.sample z)

(* ---------- core robustness ---------- *)

let test_estimate_tolerates_out_of_range_elements () =
  (* ids beyond the declared n: hashing handles them; no crash, no claim *)
  let p = P.make ~m:32 ~n:64 ~k:4 ~alpha:2.0 ~seed:15 () in
  let est = Mkc_core.Estimate.create p in
  for i = 0 to 499 do
    Mkc_core.Estimate.feed est (Mkc_stream.Edge.make ~set:(i mod 32) ~elt:(1000 + i))
  done;
  let r = Mkc_core.Estimate.finalize est in
  checkb "finite" true (Float.is_finite r.Mkc_core.Estimate.estimate)

let test_oracle_single_set_stream () =
  let p = P.make ~m:64 ~n:256 ~k:2 ~alpha:2.0 ~seed:16 () in
  let o = Mkc_core.Oracle.create p ~seed:(Sm.create 17) in
  for e = 0 to 99 do
    Mkc_core.Oracle.feed o (Mkc_stream.Edge.make ~set:5 ~elt:e)
  done;
  (match Mkc_core.Oracle.finalize o with
  | None -> ()
  | Some out -> checkb "estimate ≤ true coverage ·2" true (out.Mkc_core.Solution.estimate <= 200.0))

let test_report_k1 () =
  let pl = Mkc_workload.Planted.few_large ~n:256 ~m:64 ~k:1 ~seed:18 in
  let p = P.make ~m:64 ~n:256 ~k:1 ~alpha:2.0 ~seed:19 () in
  let rep = Mkc_core.Report.create p in
  Array.iter (Mkc_core.Report.feed rep) (Ss.edge_stream ~seed:20 pl.system);
  let r = Mkc_core.Report.finalize rep in
  checkb "at most one set" true (List.length r.Mkc_core.Report.sets <= 1)

let test_small_set_absent_when_heavy_regime () =
  (* sα ≥ 2k disables SmallSet (Figure 2's branch); force it via k=1, big α *)
  let p = P.make ~m:4096 ~n:4096 ~k:1 ~alpha:64.0 ~seed:21 () in
  (* w = min(k, α) = 1; sα = 0.5 < 2 — still small regime for k=1. Use the
     breakdown to at least confirm the branch logic runs. *)
  let o = Mkc_core.Oracle.create p ~seed:(Sm.create 22) in
  checkb "breakdown exposes branch" true
    (List.exists
       (fun (key, _) -> String.starts_with ~prefix:"oracle.small_set" key)
       (Mkc_core.Oracle.words_breakdown o))

(* ---------- more sketch edge cases ---------- *)

let test_f2c_no_contributing_class_quiet () =
  (* a flat vector with tiny per-coordinate mass: hits above any serious
     threshold should be value-bounded (each true freq is 2) *)
  let c = Mkc_sketch.F2_contributing.create ~gamma:0.25 ~r:64 ~indep:6 ~seed:(Sm.create 30) () in
  for i = 0 to 2047 do
    Mkc_sketch.F2_contributing.add c i 2
  done;
  List.iter
    (fun (h : Mkc_sketch.F2_contributing.hit) ->
      checkb "no inflated frequencies on flat input" true (h.freq <= 4.0))
    (Mkc_sketch.F2_contributing.candidates c)

let test_hll_wide_range () =
  let sk = Mkc_sketch.Hyperloglog.create ~bits:8 ~seed:(Sm.create 31) () in
  for x = 0 to 499_999 do
    Mkc_sketch.Hyperloglog.add sk x
  done;
  let est = Mkc_sketch.Hyperloglog.estimate sk in
  checkb "within 20% at 500k with 256 registers" true
    (est > 400_000.0 && est < 600_000.0)

let test_kmv_estimate_monotone () =
  let sk = Mkc_sketch.Kmv.create ~cap:64 ~seed:(Sm.create 32) () in
  let last = ref 0.0 and ok = ref true in
  for x = 0 to 9_999 do
    Mkc_sketch.Kmv.add sk x;
    if x mod 1000 = 999 then begin
      let e = Mkc_sketch.Kmv.estimate sk in
      (* monotone up to estimator noise *)
      if e < !last *. 0.5 then ok := false;
      last := e
    end
  done;
  checkb "estimate grows with the stream" true !ok

(* ---------- more core edge cases ---------- *)

let test_words_breakdown_no_smallset_in_heavy_regime () =
  (* manufacture sα ≥ 2k by overriding s (the Fig 2 branch test) *)
  let p = P.make ~m:256 ~n:512 ~k:2 ~alpha:8.0 ~seed:33 () in
  let p = { p with P.s = 1.0 } in
  (* now s·α = 8 ≥ 2k = 4: SmallSet must be absent *)
  let o = Mkc_core.Oracle.create p ~seed:(Sm.create 34) in
  checki "small-set slot empty" 0
    (List.fold_left
       (fun acc (key, w) ->
         if String.starts_with ~prefix:"oracle.small_set" key then acc + w else acc)
       0
       (Mkc_core.Oracle.words_breakdown o))

let test_full_range_switch_boundary () =
  let mk alpha =
    Mkc_core.Full_range.engine
      (Mkc_core.Full_range.create (P.make ~m:64 ~n:128 ~k:2 ~alpha ~seed:35 ()))
  in
  checkb "α = 3 → constant engine" true (mk 3.0 = Mkc_core.Full_range.Constant_factor);
  checkb "α = 3.5 → sketching engine" true (mk 3.5 = Mkc_core.Full_range.Sketching)

let test_solution_pp_smoke () =
  let o =
    {
      Mkc_core.Solution.estimate = 42.0;
      witness = (fun () -> [ 1; 2 ]);
      provenance = Mkc_core.Solution.Large_common { beta = 4 };
    }
  in
  let s = Format.asprintf "%a" Mkc_core.Solution.pp o in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "pp mentions the subroutine" true (contains "large-common" s);
  checkb "pp mentions the estimate" true (contains "42" s)

let test_sieve_duplicate_set_arrival () =
  let sv = Mkc_coverage.Sieve.create ~n:16 ~k:2 () in
  Mkc_coverage.Sieve.feed sv 0 [| 0; 1; 2; 3 |];
  Mkc_coverage.Sieve.feed sv 0 [| 0; 1; 2; 3 |];
  let r = Mkc_coverage.Sieve.result sv in
  checki "duplicate arrivals add nothing" 4 r.coverage

(* ---------- lower bound ---------- *)

let test_dsj_full_fill () =
  let d = Mkc_lowerbound.Disjointness.generate ~r:4 ~m:64 ~case:Mkc_lowerbound.Disjointness.No
      ~seed:23 ~fill:1.0 ()
  in
  checkb "valid at fill=1" true (Mkc_lowerbound.Disjointness.validate d)

let test_dsj_two_players () =
  let d = Mkc_lowerbound.Disjointness.generate ~r:2 ~m:32 ~case:Mkc_lowerbound.Disjointness.Yes
      ~seed:24 ()
  in
  checkb "r=2 valid" true (Mkc_lowerbound.Disjointness.validate d);
  let out =
    Mkc_lowerbound.Protocol.play d (Mkc_lowerbound.Protocol.exact_distinguisher ~m:32 ~r:2)
  in
  checkb "exact correct at r=2" true out.Mkc_lowerbound.Protocol.correct

let suite =
  [
    Alcotest.test_case "splitmix split diverges" `Quick test_splitmix_split_diverges;
    Alcotest.test_case "poly hash range 1" `Quick test_poly_hash_range_one;
    Alcotest.test_case "poly hash huge keys" `Quick test_poly_hash_huge_keys;
    Alcotest.test_case "field sub wraps" `Quick test_field_sub_wraps;
    Alcotest.test_case "pairwise words" `Quick test_pairwise_words;
    Alcotest.test_case "count-sketch turnstile" `Quick test_count_sketch_turnstile;
    Alcotest.test_case "ams negative deltas" `Quick test_f2_ams_negative_deltas;
    Alcotest.test_case "hh clamp ablation" `Quick test_hh_clamp_ablation;
    Alcotest.test_case "kmv tiny cap" `Quick test_kmv_small_cap_boundary;
    Alcotest.test_case "reservoir below cap" `Quick test_reservoir_below_cap;
    Alcotest.test_case "dyadic 1-bit universe" `Quick test_dyadic_bits_boundary;
    Alcotest.test_case "empty stream save/load" `Quick test_empty_stream_save_load;
    Alcotest.test_case "system of empty sets" `Quick test_system_with_empty_sets_only;
    Alcotest.test_case "planted full-overlap noise" `Quick test_planted_full_overlap_noise;
    Alcotest.test_case "planted zero-overlap noise" `Quick test_planted_zero_overlap_noise;
    Alcotest.test_case "graph zero edges" `Quick test_graph_zero_edges;
    Alcotest.test_case "zipf singleton" `Quick zipf_singleton_real;
    Alcotest.test_case "estimate out-of-range ids" `Quick
      test_estimate_tolerates_out_of_range_elements;
    Alcotest.test_case "oracle single-set stream" `Quick test_oracle_single_set_stream;
    Alcotest.test_case "report k=1" `Quick test_report_k1;
    Alcotest.test_case "oracle branch exposure" `Quick test_small_set_absent_when_heavy_regime;
    Alcotest.test_case "f2c quiet on flat input" `Quick test_f2c_no_contributing_class_quiet;
    Alcotest.test_case "hll wide range" `Quick test_hll_wide_range;
    Alcotest.test_case "kmv monotone" `Quick test_kmv_estimate_monotone;
    Alcotest.test_case "fig-2 heavy-regime branch" `Quick
      test_words_breakdown_no_smallset_in_heavy_regime;
    Alcotest.test_case "full-range switch boundary" `Quick test_full_range_switch_boundary;
    Alcotest.test_case "solution pp" `Quick test_solution_pp_smoke;
    Alcotest.test_case "sieve duplicate arrivals" `Quick test_sieve_duplicate_set_arrival;
    Alcotest.test_case "dsj fill=1" `Quick test_dsj_full_fill;
    Alcotest.test_case "dsj two players" `Quick test_dsj_two_players;
  ]
