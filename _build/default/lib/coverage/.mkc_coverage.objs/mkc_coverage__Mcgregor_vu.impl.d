lib/coverage/mcgregor_vu.ml: Array Float Greedy Hashtbl List Mkc_hashing Mkc_sketch Mkc_stream
