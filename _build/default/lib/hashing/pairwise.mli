(** Fast 2-wise independent hashing, [h(x) = (a x + b mod p) mod r].

    A special case of {!Poly_hash} kept separate because pairwise hashes
    sit on the hot path of every sketch row (CountSketch buckets and
    signs, AMS sign hashes). *)

type t

val create : range:int -> seed:Splitmix.t -> t
val hash : t -> int -> int

val sign : t -> int -> int
(** [sign t x] is [+1] or [-1], 4-wise independence is NOT promised —
    use {!Poly_hash} with [indep:4] where the AMS analysis needs it.
    This is a pairwise sign. *)

val words : t -> int
