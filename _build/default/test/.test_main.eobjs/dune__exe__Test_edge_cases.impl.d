test/test_edge_cases.ml: Alcotest Array Filename Float Format Fun Int64 List Mkc_core Mkc_coverage Mkc_hashing Mkc_lowerbound Mkc_sketch Mkc_stream Mkc_workload Option String Sys
