lib/workload/graph_gen.ml: Array List Mkc_hashing Mkc_stream Zipf
