(* Graph neighborhood coverage — the paper's footnote-2 motivation.

   Sets are out-neighborhoods of vertices in a directed graph; the task
   is to pick k "seed" vertices whose neighborhoods jointly reach the
   most vertices (influence seeding / partial dominating set).  The
   input, however, arrives grouped by edge TARGET — so each set is
   scattered across the stream and set-arrival algorithms (which need
   each set delivered contiguously) cannot run at all.  The edge-arrival
   algorithm does not care.

   Run with:  dune exec examples/graph_coverage.exe *)

module Ss = Mkc_stream.Set_system

let () =
  let vertices = 4096 and edges = 60_000 in
  let k = 16 and alpha = 4.0 in
  let graph = Mkc_workload.Graph_gen.power_law ~vertices ~edges ~skew:1.2 ~seed:3 in
  Format.printf "power-law digraph: %d vertices, %d distinct arcs@." vertices
    (Ss.total_size graph);

  (* the adversarial in-arrival order: pairs grouped by target vertex *)
  let stream = Mkc_workload.Graph_gen.in_arrival_stream graph ~seed:4 in
  Format.printf "streaming arcs grouped by target (sets maximally scattered)...@.";

  let params =
    Mkc_core.Params.make ~m:vertices ~n:vertices ~k ~alpha ~seed:5 ()
  in
  let rep = Mkc_core.Report.create params in
  Mkc_stream.Stream_source.iter (Mkc_core.Report.feed rep) stream;
  let sol = Mkc_core.Report.finalize rep in

  let seeds = sol.Mkc_core.Report.sets in
  let reach = Ss.coverage graph seeds in
  Format.printf "@.picked %d seed vertices reaching %d vertices (%.1f%% of graph)@."
    (List.length seeds) reach
    (100.0 *. float_of_int reach /. float_of_int vertices);
  (match sol.Mkc_core.Report.provenance with
  | Some p -> Format.printf "winning subroutine: %a@." Mkc_core.Solution.pp_provenance p
  | None -> ());
  Format.printf "streaming space: %d words (the graph itself is %d words)@."
    (Mkc_core.Report.words rep) (Ss.total_size graph);

  let greedy = Mkc_coverage.Greedy.run graph ~k in
  Format.printf "@.offline greedy reaches %d vertices; streaming/greedy gap: %.2fx (target ≤ ~α=%.0f)@."
    greedy.Mkc_coverage.Greedy.coverage
    (float_of_int greedy.Mkc_coverage.Greedy.coverage /. float_of_int (max 1 reach))
    alpha
