(** Count-Min sketch (Cormode–Muthukrishnan).

    The L1 analogue of {!Count_sketch}: per-row error is [F1 / width]
    and estimates never undershoot (for insertion-only streams).
    Included as an ablation point for experiment E10 — it needs
    [Θ(1/φ)] width for φ·F1 heavy hitters but [Θ(1/φ²)]-ish width to
    match the L2 guarantee Theorem 2.10 relies on, which is exactly why
    the paper's space bound wants CountSketch. *)

type t

val create : ?depth:int -> width:int -> seed:Mkc_hashing.Splitmix.t -> unit -> t
val add : t -> int -> int -> unit
val estimate : t -> int -> float
(** Min over rows; an overestimate in insertion-only streams. *)

val words : t -> int
