(** Edge-arrival constant-factor baseline (McGregor–Vu, ICDT 2017 [34];
    also Bateni–Esfandiari–Mirrokni [12]) — the
    "Reporting / Edge Arrival / 1/(1−1/e−ε) / Õ(m/ε²)" row of Table 1.

    For each guess [z] of the optimal coverage, subsample elements at
    rate [Θ̃(k / (ε² z))] with a pairwise hash, store the induced
    sub-instance over ALL m sets (Õ(m/ε²) words across guesses, by the
    element-sampling lemma), and run greedy offline at the end of the
    pass; the best guess's greedy value scales back by the reciprocal
    sampling rate.  This is exactly the machinery the paper
    generalizes: its SmallSet subroutine (Figure 5) saves two extra α
    factors by also subsampling sets.

    This baseline anchors the α → O(1) end of the trade-off curve in
    experiments E1/E2. *)

type t

type result = { chosen : int list; coverage : float; words : int }

val create :
  m:int -> n:int -> k:int -> ?epsilon:float -> ?seed:int -> unit -> t
(** Default ε = 0.5, seed 1. *)

val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed} (guesses are
    driven guess-outer for cache locality). *)

val finalize : t -> result
(** [coverage] is the scaled estimate of the reported cover's coverage;
    [chosen] has at most k set ids. *)

val words : t -> int

val sink : (t, result) Mkc_stream.Sink.sink
(** The baseline as a {!Mkc_stream.Sink}, for the {!Mkc_stream.Pipeline}
    drivers and the {!Mkc_core.Full_range} front-end. *)

val encode : t -> Mkc_obs.Json.t
(** Mutable state per guess (stored member lists verbatim, latest-first;
    pair counts; death flags); samplers re-create from the seed. *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) Stdlib.result
(** Overlay an {!encode} payload onto a freshly {!create}d instance of
    the same dimensions and seed. *)

val merge_into : dst:t -> t -> unit
(** Fold a shard in, guess by guess: member lists concatenate (the
    shard fed the later suffix first), pair counts sum, a summed count
    over the cap kills the guess exactly as the single-stream run
    would. *)
