(* Quickstart: estimate and report a maximum k-cover over an
   edge-arrival stream, and compare with the offline greedy baseline.

   Run with:  dune exec examples/quickstart.exe *)

module Ss = Mkc_stream.Set_system
module P = Mkc_core.Params

let () =
  (* A synthetic instance: 4096 elements, 1024 sets, a planted optimal
     8-cover covering half the universe. *)
  let pl = Mkc_workload.Planted.few_large ~n:4096 ~m:1024 ~k:8 ~seed:1 in
  let sys = pl.Mkc_workload.Planted.system in
  let k = 8 and alpha = 4.0 in

  Format.printf "instance: %a@." Ss.pp_summary sys;
  Format.printf "planted OPT coverage: %d@.@." pl.Mkc_workload.Planted.planted_coverage;

  (* The stream arrives as (set, element) pairs in adversarial order —
     here a pseudorandom shuffle. *)
  let stream = Ss.edge_stream ~seed:42 sys in
  let src = Mkc_stream.Stream_source.of_array stream in
  Format.printf "streaming %d (set, element) pairs, single pass...@." (Array.length stream);

  (* 1. Estimation (Theorem 3.1): α-approximate optimal coverage size in
     Õ(m/α²) space.  Create a sink, run the pipeline over the stream in
     cache-friendly chunks, read the finalized result. *)
  let params = P.make ~m:(Ss.m sys) ~n:(Ss.n sys) ~k ~alpha ~seed:7 () in
  let est = Mkc_core.Estimate.create params in
  let r = Mkc_stream.Pipeline.run Mkc_core.Estimate.sink est src in
  Format.printf "estimated optimal coverage: %.0f  (space: %d words)@." r.Mkc_core.Estimate.estimate
    (Mkc_core.Estimate.words est);
  (match r.Mkc_core.Estimate.outcome with
  | Some o -> Format.printf "winning subroutine: %a@." Mkc_core.Solution.pp_provenance o.provenance
  | None -> ());

  (* 2. Reporting (Theorem 3.2): an actual k-cover in Õ(m/α² + k) space.
     Same pipeline, different sink — here sharded across two domains
     (the result is identical to a sequential run by construction). *)
  let rep = Mkc_core.Report.create params in
  let sol =
    Mkc_stream.Pipeline.run_parallel ~domains:2
      ~shards:(Mkc_core.Report.shards rep)
      ~finalize:(fun () -> Mkc_core.Report.finalize rep)
      src
  in
  let cov = Ss.coverage sys sol.Mkc_core.Report.sets in
  Format.printf "@.reported %d sets with true coverage %d@."
    (List.length sol.Mkc_core.Report.sets)
    cov;

  (* 3. Offline baseline: full-memory lazy greedy (1 - 1/e guarantee). *)
  let greedy = Mkc_coverage.Greedy.run sys ~k in
  Format.printf "@.offline greedy coverage: %d (stores the whole input)@."
    greedy.Mkc_coverage.Greedy.coverage;
  Format.printf "streaming/offline coverage ratio: %.2fx (guarantee: Õ(α), α = %.0f)@."
    (float_of_int greedy.Mkc_coverage.Greedy.coverage /. float_of_int (max 1 cov))
    alpha
