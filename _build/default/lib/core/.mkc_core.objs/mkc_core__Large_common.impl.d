lib/core/large_common.ml: Array List Mkc_hashing Mkc_sketch Mkc_stream Option Params Solution
