(* Cross-era checkpoint compatibility.

   [golden_estimate_ckpt_v1.json] is an mkc-ckpt/1 envelope serialized
   by the hashtable-backed sketch implementations (captured before the
   flat-memory rewrite), covering the full 120-edge stream of a fixed
   small instance.  The flat implementations must restore it and
   finalize to exactly the result the old code produced — the dump
   formats are canonical (layout-free), so a storage-engine swap is
   invisible at the envelope boundary.

   Instance (fixed forever — the golden bytes encode it):
     params   m=16 n=64 k=2 alpha=2.0 seed=5
     system   Random_inst.uniform ~set_size:8 ~seed:5
     stream   of_system ~seed:6            (120 edges)
   Old-era finalize: estimate 16.0, z_guess 64, witness [3; 6]. *)

module Src = Mkc_stream.Stream_source
module Ck = Mkc_stream.Checkpoint
module P = Mkc_core.Params
module E = Mkc_core.Estimate

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let golden_path = "golden_estimate_ckpt_v1.json"
let golden_edges = 120
let golden_estimate = 16.0
let golden_z_guess = 64
let golden_witness = [ 3; 6 ]

let params () = P.make ~m:16 ~n:64 ~k:2 ~alpha:2.0 ~seed:5 ()

let stream () =
  Src.of_system ~seed:6 (Mkc_workload.Random_inst.uniform ~n:64 ~m:16 ~set_size:8 ~seed:5)

let read_golden () =
  let s = In_channel.with_open_bin golden_path In_channel.input_all in
  match Ck.of_string ~expect_kind:E.ckpt_kind s with
  | Ok ck -> ck
  | Error e -> Alcotest.failf "golden rejected: %s" (Ck.error_to_string e)

let witness_of (r : E.result) =
  match r.E.outcome with
  | None -> []
  | Some o -> List.sort compare (o.Mkc_core.Solution.witness ())

let test_golden_restores () =
  let ck = read_golden () in
  checki "covers the whole golden stream" golden_edges ck.Ck.pos;
  let est =
    match E.of_payload ck.Ck.payload with
    | Ok est -> est
    | Error msg -> Alcotest.failf "flat sketches reject old-era payload: %s" msg
  in
  let r = E.finalize est in
  checkb "estimate matches old era" true (r.E.estimate = golden_estimate);
  checki "z_guess matches old era" golden_z_guess r.E.z_guess;
  checkb "witness matches old era" true (witness_of r = golden_witness)

let test_golden_equals_fresh_run () =
  let ck = read_golden () in
  let restored =
    match E.of_payload ck.Ck.payload with
    | Ok est -> est
    | Error msg -> Alcotest.failf "restore failed: %s" msg
  in
  let fresh = E.create (params ()) in
  let src = stream () in
  checki "instance reconstruction" golden_edges (Src.length src);
  Src.iter (E.feed fresh) src;
  let rr = E.finalize restored and rf = E.finalize fresh in
  checkb "estimate ≡ fresh run" true (rr.E.estimate = rf.E.estimate);
  checki "z_guess ≡ fresh run" rf.E.z_guess rr.E.z_guess;
  checkb "witness ≡ fresh run" true (witness_of rr = witness_of rf)

(* Round-trip through the current encoder: re-serializing the restored
   state must reproduce the golden bytes exactly — the flat engine
   writes the same canonical dumps the hashtable engine did. *)
let test_golden_reencodes_byte_stable () =
  let golden = In_channel.with_open_bin golden_path In_channel.input_all in
  let ck = read_golden () in
  let est =
    match E.of_payload ck.Ck.payload with
    | Ok est -> est
    | Error msg -> Alcotest.failf "restore failed: %s" msg
  in
  let codec = E.codec (E.params est) in
  let reenc =
    Ck.to_string
      {
        Ck.kind = codec.Ck.kind;
        pos = ck.Ck.pos;
        seed = codec.Ck.seed;
        payload = codec.Ck.encode est;
      }
  in
  checkb "re-encoded envelope is byte-identical" true (String.equal reenc golden)

let suite =
  [
    Alcotest.test_case "old-era golden restores into flat sketches" `Quick
      test_golden_restores;
    Alcotest.test_case "restored golden ≡ fresh flat run" `Quick
      test_golden_equals_fresh_run;
    Alcotest.test_case "restored golden re-encodes byte-stable" `Quick
      test_golden_reencodes_byte_stable;
  ]
