(* Benchmark / experiment driver.

   Usage:
     dune exec bench/main.exe            # all experiments + micro-benchmarks
     dune exec bench/main.exe -- e1 e5   # selected experiments
     dune exec bench/main.exe -- micro   # bechamel micro-benchmarks only

   Experiment ids follow DESIGN.md §4 (one per paper table/figure). *)

let registry =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("micro", Micro.run);
    ("pipeline", Pipeline_bench.run);
    ("pipeline-smoke", Pipeline_bench.run_smoke);
    ("profile", Profile_hotpath.run);
    ("profile-smoke", Profile_hotpath.run_smoke);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "--budget-strict" then begin
          Pipeline_bench.budget_strict := true;
          false
        end
        else true)
      args
  in
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] -> List.iter (fun (_, f) -> f ()) registry
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) registry with
          | Some f -> f ()
          | None ->
              Format.printf "unknown experiment %S; available: %s@." name
                (String.concat ", " (List.map fst registry)))
        names);
  Format.printf "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
