(** Space accounting in 64-bit words.

    The paper's object of study is the {e space} of single-pass
    algorithms, so every sketch and every streaming state in this
    repository exposes [words : t -> int], the number of 64-bit machine
    words it retains between stream updates.  Hash functions count their
    seed/coefficient storage (Lemma A.2: a d-wise independent function
    costs d words).  Transient per-update scratch is not counted, and
    neither is the read-only input configuration (m, n, k, alpha). *)

val int_array : int array -> int
(** Words held by an int array (its length). *)

val float_array : float array -> int

val hashtbl : ('a, 'b) Hashtbl.t -> entry_words:int -> int
(** Words held by a hashtbl with [entry_words] words per binding
    (key + payload), ignoring bucket overhead. *)

val pp_bytes : Format.formatter -> int -> unit
(** Pretty-print a word count as words and KiB. *)
