(** Space accounting in 64-bit words.

    The paper's object of study is the {e space} of single-pass
    algorithms, so every sketch and every streaming state in this
    repository exposes [words : t -> int], the number of 64-bit machine
    words it retains between stream updates.  Hash functions count their
    seed/coefficient storage (Lemma A.2: a d-wise independent function
    costs d words).  Transient per-update scratch is not counted, and
    neither is the read-only input configuration (m, n, k, alpha). *)

val int_array : int array -> int
(** Words held by an int array (its length). *)

val float_array : float array -> int

val hashtbl : ('a, 'b) Hashtbl.t -> entry_words:int -> int
(** Words held by a hashtbl with [entry_words] words per binding
    (key + payload), ignoring bucket overhead. *)

val pp_bytes : Format.formatter -> int -> unit
(** Pretty-print a word count as words and KiB. *)

(** Watchdog against a theoretical word budget (Thm 3.1/3.3's
    [Õ(m/α²)], with the constant made explicit by the caller —
    see [Estimate.word_budget]).  Feed it sampled [words] totals;
    it tracks the peak and, in strict mode, raises the moment a
    sample exceeds the budget. *)
module Budget : sig
  type t

  exception Exceeded of { budget : int; words : int }

  val create : ?strict:bool -> int -> t
  (** [create budget] with [budget > 0] words ([Invalid_argument]
      otherwise).  [strict] (default off) makes {!observe} raise
      {!Exceeded} on any sample over budget. *)

  val observe : t -> int -> unit
  (** Record one sampled word total.  Updates peak/overshoot counts
      (the overshoot is recorded {e before} {!Exceeded} is raised, so
      a caught exception still leaves an accurate record). *)

  val budget : t -> int
  val strict : t -> bool
  val peak : t -> int
  val samples : t -> int
  val overshoots : t -> int

  val headroom : t -> float
  (** [peak / budget]; < 1.0 means the run stayed within budget. *)
end
