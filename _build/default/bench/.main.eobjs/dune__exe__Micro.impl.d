bench/micro.ml: Analyze Array Bechamel Bechamel_notty Benchmark Format Instance List Measure Mkc_core Mkc_hashing Mkc_sketch Mkc_stream Notty_unix Staged Test Time Toolkit Unix
