lib/lowerbound/disjointness.ml: Array List Mkc_hashing
