(** The reporting algorithm (Theorem 3.2): a single-pass α-approximate
    Max k-Cover in Õ(m/α² + k) space.

    Runs {!Estimate} and materializes the winning witness into an
    explicit list of at most [k] set ids.  Each subroutine's witness is
    recoverable from Õ(1) stored hash seeds plus O(k) output words:

    - LargeCommon → a k-subset of the winning sampled collection
      [{S : h_β(S) sampled}];
    - LargeSet    → the winning superset [{S : h(S) = i*}], ≤ w ≤ k sets;
    - SmallSet    → greedy's picks on the stored sub-instance;
    - Trivial     → k pseudo-random sets.

    The +k term in the space bound is exactly this output. *)

type t

val create : Params.t -> t
val feed : t -> Mkc_stream.Edge.t -> unit

val feed_batch : t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** Chunked ingestion, equivalent to edge-by-edge {!feed}. *)

val feed_planned :
  t -> Mkc_stream.Chunk_plan.t -> Mkc_stream.Edge.t array -> pos:int -> len:int -> unit
(** {!Estimate.feed_planned} on the underlying engine. *)

type result = {
  estimate : float;  (** estimated coverage of the reported cover *)
  sets : int list;  (** at most k set ids *)
  provenance : Solution.provenance option;
}

val finalize : t -> result
val words : t -> int

val record_metrics : ?registry:Mkc_obs.Registry.t -> t -> unit
(** {!Estimate.record_metrics} on the underlying engine. *)

val encode : t -> Mkc_obs.Json.t
(** {!Estimate.encode} on the underlying engine (the [k] output slots
    hold no mutable state). *)

val restore : t -> Mkc_obs.Json.t -> (unit, string) Stdlib.result
val merge_into : dst:t -> t -> unit

val ckpt_kind : string
(** The {!Mkc_stream.Checkpoint} kind tag, ["report"]. *)

val codec : Params.t -> t Mkc_stream.Checkpoint.codec
(** Checkpoint codec (kind {!ckpt_kind}, seed [base_seed]) for
    {!Mkc_stream.Pipeline.run_resumable}. *)

val sink : (t, result) Mkc_stream.Sink.sink
(** The reporter as a {!Mkc_stream.Sink}. *)

val shards : t -> Mkc_stream.Sink.any array
(** The underlying estimator's independent oracle instances, for
    {!Mkc_stream.Pipeline.feed_all_parallel}; see
    {!Estimate.shards}. *)

val shard_costs : t -> float array
(** Static scheduling cost hints, index-aligned with {!shards}; see
    {!Estimate.shard_costs}. *)
