(* Tests for the synthetic workload generators. *)

module Ss = Mkc_stream.Set_system
module Planted = Mkc_workload.Planted
module Zipf = Mkc_workload.Zipf
module Ri = Mkc_workload.Random_inst
module Gg = Mkc_workload.Graph_gen

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- Zipf ---------- *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:100 ~s:1.2 ~seed:(Mkc_hashing.Splitmix.create 1) in
  let sum = ref 0.0 in
  for i = 0 to 99 do
    sum := !sum +. Zipf.pmf z i
  done;
  checkb "pmf normalized" true (Float.abs (!sum -. 1.0) < 1e-9)

let test_zipf_samples_in_range () =
  let z = Zipf.create ~n:50 ~s:1.0 ~seed:(Mkc_hashing.Splitmix.create 2) in
  for _ = 1 to 1000 do
    let x = Zipf.sample z in
    checkb "in range" true (x >= 0 && x < 50)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~s:1.5 ~seed:(Mkc_hashing.Splitmix.create 3) in
  let head = ref 0 in
  let total = 10_000 in
  for _ = 1 to total do
    if Zipf.sample z < 10 then incr head
  done;
  (* with s = 1.5, the top-10 mass is > 0.6 *)
  checkb "heavy head" true (!head > total / 2)

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:10 ~s:0.0 ~seed:(Mkc_hashing.Splitmix.create 4) in
  checkb "uniform pmf" true (Float.abs (Zipf.pmf z 0 -. 0.1) < 1e-9)

(* ---------- Random instances ---------- *)

let test_uniform_instance_shape () =
  let s = Ri.uniform ~n:100 ~m:20 ~set_size:10 ~seed:5 in
  checki "m sets" 20 (Ss.m s);
  checki "n elements" 100 (Ss.n s);
  for i = 0 to 19 do
    checkb "set size <= requested (dedup may shrink)" true (Ss.set_size s i <= 10)
  done

let test_uniform_deterministic () =
  let a = Ri.uniform ~n:50 ~m:5 ~set_size:8 ~seed:7 in
  let b = Ri.uniform ~n:50 ~m:5 ~set_size:8 ~seed:7 in
  for i = 0 to 4 do
    checkb "same seed, same instance" true (Ss.set a i = Ss.set b i)
  done

let test_zipf_sizes_instance () =
  let s = Ri.zipf_sizes ~n:200 ~m:50 ~max_size:30 ~skew:1.1 ~seed:8 in
  checki "m sets" 50 (Ss.m s);
  for i = 0 to 49 do
    let sz = Ss.set_size s i in
    checkb "sizes within [0, 30]" true (sz >= 0 && sz <= 30)
  done

(* ---------- Planted instances ---------- *)

let test_planted_disjoint_and_coverage () =
  let pl =
    Planted.planted ~n:1000 ~m:100 ~num_planted:10 ~coverage_fraction:0.5 ~noise_size:5
      ~seed:9 ()
  in
  checki "planted coverage = covered region" 500 pl.planted_coverage;
  checki "exactly k planted" 10 (List.length pl.planted_sets);
  (* planted sets are disjoint: sum of sizes = coverage *)
  let sum =
    List.fold_left (fun acc i -> acc + Ss.set_size pl.system i) 0 pl.planted_sets
  in
  checki "disjoint planted sets" 500 sum;
  checki "their true union" 500 (Ss.coverage pl.system pl.planted_sets)

let test_planted_is_optimal () =
  (* with small noise sets, no k-cover beats the planted one *)
  let pl =
    Planted.planted ~n:300 ~m:12 ~num_planted:3 ~coverage_fraction:0.6 ~noise_size:8
      ~seed:10 ()
  in
  let exact = Mkc_coverage.Exact.run pl.system ~k:3 in
  checkb "exact solver confirms plant" true (exact.coverage = pl.planted_coverage)

let test_planted_ids_spread () =
  let pl =
    Planted.planted ~n:100 ~m:50 ~num_planted:5 ~coverage_fraction:0.5 ~noise_size:3
      ~seed:11 ()
  in
  (* permuted placement: not simply 0..4 for most seeds (this seed verified) *)
  checkb "ids permuted" true (List.sort compare pl.planted_sets <> [ 0; 1; 2; 3; 4 ])

let test_few_large_shape () =
  let pl = Planted.few_large ~n:1024 ~m:128 ~k:8 ~seed:12 in
  checki "covers half" 512 pl.planted_coverage;
  List.iter
    (fun i -> checki "each planted set has n/(2k)" 64 (Ss.set_size pl.system i))
    pl.planted_sets

let test_many_small_shape () =
  let pl = Planted.many_small ~n:1024 ~m:256 ~k:64 ~seed:13 in
  checki "covers half" 512 pl.planted_coverage;
  List.iter
    (fun i -> checki "small planted sets" 8 (Ss.set_size pl.system i))
    pl.planted_sets

let test_common_heavy_frequencies () =
  let pl = Planted.common_heavy ~n:1024 ~m:512 ~k:16 ~beta:4 ~seed:14 in
  let freq = Ss.frequencies pl.system in
  (* first n/4 elements are the common block with target frequency m/(βk) = 8;
     hash placement can merge duplicates, so allow a wide band but require
     clearly-higher frequency than the rare tail *)
  let common_avg = ref 0.0 and rare_avg = ref 0.0 in
  for e = 0 to 255 do
    common_avg := !common_avg +. float_of_int freq.(e)
  done;
  for e = 256 to 1023 do
    rare_avg := !rare_avg +. float_of_int freq.(e)
  done;
  let common_avg = !common_avg /. 256.0 and rare_avg = !rare_avg /. 768.0 in
  checkb "common block much more frequent" true (common_avg > 4.0 *. rare_avg);
  checki "planted selection has k sets" 16 (List.length pl.planted_sets);
  checkb "certified coverage positive" true (pl.planted_coverage > 0)

let test_planted_validation () =
  Alcotest.check_raises "bad coverage fraction"
    (Invalid_argument "Planted.planted: coverage_fraction must be in (0, 1]") (fun () ->
      ignore
        (Planted.planted ~n:10 ~m:5 ~num_planted:2 ~coverage_fraction:1.5 ~noise_size:2
           ~seed:0 ()))

(* ---------- Graph workloads ---------- *)

let test_power_law_graph_shape () =
  let g = Gg.power_law ~vertices:200 ~edges:2000 ~skew:1.2 ~seed:15 in
  checki "one set per vertex" 200 (Ss.m g);
  checki "ground set = vertices" 200 (Ss.n g);
  checkb "parallel edges collapse" true (Ss.total_size g <= 2000)

let test_in_arrival_stream_is_permutation () =
  let g = Gg.power_law ~vertices:50 ~edges:400 ~skew:1.0 ~seed:16 in
  let stream = Gg.in_arrival_stream g ~seed:17 in
  let sorted a =
    let a = Array.copy a in
    Array.sort Mkc_stream.Edge.compare a;
    a
  in
  checkb "same multiset as canonical edges" true
    (sorted (Mkc_stream.Stream_source.to_array stream) = sorted (Ss.edges g))

let test_in_arrival_scatters_sets () =
  (* In target-major order, a vertex's out-neighborhood (a set) should
     not be contiguous (that's footnote 2's point). *)
  let g = Gg.power_law ~vertices:100 ~edges:1500 ~skew:1.3 ~seed:18 in
  let stream = Mkc_stream.Stream_source.to_array (Gg.in_arrival_stream g ~seed:19) in
  (* find a set with >= 5 members and check its positions are spread *)
  let positions = Hashtbl.create 32 in
  Array.iteri
    (fun pos (e : Mkc_stream.Edge.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt positions e.set) in
      Hashtbl.replace positions e.set (pos :: l))
    stream;
  let scattered = ref false in
  Hashtbl.iter
    (fun _ poss ->
      let poss = List.sort compare poss in
      match (poss, List.rev poss) with
      | first :: _, last :: _ when List.length poss >= 5 ->
          if last - first > 2 * List.length poss then scattered := true
      | _ -> ())
    positions;
  checkb "at least one set is scattered" true !scattered

(* ---------- Churn (turnstile workload transform) ---------- *)

module Churn = Mkc_workload.Churn
module Edge = Mkc_stream.Edge

let churn_base () =
  Array.init 500 (fun i -> Edge.make ~set:(i mod 37) ~elt:(i * 13 mod 211))

let test_churn_deletions_follow_insertions () =
  let out = Churn.apply ~frac:0.4 ~seed:3 (churn_base ()) in
  (* Every deletion must land strictly after a not-yet-retracted
     insertion of the same pair: a running net count that never goes
     negative proves it. *)
  let net = Hashtbl.create 97 in
  Array.iter
    (fun (e : Edge.t) ->
      let key = (e.set, e.elt) in
      let c = Option.value ~default:0 (Hashtbl.find_opt net key) + e.sign in
      checkb "net count never negative" true (c >= 0);
      Hashtbl.replace net key c)
    out;
  checkb "some deletions emitted" true
    (Array.exists (fun (e : Edge.t) -> e.sign < 0) out);
  (* Deterministic in (frac, seed): same inputs, same stream. *)
  checkb "deterministic" true (Churn.apply ~frac:0.4 ~seed:3 (churn_base ()) = out);
  checkb "seed-sensitive" true (Churn.apply ~frac:0.4 ~seed:4 (churn_base ()) <> out)

let test_churn_live_recovers_net_multiset () =
  let base = churn_base () in
  let out = Churn.apply ~frac:0.4 ~seed:5 base in
  let live = Churn.live out in
  checkb "live is insertion-only" true
    (Array.for_all (fun (e : Edge.t) -> e.sign = 1) live);
  (* Net multiset of the churned stream = multiset of its live edges. *)
  let count edges =
    let h = Hashtbl.create 97 in
    Array.iter
      (fun (e : Edge.t) ->
        let key = (e.set, e.elt) in
        Hashtbl.replace h key (Option.value ~default:0 (Hashtbl.find_opt h key) + e.sign))
      edges;
    Hashtbl.fold (fun k c acc -> if c > 0 then (k, c) :: acc else acc) h []
    |> List.sort compare
  in
  checkb "live = net-positive multiset" true (count out = count live);
  checki "insertions minus deletions" (Array.length live)
    (Array.fold_left (fun acc (e : Edge.t) -> acc + e.sign) 0 out)

let test_churn_degenerate_cases () =
  let base = churn_base () in
  checkb "frac 0 is the identity" true (Churn.apply ~frac:0.0 ~seed:7 base = base);
  checkb "live of insertion-only preserves the multiset" true
    (Array.to_list (Churn.live base)
    |> List.sort compare
    = (Array.to_list base |> List.sort compare));
  checkb "frac 1 rejected" true
    (match Churn.apply ~frac:1.0 ~seed:7 base with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "signed base rejected" true
    (match Churn.apply ~frac:0.1 ~seed:7 (Churn.apply ~frac:0.2 ~seed:8 base) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "zipf pmf normalized" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "churn deletions follow their insertions" `Quick
      test_churn_deletions_follow_insertions;
    Alcotest.test_case "churn live recovers the net multiset" `Quick
      test_churn_live_recovers_net_multiset;
    Alcotest.test_case "churn degenerate cases" `Quick test_churn_degenerate_cases;
    Alcotest.test_case "zipf samples in range" `Quick test_zipf_samples_in_range;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform at s=0" `Quick test_zipf_uniform_when_s0;
    Alcotest.test_case "uniform instance shape" `Quick test_uniform_instance_shape;
    Alcotest.test_case "uniform deterministic" `Quick test_uniform_deterministic;
    Alcotest.test_case "zipf-sizes instance" `Quick test_zipf_sizes_instance;
    Alcotest.test_case "planted disjoint/coverage" `Quick test_planted_disjoint_and_coverage;
    Alcotest.test_case "planted is optimal" `Quick test_planted_is_optimal;
    Alcotest.test_case "planted ids spread" `Quick test_planted_ids_spread;
    Alcotest.test_case "few_large shape" `Quick test_few_large_shape;
    Alcotest.test_case "many_small shape" `Quick test_many_small_shape;
    Alcotest.test_case "common_heavy frequencies" `Quick test_common_heavy_frequencies;
    Alcotest.test_case "planted validation" `Quick test_planted_validation;
    Alcotest.test_case "power-law graph shape" `Quick test_power_law_graph_shape;
    Alcotest.test_case "in-arrival stream permutation" `Quick test_in_arrival_stream_is_permutation;
    Alcotest.test_case "in-arrival scatters sets" `Quick test_in_arrival_scatters_sets;
  ]
