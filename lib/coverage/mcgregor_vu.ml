type guess = {
  z : int;
  sampler : Mkc_sketch.Sampler.Bernoulli.t option; (* None = rate 1 *)
  store : (int, int list ref) Hashtbl.t; (* set id -> sampled members *)
  mutable pairs : int;
  mutable dead : bool;
}

type t = {
  n : int;
  k : int;
  cap : int; (* per-guess stored-pair cap *)
  guesses : guess list;
}

type result = { chosen : int list; coverage : float; words : int }

let create ~m ~n ~k ?(epsilon = 0.5) ?(seed = 1) () =
  if k < 1 then invalid_arg "Mcgregor_vu.create: k must be >= 1";
  if epsilon <= 0.0 || epsilon > 1.0 then
    invalid_arg "Mcgregor_vu.create: epsilon must be in (0, 1]";
  let root = Mkc_hashing.Splitmix.create seed in
  let sample_const = 8.0 /. (epsilon *. epsilon) in
  let log2f x = Float.max 1.0 (Float.log2 (float_of_int (max 2 x))) in
  let cap =
    max 1024 (int_of_float (sample_const *. float_of_int m *. log2f (m * n) /. 8.0))
  in
  let top = Mkc_hashing.Hash_family.ceil_log2 (max 2 n) in
  let guesses =
    List.init (top - 1) (fun i ->
        let z = 1 lsl (i + 2) in
        let rate = Float.min 1.0 (sample_const *. float_of_int k /. float_of_int z) in
        {
          z;
          sampler =
            (if rate >= 1.0 then None
             else
               Some
                 (Mkc_sketch.Sampler.Bernoulli.create ~rate ~indep:4
                    ~seed:(Mkc_hashing.Splitmix.fork root i)));
          store = Hashtbl.create 64;
          pairs = 0;
          dead = false;
        })
  in
  { n; k; cap; guesses }

let rate_of g =
  match g.sampler with None -> 1.0 | Some s -> Mkc_sketch.Sampler.Bernoulli.rate s

let feed_guess t g (e : Mkc_stream.Edge.t) =
  if not g.dead then begin
    let keep =
      match g.sampler with
      | None -> true
      | Some s -> Mkc_sketch.Sampler.Bernoulli.keep s e.elt
    in
    if keep then begin
      (match Hashtbl.find_opt g.store e.set with
      | Some members -> members := e.elt :: !members
      | None -> Hashtbl.replace g.store e.set (ref [ e.elt ]));
      g.pairs <- g.pairs + 1;
      if g.pairs > t.cap then begin
        (* this guess of OPT was too small: its sample is too dense *)
        g.dead <- true;
        Hashtbl.reset g.store;
        g.pairs <- 0
      end
    end
  end

let feed t e = List.iter (fun g -> feed_guess t g e) t.guesses

let feed_batch t edges ~pos ~len =
  (* Guess-outer: one guess's sampler and store stay hot across the
     chunk; per-guess edge order is unchanged. *)
  let stop = pos + len - 1 in
  List.iter
    (fun g ->
      for i = pos to stop do
        feed_guess t g (Array.unsafe_get edges i)
      done)
    t.guesses

let finalize t =
  let best = ref { chosen = []; coverage = 0.0; words = 0 } in
  List.iter
    (fun g ->
      if (not g.dead) && Hashtbl.length g.store > 0 then begin
        let sets =
          Hashtbl.fold (fun id members acc -> (id, Array.of_list !members) :: acc) g.store []
        in
        let r = Greedy.run_on_subsets ~n:t.n ~sets ~k:t.k in
        (* accept a guess only when greedy's sampled coverage is in the
           regime the element-sampling lemma calibrates: ~ rate·z *)
        let expected = rate_of g *. float_of_int g.z in
        if float_of_int r.coverage >= expected /. 8.0 then begin
          let scaled = float_of_int r.coverage /. rate_of g in
          if scaled > !best.coverage then
            best := { chosen = r.chosen; coverage = scaled; words = 0 }
        end
      end)
    t.guesses;
  let words =
    List.fold_left (fun acc g -> acc + (2 * g.pairs) + 4) 0 t.guesses
  in
  { !best with words }

let words t = List.fold_left (fun acc g -> acc + (2 * g.pairs) + 4) 0 t.guesses

let sink : (t, result) Mkc_stream.Sink.sink =
  (module struct
    type nonrec t = t
    type nonrec result = result

    let feed = feed
    let feed_batch = feed_batch
    let feed_planned = Mkc_stream.Sink.batch_ignoring_plan feed_batch
    let finalize = finalize
    let words = words
    let words_breakdown t = [ ("mcgregor_vu", words t) ]
  end)
