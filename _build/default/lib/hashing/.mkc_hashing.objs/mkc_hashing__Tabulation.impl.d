lib/hashing/tabulation.ml: Array Int64 Splitmix
