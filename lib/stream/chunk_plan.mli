(** Per-chunk distinct-id grouping pass — the shared front end of the
    chunk-deduplicated hash engine.

    One [build] per chunk computes the distinct set ids and distinct raw
    element values of the chunk together with per-edge indices into
    those tables.  Consumers (every oracle instance of an estimator)
    evaluate each per-set / per-element hash decision once per distinct
    id, then replay the chunk in original edge order via O(1) lookups:
    final states are bit-for-bit the per-edge ones, only the evaluation
    schedule changes.

    All storage is reusable scratch: after warm-up, [build] allocates
    nothing.  A plan is owned by a single driver (pipeline pass or
    estimator) — it is not safe to share one [t] across domains. *)

type t

val create : unit -> t

val create_sized : chunk:int -> t
(** A plan whose scratch is pre-grown for [chunk]-edge builds, so the
    first windows of a run pay no reallocation — used for the pool
    driver's double-buffered scratch pair.  Raises [Invalid_argument]
    if [chunk < 1]. *)

val build : t -> Edge.t array -> pos:int -> len:int -> unit
(** Scan [edges.(pos .. pos+len-1)] and (re)fill the plan. *)

val len : t -> int
(** Chunk length of the last [build]. *)

val num_sets : t -> int
(** Number of distinct set ids in the chunk. *)

val num_elts : t -> int
(** Number of distinct raw element values in the chunk. *)

val sets : t -> int array
(** Distinct set ids in first-appearance order; entries
    [0 .. num_sets-1] are valid.  Do not mutate. *)

val set_counts : t -> int array
(** [set_counts t].(j) = number of chunk edges whose set is
    [sets t].(j); entries [0 .. num_sets-1] valid. *)

val elts : t -> int array
(** Distinct raw element values in first-appearance order; entries
    [0 .. num_elts-1] valid. *)

val set_index : t -> int array
(** Per-edge distinct-set index: entry [i] (chunk-relative) indexes
    [sets]; entries [0 .. len-1] valid. *)

val elt_index : t -> int array
(** Per-edge distinct-element index into [elts]. *)

val words : t -> int
(** Scratch footprint in words (diagnostic; plans are transient working
    storage, not sketch state). *)
