let ratio ~num ~den = if den <= 0 then 0.0 else float_of_int num /. float_of_int den

let record_ratio ?(registry = Registry.global) name ~num ~den =
  Registry.set (Registry.gauge registry name) (ratio ~num ~den)

let record_relative_error ?(registry = Registry.global) name ~truth ~estimate =
  let g suffix v = Registry.set (Registry.gauge registry (name ^ "." ^ suffix)) v in
  g "truth" (float_of_int truth);
  g "estimate" (float_of_int estimate);
  let err =
    if truth = 0 then 0.0
    else Float.abs (float_of_int estimate -. float_of_int truth) /. float_of_int truth
  in
  g "relative_error" err

let record_budget ?(registry = Registry.global) ~budget_words ~peak_words ~overshoots () =
  let g name v = Registry.set (Registry.gauge registry name) v in
  g "space.budget_words" (float_of_int budget_words);
  g "space.peak_words" (float_of_int peak_words);
  g "space.headroom" (ratio ~num:peak_words ~den:budget_words);
  g "space.overshoots" (float_of_int overshoots)
