lib/core/large_set.ml: Array Float Hashtbl List Mkc_hashing Mkc_sketch Mkc_stream Params Solution Superset_partition
