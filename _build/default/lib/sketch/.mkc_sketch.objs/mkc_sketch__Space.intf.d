lib/sketch/space.mli: Format Hashtbl
