(* Statistical acceptance test for the estimator's approximation
   quality (Theorem 3.6: the returned value lies in [OPT/Õ(α), OPT]
   with constant probability per instance, boosted by repeats).

   Deterministic by construction: 100 fixed-seed instances, each run
   once; the estimate is compared against the offline greedy baseline on
   the same instance.  Greedy's coverage G satisfies
   G ≤ OPT ≤ G/(1 − 1/e), so

   - upper: estimate ≤ G/(1 − 1/e)·(1 + slack) — "never exceeds OPT",
   - lower: estimate ≥ G/(C·α) — the α-bound with an explicit constant.

   The acceptance thresholds (C, slack, the 95/100 floor) are
   calibrated against the seeded trial set with margin; a regression in
   any subroutine's estimate path shows up as a pass-count drop, not a
   flaky bound. *)

module Edge = Mkc_stream.Edge
module Src = Mkc_stream.Stream_source
module Pipe = Mkc_stream.Pipeline
module P = Mkc_core.Params
module E = Mkc_core.Estimate

let checkb = Alcotest.(check bool)

let n = 256
let m = 64
let k = 4
let alpha = 4.0
let trials = 100
let pass_floor = 95

(* calibrated: worst seeded trial sits well inside both bounds *)
let lower_c = 8.0
let upper_slack = 0.25

type verdict = { seed : int; estimate : float; greedy : int; ok_low : bool; ok_high : bool }

let run_trial seed =
  let sys =
    match seed mod 3 with
    | 0 -> Mkc_workload.Random_inst.uniform ~n ~m ~set_size:(n / 16) ~seed
    | 1 -> (Mkc_workload.Planted.few_large ~n ~m ~k ~seed).Mkc_workload.Planted.system
    | _ -> Mkc_workload.Random_inst.zipf_sizes ~n ~m ~max_size:(n / 4) ~skew:1.1 ~seed
  in
  let src = Src.of_system ~seed:(seed + 1) sys in
  let greedy = (Mkc_coverage.Greedy.run sys ~k).Mkc_coverage.Greedy.coverage in
  let params = P.make ~m ~n ~k ~alpha ~seed () in
  let est = E.create params in
  let r = Pipe.run E.sink est src in
  let g = float_of_int greedy in
  {
    seed;
    estimate = r.E.estimate;
    greedy;
    ok_low = r.E.estimate >= g /. (lower_c *. alpha);
    ok_high = r.E.estimate <= g /. (1.0 -. exp (-1.0)) *. (1.0 +. upper_slack);
  }

let test_alpha_bound () =
  let verdicts = List.init trials (fun i -> run_trial (1000 + i)) in
  let passed = List.filter (fun v -> v.ok_low && v.ok_high) verdicts in
  let npassed = List.length passed in
  List.iter
    (fun v ->
      if not (v.ok_low && v.ok_high) then
        Printf.printf "trial seed %d: estimate %.1f vs greedy %d (low %b, high %b)\n" v.seed
          v.estimate v.greedy v.ok_low v.ok_high)
    verdicts;
  Printf.printf "quality: %d/%d trials within [G/(%.0fα), %.2f·G/(1-1/e)]\n" npassed trials
    lower_c (1.0 +. upper_slack);
  checkb
    (Printf.sprintf "≥ %d/%d seeded trials within the α-bound (got %d)" pass_floor trials
       npassed)
    true (npassed >= pass_floor)

(* The trivial branch (kα ≥ m) must obey the same contract: n/α against
   greedy on the same instance. *)
let test_trivial_branch_bound () =
  let m = 8 and k = 4 in
  let ok =
    List.init 20 (fun i ->
        let seed = 500 + i in
        let sys = Mkc_workload.Random_inst.uniform ~n ~m ~set_size:(n / 8) ~seed in
        let src = Src.of_system ~seed:(seed + 1) sys in
        let greedy = (Mkc_coverage.Greedy.run sys ~k).Mkc_coverage.Greedy.coverage in
        let params = P.make ~m ~n ~k ~alpha ~seed () in
        let est = E.create params in
        let r = Pipe.run E.sink est src in
        let g = float_of_int greedy in
        r.E.estimate >= g /. (lower_c *. alpha)
        && r.E.estimate <= g /. (1.0 -. exp (-1.0)) *. (1.0 +. upper_slack))
    |> List.filter (fun b -> b)
    |> List.length
  in
  checkb (Printf.sprintf "trivial branch within bounds in %d/20 trials" ok) true (ok >= 19)

let suite =
  [
    Alcotest.test_case "estimate within α-bound of greedy (95/100 seeded trials)" `Slow
      test_alpha_bound;
    Alcotest.test_case "trivial branch obeys the same contract" `Quick
      test_trivial_branch_bound;
  ]
